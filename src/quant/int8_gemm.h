// Low-level int8 kernels for the post-training quantization path.
//
// Quantization scheme (see DESIGN.md §16):
//   - weights: symmetric per-output-channel int8. A fp32 Linear weight
//     [k, n] is stored transposed as int8 [n, k] with one fp32 scale per
//     output column j: w_scale[j] = max_i |W[i,j]| / 127.
//   - activations: dynamic symmetric per-row int8, quantized on the fly:
//     a_scale[i] = max_j |A[i,j]| / 127 (1.0 for all-zero rows).
//   - accumulation: int32 (k * 127 * 127 stays far below 2^31 for every
//     model shape here), dequantized as acc * (a_scale[i] * w_scale[j]).
// Rounding is round-to-nearest-even (std::nearbyintf under the default FP
// environment / _mm256_cvtps_epi32), clamped to [-127, 127].

#pragma once

#include <cstdint>

namespace stisan::quant {

/// Quantizes a dense fp32 block [rows, k] row-wise into q (int8, same
/// layout) and scales[rows]. All-zero rows get scale 1.0 and all-zero q.
void QuantizeRowsSymmetric(const float* x, int8_t* q, float* scales,
                           int64_t rows, int64_t k);

/// Int32 dot product of two int8 vectors (AVX2 when available at runtime).
/// Exposed for tests; the accumulation is exact, so the SIMD and scalar
/// versions agree bit-for-bit.
int32_t DotInt8(const int8_t* a, const int8_t* b, int64_t k);

/// C[i,j] = (a_scale[i] * b_scale[j]) * Σ_p aq[i,p]·bq[j,p], with aq
/// [m,k] and bq [n,k] (the pre-transposed weight). Parallel over rows of C
/// through the kernel thread pool; deterministic for any thread count
/// (integer accumulation is exact, so even lane order cannot matter).
void Int8GemmDequant(const int8_t* aq, const float* a_scale, const int8_t* bq,
                     const float* b_scale, float* c, int64_t m, int64_t k,
                     int64_t n);

}  // namespace stisan::quant
