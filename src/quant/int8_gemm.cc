#include "quant/int8_gemm.h"

#include <algorithm>
#include <cmath>

#include "tensor/kernels.h"

#if defined(__x86_64__) || defined(__amd64__)
#define STISAN_QUANT_X86 1
#include <immintrin.h>
#endif

namespace stisan::quant {

namespace {

int32_t DotInt8Scalar(const int8_t* a, const int8_t* b, int64_t k) {
  int32_t acc = 0;
  for (int64_t i = 0; i < k; ++i)
    acc += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  return acc;
}

#if STISAN_QUANT_X86

#define STISAN_AVX2 __attribute__((target("avx2")))

STISAN_AVX2 inline int32_t ReduceAddI32(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  __m128i s = _mm_add_epi32(lo, hi);
  s = _mm_add_epi32(s, _mm_srli_si128(s, 8));
  s = _mm_add_epi32(s, _mm_srli_si128(s, 4));
  return _mm_cvtsi128_si32(s);
}

// Widen int8 -> int16, multiply-accumulate adjacent pairs into int32 lanes
// (madd_epi16 cannot overflow: |a·b| <= 127², and pair sums fit easily).
STISAN_AVX2 int32_t DotInt8Avx2(const int8_t* a, const int8_t* b, int64_t k) {
  __m256i acc = _mm256_setzero_si256();
  int64_t i = 0;
  for (; i + 16 <= k; i += 16) {
    const __m256i va = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)));
    const __m256i vb = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i)));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(va, vb));
  }
  int32_t s = ReduceAddI32(acc);
  for (; i < k; ++i)
    s += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  return s;
}

// One row of the dynamic activation quantization: amax reduce, then
// x * (127/amax) rounded to nearest-even and clamped. cvtps_epi32 rounds
// to nearest-even under the default MXCSR mode — the same rule as the
// scalar path's nearbyintf — and max() is rounding-free, so the AVX2 and
// scalar quantizers produce bit-identical codes and scales.
STISAN_AVX2 void QuantizeRowAvx2(const float* xr, int8_t* qr, float* scale,
                                 int64_t k) {
  const __m256 sign_mask = _mm256_set1_ps(-0.0f);
  __m256 vmax = _mm256_setzero_ps();
  int64_t j = 0;
  for (; j + 8 <= k; j += 8)
    vmax = _mm256_max_ps(vmax,
                         _mm256_andnot_ps(sign_mask, _mm256_loadu_ps(xr + j)));
  float amax = 0.0f;
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, vmax);
  for (float lane : lanes) amax = std::max(amax, lane);
  for (; j < k; ++j) amax = std::max(amax, std::fabs(xr[j]));

  if (amax == 0.0f) {
    *scale = 1.0f;
    std::fill(qr, qr + k, int8_t{0});
    return;
  }
  *scale = amax / 127.0f;
  const float inv = 127.0f / amax;
  const __m256 vinv = _mm256_set1_ps(inv);
  const __m256i vlo = _mm256_set1_epi32(-127);
  const __m256i vhi = _mm256_set1_epi32(127);
  for (j = 0; j + 8 <= k; j += 8) {
    __m256i vi = _mm256_cvtps_epi32(_mm256_mul_ps(_mm256_loadu_ps(xr + j),
                                                  vinv));
    vi = _mm256_max_epi32(vlo, _mm256_min_epi32(vhi, vi));
    // 8 x int32 -> 8 x int8 (saturating packs stay exact: values are
    // already clamped to [-127, 127]).
    const __m128i p16 = _mm_packs_epi32(_mm256_castsi256_si128(vi),
                                        _mm256_extracti128_si256(vi, 1));
    const __m128i p8 = _mm_packs_epi16(p16, p16);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(qr + j), p8);
  }
  for (; j < k; ++j) {
    const float v = std::nearbyintf(xr[j] * inv);
    qr[j] = static_cast<int8_t>(std::min(127.0f, std::max(-127.0f, v)));
  }
}

bool HasAvx2() {
  static const bool has = [] {
    __builtin_cpu_init();
    return __builtin_cpu_supports("avx2") != 0;
  }();
  return has;
}

#endif  // STISAN_QUANT_X86

}  // namespace

int32_t DotInt8(const int8_t* a, const int8_t* b, int64_t k) {
#if STISAN_QUANT_X86
  if (HasAvx2()) return DotInt8Avx2(a, b, k);
#endif
  return DotInt8Scalar(a, b, k);
}

void QuantizeRowsSymmetric(const float* x, int8_t* q, float* scales,
                           int64_t rows, int64_t k) {
#if STISAN_QUANT_X86
  if (HasAvx2()) {
    for (int64_t r = 0; r < rows; ++r)
      QuantizeRowAvx2(x + r * k, q + r * k, scales + r, k);
    return;
  }
#endif
  for (int64_t r = 0; r < rows; ++r) {
    const float* xr = x + r * k;
    float amax = 0.0f;
    for (int64_t j = 0; j < k; ++j) amax = std::max(amax, std::fabs(xr[j]));
    if (amax == 0.0f) {
      scales[r] = 1.0f;
      std::fill(q + r * k, q + (r + 1) * k, int8_t{0});
      continue;
    }
    const float scale = amax / 127.0f;
    const float inv = 127.0f / amax;
    scales[r] = scale;
    int8_t* qr = q + r * k;
    for (int64_t j = 0; j < k; ++j) {
      const float v = std::nearbyintf(xr[j] * inv);
      qr[j] = static_cast<int8_t>(
          std::min(127.0f, std::max(-127.0f, v)));
    }
  }
}

void Int8GemmDequant(const int8_t* aq, const float* a_scale, const int8_t* bq,
                     const float* b_scale, float* c, int64_t m, int64_t k,
                     int64_t n) {
  kernels::ParallelRanges(m, k * n, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      const int8_t* arow = aq + i * k;
      const float as = a_scale[i];
      float* crow = c + i * n;
      for (int64_t j = 0; j < n; ++j) {
        const int32_t acc = DotInt8(arow, bq + j * k, k);
        crow[j] = static_cast<float>(acc) * (as * b_scale[j]);
      }
    }
  });
}

}  // namespace stisan::quant
