#include "quant/quant.h"

#include <algorithm>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

#include "obs/metrics.h"
#include "quant/int8_gemm.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace stisan::quant {

namespace {

// Registered weights, keyed by the fp32 parameter's storage pointer (stable
// for a frozen model: Storage is refcounted and never reallocated). Reads
// are on the scoring hot path; writes only happen at model load/unload.
std::shared_mutex g_registry_mu;
std::unordered_map<const float*, const QuantizedWeight*> g_registry;

thread_local bool tl_int8_enabled = false;

const QuantizedWeight* FindRegistered(const float* key) {
  std::shared_lock<std::shared_mutex> lock(g_registry_mu);
  const auto it = g_registry.find(key);
  return it == g_registry.end() ? nullptr : it->second;
}

bool GemmHook(const float* a, const float* weight_key, float* c, int64_t m,
              int64_t k, int64_t n) {
  if (!tl_int8_enabled || internal::GradEnabled()) return false;
  const QuantizedWeight* qw = FindRegistered(weight_key);
  if (qw == nullptr || qw->rows != k || qw->cols != n) return false;
  // Dynamic per-row activation quantization into thread-local scratch (the
  // hook runs on the op's calling thread before the kernel fans out).
  thread_local std::vector<int8_t> aq;
  thread_local std::vector<float> a_scale;
  aq.resize(static_cast<size_t>(m * k));
  a_scale.resize(static_cast<size_t>(m));
  QuantizeRowsSymmetric(a, aq.data(), a_scale.data(), m, k);
  Int8GemmDequant(aq.data(), a_scale.data(), qw->gemm_q.data(),
                  qw->gemm_scale.data(), c, m, k, n);
  static obs::Counter& gemms = obs::GetCounter("quant/int8_gemms");
  gemms.Inc();
  return true;
}

bool GatherHook(const float* weight_key, const int64_t* ids, float* out,
                int64_t n, int64_t d, int64_t padding_idx) {
  if (!tl_int8_enabled || internal::GradEnabled()) return false;
  const QuantizedWeight* qw = FindRegistered(weight_key);
  if (qw == nullptr || qw->cols != d) return false;
  for (int64_t i = 0; i < n; ++i) {
    const int64_t id = ids[i];
    float* orow = out + i * d;
    if (id == padding_idx) {
      std::fill(orow, orow + d, 0.0f);
      continue;
    }
    const int8_t* qr = qw->row_q.data() + id * d;
    const float s = qw->row_scale[static_cast<size_t>(id)];
    for (int64_t j = 0; j < d; ++j)
      orow[j] = s * static_cast<float>(qr[j]);
  }
  static obs::Counter& gathers = obs::GetCounter("quant/int8_gathers");
  gathers.Inc();
  return true;
}

void EnsureHooksInstalled() {
  static std::once_flag once;
  std::call_once(once, [] {
    ops::SetInt8GemmHook(&GemmHook);
    ops::SetInt8GatherHook(&GatherHook);
  });
}

std::unique_ptr<QuantizedWeight> QuantizeParam(const float* w, int64_t rows,
                                               int64_t cols) {
  auto qw = std::make_unique<QuantizedWeight>();
  qw->rows = rows;
  qw->cols = cols;
  // Per-row form: direct row-wise pass over the fp32 layout.
  qw->row_q.resize(static_cast<size_t>(rows * cols));
  qw->row_scale.resize(static_cast<size_t>(rows));
  QuantizeRowsSymmetric(w, qw->row_q.data(), qw->row_scale.data(), rows,
                        cols);
  // GEMM form: transpose to [cols, rows] first so per-output-channel
  // quantization is again a row-wise pass, and GEMM dots are contiguous.
  std::vector<float> wt(static_cast<size_t>(rows * cols));
  for (int64_t i = 0; i < rows; ++i)
    for (int64_t j = 0; j < cols; ++j) wt[j * rows + i] = w[i * cols + j];
  qw->gemm_q.resize(static_cast<size_t>(rows * cols));
  qw->gemm_scale.resize(static_cast<size_t>(cols));
  QuantizeRowsSymmetric(wt.data(), qw->gemm_q.data(), qw->gemm_scale.data(),
                        cols, rows);
  return qw;
}

}  // namespace

QuantizedModel::QuantizedModel(const nn::Module& module, int64_t min_numel) {
  EnsureHooksInstalled();
  for (const Tensor& p : module.Parameters()) {
    if (!p.defined() || p.dim() != 2 || p.numel() < min_numel) continue;
    const float* key = p.data();
    auto qw = QuantizeParam(key, p.size(0), p.size(1));
    weights_.emplace_back(key, std::move(qw));
  }
  std::unique_lock<std::shared_mutex> lock(g_registry_mu);
  for (const auto& [key, qw] : weights_) g_registry[key] = qw.get();
}

QuantizedModel::~QuantizedModel() {
  std::unique_lock<std::shared_mutex> lock(g_registry_mu);
  for (const auto& [key, qw] : weights_) {
    const auto it = g_registry.find(key);
    if (it != g_registry.end() && it->second == qw.get()) g_registry.erase(it);
  }
}

int64_t QuantizedModel::int8_bytes() const {
  int64_t total = 0;
  for (const auto& [key, qw] : weights_) {
    total += static_cast<int64_t>(qw->gemm_q.size() + qw->row_q.size());
    total += static_cast<int64_t>(
        (qw->gemm_scale.size() + qw->row_scale.size()) * sizeof(float));
  }
  return total;
}

int64_t QuantizedModel::fp32_bytes() const {
  int64_t total = 0;
  for (const auto& [key, qw] : weights_)
    total += qw->rows * qw->cols * static_cast<int64_t>(sizeof(float));
  return total;
}

const QuantizedWeight* QuantizedModel::Find(const float* key) {
  return FindRegistered(key);
}

bool Int8Enabled() { return tl_int8_enabled; }

ScopedInt8::ScopedInt8() : prev_(tl_int8_enabled) { tl_int8_enabled = true; }

ScopedInt8::~ScopedInt8() { tl_int8_enabled = prev_; }

}  // namespace stisan::quant
