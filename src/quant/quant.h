// Post-training int8 quantization for frozen models.
//
// QuantizedModel snapshots every eligible 2-D parameter of a trained
// nn::Module into two int8 forms — symmetric per-output-channel weights
// (stored transposed) for GEMM use, and symmetric per-row form for
// embedding gathers — and registers the originals' storage pointers with
// the ops-layer int8 hooks (ops::SetInt8GemmHook / SetInt8GatherHook).
//
// Scoring then opts in per call site with ScopedInt8 (a thread-local flag):
// while it is active and gradients are disabled, every Linear forward whose
// weight is registered runs as dynamic-activation-quantized int8 GEMM with
// int32 accumulation, and every EmbeddingLookup on a registered table
// dequantizes int8 rows. Everything else (attention score/value products,
// softmax, layernorm, bias adds) stays fp32, so accuracy loss is bounded by
// the weight/activation rounding alone — the same recipe as dynamic
// quantization in mainstream frameworks. Training and gradcheck are
// untouched: the hooks decline whenever gradient recording is on.
//
// Scores under int8 are deterministic (integer accumulation is exact;
// per-row activation scales depend only on row contents), so the serving
// runtime's incremental-vs-full bit-identity holds within the int8 path,
// but int8 scores are NOT bit-identical to fp32 scores — validation is by
// elementwise tolerance and golden HR/NDCG deltas (see tests/quant_test).

#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "eval/batch_scorer.h"
#include "nn/module.h"

namespace stisan::quant {

/// One quantized parameter (both layouts share the fp32 source [rows,cols]).
struct QuantizedWeight {
  int64_t rows = 0;
  int64_t cols = 0;
  std::vector<int8_t> gemm_q;     // [cols, rows]: transposed, contiguous dots
  std::vector<float> gemm_scale;  // [cols] per-output-channel
  std::vector<int8_t> row_q;      // [rows, cols]: embedding-gather layout
  std::vector<float> row_scale;   // [rows]
};

/// Quantizes a module's 2-D parameters and registers them for the int8
/// hooks. The module must outlive this object and its parameters must stay
/// frozen (re-training after quantization leaves the int8 copies stale).
/// Destruction deregisters the weights; hook installation itself is sticky
/// and costs two null checks per MatMul when no model is registered.
class QuantizedModel {
 public:
  /// Parameters with fewer than `min_numel` elements (or not 2-D) stay
  /// fp32 — tiny projections don't pay for the quantize/dequantize round
  /// trip.
  explicit QuantizedModel(const nn::Module& module, int64_t min_numel = 64);
  ~QuantizedModel();

  QuantizedModel(const QuantizedModel&) = delete;
  QuantizedModel& operator=(const QuantizedModel&) = delete;

  int64_t num_weights() const { return static_cast<int64_t>(weights_.size()); }
  /// Bytes held by the int8 copies vs their fp32 sources (both layouts
  /// counted — the quantized model trades 2x int8 residency for the GEMM
  /// and gather layouts).
  int64_t int8_bytes() const;
  int64_t fp32_bytes() const;

  /// Lookup by fp32 storage pointer; nullptr when not registered. Exposed
  /// for tests.
  static const QuantizedWeight* Find(const float* key);

 private:
  std::vector<std::pair<const float*, std::unique_ptr<QuantizedWeight>>>
      weights_;
};

/// True while the calling thread has an active ScopedInt8.
bool Int8Enabled();

/// RAII opt-in: int8 scoring on this thread for the guard's lifetime.
/// Nestable; restores the previous state on destruction. Worker threads
/// spawned by the kernel pool inherit nothing — the hooks run on the thread
/// that entered the op, before the kernel fans out, so this is sufficient.
class ScopedInt8 {
 public:
  ScopedInt8();
  ~ScopedInt8();
  ScopedInt8(const ScopedInt8&) = delete;
  ScopedInt8& operator=(const ScopedInt8&) = delete;

 private:
  bool prev_;
};

/// eval::BatchScorer adapter: scores through `inner` with int8 active.
/// Wrap any model's scorer to run the evaluation pipeline quantized.
class Int8BatchScorer : public eval::BatchScorer {
 public:
  explicit Int8BatchScorer(eval::BatchScorer* inner) : inner_(inner) {}

  std::vector<std::vector<float>> ScoreBatch(
      const std::vector<const data::EvalInstance*>& instances,
      const std::vector<std::vector<int64_t>>& candidates) override {
    ScopedInt8 on;
    return inner_->ScoreBatch(instances, candidates);
  }

 private:
  eval::BatchScorer* inner_;
};

}  // namespace stisan::quant
