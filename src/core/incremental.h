// Incremental (O(new-token)) inference engine for a frozen StisanModel.
//
// Serving appends one check-in at a time to a user's history and rescores
// candidates after each append. A cold forward recomputes the whole n x n
// attention block per request; this engine caches per-user state so an
// append only computes the *new* row of every stage:
//
//   kKvCache (use_tape = false): the vanilla sinusoidal PE and the
//     pre-norm/attention/FFN stack are all row-local given the earlier
//     keys/values, so the engine caches per-block K/V rows (V' rows in
//     kRelationOnly mode) plus the final encoder output rows and runs
//     exactly one query row per append: embed row -> PE row -> per block
//     LN -> q/k/v projections -> fused attention of the [1, d] query
//     against the cached [len, d] K/V -> FFN -> final norm row.
//
//   kPreprocess (use_tape = true): TAPE's positions are normalised by the
//     mean time gap of the *whole* sequence, so appending a visit changes
//     every position and the encoder rows cannot be reused. The engine
//     still caches the scaled embedding rows and the raw clipped-interval
//     relation rows (the Haversine work), and reruns the tensor-level
//     encoder over the cached inputs.
//
// Relation-matrix coupling: the paper's R is r_hat_max - r_hat with a
// *global* ceiling r_hat_max = max over all causal pairs. The raw r_hat
// rows extend monotonically and never invalidate; the softmax-scaled rows
// and the encoder rows depend on float(r_hat_max), so when a new pair
// raises the ceiling past its current float value the engine rebuilds the
// cached prefix once. The ceiling is monotone and clipped at kt + kd, so
// rebuilds die out quickly on real traffic (counted per state).
//
// Bit-identity contract: Score() returns exactly the floats of
// model->Score({poi = history, t = timestamps, first_real = 0}, cands) —
// the same ops in the same order on the same values, pinned at every
// prefix length by tests/serve_test.cpp (the "serve" ctest label).

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/stisan.h"

namespace stisan::core {

enum class IncrementalTier {
  kKvCache,     // O(new-token) appends against cached K/V rows
  kPreprocess,  // cached embeddings + relation rows, encoder rerun (TAPE)
};

/// Per-user cached state. Histories live with the caller (the session
/// store); this struct only holds derived caches over the prefix
/// [0, cached_len) plus append statistics. Reset() drops everything —
/// eviction keeps the history and pays one cold rebuild on return.
struct IncrementalState {
  // Number of history visits the encoder-stage caches cover.
  int64_t cached_len = 0;

  // Raw clipped-interval rows: row i holds float(r_hat_i0..r_hat_ii),
  // exactly the first-pass values of BuildRelationMatrix. Never
  // invalidated (appends only add rows).
  std::vector<std::vector<float>> rhat_rows;
  // Running ceiling in double, matching BuildRelationMatrix's accumulator.
  double rhat_max = 0.0;

  // Softmax-scaled relation rows (replicating SoftmaxScaleRelation row by
  // row) and the float ceiling they were scaled against. Rebuilt, together
  // with the encoder rows, when float(rhat_max) moves.
  std::vector<std::vector<float>> rel_rows;
  float scaled_for_max = 0.0f;

  // kKvCache: per-block key/value rows ([max_len, d] each; v_cache holds
  // the V'-projected rows in kRelationOnly mode) and the final encoder
  // output rows.
  std::vector<Tensor> k_cache;
  std::vector<Tensor> v_cache;
  Tensor f_cache;

  // kPreprocess: scaled embedding rows (post sqrt(d), pre-PE).
  Tensor embed_cache;

  // Statistics (monotone; surfaced through the serving obs counters).
  int64_t rebuilds = 0;       // relation-ceiling invalidations
  int64_t rows_appended = 0;  // encoder/embedding rows computed

  void Reset();
};

/// Row-at-a-time scorer over a frozen model. The model must outlive the
/// engine and stay in eval mode while serving (Score() re-asserts it).
/// Thread-compatible: distinct states may be driven from distinct engines
/// concurrently, but one state must not be shared across threads.
class IncrementalScorer {
 public:
  IncrementalScorer(StisanModel* model, int64_t max_seq_len);

  IncrementalTier tier() const { return tier_; }
  int64_t max_seq_len() const { return max_seq_len_; }

  std::unique_ptr<IncrementalState> NewState() const;

  /// Advances the state's caches to cover the full history (pois.size()
  /// must be <= max_seq_len; the caller windows longer histories before
  /// calling). O(new-token) per uncovered visit on the kKvCache append
  /// path. Returns the number of ceiling-forced prefix rebuilds (0 or 1).
  int64_t Sync(IncrementalState& state, const std::vector<int64_t>& pois,
               const std::vector<double>& timestamps) const;

  /// Scores candidates at the final step of the history; bit-identical to
  /// model->Score on the equivalent unpadded instance. Syncs first.
  std::vector<float> Score(IncrementalState& state,
                           const std::vector<int64_t>& pois,
                           const std::vector<double>& timestamps,
                           const std::vector<int64_t>& candidates) const;

 private:
  bool NeedsRelation() const;
  void EnsureBuffers(IncrementalState& state) const;
  void AppendRhatRow(IncrementalState& state,
                     const std::vector<int64_t>& pois,
                     const std::vector<double>& timestamps, int64_t i) const;
  void AppendScaledRow(IncrementalState& state, int64_t i) const;
  void AppendEncoderRow(IncrementalState& state,
                        const std::vector<int64_t>& pois, int64_t i) const;
  Tensor AssembleScaledRelation(const IncrementalState& state,
                                int64_t n) const;

  StisanModel* model_;
  int64_t max_seq_len_;
  int64_t dim_;
  IncrementalTier tier_;
  // Dropout layers take an Rng by reference; in eval mode they are
  // identity and never draw, so this stream stays untouched.
  mutable Rng rng_;
};

}  // namespace stisan::core
