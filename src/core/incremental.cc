#include "core/incremental.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>

#include "core/taad.h"
#include "data/types.h"
#include "util/check.h"

namespace stisan::core {

namespace {

constexpr double kSecondsPerDay = 86400.0;

// Copies one [1, d] row tensor into row i of a [max_len, d] buffer.
void WriteRow(Tensor& buffer, int64_t i, const Tensor& row) {
  const int64_t d = buffer.size(1);
  STISAN_CHECK_EQ(row.numel(), d);
  std::memcpy(buffer.data() + i * d, row.data(),
              static_cast<size_t>(d) * sizeof(float));
}

// Materialises a cached float row as a [1, len] tensor.
Tensor RowTensor(const std::vector<float>& row) {
  Tensor t = Tensor::Zeros({1, static_cast<int64_t>(row.size())});
  std::memcpy(t.data(), row.data(), row.size() * sizeof(float));
  return t;
}

}  // namespace

void IncrementalState::Reset() {
  cached_len = 0;
  rhat_rows.clear();
  rhat_max = 0.0;
  rel_rows.clear();
  scaled_for_max = 0.0f;
  k_cache.clear();
  v_cache.clear();
  f_cache = Tensor();
  embed_cache = Tensor();
}

IncrementalScorer::IncrementalScorer(StisanModel* model, int64_t max_seq_len)
    : model_(model),
      max_seq_len_(max_seq_len),
      dim_(model->model_dim()),
      rng_(0) {
  STISAN_CHECK_GE(max_seq_len_, 1);
  // TAPE normalises positions by the mean gap over the whole sequence, so
  // appending a visit perturbs *every* position: encoder rows are not
  // reusable and only the preprocessing stages cache. The vanilla PE is
  // position-local, which unlocks the full K/V row cache — provided the
  // attention is the single-head causal layout whose row arithmetic the
  // append path replays.
  const auto& opts = model_->options_;
  bool kv_ok = !opts.use_tape;
  if (kv_ok && model_->encoder_->num_blocks() > 0) {
    const auto& block = model_->encoder_->block(0);
    kv_ok = block.options().causal && block.attention().num_heads() == 1;
  }
  tier_ = kv_ok ? IncrementalTier::kKvCache : IncrementalTier::kPreprocess;
}

std::unique_ptr<IncrementalState> IncrementalScorer::NewState() const {
  return std::make_unique<IncrementalState>();
}

bool IncrementalScorer::NeedsRelation() const {
  return model_->options_.attention_mode != AttentionMode::kVanilla;
}

void IncrementalScorer::EnsureBuffers(IncrementalState& state) const {
  if (tier_ == IncrementalTier::kPreprocess) {
    if (!state.embed_cache.defined()) {
      state.embed_cache = Tensor::Zeros({max_seq_len_, dim_});
    }
    return;
  }
  if (!state.f_cache.defined()) {
    const int64_t nb = model_->encoder_->num_blocks();
    state.k_cache.clear();
    state.v_cache.clear();
    for (int64_t b = 0; b < nb; ++b) {
      // kRelationOnly never projects K; keep the slot (empty tensor) so
      // block indices stay aligned.
      if (model_->options_.attention_mode == AttentionMode::kRelationOnly) {
        state.k_cache.emplace_back();
      } else {
        state.k_cache.push_back(Tensor::Zeros({max_seq_len_, dim_}));
      }
      state.v_cache.push_back(Tensor::Zeros({max_seq_len_, dim_}));
    }
    state.f_cache = Tensor::Zeros({max_seq_len_, dim_});
  }
}

void IncrementalScorer::AppendRhatRow(IncrementalState& state,
                                      const std::vector<int64_t>& pois,
                                      const std::vector<double>& timestamps,
                                      int64_t i) const {
  // Exactly BuildRelationMatrix's first pass for row i, first_real = 0:
  // clipped |dt| in days plus clipped Haversine, stored as float, with the
  // ceiling tracked in double.
  const RelationOptions& opt = model_->options_.relation;
  const data::Dataset& ds = *model_->dataset_;
  const geo::GeoPoint gi = ds.poi_location(pois[static_cast<size_t>(i)]);
  std::vector<float> row(static_cast<size_t>(i) + 1);
  for (int64_t j = 0; j <= i; ++j) {
    const double dt = std::min(
        opt.kt_days,
        std::fabs(timestamps[size_t(i)] - timestamps[size_t(j)]) /
            kSecondsPerDay);
    const double dd = std::min(
        opt.kd_km,
        geo::HaversineKm(gi, ds.poi_location(pois[static_cast<size_t>(j)])));
    const double r_hat = dt + dd;
    row[static_cast<size_t>(j)] = static_cast<float>(r_hat);
    state.rhat_max = std::max(state.rhat_max, r_hat);
  }
  state.rhat_rows.push_back(std::move(row));
}

void IncrementalScorer::AppendScaledRow(IncrementalState& state,
                                        int64_t i) const {
  // Exactly SoftmaxScaleRelation's row i for first_real = 0 over
  // in[j] = float(rhat_max) - rhat_rows[i][j].
  const float cap = static_cast<float>(state.rhat_max);
  const std::vector<float>& raw = state.rhat_rows[static_cast<size_t>(i)];
  std::vector<float> out(static_cast<size_t>(i) + 1);
  float mx = cap - raw[0];
  for (int64_t j = 0; j <= i; ++j) {
    mx = std::max(mx, cap - raw[static_cast<size_t>(j)]);
  }
  float sum = 0.0f;
  for (int64_t j = 0; j <= i; ++j) {
    sum += std::exp((cap - raw[static_cast<size_t>(j)]) - mx);
  }
  for (int64_t j = 0; j <= i; ++j) {
    out[static_cast<size_t>(j)] =
        std::exp((cap - raw[static_cast<size_t>(j)]) - mx) / sum;
  }
  state.rel_rows.push_back(std::move(out));
}

void IncrementalScorer::AppendEncoderRow(IncrementalState& state,
                                         const std::vector<int64_t>& pois,
                                         int64_t i) const {
  const int64_t len = i + 1;
  const AttentionMode mode = model_->options_.attention_mode;

  // Embedding + vanilla PE row: ApplyVanillaPe assigns position i+1 to
  // row i, and the dropout is identity in eval mode.
  Tensor x = model_->Embed({pois[static_cast<size_t>(i)]});
  x = x + CachedSinusoidalEncoding({static_cast<double>(i + 1)}, dim_);

  const IaabEncoder& enc = *model_->encoder_;
  const int64_t nb = enc.num_blocks();
  Tensor f_row;
  for (int64_t b = 0; b < nb; ++b) {
    const IntervalAwareAttentionBlock& blk = enc.block(b);
    Tensor normed = blk.ln_attention().Forward(x);
    Tensor attended;
    if (mode == AttentionMode::kRelationOnly) {
      // Full path: MatMul(scaled_relation, V'(normed)). Row i of that
      // product only reads V' rows <= i (the scaled row is causal), so
      // the truncated [1, len] x [len, d] product is the same sum in the
      // same order.
      WriteRow(state.v_cache[static_cast<size_t>(b)], i,
               blk.values().Forward(normed));
      attended = ops::MatMul(
          RowTensor(state.rel_rows[static_cast<size_t>(i)]),
          ops::Slice(state.v_cache[static_cast<size_t>(b)], 0, 0, len));
    } else {
      const nn::CausalSelfAttention& attn = blk.attention();
      Tensor q = attn.wq().Forward(normed);
      WriteRow(state.k_cache[static_cast<size_t>(b)], i,
               attn.wk().Forward(normed));
      WriteRow(state.v_cache[static_cast<size_t>(b)], i,
               attn.wv().Forward(normed));
      // The full causal call adds an explicit 0.0f mask (plus the scaled
      // relation in kIntervalAware mode) to every visible logit; replicate
      // the add so -0.0 logits normalise identically.
      Tensor bias = mode == AttentionMode::kIntervalAware
                        ? RowTensor(state.rel_rows[static_cast<size_t>(i)])
                        : Tensor::Zeros({1, len});
      attended = ops::FusedAttention(
          q, ops::Slice(state.k_cache[static_cast<size_t>(b)], 0, 0, len),
          ops::Slice(state.v_cache[static_cast<size_t>(b)], 0, 0, len), bias,
          /*causal=*/false,
          1.0f / std::sqrt(static_cast<float>(dim_)));
    }
    // Residual dropouts are identity in eval mode; the row-wise FFN and
    // ReZero gate replay the block verbatim.
    Tensor h = x + attended;
    Tensor ffn_out = blk.ffn().Forward(blk.ln_ffn().Forward(h), rng_);
    if (blk.ffn_gate().defined()) ffn_out = ffn_out * blk.ffn_gate();
    if (b + 1 < nb) {
      x = h + ffn_out;
    } else {
      f_row = enc.final_norm().ForwardResidual(h, ffn_out);
    }
  }
  WriteRow(state.f_cache, i, f_row);
}

Tensor IncrementalScorer::AssembleScaledRelation(const IncrementalState& state,
                                                 int64_t n) const {
  // Rebuilds BuildRelationMatrix's output from the cached raw rows (the
  // stored floats and the double ceiling are exactly its internals), then
  // runs the real softmax scaling.
  Tensor r = Tensor::Zeros({n, n});
  float* rd = r.data();
  const float cap = static_cast<float>(state.rhat_max);
  for (int64_t i = 0; i < n; ++i) {
    const std::vector<float>& raw = state.rhat_rows[static_cast<size_t>(i)];
    for (int64_t j = 0; j <= i; ++j) {
      rd[i * n + j] = cap - raw[static_cast<size_t>(j)];
    }
  }
  return SoftmaxScaleRelation(r, /*first_real=*/0);
}

int64_t IncrementalScorer::Sync(IncrementalState& state,
                                const std::vector<int64_t>& pois,
                                const std::vector<double>& timestamps) const {
  NoGradGuard no_grad;
  const int64_t n = static_cast<int64_t>(pois.size());
  // Entry guards throw instead of CHECK-aborting: the serving layer sits
  // directly above this call and must be able to fail one request
  // (util::Status kInternal through its exception barrier) without taking
  // the process down.
  if (n != static_cast<int64_t>(timestamps.size())) {
    throw std::invalid_argument(
        "IncrementalScorer::Sync: pois/timestamps length mismatch (" +
        std::to_string(n) + " vs " + std::to_string(timestamps.size()) +
        ")");
  }
  if (n > max_seq_len_) {
    throw std::length_error(
        "IncrementalScorer::Sync: history length " + std::to_string(n) +
        " exceeds max_seq_len " + std::to_string(max_seq_len_) +
        " (window before calling)");
  }
  if (state.cached_len < 0 || state.cached_len > n) {
    // The store only ever appends; a shrunk history means state reuse
    // across users, which Reset() guards against.
    throw std::logic_error(
        "IncrementalScorer::Sync: cached_len " +
        std::to_string(state.cached_len) +
        " inconsistent with history length " + std::to_string(n));
  }

  EnsureBuffers(state);

  // Raw interval rows extend monotonically under appends.
  if (NeedsRelation()) {
    for (int64_t i = static_cast<int64_t>(state.rhat_rows.size()); i < n;
         ++i) {
      AppendRhatRow(state, pois, timestamps, i);
    }
  }

  if (tier_ == IncrementalTier::kPreprocess) {
    for (int64_t i = state.cached_len; i < n; ++i) {
      WriteRow(state.embed_cache, i,
               model_->Embed({pois[static_cast<size_t>(i)]}));
      ++state.rows_appended;
    }
    state.cached_len = n;
    return 0;
  }

  int64_t rebuilds = 0;
  if (NeedsRelation()) {
    // Every scaled row and encoder row bakes in float(rhat_max); if a new
    // pair moved the ceiling past its float value, the cached prefix is
    // stale. Drop it once — the ceiling is monotone and saturates at
    // kt + kd, so steady-state traffic appends without rebuilding.
    if (!state.rel_rows.empty() &&
        static_cast<float>(state.rhat_max) != state.scaled_for_max) {
      state.rel_rows.clear();
      if (state.cached_len > 0) {
        state.cached_len = 0;
        ++state.rebuilds;
        rebuilds = 1;
      }
    }
    for (int64_t i = static_cast<int64_t>(state.rel_rows.size()); i < n;
         ++i) {
      AppendScaledRow(state, i);
    }
    state.scaled_for_max = static_cast<float>(state.rhat_max);
  }

  for (int64_t i = state.cached_len; i < n; ++i) {
    AppendEncoderRow(state, pois, i);
    ++state.rows_appended;
  }
  state.cached_len = n;
  return rebuilds;
}

std::vector<float> IncrementalScorer::Score(
    IncrementalState& state, const std::vector<int64_t>& pois,
    const std::vector<double>& timestamps,
    const std::vector<int64_t>& candidates) const {
  NoGradGuard no_grad;
  model_->SetTraining(false);
  Sync(state, pois, timestamps);
  const int64_t n = static_cast<int64_t>(pois.size());
  if (n < 1) {
    throw std::invalid_argument(
        "IncrementalScorer::Score: empty history (cold starts are the "
        "caller's responsibility)");
  }

  Tensor f;
  if (tier_ == IncrementalTier::kKvCache) {
    f = ops::Slice(state.f_cache, 0, 0, n);
  } else {
    // Encoder rerun over the cached preprocessing: same tensors, same op
    // order as StisanModel::Encode with first_real = 0.
    Tensor e = ops::Slice(state.embed_cache, 0, 0, n);
    e = model_->options_.use_tape ? ApplyTape(e, timestamps, 0)
                                  : ApplyVanillaPe(e);
    e = model_->embed_dropout_.Forward(e, rng_);
    Tensor bias;
    if (NeedsRelation()) bias = AssembleScaledRelation(state, n);
    Tensor mask = BuildPaddedCausalMask(n, /*first_real=*/0);
    f = model_->encoder_->Forward(e, bias, mask, rng_);
  }

  // Decode stage shared with StisanModel::Score verbatim.
  Tensor c = model_->Embed(candidates);
  std::vector<int64_t> step_of_row(candidates.size(), n - 1);
  Tensor s = model_->Preferences(c, f, step_of_row, /*first_real=*/0);
  return ops::MulScalar(MatchScores(s, c), model_->score_scale_).ToVector();
}

}  // namespace stisan::core
