#include "core/stisan.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "core/taad.h"
#include "train/loss.h"
#include "train/trainer.h"
#include "tensor/optimizer.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace stisan::core {
namespace {

// Gathers coordinates for a POI window (padding POIs keep the origin; the
// relation builder never reads them).
std::vector<geo::GeoPoint> WindowCoords(const data::Dataset& dataset,
                                        const std::vector<int64_t>& pois) {
  std::vector<geo::GeoPoint> coords(pois.size());
  for (size_t i = 0; i < pois.size(); ++i) {
    if (pois[i] != data::kPaddingPoi) {
      coords[i] = dataset.poi_location(pois[i]);
    }
  }
  return coords;
}

// A constant [m, n] row-selection matrix mapping candidate rows to their
// encoder step (used when TAAD is ablated).
Tensor StepSelector(const std::vector<int64_t>& step_of_row, int64_t n) {
  const int64_t m = static_cast<int64_t>(step_of_row.size());
  Tensor sel = Tensor::Zeros({m, n});
  float* s = sel.data();
  for (int64_t r = 0; r < m; ++r) {
    s[r * n + step_of_row[static_cast<size_t>(r)]] = 1.0f;
  }
  return sel;
}

}  // namespace

StisanModel::StisanModel(const data::Dataset& dataset,
                         const StisanOptions& options)
    : dataset_(&dataset),
      options_(options),
      dim_(options.poi_dim + options.geo.dim),
      score_scale_(1.0f / std::sqrt(static_cast<float>(
          options.poi_dim + options.geo.dim))),
      rng_(options.train.seed),
      poi_embedding_(dataset.num_pois() + 1,
                     options.use_geo_encoder ? options.poi_dim : dim_, rng_,
                     /*padding_idx=*/data::kPaddingPoi),
      embed_dropout_(options.dropout) {
  STISAN_CHECK_GT(options.poi_dim, 0);
  STISAN_CHECK_GT(options.geo.dim, 0);
  RegisterModule(&poi_embedding_);
  RegisterModule(&embed_dropout_);
  if (options_.use_geo_encoder) {
    geo_encoder_ = std::make_unique<GeoEncoder>(dataset, options_.geo, rng_);
    RegisterModule(geo_encoder_.get());
  }
  IaabOptions block;
  block.dim = dim_;
  block.ffn_hidden =
      options_.ffn_hidden > 0 ? options_.ffn_hidden : 2 * dim_;
  block.dropout = options_.dropout;
  block.mode = options_.attention_mode;
  encoder_ = std::make_unique<IaabEncoder>(block, options_.num_blocks, rng_);
  RegisterModule(encoder_.get());

  if (options_.knn_negatives) {
    sampler_ = std::make_unique<train::KnnNegativeSampler>(
        dataset, options_.train.knn_neighborhood);
  } else {
    sampler_ =
        std::make_unique<train::UniformNegativeSampler>(dataset.num_pois());
  }
}

std::string StisanModel::name() const {
  if (!options_.use_geo_encoder) return "STiSAN-GE";
  if (!options_.use_tape) return "STiSAN-TAPE";
  if (options_.attention_mode == AttentionMode::kVanilla)
    return "STiSAN-IAAB";
  if (options_.attention_mode == AttentionMode::kRelationOnly)
    return "STiSAN-SA";
  if (!options_.use_taad) return "STiSAN-TAAD";
  return "STiSAN";
}

Tensor StisanModel::Embed(const std::vector<int64_t>& pois) const {
  Tensor poi_emb = poi_embedding_.Forward(pois);
  Tensor e = poi_emb;
  if (options_.use_geo_encoder) {
    Tensor geo_emb = geo_encoder_->Forward(pois);
    e = ops::Concat(poi_emb, geo_emb, /*dim=*/1);
  }
  // Standard Transformer embedding scaling (x sqrt(d)): keeps the additive
  // positional encoding from dominating the content signal.
  return ops::MulScalar(e, std::sqrt(static_cast<float>(dim_)));
}

Tensor StisanModel::RelationBias(const std::vector<int64_t>& pois,
                                 const std::vector<double>& timestamps,
                                 int64_t first_real) const {
  if (options_.attention_mode == AttentionMode::kVanilla) return Tensor();
  // LRU-cached: training revisits the same windows every epoch.
  return CachedScaledRelation(pois, timestamps, WindowCoords(*dataset_, pois),
                              first_real, options_.relation);
}

Tensor StisanModel::Encode(const std::vector<int64_t>& pois,
                           const std::vector<double>& timestamps,
                           int64_t first_real, Rng& rng) const {
  const int64_t n = static_cast<int64_t>(pois.size());
  Tensor e = Embed(pois);
  e = options_.use_tape ? ApplyTape(e, timestamps, first_real)
                        : ApplyVanillaPe(e);
  e = embed_dropout_.Forward(e, rng);
  Tensor bias = RelationBias(pois, timestamps, first_real);
  Tensor mask = BuildPaddedCausalMask(n, first_real);
  return encoder_->Forward(e, bias, mask, rng);
}

Tensor StisanModel::EncodeBatch(
    const std::vector<const data::EvalInstance*>& instances, Rng& rng) const {
  const int64_t bsz = static_cast<int64_t>(instances.size());
  const int64_t n = static_cast<int64_t>(instances[0]->poi.size());

  // One embedding lookup over the flattened, deduplicated batch: the
  // per-row gathers are identical to the per-instance Embed calls, and
  // overlapping histories (shared users, padding) embed once.
  std::vector<int64_t> flat;
  flat.reserve(static_cast<size_t>(bsz * n));
  for (const auto* inst : instances) {
    STISAN_CHECK_EQ(static_cast<int64_t>(inst->poi.size()), n);
    flat.insert(flat.end(), inst->poi.begin(), inst->poi.end());
  }
  const auto [unique, local] = models::DedupIds(flat);
  Tensor e = ops::Reshape(
      ops::EmbeddingLookup(Embed(unique), local, /*padding_idx=*/-1),
      {bsz, n, dim_});

  // Positional encodings are per-instance (TAPE depends on timestamps).
  std::vector<Tensor> pe(static_cast<size_t>(bsz));
  for (int64_t b = 0; b < bsz; ++b) {
    const auto* inst = instances[static_cast<size_t>(b)];
    pe[static_cast<size_t>(b)] =
        options_.use_tape
            ? CachedSinusoidalEncoding(
                  TimeAwarePositions(inst->t, inst->first_real), dim_)
            : nn::VanillaPositionalEncoding(n, dim_);
  }
  e = e + ops::Stack0(pe);
  e = embed_dropout_.Forward(e, rng);

  Tensor bias;
  if (options_.attention_mode != AttentionMode::kVanilla) {
    std::vector<Tensor> biases(static_cast<size_t>(bsz));
    for (int64_t b = 0; b < bsz; ++b) {
      const auto* inst = instances[static_cast<size_t>(b)];
      biases[static_cast<size_t>(b)] =
          RelationBias(inst->poi, inst->t, inst->first_real);
    }
    bias = ops::Stack0(biases);
  }
  std::vector<Tensor> masks(static_cast<size_t>(bsz));
  for (int64_t b = 0; b < bsz; ++b) {
    masks[static_cast<size_t>(b)] =
        BuildPaddedCausalMask(n, instances[static_cast<size_t>(b)]->first_real);
  }
  return encoder_->Forward(e, bias, ops::Stack0(masks), rng);
}

Tensor StisanModel::Preferences(const Tensor& candidate_emb,
                                const Tensor& encoder_out,
                                const std::vector<int64_t>& step_of_row,
                                int64_t first_real) const {
  if (options_.use_taad) {
    return TaadDecode(candidate_emb, encoder_out, step_of_row, first_real);
  }
  // Variant V: match encoder states with candidates directly (eq. 17).
  return ops::MatMul(StepSelector(step_of_row, encoder_out.size(0)),
                     encoder_out);
}

std::string StisanModel::ConfigFingerprint() const {
  return StrFormat(
      "stisan pois=%lld poi_dim=%lld geo_dim=%lld quadkey=%lld ngram=%lld "
      "blocks=%lld ffn=%lld ge=%d tape=%d attn=%d taad=%d",
      static_cast<long long>(dataset_->num_pois()),
      static_cast<long long>(options_.poi_dim),
      static_cast<long long>(options_.geo.dim),
      static_cast<long long>(options_.geo.quadkey_level),
      static_cast<long long>(options_.geo.ngram),
      static_cast<long long>(options_.num_blocks),
      static_cast<long long>(options_.ffn_hidden),
      options_.use_geo_encoder ? 1 : 0, options_.use_tape ? 1 : 0,
      static_cast<int>(options_.attention_mode), options_.use_taad ? 1 : 0);
}

void StisanModel::Fit(const data::Dataset& dataset,
                      const std::vector<data::TrainWindow>& train) {
  STISAN_CHECK_EQ(&dataset, dataset_);
  const auto& cfg = options_.train;
  const int64_t num_negatives = cfg.num_negatives;

  SetTraining(true);
  // The per-window forward pass: everything around it (shuffling, gradient
  // accumulation, LR schedule, clipping, non-finite guards, checkpointing)
  // lives in the shared train::Trainer.
  auto loss_fn = [&](size_t idx) -> Tensor {
    const data::TrainWindow& w = train[idx];
    const int64_t n = static_cast<int64_t>(w.poi.size()) - 1;
    const int64_t first_real = std::min<int64_t>(w.first_real, n - 1);

    // Source sequence is the window minus its last visit.
    std::vector<int64_t> src_poi(w.poi.begin(), w.poi.end() - 1);
    std::vector<double> src_t(w.t.begin(), w.t.end() - 1);
    Tensor f = Encode(src_poi, src_t, first_real, rng_);

    // Per-step candidates: target poi[i+1] plus L KNN negatives.
    std::vector<int64_t> cand_ids;
    std::vector<int64_t> step_of_row;
    for (int64_t i = first_real; i < n; ++i) {
      const int64_t target = w.poi[static_cast<size_t>(i + 1)];
      STISAN_CHECK_NE(target, data::kPaddingPoi);
      cand_ids.push_back(target);
      step_of_row.push_back(i);
      const auto negs =
          sampler_->Sample(target, num_negatives, {target}, rng_);
      for (int64_t neg : negs) {
        cand_ids.push_back(neg);
        step_of_row.push_back(i);
      }
    }
    const int64_t m = n - first_real;
    Tensor c = Embed(cand_ids);
    Tensor s = Preferences(c, f, step_of_row, first_real);
    // 1/sqrt(d) keeps the logits in the sigmoid's sensitive range (the
    // raw inner products scale with the embedding dimension).
    Tensor scores = ops::Reshape(
        ops::MulScalar(MatchScores(s, c), score_scale_),
        {m, num_negatives + 1});
    Tensor pos = ops::Reshape(ops::Slice(scores, 1, 0, 1), {m});
    Tensor neg = ops::Slice(scores, 1, 1, num_negatives + 1);
    return train::WeightedBceLoss(pos, neg, cfg.temperature);
  };

  train::Trainer trainer(Parameters(), cfg, &rng_, name(),
                         ConfigFingerprint());
  last_train_result_ = trainer.Run(train.size(), loss_fn);
  last_epoch_loss_ = last_train_result_.last_epoch_loss;
  SetTraining(false);
}

std::vector<float> StisanModel::Score(const data::EvalInstance& instance,
                                      const std::vector<int64_t>& candidates) {
  NoGradGuard no_grad;
  SetTraining(false);
  const int64_t n = static_cast<int64_t>(instance.poi.size());
  Tensor f = Encode(instance.poi, instance.t, instance.first_real, rng_);
  Tensor c = Embed(candidates);
  std::vector<int64_t> step_of_row(candidates.size(), n - 1);
  Tensor s = Preferences(c, f, step_of_row, instance.first_real);
  return ops::MulScalar(MatchScores(s, c), score_scale_).ToVector();
}

std::vector<std::vector<float>> StisanModel::ScoreBatch(
    const std::vector<const data::EvalInstance*>& instances,
    const std::vector<std::vector<int64_t>>& candidates) {
  NoGradGuard no_grad;
  SetTraining(false);
  const int64_t bsz = static_cast<int64_t>(instances.size());
  STISAN_CHECK_EQ(candidates.size(), instances.size());
  if (bsz == 0) return {};
  const int64_t n = static_cast<int64_t>(instances[0]->poi.size());
  // Mixed-length batches (length-1 deltas from the serving fallback path,
  // ragged ad-hoc callers) cannot share one padded forward; degrade to
  // per-instance scoring instead of CHECK-failing inside EncodeBatch.
  for (const auto* inst : instances) {
    if (static_cast<int64_t>(inst->poi.size()) != n) {
      return SequentialRecommender::ScoreBatch(instances, candidates);
    }
  }

  Tensor f = EncodeBatch(instances, rng_);  // [B, n, d]

  // Candidate lists are padded to the widest list with the padding POI
  // (zero embedding row); padded rows are dropped after scoring.
  int64_t m = 0;
  for (const auto& cand : candidates) {
    m = std::max(m, static_cast<int64_t>(cand.size()));
  }
  std::vector<int64_t> flat;
  flat.reserve(static_cast<size_t>(bsz * m));
  std::vector<int64_t> first_real(static_cast<size_t>(bsz));
  for (int64_t b = 0; b < bsz; ++b) {
    const auto& cand = candidates[static_cast<size_t>(b)];
    flat.insert(flat.end(), cand.begin(), cand.end());
    flat.resize(static_cast<size_t>((b + 1) * m), data::kPaddingPoi);
    first_real[static_cast<size_t>(b)] =
        instances[static_cast<size_t>(b)]->first_real;
  }
  // Candidate pools of nearby targets overlap heavily: embed each unique
  // POI once and gather rows back into batch order (bit-identical, since
  // Embed is row-wise).
  const auto [unique, local] = models::DedupIds(flat);
  Tensor c = ops::Reshape(
      ops::EmbeddingLookup(Embed(unique), local, /*padding_idx=*/-1),
      {bsz, m, dim_});

  // Preference vectors: TAAD over each instance's encoder states, or (when
  // TAAD is ablated) the final-step state broadcast across candidates —
  // the batched equivalents of Preferences at step n-1.
  Tensor s = options_.use_taad ? TaadDecodeBatch(c, f, first_real)
                               : ops::Slice(f, 1, n - 1, n);
  Tensor scores =
      ops::MulScalar(MatchScores(s, c), score_scale_);  // [B, m]
  const std::vector<float> values = scores.ToVector();

  std::vector<std::vector<float>> out(static_cast<size_t>(bsz));
  for (int64_t b = 0; b < bsz; ++b) {
    const auto& cand = candidates[static_cast<size_t>(b)];
    const float* row = values.data() + b * m;
    out[static_cast<size_t>(b)].assign(row, row + cand.size());
  }
  return out;
}

Tensor StisanModel::AverageAttentionMap(const std::vector<int64_t>& pois,
                                        const std::vector<double>& timestamps,
                                        int64_t first_real) {
  NoGradGuard no_grad;
  SetTraining(false);
  const int64_t n = static_cast<int64_t>(pois.size());
  Tensor e = Embed(pois);
  e = options_.use_tape ? ApplyTape(e, timestamps, first_real)
                        : ApplyVanillaPe(e);
  Tensor bias = RelationBias(pois, timestamps, first_real);
  Tensor mask = BuildPaddedCausalMask(n, first_real);
  auto maps = encoder_->AttentionMaps(e, bias, mask, rng_);
  STISAN_CHECK(!maps.empty());
  Tensor avg = maps[0];
  for (size_t i = 1; i < maps.size(); ++i) avg = avg + maps[i];
  return ops::MulScalar(avg, 1.0f / static_cast<float>(maps.size()));
}

}  // namespace stisan::core
