#include "core/geo_encoder.h"

#include <cmath>

#include "geo/geo.h"

namespace stisan::core {
namespace {

constexpr double kDegToRad = M_PI / 180.0;
constexpr double kKmPerDegLat = 111.32;

// Equirectangular (x, y) km offsets from a reference point — accurate at
// city scale, cheap, and monotone in true distance.
void ToKmOffsets(const geo::GeoPoint& p, const geo::GeoPoint& ref, double* x,
                 double* y) {
  *y = (p.lat - ref.lat) * kKmPerDegLat;
  *x = (p.lon - ref.lon) * kKmPerDegLat * std::cos(ref.lat * kDegToRad);
}

}  // namespace

GeoEncoder::GeoEncoder(const data::Dataset& dataset,
                       const GeoEncoderOptions& options, Rng& rng)
    : options_(options),
      fourier_dim_([&] {
        int64_t f = options.fourier_dim >= 0 ? options.fourier_dim
                                             : options.dim / 2;
        f -= f % 2;  // sin/cos pairs
        STISAN_CHECK_LT(f, options.dim);  // keep at least one learned dim
        return f;
      }()),
      ngram_dim_(options.dim - fourier_dim_),
      tokens_per_poi_(options.quadkey_level - options.ngram + 1),
      token_embedding_(geo::QuadKeyNgramVocabSize(options.ngram) + 1,
                       ngram_dim_, rng, /*padding_idx=*/0) {
  STISAN_CHECK_GT(tokens_per_poi_, 0);
  STISAN_CHECK(!options_.scales_km.empty());
  RegisterModule(&token_embedding_);
  const int64_t num_pois = dataset.num_pois();

  // ---- Fixed Fourier features ----
  // Reference point: centroid of all POI coordinates.
  geo::GeoPoint ref{0, 0};
  if (num_pois > 0) {
    for (int64_t p = 1; p <= num_pois; ++p) {
      ref.lat += dataset.poi_location(p).lat;
      ref.lon += dataset.poi_location(p).lon;
    }
    ref.lat /= double(num_pois);
    ref.lon /= double(num_pois);
  }
  // Random unit directions with magnitudes 1/scale, deterministic given the
  // model seed (drawn from `rng`, which the caller seeds).
  const int64_t num_freq = fourier_dim_ / 2;
  std::vector<double> wx(num_freq), wy(num_freq);
  for (int64_t k = 0; k < num_freq; ++k) {
    const double theta = rng.Uniform() * 2.0 * M_PI;
    const double scale =
        options_.scales_km[static_cast<size_t>(k) % options_.scales_km.size()];
    wx[static_cast<size_t>(k)] = std::cos(theta) / scale;
    wy[static_cast<size_t>(k)] = std::sin(theta) / scale;
  }
  // Scale features so the per-POI Fourier block has unit-ish norm.
  const float amp =
      num_freq > 0 ? 1.0f / std::sqrt(static_cast<float>(num_freq)) : 0.0f;
  fourier_.assign(static_cast<size_t>((num_pois + 1) * fourier_dim_), 0.0f);
  for (int64_t p = 1; p <= num_pois; ++p) {
    double x = 0, y = 0;
    ToKmOffsets(dataset.poi_location(p), ref, &x, &y);
    float* row = fourier_.data() + p * fourier_dim_;
    for (int64_t k = 0; k < num_freq; ++k) {
      const double phase = wx[static_cast<size_t>(k)] * x +
                           wy[static_cast<size_t>(k)] * y;
      row[2 * k] = amp * static_cast<float>(std::sin(phase));
      row[2 * k + 1] = amp * static_cast<float>(std::cos(phase));
    }
  }

  // ---- Quadkey n-gram tokens ----
  poi_tokens_.assign(
      static_cast<size_t>((num_pois + 1) * tokens_per_poi_), 0);
  for (int64_t p = 1; p <= num_pois; ++p) {
    const auto quadkey =
        geo::ToQuadKey(dataset.poi_location(p), options_.quadkey_level);
    const auto tokens = geo::QuadKeyNgramTokens(quadkey, options_.ngram);
    STISAN_CHECK_EQ(static_cast<int64_t>(tokens.size()), tokens_per_poi_);
    for (int64_t k = 0; k < tokens_per_poi_; ++k) {
      // +1 shifts past the padding token id 0.
      poi_tokens_[static_cast<size_t>(p * tokens_per_poi_ + k)] =
          tokens[static_cast<size_t>(k)] + 1;
    }
  }
}

Tensor GeoEncoder::Forward(const std::vector<int64_t>& pois) const {
  const int64_t m = static_cast<int64_t>(pois.size());

  // Fixed Fourier block (constant tensor, no gradient).
  Tensor fourier = Tensor::Zeros({m, fourier_dim_});
  float* fd = fourier.data();
  for (int64_t i = 0; i < m; ++i) {
    const int64_t poi = pois[static_cast<size_t>(i)];
    STISAN_CHECK_GE(poi, 0);
    STISAN_CHECK_LT(poi * fourier_dim_,
                    static_cast<int64_t>(fourier_.size()) + 1);
    const float* src = fourier_.data() + poi * fourier_dim_;
    for (int64_t k = 0; k < fourier_dim_; ++k) fd[i * fourier_dim_ + k] = src[k];
  }

  // Learned n-gram block: [m * tokens, g] -> mean over tokens -> [m, g].
  std::vector<int64_t> flat;
  flat.reserve(static_cast<size_t>(m * tokens_per_poi_));
  for (int64_t poi : pois) {
    for (int64_t k = 0; k < tokens_per_poi_; ++k) {
      flat.push_back(
          poi_tokens_[static_cast<size_t>(poi * tokens_per_poi_ + k)]);
    }
  }
  Tensor embedded = token_embedding_.Forward(flat);
  Tensor grouped = ops::Reshape(embedded, {m, tokens_per_poi_, ngram_dim_});
  Tensor ngram = ops::MulScalar(ops::SumDim(grouped, 1),
                                1.0f / static_cast<float>(tokens_per_poi_));
  if (fourier_dim_ == 0) return ngram;
  return ops::Concat(fourier, ngram, /*dim=*/1);
}

}  // namespace stisan::core
