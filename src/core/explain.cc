#include "core/explain.h"

#include <algorithm>

#include "geo/geo.h"
#include "util/string_util.h"

namespace stisan::core {

Explanation ExplainRecommendation(StisanModel& model,
                                  const data::Dataset& dataset,
                                  const data::EvalInstance& instance,
                                  int64_t candidate, int64_t top_k) {
  Explanation out;
  out.candidate = candidate;
  out.score = model.Score(instance, {candidate}).at(0);

  const int64_t n = static_cast<int64_t>(instance.poi.size());
  const auto& candidate_loc = dataset.poi_location(candidate);
  const auto& current_loc =
      dataset.poi_location(instance.poi[static_cast<size_t>(n - 1)]);
  out.km_from_current = geo::HaversineKm(current_loc, candidate_loc);

  // Final-step attention over the history from the encoder stack.
  Tensor map =
      model.AverageAttentionMap(instance.poi, instance.t, instance.first_real);
  std::vector<ExplanationStep> steps;
  for (int64_t j = instance.first_real; j < n; ++j) {
    ExplanationStep step;
    step.step = j;
    step.poi = instance.poi[static_cast<size_t>(j)];
    step.attention = map.at({n - 1, j});
    step.hours_before =
        (instance.t[static_cast<size_t>(n - 1)] -
         instance.t[static_cast<size_t>(j)]) /
        3600.0;
    step.km_to_candidate =
        geo::HaversineKm(dataset.poi_location(step.poi), candidate_loc);
    steps.push_back(step);
  }
  std::sort(steps.begin(), steps.end(),
            [](const ExplanationStep& a, const ExplanationStep& b) {
              return a.attention > b.attention;
            });
  if (static_cast<int64_t>(steps.size()) > top_k) {
    steps.resize(static_cast<size_t>(top_k));
  }
  out.attended = std::move(steps);
  return out;
}

std::string FormatExplanation(const Explanation& e) {
  std::string out = StrFormat(
      "candidate POI %lld: score %.3f (%.2f km from current location)\n"
      "most influential history check-ins:\n",
      static_cast<long long>(e.candidate), double(e.score),
      e.km_from_current);
  for (const auto& s : e.attended) {
    out += StrFormat(
        "  step %2lld: POI %-5lld attention %.3f  (%.1f h ago, %.2f km from "
        "candidate)\n",
        static_cast<long long>(s.step), static_cast<long long>(s.poi),
        s.attention, s.hours_before, s.km_to_candidate);
  }
  return out;
}

}  // namespace stisan::core
