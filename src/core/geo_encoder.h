// Geography encoder for the embedding module (paper §III-B, following
// GeoSAN [23]).
//
// Two complementary components, concatenated:
//
//  1. Fixed random Fourier position features: each POI's (x, y) offset (km)
//     from the dataset centroid is passed through sin/cos of random
//     projections at several length scales. By construction the dot product
//     of two POIs' features approximates a kernel that decays with their
//     physical distance — so spatial proximity is usable by the matching
//     layers from the very first training step.
//  2. Learned quadkey n-gram embeddings: the POI's Web-Mercator quadkey is
//     tokenised into overlapping n-grams and their embeddings are mean
//     pooled. Nearby POIs share prefix tokens, so the learned component
//     generalises across space while still being able to memorise
//     POI-specific geography.
//
// (GeoSAN trains a self-attention encoder over the n-gram sequence on
// millions of check-ins; the fixed-kernel + mean-pooling combination here is
// the documented CPU-scale substitution — see DESIGN.md.)

#pragma once

#include <vector>

#include "data/types.h"
#include "geo/quadkey.h"
#include "nn/layers.h"
#include "nn/module.h"

namespace stisan::core {

struct GeoEncoderOptions {
  /// Total output dimension (Fourier part + n-gram part).
  int64_t dim = 16;
  /// Dimension of the fixed Fourier part; -1 = dim / 2 (rounded to even).
  int64_t fourier_dim = -1;
  /// Length scales (km) of the Fourier frequencies, cycled across pairs.
  std::vector<double> scales_km = {0.5, 1.5, 4.0, 10.0};
  int quadkey_level = 17;  // ~300 m tiles
  int ngram = 6;           // token vocab 4^6 = 4096 (+1 padding)
};

/// Embeds POI locations. All per-POI features are precomputed from the
/// dataset once; lookups at train/eval time are pure tensor ops.
class GeoEncoder : public nn::Module {
 public:
  GeoEncoder(const data::Dataset& dataset, const GeoEncoderOptions& options,
             Rng& rng);

  /// Returns [pois.size(), dim]; padding POIs map to zero vectors.
  Tensor Forward(const std::vector<int64_t>& pois) const;

  int64_t dim() const { return options_.dim; }
  int64_t fourier_dim() const { return fourier_dim_; }
  int64_t tokens_per_poi() const { return tokens_per_poi_; }

 private:
  GeoEncoderOptions options_;
  int64_t fourier_dim_ = 0;
  int64_t ngram_dim_ = 0;
  int64_t tokens_per_poi_ = 0;
  /// Precomputed fixed Fourier features, [num_pois+1, fourier_dim]
  /// (row 0 = padding = zeros), stored flat.
  std::vector<float> fourier_;
  /// Flattened n-gram token ids: POI p occupies
  /// [p * tokens_per_poi, (p+1) * tokens_per_poi); token 0 = padding.
  std::vector<int64_t> poi_tokens_;
  nn::Embedding token_embedding_;
};

}  // namespace stisan::core
