#include "core/tape.h"

#include <cmath>
#include <utility>

#include "nn/layers.h"
#include "util/check.h"
#include "util/lru_cache.h"

namespace stisan::core {

namespace {

struct PositionsKey {
  std::vector<double> positions;
  int64_t dim = 0;

  bool operator==(const PositionsKey& o) const {
    return dim == o.dim && positions == o.positions;
  }
};

struct PositionsKeyHash {
  size_t operator()(const PositionsKey& k) const {
    uint64_t h = Fnv1aBytes(k.positions.data(),
                            k.positions.size() * sizeof(double));
    h = Fnv1aBytes(&k.dim, sizeof(k.dim), h);
    return static_cast<size_t>(h);
  }
};

LruCache<PositionsKey, Tensor, PositionsKeyHash>& TapeCache() {
  // Leaked: see RelationCache() — outlives arena/static teardown.
  static auto* cache =
      new LruCache<PositionsKey, Tensor, PositionsKeyHash>(256);
  return *cache;
}

}  // namespace

std::vector<double> TimeAwarePositions(const std::vector<double>& timestamps,
                                       int64_t first_real) {
  const int64_t n = static_cast<int64_t>(timestamps.size());
  STISAN_CHECK_GE(n, 1);
  STISAN_CHECK_GE(first_real, 0);
  STISAN_CHECK_LT(first_real, n);

  // Mean interval over the real suffix (eq. 2's normaliser).
  double mean_dt = 0.0;
  int64_t real_gaps = 0;
  for (int64_t k = first_real + 1; k < n; ++k) {
    const double dt = timestamps[size_t(k)] - timestamps[size_t(k - 1)];
    STISAN_CHECK_GE(dt, 0.0);  // sequences are chronological
    mean_dt += dt;
    ++real_gaps;
  }
  if (real_gaps > 0) mean_dt /= double(real_gaps);

  std::vector<double> pos(static_cast<size_t>(n));
  pos[0] = 1.0;
  for (int64_t k = 1; k < n; ++k) {
    const double dt = timestamps[size_t(k)] - timestamps[size_t(k - 1)];
    // Degenerate spans (all same timestamp) -> vanilla integer positions.
    const double stretched = mean_dt > 1e-9 ? dt / mean_dt : 0.0;
    pos[size_t(k)] = pos[size_t(k - 1)] + stretched + 1.0;
  }
  return pos;
}

Tensor ApplyTape(const Tensor& x, const std::vector<double>& timestamps,
                 int64_t first_real) {
  STISAN_CHECK_EQ(x.dim(), 2);
  STISAN_CHECK_EQ(x.size(0), static_cast<int64_t>(timestamps.size()));
  const auto pos = TimeAwarePositions(timestamps, first_real);
  return x + CachedSinusoidalEncoding(pos, x.size(1));
}

Tensor ApplyVanillaPe(const Tensor& x) {
  STISAN_CHECK_EQ(x.dim(), 2);
  // Integer positions 1..n go through the same cache (one entry per n).
  const int64_t n = x.size(0);
  std::vector<double> pos(static_cast<size_t>(n));
  for (int64_t k = 0; k < n; ++k) pos[size_t(k)] = double(k + 1);
  return x + CachedSinusoidalEncoding(pos, x.size(1));
}

Tensor CachedSinusoidalEncoding(const std::vector<double>& positions,
                                int64_t dim) {
  PositionsKey key{positions, dim};
  if (auto hit = TapeCache().Get(key)) return *hit;
  Tensor table = nn::SinusoidalEncoding(positions, dim);
  TapeCache().Put(std::move(key), table);
  return table;
}

TapeCacheStats GetTapeCacheStats() {
  return {TapeCache().hits(), TapeCache().misses()};
}

}  // namespace stisan::core
