#include "core/tape.h"

#include <atomic>
#include <cmath>
#include <utility>

#include "nn/layers.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/lru_cache.h"

namespace stisan::core {

namespace {

/// Clamps a possibly-negative time gap to zero. Real check-in logs contain
/// clock skew and duplicate-second records, so out-of-order timestamps are
/// data, not a programming error: count them, warn once, keep going.
double ClampGap(double dt, bool count) {
  if (dt >= 0.0) return dt;
  if (count) {
    static obs::Counter& clamped =
        obs::GetCounter("tape/negative_gaps_clamped");
    clamped.Inc();
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true, std::memory_order_relaxed)) {
      STISAN_LOG(WARNING)
          << "non-monotone timestamps: negative time gap " << dt
          << "s clamped to 0 (counted in tape/negative_gaps_clamped; "
             "warning once)";
    }
  }
  return 0.0;
}

struct PositionsKey {
  std::vector<double> positions;
  int64_t dim = 0;

  bool operator==(const PositionsKey& o) const {
    return dim == o.dim && positions == o.positions;
  }
};

struct PositionsKeyHash {
  size_t operator()(const PositionsKey& k) const {
    uint64_t h = Fnv1aBytes(k.positions.data(),
                            k.positions.size() * sizeof(double));
    h = Fnv1aBytes(&k.dim, sizeof(k.dim), h);
    return static_cast<size_t>(h);
  }
};

LruCache<PositionsKey, Tensor, PositionsKeyHash>& TapeCache() {
  // Leaked: see RelationCache() — outlives arena/static teardown. The
  // snapshot layer polls the cache's own counters lazily instead of paying
  // a second increment on the lookup path.
  static auto* cache = [] {
    auto* c = new LruCache<PositionsKey, Tensor, PositionsKeyHash>(256);
    obs::RegisterCallbackGauge("tape/cache_hits",
                               [c] { return double(c->hits()); });
    obs::RegisterCallbackGauge("tape/cache_misses",
                               [c] { return double(c->misses()); });
    return c;
  }();
  return *cache;
}

}  // namespace

std::vector<double> TimeAwarePositions(const std::vector<double>& timestamps,
                                       int64_t first_real) {
  const int64_t n = static_cast<int64_t>(timestamps.size());
  STISAN_CHECK_GE(n, 1);
  STISAN_CHECK_GE(first_real, 0);
  STISAN_CHECK_LT(first_real, n);

  // Mean interval over the real suffix (eq. 2's normaliser). Negative gaps
  // (clock skew, duplicate-second records) are clamped to zero; they are
  // counted once per gap in the position loop below.
  double mean_dt = 0.0;
  int64_t real_gaps = 0;
  for (int64_t k = first_real + 1; k < n; ++k) {
    const double dt =
        ClampGap(timestamps[size_t(k)] - timestamps[size_t(k - 1)],
                 /*count=*/false);
    mean_dt += dt;
    ++real_gaps;
  }
  if (real_gaps > 0) mean_dt /= double(real_gaps);

  std::vector<double> pos(static_cast<size_t>(n));
  pos[0] = 1.0;
  for (int64_t k = 1; k < n; ++k) {
    const double dt =
        ClampGap(timestamps[size_t(k)] - timestamps[size_t(k - 1)],
                 /*count=*/true);
    // Degenerate spans (all same timestamp) -> vanilla integer positions.
    const double stretched = mean_dt > 1e-9 ? dt / mean_dt : 0.0;
    pos[size_t(k)] = pos[size_t(k - 1)] + stretched + 1.0;
  }
  return pos;
}

Tensor ApplyTape(const Tensor& x, const std::vector<double>& timestamps,
                 int64_t first_real) {
  STISAN_CHECK_EQ(x.dim(), 2);
  STISAN_CHECK_EQ(x.size(0), static_cast<int64_t>(timestamps.size()));
  const auto pos = TimeAwarePositions(timestamps, first_real);
  return x + CachedSinusoidalEncoding(pos, x.size(1));
}

Tensor ApplyVanillaPe(const Tensor& x) {
  STISAN_CHECK_EQ(x.dim(), 2);
  // Integer positions 1..n go through the same cache (one entry per n).
  const int64_t n = x.size(0);
  std::vector<double> pos(static_cast<size_t>(n));
  for (int64_t k = 0; k < n; ++k) pos[size_t(k)] = double(k + 1);
  return x + CachedSinusoidalEncoding(pos, x.size(1));
}

Tensor CachedSinusoidalEncoding(const std::vector<double>& positions,
                                int64_t dim) {
  PositionsKey key{positions, dim};
  if (auto hit = TapeCache().Get(key)) return *hit;
  Tensor table = nn::SinusoidalEncoding(positions, dim);
  TapeCache().Put(std::move(key), table);
  return table;
}

TapeCacheStats GetTapeCacheStats() {
  return {TapeCache().hits(), TapeCache().misses()};
}

}  // namespace stisan::core
