// Target Aware Attention Decoder (TAAD) — paper §III-F, eq. 10.
//
// The decoder improves preference representations by attending from each
// candidate POI embedding over the encoder output:
//
//   S = Attn(C, F, F) = Softmax(C F^T / sqrt(d)) F
//
// It is parameter-free. During training the prediction at step i may only
// attend to encoder states 1..i (same leakage mask as the encoder); each
// candidate row therefore carries the step it belongs to.

#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace stisan::core {

/// Decodes preference vectors for a batch of per-step candidates.
///
/// candidates: [M, d] candidate embeddings; encoder_out: [n, d];
/// step_of_row[r] = the source step i of row r (keys first_real..i are
/// visible). Returns S: [M, d].
Tensor TaadDecode(const Tensor& candidates, const Tensor& encoder_out,
                  const std::vector<int64_t>& step_of_row,
                  int64_t first_real);

/// Batched TAAD for evaluation: every candidate row decodes at the final
/// step n-1 of its own sequence (the eval protocol's "predict the next
/// visit" query).
///
/// candidates: [B, M, d]; encoder_out: [B, n, d]; first_real[b] = first
/// non-padding index of sequence b (keys first_real[b]..n-1 are visible,
/// exactly the rows TaadDecode exposes at step n-1). Returns [B, M, d];
/// each batch slice matches the per-instance TaadDecode output.
Tensor TaadDecodeBatch(const Tensor& candidates, const Tensor& encoder_out,
                       const std::vector<int64_t>& first_real);

/// Matching function (paper eq. 11): per-row inner product
/// y_r = <S_r, C_r>. Accepts [M, d] (returns [M]) or batched [B, M, d]
/// (returns [B, M]); `preferences` may broadcast (e.g. [B, 1, d]).
Tensor MatchScores(const Tensor& preferences, const Tensor& candidates);

}  // namespace stisan::core
