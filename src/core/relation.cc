#include "core/relation.h"

#include <algorithm>
#include <cmath>

#include "data/types.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/lru_cache.h"

namespace stisan::core {

namespace {
constexpr double kSecondsPerDay = 86400.0;
}  // namespace

Tensor BuildRelationMatrix(const std::vector<int64_t>& pois,
                           const std::vector<double>& timestamps,
                           const std::vector<geo::GeoPoint>& coords,
                           int64_t first_real,
                           const RelationOptions& options) {
  const int64_t n = static_cast<int64_t>(pois.size());
  STISAN_CHECK_EQ(n, static_cast<int64_t>(timestamps.size()));
  STISAN_CHECK_EQ(n, static_cast<int64_t>(coords.size()));
  STISAN_CHECK_GE(options.kt_days, 0.0);
  STISAN_CHECK_GE(options.kd_km, 0.0);

  Tensor r = Tensor::Zeros({n, n});
  float* rd = r.data();

  // First pass: clipped interval sums r_hat for causal, non-padding pairs.
  double r_hat_max = 0.0;
  for (int64_t i = first_real; i < n; ++i) {
    for (int64_t j = first_real; j <= i; ++j) {
      const double dt = std::min(
          options.kt_days,
          std::fabs(timestamps[size_t(i)] - timestamps[size_t(j)]) /
              kSecondsPerDay);
      const double dd = std::min(
          options.kd_km,
          geo::HaversineKm(coords[size_t(i)], coords[size_t(j)]));
      const double r_hat = dt + dd;
      rd[i * n + j] = static_cast<float>(r_hat);
      r_hat_max = std::max(r_hat_max, r_hat);
    }
  }
  // Second pass: invert, r = r_hat_max - r_hat.
  for (int64_t i = first_real; i < n; ++i) {
    for (int64_t j = first_real; j <= i; ++j) {
      rd[i * n + j] = static_cast<float>(r_hat_max) - rd[i * n + j];
    }
  }
  return r;
}

Tensor SoftmaxScaleRelation(const Tensor& relation, int64_t first_real) {
  STISAN_CHECK_EQ(relation.dim(), 2);
  const int64_t n = relation.size(0);
  STISAN_CHECK_EQ(relation.size(1), n);
  Tensor out = Tensor::Zeros({n, n});
  const float* in = relation.data();
  float* od = out.data();
  for (int64_t i = 0; i < n; ++i) {
    const int64_t lo = i < first_real ? i : first_real;  // pad rows: self only
    const int64_t hi = i;  // inclusive
    // Numerically stable softmax over columns [lo, hi].
    float mx = in[i * n + lo];
    for (int64_t j = lo; j <= hi; ++j) mx = std::max(mx, in[i * n + j]);
    float sum = 0.0f;
    for (int64_t j = lo; j <= hi; ++j) sum += std::exp(in[i * n + j] - mx);
    for (int64_t j = lo; j <= hi; ++j) {
      od[i * n + j] = std::exp(in[i * n + j] - mx) / sum;
    }
  }
  return out;
}

Tensor BuildPaddedCausalMask(int64_t n, int64_t first_real) {
  STISAN_CHECK_GE(first_real, 0);
  STISAN_CHECK_LE(first_real, n);
  static obs::Counter& built = obs::GetCounter("mask/causal_built");
  built.Inc();
  Tensor mask = Tensor::Zeros({n, n});
  float* m = mask.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      const bool causal = j <= i;
      const bool real_key = j >= first_real;
      const bool self = j == i;
      if (!(causal && (real_key || self))) m[i * n + j] = -1e9f;
    }
  }
  return mask;
}

namespace {

// Full content key of a relation-matrix request. Equality compares every
// field; the hash (FNV-1a over the raw bytes) is only a bucket index.
struct RelationKey {
  std::vector<int64_t> pois;
  std::vector<double> timestamps;
  std::vector<geo::GeoPoint> coords;
  int64_t first_real = 0;
  double kt_days = 0.0;
  double kd_km = 0.0;

  bool operator==(const RelationKey& o) const {
    return first_real == o.first_real && kt_days == o.kt_days &&
           kd_km == o.kd_km && pois == o.pois && timestamps == o.timestamps &&
           coords == o.coords;
  }
};

struct RelationKeyHash {
  size_t operator()(const RelationKey& k) const {
    uint64_t h = Fnv1aBytes(k.pois.data(), k.pois.size() * sizeof(int64_t));
    h = Fnv1aBytes(k.timestamps.data(), k.timestamps.size() * sizeof(double),
                   h);
    h = Fnv1aBytes(k.coords.data(), k.coords.size() * sizeof(geo::GeoPoint),
                   h);
    h = Fnv1aBytes(&k.first_real, sizeof(k.first_real), h);
    h = Fnv1aBytes(&k.kt_days, sizeof(k.kt_days), h);
    h = Fnv1aBytes(&k.kd_km, sizeof(k.kd_km), h);
    return static_cast<size_t>(h);
  }
};

// ~256 distinct windows cover the training sets this repo trains on; the
// leaked singleton avoids static-destruction races with arena teardown.
// Hit/miss counts are polled by obs snapshots through callback gauges, so
// the lookup path pays no extra increment.
LruCache<RelationKey, Tensor, RelationKeyHash>& RelationCache() {
  static auto* cache = [] {
    auto* c = new LruCache<RelationKey, Tensor, RelationKeyHash>(256);
    obs::RegisterCallbackGauge("relation/cache_hits",
                               [c] { return double(c->hits()); });
    obs::RegisterCallbackGauge("relation/cache_misses",
                               [c] { return double(c->misses()); });
    return c;
  }();
  return *cache;
}

}  // namespace

Tensor CachedScaledRelation(const std::vector<int64_t>& pois,
                            const std::vector<double>& timestamps,
                            const std::vector<geo::GeoPoint>& coords,
                            int64_t first_real,
                            const RelationOptions& options) {
  RelationKey key{pois,       timestamps,      coords,
                  first_real, options.kt_days, options.kd_km};
  if (auto hit = RelationCache().Get(key)) return *hit;
  Tensor scaled = SoftmaxScaleRelation(
      BuildRelationMatrix(pois, timestamps, coords, first_real, options),
      first_real);
  RelationCache().Put(std::move(key), scaled);
  return scaled;
}

RelationCacheStats GetRelationCacheStats() {
  return {RelationCache().hits(), RelationCache().misses()};
}

}  // namespace stisan::core
