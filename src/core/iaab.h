// Interval Aware Attention Block (IAAB) — paper §III-E, eq. 5-9, Alg. 2.
//
// One block alternates an interval-aware attention layer and a two-layer
// point-wise feed-forward network, each wrapped in a pre-norm residual
// (eq. 8): x = x + Layer(LayerNorm(x)).
//
// The attention layer is a causal single-head self-attention whose logits
// receive the softmax-scaled spatial-temporal relation matrix as a
// parameter-free additive bias (eq. 6). Ablation modes reproduce the
// paper's Table IV variants:
//  - kVanilla:      bias dropped (variant III, "Remove IAAB")
//  - kRelationOnly: attention map replaced by Softmax(R) (variant IV,
//                   "Remove SA")

#pragma once

#include "nn/attention.h"
#include "nn/layers.h"
#include "nn/module.h"

namespace stisan::core {

enum class AttentionMode {
  kIntervalAware,  // Softmax(QK^T/sqrt(d) + softmax(R)) V  — full IAAB
  kVanilla,        // Softmax(QK^T/sqrt(d)) V               — ablation III
  kRelationOnly,   // Softmax(R) V                          — ablation IV
};

struct IaabOptions {
  int64_t dim = 64;
  int64_t ffn_hidden = 256;  // d_h > d (paper eq. 7)
  float dropout = 0.2f;
  AttentionMode mode = AttentionMode::kIntervalAware;
  /// false = bidirectional attention (Bert4Rec); masking then comes only
  /// from the caller-provided mask.
  bool causal = true;
  /// Attention heads (dim must divide evenly). The paper is single-head;
  /// multi-head is provided as a library extension.
  int64_t num_heads = 1;
  /// CPU-scale initialisation scheme: W_V starts as the identity (the
  /// attention branch mixes actual embeddings — and thus the geography
  /// kernel — from the first step, letting the relation bias act
  /// immediately) and the FFN residual branch is gated by a learnable
  /// ReZero scalar initialised to 0.
  bool rezero = true;
};

/// A single Interval Aware Attention Block.
class IntervalAwareAttentionBlock : public nn::Module {
 public:
  IntervalAwareAttentionBlock(const IaabOptions& options, Rng& rng);

  /// x: [n, d]. relation_bias: softmax-scaled R [n, n] (may be undefined in
  /// kVanilla mode). mask: additive causal/padding mask [n, n].
  /// Returns [n, d].
  Tensor Forward(const Tensor& x, const Tensor& relation_bias,
                 const Tensor& mask, Rng& rng) const;

  /// Forward() split at the final residual: writes the attention-sublayer
  /// output h into *base and returns the (gated, dropped) FFN branch r, so
  /// the caller can fuse `h + r` into a downstream layer norm
  /// (LayerNorm::ForwardResidual). Forward(x) == *base + result.
  Tensor ForwardSplit(const Tensor& x, const Tensor& relation_bias,
                      const Tensor& mask, Rng& rng, Tensor* base) const;

  /// Post-softmax attention map of this block's attention layer
  /// (interpretability probe; no dropout).
  Tensor AttentionMap(const Tensor& x, const Tensor& relation_bias,
                      const Tensor& mask) const;

  // ---- Sub-layer accessors for incremental (row-at-a-time) inference ----
  // The serving engine (src/core/incremental.{h,cc}) re-runs exactly this
  // block's eval-mode composition on one new row against cached K/V rows;
  // it needs the individual sub-layers, read-only.
  const IaabOptions& options() const { return options_; }
  const nn::LayerNorm& ln_attention() const { return ln_attention_; }
  const nn::CausalSelfAttention& attention() const { return attention_; }
  const nn::Linear& values() const { return values_; }
  const nn::LayerNorm& ln_ffn() const { return ln_ffn_; }
  const nn::PointwiseFeedForward& ffn() const { return ffn_; }
  const Tensor& ffn_gate() const { return gate_ffn_; }

 private:
  IaabOptions options_;
  nn::LayerNorm ln_attention_;
  nn::CausalSelfAttention attention_;
  nn::Linear values_;  // used by kRelationOnly (Softmax(R) V needs V only)
  nn::LayerNorm ln_ffn_;
  nn::PointwiseFeedForward ffn_;
  nn::Dropout residual_dropout_;
  Tensor gate_ffn_;  // [1] ReZero gate on the FFN branch (optional)
};

/// A stack of N blocks with a final layer norm.
class IaabEncoder : public nn::Module {
 public:
  IaabEncoder(const IaabOptions& options, int64_t num_blocks, Rng& rng);

  Tensor Forward(const Tensor& x, const Tensor& relation_bias,
                 const Tensor& mask, Rng& rng) const;

  /// Attention maps of every block collected during a forward pass
  /// (interpretability probe; call in eval mode).
  std::vector<Tensor> AttentionMaps(const Tensor& x,
                                    const Tensor& relation_bias,
                                    const Tensor& mask, Rng& rng) const;

  int64_t num_blocks() const { return static_cast<int64_t>(blocks_.size()); }
  const IntervalAwareAttentionBlock& block(int64_t i) const {
    return *blocks_[static_cast<size_t>(i)];
  }
  const nn::LayerNorm& final_norm() const { return final_norm_; }

 private:
  std::vector<std::unique_ptr<IntervalAwareAttentionBlock>> blocks_;
  nn::LayerNorm final_norm_;
};

}  // namespace stisan::core
