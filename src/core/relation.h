// Spatial-temporal relation matrix R — paper §III-D, eq. 4.
//
// For every causal pair (i, j), j <= i:
//
//   dt_ij = min(k_t, |t_i - t_j|)          (clipped time interval, days)
//   dd_ij = min(k_d, Haversine(g_i, g_j))  (clipped geo interval, km)
//   r_hat_ij = dt_ij + dd_ij
//   r_ij = r_hat_max - r_hat_ij            (relations inverse to intervals)
//
// The matrix is lower-triangular (no information leakage). IAAB consumes a
// row-softmax-scaled version added point-wise to the attention logits.

#pragma once

#include <cstdint>
#include <vector>

#include "geo/geo.h"
#include "tensor/tensor.h"

namespace stisan::core {

struct RelationOptions {
  /// Maximum time interval k_t, in days (paper sweeps {0, 5, 10, 20}).
  double kt_days = 10.0;
  /// Maximum geography interval k_d, in kilometres ({0, 5, 10, 15}).
  double kd_km = 15.0;
};

/// Builds the raw lower-triangular relation matrix [n, n].
///
/// Pairs involving a padding position (index < first_real) get relation 0
/// (least related); the attention padding mask hides them anyway. Entries
/// strictly above the diagonal are 0 and must be masked by the caller.
Tensor BuildRelationMatrix(const std::vector<int64_t>& pois,
                           const std::vector<double>& timestamps,
                           const std::vector<geo::GeoPoint>& coords,
                           int64_t first_real,
                           const RelationOptions& options);

/// Row-softmax over the causal (lower-triangle, non-padding) entries: the
/// scaling the paper applies before the point-wise addition (Fig. 3).
/// Masked entries come out as exactly 0. Rows entirely inside the padding
/// prefix degenerate to attending their own position.
Tensor SoftmaxScaleRelation(const Tensor& relation, int64_t first_real);

/// Builds the additive attention mask for a head-padded causal sequence:
/// entry (i, j) is 0 when j <= i and j >= first_real (or j == i, so padding
/// rows still have one live key), else -1e9.
Tensor BuildPaddedCausalMask(int64_t n, int64_t first_real);

/// Memoised SoftmaxScaleRelation(BuildRelationMatrix(...)): the scaled
/// relation matrix is a pure function of the window content, and training
/// revisits the same windows every epoch, so an LRU keyed on the full
/// (pois, timestamps, coords, first_real, options) tuple (exact equality,
/// not just the hash) skips the O(n²) haversine/softmax rebuild. Cached
/// tensors are gradient-free and shared — callers must not mutate them.
Tensor CachedScaledRelation(const std::vector<int64_t>& pois,
                            const std::vector<double>& timestamps,
                            const std::vector<geo::GeoPoint>& coords,
                            int64_t first_real,
                            const RelationOptions& options);

/// Hit/miss counters of the relation LRU (for tests and benchmarks).
struct RelationCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
};
RelationCacheStats GetRelationCacheStats();

}  // namespace stisan::core
