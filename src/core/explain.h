// Recommendation explanations (the paper's interpretability claim, §IV-E
// 3/4, made operational): for a trained STiSAN and a candidate POI, report
// which history check-ins the model attended to, together with their
// spatial and temporal intervals — the quantities IAAB injects into the
// attention map.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/stisan.h"
#include "data/types.h"

namespace stisan::core {

/// One attended history step and why it matters.
struct ExplanationStep {
  int64_t step = 0;           // index in the source window
  int64_t poi = 0;            // the visited POI
  double attention = 0.0;     // final-step encoder attention weight
  double hours_before = 0.0;  // time before the most recent check-in
  double km_to_candidate = 0.0;
};

/// Explanation of one candidate's score.
struct Explanation {
  int64_t candidate = 0;
  float score = 0.0f;
  /// History steps sorted by descending attention (top_k of them).
  std::vector<ExplanationStep> attended;
  /// Distance from the most recent check-in to the candidate (km).
  double km_from_current = 0.0;
};

/// Builds an explanation for `candidate` given the instance's history.
/// `top_k` bounds the number of attended steps returned.
Explanation ExplainRecommendation(StisanModel& model,
                                  const data::Dataset& dataset,
                                  const data::EvalInstance& instance,
                                  int64_t candidate, int64_t top_k = 5);

/// Human-readable multi-line rendering.
std::string FormatExplanation(const Explanation& explanation);

}  // namespace stisan::core
