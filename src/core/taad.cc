#include "core/taad.h"

#include <cmath>

#include "tensor/ops.h"
#include "util/check.h"

namespace stisan::core {

Tensor TaadDecode(const Tensor& candidates, const Tensor& encoder_out,
                  const std::vector<int64_t>& step_of_row,
                  int64_t first_real) {
  STISAN_CHECK_EQ(candidates.dim(), 2);
  STISAN_CHECK_EQ(encoder_out.dim(), 2);
  const int64_t m = candidates.size(0);
  const int64_t d = candidates.size(1);
  const int64_t n = encoder_out.size(0);
  STISAN_CHECK_EQ(d, encoder_out.size(1));
  STISAN_CHECK_EQ(m, static_cast<int64_t>(step_of_row.size()));

  // Per-row leakage mask: row r sees keys [first_real, step_of_row[r]].
  Tensor mask = Tensor::Zeros({m, n});
  float* md = mask.data();
  for (int64_t r = 0; r < m; ++r) {
    const int64_t step = step_of_row[static_cast<size_t>(r)];
    STISAN_CHECK_GE(step, 0);
    STISAN_CHECK_LT(step, n);
    const int64_t lo = std::min(step, first_real);
    for (int64_t j = 0; j < n; ++j) {
      const bool visible = j <= step && j >= lo && (j >= first_real || j == step);
      if (!visible) md[r * n + j] = -1e9f;
    }
  }

  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  if (ops::FusedAttentionEnabled()) {
    // Attn(C, F, F) in one node; the per-row visibility mask rides in as
    // the additive bias (it is data-dependent, not triangular, so it cannot
    // be replaced by the kernel's causal loop bound).
    return ops::FusedAttention(candidates, encoder_out, encoder_out, mask,
                               /*causal=*/false, scale);
  }
  // Composed reference: TransposeLast2 is a zero-copy view; MatMul reads it
  // in place through the fused transposed-GEMM path.
  Tensor logits = ops::MulScalar(
      ops::MatMul(candidates, ops::TransposeLast2(encoder_out)), scale);
  Tensor att = ops::Softmax(logits + mask);
  return ops::MatMul(att, encoder_out);
}

Tensor TaadDecodeBatch(const Tensor& candidates, const Tensor& encoder_out,
                       const std::vector<int64_t>& first_real) {
  STISAN_CHECK_EQ(candidates.dim(), 3);
  STISAN_CHECK_EQ(encoder_out.dim(), 3);
  const int64_t bsz = candidates.size(0);
  const int64_t m = candidates.size(1);
  const int64_t d = candidates.size(2);
  const int64_t n = encoder_out.size(1);
  STISAN_CHECK_EQ(bsz, encoder_out.size(0));
  STISAN_CHECK_EQ(d, encoder_out.size(2));
  STISAN_CHECK_EQ(bsz, static_cast<int64_t>(first_real.size()));

  // Same visibility rule as TaadDecode at step n-1: keys first_real..n-1.
  Tensor mask = Tensor::Zeros({bsz, m, n});
  float* md = mask.data();
  for (int64_t b = 0; b < bsz; ++b) {
    const int64_t step = n - 1;
    const int64_t fr = first_real[static_cast<size_t>(b)];
    const int64_t lo = std::min(step, fr);
    for (int64_t r = 0; r < m; ++r) {
      for (int64_t j = 0; j < n; ++j) {
        const bool visible = j <= step && j >= lo && (j >= fr || j == step);
        if (!visible) md[(b * m + r) * n + j] = -1e9f;
      }
    }
  }

  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  if (ops::FusedAttentionEnabled()) {
    return ops::FusedAttention(candidates, encoder_out, encoder_out, mask,
                               /*causal=*/false, scale);
  }
  Tensor logits = ops::MulScalar(
      ops::MatMul(candidates, ops::TransposeLast2(encoder_out)), scale);
  Tensor att = ops::Softmax(logits + mask);
  return ops::MatMul(att, encoder_out);
}

Tensor MatchScores(const Tensor& preferences, const Tensor& candidates) {
  STISAN_CHECK_EQ(preferences.dim(), candidates.dim());
  STISAN_CHECK_EQ(preferences.shape().back(), candidates.shape().back());
  return ops::SumDim(preferences * candidates, /*dim=*/-1);
}

}  // namespace stisan::core
