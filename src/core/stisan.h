// STiSAN — the end-to-end Spatial-Temporal Interval Aware sequential POI
// recommender (paper §III, Fig. 3).
//
// Pipeline: Embedding (POI embedding ⧺ geography encoding) -> TAPE ->
// N stacked IAABs -> TAAD -> inner-product matching, trained with the
// importance-weighted BCE loss over KNN negatives (eq. 12).
//
// Every component can be switched off independently, reproducing the
// ablation variants of Table IV.

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/geo_encoder.h"
#include "core/iaab.h"
#include "core/relation.h"
#include "core/tape.h"
#include "data/types.h"
#include "models/recommender.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "train/config.h"
#include "train/negative_sampler.h"
#include "train/trainer.h"

namespace stisan::core {

class IncrementalScorer;

struct StisanOptions {
  /// POI embedding dimension (paper: 128).
  int64_t poi_dim = 24;
  /// Geography encoding dimension (paper: 128); d = poi_dim + geo_dim.
  GeoEncoderOptions geo = {.dim = 8, .quadkey_level = 17, .ngram = 6};
  /// Number of stacked IAABs N (paper: 4).
  int64_t num_blocks = 2;
  /// FFN hidden dim d_h (> d); 0 means 2 * d.
  int64_t ffn_hidden = 0;
  float dropout = 0.2f;
  RelationOptions relation;

  // ---- Ablation switches (paper Table IV) ----
  bool use_geo_encoder = true;  // variant I "Remove GE"
  bool use_tape = true;         // variant II "Remove TAPE" (vanilla PE)
  AttentionMode attention_mode =
      AttentionMode::kIntervalAware;  // III: kVanilla, IV: kRelationOnly
  bool use_taad = true;               // variant V "Remove TAAD"

  /// Use the KNN importance sampler (paper); false = uniform negatives.
  bool knn_negatives = true;

  train::TrainConfig train;
};

/// The full model. Construct per dataset (embeddings size with the POI set).
class StisanModel : public models::SequentialRecommender, public nn::Module {
 public:
  StisanModel(const data::Dataset& dataset, const StisanOptions& options);

  std::string name() const override;
  void Fit(const data::Dataset& dataset,
           const std::vector<data::TrainWindow>& train) override;
  std::vector<float> Score(const data::EvalInstance& instance,
                           const std::vector<int64_t>& candidates) override;

  /// Batched scoring: one padded forward pass over the whole batch (shared
  /// padded length, per-instance relation bias / mask / TAPE stacked along
  /// a leading batch dim). Per-instance scores match Score exactly.
  std::vector<std::vector<float>> ScoreBatch(
      const std::vector<const data::EvalInstance*>& instances,
      const std::vector<std::vector<int64_t>>& candidates) override;

  /// Mean training loss of the most recent epoch (for tests / logging).
  float last_epoch_loss() const { return last_epoch_loss_; }

  /// Outcome of the most recent Fit (resume/interrupt/non-finite counters).
  const train::TrainResult& last_train_result() const {
    return last_train_result_;
  }

  /// Architecture fingerprint stamped into checkpoints and verified on
  /// load: any option that changes parameter shapes or their meaning is
  /// included, so resuming into a differently-configured model fails with
  /// FailedPrecondition instead of silently mis-restoring.
  std::string ConfigFingerprint() const;

  int64_t model_dim() const { return dim_; }
  const StisanOptions& options() const { return options_; }

  // ---- Introspection for the visualisation benches (Fig. 5 / Fig. 7) ----

  /// Runs the embedding + position encoding + encoder stack on a source
  /// sequence and returns the post-softmax attention map of every block,
  /// averaged across blocks.
  Tensor AverageAttentionMap(const std::vector<int64_t>& pois,
                             const std::vector<double>& timestamps,
                             int64_t first_real);

 private:
  // The incremental serving engine replays this model's eval-mode forward
  // one row at a time against cached K/V state; it reuses the private
  // Embed/Preferences stages and the frozen sub-modules directly so the
  // two paths cannot drift apart (bit-identity is pinned by the serve
  // test label).
  friend class IncrementalScorer;

  /// Embeds a POI id sequence: POI embedding ⧺ geography encoding.
  Tensor Embed(const std::vector<int64_t>& pois) const;

  /// Full encoder pass over a source sequence (no dropout when eval).
  Tensor Encode(const std::vector<int64_t>& pois,
                const std::vector<double>& timestamps, int64_t first_real,
                Rng& rng) const;

  /// Batched encoder pass over instances sharing a padded length n:
  /// returns [B, n, d]; slice b equals Encode on instance b.
  Tensor EncodeBatch(const std::vector<const data::EvalInstance*>& instances,
                     Rng& rng) const;

  /// Relation bias (softmax-scaled R) or undefined in kVanilla mode.
  Tensor RelationBias(const std::vector<int64_t>& pois,
                      const std::vector<double>& timestamps,
                      int64_t first_real) const;

  /// Preference vectors for candidate rows (TAAD or plain encoder states).
  Tensor Preferences(const Tensor& candidate_emb, const Tensor& encoder_out,
                     const std::vector<int64_t>& step_of_row,
                     int64_t first_real) const;

  const data::Dataset* dataset_;
  StisanOptions options_;
  int64_t dim_;
  float score_scale_;  // 1/sqrt(d): keeps match logits in a trainable range
  Rng rng_;

  nn::Embedding poi_embedding_;
  std::unique_ptr<GeoEncoder> geo_encoder_;
  nn::Dropout embed_dropout_;
  std::unique_ptr<IaabEncoder> encoder_;
  std::unique_ptr<train::NegativeSampler> sampler_;

  float last_epoch_loss_ = 0.0f;
  train::TrainResult last_train_result_;
};

}  // namespace stisan::core
