// Time Aware Position Encoder (TAPE) — paper §III-C, eq. 2-3, Algorithm 1.
//
// TAPE replaces the integer positions 1,2,3,... of the vanilla sinusoidal
// encoding with time-interval-stretched positions
//
//   pos_1 = 1,  pos_{k+1} = pos_k + dt_{k,k+1} / mean(dt) + 1,
//
// then applies the standard sinusoidal transformation. It is parameter-free
// and O(n): sequences that share the same POIs but different check-in
// rhythms get different positional signals, which the downstream attention
// can exploit.

#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace stisan::core {

/// Computes the time-adjusted positions for a timestamp sequence.
///
/// `first_real` marks the first non-padding index: positions inside the
/// padding prefix advance by exactly 1 (their time deltas are zero by
/// construction), so the real subsequence starts with a clean slate.
/// The mean interval is computed over real entries only. A sequence with
/// (near-)zero total time span degenerates gracefully to integer positions.
/// Out-of-order timestamps (clock skew, duplicate-second records) are
/// tolerated: negative gaps are clamped to zero, counted in the obs counter
/// "tape/negative_gaps_clamped", and warned about once per process.
std::vector<double> TimeAwarePositions(const std::vector<double>& timestamps,
                                       int64_t first_real = 0);

/// Full TAPE: returns x + SinusoidalEncoding(TimeAwarePositions(t), d).
/// x: [n, d], timestamps: length n.
Tensor ApplyTape(const Tensor& x, const std::vector<double>& timestamps,
                 int64_t first_real = 0);

/// Vanilla counterpart used by ablations: x + sinusoidal PE over 1..n.
Tensor ApplyVanillaPe(const Tensor& x);

/// Memoised nn::SinusoidalEncoding keyed on the full (positions, dim)
/// content (LRU, exact-equality compare): TAPE tables repeat across epochs
/// and eval batches, so the O(n·d) sin/cos rebuild is skipped on a hit.
/// Cached tensors are gradient-free and shared — callers must not mutate.
Tensor CachedSinusoidalEncoding(const std::vector<double>& positions,
                                int64_t dim);

/// Hit/miss counters of the position-table LRU (tests and benchmarks).
struct TapeCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
};
TapeCacheStats GetTapeCacheStats();

}  // namespace stisan::core
