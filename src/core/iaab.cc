#include "core/iaab.h"

namespace stisan::core {

IntervalAwareAttentionBlock::IntervalAwareAttentionBlock(
    const IaabOptions& options, Rng& rng)
    : options_(options),
      ln_attention_(options.dim),
      attention_(options.dim, options.dropout, rng, options.causal,
                 /*identity_init_values=*/options.rezero, options.num_heads),
      values_(options.dim, options.dim, rng, /*bias=*/false),
      ln_ffn_(options.dim),
      ffn_(options.dim, options.ffn_hidden, options.dropout, rng),
      residual_dropout_(options.dropout) {
  RegisterModule(&ln_attention_);
  RegisterModule(&attention_);
  RegisterModule(&values_);
  RegisterModule(&ln_ffn_);
  RegisterModule(&ffn_);
  RegisterModule(&residual_dropout_);
  if (options_.rezero) {
    gate_ffn_ = RegisterParameter(Tensor::Zeros({1}));
  }
}

Tensor IntervalAwareAttentionBlock::Forward(const Tensor& x,
                                            const Tensor& relation_bias,
                                            const Tensor& mask,
                                            Rng& rng) const {
  Tensor base;
  Tensor r = ForwardSplit(x, relation_bias, mask, rng, &base);
  return base + r;
}

Tensor IntervalAwareAttentionBlock::ForwardSplit(const Tensor& x,
                                                 const Tensor& relation_bias,
                                                 const Tensor& mask, Rng& rng,
                                                 Tensor* base) const {
  // ---- Attention sub-layer: x = x + Attn(LN(x)) (eq. 8) ----
  Tensor normed = ln_attention_.Forward(x);
  Tensor attended;
  switch (options_.mode) {
    case AttentionMode::kIntervalAware: {
      STISAN_CHECK_MSG(relation_bias.defined(),
                       "kIntervalAware requires a relation bias");
      // The mask rides along with the bias: Softmax(QK^T/sqrt(d)+R+mask)V.
      attended = attention_.Forward(normed, relation_bias + mask, rng);
      break;
    }
    case AttentionMode::kVanilla: {
      attended = attention_.Forward(normed, mask, rng);
      break;
    }
    case AttentionMode::kRelationOnly: {
      // Ablation IV (eq. 16): A = Softmax(R) V. The softmax-scaled relation
      // already has masked entries at exactly 0, so it is used directly as
      // the attention map.
      STISAN_CHECK_MSG(relation_bias.defined(),
                       "kRelationOnly requires a relation bias");
      attended = ops::MatMul(relation_bias, values_.Forward(normed));
      break;
    }
  }
  Tensor h = x + residual_dropout_.Forward(attended, rng);

  // ---- Feed-forward sub-layer: h = h + FFN(LN(h)) ----
  Tensor ffn_out = ffn_.Forward(ln_ffn_.Forward(h), rng);
  if (gate_ffn_.defined()) ffn_out = ffn_out * gate_ffn_;
  *base = h;
  return residual_dropout_.Forward(ffn_out, rng);
}

Tensor IntervalAwareAttentionBlock::AttentionMap(const Tensor& x,
                                                 const Tensor& relation_bias,
                                                 const Tensor& mask) const {
  Tensor normed = ln_attention_.Forward(x);
  switch (options_.mode) {
    case AttentionMode::kIntervalAware:
      return attention_.AttentionMap(normed, relation_bias + mask);
    case AttentionMode::kVanilla:
      return attention_.AttentionMap(normed, mask);
    case AttentionMode::kRelationOnly:
      return relation_bias;
  }
  return Tensor();
}

IaabEncoder::IaabEncoder(const IaabOptions& options, int64_t num_blocks,
                         Rng& rng)
    : final_norm_(options.dim) {
  STISAN_CHECK_GE(num_blocks, 1);
  for (int64_t b = 0; b < num_blocks; ++b) {
    blocks_.push_back(
        std::make_unique<IntervalAwareAttentionBlock>(options, rng));
    RegisterModule(blocks_.back().get());
  }
  RegisterModule(&final_norm_);
}

Tensor IaabEncoder::Forward(const Tensor& x, const Tensor& relation_bias,
                            const Tensor& mask, Rng& rng) const {
  Tensor h = x;
  for (size_t b = 0; b + 1 < blocks_.size(); ++b) {
    h = blocks_[b]->Forward(h, relation_bias, mask, rng);
  }
  // The last block's closing residual feeds straight into the final norm:
  // split it so the pair can lower through FusedResidualLayerNorm.
  Tensor base;
  Tensor r = blocks_.back()->ForwardSplit(h, relation_bias, mask, rng, &base);
  return final_norm_.ForwardResidual(base, r);
}

std::vector<Tensor> IaabEncoder::AttentionMaps(const Tensor& x,
                                               const Tensor& relation_bias,
                                               const Tensor& mask,
                                               Rng& rng) const {
  std::vector<Tensor> maps;
  Tensor h = x;
  for (const auto& block : blocks_) {
    maps.push_back(block->AttentionMap(h, relation_bias, mask));
    h = block->Forward(h, relation_bias, mask, rng);
  }
  return maps;
}

}  // namespace stisan::core
