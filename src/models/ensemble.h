// Rank-fusion ensemble of recommenders.
//
// Combines any set of trained SequentialRecommenders by reciprocal-rank
// fusion (RRF): each member ranks the candidate list, and candidates score
// sum_m w_m / (k + rank_m). RRF is scale-free, so members with wildly
// different score ranges (e.g. POP counts vs inner products) combine
// sensibly without calibration.

#pragma once

#include <memory>
#include <vector>

#include "models/recommender.h"

namespace stisan::models {

class EnsembleModel : public SequentialRecommender {
 public:
  struct Member {
    SequentialRecommender* model = nullptr;  // non-owning
    double weight = 1.0;
  };

  /// `rrf_k` is the standard smoothing constant (60 in the original RRF
  /// paper); smaller values emphasise top ranks more.
  explicit EnsembleModel(std::vector<Member> members, double rrf_k = 60.0);

  std::string name() const override { return "Ensemble"; }

  /// Fits every member on the same data.
  void Fit(const data::Dataset& dataset,
           const std::vector<data::TrainWindow>& train) override;

  /// Reciprocal-rank fusion of the members' candidate rankings.
  std::vector<float> Score(const data::EvalInstance& instance,
                           const std::vector<int64_t>& candidates) override;

 private:
  std::vector<Member> members_;
  double rrf_k_;
};

}  // namespace stisan::models
