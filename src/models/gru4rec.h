// GRU4Rec baseline (Hidasi et al., ICLR 2016): embedded sequence run
// through a GRU; the hidden state at each step is the preference vector.

#pragma once

#include "models/neural_base.h"
#include "nn/recurrent.h"

namespace stisan::models {

class Gru4RecModel : public NeuralSeqModel {
 public:
  Gru4RecModel(const data::Dataset& dataset, const NeuralOptions& options);

 protected:
  Tensor EncodeSource(const std::vector<int64_t>& pois,
                      const std::vector<double>& timestamps,
                      int64_t first_real, int64_t user, Rng& rng) override;

 private:
  nn::GruCell cell_;
  nn::Dropout dropout_;
};

}  // namespace stisan::models
