// STGN baseline (Zhao et al., AAAI 2019): an LSTM whose gates are modulated
// by the time and distance intervals between successive check-ins.

#pragma once

#include "models/neural_base.h"
#include "nn/recurrent.h"

namespace stisan::models {

class StgnModel : public NeuralSeqModel {
 public:
  StgnModel(const data::Dataset& dataset, const NeuralOptions& options);

 protected:
  Tensor EncodeSource(const std::vector<int64_t>& pois,
                      const std::vector<double>& timestamps,
                      int64_t first_real, int64_t user, Rng& rng) override;

 private:
  nn::StgnCell cell_;
  nn::Dropout dropout_;
};

}  // namespace stisan::models
