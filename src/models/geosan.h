// GeoSAN baseline (Lian et al., KDD 2020): geography-aware self-attention —
// POI embedding ⧺ quadkey n-gram geography encoding, a vanilla causal SAN,
// target-aware attention decoding, and importance-weighted KNN negatives.
//
// This is exactly STiSAN with TAPE and the relation matrix switched off, so
// the implementation delegates to a configured StisanModel (the paper builds
// STiSAN on top of GeoSAN's encoder/decoder/loss).

#pragma once

#include "core/stisan.h"
#include "models/recommender.h"

namespace stisan::models {

class GeoSanModel : public SequentialRecommender {
 public:
  GeoSanModel(const data::Dataset& dataset, core::StisanOptions options);

  std::string name() const override { return "GeoSAN"; }
  void Fit(const data::Dataset& dataset,
           const std::vector<data::TrainWindow>& train) override {
    inner_.Fit(dataset, train);
  }
  std::vector<float> Score(const data::EvalInstance& instance,
                           const std::vector<int64_t>& candidates) override {
    return inner_.Score(instance, candidates);
  }
  std::vector<std::vector<float>> ScoreBatch(
      const std::vector<const data::EvalInstance*>& instances,
      const std::vector<std::vector<int64_t>>& candidates) override {
    return inner_.ScoreBatch(instances, candidates);
  }

  float last_epoch_loss() const { return inner_.last_epoch_loss(); }

 private:
  static core::StisanOptions MakeOptions(core::StisanOptions options);
  core::StisanModel inner_;
};

}  // namespace stisan::models
