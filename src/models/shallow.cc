#include "models/shallow.h"

#include <cmath>
#include <unordered_set>

#include "geo/geo.h"
#include "util/check.h"

namespace stisan::models {
namespace {

float Sigmoid(float x) {
  return x >= 0.0f ? 1.0f / (1.0f + std::exp(-x))
                   : std::exp(x) / (1.0f + std::exp(x));
}

void InitFactors(std::vector<float>* v, size_t size, Rng& rng, float scale) {
  v->resize(size);
  for (auto& x : *v) x = static_cast<float>(rng.Normal(0.0, scale));
}

float Dot(const float* a, const float* b, int64_t d) {
  float s = 0.0f;
  for (int64_t i = 0; i < d; ++i) s += a[i] * b[i];
  return s;
}

// One BPR step on factor rows a (shared) vs positive p and negative q:
// maximises sigmoid(<a,p> - <a,q>). Applies L2 regularisation.
void BprUpdate(float* a, float* p, float* q, int64_t d, float lr, float reg,
               float coeff) {
  for (int64_t i = 0; i < d; ++i) {
    const float ai = a[i], pi = p[i], qi = q[i];
    a[i] += lr * (coeff * (pi - qi) - reg * ai);
    p[i] += lr * (coeff * ai - reg * pi);
    q[i] += lr * (-coeff * ai - reg * qi);
  }
}

}  // namespace

std::vector<Transition> ExtractTransitions(
    const std::vector<data::TrainWindow>& train) {
  std::vector<Transition> out;
  for (const auto& w : train) {
    for (size_t i = static_cast<size_t>(std::max<int64_t>(w.first_real, 0));
         i + 1 < w.poi.size(); ++i) {
      if (w.poi[i] == data::kPaddingPoi ||
          w.poi[i + 1] == data::kPaddingPoi) {
        continue;
      }
      out.push_back({w.user, w.poi[i], w.poi[i + 1]});
    }
  }
  return out;
}

// ---- POP ---------------------------------------------------------------------

void PopModel::Fit(const data::Dataset& dataset,
                   const std::vector<data::TrainWindow>& train) {
  counts_.assign(static_cast<size_t>(dataset.num_pois()) + 1, 0);
  for (const auto& w : train) {
    for (int64_t poi : w.poi) {
      if (poi != data::kPaddingPoi) counts_[static_cast<size_t>(poi)]++;
    }
  }
}

std::vector<float> PopModel::Score(const data::EvalInstance&,
                                   const std::vector<int64_t>& candidates) {
  std::vector<float> out(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    out[i] = static_cast<float>(count(candidates[i]));
  }
  return out;
}

// ---- BPR ----------------------------------------------------------------------

float BprMfModel::Predict(int64_t user, int64_t poi) const {
  return Dot(&user_factors_[static_cast<size_t>(user * options_.dim)],
             &poi_factors_[static_cast<size_t>(poi * options_.dim)],
             options_.dim) +
         poi_bias_[static_cast<size_t>(poi)];
}

void BprMfModel::Fit(const data::Dataset& dataset,
                     const std::vector<data::TrainWindow>& train) {
  num_users_ = dataset.num_users();
  num_pois_ = dataset.num_pois();
  Rng rng(options_.seed);
  const float scale = 0.1f;
  InitFactors(&user_factors_, static_cast<size_t>(num_users_ * options_.dim),
              rng, scale);
  InitFactors(&poi_factors_,
              static_cast<size_t>((num_pois_ + 1) * options_.dim), rng,
              scale);
  poi_bias_.assign(static_cast<size_t>(num_pois_) + 1, 0.0f);

  auto transitions = ExtractTransitions(train);
  for (int64_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(transitions);
    for (const auto& tr : transitions) {
      const int64_t neg =
          1 + static_cast<int64_t>(rng.UniformInt(
                  static_cast<uint64_t>(num_pois_)));
      if (neg == tr.next) continue;
      const float diff = Predict(tr.user, tr.next) - Predict(tr.user, neg);
      const float coeff = 1.0f - Sigmoid(diff);
      BprUpdate(&user_factors_[size_t(tr.user * options_.dim)],
                &poi_factors_[size_t(tr.next * options_.dim)],
                &poi_factors_[size_t(neg * options_.dim)], options_.dim,
                options_.lr, options_.reg, coeff);
      poi_bias_[size_t(tr.next)] +=
          options_.lr * (coeff - options_.reg * poi_bias_[size_t(tr.next)]);
      poi_bias_[size_t(neg)] -=
          options_.lr * (coeff + options_.reg * poi_bias_[size_t(neg)]);
    }
  }
}

std::vector<float> BprMfModel::Score(const data::EvalInstance& instance,
                                     const std::vector<int64_t>& candidates) {
  std::vector<float> out(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    out[i] = Predict(instance.user, candidates[i]);
  }
  return out;
}

// ---- FPMC-LR ------------------------------------------------------------------

float FpmcLrModel::Predict(int64_t user, int64_t prev, int64_t next) const {
  const int64_t d = options_.dim;
  return Dot(&ui_[size_t(user * d)], &iu_[size_t(next * d)], d) +
         Dot(&li_[size_t(prev * d)], &il_[size_t(next * d)], d);
}

void FpmcLrModel::Fit(const data::Dataset& dataset,
                      const std::vector<data::TrainWindow>& train) {
  num_users_ = dataset.num_users();
  num_pois_ = dataset.num_pois();
  Rng rng(options_.seed);
  const float scale = 0.1f;
  const int64_t d = options_.dim;
  InitFactors(&ui_, static_cast<size_t>(num_users_ * d), rng, scale);
  InitFactors(&iu_, static_cast<size_t>((num_pois_ + 1) * d), rng, scale);
  InitFactors(&li_, static_cast<size_t>((num_pois_ + 1) * d), rng, scale);
  InitFactors(&il_, static_cast<size_t>((num_pois_ + 1) * d), rng, scale);

  auto transitions = ExtractTransitions(train);
  for (int64_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(transitions);
    for (const auto& tr : transitions) {
      // Localized-region negative: resample until within region of prev
      // (bounded retries; the region constraint is what makes this "-LR").
      int64_t neg = 0;
      const auto& prev_loc = dataset.poi_location(tr.prev);
      for (int attempt = 0; attempt < 10; ++attempt) {
        const int64_t cand =
            1 + static_cast<int64_t>(rng.UniformInt(
                    static_cast<uint64_t>(num_pois_)));
        if (cand == tr.next) continue;
        neg = cand;
        if (geo::HaversineKm(prev_loc, dataset.poi_location(cand)) <=
            options_.region_km) {
          break;
        }
      }
      if (neg == 0 || neg == tr.next) continue;
      const float diff =
          Predict(tr.user, tr.prev, tr.next) - Predict(tr.user, tr.prev, neg);
      const float coeff = 1.0f - Sigmoid(diff);
      BprUpdate(&ui_[size_t(tr.user * d)], &iu_[size_t(tr.next * d)],
                &iu_[size_t(neg * d)], d, options_.lr, options_.reg, coeff);
      BprUpdate(&li_[size_t(tr.prev * d)], &il_[size_t(tr.next * d)],
                &il_[size_t(neg * d)], d, options_.lr, options_.reg, coeff);
    }
  }
}

std::vector<float> FpmcLrModel::Score(const data::EvalInstance& instance,
                                      const std::vector<int64_t>& candidates) {
  // The previous POI is the last real visit in the source sequence.
  const int64_t prev = instance.poi.back();
  std::vector<float> out(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    out[i] = Predict(instance.user, prev, candidates[i]);
  }
  return out;
}

// ---- PRME-G --------------------------------------------------------------------

float PrmeGModel::Predict(int64_t user, int64_t prev, int64_t next,
                          double dist_km) const {
  const int64_t d = options_.dim;
  const float* up = &user_pref_[size_t(user * d)];
  const float* np = &poi_pref_[size_t(next * d)];
  const float* ps = &poi_seq_[size_t(prev * d)];
  const float* ns = &poi_seq_[size_t(next * d)];
  float d_pref = 0.0f, d_seq = 0.0f;
  for (int64_t i = 0; i < d; ++i) {
    const float a = up[i] - np[i];
    const float b = ps[i] - ns[i];
    d_pref += a * a;
    d_seq += b * b;
  }
  const float metric =
      options_.alpha * d_pref + (1.0f - options_.alpha) * d_seq;
  const float weight =
      1.0f + options_.geo_weight * static_cast<float>(dist_km);
  return -weight * metric;
}

void PrmeGModel::Fit(const data::Dataset& dataset,
                     const std::vector<data::TrainWindow>& train) {
  dataset_ = &dataset;
  num_users_ = dataset.num_users();
  num_pois_ = dataset.num_pois();
  Rng rng(options_.seed);
  const int64_t d = options_.dim;
  InitFactors(&user_pref_, static_cast<size_t>(num_users_ * d), rng, 0.1f);
  InitFactors(&poi_pref_, static_cast<size_t>((num_pois_ + 1) * d), rng,
              0.1f);
  InitFactors(&poi_seq_, static_cast<size_t>((num_pois_ + 1) * d), rng, 0.1f);

  auto transitions = ExtractTransitions(train);
  for (int64_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(transitions);
    for (const auto& tr : transitions) {
      const int64_t neg =
          1 + static_cast<int64_t>(rng.UniformInt(
                  static_cast<uint64_t>(num_pois_)));
      if (neg == tr.next) continue;
      const auto& prev_loc = dataset.poi_location(tr.prev);
      const double dist_pos =
          geo::HaversineKm(prev_loc, dataset.poi_location(tr.next));
      const double dist_neg =
          geo::HaversineKm(prev_loc, dataset.poi_location(neg));
      const float diff = Predict(tr.user, tr.prev, tr.next, dist_pos) -
                         Predict(tr.user, tr.prev, neg, dist_neg);
      const float coeff = 1.0f - Sigmoid(diff);
      // Gradient of -w * D wrt the embeddings (metric learning updates).
      const float w_pos =
          1.0f + options_.geo_weight * static_cast<float>(dist_pos);
      const float w_neg =
          1.0f + options_.geo_weight * static_cast<float>(dist_neg);
      float* up = &user_pref_[size_t(tr.user * d)];
      float* pp = &poi_pref_[size_t(tr.next * d)];
      float* pn = &poi_pref_[size_t(neg * d)];
      float* sp = &poi_seq_[size_t(tr.prev * d)];
      float* np = &poi_seq_[size_t(tr.next * d)];
      float* nn = &poi_seq_[size_t(neg * d)];
      const float lr = options_.lr;
      const float reg = options_.reg;
      for (int64_t i = 0; i < d; ++i) {
        // d(score_pos)/d(...) = -w_pos * 2 * alpha * (up - pp), etc.
        const float g_pref_pos = -2.0f * options_.alpha * w_pos * (up[i] - pp[i]);
        const float g_pref_neg = -2.0f * options_.alpha * w_neg * (up[i] - pn[i]);
        const float g_seq_pos =
            -2.0f * (1.0f - options_.alpha) * w_pos * (sp[i] - np[i]);
        const float g_seq_neg =
            -2.0f * (1.0f - options_.alpha) * w_neg * (sp[i] - nn[i]);
        // Ascend coeff * (score_pos - score_neg).
        const float du = coeff * (g_pref_pos - g_pref_neg);
        up[i] += lr * (du - reg * up[i]);
        pp[i] += lr * (-coeff * g_pref_pos - reg * pp[i]);
        pn[i] += lr * (coeff * g_pref_neg - reg * pn[i]);
        const float ds = coeff * (g_seq_pos - g_seq_neg);
        sp[i] += lr * (ds - reg * sp[i]);
        np[i] += lr * (-coeff * g_seq_pos - reg * np[i]);
        nn[i] += lr * (coeff * g_seq_neg - reg * nn[i]);
      }
    }
  }
}

std::vector<float> PrmeGModel::Score(const data::EvalInstance& instance,
                                     const std::vector<int64_t>& candidates) {
  const int64_t prev = instance.poi.back();
  const auto& prev_loc = dataset_->poi_location(prev);
  std::vector<float> out(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    const double dist =
        geo::HaversineKm(prev_loc, dataset_->poi_location(candidates[i]));
    out[i] = Predict(instance.user, prev, candidates[i], dist);
  }
  return out;
}

}  // namespace stisan::models
