#include "models/stgn.h"

#include <algorithm>
#include <cmath>

#include "geo/geo.h"

namespace stisan::models {

StgnModel::StgnModel(const data::Dataset& dataset,
                     const NeuralOptions& options)
    : NeuralSeqModel(dataset, options, "STGN"),
      cell_(options.dim, options.dim, rng_),
      dropout_(options.dropout) {
  RegisterModule(&cell_);
  RegisterModule(&dropout_);
}

Tensor StgnModel::EncodeSource(const std::vector<int64_t>& pois,
                               const std::vector<double>& timestamps,
                               int64_t first_real, int64_t /*user*/,
                               Rng& rng) {
  const int64_t n = static_cast<int64_t>(pois.size());
  Tensor emb = dropout_.Forward(item_embedding_.Forward(pois), rng);
  nn::StgnCell::State state{Tensor::Zeros({1, options_.dim}),
                            Tensor::Zeros({1, options_.dim}),
                            Tensor::Zeros({1, options_.dim})};
  std::vector<Tensor> states;
  states.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    Tensor x = ops::Slice(emb, 0, i, i + 1);
    if (i >= first_real) {
      // Normalised intervals to the previous real step.
      float dt = 0.0f, dd = 0.0f;
      if (i > first_real) {
        dt = static_cast<float>(std::min(
            10.0, (timestamps[size_t(i)] - timestamps[size_t(i - 1)]) /
                      86400.0));  // days, clipped
        dd = static_cast<float>(std::min(
            100.0, geo::HaversineKm(
                       dataset_->poi_location(pois[size_t(i)]),
                       dataset_->poi_location(pois[size_t(i - 1)])))) /
             10.0f;
      }
      state = cell_.Forward(x, state, dt, dd);
    }
    states.push_back(state.h);
  }
  return ops::Reshape(ops::Stack0(states), {n, options_.dim});
}

}  // namespace stisan::models
