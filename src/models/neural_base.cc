#include "models/neural_base.h"

#include <algorithm>

#include "tensor/optimizer.h"
#include "train/loss.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace stisan::models {
namespace {

Tensor StepSelector(const std::vector<int64_t>& step_of_row, int64_t n) {
  const int64_t m = static_cast<int64_t>(step_of_row.size());
  Tensor sel = Tensor::Zeros({m, n});
  float* s = sel.data();
  for (int64_t r = 0; r < m; ++r) {
    s[r * n + step_of_row[static_cast<size_t>(r)]] = 1.0f;
  }
  return sel;
}

}  // namespace

NeuralSeqModel::NeuralSeqModel(const data::Dataset& dataset,
                               const NeuralOptions& options,
                               std::string model_name)
    : dataset_(&dataset),
      options_(options),
      rng_(options.train.seed),
      item_embedding_(dataset.num_pois() + 1, options.dim, rng_,
                      /*padding_idx=*/data::kPaddingPoi),
      sampler_(std::make_unique<train::UniformNegativeSampler>(
          dataset.num_pois())),
      name_(std::move(model_name)) {
  RegisterModule(&item_embedding_);
}

Tensor NeuralSeqModel::CandidateEmbedding(
    const std::vector<int64_t>& candidates) {
  return item_embedding_.Forward(candidates);
}

Tensor NeuralSeqModel::Preferences(const Tensor& /*candidate_emb*/,
                                   const Tensor& encoder_out,
                                   const std::vector<int64_t>& step_of_row,
                                   int64_t /*first_real*/) {
  return ops::MatMul(StepSelector(step_of_row, encoder_out.size(0)),
                     encoder_out);
}

std::string NeuralSeqModel::ConfigFingerprint() const {
  return StrFormat("%s pois=%lld dim=%lld", name_.c_str(),
                   static_cast<long long>(dataset_->num_pois()),
                   static_cast<long long>(options_.dim));
}

void NeuralSeqModel::Fit(const data::Dataset& dataset,
                         const std::vector<data::TrainWindow>& train) {
  STISAN_CHECK_EQ(&dataset, dataset_);
  const auto& cfg = options_.train;
  const int64_t num_negatives = std::max<int64_t>(1, cfg.num_negatives);

  SetTraining(true);
  // The per-window forward pass; the shared train::Trainer owns the loop
  // (shuffling, accumulation, LR schedule, guards, checkpointing).
  auto loss_fn = [&](size_t idx) -> Tensor {
    const data::TrainWindow& w = train[idx];
    const int64_t n = static_cast<int64_t>(w.poi.size()) - 1;
    const int64_t first_real = std::min<int64_t>(w.first_real, n - 1);

    std::vector<int64_t> src_poi(w.poi.begin(), w.poi.end() - 1);
    std::vector<double> src_t(w.t.begin(), w.t.end() - 1);
    Tensor f = EncodeSource(src_poi, src_t, first_real, w.user, rng_);

    std::vector<int64_t> cand_ids;
    std::vector<int64_t> step_of_row;
    for (int64_t i = first_real; i < n; ++i) {
      const int64_t target = w.poi[static_cast<size_t>(i + 1)];
      cand_ids.push_back(target);
      step_of_row.push_back(i);
      for (int64_t neg :
           sampler_->Sample(target, num_negatives, {target}, rng_)) {
        cand_ids.push_back(neg);
        step_of_row.push_back(i);
      }
    }
    const int64_t m = n - first_real;
    Tensor c = CandidateEmbedding(cand_ids);
    Tensor s = Preferences(c, f, step_of_row, first_real);
    Tensor scores = ops::Reshape(ops::SumDim(s * c, 1),
                                 {m, num_negatives + 1});
    // The column slices are strided views; Reshape materialises the
    // non-contiguous positive column, BceLoss normalises the rest.
    Tensor pos = ops::Reshape(ops::Slice(scores, 1, 0, 1), {m});
    Tensor neg = ops::Slice(scores, 1, 1, num_negatives + 1);
    return train::BceLoss(pos, neg);
  };

  train::Trainer trainer(Parameters(), cfg, &rng_, name_,
                         ConfigFingerprint());
  last_train_result_ = trainer.Run(train.size(), loss_fn);
  last_epoch_loss_ = last_train_result_.last_epoch_loss;
  SetTraining(false);
}

std::vector<float> NeuralSeqModel::Score(
    const data::EvalInstance& instance,
    const std::vector<int64_t>& candidates) {
  NoGradGuard no_grad;
  SetTraining(false);
  const int64_t n = static_cast<int64_t>(instance.poi.size());
  Tensor f = EncodeSource(instance.poi, instance.t,
                          instance.first_real, instance.user, rng_);
  Tensor c = CandidateEmbedding(candidates);
  std::vector<int64_t> step_of_row(candidates.size(), n - 1);
  Tensor s = Preferences(c, f, step_of_row, instance.first_real);
  return ops::SumDim(s * c, 1).ToVector();
}

Tensor NeuralSeqModel::EncodeSourceBatch(
    const std::vector<const data::EvalInstance*>& instances, Rng& rng) {
  std::vector<Tensor> parts(instances.size());
  for (size_t b = 0; b < instances.size(); ++b) {
    const auto* inst = instances[b];
    parts[b] =
        EncodeSource(inst->poi, inst->t, inst->first_real, inst->user, rng);
  }
  return ops::Stack0(parts);
}

std::vector<std::vector<float>> NeuralSeqModel::ScoreBatch(
    const std::vector<const data::EvalInstance*>& instances,
    const std::vector<std::vector<int64_t>>& candidates) {
  NoGradGuard no_grad;
  SetTraining(false);
  const int64_t bsz = static_cast<int64_t>(instances.size());
  STISAN_CHECK_EQ(candidates.size(), instances.size());
  if (bsz == 0) return {};
  const int64_t n = static_cast<int64_t>(instances[0]->poi.size());
  for (const auto* inst : instances) {
    if (static_cast<int64_t>(inst->poi.size()) != n) {
      return SequentialRecommender::ScoreBatch(instances, candidates);
    }
  }
  const int64_t d = options_.dim;

  Tensor f = EncodeSourceBatch(instances, rng_);  // [B, n, d]

  // One candidate-embedding lookup over every list, padded to the widest
  // with the padding POI (zero row, dropped after scoring).
  int64_t m = 0;
  for (const auto& cand : candidates) {
    m = std::max(m, static_cast<int64_t>(cand.size()));
  }
  std::vector<int64_t> flat;
  flat.reserve(static_cast<size_t>(bsz * m));
  for (int64_t b = 0; b < bsz; ++b) {
    const auto& cand = candidates[static_cast<size_t>(b)];
    flat.insert(flat.end(), cand.begin(), cand.end());
    flat.resize(static_cast<size_t>((b + 1) * m), data::kPaddingPoi);
  }
  // Overlapping candidate pools embed once; the gather back into batch
  // order is row-wise and therefore bit-identical to embedding `flat`.
  const auto [unique, local] = DedupIds(flat);
  Tensor c = ops::Reshape(
      ops::EmbeddingLookup(CandidateEmbedding(unique), local,
                           /*padding_idx=*/-1),
      {bsz, m, d});

  // Preference decoding dispatches through the per-instance virtual so
  // subclass decoders (STAN's recall attention) stay correct; the batch
  // slices are zero-copy views. Every row queries the final step n-1.
  std::vector<int64_t> step_of_row(static_cast<size_t>(m), n - 1);
  std::vector<Tensor> prefs(static_cast<size_t>(bsz));
  for (int64_t b = 0; b < bsz; ++b) {
    Tensor cb = ops::Reshape(ops::Slice(c, 0, b, b + 1), {m, d});
    Tensor fb = ops::Reshape(ops::Slice(f, 0, b, b + 1), {n, d});
    prefs[static_cast<size_t>(b)] = Preferences(
        cb, fb, step_of_row, instances[static_cast<size_t>(b)]->first_real);
  }
  Tensor s = ops::Stack0(prefs);  // [B, m, d]
  const std::vector<float> values = ops::SumDim(s * c, -1).ToVector();

  std::vector<std::vector<float>> out(static_cast<size_t>(bsz));
  for (int64_t b = 0; b < bsz; ++b) {
    const auto& cand = candidates[static_cast<size_t>(b)];
    const float* row = values.data() + b * m;
    out[static_cast<size_t>(b)].assign(row, row + cand.size());
  }
  return out;
}

}  // namespace stisan::models
