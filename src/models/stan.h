// STAN baseline (Luo et al., WWW 2021): a bi-layer attention network that
// explicitly models the relative spatio-temporal intervals among all POIs.
//
// Layer 1 (aggregation): self-attention whose logits carry a learned linear
// function of the clipped (dt, dd) interval matrices — the lightweight
// substitution for STAN's interval embedding interpolation (DESIGN.md).
// Layer 2 (recall): target-conditioned attention over the aggregated states
// (the same shape as the paper's "attention matching" layer).

#pragma once

#include <memory>

#include "core/iaab.h"
#include "models/neural_base.h"

namespace stisan::models {

struct StanOptions {
  NeuralOptions base;
  int64_t num_blocks = 2;
  int64_t ffn_hidden = 0;
  int64_t max_seq_len = 128;
  double max_interval_days = 10.0;
  double max_interval_km = 15.0;
};

class StanModel : public NeuralSeqModel {
 public:
  StanModel(const data::Dataset& dataset, const StanOptions& options);

 protected:
  Tensor EncodeSource(const std::vector<int64_t>& pois,
                      const std::vector<double>& timestamps,
                      int64_t first_real, int64_t user, Rng& rng) override;

  /// Recall layer: target-aware attention over the aggregated states.
  Tensor Preferences(const Tensor& candidate_emb, const Tensor& encoder_out,
                     const std::vector<int64_t>& step_of_row,
                     int64_t first_real) override;

 private:
  StanOptions stan_options_;
  nn::LearnedPositionalEmbedding positions_;
  nn::Dropout dropout_;
  std::unique_ptr<core::IaabEncoder> encoder_;
  Tensor interval_weights_;  // [2]: learned weights for (1-dt~, 1-dd~)
};

}  // namespace stisan::models
