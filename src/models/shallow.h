// Non-neural baselines: POP, BPR matrix factorisation, FPMC-LR, PRME-G
// (paper §IV-B). These train with hand-rolled SGD (no autograd) — the
// update rules are closed-form and this keeps them fast.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/types.h"
#include "models/recommender.h"
#include "util/rng.h"

namespace stisan::models {

/// Popularity baseline: recommends the most frequently visited POIs.
class PopModel : public SequentialRecommender {
 public:
  std::string name() const override { return "POP"; }
  void Fit(const data::Dataset& dataset,
           const std::vector<data::TrainWindow>& train) override;
  std::vector<float> Score(const data::EvalInstance& instance,
                           const std::vector<int64_t>& candidates) override;

  int64_t count(int64_t poi) const {
    return poi < static_cast<int64_t>(counts_.size())
               ? counts_[static_cast<size_t>(poi)]
               : 0;
  }

 private:
  std::vector<int64_t> counts_;
};

struct BprOptions {
  int64_t dim = 32;
  int64_t epochs = 12;
  float lr = 0.05f;
  float reg = 0.01f;
  uint64_t seed = 11;
};

/// Bayesian personalized ranking over user/POI factors [8]:
/// score(u, p) = <U_u, V_p> + b_p, trained on (u, pos, neg) triples.
class BprMfModel : public SequentialRecommender {
 public:
  explicit BprMfModel(BprOptions options = {}) : options_(options) {}

  std::string name() const override { return "BPR"; }
  void Fit(const data::Dataset& dataset,
           const std::vector<data::TrainWindow>& train) override;
  std::vector<float> Score(const data::EvalInstance& instance,
                           const std::vector<int64_t>& candidates) override;

 private:
  float Predict(int64_t user, int64_t poi) const;

  BprOptions options_;
  int64_t num_users_ = 0;
  int64_t num_pois_ = 0;
  std::vector<float> user_factors_;  // [num_users, dim]
  std::vector<float> poi_factors_;   // [num_pois+1, dim]
  std::vector<float> poi_bias_;      // [num_pois+1]
};

struct FpmcOptions {
  int64_t dim = 32;
  int64_t epochs = 12;
  float lr = 0.05f;
  float reg = 0.01f;
  /// Localized-region constraint: negatives are drawn within this radius of
  /// the previous POI (the "LR" in FPMC-LR [19]).
  double region_km = 15.0;
  uint64_t seed = 13;
};

/// FPMC-LR: factorised personalised Markov chain with geography-localised
/// negative sampling:
///   score(u, prev, next) = <UI_u, IU_next> + <LI_prev, IL_next>
class FpmcLrModel : public SequentialRecommender {
 public:
  explicit FpmcLrModel(FpmcOptions options = {}) : options_(options) {}

  std::string name() const override { return "FPMC-LR"; }
  void Fit(const data::Dataset& dataset,
           const std::vector<data::TrainWindow>& train) override;
  std::vector<float> Score(const data::EvalInstance& instance,
                           const std::vector<int64_t>& candidates) override;

 private:
  float Predict(int64_t user, int64_t prev, int64_t next) const;

  FpmcOptions options_;
  int64_t num_users_ = 0;
  int64_t num_pois_ = 0;
  std::vector<float> ui_;  // user -> item preference factors
  std::vector<float> iu_;  // item factors matched against users
  std::vector<float> li_;  // previous-item transition factors
  std::vector<float> il_;  // next-item transition factors
};

struct PrmeOptions {
  int64_t dim = 32;
  int64_t epochs = 12;
  float lr = 0.05f;
  float reg = 0.01f;
  /// Component weight alpha between preference and sequential distances.
  float alpha = 0.5f;
  /// Travel-distance weighting strength (PRME-G's geography factor).
  float geo_weight = 0.05f;
  uint64_t seed = 17;
};

/// PRME-G: personalised ranking metric embedding with a travel-distance
/// weight [20]. Lower weighted distance = higher score:
///   D(u, prev, next) = alpha * |Xp_u - Xp_next|^2
///                    + (1-alpha) * |Xs_prev - Xs_next|^2
///   score = -(1 + geo_weight * d_km(prev, next)) * D
class PrmeGModel : public SequentialRecommender {
 public:
  explicit PrmeGModel(PrmeOptions options = {}) : options_(options) {}

  std::string name() const override { return "PRME-G"; }
  void Fit(const data::Dataset& dataset,
           const std::vector<data::TrainWindow>& train) override;
  std::vector<float> Score(const data::EvalInstance& instance,
                           const std::vector<int64_t>& candidates) override;

 private:
  float Predict(int64_t user, int64_t prev, int64_t next,
                double dist_km) const;

  PrmeOptions options_;
  const data::Dataset* dataset_ = nullptr;
  int64_t num_users_ = 0;
  int64_t num_pois_ = 0;
  std::vector<float> user_pref_;  // Xp for users
  std::vector<float> poi_pref_;   // Xp for POIs
  std::vector<float> poi_seq_;    // Xs for POIs
};

/// Extracts the (user, prev, next) transition triples with real POIs from
/// training windows; shared by the shallow sequential models.
struct Transition {
  int64_t user;
  int64_t prev;
  int64_t next;
};
std::vector<Transition> ExtractTransitions(
    const std::vector<data::TrainWindow>& train);

}  // namespace stisan::models
