// Self-attention baselines sharing the IaabEncoder infrastructure:
//  - SASRec (Kang & McAuley, ICDM 2018): causal SAN + learned positions.
//  - TiSASRec (Li et al., WSDM 2020): SASRec + learned time-interval-bucket
//    attention bias. (The original uses full relation key/value embeddings;
//    the scalar-bias-per-bucket form here is the documented lightweight
//    substitution — see DESIGN.md.)
//  - Bert4Rec (Sun et al., CIKM 2019): bidirectional encoder trained with a
//    cloze objective over randomly masked positions.

#pragma once

#include <memory>
#include <optional>

#include "core/iaab.h"
#include "core/relation.h"
#include "models/neural_base.h"

namespace stisan::models {

struct SanOptions {
  NeuralOptions base;
  int64_t num_blocks = 2;
  int64_t ffn_hidden = 0;  // 0 -> 2 * dim
  int64_t max_seq_len = 128;
};

/// SASRec: causal self-attention with learned absolute positions. Also the
/// configurable substrate for the Fig. 4 / Fig. 6 extensibility benches:
/// `use_tape` swaps the positional encoding for TAPE, and `relation`
/// (when set) swaps the vanilla attention for IAAB.
/// Optional STiSAN extensions grafted onto SASRec for the extensibility
/// experiments (RQ3).
struct SasRecExtensions {
  bool use_tape = false;  // Fig. 4: SAN + TAPE
  /// When set, blocks run in interval-aware mode with this relation
  /// config (Fig. 6: SAN + IAAB).
  std::optional<core::RelationOptions> relation;
};

class SasRecModel : public NeuralSeqModel {
 public:
  SasRecModel(const data::Dataset& dataset, const SanOptions& options,
              const SasRecExtensions& extensions = SasRecExtensions(),
              std::string model_name = "SASRec");

 protected:
  Tensor EncodeSource(const std::vector<int64_t>& pois,
                      const std::vector<double>& timestamps,
                      int64_t first_real, int64_t user, Rng& rng) override;

  /// One padded forward through the rank-3 attention stack.
  Tensor EncodeSourceBatch(
      const std::vector<const data::EvalInstance*>& instances,
      Rng& rng) override;

 private:
  SanOptions san_options_;
  SasRecExtensions extensions_;
  nn::LearnedPositionalEmbedding positions_;
  nn::Dropout dropout_;
  std::unique_ptr<core::IaabEncoder> encoder_;
};

/// TiSASRec: SASRec plus a learned scalar attention bias per clipped
/// log-scale time-interval bucket.
class TiSasRecModel : public NeuralSeqModel {
 public:
  TiSasRecModel(const data::Dataset& dataset, const SanOptions& options,
                int64_t num_buckets = 16, double max_interval_days = 10.0);

 protected:
  Tensor EncodeSource(const std::vector<int64_t>& pois,
                      const std::vector<double>& timestamps,
                      int64_t first_real, int64_t user, Rng& rng) override;

  /// One padded forward through the rank-3 attention stack.
  Tensor EncodeSourceBatch(
      const std::vector<const data::EvalInstance*>& instances,
      Rng& rng) override;

 private:
  /// Maps a time interval to its bucket id (log-scaled, clipped).
  int64_t Bucket(double interval_seconds) const;

  SanOptions san_options_;
  int64_t num_buckets_;
  double max_interval_days_;
  nn::LearnedPositionalEmbedding positions_;
  nn::Dropout dropout_;
  std::unique_ptr<core::IaabEncoder> encoder_;
  Tensor bucket_bias_;  // [num_buckets, 1]
};

/// Bert4Rec: bidirectional attention + cloze training.
class Bert4RecModel : public NeuralSeqModel {
 public:
  Bert4RecModel(const data::Dataset& dataset, const SanOptions& options,
                float mask_prob = 0.3f);

  /// Cloze training replaces the base next-POI loop.
  void Fit(const data::Dataset& dataset,
           const std::vector<data::TrainWindow>& train) override;

 protected:
  Tensor EncodeSource(const std::vector<int64_t>& pois,
                      const std::vector<double>& timestamps,
                      int64_t first_real, int64_t user, Rng& rng) override;

  /// One padded forward through the rank-3 bidirectional stack (histories
  /// shifted left with [MASK] appended, like EncodeSource).
  Tensor EncodeSourceBatch(
      const std::vector<const data::EvalInstance*>& instances,
      Rng& rng) override;

  /// Candidates are embedded with the BERT table (which holds the trained
  /// rows), not the unused base item embedding.
  Tensor CandidateEmbedding(const std::vector<int64_t>& candidates) override;

 private:
  /// Bidirectional encoder over ids (mask token included in the vocab).
  Tensor EncodeIds(const std::vector<int64_t>& ids, int64_t first_real,
                   Rng& rng);

  SanOptions san_options_;
  float mask_prob_;
  int64_t mask_token_;
  nn::Embedding bert_embedding_;  // includes the [MASK] row
  nn::LearnedPositionalEmbedding positions_;
  nn::Dropout dropout_;
  std::unique_ptr<core::IaabEncoder> encoder_;
};

}  // namespace stisan::models
