#include "models/san_models.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "core/relation.h"
#include "core/tape.h"
#include "tensor/optimizer.h"
#include "train/loss.h"
#include "train/lr_schedule.h"
#include "util/logging.h"

namespace stisan::models {
namespace {

std::vector<geo::GeoPoint> WindowCoords(const data::Dataset& dataset,
                                        const std::vector<int64_t>& pois) {
  std::vector<geo::GeoPoint> coords(pois.size());
  for (size_t i = 0; i < pois.size(); ++i) {
    if (pois[i] != data::kPaddingPoi) coords[i] = dataset.poi_location(pois[i]);
  }
  return coords;
}

core::IaabOptions BlockOptions(const SanOptions& options,
                               core::AttentionMode mode) {
  core::IaabOptions block;
  block.dim = options.base.dim;
  block.ffn_hidden =
      options.ffn_hidden > 0 ? options.ffn_hidden : 2 * options.base.dim;
  block.dropout = options.base.dropout;
  block.mode = mode;
  return block;
}

// Flattens the instances' POI windows (shared padded length n) into one id
// list for a single batched embedding lookup.
std::vector<int64_t> FlatPois(
    const std::vector<const data::EvalInstance*>& instances, int64_t n) {
  std::vector<int64_t> flat;
  flat.reserve(instances.size() * static_cast<size_t>(n));
  for (const auto* inst : instances) {
    STISAN_CHECK_EQ(static_cast<int64_t>(inst->poi.size()), n);
    flat.insert(flat.end(), inst->poi.begin(), inst->poi.end());
  }
  return flat;
}

}  // namespace

// ---- SASRec ------------------------------------------------------------------

SasRecModel::SasRecModel(const data::Dataset& dataset,
                         const SanOptions& options,
                         const SasRecExtensions& extensions,
                         std::string model_name)
    : NeuralSeqModel(dataset, options.base, std::move(model_name)),
      san_options_(options),
      extensions_(extensions),
      positions_(options.max_seq_len, options.base.dim, rng_),
      dropout_(options.base.dropout) {
  const auto mode = extensions_.relation.has_value()
                        ? core::AttentionMode::kIntervalAware
                        : core::AttentionMode::kVanilla;
  encoder_ = std::make_unique<core::IaabEncoder>(
      BlockOptions(options, mode), options.num_blocks, rng_);
  RegisterModule(&positions_);
  RegisterModule(&dropout_);
  RegisterModule(encoder_.get());
}

Tensor SasRecModel::EncodeSource(const std::vector<int64_t>& pois,
                                 const std::vector<double>& timestamps,
                                 int64_t first_real, int64_t /*user*/,
                                 Rng& rng) {
  const int64_t n = static_cast<int64_t>(pois.size());
  Tensor e = item_embedding_.Forward(pois);
  if (extensions_.use_tape) {
    // Sinusoidal encodings are O(1) per component while the embeddings are
    // initialised at O(1/sqrt(d)); the standard x sqrt(d) embedding scaling
    // keeps TAPE from drowning the content signal.
    e = ops::MulScalar(e, std::sqrt(float(san_options_.base.dim)));
    e = core::ApplyTape(e, timestamps, first_real);
  } else {
    e = e + positions_.Forward(n);
  }
  e = dropout_.Forward(e, rng);
  Tensor bias;
  if (extensions_.relation.has_value()) {
    bias = core::CachedScaledRelation(pois, timestamps,
                                      WindowCoords(*dataset_, pois),
                                      first_real, *extensions_.relation);
  }
  Tensor mask = core::BuildPaddedCausalMask(n, first_real);
  return encoder_->Forward(e, bias, mask, rng);
}

Tensor SasRecModel::EncodeSourceBatch(
    const std::vector<const data::EvalInstance*>& instances, Rng& rng) {
  const int64_t bsz = static_cast<int64_t>(instances.size());
  const int64_t n = static_cast<int64_t>(instances[0]->poi.size());
  const int64_t d = san_options_.base.dim;
  Tensor e =
      ops::Reshape(item_embedding_.Forward(FlatPois(instances, n)),
                   {bsz, n, d});
  if (extensions_.use_tape) {
    e = ops::MulScalar(e, std::sqrt(float(d)));
    std::vector<Tensor> pe(static_cast<size_t>(bsz));
    for (int64_t b = 0; b < bsz; ++b) {
      const auto* inst = instances[static_cast<size_t>(b)];
      pe[static_cast<size_t>(b)] = core::CachedSinusoidalEncoding(
          core::TimeAwarePositions(inst->t, inst->first_real), d);
    }
    e = e + ops::Stack0(pe);
  } else {
    // The learned positions are shared: [n, d] broadcasts over the batch.
    e = e + positions_.Forward(n);
  }
  e = dropout_.Forward(e, rng);
  Tensor bias;
  if (extensions_.relation.has_value()) {
    std::vector<Tensor> biases(static_cast<size_t>(bsz));
    for (int64_t b = 0; b < bsz; ++b) {
      const auto* inst = instances[static_cast<size_t>(b)];
      biases[static_cast<size_t>(b)] = core::CachedScaledRelation(
          inst->poi, inst->t, WindowCoords(*dataset_, inst->poi),
          inst->first_real, *extensions_.relation);
    }
    bias = ops::Stack0(biases);
  }
  std::vector<Tensor> masks(static_cast<size_t>(bsz));
  for (int64_t b = 0; b < bsz; ++b) {
    masks[static_cast<size_t>(b)] = core::BuildPaddedCausalMask(
        n, instances[static_cast<size_t>(b)]->first_real);
  }
  return encoder_->Forward(e, bias, ops::Stack0(masks), rng);
}

// ---- TiSASRec ----------------------------------------------------------------

TiSasRecModel::TiSasRecModel(const data::Dataset& dataset,
                             const SanOptions& options, int64_t num_buckets,
                             double max_interval_days)
    : NeuralSeqModel(dataset, options.base, "TiSASRec"),
      san_options_(options),
      num_buckets_(num_buckets),
      max_interval_days_(max_interval_days),
      positions_(options.max_seq_len, options.base.dim, rng_),
      dropout_(options.base.dropout) {
  encoder_ = std::make_unique<core::IaabEncoder>(
      BlockOptions(options, core::AttentionMode::kIntervalAware),
      options.num_blocks, rng_);
  bucket_bias_ = RegisterParameter(Tensor::Zeros({num_buckets_, 1}));
  RegisterModule(&positions_);
  RegisterModule(&dropout_);
  RegisterModule(encoder_.get());
}

int64_t TiSasRecModel::Bucket(double interval_seconds) const {
  const double hours =
      std::min(interval_seconds / 3600.0, max_interval_days_ * 24.0);
  const int64_t b = static_cast<int64_t>(std::log2(1.0 + hours));
  return std::clamp<int64_t>(b, 0, num_buckets_ - 1);
}

Tensor TiSasRecModel::EncodeSource(const std::vector<int64_t>& pois,
                                   const std::vector<double>& timestamps,
                                   int64_t first_real, int64_t /*user*/,
                                   Rng& rng) {
  const int64_t n = static_cast<int64_t>(pois.size());
  Tensor e = item_embedding_.Forward(pois) + positions_.Forward(n);
  e = dropout_.Forward(e, rng);

  // Learned scalar bias per clipped time-interval bucket for every causal
  // pair; gradients flow into bucket_bias_ through the lookup.
  std::vector<int64_t> bucket_ids(static_cast<size_t>(n * n), 0);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j <= i; ++j) {
      bucket_ids[static_cast<size_t>(i * n + j)] = Bucket(
          std::fabs(timestamps[size_t(i)] - timestamps[size_t(j)]));
    }
  }
  Tensor bias = ops::Reshape(
      ops::EmbeddingLookup(bucket_bias_, bucket_ids), {n, n});
  Tensor mask = core::BuildPaddedCausalMask(n, first_real);
  return encoder_->Forward(e, bias, mask, rng);
}

Tensor TiSasRecModel::EncodeSourceBatch(
    const std::vector<const data::EvalInstance*>& instances, Rng& rng) {
  const int64_t bsz = static_cast<int64_t>(instances.size());
  const int64_t n = static_cast<int64_t>(instances[0]->poi.size());
  const int64_t d = san_options_.base.dim;
  Tensor e =
      ops::Reshape(item_embedding_.Forward(FlatPois(instances, n)),
                   {bsz, n, d}) +
      positions_.Forward(n);
  e = dropout_.Forward(e, rng);

  std::vector<Tensor> biases(static_cast<size_t>(bsz));
  std::vector<Tensor> masks(static_cast<size_t>(bsz));
  for (int64_t b = 0; b < bsz; ++b) {
    const auto* inst = instances[static_cast<size_t>(b)];
    std::vector<int64_t> bucket_ids(static_cast<size_t>(n * n), 0);
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j <= i; ++j) {
        bucket_ids[static_cast<size_t>(i * n + j)] = Bucket(
            std::fabs(inst->t[size_t(i)] - inst->t[size_t(j)]));
      }
    }
    biases[static_cast<size_t>(b)] = ops::Reshape(
        ops::EmbeddingLookup(bucket_bias_, bucket_ids), {n, n});
    masks[static_cast<size_t>(b)] =
        core::BuildPaddedCausalMask(n, inst->first_real);
  }
  return encoder_->Forward(e, ops::Stack0(biases), ops::Stack0(masks), rng);
}

// ---- Bert4Rec ----------------------------------------------------------------

Bert4RecModel::Bert4RecModel(const data::Dataset& dataset,
                             const SanOptions& options, float mask_prob)
    : NeuralSeqModel(dataset, options.base, "Bert4Rec"),
      san_options_(options),
      mask_prob_(mask_prob),
      mask_token_(dataset.num_pois() + 1),
      bert_embedding_(dataset.num_pois() + 2, options.base.dim, rng_,
                      /*padding_idx=*/data::kPaddingPoi),
      positions_(options.max_seq_len, options.base.dim, rng_),
      dropout_(options.base.dropout) {
  auto block = BlockOptions(options, core::AttentionMode::kVanilla);
  block.causal = false;  // bidirectional
  encoder_ = std::make_unique<core::IaabEncoder>(block, options.num_blocks,
                                                 rng_);
  RegisterModule(&bert_embedding_);
  RegisterModule(&positions_);
  RegisterModule(&dropout_);
  RegisterModule(encoder_.get());
}

Tensor Bert4RecModel::CandidateEmbedding(
    const std::vector<int64_t>& candidates) {
  return bert_embedding_.Forward(candidates);
}

Tensor Bert4RecModel::EncodeIds(const std::vector<int64_t>& ids,
                                int64_t first_real, Rng& rng) {
  const int64_t n = static_cast<int64_t>(ids.size());
  Tensor e = bert_embedding_.Forward(ids) + positions_.Forward(n);
  e = dropout_.Forward(e, rng);
  // Bidirectional: only padding keys are hidden (plus self for pad rows).
  Tensor mask = Tensor::Zeros({n, n});
  float* m = mask.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      if (j < first_real && j != i) m[i * n + j] = -1e9f;
    }
  }
  return encoder_->Forward(e, Tensor(), mask, rng);
}

void Bert4RecModel::Fit(const data::Dataset& dataset,
                        const std::vector<data::TrainWindow>& train) {
  STISAN_CHECK_EQ(&dataset, dataset_);
  const auto& cfg = options_.train;
  const int64_t num_negatives = std::max<int64_t>(1, cfg.num_negatives);

  Adam optimizer(Parameters(), {.lr = cfg.lr});
  SetTraining(true);
  const int64_t windows_per_epoch =
      cfg.max_train_windows > 0
          ? std::min<int64_t>(cfg.max_train_windows,
                              static_cast<int64_t>(train.size()))
          : static_cast<int64_t>(train.size());
  const int64_t total_steps = std::max<int64_t>(
      1, cfg.epochs * windows_per_epoch /
             std::max<int64_t>(1, cfg.batch_size));
  train::CosineLr schedule(cfg.lr, total_steps, cfg.lr * 0.1f,
                           std::min<int64_t>(total_steps / 20, 50));
  int64_t opt_step = 0;
  std::vector<size_t> order(train.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (int64_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    rng_.Shuffle(order);
    double epoch_loss = 0.0;
    int64_t seen = 0;
    int64_t in_batch = 0;
    optimizer.ZeroGrad();
    for (size_t idx : order) {
      if (cfg.max_train_windows > 0 && seen >= cfg.max_train_windows) break;
      const data::TrainWindow& w = train[idx];
      const int64_t n = static_cast<int64_t>(w.poi.size());
      const int64_t first_real = std::min<int64_t>(w.first_real, n - 1);

      // Cloze corruption: mask real positions with probability mask_prob;
      // always mask the final position (matches the eval usage pattern).
      std::vector<int64_t> ids = w.poi;
      std::vector<int64_t> masked_pos;
      std::vector<int64_t> masked_true;
      for (int64_t i = first_real; i < n; ++i) {
        const bool is_last = (i == n - 1);
        if (is_last || rng_.Bernoulli(mask_prob_)) {
          masked_pos.push_back(i);
          masked_true.push_back(w.poi[static_cast<size_t>(i)]);
          ids[static_cast<size_t>(i)] = mask_token_;
        }
      }
      Tensor f = EncodeIds(ids, first_real, rng_);

      std::vector<int64_t> cand_ids;
      std::vector<int64_t> step_of_row;
      for (size_t k = 0; k < masked_pos.size(); ++k) {
        cand_ids.push_back(masked_true[k]);
        step_of_row.push_back(masked_pos[k]);
        for (int64_t neg : sampler_->Sample(masked_true[k], num_negatives,
                                            {masked_true[k]}, rng_)) {
          cand_ids.push_back(neg);
          step_of_row.push_back(masked_pos[k]);
        }
      }
      const int64_t m = static_cast<int64_t>(masked_pos.size());
      Tensor c = CandidateEmbedding(cand_ids);
      Tensor s = NeuralSeqModel::Preferences(c, f, step_of_row, first_real);
      Tensor scores =
          ops::Reshape(ops::SumDim(s * c, 1), {m, num_negatives + 1});
      Tensor pos = ops::Reshape(ops::Slice(scores, 1, 0, 1), {m});
      Tensor neg = ops::Slice(scores, 1, 1, num_negatives + 1);
      Tensor loss = train::BceLoss(pos, neg);

      const int64_t bsz = std::max<int64_t>(1, cfg.batch_size);
      ops::MulScalar(loss, 1.0f / float(bsz)).Backward();
      epoch_loss += loss.data()[0];
      ++seen;
      if (++in_batch == bsz) {
        if (cfg.cosine_decay) optimizer.SetLr(schedule.Lr(opt_step));
        ++opt_step;
        optimizer.ClipGradNorm(cfg.grad_clip);
        optimizer.Step();
        optimizer.ZeroGrad();
        in_batch = 0;
      }
    }
    if (in_batch > 0) {
      optimizer.ClipGradNorm(cfg.grad_clip);
      optimizer.Step();
      optimizer.ZeroGrad();
    }
    last_epoch_loss_ =
        seen > 0 ? static_cast<float>(epoch_loss / double(seen)) : 0.0f;
    if (cfg.on_epoch &&
        !cfg.on_epoch({.epoch = epoch, .loss = last_epoch_loss_})) {
      break;
    }
    if (cfg.verbose) {
      STISAN_LOG(INFO) << name() << " epoch " << (epoch + 1) << "/"
                       << cfg.epochs << " loss " << last_epoch_loss_;
    }
  }
  SetTraining(false);
}

Tensor Bert4RecModel::EncodeSource(const std::vector<int64_t>& pois,
                                   const std::vector<double>& /*timestamps*/,
                                   int64_t first_real, int64_t /*user*/,
                                   Rng& rng) {
  // Next-POI inference: shift history left and append [MASK]; the state at
  // the final position predicts the next visit.
  std::vector<int64_t> ids(pois.begin() + 1, pois.end());
  ids.push_back(mask_token_);
  return EncodeIds(ids, std::max<int64_t>(0, first_real - 1), rng);
}

Tensor Bert4RecModel::EncodeSourceBatch(
    const std::vector<const data::EvalInstance*>& instances, Rng& rng) {
  const int64_t bsz = static_cast<int64_t>(instances.size());
  const int64_t n = static_cast<int64_t>(instances[0]->poi.size());
  const int64_t d = san_options_.base.dim;

  // Same query construction as EncodeSource: shift left, append [MASK].
  std::vector<int64_t> flat;
  flat.reserve(static_cast<size_t>(bsz * n));
  std::vector<int64_t> first_real(static_cast<size_t>(bsz));
  for (int64_t b = 0; b < bsz; ++b) {
    const auto* inst = instances[static_cast<size_t>(b)];
    STISAN_CHECK_EQ(static_cast<int64_t>(inst->poi.size()), n);
    flat.insert(flat.end(), inst->poi.begin() + 1, inst->poi.end());
    flat.push_back(mask_token_);
    first_real[static_cast<size_t>(b)] =
        std::max<int64_t>(0, inst->first_real - 1);
  }
  Tensor e = ops::Reshape(bert_embedding_.Forward(flat), {bsz, n, d}) +
             positions_.Forward(n);
  e = dropout_.Forward(e, rng);

  // Bidirectional: only padding keys are hidden (plus self for pad rows).
  std::vector<Tensor> masks(static_cast<size_t>(bsz));
  for (int64_t b = 0; b < bsz; ++b) {
    Tensor mask = Tensor::Zeros({n, n});
    float* m = mask.data();
    const int64_t fr = first_real[static_cast<size_t>(b)];
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        if (j < fr && j != i) m[i * n + j] = -1e9f;
      }
    }
    masks[static_cast<size_t>(b)] = mask;
  }
  return encoder_->Forward(e, Tensor(), ops::Stack0(masks), rng);
}

}  // namespace stisan::models
