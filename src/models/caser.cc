#include "models/caser.h"

namespace stisan::models {

CaserModel::CaserModel(const data::Dataset& dataset,
                       const CaserOptions& options)
    : NeuralSeqModel(dataset, options.base, "Caser"),
      caser_options_(options),
      conv_(options.markov_order, options.base.dim,
            /*heights=*/{2, 3}, options.filters_per_height,
            options.vertical_filters, options.base.dim, options.base.dropout,
            rng_),
      user_embedding_(dataset.num_users(), options.base.dim, rng_),
      dropout_(options.base.dropout) {
  RegisterModule(&conv_);
  RegisterModule(&user_embedding_);
  RegisterModule(&dropout_);
}

Tensor CaserModel::EncodeStep(const Tensor& emb, int64_t step, int64_t user,
                              Rng& rng) const {
  const int64_t order = caser_options_.markov_order;
  const int64_t n = emb.size(0);
  STISAN_CHECK_LT(step, n);
  // Window of the last `order` steps ending at `step`; pad by re-slicing
  // from the head (head rows are zero-padded embeddings anyway).
  const int64_t begin = std::max<int64_t>(0, step + 1 - order);
  Tensor window = ops::Slice(emb, 0, begin, step + 1);
  if (step + 1 - begin < order) {
    // Prepend zero rows to reach the fixed convolution length.
    Tensor zeros =
        Tensor::Zeros({order - (step + 1 - begin), emb.size(1)});
    window = ops::Concat(zeros, window, 0);
  }
  Tensor conv_out = conv_.Forward(window, rng);      // [1, dim]
  Tensor user_emb = user_embedding_.Forward({user}); // [1, dim]
  return conv_out + user_emb;
}

Tensor CaserModel::EncodeSource(const std::vector<int64_t>& pois,
                                const std::vector<double>& /*timestamps*/,
                                int64_t first_real, int64_t user,
                                Rng& rng) {
  // The base class needs states for every step; convolving each step is the
  // faithful (if costly) translation of Caser's sliding-window training.
  const int64_t n = static_cast<int64_t>(pois.size());
  Tensor emb = dropout_.Forward(item_embedding_.Forward(pois), rng);
  std::vector<Tensor> states;
  states.reserve(static_cast<size_t>(n));
  Tensor zero = Tensor::Zeros({1, options_.dim});
  for (int64_t i = 0; i < n; ++i) {
    states.push_back(i >= first_real ? EncodeStep(emb, i, user, rng) : zero);
  }
  return ops::Reshape(ops::Stack0(states), {n, options_.dim});
}

}  // namespace stisan::models
