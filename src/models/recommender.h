// Common interface implemented by STiSAN and all twelve baselines, so that
// the evaluator and benches treat every model uniformly (paper eq. 1).

#pragma once

#include <string>
#include <vector>

#include "data/types.h"

namespace stisan::models {

/// A trainable sequential POI recommender.
class SequentialRecommender {
 public:
  virtual ~SequentialRecommender() = default;

  /// Model name as it appears in the paper's tables.
  virtual std::string name() const = 0;

  /// Trains on the prepared windows from `dataset`.
  virtual void Fit(const data::Dataset& dataset,
                   const std::vector<data::TrainWindow>& train) = 0;

  /// Scores each candidate POI given the instance's history; higher means
  /// more likely to be visited next.
  virtual std::vector<float> Score(
      const data::EvalInstance& instance,
      const std::vector<int64_t>& candidates) = 0;
};

}  // namespace stisan::models
