// Common interface implemented by STiSAN and all twelve baselines, so that
// the evaluator and benches treat every model uniformly (paper eq. 1).

#pragma once

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "data/types.h"
#include "eval/batch_scorer.h"

namespace stisan::models {

/// Splits `ids` into the unique-id list (first-occurrence order) and a
/// per-slot index into it. Batched scorers embed each unique id once and
/// gather rows back into batch order — bit-identical to embedding the full
/// list (embeddings are row-wise) at a fraction of the work, since candidate
/// lists within a batch overlap heavily (nearby targets share negatives).
inline std::pair<std::vector<int64_t>, std::vector<int64_t>> DedupIds(
    const std::vector<int64_t>& ids) {
  std::pair<std::vector<int64_t>, std::vector<int64_t>> out;
  auto& [unique, local] = out;
  local.reserve(ids.size());
  std::unordered_map<int64_t, int64_t> index;
  index.reserve(ids.size());
  for (int64_t id : ids) {
    const auto [it, inserted] =
        index.emplace(id, static_cast<int64_t>(unique.size()));
    if (inserted) unique.push_back(id);
    local.push_back(it->second);
  }
  return out;
}

/// A trainable sequential POI recommender. Every recommender is also a
/// BatchScorer: the default ScoreBatch loops Score per instance, and models
/// with a batched forward pass (STiSAN, the attention baselines) override
/// it to score the whole batch in one padded forward.
class SequentialRecommender : public eval::BatchScorer {
 public:
  ~SequentialRecommender() override = default;

  /// Model name as it appears in the paper's tables.
  virtual std::string name() const = 0;

  /// Trains on the prepared windows from `dataset`.
  virtual void Fit(const data::Dataset& dataset,
                   const std::vector<data::TrainWindow>& train) = 0;

  /// Scores each candidate POI given the instance's history; higher means
  /// more likely to be visited next.
  virtual std::vector<float> Score(
      const data::EvalInstance& instance,
      const std::vector<int64_t>& candidates) = 0;

  std::vector<std::vector<float>> ScoreBatch(
      const std::vector<const data::EvalInstance*>& instances,
      const std::vector<std::vector<int64_t>>& candidates) override {
    std::vector<std::vector<float>> out(instances.size());
    for (size_t i = 0; i < instances.size(); ++i) {
      out[i] = Score(*instances[i], candidates[i]);
    }
    return out;
  }
};

}  // namespace stisan::models
