#include "models/gru4rec.h"

namespace stisan::models {

Gru4RecModel::Gru4RecModel(const data::Dataset& dataset,
                           const NeuralOptions& options)
    : NeuralSeqModel(dataset, options, "GRU4Rec"),
      cell_(options.dim, options.dim, rng_),
      dropout_(options.dropout) {
  RegisterModule(&cell_);
  RegisterModule(&dropout_);
}

Tensor Gru4RecModel::EncodeSource(const std::vector<int64_t>& pois,
                                  const std::vector<double>& /*timestamps*/,
                                  int64_t first_real, int64_t /*user*/,
                                  Rng& rng) {
  const int64_t n = static_cast<int64_t>(pois.size());
  Tensor emb = dropout_.Forward(item_embedding_.Forward(pois), rng);
  Tensor h = Tensor::Zeros({1, options_.dim});
  std::vector<Tensor> states;
  states.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    Tensor x = ops::Slice(emb, 0, i, i + 1);
    // Padding steps keep the zero state (their embedding rows are zero, but
    // skipping the recurrence entirely keeps the state exactly zero).
    if (i >= first_real) h = cell_.Forward(x, h);
    states.push_back(h);
  }
  return ops::Reshape(ops::Stack0(states), {n, options_.dim});
}

}  // namespace stisan::models
