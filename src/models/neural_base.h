// Shared training/eval scaffolding for the neural sequential baselines
// (GRU4Rec, STGN, SASRec, TiSASRec, STAN). Subclasses provide the sequence
// encoder; this base runs the canonical next-POI training loop — per-step
// binary cross-entropy against uniformly sampled negatives, scored by inner
// product with the shared item embedding — and the matching eval scorer.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "data/types.h"
#include "models/recommender.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "train/config.h"
#include "train/negative_sampler.h"

namespace stisan::models {

struct NeuralOptions {
  int64_t dim = 32;
  float dropout = 0.2f;
  train::TrainConfig train;
};

class NeuralSeqModel : public SequentialRecommender, public nn::Module {
 public:
  NeuralSeqModel(const data::Dataset& dataset, const NeuralOptions& options,
                 std::string model_name);

  std::string name() const override { return name_; }
  void Fit(const data::Dataset& dataset,
           const std::vector<data::TrainWindow>& train) override;
  std::vector<float> Score(const data::EvalInstance& instance,
                           const std::vector<int64_t>& candidates) override;

  float last_epoch_loss() const { return last_epoch_loss_; }

 protected:
  /// Encodes the source sequence into per-step preference states [n, dim].
  virtual Tensor EncodeSource(const std::vector<int64_t>& pois,
                              const std::vector<double>& timestamps,
                              int64_t first_real, int64_t user,
                              Rng& rng) = 0;

  /// Candidate representations [M, dim]; defaults to the item embedding.
  virtual Tensor CandidateEmbedding(const std::vector<int64_t>& candidates);

  /// Preference vectors per candidate row given encoder states; defaults to
  /// selecting the row's step state. STAN overrides this with its recall
  /// attention.
  virtual Tensor Preferences(const Tensor& candidate_emb,
                             const Tensor& encoder_out,
                             const std::vector<int64_t>& step_of_row,
                             int64_t first_real);

  const data::Dataset* dataset_;
  NeuralOptions options_;
  Rng rng_;
  nn::Embedding item_embedding_;
  std::unique_ptr<train::NegativeSampler> sampler_;
  std::string name_;
  float last_epoch_loss_ = 0.0f;
};

}  // namespace stisan::models
