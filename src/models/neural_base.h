// Shared training/eval scaffolding for the neural sequential baselines
// (GRU4Rec, STGN, SASRec, TiSASRec, STAN). Subclasses provide the sequence
// encoder; this base runs the canonical next-POI training loop — per-step
// binary cross-entropy against uniformly sampled negatives, scored by inner
// product with the shared item embedding — and the matching eval scorer.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "data/types.h"
#include "models/recommender.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "train/config.h"
#include "train/negative_sampler.h"
#include "train/trainer.h"

namespace stisan::models {

struct NeuralOptions {
  int64_t dim = 32;
  float dropout = 0.2f;
  train::TrainConfig train;
};

class NeuralSeqModel : public SequentialRecommender, public nn::Module {
 public:
  NeuralSeqModel(const data::Dataset& dataset, const NeuralOptions& options,
                 std::string model_name);

  std::string name() const override { return name_; }
  void Fit(const data::Dataset& dataset,
           const std::vector<data::TrainWindow>& train) override;
  std::vector<float> Score(const data::EvalInstance& instance,
                           const std::vector<int64_t>& candidates) override;

  /// Batched scoring: encodes the whole batch via EncodeSourceBatch, embeds
  /// all candidate lists in one lookup (padded to the widest list), and
  /// decodes preferences per instance. Per-instance scores match Score
  /// exactly. Falls back to per-instance Score when the instances do not
  /// share a padded sequence length.
  std::vector<std::vector<float>> ScoreBatch(
      const std::vector<const data::EvalInstance*>& instances,
      const std::vector<std::vector<int64_t>>& candidates) override;

  float last_epoch_loss() const { return last_epoch_loss_; }

  /// Outcome of the most recent Fit (resume/interrupt/non-finite counters).
  const train::TrainResult& last_train_result() const {
    return last_train_result_;
  }

  /// Architecture fingerprint stamped into checkpoints and verified on
  /// load; covers the model name, item-vocabulary size and hidden dim.
  std::string ConfigFingerprint() const;

 protected:
  /// Encodes the source sequence into per-step preference states [n, dim].
  virtual Tensor EncodeSource(const std::vector<int64_t>& pois,
                              const std::vector<double>& timestamps,
                              int64_t first_real, int64_t user,
                              Rng& rng) = 0;

  /// Encodes a batch of instances sharing a padded length n into
  /// [B, n, dim]. The default stacks per-instance EncodeSource outputs;
  /// attention-based subclasses override it with one padded forward
  /// through their (rank-3 capable) encoder stack.
  virtual Tensor EncodeSourceBatch(
      const std::vector<const data::EvalInstance*>& instances, Rng& rng);

  /// Candidate representations [M, dim]; defaults to the item embedding.
  virtual Tensor CandidateEmbedding(const std::vector<int64_t>& candidates);

  /// Preference vectors per candidate row given encoder states; defaults to
  /// selecting the row's step state. STAN overrides this with its recall
  /// attention.
  virtual Tensor Preferences(const Tensor& candidate_emb,
                             const Tensor& encoder_out,
                             const std::vector<int64_t>& step_of_row,
                             int64_t first_real);

  const data::Dataset* dataset_;
  NeuralOptions options_;
  Rng rng_;
  nn::Embedding item_embedding_;
  std::unique_ptr<train::NegativeSampler> sampler_;
  std::string name_;
  float last_epoch_loss_ = 0.0f;
  train::TrainResult last_train_result_;
};

}  // namespace stisan::models
