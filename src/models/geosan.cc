#include "models/geosan.h"

namespace stisan::models {

core::StisanOptions GeoSanModel::MakeOptions(core::StisanOptions options) {
  options.use_geo_encoder = true;
  options.use_tape = false;  // vanilla positional encoding
  options.attention_mode = core::AttentionMode::kVanilla;
  options.use_taad = true;
  options.knn_negatives = true;
  return options;
}

GeoSanModel::GeoSanModel(const data::Dataset& dataset,
                         core::StisanOptions options)
    : inner_(dataset, MakeOptions(std::move(options))) {}

}  // namespace stisan::models
