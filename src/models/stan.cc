#include "models/stan.h"

#include <algorithm>
#include <cmath>

#include "core/relation.h"
#include "core/taad.h"
#include "geo/geo.h"

namespace stisan::models {

StanModel::StanModel(const data::Dataset& dataset, const StanOptions& options)
    : NeuralSeqModel(dataset, options.base, "STAN"),
      stan_options_(options),
      positions_(options.max_seq_len, options.base.dim, rng_),
      dropout_(options.base.dropout) {
  core::IaabOptions block;
  block.dim = options.base.dim;
  block.ffn_hidden =
      options.ffn_hidden > 0 ? options.ffn_hidden : 2 * options.base.dim;
  block.dropout = options.base.dropout;
  block.mode = core::AttentionMode::kIntervalAware;
  encoder_ = std::make_unique<core::IaabEncoder>(block, options.num_blocks,
                                                 rng_);
  // Start with a mild preference for spatio-temporal proximity; training
  // adjusts the two weights.
  interval_weights_ =
      RegisterParameter(Tensor::FromVector({2}, {0.5f, 0.5f}));
  RegisterModule(&positions_);
  RegisterModule(&dropout_);
  RegisterModule(encoder_.get());
}

Tensor StanModel::EncodeSource(const std::vector<int64_t>& pois,
                               const std::vector<double>& timestamps,
                               int64_t first_real, int64_t /*user*/,
                               Rng& rng) {
  const int64_t n = static_cast<int64_t>(pois.size());
  Tensor e = item_embedding_.Forward(pois) + positions_.Forward(n);
  e = dropout_.Forward(e, rng);

  // Proximity matrices in [0, 1]: 1 = closest, 0 = at/beyond the clip.
  Tensor t_prox = Tensor::Zeros({n, n});
  Tensor d_prox = Tensor::Zeros({n, n});
  float* tp = t_prox.data();
  float* dp = d_prox.data();
  const double max_t = stan_options_.max_interval_days * 86400.0;
  const double max_d = stan_options_.max_interval_km;
  for (int64_t i = first_real; i < n; ++i) {
    for (int64_t j = first_real; j <= i; ++j) {
      const double dt = std::min(
          max_t, std::fabs(timestamps[size_t(i)] - timestamps[size_t(j)]));
      const double dd = std::min(
          max_d, geo::HaversineKm(dataset_->poi_location(pois[size_t(i)]),
                                  dataset_->poi_location(pois[size_t(j)])));
      tp[i * n + j] = static_cast<float>(1.0 - (max_t > 0 ? dt / max_t : 0));
      dp[i * n + j] = static_cast<float>(1.0 - (max_d > 0 ? dd / max_d : 0));
    }
  }
  // Offset views of the 2-element parameter; grads land in its buffer.
  Tensor wt = ops::Slice(interval_weights_, 0, 0, 1);  // [1]
  Tensor wd = ops::Slice(interval_weights_, 0, 1, 2);  // [1]
  Tensor bias = t_prox * wt + d_prox * wd;  // broadcast [n,n] * [1]

  Tensor mask = core::BuildPaddedCausalMask(n, first_real);
  return encoder_->Forward(e, bias, mask, rng);
}

Tensor StanModel::Preferences(const Tensor& candidate_emb,
                              const Tensor& encoder_out,
                              const std::vector<int64_t>& step_of_row,
                              int64_t first_real) {
  return core::TaadDecode(candidate_emb, encoder_out, step_of_row,
                          first_real);
}

}  // namespace stisan::models
