// Caser baseline (Tang & Wang, WSDM 2018): horizontal + vertical
// convolutions over the embeddings of the most recent L visits, combined
// with a user embedding.

#pragma once

#include "models/neural_base.h"
#include "nn/conv.h"

namespace stisan::models {

struct CaserOptions {
  NeuralOptions base;
  int64_t markov_order = 5;       // L: convolution window over recent visits
  int64_t filters_per_height = 4;
  int64_t vertical_filters = 2;
};

class CaserModel : public NeuralSeqModel {
 public:
  CaserModel(const data::Dataset& dataset, const CaserOptions& options);

 protected:
  Tensor EncodeSource(const std::vector<int64_t>& pois,
                      const std::vector<double>& timestamps,
                      int64_t first_real, int64_t user, Rng& rng) override;

 private:
  /// Convolves the L-visit window ending at step i (inclusive).
  Tensor EncodeStep(const Tensor& emb, int64_t step, int64_t user,
                    Rng& rng) const;

  CaserOptions caser_options_;
  nn::CaserConv conv_;
  nn::Embedding user_embedding_;
  nn::Dropout dropout_;
};

}  // namespace stisan::models
