#include "models/ensemble.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace stisan::models {

EnsembleModel::EnsembleModel(std::vector<Member> members, double rrf_k)
    : members_(std::move(members)), rrf_k_(rrf_k) {
  STISAN_CHECK(!members_.empty());
  STISAN_CHECK_GT(rrf_k_, 0.0);
  for (const auto& m : members_) {
    STISAN_CHECK(m.model != nullptr);
    STISAN_CHECK_GE(m.weight, 0.0);
  }
}

void EnsembleModel::Fit(const data::Dataset& dataset,
                        const std::vector<data::TrainWindow>& train) {
  for (auto& m : members_) m.model->Fit(dataset, train);
}

std::vector<float> EnsembleModel::Score(
    const data::EvalInstance& instance,
    const std::vector<int64_t>& candidates) {
  std::vector<float> fused(candidates.size(), 0.0f);
  std::vector<size_t> order(candidates.size());
  for (const auto& m : members_) {
    const auto scores = m.model->Score(instance, candidates);
    STISAN_CHECK_EQ(scores.size(), candidates.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(), [&scores](size_t a, size_t b) {
      return scores[a] > scores[b];
    });
    for (size_t rank = 0; rank < order.size(); ++rank) {
      fused[order[rank]] += static_cast<float>(
          m.weight / (rrf_k_ + static_cast<double>(rank)));
    }
  }
  return fused;
}

}  // namespace stisan::models
