#include "geo/geohash.h"

#include <cmath>

#include "util/check.h"

namespace stisan::geo {
namespace {

constexpr const char* kBase32 = "0123456789bcdefghjkmnpqrstuvwxyz";

int CharIndex(char c) {
  for (int i = 0; i < 32; ++i) {
    if (kBase32[i] == c) return i;
  }
  return -1;
}

}  // namespace

std::string GeohashEncode(const GeoPoint& p, int precision) {
  STISAN_CHECK_GE(precision, 1);
  STISAN_CHECK_LE(precision, 12);
  double lat_lo = -90.0, lat_hi = 90.0;
  double lon_lo = -180.0, lon_hi = 180.0;
  std::string out;
  out.reserve(static_cast<size_t>(precision));
  int bit = 0;
  int current = 0;
  bool even = true;  // even bits encode longitude
  while (static_cast<int>(out.size()) < precision) {
    if (even) {
      const double mid = (lon_lo + lon_hi) / 2.0;
      if (p.lon >= mid) {
        current = (current << 1) | 1;
        lon_lo = mid;
      } else {
        current <<= 1;
        lon_hi = mid;
      }
    } else {
      const double mid = (lat_lo + lat_hi) / 2.0;
      if (p.lat >= mid) {
        current = (current << 1) | 1;
        lat_lo = mid;
      } else {
        current <<= 1;
        lat_hi = mid;
      }
    }
    even = !even;
    if (++bit == 5) {
      out.push_back(kBase32[current]);
      bit = 0;
      current = 0;
    }
  }
  return out;
}

Result<GeoPoint> GeohashDecode(const std::string& hash) {
  if (hash.empty()) return Status::InvalidArgument("empty geohash");
  double lat_lo = -90.0, lat_hi = 90.0;
  double lon_lo = -180.0, lon_hi = 180.0;
  bool even = true;
  for (char c : hash) {
    const int idx = CharIndex(c);
    if (idx < 0) {
      return Status::InvalidArgument(std::string("illegal geohash char: ") +
                                     c);
    }
    for (int b = 4; b >= 0; --b) {
      const int bit = (idx >> b) & 1;
      if (even) {
        const double mid = (lon_lo + lon_hi) / 2.0;
        (bit ? lon_lo : lon_hi) = mid;
      } else {
        const double mid = (lat_lo + lat_hi) / 2.0;
        (bit ? lat_lo : lat_hi) = mid;
      }
      even = !even;
    }
  }
  return GeoPoint{(lat_lo + lat_hi) / 2.0, (lon_lo + lon_hi) / 2.0};
}

GeohashCellSize GeohashCellDimensions(int precision) {
  STISAN_CHECK_GE(precision, 1);
  STISAN_CHECK_LE(precision, 12);
  // 5 bits per character, alternating lon (even) / lat (odd) starting with
  // lon: lon bits = ceil(5p/2), lat bits = floor(5p/2).
  const int total_bits = 5 * precision;
  const int lon_bits = (total_bits + 1) / 2;
  const int lat_bits = total_bits / 2;
  GeohashCellSize size;
  size.height_km = 180.0 / std::pow(2.0, lat_bits) * 111.32;
  size.width_km = 360.0 / std::pow(2.0, lon_bits) * 111.32;
  return size;
}

}  // namespace stisan::geo
