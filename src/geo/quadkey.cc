#include "geo/quadkey.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace stisan::geo {

Tile LatLonToTile(const GeoPoint& p, int level) {
  STISAN_CHECK_GE(level, 1);
  STISAN_CHECK_LE(level, 30);
  // Clamp to the Web-Mercator valid latitude range.
  const double lat = std::clamp(p.lat, -85.05112878, 85.05112878);
  const double lon = std::clamp(p.lon, -180.0, 180.0);
  const double x = (lon + 180.0) / 360.0;
  const double sin_lat = std::sin(lat * M_PI / 180.0);
  const double y =
      0.5 - std::log((1.0 + sin_lat) / (1.0 - sin_lat)) / (4.0 * M_PI);
  const int64_t map_size = int64_t{1} << level;
  Tile t;
  t.level = level;
  t.x = std::clamp<int64_t>(static_cast<int64_t>(x * double(map_size)), 0,
                            map_size - 1);
  t.y = std::clamp<int64_t>(static_cast<int64_t>(y * double(map_size)), 0,
                            map_size - 1);
  return t;
}

std::string TileToQuadKey(const Tile& tile) {
  std::string key;
  key.reserve(static_cast<size_t>(tile.level));
  for (int i = tile.level; i > 0; --i) {
    char digit = '0';
    const int64_t mask = int64_t{1} << (i - 1);
    if (tile.x & mask) digit += 1;
    if (tile.y & mask) digit += 2;
    key.push_back(digit);
  }
  return key;
}

std::string ToQuadKey(const GeoPoint& p, int level) {
  return TileToQuadKey(LatLonToTile(p, level));
}

std::vector<int64_t> QuadKeyNgramTokens(const std::string& quadkey, int n) {
  STISAN_CHECK_GE(n, 1);
  STISAN_CHECK_GE(static_cast<int>(quadkey.size()), n);
  std::vector<int64_t> tokens;
  tokens.reserve(quadkey.size() - static_cast<size_t>(n) + 1);
  for (size_t start = 0; start + static_cast<size_t>(n) <= quadkey.size();
       ++start) {
    int64_t id = 0;
    for (int j = 0; j < n; ++j) {
      const char c = quadkey[start + static_cast<size_t>(j)];
      STISAN_CHECK_GE(c, '0');
      STISAN_CHECK_LE(c, '3');
      id = id * 4 + (c - '0');
    }
    tokens.push_back(id);
  }
  return tokens;
}

int64_t QuadKeyNgramVocabSize(int n) {
  STISAN_CHECK_GE(n, 1);
  STISAN_CHECK_LE(n, 15);
  int64_t v = 1;
  for (int i = 0; i < n; ++i) v *= 4;
  return v;
}

}  // namespace stisan::geo
