#include "geo/spatial_index.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "util/check.h"

namespace stisan::geo {
namespace {
constexpr double kDegToRad = M_PI / 180.0;
constexpr double kKmPerDegLat = 111.32;
}  // namespace

SpatialGridIndex::SpatialGridIndex(std::vector<GeoPoint> points,
                                   double cell_km)
    : points_(std::move(points)) {
  STISAN_CHECK_GT(cell_km, 0.0);
  for (const auto& p : points_) bounds_.Extend(p);
  if (points_.empty()) {
    rows_ = cols_ = 1;
    cells_.resize(1);
    cell_deg_lat_ = cell_deg_lon_ = 1.0;
    return;
  }
  const double mid_lat =
      0.5 * (bounds_.min_lat + bounds_.max_lat) * kDegToRad;
  cell_deg_lat_ = cell_km / kKmPerDegLat;
  cell_deg_lon_ =
      cell_km / (kKmPerDegLat * std::max(0.05, std::cos(mid_lat)));
  rows_ = std::max<int64_t>(
      1, static_cast<int64_t>((bounds_.max_lat - bounds_.min_lat) /
                              cell_deg_lat_) +
             1);
  cols_ = std::max<int64_t>(
      1, static_cast<int64_t>((bounds_.max_lon - bounds_.min_lon) /
                              cell_deg_lon_) +
             1);
  cells_.resize(static_cast<size_t>(rows_ * cols_));
  for (size_t i = 0; i < points_.size(); ++i) {
    const int64_t r = CellRow(points_[i].lat);
    const int64_t c = CellCol(points_[i].lon);
    cells_[static_cast<size_t>(CellIndex(r, c))].push_back(
        static_cast<int64_t>(i));
  }
}

int64_t SpatialGridIndex::CellRow(double lat) const {
  const int64_t r =
      static_cast<int64_t>((lat - bounds_.min_lat) / cell_deg_lat_);
  return std::clamp<int64_t>(r, 0, rows_ - 1);
}

int64_t SpatialGridIndex::CellCol(double lon) const {
  const int64_t c =
      static_cast<int64_t>((lon - bounds_.min_lon) / cell_deg_lon_);
  return std::clamp<int64_t>(c, 0, cols_ - 1);
}

std::vector<int64_t> SpatialGridIndex::KNearest(
    const GeoPoint& query, int64_t k,
    const std::function<bool(int64_t)>& accept) const {
  if (k <= 0 || points_.empty()) return {};
  // Expanding ring search: examine cells in increasing Chebyshev ring order
  // around the query cell; stop when the found set is full and the next
  // ring cannot contain anything closer.
  const int64_t qr = CellRow(query.lat);
  const int64_t qc = CellCol(query.lon);

  using Entry = std::pair<double, int64_t>;  // (distance, id)
  std::priority_queue<Entry> heap;           // max-heap of the best k

  const double cell_km_lat = cell_deg_lat_ * kKmPerDegLat;
  const int64_t max_ring = std::max(rows_, cols_);
  for (int64_t ring = 0; ring <= max_ring; ++ring) {
    // Early exit: any point in this ring is at least (ring-1) cells away.
    if (static_cast<int64_t>(heap.size()) == k) {
      const double min_possible_km =
          std::max(0.0, double(ring - 1)) * cell_km_lat;
      if (heap.top().first < min_possible_km) break;
    }
    bool ring_in_bounds = false;
    for (int64_t dr = -ring; dr <= ring; ++dr) {
      for (int64_t dc = -ring; dc <= ring; ++dc) {
        if (std::max(std::llabs(dr), std::llabs(dc)) != ring) continue;
        const int64_t r = qr + dr;
        const int64_t c = qc + dc;
        if (r < 0 || r >= rows_ || c < 0 || c >= cols_) continue;
        ring_in_bounds = true;
        for (int64_t id : cells_[static_cast<size_t>(CellIndex(r, c))]) {
          if (accept && !accept(id)) continue;
          const double dist =
              HaversineKm(query, points_[static_cast<size_t>(id)]);
          if (static_cast<int64_t>(heap.size()) < k) {
            heap.emplace(dist, id);
          } else if (dist < heap.top().first) {
            heap.pop();
            heap.emplace(dist, id);
          }
        }
      }
    }
    if (!ring_in_bounds && ring > 0 && qr - ring < 0 && qr + ring >= rows_ &&
        qc - ring < 0 && qc + ring >= cols_) {
      break;  // ring fully outside the grid
    }
  }

  std::vector<int64_t> out(heap.size());
  for (size_t i = heap.size(); i-- > 0;) {
    out[i] = heap.top().second;
    heap.pop();
  }
  return out;
}

std::vector<int64_t> SpatialGridIndex::WithinRadius(const GeoPoint& query,
                                                    double radius_km) const {
  std::vector<int64_t> out;
  if (points_.empty()) return out;
  // Cells are cell_km wide in latitude by construction; their longitudinal
  // width in km is also ~cell_km (the degree width carries the cos
  // correction), narrowing toward the poles — use the minimum width over
  // the grid's latitude range plus a safety cell.
  const double cell_km_lat = cell_deg_lat_ * kKmPerDegLat;
  const double min_cos = std::max(
      0.05, std::min(std::cos(bounds_.min_lat * kDegToRad),
                     std::cos(bounds_.max_lat * kDegToRad)));
  const double cell_km_lon = cell_deg_lon_ * kKmPerDegLat * min_cos;
  const int64_t ring_lat =
      static_cast<int64_t>(radius_km / cell_km_lat) + 2;
  const int64_t ring_lon =
      static_cast<int64_t>(radius_km / cell_km_lon) + 2;
  const int64_t qr = CellRow(query.lat);
  const int64_t qc = CellCol(query.lon);
  for (int64_t r = std::max<int64_t>(0, qr - ring_lat);
       r <= std::min(rows_ - 1, qr + ring_lat); ++r) {
    for (int64_t c = std::max<int64_t>(0, qc - ring_lon);
         c <= std::min(cols_ - 1, qc + ring_lon); ++c) {
      for (int64_t id : cells_[static_cast<size_t>(CellIndex(r, c))]) {
        if (HaversineKm(query, points_[static_cast<size_t>(id)]) <=
            radius_km) {
          out.push_back(id);
        }
      }
    }
  }
  return out;
}

}  // namespace stisan::geo
