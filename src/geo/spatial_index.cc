#include "geo/spatial_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace stisan::geo {
namespace {
constexpr double kDegToRad = M_PI / 180.0;
// Cell-sizing scale (historical): one degree of latitude in km. Kept for
// grid-resolution choices only; distance *bounds* use the exact spherical
// arc (kEarthRadiusKm * kDegToRad per degree), which is slightly smaller —
// a bound computed with 111.32 would overestimate and could break the ring
// search before a true nearest neighbour is found.
constexpr double kKmPerDegLat = 111.32;
constexpr double kKmPerDegArc = kEarthRadiusKm * kDegToRad;
}  // namespace

SpatialGridIndex::SpatialGridIndex(std::vector<GeoPoint> points,
                                   double cell_km)
    : points_(std::move(points)) {
  STISAN_CHECK_GT(cell_km, 0.0);
  for (const auto& p : points_) bounds_.Extend(p);
  if (points_.empty()) {
    rows_ = cols_ = 1;
    cell_deg_lat_ = cell_deg_lon_ = 1.0;
    return;
  }
  const double mid_lat =
      0.5 * (bounds_.min_lat + bounds_.max_lat) * kDegToRad;
  cell_deg_lat_ = cell_km / kKmPerDegLat;
  cell_deg_lon_ =
      cell_km / (kKmPerDegLat * std::max(0.05, std::cos(mid_lat)));
  rows_ = std::max<int64_t>(
      1, static_cast<int64_t>((bounds_.max_lat - bounds_.min_lat) /
                              cell_deg_lat_) +
             1);
  cols_ = std::max<int64_t>(
      1, static_cast<int64_t>((bounds_.max_lon - bounds_.min_lon) /
                              cell_deg_lon_) +
             1);
  STISAN_CHECK_LE(rows_, std::numeric_limits<int64_t>::max() / cols_);
  // cos(|lat|) is smallest at whichever latitude extreme is farther from
  // the equator; cells are never wider (in km) than at that latitude.
  min_cos_lat_ =
      std::max(0.0, std::min(std::cos(bounds_.min_lat * kDegToRad),
                             std::cos(bounds_.max_lat * kDegToRad)));
  lon_span_deg_ = bounds_.max_lon - bounds_.min_lon;

  // Group point ids by cell without materialising the grid: count per
  // occupied cell, carve [offset, offset+count) slices out of one flat
  // array, then fill in point order (so ids within a cell keep insertion
  // order, exactly as the former dense vector<vector> layout).
  std::vector<int64_t> cell_of(points_.size());
  for (size_t i = 0; i < points_.size(); ++i) {
    cell_of[i] = CellIndex(CellRow(points_[i].lat), CellCol(points_[i].lon));
    auto [it, inserted] = cells_.try_emplace(cell_of[i], 0, 0);
    ++it->second.second;
  }
  int64_t offset = 0;
  for (auto& [cell, span] : cells_) {
    span.first = offset;
    offset += span.second;
    span.second = span.first;  // reused as the fill cursor below
  }
  cell_point_ids_.resize(points_.size());
  for (size_t i = 0; i < points_.size(); ++i) {
    auto& span = cells_[cell_of[i]];
    cell_point_ids_[static_cast<size_t>(span.second++)] =
        static_cast<int64_t>(i);
  }
  // span.second now holds one-past-the-end, i.e. (offset, end) pairs.
}

int64_t SpatialGridIndex::CellRow(double lat) const {
  const int64_t r =
      static_cast<int64_t>((lat - bounds_.min_lat) / cell_deg_lat_);
  return std::clamp<int64_t>(r, 0, rows_ - 1);
}

int64_t SpatialGridIndex::CellCol(double lon) const {
  const int64_t c =
      static_cast<int64_t>((lon - bounds_.min_lon) / cell_deg_lon_);
  return std::clamp<int64_t>(c, 0, cols_ - 1);
}

SpatialGridIndex::CellSpan SpatialGridIndex::Cell(int64_t row,
                                                  int64_t col) const {
  const auto it = cells_.find(CellIndex(row, col));
  if (it == cells_.end()) return {};
  const int64_t* base = cell_point_ids_.data();
  return {base + it->second.first, base + it->second.second};
}

double SpatialGridIndex::RingLowerBoundKm(int64_t ring) const {
  if (ring <= 1) return 0.0;
  // A cell in Chebyshev ring r has |drow| == r or |dcol| == r, so the point
  // is separated from the query by at least (r-1) cell heights in latitude
  // OR (r-1) cell widths in longitude — the bound is the smaller of the two
  // (ISSUE: the former latitude-only bound overestimated wherever cells are
  // longitudinally narrower than cell_km, i.e. at latitudes beyond the
  // mid-latitude baked into cell_deg_lon_).
  const double cells = static_cast<double>(ring - 1);
  // Latitude: Haversine(a, b) >= R * |dlat| exactly.
  const double lat_bound_km = cells * cell_deg_lat_ * kKmPerDegArc;
  // Longitude: Haversine >= 2R asin(min cos(lat) * sin(|dlon| / 2)).
  // sin(x/2) is not monotone past x = 180deg, so take the minimum over the
  // feasible separation range [(r-1) * cell width, grid lon span].
  const double lon_sep_deg = std::min(cells * cell_deg_lon_, 360.0);
  double sin_half = std::sin(0.5 * lon_sep_deg * kDegToRad);
  sin_half = std::min(sin_half, std::sin(0.5 * lon_span_deg_ * kDegToRad));
  const double x = std::clamp(min_cos_lat_ * sin_half, 0.0, 1.0);
  const double lon_bound_km = 2.0 * kEarthRadiusKm * std::asin(x);
  return std::min(lat_bound_km, std::max(0.0, lon_bound_km));
}

std::vector<int64_t> SpatialGridIndex::KNearest(
    const GeoPoint& query, int64_t k,
    const std::function<bool(int64_t)>& accept) const {
  QueryScratch scratch;
  std::vector<int64_t> out;
  KNearestInto(query, k, accept, &scratch, &out);
  return out;
}

void SpatialGridIndex::KNearestInto(
    const GeoPoint& query, int64_t k,
    const std::function<bool(int64_t)>& accept, QueryScratch* scratch,
    std::vector<int64_t>* out) const {
  out->clear();
  if (k <= 0 || points_.empty()) return;
  // Expanding ring search: examine cells in increasing Chebyshev ring order
  // around the query cell; stop when the found set is full and the next
  // ring cannot contain anything closer.
  const int64_t qr = CellRow(query.lat);
  const int64_t qc = CellCol(query.lon);

  auto& heap = scratch->heap;  // max-heap of the best k (distance, id)
  heap.clear();

  const int64_t max_ring = std::max(rows_, cols_);
  for (int64_t ring = 0; ring <= max_ring; ++ring) {
    if (static_cast<int64_t>(heap.size()) == k &&
        heap.front().first < RingLowerBoundKm(ring)) {
      break;
    }
    bool ring_in_bounds = false;
    for (int64_t dr = -ring; dr <= ring; ++dr) {
      const int64_t r = qr + dr;
      if (r < 0 || r >= rows_) continue;
      // Interior rows visit only the two rim columns; the top and bottom
      // rows sweep the full [-ring, ring] span.
      const int64_t dc_step =
          (std::llabs(dr) == ring || ring == 0) ? 1 : 2 * ring;
      for (int64_t dc = -ring; dc <= ring; dc += dc_step) {
        const int64_t c = qc + dc;
        if (c < 0 || c >= cols_) continue;
        ring_in_bounds = true;
        const CellSpan span = Cell(r, c);
        for (const int64_t* it = span.begin; it != span.end; ++it) {
          const int64_t id = *it;
          if (accept && !accept(id)) continue;
          const double dist =
              HaversineKm(query, points_[static_cast<size_t>(id)]);
          if (static_cast<int64_t>(heap.size()) < k) {
            heap.emplace_back(dist, id);
            std::push_heap(heap.begin(), heap.end());
          } else if (dist < heap.front().first) {
            std::pop_heap(heap.begin(), heap.end());
            heap.back() = {dist, id};
            std::push_heap(heap.begin(), heap.end());
          }
        }
      }
    }
    if (!ring_in_bounds && ring > 0 && qr - ring < 0 && qr + ring >= rows_ &&
        qc - ring < 0 && qc + ring >= cols_) {
      break;  // ring fully outside the grid
    }
  }

  out->resize(heap.size());
  for (size_t i = heap.size(); i-- > 0;) {
    (*out)[i] = heap.front().second;
    std::pop_heap(heap.begin(), heap.begin() + static_cast<int64_t>(i) + 1);
  }
  heap.clear();
}

std::vector<int64_t> SpatialGridIndex::WithinRadius(
    const GeoPoint& query, double radius_km) const {
  std::vector<int64_t> out;
  WithinRadiusInto(query, radius_km, &out);
  return out;
}

void SpatialGridIndex::WithinRadiusInto(const GeoPoint& query,
                                        double radius_km,
                                        std::vector<int64_t>* out) const {
  out->clear();
  if (points_.empty()) return;
  // Cells are cell_km tall in latitude by construction; their longitudinal
  // width in km narrows toward the poles — size the scan with the minimum
  // width over the grid's latitude range plus a safety cell, clamped to the
  // grid (a polar extent degenerates to a full column sweep, never a
  // missed point).
  const double cell_km_lat = cell_deg_lat_ * kKmPerDegArc;
  const double cell_km_lon =
      cell_deg_lon_ * kKmPerDegArc * std::max(min_cos_lat_, 1e-9);
  const auto scan_cells = [](double radius, double cell_km, int64_t limit) {
    const double cells = radius / cell_km;
    if (!(cells < static_cast<double>(limit))) return limit;
    return std::min(limit, static_cast<int64_t>(cells) + 2);
  };
  const int64_t ring_lat = scan_cells(radius_km, cell_km_lat, rows_);
  const int64_t ring_lon = scan_cells(radius_km, cell_km_lon, cols_);
  const int64_t qr = CellRow(query.lat);
  const int64_t qc = CellCol(query.lon);
  for (int64_t r = std::max<int64_t>(0, qr - ring_lat);
       r <= std::min(rows_ - 1, qr + ring_lat); ++r) {
    for (int64_t c = std::max<int64_t>(0, qc - ring_lon);
         c <= std::min(cols_ - 1, qc + ring_lon); ++c) {
      const CellSpan span = Cell(r, c);
      for (const int64_t* it = span.begin; it != span.end; ++it) {
        if (HaversineKm(query, points_[static_cast<size_t>(*it)]) <=
            radius_km) {
          out->push_back(*it);
        }
      }
    }
  }
}

}  // namespace stisan::geo
