// Web-Mercator tiling and quadkeys, plus the quadkey n-gram tokenisation
// used by the GeoSAN-style geography encoder (Lian et al., KDD 2020).
//
// A quadkey at zoom level z is a base-4 string of length z identifying a map
// tile; prefixes identify enclosing tiles, so nearby locations share long
// common prefixes. GeoSAN tokenises the quadkey into overlapping n-grams and
// embeds those, letting the model share parameters across space.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geo/geo.h"

namespace stisan::geo {

/// Tile coordinates at a zoom level.
struct Tile {
  int64_t x = 0;
  int64_t y = 0;
  int level = 0;
};

/// Maps a GPS point to its Web-Mercator tile at `level` (1..30).
Tile LatLonToTile(const GeoPoint& p, int level);

/// Encodes a tile as its quadkey (base-4 digit string of length `level`).
std::string TileToQuadKey(const Tile& tile);

/// Convenience: point -> quadkey.
std::string ToQuadKey(const GeoPoint& p, int level);

/// Splits a quadkey into overlapping character n-grams and maps each to a
/// dense token id in [0, 4^n): the n-gram read as a base-4 number.
/// "0123" with n=2 -> tokens for "01", "12", "23".
std::vector<int64_t> QuadKeyNgramTokens(const std::string& quadkey, int n);

/// Vocabulary size of the n-gram tokenisation (4^n).
int64_t QuadKeyNgramVocabSize(int n);

}  // namespace stisan::geo
