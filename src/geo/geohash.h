// Geohash encoding/decoding (base-32 interleaved lat/lon), the other
// widely-used hierarchical geocode besides quadkeys. Prefixes identify
// enclosing cells, so geohashes support the same prefix-sharing tricks the
// quadkey n-gram encoder uses.

#pragma once

#include <string>

#include "geo/geo.h"
#include "util/status.h"

namespace stisan::geo {

/// Encodes a point as a geohash of `precision` characters (1..12).
std::string GeohashEncode(const GeoPoint& p, int precision);

/// Decodes a geohash to its cell-centre point. Returns InvalidArgument on
/// malformed input (illegal characters or empty string).
Result<GeoPoint> GeohashDecode(const std::string& hash);

/// Approximate cell dimensions (km) of a geohash of the given precision at
/// the equator: {height_km, width_km}.
struct GeohashCellSize {
  double height_km = 0.0;
  double width_km = 0.0;
};
GeohashCellSize GeohashCellDimensions(int precision);

}  // namespace stisan::geo
