// Uniform-grid spatial index over a set of points with k-nearest-neighbour
// queries. Used for the paper's evaluation protocol (rank the target against
// its 100 nearest unvisited POIs) and the importance-based negative sampler
// (L negatives from the target's nearest 2000 neighbours).

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "geo/geo.h"

namespace stisan::geo {

/// Immutable grid index over points identified by their insertion index.
class SpatialGridIndex {
 public:
  /// Builds an index over `points`. `cell_km` controls grid resolution;
  /// smaller cells speed up small-k queries on dense data.
  explicit SpatialGridIndex(std::vector<GeoPoint> points,
                            double cell_km = 2.0);

  /// Returns the ids of the `k` nearest points to `query`, ascending by
  /// Haversine distance. Points for which `accept` returns false are
  /// skipped (pass nullptr to accept everything). Returns fewer than k ids
  /// when not enough acceptable points exist.
  std::vector<int64_t> KNearest(
      const GeoPoint& query, int64_t k,
      const std::function<bool(int64_t)>& accept = nullptr) const;

  /// Returns all point ids within `radius_km` of `query` (unsorted).
  std::vector<int64_t> WithinRadius(const GeoPoint& query,
                                    double radius_km) const;

  int64_t size() const { return static_cast<int64_t>(points_.size()); }
  const GeoPoint& point(int64_t id) const {
    return points_[static_cast<size_t>(id)];
  }

 private:
  int64_t CellRow(double lat) const;
  int64_t CellCol(double lon) const;
  int64_t CellIndex(int64_t row, int64_t col) const {
    return row * cols_ + col;
  }

  std::vector<GeoPoint> points_;
  BoundingBox bounds_;
  double cell_deg_lat_ = 0.0;
  double cell_deg_lon_ = 0.0;
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<std::vector<int64_t>> cells_;
};

}  // namespace stisan::geo
