// Sparse-grid spatial index over a set of points with k-nearest-neighbour
// and radius queries. Used for the paper's evaluation protocol (rank the
// target against its 100 nearest unvisited POIs), the importance-based
// negative sampler (L negatives from the target's nearest 2000 neighbours),
// and the two-stage full-catalog ranker (DESIGN.md §17).
//
// Cells are stored in a hash map keyed by cell index, so memory is
// O(points), not O(rows x cols): a continent-span catalog with km-scale
// cells addresses hundreds of millions of grid cells but only materialises
// the occupied ones. Point ids within a cell keep insertion order, so query
// results are deterministic and identical to the former dense-grid layout.

#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "geo/geo.h"

namespace stisan::geo {

/// Immutable grid index over points identified by their insertion index.
class SpatialGridIndex {
 public:
  /// Builds an index over `points`. `cell_km` controls grid resolution;
  /// smaller cells speed up small-k queries on dense data.
  explicit SpatialGridIndex(std::vector<GeoPoint> points,
                            double cell_km = 2.0);

  /// Reusable query scratch. The *Into query variants are allocation-free
  /// once the scratch (and the output vector) have grown to steady-state
  /// capacity, which is what makes the candidate-generation hot path
  /// malloc-free (geo::CandidateGenerator keeps one per worker range).
  struct QueryScratch {
    std::vector<std::pair<double, int64_t>> heap;  // max-heap of best k
  };

  /// Returns the ids of the `k` nearest points to `query`, ascending by
  /// Haversine distance. Points for which `accept` returns false are
  /// skipped (pass nullptr to accept everything). Returns fewer than k ids
  /// when not enough acceptable points exist.
  std::vector<int64_t> KNearest(
      const GeoPoint& query, int64_t k,
      const std::function<bool(int64_t)>& accept = nullptr) const;

  /// KNearest into caller-owned buffers: `out` is cleared and filled with
  /// the result; `scratch` carries the internal heap across calls.
  void KNearestInto(const GeoPoint& query, int64_t k,
                    const std::function<bool(int64_t)>& accept,
                    QueryScratch* scratch, std::vector<int64_t>* out) const;

  /// Returns all point ids within `radius_km` of `query` (unsorted).
  std::vector<int64_t> WithinRadius(const GeoPoint& query,
                                    double radius_km) const;

  /// WithinRadius into a caller-owned buffer (`out` is cleared first).
  void WithinRadiusInto(const GeoPoint& query, double radius_km,
                        std::vector<int64_t>* out) const;

  int64_t size() const { return static_cast<int64_t>(points_.size()); }
  const GeoPoint& point(int64_t id) const {
    return points_[static_cast<size_t>(id)];
  }
  /// Number of materialised (occupied) cells.
  int64_t occupied_cells() const {
    return static_cast<int64_t>(cells_.size());
  }
  /// Total addressable grid cells (rows x cols) — the dense-layout cost.
  int64_t addressable_cells() const { return rows_ * cols_; }

 private:
  /// Contiguous slice of cell_point_ids_ belonging to one cell.
  struct CellSpan {
    const int64_t* begin = nullptr;
    const int64_t* end = nullptr;
  };

  int64_t CellRow(double lat) const;
  int64_t CellCol(double lon) const;
  int64_t CellIndex(int64_t row, int64_t col) const {
    return row * cols_ + col;
  }
  CellSpan Cell(int64_t row, int64_t col) const;
  /// Exact lower bound (km) on the distance from the query to any point in
  /// Chebyshev ring `ring` around the query's cell.
  double RingLowerBoundKm(int64_t ring) const;

  std::vector<GeoPoint> points_;
  BoundingBox bounds_;
  double cell_deg_lat_ = 0.0;
  double cell_deg_lon_ = 0.0;
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  /// Smallest cosine of latitude over the grid's latitude range (the
  /// narrowest a cell gets, longitudinally). Not clamped: the early-exit
  /// bound must never overestimate how far the next ring is.
  double min_cos_lat_ = 1.0;
  double lon_span_deg_ = 0.0;
  /// Point ids grouped by cell (insertion order within a cell), plus the
  /// sparse map from cell index to the [offset, offset+count) slice.
  std::vector<int64_t> cell_point_ids_;
  std::unordered_map<int64_t, std::pair<int64_t, int64_t>> cells_;
};

}  // namespace stisan::geo
