#include "geo/geo.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace stisan::geo {
namespace {
constexpr double kDegToRad = M_PI / 180.0;
}  // namespace

double HaversineKm(const GeoPoint& a, const GeoPoint& b) {
  const double lat1 = a.lat * kDegToRad;
  const double lat2 = b.lat * kDegToRad;
  const double dlat = (b.lat - a.lat) * kDegToRad;
  const double dlon = (b.lon - a.lon) * kDegToRad;
  const double s1 = std::sin(dlat / 2.0);
  const double s2 = std::sin(dlon / 2.0);
  const double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

GeoPoint OffsetKm(const GeoPoint& origin, double north_km, double east_km) {
  const double dlat = north_km / kEarthRadiusKm / kDegToRad;
  const double dlon = east_km /
                      (kEarthRadiusKm * std::cos(origin.lat * kDegToRad)) /
                      kDegToRad;
  return {origin.lat + dlat, origin.lon + dlon};
}

void BoundingBox::Extend(const GeoPoint& p) {
  min_lat = std::min(min_lat, p.lat);
  max_lat = std::max(max_lat, p.lat);
  min_lon = std::min(min_lon, p.lon);
  max_lon = std::max(max_lon, p.lon);
}

bool BoundingBox::Contains(const GeoPoint& p) const {
  return p.lat >= min_lat && p.lat <= max_lat && p.lon >= min_lon &&
         p.lon <= max_lon;
}

std::string ToString(const GeoPoint& p) {
  return StrFormat("(%.5f, %.5f)", p.lat, p.lon);
}

}  // namespace stisan::geo
