#include "geo/candidate_gen.h"

#include <algorithm>

#include "util/check.h"

namespace stisan::geo {

CandidateGenerator::CandidateGenerator(const SpatialGridIndex& index,
                                       CandidatePoolOptions options)
    : index_(index), options_(options) {
  STISAN_CHECK(options_.pool_size > 0 || options_.radius_km > 0.0);
}

void CandidateGenerator::Generate(
    const GeoPoint& query, const std::function<bool(int64_t)>& accept,
    SpatialGridIndex::QueryScratch* scratch,
    std::vector<int64_t>* out) const {
  if (options_.radius_km > 0.0) {
    index_.WithinRadiusInto(query, options_.radius_km, out);
    if (accept) {
      out->erase(std::remove_if(out->begin(), out->end(),
                                [&accept](int64_t id) { return !accept(id); }),
                 out->end());
    }
    return;
  }
  index_.KNearestInto(query, options_.pool_size, accept, scratch, out);
}

void CandidateGenerator::GenerateBatch(
    const std::vector<GeoPoint>& queries, const BatchAcceptFn& accept,
    ThreadPool* pool, std::vector<std::vector<int64_t>>* pools) const {
  const int64_t n = static_cast<int64_t>(queries.size());
  pools->resize(static_cast<size_t>(n));
  if (n == 0) return;
  const int64_t workers =
      pool == nullptr ? 1
                      : std::clamp<int64_t>(pool->num_threads(), 1, n);
  while (static_cast<int64_t>(scratch_.size()) < workers) {
    scratch_.push_back(std::make_unique<SpatialGridIndex::QueryScratch>());
  }
  // Contiguous ranges, one scratch each; every pool slot is written by
  // exactly one worker, so the output is thread-count independent. The
  // per-query accept closure captures (accept*, i) only — small enough for
  // std::function's inline storage, so no per-query heap traffic.
  const int64_t chunk = (n + workers - 1) / workers;
  auto run_range = [this, &queries, &accept, pools](int64_t slot,
                                                    int64_t begin,
                                                    int64_t end) {
    SpatialGridIndex::QueryScratch* scratch =
        scratch_[static_cast<size_t>(slot)].get();
    for (int64_t i = begin; i < end; ++i) {
      std::function<bool(int64_t)> accept_i;
      if (accept) {
        const BatchAcceptFn* fn = &accept;
        accept_i = [fn, i](int64_t id) { return (*fn)(i, id); };
      }
      Generate(queries[static_cast<size_t>(i)], accept_i, scratch,
               &(*pools)[static_cast<size_t>(i)]);
    }
  };
  if (workers == 1) {
    run_range(0, 0, n);
    return;
  }
  for (int64_t slot = 0; slot < workers; ++slot) {
    const int64_t begin = slot * chunk;
    const int64_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    pool->Submit([&run_range, slot, begin, end] {
      run_range(slot, begin, end);
    });
  }
  pool->Wait();
}

}  // namespace stisan::geo
