// Geographic primitives: GPS points, Haversine distance, bounding boxes.

#pragma once

#include <cstdint>
#include <string>

namespace stisan::geo {

/// Mean Earth radius in kilometres.
inline constexpr double kEarthRadiusKm = 6371.0088;

/// A WGS84 coordinate in degrees.
struct GeoPoint {
  double lat = 0.0;  // [-90, 90]
  double lon = 0.0;  // [-180, 180]

  bool operator==(const GeoPoint&) const = default;
};

/// Great-circle distance between two points, in kilometres (paper eq. 4).
double HaversineKm(const GeoPoint& a, const GeoPoint& b);

/// Returns a point displaced from `origin` by the given offsets (km) along
/// the north and east axes. Accurate for city-scale displacements.
GeoPoint OffsetKm(const GeoPoint& origin, double north_km, double east_km);

/// An axis-aligned lat/lon rectangle.
struct BoundingBox {
  double min_lat = 90.0;
  double max_lat = -90.0;
  double min_lon = 180.0;
  double max_lon = -180.0;

  void Extend(const GeoPoint& p);
  bool Contains(const GeoPoint& p) const;
  bool empty() const { return min_lat > max_lat; }
};

/// Formats a point as "(lat, lon)" with 5 decimals.
std::string ToString(const GeoPoint& p);

}  // namespace stisan::geo
