// Stage one of the two-stage full-catalog ranker (DESIGN.md §17): a
// geo-pruned candidate generator over the sparse SpatialGridIndex.
//
// For each query location it retrieves a candidate pool — the pool_size
// nearest accepted points (default), or every accepted point within
// radius_km — that stage two (eval::BatchScorer) then re-ranks. Batches of
// queries are partitioned into contiguous ranges across a caller-supplied
// thread pool (the evaluators pass the kernel backend's global pool); each
// range reuses one QueryScratch and the caller's output vectors, so the
// per-query hot path performs no allocations at steady state.
//
// Determinism: each pool is a pure function of (index, query, accept), and
// every output slot is written by exactly one worker, so results are
// identical at any thread count.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "geo/spatial_index.h"
#include "util/thread_pool.h"

namespace stisan::geo {

struct CandidatePoolOptions {
  /// k-nearest mode (the default): each pool holds the pool_size nearest
  /// accepted points, ascending by distance.
  int64_t pool_size = 500;
  /// > 0 switches to radius mode: each pool holds every accepted point
  /// within radius_km (unsorted, unbounded size).
  double radius_km = 0.0;
};

class CandidateGenerator {
 public:
  /// Per-query accept filter for the batched variant: (query index in the
  /// batch, point id) -> keep? nullptr accepts everything.
  using BatchAcceptFn = std::function<bool(int64_t, int64_t)>;

  /// The index must outlive the generator.
  CandidateGenerator(const SpatialGridIndex& index,
                     CandidatePoolOptions options);

  /// Fills `out` with the pool for one query. `scratch` (and `out`) are
  /// caller-owned and reused across calls — the allocation-free path.
  void Generate(const GeoPoint& query,
                const std::function<bool(int64_t)>& accept,
                SpatialGridIndex::QueryScratch* scratch,
                std::vector<int64_t>* out) const;

  /// Batched stage one: fills (*pools)[i] with the pool for queries[i],
  /// thread-pooled over contiguous query ranges of `pool` (pass
  /// kernels::GlobalPool(); nullptr runs serially). `pools` is resized to
  /// the batch; existing vector capacity is reused. Not reentrant:
  /// concurrent GenerateBatch calls on the same generator must be
  /// externally serialised (the per-range scratch buffers are shared
  /// state).
  void GenerateBatch(const std::vector<GeoPoint>& queries,
                     const BatchAcceptFn& accept, ThreadPool* pool,
                     std::vector<std::vector<int64_t>>* pools) const;

  const SpatialGridIndex& index() const { return index_; }
  const CandidatePoolOptions& options() const { return options_; }

 private:
  const SpatialGridIndex& index_;
  CandidatePoolOptions options_;
  /// One scratch per worker range, grown lazily and reused across batches.
  mutable std::vector<std::unique_ptr<SpatialGridIndex::QueryScratch>>
      scratch_;
};

}  // namespace stisan::geo
