// Evaluation harness implementing the paper's protocol (§IV-C): for each
// test instance, rank the target POI against its 100 nearest previously
// unvisited POIs and accumulate HR@k / NDCG@k.
//
// The pipeline is batched and parallel: candidate lists are generated
// concurrently on the kernel thread pool and instances are streamed through
// a BatchScorer in fixed-size batches. Metrics are accumulated in instance
// order, so the result is bit-identical to a sequential evaluation at any
// thread count and batch size.

#pragma once

#include <functional>
#include <vector>

#include "data/types.h"
#include "eval/batch_scorer.h"
#include "eval/metrics.h"
#include "geo/spatial_index.h"

namespace stisan::eval {

/// Builds candidate lists: target first, then the num_negatives nearest
/// previously-unvisited POIs around the target.
class CandidateGenerator {
 public:
  explicit CandidateGenerator(const data::Dataset& dataset);

  /// Returns [target, neg_1, ..., neg_m] with m <= num_negatives (fewer on
  /// tiny POI sets). Negatives exclude the target and every POI in
  /// instance.visited. Pure and thread-safe: safe to call concurrently.
  std::vector<int64_t> Candidates(const data::EvalInstance& instance,
                                  int64_t num_negatives) const;

  const geo::SpatialGridIndex& index() const { return index_; }

 private:
  const data::Dataset& dataset_;
  geo::SpatialGridIndex index_;  // over POIs 1..P at index id poi-1
};

struct EvalOptions {
  int64_t num_negatives = 100;
  std::vector<int64_t> cutoffs = {5, 10};
  /// Instances scored per BatchScorer call (>= 1). Does not affect results.
  int64_t batch_size = 32;
};

/// A scoring function: given a test instance and its candidate list,
/// returns one score per candidate (higher = more likely next POI).
using Scorer = std::function<std::vector<float>(
    const data::EvalInstance&, const std::vector<int64_t>&)>;

/// Runs the full protocol through the batched pipeline and returns the
/// accumulated metrics (in test order).
MetricAccumulator Evaluate(BatchScorer& scorer,
                           const std::vector<data::EvalInstance>& test,
                           const CandidateGenerator& candidates,
                           const EvalOptions& options = {});

/// Single-instance scorer convenience: wraps `scorer` in a per-instance
/// BatchScorer adapter and runs the same pipeline. Results are identical.
MetricAccumulator Evaluate(const Scorer& scorer,
                           const std::vector<data::EvalInstance>& test,
                           const CandidateGenerator& candidates,
                           const EvalOptions& options = {});

}  // namespace stisan::eval
