// Evaluation harness implementing the paper's protocol (§IV-C): for each
// test instance, rank the target POI against its 100 nearest previously
// unvisited POIs and accumulate HR@k / NDCG@k.

#pragma once

#include <functional>
#include <vector>

#include "data/types.h"
#include "eval/metrics.h"
#include "geo/spatial_index.h"

namespace stisan::eval {

/// Builds candidate lists: target first, then the num_negatives nearest
/// previously-unvisited POIs around the target.
class CandidateGenerator {
 public:
  explicit CandidateGenerator(const data::Dataset& dataset);

  /// Returns [target, neg_1, ..., neg_m] with m <= num_negatives (fewer on
  /// tiny POI sets). Negatives exclude the target and every POI in
  /// instance.visited.
  std::vector<int64_t> Candidates(const data::EvalInstance& instance,
                                  int64_t num_negatives) const;

  const geo::SpatialGridIndex& index() const { return index_; }

 private:
  const data::Dataset& dataset_;
  geo::SpatialGridIndex index_;  // over POIs 1..P at index id poi-1
};

struct EvalOptions {
  int64_t num_negatives = 100;
  std::vector<int64_t> cutoffs = {5, 10};
};

/// A scoring function: given a test instance and its candidate list,
/// returns one score per candidate (higher = more likely next POI).
using Scorer = std::function<std::vector<float>(
    const data::EvalInstance&, const std::vector<int64_t>&)>;

/// Runs the full protocol and returns the accumulated metrics.
MetricAccumulator Evaluate(const Scorer& scorer,
                           const std::vector<data::EvalInstance>& test,
                           const CandidateGenerator& candidates,
                           const EvalOptions& options = {});

}  // namespace stisan::eval
