// Ranking metrics: Hit Rate and NDCG at cutoff k (paper §IV-C).

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/rng.h"

namespace stisan::eval {

/// Returns the rank (0-based) of the candidate at `target_index` when all
/// candidates are sorted by descending score. Ties are broken
/// pessimistically: candidates with equal score rank ahead of the target,
/// so constant scorers cannot look artificially good. NaN candidate scores
/// are treated as -inf (they never outrank the target); a non-finite target
/// score is a scorer bug and hard-fails via STISAN_CHECK — without the
/// check a NaN target would compare false against everything and claim a
/// spurious perfect rank 0.
int64_t RankOfTarget(const std::vector<float>& scores, int64_t target_index);

/// HR@k for a single instance: 1 if the target ranks inside the top k.
double HitRateAtK(int64_t rank, int64_t k);

/// NDCG@k for a single instance with one relevant item:
/// 1/log2(rank + 2) if rank < k else 0 (the ideal DCG is 1).
double NdcgAtK(int64_t rank, int64_t k);

/// Reciprocal rank for a single instance: 1 / (rank + 1).
double ReciprocalRank(int64_t rank);

/// Accumulates per-instance metrics and reports means.
class MetricAccumulator {
 public:
  explicit MetricAccumulator(std::vector<int64_t> cutoffs = {5, 10});

  /// Adds one evaluation instance given the target's rank.
  void Add(int64_t rank);

  int64_t count() const { return count_; }

  /// Mean metric value, keyed "HR@5", "NDCG@10", ...
  std::map<std::string, double> Means() const;

  /// Convenience accessors.
  double HitRate(int64_t k) const;
  double Ndcg(int64_t k) const;
  double MeanReciprocalRank() const;

  /// Per-instance target ranks in Add() order (for bootstrap analyses).
  const std::vector<int64_t>& ranks() const { return ranks_; }

  /// Merges another accumulator (same cutoffs) into this one by replaying
  /// its ranks in order. Merging shards in instance order therefore yields
  /// a state bit-identical to one sequential accumulation, regardless of
  /// how the instances were partitioned.
  void Merge(const MetricAccumulator& other);

 private:
  std::vector<int64_t> cutoffs_;
  std::vector<double> hr_sums_;
  std::vector<double> ndcg_sums_;
  double rr_sum_ = 0.0;
  int64_t count_ = 0;
  std::vector<int64_t> ranks_;
};

/// A two-sided bootstrap confidence interval.
struct ConfidenceInterval {
  double lo = 0.0;
  double hi = 0.0;
};

/// Index of the nearest-rank quantile q in a sorted sample of size n:
/// round(q * (n - 1)), clamped to [0, n - 1]. Rounding (rather than
/// truncating) keeps the estimator unbiased — truncation would drag both CI
/// endpoints toward the low tail.
size_t QuantileNearestRankIndex(size_t n, double q);

/// Percentile-bootstrap CI of HR@k over per-instance ranks. Endpoints are
/// nearest-rank quantiles of the sorted resample statistics.
ConfidenceInterval BootstrapHitRateCi(const std::vector<int64_t>& ranks,
                                      int64_t k, double confidence, Rng& rng,
                                      int64_t resamples = 1000);

/// Paired bootstrap test for "model A beats model B on HR@k": returns the
/// fraction of resamples where A's HR@k does NOT exceed B's (a one-sided
/// p-value style score; small = A reliably better). Rank vectors must come
/// from the same instances in the same order.
double PairedBootstrapPValue(const std::vector<int64_t>& ranks_a,
                             const std::vector<int64_t>& ranks_b, int64_t k,
                             Rng& rng, int64_t resamples = 2000);

}  // namespace stisan::eval
