// Full (unsampled) ranking evaluation.
//
// The paper follows GeoSAN's sampled protocol — the target is ranked
// against its 100 nearest unvisited POIs — which Krichene & Rendle (KDD
// 2020, the paper's ref [40]) show can distort model comparisons. This
// module provides the unsampled alternative: the target is ranked against
// EVERY previously-unvisited POI. It is O(P) score evaluations per
// instance, so use it on the smaller presets or with `max_instances`; for
// large catalogs, PrunedRankingEvaluate trades exactness for a geo-pruned
// candidate pool (DESIGN.md §17).

#pragma once

#include <cstdint>
#include <vector>

#include "data/types.h"
#include "eval/evaluator.h"

namespace stisan::eval {

struct FullRankingOptions {
  std::vector<int64_t> cutoffs = {5, 10};
  /// Cap on evaluated instances (0 = all) to bound the O(P) cost.
  int64_t max_instances = 0;
  /// Score candidates in chunks of this size, >= 1 (memory bound for the
  /// model's candidate-embedding pass). chunk_size = 1 scores one candidate
  /// per call — slow but valid.
  int64_t chunk_size = 512;
  /// Instances streamed per scorer batch (BatchScorer overload). Does not
  /// affect results.
  int64_t batch_size = 32;
  /// > 0: also record each instance's top-k POIs — by (score desc, poi
  /// asc), over the target plus every candidate — into *top_k_out (cleared
  /// first, test order). Feeds the exact-vs-pruned recall@k comparison.
  int64_t track_top_k = 0;
  std::vector<std::vector<int64_t>>* top_k_out = nullptr;
};

/// Ranks each instance's target against all previously-unvisited POIs,
/// batching instances through the scorer.
MetricAccumulator FullRankingEvaluate(
    BatchScorer& scorer, const std::vector<data::EvalInstance>& test,
    const data::Dataset& dataset, const FullRankingOptions& options = {});

/// Single-instance scorer convenience; results are identical.
MetricAccumulator FullRankingEvaluate(
    const Scorer& scorer, const std::vector<data::EvalInstance>& test,
    const data::Dataset& dataset, const FullRankingOptions& options = {});

}  // namespace stisan::eval
