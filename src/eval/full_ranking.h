// Full (unsampled) ranking evaluation.
//
// The paper follows GeoSAN's sampled protocol — the target is ranked
// against its 100 nearest unvisited POIs — which Krichene & Rendle (KDD
// 2020, the paper's ref [40]) show can distort model comparisons. This
// module provides the unsampled alternative: the target is ranked against
// EVERY previously-unvisited POI. It is O(P) score evaluations per
// instance, so use it on the smaller presets or with `max_instances`.

#pragma once

#include <cstdint>

#include "data/types.h"
#include "eval/evaluator.h"

namespace stisan::eval {

struct FullRankingOptions {
  std::vector<int64_t> cutoffs = {5, 10};
  /// Cap on evaluated instances (0 = all) to bound the O(P) cost.
  int64_t max_instances = 0;
  /// Score candidates in chunks of this size (memory bound for the model's
  /// candidate-embedding pass).
  int64_t chunk_size = 512;
};

/// Ranks each instance's target against all previously-unvisited POIs.
MetricAccumulator FullRankingEvaluate(
    const Scorer& scorer, const std::vector<data::EvalInstance>& test,
    const data::Dataset& dataset, const FullRankingOptions& options = {});

}  // namespace stisan::eval
