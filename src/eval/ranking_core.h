// Shared stage-two streaming core for the catalog ranking evaluators
// (eval::FullRankingEvaluate and eval::PrunedRankingEvaluate; DESIGN.md
// §17). Both rank a target against a per-instance candidate stream that is
// too large to score in one call: the target is scored first, then the
// stream is fed through the BatchScorer in bounded chunks while counting
// candidates that score >= the target (pessimistic ties, matching
// RankOfTarget). Keeping the counting loop in one place guarantees the two
// evaluators agree bit-for-bit whenever they see the same candidates.

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "data/types.h"
#include "eval/batch_scorer.h"
#include "eval/evaluator.h"

namespace stisan::eval::internal {

/// Fills `chunk` (cleared by the caller) with the next candidates for batch
/// item `item`, up to the evaluator's chunk size. Leaving `chunk` empty
/// marks the item's stream as exhausted.
using ChunkSupplier =
    std::function<void(int64_t item, std::vector<int64_t>* chunk)>;

struct StreamRankOptions {
  /// > 0: also collect each item's top-k POIs by (score desc, poi asc) over
  /// the target plus every streamed candidate.
  int64_t track_top_k = 0;
  /// Optional per-item flags (size = batch): items flagged 0 exclude the
  /// target from top-k tracking — used by the pruned evaluator when the
  /// stage-one pool missed the target, so the reported top-k reflects what
  /// the two-stage ranker would actually return. Ranks are unaffected.
  const std::vector<uint8_t>* target_in_candidates = nullptr;
};

struct StreamRankResult {
  /// ranks[i] = number of streamed candidates scoring >= the target score.
  std::vector<int64_t> ranks;
  /// Per-item top-k POI ids (best first). Empty unless track_top_k > 0.
  std::vector<std::vector<int64_t>> top_k;
};

/// Scores each item's target, then drains its candidate chunks through the
/// scorer. Items are sub-batched per round so one exhausted stream never
/// stalls the rest of the batch.
StreamRankResult StreamRankBatch(
    BatchScorer& scorer,
    const std::vector<const data::EvalInstance*>& batch,
    const ChunkSupplier& next_chunk, const StreamRankOptions& options);

/// Adapts a single-instance Scorer to the batched interface (scores are
/// identical; candidates are just scored one instance at a time).
class SingleScorerAdapter : public BatchScorer {
 public:
  explicit SingleScorerAdapter(const Scorer& scorer) : scorer_(scorer) {}

  std::vector<std::vector<float>> ScoreBatch(
      const std::vector<const data::EvalInstance*>& instances,
      const std::vector<std::vector<int64_t>>& candidates) override;

 private:
  const Scorer& scorer_;
};

}  // namespace stisan::eval::internal
