#include "eval/ranking_core.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/check.h"

namespace stisan::eval::internal {
namespace {

// Top-k ordering: higher score first, ties by ascending POI id. Used as the
// heap comparator ("less" = better), which keeps the WORST retained entry
// at the heap front where it can be evicted in O(log k).
using TopKEntry = std::pair<float, int64_t>;  // (score, poi)

bool Better(const TopKEntry& a, const TopKEntry& b) {
  if (a.first != b.first) return a.first > b.first;
  return a.second < b.second;
}

void PushTopK(std::vector<TopKEntry>* heap, int64_t k, float score,
              int64_t poi) {
  if (!std::isfinite(score)) return;  // NaN/-inf never make the top-k
  const TopKEntry entry{score, poi};
  if (static_cast<int64_t>(heap->size()) < k) {
    heap->push_back(entry);
    std::push_heap(heap->begin(), heap->end(), Better);
  } else if (Better(entry, heap->front())) {
    std::pop_heap(heap->begin(), heap->end(), Better);
    heap->back() = entry;
    std::push_heap(heap->begin(), heap->end(), Better);
  }
}

}  // namespace

StreamRankResult StreamRankBatch(
    BatchScorer& scorer,
    const std::vector<const data::EvalInstance*>& batch,
    const ChunkSupplier& next_chunk, const StreamRankOptions& options) {
  const int64_t b = static_cast<int64_t>(batch.size());
  StreamRankResult result;
  result.ranks.assign(static_cast<size_t>(b), 0);
  if (b == 0) return result;

  // Target scores first: the comparison baseline for every chunk.
  std::vector<std::vector<int64_t>> target_cand(static_cast<size_t>(b));
  for (int64_t i = 0; i < b; ++i) {
    target_cand[static_cast<size_t>(i)] = {batch[static_cast<size_t>(i)]
                                               ->target};
  }
  const auto target_scores = scorer.ScoreBatch(batch, target_cand);
  STISAN_CHECK_EQ(static_cast<int64_t>(target_scores.size()), b);
  std::vector<float> target_score(static_cast<size_t>(b));
  for (int64_t i = 0; i < b; ++i) {
    STISAN_CHECK_EQ(target_scores[static_cast<size_t>(i)].size(), 1u);
    target_score[static_cast<size_t>(i)] =
        target_scores[static_cast<size_t>(i)][0];
    // A non-finite target score can never be outranked and would silently
    // claim rank 0 — fail loudly instead (same contract as RankOfTarget).
    STISAN_CHECK(std::isfinite(target_score[static_cast<size_t>(i)]));
  }

  const int64_t k = options.track_top_k;
  std::vector<std::vector<TopKEntry>> heaps;
  if (k > 0) {
    heaps.resize(static_cast<size_t>(b));
    for (int64_t i = 0; i < b; ++i) {
      const bool seed_target =
          options.target_in_candidates == nullptr ||
          (*options.target_in_candidates)[static_cast<size_t>(i)] != 0;
      if (seed_target) {
        PushTopK(&heaps[static_cast<size_t>(i)], k,
                 target_score[static_cast<size_t>(i)],
                 batch[static_cast<size_t>(i)]->target);
      }
    }
  }

  // Drain the streams round by round; items whose supplier comes back empty
  // drop out, so late rounds score ever-smaller sub-batches.
  std::vector<int64_t> active(static_cast<size_t>(b));
  for (int64_t i = 0; i < b; ++i) active[static_cast<size_t>(i)] = i;
  std::vector<int64_t> chunk;
  while (!active.empty()) {
    std::vector<const data::EvalInstance*> sub;
    std::vector<std::vector<int64_t>> sub_chunks;
    std::vector<int64_t> sub_items;
    for (int64_t item : active) {
      chunk.clear();
      next_chunk(item, &chunk);
      if (chunk.empty()) continue;
      sub.push_back(batch[static_cast<size_t>(item)]);
      sub_chunks.push_back(chunk);
      sub_items.push_back(item);
    }
    if (sub.empty()) break;
    const auto scores = scorer.ScoreBatch(sub, sub_chunks);
    STISAN_CHECK_EQ(scores.size(), sub.size());
    for (size_t s = 0; s < sub.size(); ++s) {
      STISAN_CHECK_EQ(scores[s].size(), sub_chunks[s].size());
      const int64_t item = sub_items[s];
      for (size_t j = 0; j < scores[s].size(); ++j) {
        if (scores[s][j] >= target_score[static_cast<size_t>(item)]) {
          ++result.ranks[static_cast<size_t>(item)];
        }
        if (k > 0) {
          PushTopK(&heaps[static_cast<size_t>(item)], k, scores[s][j],
                   sub_chunks[s][j]);
        }
      }
    }
    active = std::move(sub_items);
  }

  if (k > 0) {
    result.top_k.resize(static_cast<size_t>(b));
    for (int64_t i = 0; i < b; ++i) {
      auto& heap = heaps[static_cast<size_t>(i)];
      std::sort_heap(heap.begin(), heap.end(), Better);  // best first
      auto& out = result.top_k[static_cast<size_t>(i)];
      out.reserve(heap.size());
      for (const auto& [score, poi] : heap) out.push_back(poi);
    }
  }
  return result;
}

std::vector<std::vector<float>> SingleScorerAdapter::ScoreBatch(
    const std::vector<const data::EvalInstance*>& instances,
    const std::vector<std::vector<int64_t>>& candidates) {
  std::vector<std::vector<float>> out(instances.size());
  for (size_t i = 0; i < instances.size(); ++i) {
    out[i] = scorer_(*instances[i], candidates[i]);
  }
  return out;
}

}  // namespace stisan::eval::internal
