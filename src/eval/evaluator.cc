#include "eval/evaluator.h"

#include <unordered_set>

#include "util/check.h"

namespace stisan::eval {
namespace {

std::vector<geo::GeoPoint> RealPoiCoords(const data::Dataset& dataset) {
  // Index id = poi - 1 (skips the padding POI 0).
  return {dataset.poi_coords.begin() + 1, dataset.poi_coords.end()};
}

}  // namespace

CandidateGenerator::CandidateGenerator(const data::Dataset& dataset)
    : dataset_(dataset), index_(RealPoiCoords(dataset)) {}

std::vector<int64_t> CandidateGenerator::Candidates(
    const data::EvalInstance& instance, int64_t num_negatives) const {
  std::unordered_set<int64_t> excluded(instance.visited.begin(),
                                       instance.visited.end());
  excluded.insert(instance.target);
  const geo::GeoPoint& target_loc = dataset_.poi_location(instance.target);
  auto nearest = index_.KNearest(
      target_loc, num_negatives,
      [&excluded](int64_t id) { return !excluded.contains(id + 1); });
  std::vector<int64_t> out;
  out.reserve(nearest.size() + 1);
  out.push_back(instance.target);
  for (int64_t id : nearest) out.push_back(id + 1);
  return out;
}

MetricAccumulator Evaluate(const Scorer& scorer,
                           const std::vector<data::EvalInstance>& test,
                           const CandidateGenerator& candidates,
                           const EvalOptions& options) {
  MetricAccumulator acc(options.cutoffs);
  for (const auto& instance : test) {
    const auto cand = candidates.Candidates(instance, options.num_negatives);
    const auto scores = scorer(instance, cand);
    STISAN_CHECK_EQ(scores.size(), cand.size());
    acc.Add(RankOfTarget(scores, /*target_index=*/0));
  }
  return acc;
}

}  // namespace stisan::eval
