#include "eval/evaluator.h"

#include <algorithm>
#include <unordered_set>

#include "obs/metrics.h"
#include "plan/plan.h"
#include "tensor/arena.h"
#include "tensor/kernels.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace stisan::eval {
namespace {

std::vector<geo::GeoPoint> RealPoiCoords(const data::Dataset& dataset) {
  // Index id = poi - 1 (skips the padding POI 0).
  return {dataset.poi_coords.begin() + 1, dataset.poi_coords.end()};
}

/// Adapts a single-instance Scorer to the batched interface.
class ScorerAdapter : public BatchScorer {
 public:
  explicit ScorerAdapter(const Scorer& scorer) : scorer_(scorer) {}

  std::vector<std::vector<float>> ScoreBatch(
      const std::vector<const data::EvalInstance*>& instances,
      const std::vector<std::vector<int64_t>>& candidates) override {
    std::vector<std::vector<float>> out(instances.size());
    for (size_t i = 0; i < instances.size(); ++i) {
      out[i] = scorer_(*instances[i], candidates[i]);
    }
    return out;
  }

 private:
  const Scorer& scorer_;
};

}  // namespace

CandidateGenerator::CandidateGenerator(const data::Dataset& dataset)
    : dataset_(dataset), index_(RealPoiCoords(dataset)) {}

std::vector<int64_t> CandidateGenerator::Candidates(
    const data::EvalInstance& instance, int64_t num_negatives) const {
  std::unordered_set<int64_t> excluded(instance.visited.begin(),
                                       instance.visited.end());
  excluded.insert(instance.target);
  const geo::GeoPoint& target_loc = dataset_.poi_location(instance.target);
  auto nearest = index_.KNearest(
      target_loc, num_negatives,
      [&excluded](int64_t id) { return !excluded.contains(id + 1); });
  std::vector<int64_t> out;
  out.reserve(nearest.size() + 1);
  out.push_back(instance.target);
  for (int64_t id : nearest) out.push_back(id + 1);
  return out;
}

MetricAccumulator Evaluate(BatchScorer& scorer,
                           const std::vector<data::EvalInstance>& test,
                           const CandidateGenerator& candidates,
                           const EvalOptions& options) {
  OBS_SCOPED_TIMER("eval/run");
  MetricAccumulator acc(options.cutoffs);
  // Batch k+1 reuses the activation buffers batch k freed (STISAN_ARENA=1).
  arena::Scope arena_scope;
  // Fixed-shape eval batches replay the first batch's captured tape (shares
  // an enclosing plan scope — e.g. the trainer's — when one is active).
  plan::Scope plan_scope;
  const int64_t total = static_cast<int64_t>(test.size());
  const int64_t batch_size = std::max<int64_t>(1, options.batch_size);
  ThreadPool& pool = kernels::GlobalPool();
  static obs::Counter& instances = obs::GetCounter("eval/instances");
  static obs::Counter& batches = obs::GetCounter("eval/batches");

  for (int64_t begin = 0; begin < total; begin += batch_size) {
    const int64_t size = std::min(batch_size, total - begin);
    instances.Inc(static_cast<uint64_t>(size));
    batches.Inc();

    // Candidate generation is pure per instance, so each worker fills its
    // own slot and the scorer sees the same lists at any thread count.
    std::vector<std::vector<int64_t>> cand(static_cast<size_t>(size));
    {
      OBS_SCOPED_TIMER("eval/candidate_gen");
      ParallelFor(pool, size, [&](int64_t i) {
        cand[static_cast<size_t>(i)] =
            candidates.Candidates(test[static_cast<size_t>(begin + i)],
                                  options.num_negatives);
      });
    }

    std::vector<const data::EvalInstance*> batch(static_cast<size_t>(size));
    for (int64_t i = 0; i < size; ++i) {
      batch[static_cast<size_t>(i)] = &test[static_cast<size_t>(begin + i)];
    }
    std::vector<std::vector<float>> scores;
    {
      OBS_SCOPED_TIMER("eval/score_batch");
      plan::StepScope plan_step;  // one scored batch = one plan step
      scores = scorer.ScoreBatch(batch, cand);
    }
    STISAN_CHECK_EQ(static_cast<int64_t>(scores.size()), size);

    // Per-shard accumulation in instance order; Merge replays ranks, so the
    // final accumulator state is independent of the batch partitioning.
    MetricAccumulator shard(options.cutoffs);
    for (int64_t i = 0; i < size; ++i) {
      STISAN_CHECK_EQ(scores[static_cast<size_t>(i)].size(),
                      cand[static_cast<size_t>(i)].size());
      shard.Add(RankOfTarget(scores[static_cast<size_t>(i)],
                             /*target_index=*/0));
    }
    acc.Merge(shard);
  }
  return acc;
}

MetricAccumulator Evaluate(const Scorer& scorer,
                           const std::vector<data::EvalInstance>& test,
                           const CandidateGenerator& candidates,
                           const EvalOptions& options) {
  ScorerAdapter adapter(scorer);
  return Evaluate(adapter, test, candidates, options);
}

}  // namespace stisan::eval
