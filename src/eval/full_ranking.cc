#include "eval/full_ranking.h"

#include <algorithm>
#include <unordered_set>

#include "eval/ranking_core.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace stisan::eval {

MetricAccumulator FullRankingEvaluate(
    BatchScorer& scorer, const std::vector<data::EvalInstance>& test,
    const data::Dataset& dataset, const FullRankingOptions& options) {
  STISAN_CHECK_GE(options.chunk_size, 1);
  OBS_SCOPED_TIMER("eval/full_ranking");
  static obs::Counter& instances_counter =
      obs::GetCounter("ranking/full_instances");
  MetricAccumulator acc(options.cutoffs);
  if (options.top_k_out != nullptr) options.top_k_out->clear();

  int64_t total = static_cast<int64_t>(test.size());
  if (options.max_instances > 0) {
    total = std::min(total, options.max_instances);
  }
  const int64_t batch_size = std::max<int64_t>(1, options.batch_size);

  // Per-instance enumeration state: the next POI id to consider plus the
  // user's visited set (minus the target, which is scored separately).
  struct Cursor {
    std::unordered_set<int64_t> visited;
    int64_t next_poi = 1;
  };

  for (int64_t begin = 0; begin < total; begin += batch_size) {
    const int64_t size = std::min(batch_size, total - begin);
    instances_counter.Inc(static_cast<uint64_t>(size));

    std::vector<const data::EvalInstance*> batch(static_cast<size_t>(size));
    std::vector<Cursor> cursors(static_cast<size_t>(size));
    for (int64_t i = 0; i < size; ++i) {
      const auto& instance = test[static_cast<size_t>(begin + i)];
      batch[static_cast<size_t>(i)] = &instance;
      auto& cursor = cursors[static_cast<size_t>(i)];
      cursor.visited.insert(instance.visited.begin(),
                            instance.visited.end());
      cursor.visited.erase(instance.target);
    }

    const auto next_chunk = [&](int64_t item, std::vector<int64_t>* chunk) {
      auto& cursor = cursors[static_cast<size_t>(item)];
      const auto& instance = *batch[static_cast<size_t>(item)];
      while (cursor.next_poi <= dataset.num_pois() &&
             static_cast<int64_t>(chunk->size()) < options.chunk_size) {
        const int64_t poi = cursor.next_poi++;
        if (poi == instance.target || cursor.visited.contains(poi)) continue;
        chunk->push_back(poi);
      }
    };

    internal::StreamRankOptions stream_options;
    stream_options.track_top_k = options.track_top_k;
    const auto result = internal::StreamRankBatch(scorer, batch, next_chunk,
                                                  stream_options);

    // Shard-then-Merge keeps the accumulator state identical to a
    // sequential evaluation regardless of the batch partitioning.
    MetricAccumulator shard(options.cutoffs);
    for (int64_t i = 0; i < size; ++i) {
      shard.Add(result.ranks[static_cast<size_t>(i)]);
    }
    acc.Merge(shard);
    if (options.top_k_out != nullptr && options.track_top_k > 0) {
      options.top_k_out->insert(options.top_k_out->end(),
                                result.top_k.begin(), result.top_k.end());
    }
  }
  return acc;
}

MetricAccumulator FullRankingEvaluate(
    const Scorer& scorer, const std::vector<data::EvalInstance>& test,
    const data::Dataset& dataset, const FullRankingOptions& options) {
  internal::SingleScorerAdapter adapter(scorer);
  return FullRankingEvaluate(adapter, test, dataset, options);
}

}  // namespace stisan::eval
