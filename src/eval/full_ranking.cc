#include "eval/full_ranking.h"

#include <unordered_set>

#include "util/check.h"

namespace stisan::eval {

MetricAccumulator FullRankingEvaluate(
    const Scorer& scorer, const std::vector<data::EvalInstance>& test,
    const data::Dataset& dataset, const FullRankingOptions& options) {
  STISAN_CHECK_GT(options.chunk_size, 1);
  MetricAccumulator acc(options.cutoffs);
  int64_t done = 0;
  for (const auto& instance : test) {
    if (options.max_instances > 0 && done >= options.max_instances) break;
    ++done;

    std::unordered_set<int64_t> visited(instance.visited.begin(),
                                        instance.visited.end());
    visited.erase(instance.target);

    // Score the target first, then stream the remaining candidates in
    // chunks, counting how many score >= the target (pessimistic ties,
    // matching RankOfTarget).
    const float target_score =
        scorer(instance, {instance.target}).at(0);
    int64_t rank = 0;
    std::vector<int64_t> chunk;
    chunk.reserve(static_cast<size_t>(options.chunk_size));
    auto flush = [&] {
      if (chunk.empty()) return;
      const auto scores = scorer(instance, chunk);
      STISAN_CHECK_EQ(scores.size(), chunk.size());
      for (float s : scores) {
        if (s >= target_score) ++rank;
      }
      chunk.clear();
    };
    for (int64_t poi = 1; poi <= dataset.num_pois(); ++poi) {
      if (poi == instance.target || visited.contains(poi)) continue;
      chunk.push_back(poi);
      if (static_cast<int64_t>(chunk.size()) == options.chunk_size) flush();
    }
    flush();
    acc.Add(rank);
  }
  return acc;
}

}  // namespace stisan::eval
