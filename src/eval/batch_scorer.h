// Batched scoring interface for the evaluation pipeline.
//
// A BatchScorer scores a whole batch of evaluation instances against their
// candidate lists in one call, letting models run a single padded forward
// pass (one op graph per layer instead of one per instance). The evaluator
// streams fixed-size batches through it; see eval::Evaluate.
//
// The interface is header-only so implementers (src/models, src/core) can
// inherit it without adding a library dependency on stisan_eval.

#pragma once

#include <vector>

#include "data/types.h"

namespace stisan::eval {

/// Scores batches of instances. Implementations must be deterministic: the
/// scores for an instance may not depend on the other instances in its
/// batch, so any batch size yields the same per-instance scores.
class BatchScorer {
 public:
  virtual ~BatchScorer() = default;

  /// Scores candidates[b] for instances[b]. Returns one score vector per
  /// instance, each the same length as its candidate list (higher = more
  /// likely next POI). The padded forward is taken when all instances in
  /// the batch share a sequence length (the evaluator always batches that
  /// way); mixed-length batches — as produced by the serving fallback
  /// path — degrade gracefully to per-instance scoring. Candidate lists
  /// may differ in length either way.
  virtual std::vector<std::vector<float>> ScoreBatch(
      const std::vector<const data::EvalInstance*>& instances,
      const std::vector<std::vector<int64_t>>& candidates) = 0;
};

}  // namespace stisan::eval
