#include "eval/pruned_ranking.h"

#include <algorithm>
#include <unordered_set>

#include "eval/ranking_core.h"
#include "obs/metrics.h"
#include "tensor/kernels.h"
#include "util/check.h"

namespace stisan::eval {

geo::SpatialGridIndex BuildCatalogIndex(const data::Dataset& dataset,
                                        double cell_km) {
  // Index id = poi - 1 (skips the padding POI 0).
  return geo::SpatialGridIndex(
      {dataset.poi_coords.begin() + 1, dataset.poi_coords.end()}, cell_km);
}

PrunedRankingResult PrunedRankingEvaluate(
    BatchScorer& scorer, const std::vector<data::EvalInstance>& test,
    const data::Dataset& dataset, const geo::CandidateGenerator& candidates,
    const PrunedRankingOptions& options) {
  STISAN_CHECK_GE(options.chunk_size, 1);
  STISAN_CHECK_EQ(candidates.index().size(), dataset.num_pois());
  OBS_SCOPED_TIMER("eval/pruned_ranking");
  static obs::Counter& instances_counter =
      obs::GetCounter("ranking/pruned_instances");
  static obs::Counter& hits_counter = obs::GetCounter("ranking/pool_hits");
  static obs::Counter& misses_counter =
      obs::GetCounter("ranking/pool_misses");
  static obs::Histogram& pool_size_hist =
      obs::GetHistogram("ranking/pool_size", obs::CountBounds());

  PrunedRankingResult result{MetricAccumulator(options.cutoffs), {}, 0, 0,
                             0.0};
  if (options.top_k_out != nullptr) options.top_k_out->clear();

  int64_t total = static_cast<int64_t>(test.size());
  if (options.max_instances > 0) {
    total = std::min(total, options.max_instances);
  }
  result.target_in_pool.reserve(static_cast<size_t>(total));
  const int64_t batch_size = std::max<int64_t>(1, options.batch_size);
  ThreadPool& pool = kernels::GlobalPool();
  double pool_size_sum = 0.0;

  std::vector<geo::GeoPoint> queries;
  std::vector<std::vector<int64_t>> pools;
  for (int64_t begin = 0; begin < total; begin += batch_size) {
    const int64_t size = std::min(batch_size, total - begin);
    instances_counter.Inc(static_cast<uint64_t>(size));

    // Stage one: pool of unvisited POIs (plus the target, which stays
    // eligible even on a revisit) around each user's most recent check-in.
    std::vector<const data::EvalInstance*> batch(static_cast<size_t>(size));
    std::vector<std::unordered_set<int64_t>> visited(
        static_cast<size_t>(size));
    std::vector<uint8_t> has_query(static_cast<size_t>(size), 0);
    queries.assign(static_cast<size_t>(size), geo::GeoPoint{});
    for (int64_t i = 0; i < size; ++i) {
      const auto& instance = test[static_cast<size_t>(begin + i)];
      batch[static_cast<size_t>(i)] = &instance;
      visited[static_cast<size_t>(i)].insert(instance.visited.begin(),
                                             instance.visited.end());
      const int64_t last_poi =
          instance.poi.empty() ? data::kPaddingPoi : instance.poi.back();
      if (last_poi != data::kPaddingPoi) {
        has_query[static_cast<size_t>(i)] = 1;
        queries[static_cast<size_t>(i)] = dataset.poi_location(last_poi);
      }
    }
    const geo::CandidateGenerator::BatchAcceptFn accept =
        [&](int64_t i, int64_t id) {
          if (has_query[static_cast<size_t>(i)] == 0) return false;
          const int64_t poi = id + 1;
          return poi == batch[static_cast<size_t>(i)]->target ||
                 !visited[static_cast<size_t>(i)].contains(poi);
        };
    {
      OBS_SCOPED_TIMER("ranking/stage1");
      candidates.GenerateBatch(queries, accept, &pool, &pools);
    }

    // Pool bookkeeping: shift ids to POIs, pull the target out (it is
    // scored separately; leaving it in would tie against itself).
    std::vector<uint8_t> in_pool(static_cast<size_t>(size), 0);
    for (int64_t i = 0; i < size; ++i) {
      auto& p = pools[static_cast<size_t>(i)];
      pool_size_hist.Observe(static_cast<double>(p.size()));
      pool_size_sum += static_cast<double>(p.size());
      const int64_t target = batch[static_cast<size_t>(i)]->target;
      for (auto& id : p) id += 1;
      const auto it = std::remove(p.begin(), p.end(), target);
      in_pool[static_cast<size_t>(i)] = it != p.end() ? 1 : 0;
      p.erase(it, p.end());
      if (in_pool[static_cast<size_t>(i)] != 0) {
        hits_counter.Inc();
      } else {
        misses_counter.Inc();
      }
    }

    // Stage two: chunked re-rank of each pool against the target.
    std::vector<int64_t> cursor(static_cast<size_t>(size), 0);
    const auto next_chunk = [&](int64_t item, std::vector<int64_t>* chunk) {
      const auto& p = pools[static_cast<size_t>(item)];
      int64_t& at = cursor[static_cast<size_t>(item)];
      const int64_t end = std::min(
          static_cast<int64_t>(p.size()), at + options.chunk_size);
      chunk->insert(chunk->end(), p.begin() + at, p.begin() + end);
      at = end;
    };
    internal::StreamRankOptions stream_options;
    stream_options.track_top_k = options.track_top_k;
    stream_options.target_in_candidates = &in_pool;
    internal::StreamRankResult ranked;
    {
      OBS_SCOPED_TIMER("ranking/stage2");
      ranked = internal::StreamRankBatch(scorer, batch, next_chunk,
                                         stream_options);
    }

    MetricAccumulator shard(options.cutoffs);
    for (int64_t i = 0; i < size; ++i) {
      // A stage-one miss can never be recommended: score it as ranked
      // behind the whole catalog rather than trusting the in-pool count.
      const int64_t rank = in_pool[static_cast<size_t>(i)] != 0
                               ? ranked.ranks[static_cast<size_t>(i)]
                               : dataset.num_pois();
      shard.Add(rank);
      result.target_in_pool.push_back(in_pool[static_cast<size_t>(i)]);
      result.pool_hits += in_pool[static_cast<size_t>(i)] != 0 ? 1 : 0;
    }
    result.metrics.Merge(shard);
    result.instances += size;
    if (options.top_k_out != nullptr && options.track_top_k > 0) {
      options.top_k_out->insert(options.top_k_out->end(),
                                ranked.top_k.begin(), ranked.top_k.end());
    }
  }
  result.mean_pool_size =
      result.instances > 0
          ? pool_size_sum / static_cast<double>(result.instances)
          : 0.0;
  return result;
}

}  // namespace stisan::eval
