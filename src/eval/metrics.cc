#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/string_util.h"

namespace stisan::eval {

int64_t RankOfTarget(const std::vector<float>& scores, int64_t target_index) {
  STISAN_CHECK_GE(target_index, 0);
  STISAN_CHECK_LT(target_index, static_cast<int64_t>(scores.size()));
  const float target_score = scores[static_cast<size_t>(target_index)];
  // A NaN target would compare false against every candidate and report a
  // spurious perfect rank 0; fail loudly instead of inflating HR.
  STISAN_CHECK_MSG(std::isfinite(target_score),
                   "target score must be finite, got " << target_score);
  int64_t rank = 0;
  for (size_t i = 0; i < scores.size(); ++i) {
    if (static_cast<int64_t>(i) == target_index) continue;
    const float s = scores[i];
    if (std::isnan(s)) continue;  // NaN candidate ranks as -inf
    if (s >= target_score) ++rank;
  }
  return rank;
}

double HitRateAtK(int64_t rank, int64_t k) { return rank < k ? 1.0 : 0.0; }

double NdcgAtK(int64_t rank, int64_t k) {
  if (rank >= k) return 0.0;
  return 1.0 / std::log2(double(rank) + 2.0);
}

double ReciprocalRank(int64_t rank) { return 1.0 / double(rank + 1); }

MetricAccumulator::MetricAccumulator(std::vector<int64_t> cutoffs)
    : cutoffs_(std::move(cutoffs)),
      hr_sums_(cutoffs_.size(), 0.0),
      ndcg_sums_(cutoffs_.size(), 0.0) {}

void MetricAccumulator::Add(int64_t rank) {
  for (size_t i = 0; i < cutoffs_.size(); ++i) {
    hr_sums_[i] += HitRateAtK(rank, cutoffs_[i]);
    ndcg_sums_[i] += NdcgAtK(rank, cutoffs_[i]);
  }
  rr_sum_ += ReciprocalRank(rank);
  ranks_.push_back(rank);
  ++count_;
}

double MetricAccumulator::MeanReciprocalRank() const {
  return count_ > 0 ? rr_sum_ / double(count_) : 0.0;
}

void MetricAccumulator::Merge(const MetricAccumulator& other) {
  STISAN_CHECK(cutoffs_ == other.cutoffs_);
  // Replay the other side's ranks through Add rather than adding partial
  // sums: floating-point addition is not associative, so summing shard
  // subtotals would make the result depend on how instances were batched.
  // Replaying keeps the running sums in exact instance order — merging any
  // shard partitioning is bit-identical to one sequential accumulation.
  ranks_.reserve(ranks_.size() + other.ranks_.size());
  for (int64_t rank : other.ranks_) Add(rank);
}

std::map<std::string, double> MetricAccumulator::Means() const {
  std::map<std::string, double> out;
  for (size_t i = 0; i < cutoffs_.size(); ++i) {
    const double denom = count_ > 0 ? double(count_) : 1.0;
    out[StrFormat("HR@%lld", static_cast<long long>(cutoffs_[i]))] =
        hr_sums_[i] / denom;
    out[StrFormat("NDCG@%lld", static_cast<long long>(cutoffs_[i]))] =
        ndcg_sums_[i] / denom;
  }
  return out;
}

double MetricAccumulator::HitRate(int64_t k) const {
  for (size_t i = 0; i < cutoffs_.size(); ++i) {
    if (cutoffs_[i] == k)
      return count_ > 0 ? hr_sums_[i] / double(count_) : 0.0;
  }
  STISAN_CHECK_MSG(false, "cutoff not tracked: " << k);
  return 0.0;
}

double MetricAccumulator::Ndcg(int64_t k) const {
  for (size_t i = 0; i < cutoffs_.size(); ++i) {
    if (cutoffs_[i] == k)
      return count_ > 0 ? ndcg_sums_[i] / double(count_) : 0.0;
  }
  STISAN_CHECK_MSG(false, "cutoff not tracked: " << k);
  return 0.0;
}

namespace {

double HitRateOfResample(const std::vector<int64_t>& ranks,
                         const std::vector<size_t>& sample, int64_t k) {
  double hits = 0;
  for (size_t idx : sample) hits += HitRateAtK(ranks[idx], k);
  return hits / double(sample.size());
}

}  // namespace

size_t QuantileNearestRankIndex(size_t n, double q) {
  STISAN_CHECK_GT(n, 0u);
  // Truncating q*(n-1) would bias both endpoints low (e.g. q=0.975, n=21:
  // trunc(19.5) = 19 instead of 20); round to the nearest rank instead.
  const auto idx = static_cast<int64_t>(std::llround(q * double(n - 1)));
  return static_cast<size_t>(
      std::clamp<int64_t>(idx, 0, static_cast<int64_t>(n) - 1));
}

ConfidenceInterval BootstrapHitRateCi(const std::vector<int64_t>& ranks,
                                      int64_t k, double confidence, Rng& rng,
                                      int64_t resamples) {
  STISAN_CHECK(!ranks.empty());
  STISAN_CHECK_GT(confidence, 0.0);
  STISAN_CHECK_LT(confidence, 1.0);
  std::vector<double> stats(static_cast<size_t>(resamples));
  std::vector<size_t> sample(ranks.size());
  for (int64_t r = 0; r < resamples; ++r) {
    for (auto& idx : sample) {
      idx = static_cast<size_t>(
          rng.UniformInt(static_cast<uint64_t>(ranks.size())));
    }
    stats[static_cast<size_t>(r)] = HitRateOfResample(ranks, sample, k);
  }
  std::sort(stats.begin(), stats.end());
  const double alpha = (1.0 - confidence) / 2.0;
  const auto at = [&](double q) {
    return stats[QuantileNearestRankIndex(stats.size(), q)];
  };
  return {at(alpha), at(1.0 - alpha)};
}

double PairedBootstrapPValue(const std::vector<int64_t>& ranks_a,
                             const std::vector<int64_t>& ranks_b, int64_t k,
                             Rng& rng, int64_t resamples) {
  STISAN_CHECK_EQ(ranks_a.size(), ranks_b.size());
  STISAN_CHECK(!ranks_a.empty());
  int64_t not_better = 0;
  std::vector<size_t> sample(ranks_a.size());
  for (int64_t r = 0; r < resamples; ++r) {
    for (auto& idx : sample) {
      idx = static_cast<size_t>(
          rng.UniformInt(static_cast<uint64_t>(ranks_a.size())));
    }
    if (HitRateOfResample(ranks_a, sample, k) <=
        HitRateOfResample(ranks_b, sample, k)) {
      ++not_better;
    }
  }
  return double(not_better) / double(resamples);
}

}  // namespace stisan::eval
