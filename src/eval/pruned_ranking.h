// Two-stage full-catalog ranking evaluation (DESIGN.md §17).
//
// Stage one retrieves a geo-pruned candidate pool per instance — the
// pool_size unvisited POIs nearest the user's most recent check-in (or
// everything within a radius) via geo::CandidateGenerator over the sparse
// spatial index. Stage two re-ranks the pool with the model's BatchScorer,
// exactly like FullRankingEvaluate but over |pool| candidates instead of
// all P. Instances whose target is missed by stage one are scored as rank
// = P (beyond every cutoff), so reported metrics are honest lower bounds;
// the per-instance hit flags double as the pruning-recall proxy.
//
// Head-to-head with FullRankingEvaluate: when the target is in the pool,
// the pruned rank is <= the exact rank (the pool is a subset of the full
// candidate set), with equality whenever every candidate that outscores
// the target is also retrieved.

#pragma once

#include <cstdint>
#include <vector>

#include "data/types.h"
#include "eval/batch_scorer.h"
#include "eval/metrics.h"
#include "geo/candidate_gen.h"

namespace stisan::eval {

struct PrunedRankingOptions {
  std::vector<int64_t> cutoffs = {5, 10};
  /// Cap on evaluated instances (0 = all).
  int64_t max_instances = 0;
  /// Instances per stage-one batch / stage-two scorer batch.
  int64_t batch_size = 32;
  /// Pool candidates scored per chunk within an instance, >= 1.
  int64_t chunk_size = 512;
  /// > 0: record each instance's re-ranked top-k POIs into *top_k_out
  /// (cleared first, test order). Pool misses exclude the target — the
  /// list is what the two-stage ranker would actually return.
  int64_t track_top_k = 0;
  std::vector<std::vector<int64_t>>* top_k_out = nullptr;
};

struct PrunedRankingResult {
  MetricAccumulator metrics;
  /// Per instance: did the stage-one pool contain the target?
  std::vector<uint8_t> target_in_pool;
  int64_t instances = 0;
  int64_t pool_hits = 0;
  /// Mean stage-one pool size (as retrieved, before target extraction).
  double mean_pool_size = 0.0;

  /// Pruning recall proxy: fraction of instances whose target survived
  /// stage one.
  double TargetInPoolRate() const {
    return instances > 0 ? static_cast<double>(pool_hits) /
                               static_cast<double>(instances)
                         : 0.0;
  }
};

/// Runs the two-stage ranker over `test`. `candidates` must be built over
/// the dataset's real POIs (index id = poi - 1; see BuildCatalogIndex).
/// Stage one runs on the kernel thread pool; results are deterministic at
/// any thread count.
PrunedRankingResult PrunedRankingEvaluate(
    BatchScorer& scorer, const std::vector<data::EvalInstance>& test,
    const data::Dataset& dataset, const geo::CandidateGenerator& candidates,
    const PrunedRankingOptions& options = {});

/// Builds the stage-one index over the dataset's real POIs with the id
/// shift the evaluators expect (index id = poi - 1, skipping padding).
geo::SpatialGridIndex BuildCatalogIndex(const data::Dataset& dataset,
                                        double cell_km = 2.0);

}  // namespace stisan::eval
