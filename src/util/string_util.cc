#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cctype>

namespace stisan {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

Result<double> ParseDouble(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::InvalidArgument("empty number");
  std::string buf(s);
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size())
    return Status::InvalidArgument("malformed double: '" + buf + "'");
  return v;
}

Result<int64_t> ParseInt64(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::InvalidArgument("empty number");
  std::string buf(s);
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size())
    return Status::InvalidArgument("malformed int: '" + buf + "'");
  return static_cast<int64_t>(v);
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(n > 0 ? static_cast<size_t>(n) : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

}  // namespace stisan
