// Status / Result error-handling primitives (RocksDB/Arrow idiom).
//
// Library entry points that can fail on user input return Status (or
// Result<T>). Internal invariant violations use STISAN_CHECK (check.h) and
// abort, as they indicate programming errors rather than recoverable
// conditions.

#pragma once

#include <string>
#include <utility>
#include <variant>

namespace stisan {

/// Error categories surfaced by the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kIoError,
  kUnimplemented,
  kInternal,
  // Serving-runtime outcomes (see src/serve): the service is shutting
  // down, a per-request deadline expired, or admission control rejected
  // or shed the request under load.
  kUnavailable,
  kDeadlineExceeded,
  kResourceExhausted,
};

/// Returns a human-readable name for a StatusCode.
const char* StatusCodeName(StatusCode code);

/// Lightweight success/error value for fallible operations.
///
/// A default-constructed Status is OK. Error statuses carry a code and a
/// message. Statuses are cheap to copy (the common OK case stores nothing).
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value-or-Status union for fallible functions that produce a value.
///
/// Usage:
///   Result<Dataset> r = LoadDataset(path);
///   if (!r.ok()) return r.status();
///   Dataset& ds = r.value();
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, enables `return value;`).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Constructs from an error status (implicit, enables `return status;`).
  /// The status must not be OK.
  Result(Status status) : repr_(std::move(status)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns the status; OK if this Result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// Returns the contained value. Requires ok().
  T& value() & { return std::get<T>(repr_); }
  const T& value() const& { return std::get<T>(repr_); }
  T&& value() && { return std::get<T>(std::move(repr_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

/// Propagates an error status from an expression, RocksDB-style.
#define STISAN_RETURN_IF_ERROR(expr)                 \
  do {                                               \
    ::stisan::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                       \
  } while (0)

/// Assigns the value of a Result to `lhs`, or propagates its error status.
#define STISAN_ASSIGN_OR_RETURN(lhs, rexpr)          \
  auto STISAN_CONCAT_(_res_, __LINE__) = (rexpr);    \
  if (!STISAN_CONCAT_(_res_, __LINE__).ok())         \
    return STISAN_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(STISAN_CONCAT_(_res_, __LINE__)).value()

#define STISAN_CONCAT_IMPL_(a, b) a##b
#define STISAN_CONCAT_(a, b) STISAN_CONCAT_IMPL_(a, b)

}  // namespace stisan
