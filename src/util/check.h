// Invariant checking macros for internal programming errors.
//
// STISAN_CHECK fires in all build types; STISAN_DCHECK only in debug builds.
// Failures print the condition, location and an optional message, then abort.

#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace stisan::internal {

[[noreturn]] inline void CheckFailed(const char* cond, const char* file,
                                     int line, const std::string& msg) {
  std::fprintf(stderr, "STISAN_CHECK failed: %s at %s:%d %s\n", cond, file,
               line, msg.c_str());
  std::abort();
}

// Builds the failure message lazily so the happy path costs one branch.
class CheckMessageBuilder {
 public:
  template <typename T>
  CheckMessageBuilder& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }
  std::string str() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
};

}  // namespace stisan::internal

#define STISAN_CHECK(cond)                                              \
  if (cond) {                                                           \
  } else                                                                \
    ::stisan::internal::CheckFailed(                                    \
        #cond, __FILE__, __LINE__,                                      \
        ::stisan::internal::CheckMessageBuilder().str())

#define STISAN_CHECK_MSG(cond, msg)                                     \
  if (cond) {                                                           \
  } else                                                                \
    ::stisan::internal::CheckFailed(                                    \
        #cond, __FILE__, __LINE__,                                      \
        (::stisan::internal::CheckMessageBuilder() << msg).str())

#define STISAN_CHECK_EQ(a, b) STISAN_CHECK_MSG((a) == (b), "(" << (a) << " vs " << (b) << ")")
#define STISAN_CHECK_NE(a, b) STISAN_CHECK_MSG((a) != (b), "(" << (a) << " vs " << (b) << ")")
#define STISAN_CHECK_LT(a, b) STISAN_CHECK_MSG((a) < (b), "(" << (a) << " vs " << (b) << ")")
#define STISAN_CHECK_LE(a, b) STISAN_CHECK_MSG((a) <= (b), "(" << (a) << " vs " << (b) << ")")
#define STISAN_CHECK_GT(a, b) STISAN_CHECK_MSG((a) > (b), "(" << (a) << " vs " << (b) << ")")
#define STISAN_CHECK_GE(a, b) STISAN_CHECK_MSG((a) >= (b), "(" << (a) << " vs " << (b) << ")")

#ifdef NDEBUG
#define STISAN_DCHECK(cond) STISAN_CHECK(true || (cond))
#else
#define STISAN_DCHECK(cond) STISAN_CHECK(cond)
#endif
