// Pluggable filesystem abstraction (RocksDB-style Env) so crash-consistency
// code can be exercised against injected faults.
//
// Production code writes through Env::Default() (POSIX files + fsync).
// Tests wrap it in a FaultInjectionEnv that fails or silently truncates
// writes at a chosen byte offset, fails fsync, or fails rename — simulating
// full disks, torn writes and crashes mid-checkpoint.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace stisan {

/// Sequential output file. All methods report failure through Status; after
/// the first failure subsequent calls keep failing.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(const void* data, size_t n) = 0;
  /// Flushes user-space buffers to the OS.
  virtual Status Flush() = 0;
  /// Flushes OS buffers to stable storage (fsync).
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// Filesystem operations used by checkpointing. Methods mirror POSIX
/// semantics; RenameFile is atomic on the default implementation.
class Env {
 public:
  virtual ~Env() = default;

  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) = 0;
  virtual Result<std::string> ReadFileToString(const std::string& path) = 0;
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;
  virtual Status DeleteFile(const std::string& path) = 0;
  virtual bool FileExists(const std::string& path) = 0;
  /// Entry names (not paths) in `path`, excluding "." and "..".
  virtual Result<std::vector<std::string>> ListDir(const std::string& path) = 0;
  /// Creates one directory level; OK if it already exists.
  virtual Status CreateDir(const std::string& path) = 0;
  /// fsyncs a directory so a preceding rename is durable.
  virtual Status SyncDir(const std::string& path) = 0;

  /// The process-wide POSIX environment.
  static Env* Default();
};

/// Crash-consistent file replacement: writes `contents` to `path + ".tmp"`,
/// flushes and fsyncs it, atomically renames over `path`, then fsyncs the
/// parent directory. On any failure the destination is left untouched (the
/// temp file is deleted best-effort) and a non-OK Status is returned.
Status WriteFileAtomic(Env* env, const std::string& path,
                       const std::string& contents);

/// Describes the fault a FaultInjectionEnv injects.
struct FaultPlan {
  /// Cumulative Append() byte offset at which writes start failing
  /// (-1 = never). Bytes before the offset are written normally.
  int64_t fail_after_bytes = -1;
  enum class Mode {
    /// Append returns IoError once the offset is reached.
    kError,
    /// Bytes past the offset are silently dropped (torn write / power
    /// loss after the write() but before the data hit the platter);
    /// Append/Sync/Close keep reporting OK.
    kSilentTruncate,
  };
  Mode mode = Mode::kError;
  bool fail_on_sync = false;
  bool fail_on_rename = false;
};

/// Env wrapper that injects the faults described by a FaultPlan into files
/// opened through it. The byte counter is cumulative across all files opened
/// since the last SetPlan(), which lets tests sweep a failpoint across a
/// multi-write checkpoint save.
class FaultInjectionEnv : public Env {
 public:
  explicit FaultInjectionEnv(Env* base) : base_(base) {}

  /// Installs a new plan and resets both cumulative byte counters.
  void SetPlan(const FaultPlan& plan) {
    plan_ = plan;
    bytes_written_ = 0;
    bytes_attempted_ = 0;
  }
  const FaultPlan& plan() const { return plan_; }
  /// Bytes successfully appended (i.e. not failed/dropped) since SetPlan.
  int64_t bytes_written() const { return bytes_written_; }
  /// Bytes offered to Append since SetPlan, including failed/dropped ones.
  int64_t bytes_attempted() const { return bytes_attempted_; }

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  Result<std::string> ReadFileToString(const std::string& path) override {
    return base_->ReadFileToString(path);
  }
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status DeleteFile(const std::string& path) override {
    return base_->DeleteFile(path);
  }
  bool FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }
  Result<std::vector<std::string>> ListDir(const std::string& path) override {
    return base_->ListDir(path);
  }
  Status CreateDir(const std::string& path) override {
    return base_->CreateDir(path);
  }
  Status SyncDir(const std::string& path) override {
    return base_->SyncDir(path);
  }

 private:
  friend class FaultInjectionFile;

  Env* base_;
  FaultPlan plan_;
  int64_t bytes_written_ = 0;
  int64_t bytes_attempted_ = 0;
};

}  // namespace stisan
