#include "util/rng.h"

#include <cmath>

#include "util/check.h"

namespace stisan {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// SplitMix64 for seeding.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

float Rng::UniformFloat(float lo, float hi) {
  return lo + static_cast<float>(Uniform()) * (hi - lo);
}

uint64_t Rng::UniformInt(uint64_t n) {
  STISAN_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  STISAN_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::Normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  while (u1 <= 1e-300) u1 = Uniform();
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(theta);
  have_cached_normal_ = true;
  return radius * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::Exponential(double rate) {
  STISAN_CHECK_GT(rate, 0.0);
  double u = 0.0;
  while (u <= 1e-300) u = Uniform();
  return -std::log(u) / rate;
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    STISAN_CHECK_GE(w, 0.0);
    total += w;
  }
  STISAN_CHECK_GT(total, 0.0);
  double r = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;
}

size_t Rng::Zipf(size_t n, double alpha) {
  STISAN_CHECK_GT(n, 0u);
  // Inverse-CDF on the fly would be O(n); use rejection-free cumulative
  // search with cached normaliser for small n, or approximate for large n
  // via the standard Zipf rejection method.
  if (n <= 4096) {
    std::vector<double> w(n);
    for (size_t i = 0; i < n; ++i)
      w[i] = std::pow(static_cast<double>(i + 1), -alpha);
    return Categorical(w);
  }
  // Rejection sampling (Devroye) for large n.
  const double b = std::pow(2.0, alpha - 1.0);
  for (;;) {
    const double u = Uniform();
    const double v = Uniform();
    const double x = std::floor(std::pow(u, -1.0 / (alpha - 1.0)));
    if (x > static_cast<double>(n) || x < 1.0) continue;
    const double t = std::pow(1.0 + 1.0 / x, alpha - 1.0);
    if (v * x * (t - 1.0) / (b - 1.0) <= t / b)
      return static_cast<size_t>(x) - 1;
  }
}

Rng Rng::Fork() {
  return Rng(NextU64());
}

Rng::State Rng::GetState() const {
  State state;
  for (size_t i = 0; i < 4; ++i) state.s[i] = s_[i];
  state.have_cached_normal = have_cached_normal_;
  state.cached_normal = cached_normal_;
  return state;
}

void Rng::SetState(const State& state) {
  for (size_t i = 0; i < 4; ++i) s_[i] = state.s[i];
  have_cached_normal_ = state.have_cached_normal;
  cached_normal_ = state.cached_normal;
}

}  // namespace stisan
