// Minimal leveled logger writing to stderr.
//
// Usage: STISAN_LOG(INFO) << "epoch " << e << " loss " << loss;
// The global level is settable at runtime (SetLogLevel) so benches can
// silence training chatter.

#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace stisan {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level that will be emitted.
void SetLogLevel(LogLevel level);

/// Returns the current global minimum level.
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal

// Aliases so STISAN_LOG(INFO) reads like the conventional LOG(INFO).
namespace log_level {
inline constexpr LogLevel DEBUG = LogLevel::kDebug;
inline constexpr LogLevel INFO = LogLevel::kInfo;
inline constexpr LogLevel WARNING = LogLevel::kWarning;
inline constexpr LogLevel ERROR = LogLevel::kError;
}  // namespace log_level
}  // namespace stisan

#define STISAN_LOG(level)                                          \
  ::stisan::internal::LogMessage(::stisan::log_level::level,       \
                                 __FILE__, __LINE__)
