// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for checkpoint
// integrity checks. Software table implementation; throughput is far above
// what checkpoint writes need.

#pragma once

#include <cstddef>
#include <cstdint>

namespace stisan {

/// Extends a running CRC-32 over `n` bytes. Start with crc = 0.
uint32_t Crc32Extend(uint32_t crc, const void* data, size_t n);

/// CRC-32 of one contiguous buffer.
inline uint32_t Crc32(const void* data, size_t n) {
  return Crc32Extend(0, data, n);
}

}  // namespace stisan
