// Wall-clock stopwatch used by the trainer and benches.

#pragma once

#include <chrono>

namespace stisan {

/// Measures elapsed wall time. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Returns elapsed seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Returns elapsed milliseconds since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace stisan
