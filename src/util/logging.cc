#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace stisan {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= g_level.load()) {
  if (!enabled_) return;
  const char* base = file;
  for (const char* p = file; *p; ++p)
    if (*p == '/') base = p + 1;
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
}

}  // namespace internal
}  // namespace stisan
