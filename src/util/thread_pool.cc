#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace stisan {

ThreadPool::ThreadPool(int64_t threads) {
  if (threads <= 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(static_cast<size_t>(threads));
  for (int64_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  tasks_submitted_.fetch_add(1, std::memory_order_relaxed);
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_exception_) {
    std::exception_ptr ex = std::exchange(first_exception_, nullptr);
    lock.unlock();
    std::rethrow_exception(ex);
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock,
                           [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    // An escaping exception would std::terminate the worker; capture the
    // first one for Wait() to rethrow and keep the in-flight count exact
    // either way so Wait() never deadlocks after a throwing task.
    std::exception_ptr exception;
    try {
      task();
    } catch (...) {
      exception = std::current_exception();
    }
    tasks_completed_.fetch_add(1, std::memory_order_relaxed);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (exception && !first_exception_) {
        first_exception_ = std::move(exception);
      }
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool& pool, int64_t n,
                 const std::function<void(int64_t)>& fn) {
  if (n <= 0) return;  // nothing to do; never touch the pool
  // Chunk to limit queue churn.
  const int64_t chunks =
      std::min<int64_t>(n, pool.num_threads() * 4);
  if (chunks <= 1 || pool.num_threads() <= 1) {
    // Degenerate single-chunk case: run inline. Submitting one task would
    // only add queue/wakeup latency, and calling Wait() from inside a
    // worker of a single-threaded pool would deadlock.
    for (int64_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const int64_t per_chunk = (n + chunks - 1) / chunks;
  for (int64_t c = 0; c < chunks; ++c) {
    const int64_t begin = c * per_chunk;
    const int64_t end = std::min(n, begin + per_chunk);
    if (begin >= end) break;
    pool.Submit([begin, end, &fn] {
      for (int64_t i = begin; i < end; ++i) fn(i);
    });
  }
  pool.Wait();
}

}  // namespace stisan
