#include "util/crc32.h"

#include <array>

namespace stisan {
namespace {

std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = MakeTable();
  return table;
}

}  // namespace

uint32_t Crc32Extend(uint32_t crc, const void* data, size_t n) {
  const auto& table = Table();
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace stisan
