#include "util/serialize.h"

#include <cstring>

#include "util/crc32.h"

namespace stisan {
namespace {
// Sanity cap against corrupt length prefixes (1G elements). The effective
// bound is usually much tighter: lengths are also checked against the bytes
// remaining in the input.
constexpr uint64_t kMaxVectorLen = 1ull << 30;
}  // namespace

BinaryWriter::BinaryWriter(const std::string& path, Env* env) {
  if (env == nullptr) env = Env::Default();
  auto file = env->NewWritableFile(path);
  if (!file.ok()) {
    status_ = file.status();
    return;
  }
  file_ = std::move(*file);
}

BinaryWriter::BinaryWriter(std::string* buffer) : buffer_(buffer) {}

void BinaryWriter::WriteRaw(const void* data, size_t bytes) {
  if (!status_.ok()) return;
  if (buffer_ != nullptr) {
    buffer_->append(static_cast<const char*>(data), bytes);
    return;
  }
  status_ = file_->Append(data, bytes);
}

void BinaryWriter::WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
void BinaryWriter::WriteI64(int64_t v) { WriteRaw(&v, sizeof(v)); }
void BinaryWriter::WriteF32(float v) { WriteRaw(&v, sizeof(v)); }
void BinaryWriter::WriteF64(double v) { WriteRaw(&v, sizeof(v)); }

void BinaryWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  WriteRaw(s.data(), s.size());
}

void BinaryWriter::WriteFloatVector(const std::vector<float>& v) {
  WriteU64(v.size());
  WriteRaw(v.data(), v.size() * sizeof(float));
}

void BinaryWriter::WriteInt64Vector(const std::vector<int64_t>& v) {
  WriteU64(v.size());
  WriteRaw(v.data(), v.size() * sizeof(int64_t));
}

Status BinaryWriter::Finish() {
  if (file_ != nullptr) {
    if (status_.ok()) status_ = file_->Flush();
    const Status close_st = file_->Close();
    if (status_.ok()) status_ = close_st;
    file_.reset();
  }
  return status_;
}

BinaryReader::BinaryReader(const std::string& path, Env* env) {
  if (env == nullptr) env = Env::Default();
  auto data = env->ReadFileToString(path);
  if (!data.ok()) {
    status_ = data.status();
    return;
  }
  data_ = std::move(*data);
}

BinaryReader BinaryReader::FromBuffer(std::string data) {
  BinaryReader r;
  r.data_ = std::move(data);
  return r;
}

Status BinaryReader::ReadRaw(void* data, size_t bytes) {
  if (!status_.ok()) return status_;
  if (bytes > remaining()) {
    status_ = Status::IoError("unexpected end of file");
    return status_;
  }
  std::memcpy(data, data_.data() + pos_, bytes);
  pos_ += bytes;
  return status_;
}

Result<uint64_t> BinaryReader::ReadLength(size_t elem_size) {
  STISAN_ASSIGN_OR_RETURN(uint64_t len, ReadU64());
  if (len > kMaxVectorLen || len * elem_size > remaining()) {
    status_ = Status::OutOfRange(
        "corrupt length prefix: " + std::to_string(len) + " elements of " +
        std::to_string(elem_size) + " bytes exceeds the " +
        std::to_string(remaining()) + " bytes remaining");
    return status_;
  }
  return len;
}

Result<uint64_t> BinaryReader::ReadU64() {
  uint64_t v = 0;
  STISAN_RETURN_IF_ERROR(ReadRaw(&v, sizeof(v)));
  return v;
}

Result<int64_t> BinaryReader::ReadI64() {
  int64_t v = 0;
  STISAN_RETURN_IF_ERROR(ReadRaw(&v, sizeof(v)));
  return v;
}

Result<float> BinaryReader::ReadF32() {
  float v = 0;
  STISAN_RETURN_IF_ERROR(ReadRaw(&v, sizeof(v)));
  return v;
}

Result<double> BinaryReader::ReadF64() {
  double v = 0;
  STISAN_RETURN_IF_ERROR(ReadRaw(&v, sizeof(v)));
  return v;
}

Result<std::string> BinaryReader::ReadString() {
  STISAN_ASSIGN_OR_RETURN(uint64_t len, ReadLength(1));
  std::string s(len, '\0');
  STISAN_RETURN_IF_ERROR(ReadRaw(s.data(), len));
  return s;
}

Result<std::vector<float>> BinaryReader::ReadFloatVector() {
  STISAN_ASSIGN_OR_RETURN(uint64_t len, ReadLength(sizeof(float)));
  std::vector<float> v(len);
  STISAN_RETURN_IF_ERROR(ReadRaw(v.data(), len * sizeof(float)));
  return v;
}

Result<std::vector<int64_t>> BinaryReader::ReadInt64Vector() {
  STISAN_ASSIGN_OR_RETURN(uint64_t len, ReadLength(sizeof(int64_t)));
  std::vector<int64_t> v(len);
  STISAN_RETURN_IF_ERROR(ReadRaw(v.data(), len * sizeof(int64_t)));
  return v;
}

Status WriteEnvelopeFile(Env* env, const std::string& path, uint64_t magic,
                         uint64_t version, const std::string& payload) {
  std::string contents;
  contents.reserve(payload.size() + 28);
  BinaryWriter header(&contents);
  header.WriteU64(magic);
  header.WriteU64(version);
  header.WriteU64(payload.size());
  contents += payload;
  const uint32_t crc = Crc32(payload.data(), payload.size());
  contents.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  return WriteFileAtomic(env, path, contents);
}

Result<std::string> ReadEnvelopeFile(Env* env, const std::string& path,
                                     uint64_t magic, uint64_t min_version,
                                     uint64_t max_version) {
  if (env == nullptr) env = Env::Default();
  STISAN_ASSIGN_OR_RETURN(std::string contents, env->ReadFileToString(path));
  constexpr size_t kHeaderBytes = 3 * sizeof(uint64_t);
  constexpr size_t kCrcBytes = sizeof(uint32_t);
  if (contents.size() < kHeaderBytes + kCrcBytes) {
    return Status::IoError("envelope truncated: " + path);
  }
  uint64_t got_magic, got_version, payload_len;
  std::memcpy(&got_magic, contents.data(), sizeof(uint64_t));
  std::memcpy(&got_version, contents.data() + 8, sizeof(uint64_t));
  std::memcpy(&payload_len, contents.data() + 16, sizeof(uint64_t));
  if (got_magic != magic) {
    return Status::InvalidArgument("bad magic number: " + path);
  }
  if (got_version < min_version || got_version > max_version) {
    return Status::InvalidArgument(
        "unsupported format version " + std::to_string(got_version) + ": " +
        path);
  }
  if (payload_len != contents.size() - kHeaderBytes - kCrcBytes) {
    return Status::IoError(
        "envelope payload length mismatch (truncated or trailing "
        "garbage): " +
        path);
  }
  const char* payload = contents.data() + kHeaderBytes;
  uint32_t stored_crc;
  std::memcpy(&stored_crc, payload + payload_len, sizeof(stored_crc));
  const uint32_t computed_crc = Crc32(payload, payload_len);
  if (stored_crc != computed_crc) {
    return Status::IoError("CRC mismatch (corrupt checkpoint): " + path);
  }
  return std::string(payload, payload_len);
}

Result<uint64_t> PeekFileMagic(Env* env, const std::string& path) {
  if (env == nullptr) env = Env::Default();
  STISAN_ASSIGN_OR_RETURN(std::string contents, env->ReadFileToString(path));
  if (contents.size() < sizeof(uint64_t)) {
    return Status::IoError("file too short for a magic number: " + path);
  }
  uint64_t magic;
  std::memcpy(&magic, contents.data(), sizeof(magic));
  return magic;
}

}  // namespace stisan
