#include "util/serialize.h"

#include <cstring>

namespace stisan {
namespace {
// Sanity cap against corrupt length prefixes (1G elements).
constexpr uint64_t kMaxVectorLen = 1ull << 30;
}  // namespace

BinaryWriter::BinaryWriter(const std::string& path)
    : out_(path, std::ios::binary | std::ios::trunc) {
  if (!out_.is_open()) {
    status_ = Status::IoError("cannot open for writing: " + path);
  }
}

void BinaryWriter::WriteRaw(const void* data, size_t bytes) {
  if (!status_.ok()) return;
  out_.write(static_cast<const char*>(data),
             static_cast<std::streamsize>(bytes));
  if (!out_.good()) status_ = Status::IoError("write failed");
}

void BinaryWriter::WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
void BinaryWriter::WriteI64(int64_t v) { WriteRaw(&v, sizeof(v)); }
void BinaryWriter::WriteF32(float v) { WriteRaw(&v, sizeof(v)); }

void BinaryWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  WriteRaw(s.data(), s.size());
}

void BinaryWriter::WriteFloatVector(const std::vector<float>& v) {
  WriteU64(v.size());
  WriteRaw(v.data(), v.size() * sizeof(float));
}

void BinaryWriter::WriteInt64Vector(const std::vector<int64_t>& v) {
  WriteU64(v.size());
  WriteRaw(v.data(), v.size() * sizeof(int64_t));
}

Status BinaryWriter::Finish() {
  if (status_.ok()) {
    out_.flush();
    if (!out_.good()) status_ = Status::IoError("flush failed");
  }
  out_.close();
  return status_;
}

BinaryReader::BinaryReader(const std::string& path)
    : in_(path, std::ios::binary) {
  if (!in_.is_open()) {
    status_ = Status::IoError("cannot open for reading: " + path);
  }
}

Status BinaryReader::ReadRaw(void* data, size_t bytes) {
  if (!status_.ok()) return status_;
  in_.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  if (in_.gcount() != static_cast<std::streamsize>(bytes)) {
    status_ = Status::IoError("unexpected end of file");
  }
  return status_;
}

Result<uint64_t> BinaryReader::ReadU64() {
  uint64_t v = 0;
  STISAN_RETURN_IF_ERROR(ReadRaw(&v, sizeof(v)));
  return v;
}

Result<int64_t> BinaryReader::ReadI64() {
  int64_t v = 0;
  STISAN_RETURN_IF_ERROR(ReadRaw(&v, sizeof(v)));
  return v;
}

Result<float> BinaryReader::ReadF32() {
  float v = 0;
  STISAN_RETURN_IF_ERROR(ReadRaw(&v, sizeof(v)));
  return v;
}

Result<std::string> BinaryReader::ReadString() {
  STISAN_ASSIGN_OR_RETURN(uint64_t len, ReadU64());
  if (len > kMaxVectorLen) return Status::IoError("corrupt string length");
  std::string s(len, '\0');
  STISAN_RETURN_IF_ERROR(ReadRaw(s.data(), len));
  return s;
}

Result<std::vector<float>> BinaryReader::ReadFloatVector() {
  STISAN_ASSIGN_OR_RETURN(uint64_t len, ReadU64());
  if (len > kMaxVectorLen) return Status::IoError("corrupt vector length");
  std::vector<float> v(len);
  STISAN_RETURN_IF_ERROR(ReadRaw(v.data(), len * sizeof(float)));
  return v;
}

Result<std::vector<int64_t>> BinaryReader::ReadInt64Vector() {
  STISAN_ASSIGN_OR_RETURN(uint64_t len, ReadU64());
  if (len > kMaxVectorLen) return Status::IoError("corrupt vector length");
  std::vector<int64_t> v(len);
  STISAN_RETURN_IF_ERROR(ReadRaw(v.data(), len * sizeof(int64_t)));
  return v;
}

}  // namespace stisan
