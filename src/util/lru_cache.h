// A small thread-safe LRU cache keyed on full key equality.
//
// Lookups hash first but always compare the complete key, so a hash
// collision can never return the wrong value — important for the relation
// and position-table caches, where a silently wrong tensor would corrupt
// training without failing any shape check.

#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

namespace stisan {

/// FNV-1a over a byte range; the helper the cache users combine key fields
/// with (hash the raw bytes of PODs/vectors).
inline uint64_t Fnv1aBytes(const void* data, size_t size,
                           uint64_t seed = 0xcbf29ce484222325ULL) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LruCache {
 public:
  explicit LruCache(size_t capacity) : capacity_(capacity) {}

  /// Returns a copy of the cached value and refreshes its recency.
  std::optional<Value> Get(const Key& key) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return std::nullopt;
    }
    entries_.splice(entries_.begin(), entries_, it->second);
    ++hits_;
    return entries_.front().second;
  }

  /// Inserts (or refreshes) key -> value, evicting the least recently used
  /// entry when over capacity.
  void Put(const Key& key, Value value) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      entries_.splice(entries_.begin(), entries_, it->second);
      return;
    }
    entries_.emplace_front(key, std::move(value));
    index_[key] = entries_.begin();
    if (entries_.size() > capacity_) {
      index_.erase(entries_.back().first);
      entries_.pop_back();
    }
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    index_.clear();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
  }
  uint64_t hits() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
  }
  uint64_t misses() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::list<std::pair<Key, Value>> entries_;  // front = most recent
  std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator,
                     Hash>
      index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace stisan
