// A minimal fixed-size thread pool with a ParallelFor convenience, used to
// parallelise read-only evaluation across test instances.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace stisan {

/// Fixed worker pool. Tasks are void() closures; Wait() blocks until all
/// submitted tasks finish. Not copyable.
///
/// Exception safety: a task that throws never reaches std::terminate — the
/// worker captures the first exception raised since the last Wait() and
/// Wait() rethrows it on the calling thread once every in-flight task has
/// drained (so the in-flight count stays consistent and no later Wait()
/// deadlocks). Exceptions after the first are swallowed.
class ThreadPool {
 public:
  /// `threads` = 0 uses the hardware concurrency (at least 1).
  explicit ThreadPool(int64_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has completed, then rethrows the
  /// first exception any of them raised (if one did).
  void Wait();

  int64_t num_threads() const {
    return static_cast<int64_t>(workers_.size());
  }

  /// Lifetime totals of tasks enqueued / finished, for observability
  /// snapshots. Relaxed reads; exact once the pool is quiescent.
  uint64_t tasks_submitted() const {
    return tasks_submitted_.load(std::memory_order_relaxed);
  }
  uint64_t tasks_completed() const {
    return tasks_completed_.load(std::memory_order_relaxed);
  }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  int64_t in_flight_ = 0;
  bool shutdown_ = false;
  std::exception_ptr first_exception_;  // guarded by mutex_
  std::atomic<uint64_t> tasks_submitted_{0};
  std::atomic<uint64_t> tasks_completed_{0};
};

/// Runs fn(i) for i in [0, n) across the pool; blocks until done.
/// fn must be safe to call concurrently for distinct i. If any fn(i) throws,
/// the remaining indices of other chunks still run, and the first exception
/// is rethrown here on the calling thread.
void ParallelFor(ThreadPool& pool, int64_t n,
                 const std::function<void(int64_t)>& fn);

}  // namespace stisan
