// A minimal fixed-size thread pool with a ParallelFor convenience, used to
// parallelise read-only evaluation across test instances.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace stisan {

/// Fixed worker pool. Tasks are void() closures; Wait() blocks until all
/// submitted tasks finish. Not copyable.
class ThreadPool {
 public:
  /// `threads` = 0 uses the hardware concurrency (at least 1).
  explicit ThreadPool(int64_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has completed.
  void Wait();

  int64_t num_threads() const {
    return static_cast<int64_t>(workers_.size());
  }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  int64_t in_flight_ = 0;
  bool shutdown_ = false;
};

/// Runs fn(i) for i in [0, n) across the pool; blocks until done.
/// fn must be safe to call concurrently for distinct i.
void ParallelFor(ThreadPool& pool, int64_t n,
                 const std::function<void(int64_t)>& fn);

}  // namespace stisan
