#include "util/io_env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace stisan {
namespace {

Status ErrnoStatus(const std::string& op, const std::string& path) {
  return Status::IoError(op + " failed for " + path + ": " +
                         std::strerror(errno));
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(std::FILE* file, std::string path)
      : file_(file), path_(std::move(path)) {}
  ~PosixWritableFile() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  Status Append(const void* data, size_t n) override {
    STISAN_RETURN_IF_ERROR(status_);
    if (std::fwrite(data, 1, n, file_) != n) {
      status_ = ErrnoStatus("write", path_);
    }
    return status_;
  }

  Status Flush() override {
    STISAN_RETURN_IF_ERROR(status_);
    if (std::fflush(file_) != 0) status_ = ErrnoStatus("flush", path_);
    return status_;
  }

  Status Sync() override {
    STISAN_RETURN_IF_ERROR(Flush());
    if (::fsync(::fileno(file_)) != 0) status_ = ErrnoStatus("fsync", path_);
    return status_;
  }

  Status Close() override {
    if (file_ == nullptr) return status_;
    if (std::fclose(file_) != 0 && status_.ok()) {
      status_ = ErrnoStatus("close", path_);
    }
    file_ = nullptr;
    return status_;
  }

 private:
  std::FILE* file_;
  std::string path_;
  Status status_;
};

class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) return ErrnoStatus("open for writing", path);
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(f, path));
  }

  Result<std::string> ReadFileToString(const std::string& path) override {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return ErrnoStatus("open for reading", path);
    std::string out;
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      out.append(buf, n);
    }
    const bool failed = std::ferror(f) != 0;
    std::fclose(f);
    if (failed) return ErrnoStatus("read", path);
    return out;
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename", from + " -> " + to);
    }
    return Status::OK();
  }

  Status DeleteFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) return ErrnoStatus("unlink", path);
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }

  Result<std::vector<std::string>> ListDir(const std::string& path) override {
    DIR* dir = ::opendir(path.c_str());
    if (dir == nullptr) return ErrnoStatus("opendir", path);
    std::vector<std::string> names;
    while (struct dirent* entry = ::readdir(dir)) {
      const std::string name = entry->d_name;
      if (name != "." && name != "..") names.push_back(name);
    }
    ::closedir(dir);
    return names;
  }

  Status CreateDir(const std::string& path) override {
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
      return ErrnoStatus("mkdir", path);
    }
    return Status::OK();
  }

  Status SyncDir(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) return ErrnoStatus("open directory", path);
    Status st;
    if (::fsync(fd) != 0) st = ErrnoStatus("fsync directory", path);
    ::close(fd);
    return st;
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();
  return env;
}

Status WriteFileAtomic(Env* env, const std::string& path,
                       const std::string& contents) {
  const std::string tmp = path + ".tmp";
  auto file = env->NewWritableFile(tmp);
  STISAN_RETURN_IF_ERROR(file.status());
  Status st = (*file)->Append(contents.data(), contents.size());
  if (st.ok()) st = (*file)->Sync();
  const Status close_st = (*file)->Close();
  if (st.ok()) st = close_st;
  if (st.ok()) st = env->RenameFile(tmp, path);
  if (!st.ok()) {
    if (env->FileExists(tmp)) env->DeleteFile(tmp);  // best effort
    return st;
  }
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  return env->SyncDir(dir);
}

class FaultInjectionFile : public WritableFile {
 public:
  FaultInjectionFile(std::unique_ptr<WritableFile> base,
                     FaultInjectionEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Append(const void* data, size_t n) override {
    env_->bytes_attempted_ += static_cast<int64_t>(n);
    const FaultPlan& plan = env_->plan_;
    size_t allowed = n;
    bool tripped = false;
    if (plan.fail_after_bytes >= 0) {
      const int64_t room = plan.fail_after_bytes - env_->bytes_written_;
      if (room < static_cast<int64_t>(n)) {
        allowed = static_cast<size_t>(room < 0 ? 0 : room);
        tripped = true;
      }
    }
    if (allowed > 0) {
      STISAN_RETURN_IF_ERROR(base_->Append(data, allowed));
      env_->bytes_written_ += static_cast<int64_t>(allowed);
    }
    if (tripped && plan.mode == FaultPlan::Mode::kError) {
      return Status::IoError("injected write failure at byte " +
                             std::to_string(plan.fail_after_bytes));
    }
    return Status::OK();  // kSilentTruncate drops the tail silently
  }

  Status Flush() override { return base_->Flush(); }

  Status Sync() override {
    if (env_->plan_.fail_on_sync) {
      return Status::IoError("injected fsync failure");
    }
    return base_->Sync();
  }

  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<WritableFile> base_;
  FaultInjectionEnv* env_;
};

Result<std::unique_ptr<WritableFile>> FaultInjectionEnv::NewWritableFile(
    const std::string& path) {
  auto base = base_->NewWritableFile(path);
  STISAN_RETURN_IF_ERROR(base.status());
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultInjectionFile>(std::move(*base), this));
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  if (plan_.fail_on_rename) {
    return Status::IoError("injected rename failure: " + from);
  }
  return base_->RenameFile(from, to);
}

}  // namespace stisan
