// Deterministic pseudo-random number generation.
//
// All stochastic components (init, dropout, sampling, synthetic data) draw
// from an explicitly seeded Rng so experiments are reproducible bit-for-bit.

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace stisan {

/// A small, fast, seedable PRNG (xoshiro256**).
///
/// Not cryptographically secure; statistically solid for simulation and
/// model training. Copyable so components can fork independent streams.
class Rng {
 public:
  /// Seeds the generator. Identical seeds yield identical streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Returns the next raw 64-bit value.
  uint64_t NextU64();

  /// Returns a uniform double in [0, 1).
  double Uniform();

  /// Returns a uniform float in [lo, hi).
  float UniformFloat(float lo, float hi);

  /// Returns a uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Returns a uniform integer in [lo, hi]. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns a standard normal sample (Box-Muller).
  double Normal();

  /// Returns a normal sample with the given mean and stddev.
  double Normal(double mean, double stddev);

  /// Returns an exponential sample with the given rate (lambda > 0).
  double Exponential(double rate);

  /// Returns true with probability p.
  bool Bernoulli(double p);

  /// Samples an index from unnormalised non-negative weights.
  /// Requires at least one strictly positive weight.
  size_t Categorical(const std::vector<double>& weights);

  /// Returns a power-law (Zipf-like) index in [0, n): P(i) ~ (i+1)^-alpha.
  size_t Zipf(size_t n, double alpha);

  /// Shuffles a vector in place (Fisher-Yates).
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    if (v.empty()) return;
    for (size_t i = v.size() - 1; i > 0; --i) {
      size_t j = UniformInt(static_cast<uint64_t>(i + 1));
      std::swap(v[i], v[j]);
    }
  }

  /// Forks an independent generator whose stream does not overlap usefully
  /// with this one (re-seeded from the current state).
  Rng Fork();

  /// Complete generator state (xoshiro words plus the Box-Muller cache).
  /// Restoring a captured state resumes the stream bit-identically, which
  /// checkpoint/resume relies on.
  struct State {
    std::array<uint64_t, 4> s{};
    bool have_cached_normal = false;
    double cached_normal = 0.0;
  };
  State GetState() const;
  void SetState(const State& state);

 private:
  uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace stisan
