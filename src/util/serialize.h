// Binary serialization primitives for model checkpoints.
//
// Format: little-endian, length-prefixed. A checkpoint is a sequence of
// records written through BinaryWriter and read back in the same order
// through BinaryReader; Module::Save/Load (nn/module.h) and the trainer
// checkpoints (train/checkpoint.h) build on these.
//
// Writers target either a file (through an Env, so faults can be injected)
// or an in-memory buffer; readers always parse from a bounded in-memory
// buffer, so every length prefix is validated against the bytes actually
// present — a corrupt or truncated file yields a clean Status, never an
// allocation blow-up or partial read.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/io_env.h"
#include "util/status.h"

namespace stisan {

/// Streaming binary writer. All writes report failure through status().
class BinaryWriter {
 public:
  /// Opens `path` for writing (truncates) through `env` (default POSIX).
  explicit BinaryWriter(const std::string& path, Env* env = nullptr);

  /// Appends to `buffer` instead of a file (checkpoint payload assembly).
  explicit BinaryWriter(std::string* buffer);

  void WriteU64(uint64_t v);
  void WriteI64(int64_t v);
  void WriteF32(float v);
  void WriteF64(double v);
  void WriteString(const std::string& s);
  void WriteFloatVector(const std::vector<float>& v);
  void WriteInt64Vector(const std::vector<int64_t>& v);

  /// Flushes and returns the cumulative status. No-op in buffer mode.
  Status Finish();

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

 private:
  void WriteRaw(const void* data, size_t bytes);

  std::unique_ptr<WritableFile> file_;  // file mode
  std::string* buffer_ = nullptr;       // buffer mode
  Status status_;
};

/// Binary reader mirroring BinaryWriter. The whole input is held in memory
/// and every length prefix is bounded by the remaining byte count.
class BinaryReader {
 public:
  /// Reads the entire file at `path` through `env` (default POSIX).
  explicit BinaryReader(const std::string& path, Env* env = nullptr);

  /// Parses from an in-memory buffer (e.g. a CRC-verified payload).
  static BinaryReader FromBuffer(std::string data);

  Result<uint64_t> ReadU64();
  Result<int64_t> ReadI64();
  Result<float> ReadF32();
  Result<double> ReadF64();
  Result<std::string> ReadString();
  Result<std::vector<float>> ReadFloatVector();
  Result<std::vector<int64_t>> ReadInt64Vector();

  /// Bytes not yet consumed.
  size_t remaining() const { return data_.size() - pos_; }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

 private:
  BinaryReader() = default;

  Status ReadRaw(void* data, size_t bytes);
  /// Validates a length prefix for `elem_size`-byte elements against the
  /// remaining input.
  Result<uint64_t> ReadLength(size_t elem_size);

  std::string data_;
  size_t pos_ = 0;
  Status status_;
};

// ---- Versioned, CRC-protected file envelope --------------------------------
//
// Layout: [magic u64][version u64][payload_len u64][payload][crc32 u32]
// where the CRC covers the payload bytes. Written atomically via
// WriteFileAtomic (temp file + fsync + rename), so a reader either sees a
// complete envelope or the previous file contents — never a torn write that
// passes validation.

/// Atomically writes `payload` wrapped in an envelope to `path`.
Status WriteEnvelopeFile(Env* env, const std::string& path, uint64_t magic,
                         uint64_t version, const std::string& payload);

/// Reads and validates an envelope; returns the payload. Fails with a clean
/// Status on missing file, wrong magic, unsupported version, truncation,
/// trailing garbage or CRC mismatch.
Result<std::string> ReadEnvelopeFile(Env* env, const std::string& path,
                                     uint64_t magic, uint64_t min_version,
                                     uint64_t max_version);

/// Peeks at the leading magic number of a file (for format dispatch).
Result<uint64_t> PeekFileMagic(Env* env, const std::string& path);

}  // namespace stisan
