// Binary serialization primitives for model checkpoints.
//
// Format: little-endian, length-prefixed. A checkpoint is a sequence of
// records written through BinaryWriter and read back in the same order
// through BinaryReader; Module::Save/Load (nn/module.h) build on these.

#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "util/status.h"

namespace stisan {

/// Streaming binary writer. All writes report failure through status().
class BinaryWriter {
 public:
  /// Opens `path` for writing (truncates).
  explicit BinaryWriter(const std::string& path);

  void WriteU64(uint64_t v);
  void WriteI64(int64_t v);
  void WriteF32(float v);
  void WriteString(const std::string& s);
  void WriteFloatVector(const std::vector<float>& v);
  void WriteInt64Vector(const std::vector<int64_t>& v);

  /// Flushes and returns the cumulative status.
  Status Finish();

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

 private:
  void WriteRaw(const void* data, size_t bytes);

  std::ofstream out_;
  Status status_;
};

/// Streaming binary reader mirroring BinaryWriter.
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path);

  Result<uint64_t> ReadU64();
  Result<int64_t> ReadI64();
  Result<float> ReadF32();
  Result<std::string> ReadString();
  Result<std::vector<float>> ReadFloatVector();
  Result<std::vector<int64_t>> ReadInt64Vector();

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

 private:
  Status ReadRaw(void* data, size_t bytes);

  std::ifstream in_;
  Status status_;
};

}  // namespace stisan
