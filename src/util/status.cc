#include "util/status.h"

namespace stisan {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace stisan
