// String and CSV helpers shared across data loading and bench output.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace stisan {

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Parses a double; returns InvalidArgument on malformed input.
Result<double> ParseDouble(std::string_view s);

/// Parses a signed 64-bit integer; returns InvalidArgument on malformed input.
Result<int64_t> ParseInt64(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Joins elements with a separator using operator<< formatting.
template <typename Container>
std::string Join(const Container& items, std::string_view sep) {
  std::string out;
  bool first = true;
  for (const auto& item : items) {
    if (!first) out.append(sep);
    first = false;
    out += std::to_string(item);
  }
  return out;
}

}  // namespace stisan
