#include "serve/service.h"

#include <algorithm>
#include <utility>

#include "core/stisan.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace stisan::serve {

namespace {

struct ServeMetrics {
  obs::Counter& appends = obs::GetCounter("serve/appends");
  obs::Counter& requests = obs::GetCounter("serve/requests");
  obs::Counter& incremental = obs::GetCounter("serve/incremental_scored");
  obs::Counter& fallback = obs::GetCounter("serve/fallback_scored");
  obs::Counter& cold_starts = obs::GetCounter("serve/cold_starts");
  obs::Counter& cold_builds = obs::GetCounter("serve/cold_builds");
  obs::Counter& rebuilds = obs::GetCounter("serve/cache_rebuilds");
  obs::Counter& evictions = obs::GetCounter("serve/evictions");
  obs::Counter& overflows = obs::GetCounter("serve/overflows");
  obs::Gauge& resident = obs::GetGauge("serve/resident_sessions");
  obs::Histogram& latency = obs::GetHistogram("time/serve/request");
  obs::Histogram& queue_depth =
      obs::GetHistogram("serve/queue_depth", obs::CountBounds());
  obs::Histogram& batch_size =
      obs::GetHistogram("serve/batch_size", obs::CountBounds());
};

ServeMetrics& Metrics() {
  static ServeMetrics* m = new ServeMetrics();
  return *m;
}

}  // namespace

RecommendService::RecommendService(models::SequentialRecommender* model,
                                   const ServeOptions& options)
    : model_(model), options_(options), store_(options.max_sessions) {
  STISAN_CHECK(model != nullptr);
  STISAN_CHECK_GE(options_.max_seq_len, 1);
  STISAN_CHECK_GE(options_.max_batch, 1);
  if (auto* stisan = dynamic_cast<core::StisanModel*>(model)) {
    engine_ = std::make_unique<core::IncrementalScorer>(stisan,
                                                        options_.max_seq_len);
  }
  if (options_.start_worker) {
    worker_ = std::thread([this] { WorkerLoop(); });
  }
}

RecommendService::~RecommendService() {
  if (worker_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    worker_.join();
  }
}

void RecommendService::Enqueue(Op op) {
  op.enqueued = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(op));
    ++enqueued_ops_;
    Metrics().queue_depth.Observe(static_cast<double>(queue_.size()));
  }
  work_cv_.notify_one();
}

void RecommendService::Append(int64_t user, int64_t poi, double timestamp) {
  STISAN_CHECK_NE(poi, data::kPaddingPoi);
  Op op;
  op.kind = OpKind::kAppend;
  op.user = user;
  op.poi = poi;
  op.timestamp = timestamp;
  Enqueue(std::move(op));
}

std::future<ScoreResult> RecommendService::ScoreAsync(
    int64_t user, std::vector<int64_t> candidates) {
  Op op;
  op.kind = OpKind::kScore;
  op.user = user;
  op.candidates = std::move(candidates);
  std::future<ScoreResult> fut = op.promise.get_future();
  Enqueue(std::move(op));
  return fut;
}

ScoreResult RecommendService::Score(int64_t user,
                                    std::vector<int64_t> candidates) {
  std::future<ScoreResult> fut = ScoreAsync(user, std::move(candidates));
  if (!worker_.joinable()) Pump();
  return fut.get();
}

void RecommendService::EvictSession(int64_t user) {
  Op op;
  op.kind = OpKind::kEvict;
  op.user = user;
  Enqueue(std::move(op));
}

size_t RecommendService::Pump() {
  STISAN_CHECK_MSG(!worker_.joinable(),
                   "Pump() is only valid with start_worker = false");
  std::vector<Op> batch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch.assign(std::make_move_iterator(queue_.begin()),
                 std::make_move_iterator(queue_.end()));
    queue_.clear();
  }
  const size_t n = batch.size();
  if (n > 0) Process(std::move(batch));
  return n;
}

void RecommendService::Drain() {
  if (!worker_.joinable()) {
    Pump();
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  drained_cv_.wait(lock, [this] { return processed_ops_ == enqueued_ops_; });
}

void RecommendService::WorkerLoop() {
  for (;;) {
    std::vector<Op> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty() && stop_) return;
      if (options_.batch_window_us > 0) {
        // Coalescing window: let concurrent requests pile up so fallback
        // scores share one padded forward. Cut short once a full batch is
        // waiting or shutdown begins.
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::microseconds(options_.batch_window_us);
        while (!stop_ &&
               static_cast<int64_t>(queue_.size()) < options_.max_batch &&
               work_cv_.wait_until(lock, deadline) !=
                   std::cv_status::timeout) {
        }
      }
      batch.assign(std::make_move_iterator(queue_.begin()),
                   std::make_move_iterator(queue_.end()));
      queue_.clear();
    }
    if (!batch.empty()) Process(std::move(batch));
  }
}

void RecommendService::Fulfil(Op& op, std::vector<float> scores) {
  const double latency =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    op.enqueued)
          .count();
  Metrics().latency.Observe(latency);
  op.promise.set_value({std::move(scores), latency});
}

void RecommendService::FlushFallback(std::vector<Op>* pending) {
  if (pending->empty()) return;
  ServeMetrics& m = Metrics();
  // Group by sequence length (the padded batch path shares one length per
  // forward), preserving arrival order within and across groups.
  std::vector<int64_t> lengths;
  for (const Op& op : *pending) {
    const int64_t n = static_cast<int64_t>(op.instance.poi.size());
    if (std::find(lengths.begin(), lengths.end(), n) == lengths.end()) {
      lengths.push_back(n);
    }
  }
  for (int64_t n : lengths) {
    std::vector<Op*> group;
    for (Op& op : *pending) {
      if (static_cast<int64_t>(op.instance.poi.size()) == n) {
        group.push_back(&op);
      }
    }
    for (size_t start = 0; start < group.size();
         start += static_cast<size_t>(options_.max_batch)) {
      const size_t end = std::min(
          group.size(), start + static_cast<size_t>(options_.max_batch));
      std::vector<const data::EvalInstance*> instances;
      std::vector<std::vector<int64_t>> candidates;
      for (size_t i = start; i < end; ++i) {
        instances.push_back(&group[i]->instance);
        candidates.push_back(group[i]->candidates);
      }
      m.batch_size.Observe(static_cast<double>(instances.size()));
      auto scores = model_->ScoreBatch(instances, candidates);
      STISAN_CHECK_EQ(scores.size(), instances.size());
      for (size_t i = start; i < end; ++i) {
        m.fallback.Inc();
        Fulfil(*group[i], std::move(scores[i - start]));
      }
    }
  }
  pending->clear();
}

void RecommendService::ServeScore(Op op, std::vector<Op>* pending) {
  ServeMetrics& m = Metrics();
  m.requests.Inc();
  Session& s = store_.GetOrCreate(op.user);
  const int64_t len = static_cast<int64_t>(s.pois.size());
  if (len == 0) {
    // Cold start: nothing to condition on; scores are all zero.
    m.cold_starts.Inc();
    Fulfil(op, std::vector<float>(op.candidates.size(), 0.0f));
    return;
  }
  if (engine_ != nullptr && len <= options_.max_seq_len) {
    const int64_t evictions_before = store_.evictions();
    store_.MarkResident(s, s.state ? nullptr : engine_->NewState());
    m.evictions.Inc(
        static_cast<uint64_t>(store_.evictions() - evictions_before));
    if (s.state->cached_len == 0 && len > 1) m.cold_builds.Inc();
    const int64_t rebuilds = engine_->Sync(*s.state, s.pois, s.timestamps);
    m.rebuilds.Inc(static_cast<uint64_t>(rebuilds));
    std::vector<float> scores =
        engine_->Score(*s.state, s.pois, s.timestamps, op.candidates);
    m.incremental.Inc();
    Fulfil(op, std::move(scores));
    return;
  }
  // Fallback: trailing window through the padded batch path.
  const int64_t n = std::min<int64_t>(len, options_.max_seq_len);
  op.instance.user = op.user;
  op.instance.poi.assign(s.pois.end() - n, s.pois.end());
  op.instance.t.assign(s.timestamps.end() - n, s.timestamps.end());
  op.instance.first_real = 0;
  pending->push_back(std::move(op));
  if (static_cast<int64_t>(pending->size()) >= options_.max_batch) {
    FlushFallback(pending);
  }
}

void RecommendService::Process(std::vector<Op> ops) {
  ServeMetrics& m = Metrics();
  std::vector<Op> pending;
  auto pending_user = [&pending](int64_t user) {
    for (const Op& op : pending) {
      if (op.user == user) return true;
    }
    return false;
  };
  const size_t count = ops.size();
  for (Op& op : ops) {
    switch (op.kind) {
      case OpKind::kAppend: {
        // Per-user FIFO: a queued fallback score must observe the history
        // as of its own arrival, so flush before mutating it.
        if (pending_user(op.user)) FlushFallback(&pending);
        store_.Append(op.user, op.poi, op.timestamp);
        m.appends.Inc();
        Session& s = store_.GetOrCreate(op.user);
        if (engine_ != nullptr && s.resident &&
            static_cast<int64_t>(s.pois.size()) > options_.max_seq_len) {
          // Past the serving window the cached rows no longer mirror the
          // (windowed) full forward; release them.
          store_.Evict(op.user);
          m.overflows.Inc();
        }
        break;
      }
      case OpKind::kEvict: {
        if (pending_user(op.user)) FlushFallback(&pending);
        store_.Evict(op.user);
        break;
      }
      case OpKind::kScore: {
        ServeScore(std::move(op), &pending);
        break;
      }
    }
  }
  FlushFallback(&pending);
  m.resident.Set(static_cast<double>(store_.resident_count()));
  {
    std::lock_guard<std::mutex> lock(mu_);
    processed_ops_ += count;
  }
  drained_cv_.notify_all();
}

}  // namespace stisan::serve
