#include "serve/service.h"

#include <algorithm>
#include <cmath>
#include <exception>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <utility>

#include "core/stisan.h"
#include "nn/module.h"
#include "obs/metrics.h"
#include "quant/quant.h"
#include "util/check.h"

namespace stisan::serve {

namespace {

struct ServeMetrics {
  obs::Counter& appends = obs::GetCounter("serve/appends");
  obs::Counter& requests = obs::GetCounter("serve/requests");
  obs::Counter& incremental = obs::GetCounter("serve/incremental_scored");
  obs::Counter& fallback = obs::GetCounter("serve/fallback_scored");
  obs::Counter& cold_starts = obs::GetCounter("serve/cold_starts");
  obs::Counter& cold_builds = obs::GetCounter("serve/cold_builds");
  obs::Counter& rebuilds = obs::GetCounter("serve/cache_rebuilds");
  obs::Counter& evictions = obs::GetCounter("serve/evictions");
  obs::Counter& overflows = obs::GetCounter("serve/overflows");
  obs::Counter& shed = obs::GetCounter("serve/shed");
  obs::Counter& rejected = obs::GetCounter("serve/rejected");
  obs::Counter& deadline_exceeded =
      obs::GetCounter("serve/deadline_exceeded");
  obs::Counter& batch_failures = obs::GetCounter("serve/batch_failures");
  obs::Counter& stale_served = obs::GetCounter("serve/stale_served");
  obs::Counter& invalid_requests =
      obs::GetCounter("serve/invalid_requests");
  obs::Counter& catalog_requests = obs::GetCounter("serve/catalog_requests");
  obs::Gauge& resident = obs::GetGauge("serve/resident_sessions");
  obs::Histogram& latency = obs::GetHistogram("time/serve/request");
  obs::Histogram& queue_wait = obs::GetHistogram("serve/queue_wait");
  obs::Histogram& queue_depth =
      obs::GetHistogram("serve/queue_depth", obs::CountBounds());
  obs::Histogram& batch_size =
      obs::GetHistogram("serve/batch_size", obs::CountBounds());
  obs::Histogram& catalog_pool_size =
      obs::GetHistogram("serve/catalog_pool_size", obs::CountBounds());
};

ServeMetrics& Metrics() {
  static ServeMetrics* m = new ServeMetrics();
  return *m;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

RecommendService::RecommendService(models::SequentialRecommender* model,
                                   const ServeOptions& options)
    : model_(model), options_(options), store_(options.max_sessions) {
  STISAN_CHECK(model != nullptr);
  STISAN_CHECK_GE(options_.max_seq_len, 1);
  STISAN_CHECK_GE(options_.max_batch, 1);
  STISAN_CHECK_GE(options_.max_queue, 0);
  if (auto* stisan = dynamic_cast<core::StisanModel*>(model)) {
    engine_ = std::make_unique<core::IncrementalScorer>(stisan,
                                                        options_.max_seq_len);
  }
  if (options_.use_int8) {
    if (auto* module = dynamic_cast<nn::Module*>(model)) {
      quant_model_ = std::make_unique<quant::QuantizedModel>(*module);
    }
  }
  if (options_.poi_coords != nullptr) {
    STISAN_CHECK_GE(options_.catalog_pool_size, 1);
    STISAN_CHECK_GE(static_cast<int64_t>(options_.poi_coords->size()), 2);
    // Index id = poi - 1 (entry 0 is the padding POI).
    catalog_index_ = std::make_unique<geo::SpatialGridIndex>(
        std::vector<geo::GeoPoint>(options_.poi_coords->begin() + 1,
                                   options_.poi_coords->end()),
        options_.catalog_cell_km);
    geo::CandidatePoolOptions pool_options;
    pool_options.pool_size = options_.catalog_pool_size;
    catalog_gen_ = std::make_unique<geo::CandidateGenerator>(*catalog_index_,
                                                             pool_options);
  }
  if (options_.start_worker) {
    worker_ = std::thread([this] { WorkerLoop(); });
  }
}

RecommendService::~RecommendService() { Shutdown(); }

void RecommendService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
  // Whatever is still queued (pump-mode leftovers, ops the worker never
  // dequeued) resolves now: a typed error, never a broken promise.
  std::deque<Op> leftover;
  {
    std::lock_guard<std::mutex> lock(mu_);
    leftover.swap(queue_);
    processed_ops_ += leftover.size();
  }
  for (Op& op : leftover) {
    if (op.kind == OpKind::kScore && !op.resolved) {
      Fail(op, Status::Unavailable("service shut down with request pending"));
    }
  }
  drained_cv_.notify_all();
}

Status RecommendService::ValidateAppend(int64_t poi,
                                        double timestamp) const {
  if (poi == data::kPaddingPoi || poi < 0 ||
      (options_.num_pois > 0 && poi > options_.num_pois)) {
    return Status::InvalidArgument("POI id out of range: " +
                                   std::to_string(poi));
  }
  if (!std::isfinite(timestamp)) {
    return Status::InvalidArgument("non-finite timestamp");
  }
  return Status::OK();
}

Status RecommendService::ValidateScore(
    const std::vector<int64_t>& candidates) const {
  if (candidates.empty()) {
    return Status::InvalidArgument("empty candidate list");
  }
  for (int64_t poi : candidates) {
    if (poi == data::kPaddingPoi || poi < 0 ||
        (options_.num_pois > 0 && poi > options_.num_pois)) {
      return Status::InvalidArgument("candidate POI id out of range: " +
                                     std::to_string(poi));
    }
  }
  return Status::OK();
}

Status RecommendService::Enqueue(Op& op) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_) return Status::Unavailable("service stopped");
    if (options_.max_queue > 0 &&
        static_cast<int64_t>(queue_.size()) >= options_.max_queue) {
      switch (options_.queue_policy) {
        case QueuePolicy::kBlock:
          space_cv_.wait(lock, [this] {
            return stop_ || static_cast<int64_t>(queue_.size()) <
                                options_.max_queue;
          });
          if (stop_) return Status::Unavailable("service stopped");
          break;
        case QueuePolicy::kRejectNew:
          Metrics().rejected.Inc();
          return Status::ResourceExhausted("op queue full (kRejectNew)");
        case QueuePolicy::kShedOldest: {
          auto victim_it = std::find_if(
              queue_.begin(), queue_.end(),
              [](const Op& o) { return o.kind == OpKind::kScore; });
          if (victim_it == queue_.end()) {
            // Nothing sheddable (appends/evicts keep history consistent).
            Metrics().rejected.Inc();
            return Status::ResourceExhausted(
                "op queue full (kShedOldest, no sheddable request)");
          }
          Op victim = std::move(*victim_it);
          queue_.erase(victim_it);
          // The victim was admitted earlier; account it as processed so
          // Drain() still converges.
          ++processed_ops_;
          Metrics().shed.Inc();
          Fail(victim, Status::ResourceExhausted("shed under load"));
          drained_cv_.notify_all();
          break;
        }
      }
    }
    queue_.push_back(std::move(op));
    ++enqueued_ops_;
    Metrics().queue_depth.Observe(static_cast<double>(queue_.size()));
  }
  work_cv_.notify_one();
  return Status::OK();
}

Status RecommendService::Append(int64_t user, int64_t poi,
                                double timestamp) {
  Status valid = ValidateAppend(poi, timestamp);
  if (!valid.ok()) {
    Metrics().invalid_requests.Inc();
    return valid;
  }
  Op op;
  op.kind = OpKind::kAppend;
  op.user = user;
  op.poi = poi;
  op.timestamp = timestamp;
  op.enqueued = std::chrono::steady_clock::now();
  return Enqueue(op);
}

std::future<ScoreResult> RecommendService::ScoreAsync(
    int64_t user, std::vector<int64_t> candidates, int64_t deadline_us) {
  Op op;
  op.kind = OpKind::kScore;
  op.user = user;
  op.candidates = std::move(candidates);
  op.enqueued = std::chrono::steady_clock::now();
  std::future<ScoreResult> fut = op.promise.get_future();
  Status valid = ValidateScore(op.candidates);
  if (!valid.ok()) {
    Metrics().invalid_requests.Inc();
    Fail(op, std::move(valid));
    return fut;
  }
  if (deadline_us <= 0) deadline_us = options_.default_deadline_us;
  if (deadline_us > 0) {
    op.has_deadline = true;
    op.deadline = op.enqueued + std::chrono::microseconds(deadline_us);
  }
  Status admitted = Enqueue(op);
  if (!admitted.ok()) Fail(op, std::move(admitted));
  return fut;
}

ScoreResult RecommendService::Score(int64_t user,
                                    std::vector<int64_t> candidates) {
  std::future<ScoreResult> fut = ScoreAsync(user, std::move(candidates));
  if (!options_.start_worker) Pump();
  return fut.get();
}

std::future<ScoreResult> RecommendService::RankCatalogAsync(
    int64_t user, int64_t top_k, int64_t deadline_us) {
  Op op;
  op.kind = OpKind::kScore;
  op.catalog = true;
  op.user = user;
  op.top_k = top_k;
  op.enqueued = std::chrono::steady_clock::now();
  std::future<ScoreResult> fut = op.promise.get_future();
  if (catalog_gen_ == nullptr) {
    Metrics().invalid_requests.Inc();
    Fail(op, Status::FailedPrecondition(
                 "catalog ranking disabled (ServeOptions::poi_coords "
                 "not set)"));
    return fut;
  }
  if (top_k < 1) {
    Metrics().invalid_requests.Inc();
    Fail(op, Status::InvalidArgument("top_k must be >= 1"));
    return fut;
  }
  if (deadline_us <= 0) deadline_us = options_.default_deadline_us;
  if (deadline_us > 0) {
    op.has_deadline = true;
    op.deadline = op.enqueued + std::chrono::microseconds(deadline_us);
  }
  Status admitted = Enqueue(op);
  if (!admitted.ok()) Fail(op, std::move(admitted));
  return fut;
}

ScoreResult RecommendService::RankCatalog(int64_t user, int64_t top_k) {
  std::future<ScoreResult> fut = RankCatalogAsync(user, top_k);
  if (!options_.start_worker) Pump();
  return fut.get();
}

Status RecommendService::EvictSession(int64_t user) {
  Op op;
  op.kind = OpKind::kEvict;
  op.user = user;
  op.enqueued = std::chrono::steady_clock::now();
  return Enqueue(op);
}

size_t RecommendService::Pump() {
  STISAN_CHECK_MSG(!options_.start_worker,
                   "Pump() is only valid with start_worker = false");
  std::vector<Op> batch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch.assign(std::make_move_iterator(queue_.begin()),
                 std::make_move_iterator(queue_.end()));
    queue_.clear();
  }
  space_cv_.notify_all();
  const size_t n = batch.size();
  if (n > 0) Process(std::move(batch));
  return n;
}

void RecommendService::Drain() {
  if (!options_.start_worker) {
    Pump();
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  drained_cv_.wait(lock, [this] { return processed_ops_ == enqueued_ops_; });
}

void RecommendService::WorkerLoop() {
  for (;;) {
    std::vector<Op> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Leftover queue entries are resolved (kUnavailable) by Shutdown.
      if (stop_) return;
      if (options_.batch_window_us > 0) {
        // Coalescing window: let concurrent requests pile up so fallback
        // scores share one padded forward. Cut short once a full batch
        // is waiting, shutdown begins, or — deadline pressure — waiting
        // any longer would expire a queued request.
        auto cut = std::chrono::steady_clock::now() +
                   std::chrono::microseconds(options_.batch_window_us);
        auto tighten = [this, &cut] {
          for (const Op& op : queue_) {
            if (op.has_deadline && op.deadline < cut) cut = op.deadline;
          }
        };
        tighten();
        while (!stop_ &&
               static_cast<int64_t>(queue_.size()) < options_.max_batch &&
               std::chrono::steady_clock::now() < cut &&
               work_cv_.wait_until(lock, cut) != std::cv_status::timeout) {
          tighten();
        }
        if (stop_) return;
      }
      batch.assign(std::make_move_iterator(queue_.begin()),
                   std::make_move_iterator(queue_.end()));
      queue_.clear();
    }
    space_cv_.notify_all();
    if (!batch.empty()) Process(std::move(batch));
  }
}

void RecommendService::Fulfil(Op& op, std::vector<float> scores,
                              bool stale) {
  op.resolved = true;
  const double latency = SecondsSince(op.enqueued);
  Metrics().latency.Observe(latency);
  ScoreResult result;
  if (op.catalog) {
    // Catalog requests return the re-ranked pool: descending score, ties
    // by ascending POI id (deterministic), truncated to top_k.
    STISAN_CHECK_EQ(scores.size(), op.candidates.size());
    std::vector<size_t> order(scores.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      if (scores[a] != scores[b]) return scores[a] > scores[b];
      return op.candidates[a] < op.candidates[b];
    });
    const size_t keep =
        std::min(order.size(), static_cast<size_t>(op.top_k));
    result.pois.reserve(keep);
    result.scores.reserve(keep);
    for (size_t i = 0; i < keep; ++i) {
      result.pois.push_back(op.candidates[order[i]]);
      result.scores.push_back(scores[order[i]]);
    }
  } else {
    result.scores = std::move(scores);
  }
  result.latency_s = latency;
  result.stale = stale;
  op.promise.set_value(std::move(result));
}

void RecommendService::Fail(Op& op, Status status) {
  op.resolved = true;
  ScoreResult result;
  result.status = std::move(status);
  result.latency_s = SecondsSince(op.enqueued);
  op.promise.set_value(std::move(result));
}

// Last rung of degradation for a request whose deadline already expired:
// serve from the user's resident cached prefix when allowed (no sync, no
// fallback forward), else resolve kDeadlineExceeded. Never throws.
void RecommendService::ServeStaleOrExpire(Op& op) {
  ServeMetrics& m = Metrics();
  // Catalog ops whose deadline expired before stage one have no pool to
  // serve stale from; they expire directly.
  if (options_.allow_stale && engine_ != nullptr && !op.catalog) {
    Session* s = store_.Find(op.user);
    if (s != nullptr && s->resident && s->state != nullptr &&
        s->state->cached_len >= 1 &&
        s->state->cached_len <= static_cast<int64_t>(s->pois.size())) {
      const auto n = static_cast<size_t>(s->state->cached_len);
      try {
        std::vector<int64_t> pois(s->pois.begin(), s->pois.begin() + n);
        std::vector<double> ts(s->timestamps.begin(),
                               s->timestamps.begin() + n);
        std::vector<float> scores =
            engine_->Score(*s->state, pois, ts, op.candidates);
        m.stale_served.Inc();
        Fulfil(op, std::move(scores), /*stale=*/true);
        return;
      } catch (const std::exception& e) {
        m.batch_failures.Inc();
        Fail(op, Status::Internal(std::string("stale serve failed: ") +
                                  e.what()));
        return;
      }
    }
  }
  m.deadline_exceeded.Inc();
  Fail(op, Status::DeadlineExceeded("deadline expired before serving"));
}

void RecommendService::FlushFallback(std::vector<Op>* pending) {
  if (pending->empty()) return;
  ServeMetrics& m = Metrics();
  // Group by sequence length (the padded batch path shares one length per
  // forward), preserving arrival order within and across groups.
  std::vector<int64_t> lengths;
  for (const Op& op : *pending) {
    const int64_t n = static_cast<int64_t>(op.instance.poi.size());
    if (std::find(lengths.begin(), lengths.end(), n) == lengths.end()) {
      lengths.push_back(n);
    }
  }
  for (int64_t n : lengths) {
    std::vector<Op*> group;
    for (Op& op : *pending) {
      if (static_cast<int64_t>(op.instance.poi.size()) == n) {
        group.push_back(&op);
      }
    }
    for (size_t start = 0; start < group.size();
         start += static_cast<size_t>(options_.max_batch)) {
      const size_t end = std::min(
          group.size(), start + static_cast<size_t>(options_.max_batch));
      // Deadline re-check at the last moment before this chunk's forward:
      // ops that expired while coalescing — or while an earlier chunk of
      // this same flush was forwarding — leave through the stale /
      // deadline-exceeded rung instead of paying for a padded forward.
      const auto now = std::chrono::steady_clock::now();
      std::vector<Op*> chunk;
      std::vector<const data::EvalInstance*> instances;
      std::vector<std::vector<int64_t>> candidates;
      for (size_t i = start; i < end; ++i) {
        if (group[i]->has_deadline && now > group[i]->deadline) {
          ServeStaleOrExpire(*group[i]);
          continue;
        }
        chunk.push_back(group[i]);
        instances.push_back(&group[i]->instance);
        candidates.push_back(group[i]->candidates);
      }
      if (chunk.empty()) continue;
      // Exception barrier: a throwing forward fails exactly this chunk's
      // promises with kInternal; earlier chunks keep their scores and the
      // worker keeps serving.
      try {
        if (options_.fault_injector != nullptr) {
          options_.fault_injector->MaybeThrowOnBatch();
        }
        m.batch_size.Observe(static_cast<double>(instances.size()));
        auto scores = model_->ScoreBatch(instances, candidates);
        if (scores.size() != instances.size()) {
          throw std::runtime_error("ScoreBatch returned " +
                                   std::to_string(scores.size()) +
                                   " results for " +
                                   std::to_string(instances.size()) +
                                   " instances");
        }
        for (size_t i = 0; i < chunk.size(); ++i) {
          m.fallback.Inc();
          Fulfil(*chunk[i], std::move(scores[i]));
        }
      } catch (const std::exception& e) {
        m.batch_failures.Inc();
        for (Op* op : chunk) {
          if (!op->resolved) {
            Fail(*op,
                 Status::Internal(std::string("batch forward failed: ") +
                                  e.what()));
          }
        }
      }
    }
  }
  pending->clear();
}

void RecommendService::ServeScore(Op& op, std::vector<Op>* pending) {
  ServeMetrics& m = Metrics();
  m.requests.Inc();
  if (op.has_deadline && std::chrono::steady_clock::now() > op.deadline) {
    ServeStaleOrExpire(op);
    return;
  }
  ServeFaultInjector* inj = options_.fault_injector;
  if (inj != nullptr && inj->ShouldEvictBeforeScore()) {
    store_.Evict(op.user);
  }
  Session& s = store_.GetOrCreate(op.user);
  const int64_t len = static_cast<int64_t>(s.pois.size());
  if (op.catalog) {
    m.catalog_requests.Inc();
    if (len == 0) {
      // No history = no query location; the caller should seed the user
      // with Append first.
      Fail(op, Status::FailedPrecondition(
                   "catalog ranking needs at least one check-in for user " +
                   std::to_string(op.user)));
      return;
    }
    if (!GenerateCatalogPool(op, s)) return;
    if (op.candidates.empty()) {
      // Everything in range is already visited: a valid empty result.
      Fulfil(op, {});
      return;
    }
  }
  if (len == 0) {
    // Cold start: nothing to condition on; scores are all zero.
    if (inj != nullptr) inj->MaybeThrowOnScore();
    m.cold_starts.Inc();
    Fulfil(op, std::vector<float>(op.candidates.size(), 0.0f));
    return;
  }
  if (engine_ != nullptr && len <= options_.max_seq_len) {
    const int64_t evictions_before = store_.evictions();
    store_.MarkResident(s, s.state ? nullptr : engine_->NewState());
    m.evictions.Inc(
        static_cast<uint64_t>(store_.evictions() - evictions_before));
    if (s.state->cached_len == 0 && len > 1) m.cold_builds.Inc();
    if (inj != nullptr) inj->MaybeThrowOnScore();
    const int64_t rebuilds = engine_->Sync(*s.state, s.pois, s.timestamps);
    m.rebuilds.Inc(static_cast<uint64_t>(rebuilds));
    std::vector<float> scores =
        engine_->Score(*s.state, s.pois, s.timestamps, op.candidates);
    m.incremental.Inc();
    Fulfil(op, std::move(scores));
    return;
  }
  // Fallback: trailing window through the padded batch path.
  const int64_t n = std::min<int64_t>(len, options_.max_seq_len);
  op.instance.user = op.user;
  op.instance.poi.assign(s.pois.end() - n, s.pois.end());
  op.instance.t.assign(s.timestamps.end() - n, s.timestamps.end());
  op.instance.first_real = 0;
  op.handed_off = true;
  pending->push_back(std::move(op));
  if (static_cast<int64_t>(pending->size()) >= options_.max_batch) {
    FlushFallback(pending);
  }
}

bool RecommendService::GenerateCatalogPool(Op& op, const Session& session) {
  ServeMetrics& m = Metrics();
  const int64_t last_poi = session.pois.back();
  if (last_poi <= 0 ||
      last_poi >= static_cast<int64_t>(options_.poi_coords->size())) {
    // History POIs are validated on Append against options.num_pois; a
    // mismatch with the coordinate table is a configuration fault.
    Fail(op, Status::Internal("history POI outside the catalog: " +
                              std::to_string(last_poi)));
    return false;
  }
  const std::unordered_set<int64_t> visited(session.pois.begin(),
                                            session.pois.end());
  std::vector<int64_t> pool;
  catalog_gen_->Generate(
      (*options_.poi_coords)[static_cast<size_t>(last_poi)],
      [&visited](int64_t id) { return !visited.contains(id + 1); },
      &catalog_scratch_, &pool);
  m.catalog_pool_size.Observe(static_cast<double>(pool.size()));
  op.candidates.clear();
  op.candidates.reserve(pool.size());
  for (int64_t id : pool) op.candidates.push_back(id + 1);
  return true;
}

void RecommendService::Process(std::vector<Op> ops) {
  // All scoring paths below (incremental, fallback batch, stale serves,
  // and the cache syncs that feed them) run on this thread, so one scoped
  // flag quantizes the whole service when opted in.
  std::optional<quant::ScopedInt8> int8_guard;
  if (quant_model_ != nullptr) int8_guard.emplace();
  ServeMetrics& m = Metrics();
  if (options_.fault_injector != nullptr) {
    options_.fault_injector->OnBatchDequeued();
  }
  for (const Op& op : ops) m.queue_wait.Observe(SecondsSince(op.enqueued));
  std::vector<Op> pending;
  auto pending_user = [&pending](int64_t user) {
    for (const Op& op : pending) {
      if (op.user == user) return true;
    }
    return false;
  };
  const size_t count = ops.size();
  for (Op& op : ops) {
    switch (op.kind) {
      case OpKind::kAppend: {
        // Per-user FIFO: a queued fallback score must observe the history
        // as of its own arrival, so flush before mutating it. The barrier
        // swallows (state-mutation ops carry no promise): the worker must
        // outlive any single failed op.
        try {
          if (pending_user(op.user)) FlushFallback(&pending);
          store_.Append(op.user, op.poi, op.timestamp);
          m.appends.Inc();
          Session& s = store_.GetOrCreate(op.user);
          if (engine_ != nullptr && s.resident &&
              static_cast<int64_t>(s.pois.size()) > options_.max_seq_len) {
            // Past the serving window the cached rows no longer mirror
            // the (windowed) full forward; release them.
            store_.Evict(op.user);
            m.overflows.Inc();
          }
        } catch (const std::exception&) {
          m.batch_failures.Inc();
        }
        break;
      }
      case OpKind::kEvict: {
        try {
          if (pending_user(op.user)) FlushFallback(&pending);
          store_.Evict(op.user);
        } catch (const std::exception&) {
          m.batch_failures.Inc();
        }
        break;
      }
      case OpKind::kScore: {
        // Exception barrier: a throwing scorer (model fault, injected
        // fault, internal inconsistency) fails only this request with
        // kInternal; the worker — and every other queued request —
        // keeps going.
        try {
          ServeScore(op, &pending);
        } catch (const std::exception& e) {
          if (!op.resolved && !op.handed_off) {
            m.batch_failures.Inc();
            Fail(op, Status::Internal(std::string("scorer failed: ") +
                                      e.what()));
          }
        }
        break;
      }
    }
  }
  FlushFallback(&pending);
  m.resident.Set(static_cast<double>(store_.resident_count()));
  {
    std::lock_guard<std::mutex> lock(mu_);
    processed_ops_ += count;
  }
  drained_cv_.notify_all();
}

}  // namespace stisan::serve
