// Fault-injection hooks for the serving runtime, in the spirit of
// util::FaultInjectionEnv (io_env.h): tests install a declarative plan and
// the service calls back at well-defined points on its worker/pump thread.
//
// Injectable faults:
//   - scorer throws: every Nth score op raises ServeFaultError from inside
//     the scoring path (incremental or fallback), exercising the worker's
//     exception barrier — the affected request must resolve with kInternal
//     and the service must keep serving;
//   - batch throws: every Nth fallback ScoreBatch call fails before the
//     forward, so an entire coalesced batch's promises must resolve;
//   - forced evictions: every Nth score first drops the serving user's
//     resident cache state (history kept), forcing a mid-batch cold
//     rebuild that must stay bit-identical;
//   - injected latency: a fixed delay before each dequeued batch is
//     processed, inflating queue wait so deadline/shed paths trigger
//     under test control.
//
// All counters are atomics: the plan is installed from the test thread
// before load is applied, hooks run on the worker thread, and tests read
// the counters after Drain()/shutdown.

#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>

namespace stisan::serve {

/// Exception raised by injected scorer/batch faults. Deliberately derived
/// from std::runtime_error: the service's barrier must not special-case
/// it — any std::exception escaping the scoring path gets the same
/// kInternal treatment.
struct ServeFaultError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Declarative fault plan. A zero period disables that fault; period k
/// fires on the k-th, 2k-th, ... occurrence since SetPlan().
struct ServeFaultPlan {
  /// Throw ServeFaultError from the scoring path on every Nth score op.
  int64_t throw_every_scores = 0;
  /// Throw ServeFaultError before every Nth fallback ScoreBatch forward.
  int64_t throw_every_batches = 0;
  /// Force-evict the serving user's cache state before every Nth score.
  int64_t evict_every_scores = 0;
  /// Sleep this long before processing each dequeued batch.
  int64_t batch_latency_us = 0;
};

class ServeFaultInjector {
 public:
  ServeFaultInjector() = default;

  /// Installs a new plan and resets all occurrence counters.
  void SetPlan(const ServeFaultPlan& plan);
  const ServeFaultPlan& plan() const { return plan_; }

  // ---- Hooks (called by RecommendService on its processing thread) ----

  /// Called once per dequeued batch, before any op is applied. Sleeps
  /// plan().batch_latency_us.
  void OnBatchDequeued();

  /// Called before a score op is served. Returns true when the plan wants
  /// the user's cache state force-evicted first.
  bool ShouldEvictBeforeScore();

  /// Called from inside the scoring path; throws ServeFaultError when the
  /// plan's score-throw period fires.
  void MaybeThrowOnScore();

  /// Called before each fallback ScoreBatch forward; throws
  /// ServeFaultError when the batch-throw period fires.
  void MaybeThrowOnBatch();

  // ---- Counters (read by tests after Drain()/shutdown) ----

  int64_t scores_seen() const { return scores_seen_.load(); }
  int64_t batches_seen() const { return batches_seen_.load(); }
  int64_t score_throws() const { return score_throws_.load(); }
  int64_t batch_throws() const { return batch_throws_.load(); }
  int64_t forced_evictions() const { return forced_evictions_.load(); }

 private:
  ServeFaultPlan plan_;
  std::atomic<int64_t> scores_seen_{0};
  std::atomic<int64_t> evict_clock_{0};
  std::atomic<int64_t> batches_seen_{0};
  std::atomic<int64_t> score_throws_{0};
  std::atomic<int64_t> batch_throws_{0};
  std::atomic<int64_t> forced_evictions_{0};
};

}  // namespace stisan::serve
