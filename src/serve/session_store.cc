#include "serve/session_store.h"

#include <utility>

#include "util/check.h"

namespace stisan::serve {

SessionStore::SessionStore(int64_t max_resident)
    : max_resident_(max_resident) {
  STISAN_CHECK_GE(max_resident_, 1);
}

Session& SessionStore::GetOrCreate(int64_t user) {
  auto [it, inserted] = sessions_.try_emplace(user);
  if (inserted) it->second.user = user;
  return it->second;
}

Session* SessionStore::Find(int64_t user) {
  auto it = sessions_.find(user);
  return it == sessions_.end() ? nullptr : &it->second;
}

const Session* SessionStore::Find(int64_t user) const {
  auto it = sessions_.find(user);
  return it == sessions_.end() ? nullptr : &it->second;
}

void SessionStore::Append(int64_t user, int64_t poi, double timestamp) {
  Session& s = GetOrCreate(user);
  s.pois.push_back(poi);
  s.timestamps.push_back(timestamp);
}

void SessionStore::DropState(Session& session) {
  if (!session.resident) return;
  lru_.erase(session.lru_it);
  session.resident = false;
  session.state.reset();
}

void SessionStore::MarkResident(Session& session,
                                std::unique_ptr<core::IncrementalState> state) {
  if (session.resident) {
    // Refresh recency.
    lru_.erase(session.lru_it);
  } else {
    if (!session.state) {
      STISAN_CHECK(state != nullptr);
      session.state = std::move(state);
    }
    session.resident = true;
  }
  lru_.push_front(session.user);
  session.lru_it = lru_.begin();
  while (static_cast<int64_t>(lru_.size()) > max_resident_) {
    Session* victim = Find(lru_.back());
    STISAN_CHECK(victim != nullptr);
    DropState(*victim);
    ++evictions_;
  }
}

void SessionStore::Evict(int64_t user) {
  if (Session* s = Find(user)) DropState(*s);
}

}  // namespace stisan::serve
