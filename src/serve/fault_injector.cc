#include "serve/fault_injector.h"

#include <chrono>
#include <thread>

namespace stisan::serve {

void ServeFaultInjector::SetPlan(const ServeFaultPlan& plan) {
  plan_ = plan;
  scores_seen_.store(0);
  evict_clock_.store(0);
  batches_seen_.store(0);
  score_throws_.store(0);
  batch_throws_.store(0);
  forced_evictions_.store(0);
}

void ServeFaultInjector::OnBatchDequeued() {
  if (plan_.batch_latency_us > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(plan_.batch_latency_us));
  }
}

bool ServeFaultInjector::ShouldEvictBeforeScore() {
  const int64_t n = evict_clock_.fetch_add(1) + 1;
  if (plan_.evict_every_scores <= 0 || n % plan_.evict_every_scores != 0) {
    return false;
  }
  forced_evictions_.fetch_add(1);
  return true;
}

void ServeFaultInjector::MaybeThrowOnScore() {
  const int64_t n = scores_seen_.fetch_add(1) + 1;
  if (plan_.throw_every_scores <= 0 || n % plan_.throw_every_scores != 0) {
    return;
  }
  score_throws_.fetch_add(1);
  throw ServeFaultError("injected scorer fault");
}

void ServeFaultInjector::MaybeThrowOnBatch() {
  const int64_t n = batches_seen_.fetch_add(1) + 1;
  if (plan_.throw_every_batches <= 0 || n % plan_.throw_every_batches != 0) {
    return;
  }
  batch_throws_.fetch_add(1);
  throw ServeFaultError("injected batch fault");
}

}  // namespace stisan::serve
