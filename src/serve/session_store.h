// Per-user session store for the serving runtime.
//
// A session is a user's append-only check-in history plus, optionally, the
// heavy incremental cache state (per-block K/V rows etc., see
// core/incremental.h). Histories are cheap (two scalars per visit) and are
// kept for every user ever seen; the cache states are ~O(max_len * d *
// blocks) floats each, so only `max_resident` of them stay materialised,
// evicted LRU by user. An evicted session keeps its history and pays one
// cold cache rebuild when the user returns.
//
// Single-threaded by design: the service serialises all access through its
// op queue (one worker), which is also what makes eviction order — and
// therefore the serve obs counters — deterministic for a given op order.

#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/incremental.h"

namespace stisan::serve {

struct Session {
  int64_t user = 0;
  std::vector<int64_t> pois;
  std::vector<double> timestamps;
  // Resident cache state; null when cold, evicted, or the model has no
  // incremental engine.
  std::unique_ptr<core::IncrementalState> state;
  bool resident = false;
  std::list<int64_t>::iterator lru_it;  // valid only while resident
};

class SessionStore {
 public:
  explicit SessionStore(int64_t max_resident);

  /// Finds or creates the session (history only; does not make it
  /// resident).
  Session& GetOrCreate(int64_t user);

  /// Null when the user has never been seen.
  Session* Find(int64_t user);
  const Session* Find(int64_t user) const;

  /// Appends one visit to the user's history.
  void Append(int64_t user, int64_t poi, double timestamp);

  /// Marks the session resident (installing `state` as its cache slot if
  /// it has none), refreshes its LRU position, and evicts the
  /// least-recently-used other resident session when over the cap.
  void MarkResident(Session& session,
                    std::unique_ptr<core::IncrementalState> state);

  /// Drops the session's cache state (history kept). No-op for unknown
  /// users or non-resident sessions.
  void Evict(int64_t user);

  int64_t size() const { return static_cast<int64_t>(sessions_.size()); }
  int64_t resident_count() const {
    return static_cast<int64_t>(lru_.size());
  }
  int64_t max_resident() const { return max_resident_; }
  /// Total capacity evictions performed (explicit Evict calls excluded).
  int64_t evictions() const { return evictions_; }

 private:
  void DropState(Session& session);

  int64_t max_resident_;
  // Node-based map: Session references stay valid across inserts.
  std::unordered_map<int64_t, Session> sessions_;
  std::list<int64_t> lru_;  // front = most recently used resident user
  int64_t evictions_ = 0;
};

}  // namespace stisan::serve
