// Long-lived recommendation service over a preloaded frozen model.
//
// Library only — no network. Callers enqueue per-user operations:
//
//   Append(user, poi, t)  — record a check-in
//   ScoreAsync(user, C)   — score candidate POIs against the user's history
//
// A single worker drains the queue (optionally waiting a coalescing window
// so concurrent requests batch), applies appends in arrival order, serves
// incremental-capable requests straight from the user's cached state
// (core::IncrementalScorer — O(new-token) per append), and coalesces the
// rest (non-STiSAN models, histories past the serving window) into the
// model's eval::BatchScorer padded-[B, n, d] path, grouped by sequence
// length. Per-user FIFO ordering is preserved: a queued fallback score
// flushes before a later op for the same user is applied.
//
// Determinism contract (pinned by tests/serve_test.cpp): per-user scores
// are bit-identical to a cold model->Score on the same history, whatever
// the arrival interleaving, coalescing window, batch cap, thread count, or
// eviction pattern. The serve/* obs counters depend only on the op order,
// not on how ops were batched.
//
// Observability (src/obs): counters serve/appends, serve/requests,
// serve/incremental_scored, serve/fallback_scored, serve/cold_starts,
// serve/cache_rebuilds, serve/cold_builds, serve/evictions,
// serve/overflows; histograms time/serve/request (enqueue -> fulfil),
// serve/queue_depth, serve/batch_size; gauge serve/resident_sessions.

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "data/types.h"
#include "models/recommender.h"
#include "serve/session_store.h"

namespace stisan::serve {

struct ServeOptions {
  /// Cap on resident per-user cache states (LRU-evicted; histories are
  /// always kept).
  int64_t max_sessions = 4096;
  /// Serving window: histories longer than this are scored on their
  /// trailing window through the full batched path.
  int64_t max_seq_len = 100;
  /// Coalescing window in microseconds: after picking up work the worker
  /// keeps draining arrivals this long (or until max_batch ops are
  /// queued) before processing. 0 = process immediately.
  int64_t batch_window_us = 0;
  /// Cap on instances per fallback ScoreBatch call.
  int64_t max_batch = 32;
  /// false = no worker thread; the caller drives processing with Pump()
  /// (deterministic in-thread mode for tests and benchmarks).
  bool start_worker = true;
};

struct ScoreResult {
  std::vector<float> scores;
  /// Enqueue -> fulfil latency as observed by the service, seconds.
  double latency_s = 0.0;
};

class RecommendService {
 public:
  /// The model must outlive the service and stay frozen while serving.
  /// STiSAN models get the incremental engine; any other
  /// SequentialRecommender serves through the batched fallback only.
  RecommendService(models::SequentialRecommender* model,
                   const ServeOptions& options);
  ~RecommendService();

  RecommendService(const RecommendService&) = delete;
  RecommendService& operator=(const RecommendService&) = delete;

  /// Records a check-in. Returns after enqueuing (the append is applied in
  /// arrival order before any later op).
  void Append(int64_t user, int64_t poi, double timestamp);

  /// Scores `candidates` against the user's current history. Users with no
  /// history resolve to all-zero scores (cold start). The future is
  /// fulfilled by the worker (or by the next Pump()).
  std::future<ScoreResult> ScoreAsync(int64_t user,
                                      std::vector<int64_t> candidates);

  /// Synchronous convenience: enqueue, (pump when no worker), wait.
  ScoreResult Score(int64_t user, std::vector<int64_t> candidates);

  /// Drops the user's cached state (history kept) — applied in queue
  /// order. Tests use this to force mid-sequence evictions.
  void EvictSession(int64_t user);

  /// Processes everything currently queued on the calling thread; only
  /// valid with start_worker = false. Returns the number of ops processed.
  size_t Pump();

  /// Blocks until every op enqueued so far has been processed.
  void Drain();

  const ServeOptions& options() const { return options_; }
  /// True when the model supports the incremental path.
  bool incremental() const { return engine_ != nullptr; }

 private:
  enum class OpKind { kAppend, kScore, kEvict };
  struct Op {
    OpKind kind = OpKind::kAppend;
    int64_t user = 0;
    int64_t poi = 0;
    double timestamp = 0.0;
    std::vector<int64_t> candidates;
    std::promise<ScoreResult> promise;
    std::chrono::steady_clock::time_point enqueued;
    // Fallback scores carry their windowed instance while pending.
    data::EvalInstance instance;
  };

  void Enqueue(Op op);
  void WorkerLoop();
  void Process(std::vector<Op> ops);
  void ServeScore(Op op, std::vector<Op>* pending);
  void FlushFallback(std::vector<Op>* pending);
  void Fulfil(Op& op, std::vector<float> scores);

  models::SequentialRecommender* model_;
  ServeOptions options_;
  std::unique_ptr<core::IncrementalScorer> engine_;
  SessionStore store_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable drained_cv_;
  std::deque<Op> queue_;
  uint64_t enqueued_ops_ = 0;
  uint64_t processed_ops_ = 0;
  bool stop_ = false;
  std::thread worker_;
};

}  // namespace stisan::serve
