// Long-lived recommendation service over a preloaded frozen model.
//
// Library only — no network. Callers enqueue per-user operations:
//
//   Append(user, poi, t)        — record a check-in
//   ScoreAsync(user, C)         — score candidate POIs against the history
//   RankCatalogAsync(user, k)   — opt-in two-stage "rank the whole city":
//     geo-pruned candidate pool around the user's latest check-in, re-ranked
//     by the model, top-k returned (DESIGN.md §17)
//
// A single worker drains the queue (optionally waiting a coalescing window
// so concurrent requests batch), applies appends in arrival order, serves
// incremental-capable requests straight from the user's cached state
// (core::IncrementalScorer — O(new-token) per append), and coalesces the
// rest (non-STiSAN models, histories past the serving window) into the
// model's eval::BatchScorer padded-[B, n, d] path, grouped by sequence
// length. Per-user FIFO ordering is preserved: a queued fallback score
// flushes before a later op for the same user is applied.
//
// Overload safety (DESIGN.md §15): every request resolves — with scores or
// with a typed util::Status — and no input, fault, or load level crashes
// the service or leaks a broken promise.
//
//   - Admission control: `max_queue` bounds the op queue; over the bound
//     the `queue_policy` either blocks the producer (kBlock), rejects the
//     new op (kRejectNew, kResourceExhausted), or sheds the oldest queued
//     score to admit the new op (kShedOldest).
//   - Deadlines: per-request (or `default_deadline_us`) deadlines are
//     checked at dequeue and again before the fallback batch forward;
//     expired requests resolve kDeadlineExceeded — or, with `allow_stale`,
//     degrade to a stale serve from the user's resident cached prefix
//     (the last rung before giving up). Deadline pressure also cuts the
//     coalescing window short.
//   - Fault tolerance: an exception barrier around the scoring paths
//     resolves only the affected request/batch with kInternal and keeps
//     the worker alive; Shutdown() (and the destructor) resolve every
//     still-pending promise with kUnavailable, and ops submitted after
//     shutdown fail fast instead of blocking.
//   - Input validation: padding/out-of-range POI ids, non-finite
//     timestamps and empty candidate lists are rejected per-request with
//     kInvalidArgument instead of CHECK-aborting the process.
//
// Determinism contract (pinned by tests/serve_test.cpp): per-user scores
// of *accepted* requests are bit-identical to a cold model->Score on the
// same history, whatever the arrival interleaving, coalescing window,
// batch cap, thread count, eviction pattern, or surrounding faults.
//
// Observability (src/obs): counters serve/appends, serve/requests,
// serve/incremental_scored, serve/fallback_scored, serve/cold_starts,
// serve/cache_rebuilds, serve/cold_builds, serve/evictions,
// serve/overflows, serve/shed, serve/rejected, serve/deadline_exceeded,
// serve/batch_failures, serve/stale_served, serve/invalid_requests,
// serve/catalog_requests; histograms time/serve/request (enqueue ->
// fulfil), serve/queue_wait (enqueue -> dequeue), serve/queue_depth,
// serve/batch_size, serve/catalog_pool_size; gauge
// serve/resident_sessions.

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "data/types.h"
#include "geo/candidate_gen.h"
#include "models/recommender.h"
#include "serve/fault_injector.h"
#include "serve/session_store.h"
#include "util/status.h"

namespace stisan::quant {
class QuantizedModel;
}

namespace stisan::serve {

/// What to do with a new op when the queue is at max_queue.
enum class QueuePolicy {
  /// Block the producer until the worker makes room (backpressure).
  /// Requires someone else to drain the queue: only meaningful with the
  /// worker thread, or with Pump() driven from a different thread.
  kBlock,
  /// Fail the new op immediately with kResourceExhausted.
  kRejectNew,
  /// Resolve the oldest queued *score* with kResourceExhausted and admit
  /// the new op. Appends/evicts are never shed (history must stay
  /// consistent); when no score is queued, falls back to kRejectNew.
  kShedOldest,
};

struct ServeOptions {
  /// Cap on resident per-user cache states (LRU-evicted; histories are
  /// always kept).
  int64_t max_sessions = 4096;
  /// Serving window: histories longer than this are scored on their
  /// trailing window through the full batched path.
  int64_t max_seq_len = 100;
  /// Coalescing window in microseconds: after picking up work the worker
  /// keeps draining arrivals this long (or until max_batch ops are
  /// queued) before processing. 0 = process immediately. Cut short when a
  /// queued request's deadline would expire inside the window.
  int64_t batch_window_us = 0;
  /// Cap on instances per fallback ScoreBatch call.
  int64_t max_batch = 32;
  /// false = no worker thread; the caller drives processing with Pump()
  /// (deterministic in-thread mode for tests and benchmarks).
  bool start_worker = true;
  /// Admission control: max ops queued at once (0 = unbounded) and the
  /// policy applied when the bound is hit.
  int64_t max_queue = 0;
  QueuePolicy queue_policy = QueuePolicy::kBlock;
  /// Default per-request deadline in microseconds from enqueue
  /// (0 = none); ScoreAsync overloads may override per request.
  int64_t default_deadline_us = 0;
  /// Graceful degradation: serve requests whose deadline already expired
  /// from the user's resident cached prefix (no sync, no fallback
  /// forward) instead of failing them with kDeadlineExceeded.
  bool allow_stale = false;
  /// POI catalog size for request validation (ids are 1-based; 0 = only
  /// reject padding/negative ids).
  int64_t num_pois = 0;
  /// Test-only fault hooks (see fault_injector.h); must outlive the
  /// service. nullptr in production.
  ServeFaultInjector* fault_injector = nullptr;
  /// Opt-in post-training int8 scoring: the service quantizes the model's
  /// weights at construction (src/quant) and every scoring path —
  /// incremental, fallback batch, and stale serves — runs with int8 GEMMs
  /// and embedding gathers. Scores stay deterministic and the per-user
  /// bit-identity contract holds *within* the int8 path, but scores are
  /// not bit-identical to fp32 serving (see DESIGN.md §16). Ignored for
  /// models that are not nn::Modules.
  bool use_int8 = false;
  /// Opt-in "rank the whole city" requests (RankCatalogAsync; DESIGN.md
  /// §17): POI coordinates indexed by id, entry 0 = the padding POI —
  /// i.e. Dataset::poi_coords. Must outlive the service. nullptr (the
  /// default) leaves catalog ranking disabled: RankCatalogAsync resolves
  /// kFailedPrecondition.
  const std::vector<geo::GeoPoint>* poi_coords = nullptr;
  /// Stage-one pool size for catalog requests: how many not-yet-visited
  /// POIs around the user's latest check-in get re-ranked by the model.
  int64_t catalog_pool_size = 500;
  /// Grid resolution (km) for the catalog's sparse spatial index.
  double catalog_cell_km = 2.0;
};

struct ScoreResult {
  /// OK iff `scores` is valid. Error codes: kInvalidArgument (bad
  /// request), kResourceExhausted (shed / rejected under load),
  /// kDeadlineExceeded, kUnavailable (service stopped), kInternal
  /// (scorer fault — the request failed but the service kept running).
  Status status;
  std::vector<float> scores;
  /// Catalog requests only: the re-ranked POI ids aligned with `scores`
  /// (descending score, ties by ascending id, truncated to top_k). Empty
  /// for plain ScoreAsync requests, whose scores align with the caller's
  /// candidate list instead.
  std::vector<int64_t> pois;
  /// Enqueue -> fulfil latency as observed by the service, seconds.
  double latency_s = 0.0;
  /// True when the result was served from the resident cached prefix
  /// under deadline pressure (allow_stale) instead of the full history.
  bool stale = false;

  bool ok() const { return status.ok(); }
};

class RecommendService {
 public:
  /// The model must outlive the service and stay frozen while serving.
  /// STiSAN models get the incremental engine; any other
  /// SequentialRecommender serves through the batched fallback only.
  RecommendService(models::SequentialRecommender* model,
                   const ServeOptions& options);
  ~RecommendService();

  RecommendService(const RecommendService&) = delete;
  RecommendService& operator=(const RecommendService&) = delete;

  /// Records a check-in. Returns OK after enqueuing (the append is
  /// applied in arrival order before any later op), kInvalidArgument for
  /// padding/out-of-range POIs or non-finite timestamps,
  /// kResourceExhausted when admission control rejects it, kUnavailable
  /// after shutdown.
  Status Append(int64_t user, int64_t poi, double timestamp);

  /// Scores `candidates` against the user's current history. Users with
  /// no history resolve to all-zero scores (cold start). The future is
  /// always valid and always resolves — with scores, or with a typed
  /// error status (never a broken promise). `deadline_us` microseconds
  /// from now (<= 0 = use options().default_deadline_us).
  std::future<ScoreResult> ScoreAsync(int64_t user,
                                      std::vector<int64_t> candidates,
                                      int64_t deadline_us);
  std::future<ScoreResult> ScoreAsync(int64_t user,
                                      std::vector<int64_t> candidates) {
    return ScoreAsync(user, std::move(candidates), 0);
  }

  /// Synchronous convenience: enqueue, (pump when no worker), wait. On a
  /// stopped service returns kUnavailable instead of blocking.
  ScoreResult Score(int64_t user, std::vector<int64_t> candidates);

  /// Two-stage full-catalog request (DESIGN.md §17): stage one retrieves
  /// the catalog_pool_size not-yet-visited POIs nearest the user's most
  /// recent check-in from the service's sparse spatial index; stage two
  /// re-ranks the pool through the normal scoring paths (incremental or
  /// fallback). The result carries the top_k best POIs in `pois` with
  /// aligned `scores`. Resolves kFailedPrecondition when catalog ranking
  /// is disabled (options.poi_coords == nullptr) or the user has no
  /// history (no query location); kInvalidArgument for top_k < 1. An
  /// empty neighbourhood resolves OK with empty lists. Same admission,
  /// deadline and fault semantics as ScoreAsync, except expired catalog
  /// requests never serve stale (the stale rung has no pool).
  std::future<ScoreResult> RankCatalogAsync(int64_t user, int64_t top_k,
                                            int64_t deadline_us);
  std::future<ScoreResult> RankCatalogAsync(int64_t user, int64_t top_k) {
    return RankCatalogAsync(user, top_k, 0);
  }

  /// Synchronous convenience for RankCatalogAsync.
  ScoreResult RankCatalog(int64_t user, int64_t top_k);

  /// Drops the user's cached state (history kept) — applied in queue
  /// order. Tests use this to force mid-sequence evictions. Same
  /// admission/shutdown errors as Append.
  Status EvictSession(int64_t user);

  /// Processes everything currently queued on the calling thread; only
  /// valid with start_worker = false. Returns the number of ops
  /// processed. Safe to drive from one thread while others enqueue.
  size_t Pump();

  /// Blocks until every op enqueued so far has been processed.
  void Drain();

  /// Stops accepting work, joins the worker, and resolves every
  /// still-pending promise with kUnavailable. Idempotent; also run by
  /// the destructor. Ops already dequeued by the worker finish normally.
  void Shutdown();

  const ServeOptions& options() const { return options_; }
  /// True when the model supports the incremental path.
  bool incremental() const { return engine_ != nullptr; }
  /// True when scoring runs through the quantized int8 path.
  bool int8() const { return quant_model_ != nullptr; }

 private:
  enum class OpKind { kAppend, kScore, kEvict };
  struct Op {
    OpKind kind = OpKind::kAppend;
    int64_t user = 0;
    int64_t poi = 0;
    double timestamp = 0.0;
    std::vector<int64_t> candidates;
    /// Catalog requests: stage one fills `candidates` at serve time and
    /// Fulfil re-ranks/truncates to the top_k best.
    bool catalog = false;
    int64_t top_k = 0;
    std::promise<ScoreResult> promise;
    std::chrono::steady_clock::time_point enqueued;
    // Absolute deadline; meaningful only when has_deadline.
    std::chrono::steady_clock::time_point deadline;
    bool has_deadline = false;
    // Barrier bookkeeping: `resolved` is set once the promise has been
    // fulfilled; `handed_off` is set just before the op moves into the
    // pending fallback batch (whose flush resolves it), so the worker's
    // catch block knows the stack copy no longer owns the promise.
    bool resolved = false;
    bool handed_off = false;
    // Fallback scores carry their windowed instance while pending.
    data::EvalInstance instance;
  };

  /// Admission + enqueue. On error the op is NOT consumed (score ops are
  /// failed by the caller through their own promise).
  Status Enqueue(Op& op);
  Status ValidateAppend(int64_t poi, double timestamp) const;
  Status ValidateScore(const std::vector<int64_t>& candidates) const;
  void WorkerLoop();
  /// Never throws; every score op it receives gets resolved.
  void Process(std::vector<Op> ops);
  void ServeScore(Op& op, std::vector<Op>* pending);
  void ServeStaleOrExpire(Op& op);
  void FlushFallback(std::vector<Op>* pending);
  void Fulfil(Op& op, std::vector<float> scores, bool stale = false);
  void Fail(Op& op, Status status);

  /// Stage one for a catalog op: fills op.candidates with the unvisited
  /// pool around the user's latest check-in. Returns false (after
  /// resolving the op) when the request cannot be served.
  bool GenerateCatalogPool(Op& op, const Session& session);

  models::SequentialRecommender* model_;
  ServeOptions options_;
  std::unique_ptr<core::IncrementalScorer> engine_;
  std::unique_ptr<quant::QuantizedModel> quant_model_;
  SessionStore store_;
  /// Catalog ranking stage one (built iff options.poi_coords is set);
  /// index id = poi - 1. Only the single worker (or Pump caller) touches
  /// the scratch.
  std::unique_ptr<geo::SpatialGridIndex> catalog_index_;
  std::unique_ptr<geo::CandidateGenerator> catalog_gen_;
  geo::SpatialGridIndex::QueryScratch catalog_scratch_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable drained_cv_;
  std::condition_variable space_cv_;
  std::deque<Op> queue_;
  uint64_t enqueued_ops_ = 0;
  uint64_t processed_ops_ = 0;
  bool stop_ = false;
  std::thread worker_;
};

}  // namespace stisan::serve
