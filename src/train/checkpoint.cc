#include "train/checkpoint.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/check.h"
#include "util/io_env.h"
#include "util/serialize.h"
#include "util/string_util.h"

namespace stisan::train {
namespace {

constexpr uint64_t kTrainerCheckpointMagic = 0x53544953414e5431ull;  // "STISANT1"
constexpr uint64_t kTrainerCheckpointVersion = 1;

constexpr char kCheckpointPrefix[] = "ckpt-";
constexpr char kCheckpointSuffix[] = ".bin";

/// Parses "ckpt-<epoch>.bin" into the epoch; -1 when the name differs.
int64_t EpochFromName(const std::string& name) {
  const std::string prefix = kCheckpointPrefix;
  const std::string suffix = kCheckpointSuffix;
  if (name.size() <= prefix.size() + suffix.size()) return -1;
  if (name.compare(0, prefix.size(), prefix) != 0) return -1;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return -1;
  }
  const std::string digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  if (digits.empty()) return -1;
  int64_t epoch = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return -1;
    epoch = epoch * 10 + (c - '0');
  }
  return epoch;
}

}  // namespace

std::string EncodeTrainerState(const TrainerState& state) {
  STISAN_CHECK_EQ(state.params.size(), state.shapes.size());
  STISAN_CHECK_EQ(state.params.size(), state.adam_m.size());
  STISAN_CHECK_EQ(state.params.size(), state.adam_v.size());
  std::string payload;
  BinaryWriter w(&payload);
  w.WriteString(state.fingerprint);
  w.WriteI64(state.epoch);
  w.WriteI64(state.opt_step);
  w.WriteI64(state.window_cursor);
  w.WriteF32(state.last_epoch_loss);
  for (uint64_t word : state.rng.s) w.WriteU64(word);
  w.WriteU64(state.rng.have_cached_normal ? 1 : 0);
  w.WriteF64(state.rng.cached_normal);
  w.WriteI64(state.adam_t);
  w.WriteInt64Vector(state.order);
  w.WriteU64(state.params.size());
  for (size_t i = 0; i < state.params.size(); ++i) {
    w.WriteInt64Vector(state.shapes[i]);
    w.WriteFloatVector(state.params[i]);
    w.WriteFloatVector(state.adam_m[i]);
    w.WriteFloatVector(state.adam_v[i]);
  }
  STISAN_CHECK(w.ok());
  return payload;
}

Status SaveCheckpoint(Env* env, const std::string& path,
                      const TrainerState& state) {
  OBS_SCOPED_TIMER("checkpoint/trainer_save");
  if (env == nullptr) env = Env::Default();
  const std::string payload = EncodeTrainerState(state);
  static obs::Counter& saves = obs::GetCounter("checkpoint/trainer_saves");
  static obs::Counter& bytes =
      obs::GetCounter("checkpoint/trainer_save_bytes");
  saves.Inc();
  bytes.Inc(payload.size());
  return WriteEnvelopeFile(env, path, kTrainerCheckpointMagic,
                           kTrainerCheckpointVersion, payload);
}

Result<TrainerState> LoadCheckpoint(Env* env, const std::string& path,
                                    const std::string& expected_fingerprint) {
  OBS_SCOPED_TIMER("checkpoint/trainer_load");
  if (env == nullptr) env = Env::Default();
  STISAN_ASSIGN_OR_RETURN(
      std::string payload,
      ReadEnvelopeFile(env, path, kTrainerCheckpointMagic,
                       kTrainerCheckpointVersion, kTrainerCheckpointVersion));
  static obs::Counter& loads = obs::GetCounter("checkpoint/trainer_loads");
  static obs::Counter& bytes =
      obs::GetCounter("checkpoint/trainer_load_bytes");
  loads.Inc();
  bytes.Inc(payload.size());
  BinaryReader r = BinaryReader::FromBuffer(std::move(payload));
  TrainerState state;
  STISAN_ASSIGN_OR_RETURN(state.fingerprint, r.ReadString());
  if (!expected_fingerprint.empty() && !state.fingerprint.empty() &&
      state.fingerprint != expected_fingerprint) {
    return Status::FailedPrecondition(
        "checkpoint config mismatch: checkpoint was saved with [" +
        state.fingerprint + "], this trainer is configured with [" +
        expected_fingerprint + "]");
  }
  STISAN_ASSIGN_OR_RETURN(state.epoch, r.ReadI64());
  STISAN_ASSIGN_OR_RETURN(state.opt_step, r.ReadI64());
  STISAN_ASSIGN_OR_RETURN(state.window_cursor, r.ReadI64());
  STISAN_ASSIGN_OR_RETURN(state.last_epoch_loss, r.ReadF32());
  for (auto& word : state.rng.s) {
    STISAN_ASSIGN_OR_RETURN(word, r.ReadU64());
  }
  STISAN_ASSIGN_OR_RETURN(uint64_t have_normal, r.ReadU64());
  if (have_normal > 1) {
    return Status::IoError("corrupt rng state in checkpoint: " + path);
  }
  state.rng.have_cached_normal = have_normal == 1;
  STISAN_ASSIGN_OR_RETURN(state.rng.cached_normal, r.ReadF64());
  STISAN_ASSIGN_OR_RETURN(state.adam_t, r.ReadI64());
  if (state.epoch < 0 || state.opt_step < 0 || state.window_cursor < 0 ||
      state.adam_t < 0) {
    return Status::IoError("corrupt cursor in checkpoint: " + path);
  }
  STISAN_ASSIGN_OR_RETURN(state.order, r.ReadInt64Vector());
  // The order must be a permutation of [0, n) or the resumed epoch would
  // visit the wrong windows (or index out of bounds).
  std::vector<bool> seen(state.order.size(), false);
  for (int64_t idx : state.order) {
    if (idx < 0 || idx >= static_cast<int64_t>(state.order.size()) ||
        seen[static_cast<size_t>(idx)]) {
      return Status::IoError("corrupt window order in checkpoint: " + path);
    }
    seen[static_cast<size_t>(idx)] = true;
  }
  STISAN_ASSIGN_OR_RETURN(uint64_t count, r.ReadU64());
  // Envelope size bounds the plausible parameter count: each entry holds at
  // least four length prefixes.
  if (count > r.remaining() / (4 * sizeof(uint64_t)) + 1) {
    return Status::OutOfRange("corrupt parameter count in checkpoint: " +
                              path);
  }
  state.shapes.resize(count);
  state.params.resize(count);
  state.adam_m.resize(count);
  state.adam_v.resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    STISAN_ASSIGN_OR_RETURN(state.shapes[i], r.ReadInt64Vector());
    STISAN_ASSIGN_OR_RETURN(state.params[i], r.ReadFloatVector());
    STISAN_ASSIGN_OR_RETURN(state.adam_m[i], r.ReadFloatVector());
    STISAN_ASSIGN_OR_RETURN(state.adam_v[i], r.ReadFloatVector());
    if (state.adam_m[i].size() != state.params[i].size() ||
        state.adam_v[i].size() != state.params[i].size()) {
      return Status::IoError("corrupt Adam moments in checkpoint: " + path);
    }
  }
  if (r.remaining() != 0) {
    return Status::IoError("trailing bytes in checkpoint payload: " + path);
  }
  return state;
}

CheckpointManager::CheckpointManager(const CheckpointConfig& config,
                                     std::string fingerprint)
    : config_(config), fingerprint_(std::move(fingerprint)) {
  STISAN_CHECK(!config_.dir.empty());
  STISAN_CHECK_GE(config_.keep_last, 1);
  env_ = config_.env != nullptr ? config_.env : Env::Default();
}

std::string CheckpointManager::PathForEpoch(int64_t epoch) const {
  return config_.dir + "/" +
         StrFormat("%s%06lld%s", kCheckpointPrefix,
                   static_cast<long long>(epoch), kCheckpointSuffix);
}

std::vector<int64_t> CheckpointManager::ListEpochs() const {
  std::vector<int64_t> epochs;
  auto names = env_->ListDir(config_.dir);
  if (!names.ok()) return epochs;
  for (const auto& name : *names) {
    const int64_t epoch = EpochFromName(name);
    if (epoch >= 0) epochs.push_back(epoch);
  }
  std::sort(epochs.begin(), epochs.end());
  return epochs;
}

Status CheckpointManager::Save(const TrainerState& state) {
  STISAN_RETURN_IF_ERROR(env_->CreateDir(config_.dir));
  TrainerState stamped = state;
  stamped.fingerprint = fingerprint_;
  STISAN_RETURN_IF_ERROR(
      SaveCheckpoint(env_, PathForEpoch(state.epoch), stamped));
  // Rotate only after the new checkpoint is durably on disk.
  std::vector<int64_t> epochs = ListEpochs();
  if (static_cast<int64_t>(epochs.size()) > config_.keep_last) {
    const size_t drop = epochs.size() - static_cast<size_t>(config_.keep_last);
    for (size_t i = 0; i < drop; ++i) {
      env_->DeleteFile(PathForEpoch(epochs[i]));  // best effort
    }
  }
  return Status::OK();
}

Result<TrainerState> CheckpointManager::LoadLatest() const {
  std::vector<int64_t> epochs = ListEpochs();
  Status last_error = Status::NotFound(
      "no checkpoint found in " + config_.dir);
  for (auto it = epochs.rbegin(); it != epochs.rend(); ++it) {
    auto state = LoadCheckpoint(env_, PathForEpoch(*it), fingerprint_);
    if (state.ok()) return state;
    last_error = state.status();
  }
  return last_error;
}

}  // namespace stisan::train
