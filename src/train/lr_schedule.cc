#include "train/lr_schedule.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/serialize.h"

namespace stisan::train {

WarmupLr::WarmupLr(float base_lr, int64_t warmup_steps)
    : base_lr_(base_lr), warmup_steps_(warmup_steps) {
  STISAN_CHECK_GE(warmup_steps, 0);
}

float WarmupLr::Lr(int64_t step) const {
  if (warmup_steps_ == 0 || step >= warmup_steps_) return base_lr_;
  return base_lr_ * float(step + 1) / float(warmup_steps_);
}

StepDecayLr::StepDecayLr(float base_lr, int64_t step_size, float gamma)
    : base_lr_(base_lr), step_size_(step_size), gamma_(gamma) {
  STISAN_CHECK_GT(step_size, 0);
  STISAN_CHECK_GT(gamma, 0.0f);
}

float StepDecayLr::Lr(int64_t step) const {
  return base_lr_ *
         std::pow(gamma_, static_cast<float>(step / step_size_));
}

CosineLr::CosineLr(float base_lr, int64_t total_steps, float min_lr,
                   int64_t warmup_steps)
    : base_lr_(base_lr),
      total_steps_(total_steps),
      min_lr_(min_lr),
      warmup_steps_(warmup_steps) {
  STISAN_CHECK_GT(total_steps, 0);
  STISAN_CHECK_GE(warmup_steps, 0);
  STISAN_CHECK_LE(min_lr, base_lr);
}

float CosineLr::Lr(int64_t step) const {
  if (step < warmup_steps_) {
    return base_lr_ * float(step + 1) / float(warmup_steps_);
  }
  const float progress =
      std::clamp(float(step - warmup_steps_) /
                     float(std::max<int64_t>(1, total_steps_ - warmup_steps_)),
                 0.0f, 1.0f);
  return min_lr_ + 0.5f * (base_lr_ - min_lr_) *
                       (1.0f + std::cos(progress * float(M_PI)));
}

void CosineLr::Save(BinaryWriter& writer) const {
  writer.WriteF32(base_lr_);
  writer.WriteI64(total_steps_);
  writer.WriteF32(min_lr_);
  writer.WriteI64(warmup_steps_);
}

Status CosineLr::Load(BinaryReader& reader) {
  STISAN_ASSIGN_OR_RETURN(float base_lr, reader.ReadF32());
  STISAN_ASSIGN_OR_RETURN(int64_t total_steps, reader.ReadI64());
  STISAN_ASSIGN_OR_RETURN(float min_lr, reader.ReadF32());
  STISAN_ASSIGN_OR_RETURN(int64_t warmup_steps, reader.ReadI64());
  if (total_steps <= 0 || warmup_steps < 0 || !std::isfinite(base_lr) ||
      !std::isfinite(min_lr) || min_lr > base_lr) {
    return Status::InvalidArgument("corrupt CosineLr state");
  }
  base_lr_ = base_lr;
  total_steps_ = total_steps;
  min_lr_ = min_lr;
  warmup_steps_ = warmup_steps;
  return Status::OK();
}

}  // namespace stisan::train
