#include "train/signal.h"

#include <csignal>

#include <atomic>

namespace stisan::train {
namespace {

std::atomic<bool> g_stop_requested{false};

void StopHandler(int /*signum*/) { g_stop_requested.store(true); }

}  // namespace

void InstallStopSignalHandlers() {
  struct sigaction action {};
  action.sa_handler = StopHandler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: interrupt blocking IO promptly
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

bool StopRequested() { return g_stop_requested.load(); }

void RequestStop() { g_stop_requested.store(true); }

void ClearStopRequest() { g_stop_requested.store(false); }

}  // namespace stisan::train
