// Learning-rate schedules. A schedule maps (step, base_lr) -> lr; the
// trainer queries it each optimizer step and updates the optimizer in
// place.

#pragma once

#include <cstdint>

#include "util/status.h"

namespace stisan {
class BinaryReader;
class BinaryWriter;
}  // namespace stisan

namespace stisan::train {

/// Interface for learning-rate schedules.
class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  /// Returns the learning rate for optimizer step `step` (0-based).
  virtual float Lr(int64_t step) const = 0;
};

/// Constant learning rate.
class ConstantLr : public LrSchedule {
 public:
  explicit ConstantLr(float lr) : lr_(lr) {}
  float Lr(int64_t) const override { return lr_; }

 private:
  float lr_;
};

/// Linear warmup to base_lr over `warmup_steps`, constant afterwards.
class WarmupLr : public LrSchedule {
 public:
  WarmupLr(float base_lr, int64_t warmup_steps);
  float Lr(int64_t step) const override;

 private:
  float base_lr_;
  int64_t warmup_steps_;
};

/// Step decay: lr = base * gamma^(step / step_size).
class StepDecayLr : public LrSchedule {
 public:
  StepDecayLr(float base_lr, int64_t step_size, float gamma);
  float Lr(int64_t step) const override;

 private:
  float base_lr_;
  int64_t step_size_;
  float gamma_;
};

/// Cosine annealing from base_lr to min_lr over `total_steps`, with
/// optional linear warmup.
class CosineLr : public LrSchedule {
 public:
  CosineLr(float base_lr, int64_t total_steps, float min_lr = 0.0f,
           int64_t warmup_steps = 0);
  float Lr(int64_t step) const override;

  /// Serialises the schedule so a resumed run reproduces the same LR
  /// sequence. Load validates the restored values and returns a clean
  /// Status on corrupt input (the schedule is unchanged on failure).
  void Save(BinaryWriter& writer) const;
  Status Load(BinaryReader& reader);

 private:
  float base_lr_;
  int64_t total_steps_;
  float min_lr_;
  int64_t warmup_steps_;
};

}  // namespace stisan::train
