// The reusable training loop shared by every neural recommender.
//
// Models supply a per-window loss function (their forward pass); the
// Trainer owns everything around it: epoch/shuffle bookkeeping, gradient
// accumulation, LR scheduling, gradient clipping, Adam stepping, non-finite
// loss/gradient guards, graceful SIGINT/SIGTERM shutdown, and crash-safe
// checkpoint/resume (train/checkpoint.h).
//
// Resume determinism contract: checkpoints are captured at epoch
// boundaries (the state snapshot taken at the start of the current epoch
// is written when training is interrupted mid-epoch, so the interrupted
// epoch replays from its beginning). Because the RNG stream, parameters,
// Adam moments, the window-visit permutation and all cursors are restored
// exactly, a run that is killed and resumed produces bit-identical
// parameters to an uninterrupted run.

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "tensor/optimizer.h"
#include "tensor/tensor.h"
#include "train/checkpoint.h"
#include "train/config.h"
#include "util/rng.h"
#include "util/status.h"

namespace stisan::train {

/// Outcome of a Trainer::Run.
struct TrainResult {
  /// OK unless checkpoint IO failed or the non-finite guard aborted.
  Status status;
  /// Epochs completed in total (including epochs restored from a resume).
  int64_t epochs_completed = 0;
  float last_epoch_loss = 0.0f;
  /// Windows whose loss (or batches whose gradient) was non-finite and
  /// therefore skipped.
  int64_t nonfinite_skipped = 0;
  /// True when a stop request (signal or RequestStop) ended the run early;
  /// a boundary checkpoint was written if checkpointing is enabled.
  bool interrupted = false;
  /// True when the run started from a restored checkpoint.
  bool resumed = false;
};

class Trainer {
 public:
  /// Computes the (scalar) loss tensor for training window `idx`. The
  /// Trainer scales it by 1/batch_size, backpropagates and accumulates.
  using WindowLossFn = std::function<Tensor(size_t idx)>;

  /// `params`: the model's trainable tensors (updated in place).
  /// `rng`: the model's RNG — shuffling, sampling and dropout must all
  /// draw from this one stream for checkpoint/resume to be exact.
  /// `fingerprint`: model-config fingerprint stamped into checkpoints and
  /// verified on resume.
  Trainer(std::vector<Tensor> params, const TrainConfig& config, Rng* rng,
          std::string name = "model", std::string fingerprint = "");

  /// Runs up to config.epochs epochs over `num_windows` windows. Safe to
  /// call once per Trainer instance.
  TrainResult Run(size_t num_windows, const WindowLossFn& loss_fn);

 private:
  TrainerState CaptureState(const Adam& optimizer, int64_t epoch,
                            int64_t opt_step, float last_loss,
                            const std::vector<size_t>& order) const;
  Status RestoreState(const TrainerState& state, Adam& optimizer);

  std::vector<Tensor> params_;
  TrainConfig config_;
  Rng* rng_;
  std::string name_;
  std::string fingerprint_;
};

}  // namespace stisan::train
