#include "train/trainer.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>

#include "obs/metrics.h"
#include "plan/plan.h"
#include "tensor/arena.h"
#include "tensor/ops.h"
#include "train/lr_schedule.h"
#include "train/signal.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace stisan::train {

namespace {

/// Epoch-granularity registry emission (EpochStats and friends). Purely
/// passive: gauges/counters record what already happened; nothing is read
/// back into the training computation.
void EmitEpochMetrics(const TrainConfig& cfg, int64_t completed_epochs,
                      float loss, float lr, int64_t nonfinite_skipped) {
  static obs::Counter& epochs = obs::GetCounter("train/epochs_completed");
  static obs::Gauge& loss_gauge = obs::GetGauge("train/loss");
  static obs::Gauge& lr_gauge = obs::GetGauge("train/lr");
  static obs::Gauge& nonfinite = obs::GetGauge("train/nonfinite_skipped");
  epochs.Inc();
  loss_gauge.Set(loss);
  lr_gauge.Set(lr);
  nonfinite.Set(double(nonfinite_skipped));
  const bool due = cfg.metrics_every > 0 &&
                   completed_epochs % cfg.metrics_every == 0;
  if (!cfg.metrics_json.empty() && due) {
    Status st = obs::WriteJsonAtomic(nullptr, cfg.metrics_json);
    if (!st.ok()) {
      STISAN_LOG(WARNING) << "metrics snapshot write failed: "
                          << st.ToString();
    }
  }
}

}  // namespace

Trainer::Trainer(std::vector<Tensor> params, const TrainConfig& config,
                 Rng* rng, std::string name, std::string fingerprint)
    : params_(std::move(params)),
      config_(config),
      rng_(rng),
      name_(std::move(name)),
      fingerprint_(std::move(fingerprint)) {
  STISAN_CHECK(rng_ != nullptr);
}

TrainerState Trainer::CaptureState(const Adam& optimizer, int64_t epoch,
                                   int64_t opt_step, float last_loss,
                                   const std::vector<size_t>& order) const {
  TrainerState state;
  state.order.assign(order.begin(), order.end());
  state.fingerprint = fingerprint_;
  state.epoch = epoch;
  state.opt_step = opt_step;
  state.window_cursor = 0;  // checkpoints always sit on epoch boundaries
  state.last_epoch_loss = last_loss;
  state.rng = rng_->GetState();
  state.adam_t = optimizer.step_count();
  state.shapes.reserve(params_.size());
  state.params.reserve(params_.size());
  for (const Tensor& p : params_) {
    state.shapes.push_back(p.shape());
    state.params.push_back(p.ToVector());
  }
  state.adam_m = optimizer.first_moments();
  state.adam_v = optimizer.second_moments();
  return state;
}

Status Trainer::RestoreState(const TrainerState& state, Adam& optimizer) {
  if (state.params.size() != params_.size()) {
    return Status::FailedPrecondition(StrFormat(
        "checkpoint has %zu parameters, model has %zu", state.params.size(),
        params_.size()));
  }
  for (size_t i = 0; i < params_.size(); ++i) {
    if (state.shapes[i] != params_[i].shape() ||
        static_cast<int64_t>(state.params[i].size()) != params_[i].numel()) {
      return Status::FailedPrecondition(
          "checkpoint parameter " + std::to_string(i) +
          " shape mismatch: expected " + ShapeToString(params_[i].shape()) +
          " got " + ShapeToString(state.shapes[i]));
    }
  }
  for (size_t i = 0; i < params_.size(); ++i) {
    std::copy(state.params[i].begin(), state.params[i].end(),
              params_[i].data());
  }
  optimizer.RestoreState(state.adam_t, state.adam_m, state.adam_v);
  rng_->SetState(state.rng);
  return Status::OK();
}

TrainResult Trainer::Run(size_t num_windows, const WindowLossFn& loss_fn) {
  OBS_SCOPED_TIMER("train/run");
  TrainResult result;
  // Tape buffers freed at the end of step k are recycled by step k+1 while
  // this scope is alive (STISAN_ARENA=1); the pool drains when Run returns.
  arena::Scope arena_scope;
  // Static execution plans: the first window's tape is captured, subsequent
  // windows replay it (declared after arena_scope so the plan cache tears
  // down while the pool is still alive).
  plan::Scope plan_scope;
  const auto& cfg = config_;
  const int64_t bsz = std::max<int64_t>(1, cfg.batch_size);

  Adam optimizer(params_, {.lr = cfg.lr});

  // Optional cosine learning-rate decay over the whole run.
  const int64_t windows_per_epoch =
      cfg.max_train_windows > 0
          ? std::min<int64_t>(cfg.max_train_windows,
                              static_cast<int64_t>(num_windows))
          : static_cast<int64_t>(num_windows);
  const int64_t total_steps =
      std::max<int64_t>(1, cfg.epochs * windows_per_epoch / bsz);
  CosineLr schedule(cfg.lr, total_steps, cfg.lr * 0.1f,
                    std::min<int64_t>(total_steps / 20, 50));
  int64_t opt_step = 0;
  int64_t start_epoch = 0;
  float last_epoch_loss = 0.0f;

  // The window-visit order: iota once, then re-shuffled in place at every
  // epoch start (matching the historical loop bit-for-bit). A resumed run
  // restores the checkpointed permutation so epoch k sees the same order
  // as an uninterrupted run.
  std::vector<size_t> order(num_windows);
  std::iota(order.begin(), order.end(), size_t{0});

  const bool ckpt_enabled = !cfg.checkpoint.dir.empty();
  std::optional<CheckpointManager> manager;
  if (ckpt_enabled) manager.emplace(cfg.checkpoint, fingerprint_);

  if (ckpt_enabled && cfg.checkpoint.resume) {
    auto state = manager->LoadLatest();
    if (state.ok()) {
      Status restore = RestoreState(*state, optimizer);
      if (!restore.ok()) {
        result.status = restore;
        return result;
      }
      if (!state->order.empty()) {
        if (state->order.size() != order.size()) {
          result.status = Status::FailedPrecondition(StrFormat(
              "checkpoint window order has %zu entries, dataset has %zu",
              state->order.size(), order.size()));
          return result;
        }
        std::copy(state->order.begin(), state->order.end(), order.begin());
      }
      start_epoch = state->epoch;
      opt_step = state->opt_step;
      last_epoch_loss = state->last_epoch_loss;
      result.resumed = true;
      if (cfg.verbose) {
        STISAN_LOG(INFO) << name_ << " resumed from checkpoint at epoch "
                         << start_epoch << " (opt step " << opt_step << ")";
      }
    } else if (state.status().code() != StatusCode::kNotFound) {
      result.status = state.status();
      return result;
    }
  }
  result.epochs_completed = start_epoch;
  result.last_epoch_loss = last_epoch_loss;

  int64_t nonfinite_losses = 0;  // consecutive, reset by a finite loss
  int64_t nonfinite_grads = 0;   // consecutive, reset by a clean step

  // Epoch-boundary snapshot, written on graceful shutdown: a run
  // interrupted mid-epoch resumes by replaying that epoch from its start.
  TrainerState snapshot;
  if (ckpt_enabled) {
    snapshot =
        CaptureState(optimizer, start_epoch, opt_step, last_epoch_loss, order);
  }
  auto record_checkpoint_error = [&result](const Status& st) {
    if (!st.ok()) {
      STISAN_LOG(WARNING) << "checkpoint write failed: " << st.ToString();
      if (result.status.ok()) result.status = st;
    }
  };

  Stopwatch watch;
  for (int64_t epoch = start_epoch; epoch < cfg.epochs; ++epoch) {
    if (StopRequested()) {
      if (ckpt_enabled) record_checkpoint_error(manager->Save(snapshot));
      result.interrupted = true;
      break;
    }
    OBS_SCOPED_TIMER("train/epoch");
    rng_->Shuffle(order);
    double epoch_loss = 0.0;
    int64_t seen = 0;
    int64_t finite_seen = 0;
    int64_t in_batch = 0;
    bool stop_pending = false;
    optimizer.ZeroGrad();
    static obs::Counter& windows_seen = obs::GetCounter("train/windows_seen");
    static obs::Counter& opt_steps = obs::GetCounter("train/opt_steps");
    for (size_t idx : order) {
      if (cfg.max_train_windows > 0 && seen >= cfg.max_train_windows) break;
      float loss_value;
      {
        // One window = one plan step: the loss graph is built, swept, and
        // torn down inside the StepScope so its allocation record is
        // complete when the step finalises.
        plan::StepScope plan_step;
        Tensor loss = loss_fn(idx);
        loss_value = loss.data()[0];
        if (std::isfinite(loss_value)) {
          ops::MulScalar(loss, 1.0f / float(bsz)).Backward();
        }
      }
      ++seen;
      windows_seen.Inc();
      if (!std::isfinite(loss_value)) {
        ++result.nonfinite_skipped;
        if (cfg.max_consecutive_nonfinite > 0 &&
            ++nonfinite_losses >= cfg.max_consecutive_nonfinite) {
          result.status = Status::Internal(StrFormat(
              "aborting after %lld consecutive non-finite losses",
              static_cast<long long>(nonfinite_losses)));
          result.last_epoch_loss = last_epoch_loss;
          return result;
        }
        continue;  // skip-and-count: the bad window contributes no gradient
      }
      nonfinite_losses = 0;
      epoch_loss += loss_value;
      ++finite_seen;
      if (++in_batch == bsz) {
        const float norm = optimizer.ClipGradNorm(cfg.grad_clip);
        if (!std::isfinite(norm)) {
          ++result.nonfinite_skipped;
          optimizer.ZeroGrad();
          in_batch = 0;
          if (cfg.max_consecutive_nonfinite > 0 &&
              ++nonfinite_grads >= cfg.max_consecutive_nonfinite) {
            result.status = Status::Internal(StrFormat(
                "aborting after %lld consecutive non-finite gradient steps",
                static_cast<long long>(nonfinite_grads)));
            result.last_epoch_loss = last_epoch_loss;
            return result;
          }
          continue;
        }
        nonfinite_grads = 0;
        if (cfg.cosine_decay) optimizer.SetLr(schedule.Lr(opt_step));
        ++opt_step;
        optimizer.Step();
        opt_steps.Inc();
        optimizer.ZeroGrad();
        in_batch = 0;
      }
      if (StopRequested()) {
        stop_pending = true;
        break;
      }
    }
    if (stop_pending) {
      // Graceful shutdown: the step in flight finished above; the partial
      // epoch is discarded and the boundary snapshot checkpointed, so a
      // resumed run replays this epoch from its start bit-identically.
      if (ckpt_enabled) record_checkpoint_error(manager->Save(snapshot));
      result.interrupted = true;
      break;
    }
    if (in_batch > 0) {
      const float norm = optimizer.ClipGradNorm(cfg.grad_clip);
      if (std::isfinite(norm)) {
        optimizer.Step();
        opt_steps.Inc();
      } else {
        ++result.nonfinite_skipped;
      }
      optimizer.ZeroGrad();
    }
    last_epoch_loss = finite_seen > 0
                          ? static_cast<float>(epoch_loss / double(finite_seen))
                          : 0.0f;
    result.epochs_completed = epoch + 1;
    EmitEpochMetrics(cfg, epoch + 1, last_epoch_loss,
                     cfg.cosine_decay ? schedule.Lr(opt_step) : cfg.lr,
                     result.nonfinite_skipped);
    const bool early_stop =
        cfg.on_epoch && !cfg.on_epoch({.epoch = epoch, .loss = last_epoch_loss});
    if (cfg.verbose) {
      STISAN_LOG(INFO) << name_ << " epoch " << (epoch + 1) << "/"
                       << cfg.epochs << " loss " << last_epoch_loss << " ("
                       << watch.ElapsedSeconds() << "s)";
    }
    if (ckpt_enabled) {
      const int64_t completed = epoch + 1;
      snapshot =
          CaptureState(optimizer, completed, opt_step, last_epoch_loss, order);
      const bool final_epoch = completed == cfg.epochs || early_stop;
      const bool due = cfg.checkpoint.every_epochs > 0 &&
                       completed % cfg.checkpoint.every_epochs == 0;
      if (final_epoch || due) record_checkpoint_error(manager->Save(snapshot));
    }
    if (early_stop) break;
  }
  result.last_epoch_loss = last_epoch_loss;
  // Final snapshot covers runs whose epoch count is not a multiple of
  // metrics_every (and the metrics_every == 0 "only at the end" mode).
  if (!cfg.metrics_json.empty()) {
    Status st = obs::WriteJsonAtomic(nullptr, cfg.metrics_json);
    if (!st.ok()) {
      STISAN_LOG(WARNING) << "metrics snapshot write failed: "
                          << st.ToString();
    }
  }
  return result;
}

}  // namespace stisan::train
