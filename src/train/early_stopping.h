// Validation utilities: train/validation window splitting and an
// early-stopping monitor. The paper trains for a fixed epoch budget; these
// tools let downstream users pick epoch counts on held-out data instead.

#pragma once

#include <cstdint>
#include <vector>

#include "data/types.h"
#include "util/rng.h"
#include "util/status.h"

namespace stisan {
class BinaryReader;
class BinaryWriter;
}  // namespace stisan

namespace stisan::train {

/// Randomly partitions training windows into train/validation subsets.
/// `validation_fraction` in (0, 1); at least one window lands in each side
/// when the input has two or more windows.
struct WindowSplit {
  std::vector<data::TrainWindow> train;
  std::vector<data::TrainWindow> validation;
};
WindowSplit SplitValidation(const std::vector<data::TrainWindow>& windows,
                            double validation_fraction, Rng& rng);

/// Tracks a higher-is-better validation metric across epochs and signals
/// when to stop after `patience` epochs without improvement.
class EarlyStopping {
 public:
  /// `patience`: consecutive non-improving epochs tolerated.
  /// `min_delta`: improvement smaller than this does not count.
  explicit EarlyStopping(int64_t patience = 3, double min_delta = 1e-4);

  /// Records the metric for one epoch; returns true if training should
  /// stop now.
  bool ShouldStop(double metric);

  double best_metric() const { return best_; }
  int64_t best_epoch() const { return best_epoch_; }
  int64_t epochs_seen() const { return epoch_; }

  /// Serialises the monitor so a resumed run makes the same stop decisions
  /// as an uninterrupted one. Load validates the restored values and
  /// returns a clean Status on corrupt input (the monitor is unchanged on
  /// failure).
  void Save(BinaryWriter& writer) const;
  Status Load(BinaryReader& reader);

 private:
  int64_t patience_;
  double min_delta_;
  double best_;
  int64_t best_epoch_ = -1;
  int64_t epoch_ = 0;
  int64_t bad_epochs_ = 0;
};

}  // namespace stisan::train
