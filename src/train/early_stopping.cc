#include "train/early_stopping.h"

#include <cmath>
#include <limits>

#include "util/check.h"
#include "util/serialize.h"

namespace stisan::train {

WindowSplit SplitValidation(const std::vector<data::TrainWindow>& windows,
                            double validation_fraction, Rng& rng) {
  STISAN_CHECK_GT(validation_fraction, 0.0);
  STISAN_CHECK_LT(validation_fraction, 1.0);
  std::vector<size_t> order(windows.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(order);

  WindowSplit split;
  size_t val_count = static_cast<size_t>(
      static_cast<double>(windows.size()) * validation_fraction);
  if (windows.size() >= 2) {
    val_count = std::max<size_t>(1, val_count);
    val_count = std::min(val_count, windows.size() - 1);
  }
  for (size_t i = 0; i < order.size(); ++i) {
    if (i < val_count) {
      split.validation.push_back(windows[order[i]]);
    } else {
      split.train.push_back(windows[order[i]]);
    }
  }
  return split;
}

EarlyStopping::EarlyStopping(int64_t patience, double min_delta)
    : patience_(patience),
      min_delta_(min_delta),
      best_(-std::numeric_limits<double>::infinity()) {
  STISAN_CHECK_GE(patience, 1);
  STISAN_CHECK_GE(min_delta, 0.0);
}

bool EarlyStopping::ShouldStop(double metric) {
  if (metric > best_ + min_delta_) {
    best_ = metric;
    best_epoch_ = epoch_;
    bad_epochs_ = 0;
  } else {
    ++bad_epochs_;
  }
  ++epoch_;
  return bad_epochs_ >= patience_;
}

void EarlyStopping::Save(BinaryWriter& writer) const {
  writer.WriteI64(patience_);
  writer.WriteF64(min_delta_);
  writer.WriteF64(best_);
  writer.WriteI64(best_epoch_);
  writer.WriteI64(epoch_);
  writer.WriteI64(bad_epochs_);
}

Status EarlyStopping::Load(BinaryReader& reader) {
  STISAN_ASSIGN_OR_RETURN(int64_t patience, reader.ReadI64());
  STISAN_ASSIGN_OR_RETURN(double min_delta, reader.ReadF64());
  STISAN_ASSIGN_OR_RETURN(double best, reader.ReadF64());
  STISAN_ASSIGN_OR_RETURN(int64_t best_epoch, reader.ReadI64());
  STISAN_ASSIGN_OR_RETURN(int64_t epoch, reader.ReadI64());
  STISAN_ASSIGN_OR_RETURN(int64_t bad_epochs, reader.ReadI64());
  // best_ is legitimately -inf before the first epoch; only NaN is corrupt.
  if (patience < 1 || min_delta < 0.0 || std::isnan(min_delta) ||
      std::isnan(best) || best_epoch < -1 || epoch < 0 || bad_epochs < 0 ||
      bad_epochs > epoch) {
    return Status::InvalidArgument("corrupt EarlyStopping state");
  }
  patience_ = patience;
  min_delta_ = min_delta;
  best_ = best;
  best_epoch_ = best_epoch;
  epoch_ = epoch;
  bad_epochs_ = bad_epochs;
  return Status::OK();
}

}  // namespace stisan::train
