// Negative sampling strategies for model training.
//
// The paper (following GeoSAN [23]) draws L = 15 negatives for each target
// from the target's nearest 2000 POIs, which the weighted loss then
// re-weights by informativeness. A uniform sampler is provided for the
// baselines whose original papers use it (SASRec, BPR, ...), and for
// ablations.

#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "data/types.h"
#include "geo/spatial_index.h"
#include "util/rng.h"

namespace stisan::train {

/// Interface: produce `count` negative POI ids for a given target POI,
/// avoiding ids in `exclude` (typically the target itself).
class NegativeSampler {
 public:
  virtual ~NegativeSampler() = default;
  virtual std::vector<int64_t> Sample(
      int64_t target_poi, int64_t count,
      const std::unordered_set<int64_t>& exclude, Rng& rng) const = 0;
};

/// Uniform over all POIs 1..P.
class UniformNegativeSampler : public NegativeSampler {
 public:
  explicit UniformNegativeSampler(int64_t num_pois) : num_pois_(num_pois) {}

  std::vector<int64_t> Sample(int64_t target_poi, int64_t count,
                              const std::unordered_set<int64_t>& exclude,
                              Rng& rng) const override;

 private:
  int64_t num_pois_;
};

/// Draws negatives uniformly from the target's `neighborhood` nearest POIs
/// (GeoSAN's importance-based sampling, paper §III-H). Neighbour lists are
/// precomputed once per dataset.
class KnnNegativeSampler : public NegativeSampler {
 public:
  /// `neighborhood` = how many nearest POIs form the candidate pool
  /// (paper: 2000; scaled datasets use less).
  KnnNegativeSampler(const data::Dataset& dataset, int64_t neighborhood);

  std::vector<int64_t> Sample(int64_t target_poi, int64_t count,
                              const std::unordered_set<int64_t>& exclude,
                              Rng& rng) const override;

 private:
  int64_t num_pois_;
  int64_t neighborhood_;
  std::vector<std::vector<int64_t>> neighbors_;  // [poi] -> nearest poi ids
};

}  // namespace stisan::train
