// Crash-consistent trainer checkpoints.
//
// A trainer checkpoint captures EVERYTHING the training loop needs to
// resume bit-identically after a crash: model parameters, Adam moments and
// step count, the LR-schedule cursor (optimizer step), the epoch/window
// cursor, the RNG stream state, and a model-config fingerprint that guards
// against resuming into a differently-configured model.
//
// On-disk format (util/serialize envelope):
//   [magic "STISANT1"][version][payload_len][payload][crc32(payload)]
// written via temp file + fsync + atomic rename, with keep-last-K rotation.
// A reader therefore either sees a complete, CRC-valid checkpoint or a
// clean error Status — never a torn file that parses.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "train/config.h"
#include "util/rng.h"
#include "util/status.h"

namespace stisan::train {

/// The complete resumable state of a training run. Parameters and Adam
/// moments are stored as plain flat vectors in parameter registration
/// order; the Trainer converts tensors to/from this representation.
struct TrainerState {
  std::string fingerprint;
  int64_t epoch = 0;          // completed epochs
  int64_t opt_step = 0;       // LR-schedule cursor (optimizer steps taken)
  int64_t window_cursor = 0;  // windows consumed in the current epoch
                              // (always 0: checkpoints sit on boundaries)
  float last_epoch_loss = 0.0f;
  Rng::State rng;
  int64_t adam_t = 0;
  /// The window-visit permutation as of this snapshot. The training loop
  /// re-shuffles ONE vector across epochs, so the epoch-k order depends on
  /// every earlier shuffle and cannot be re-derived from the boundary RNG
  /// state alone — it must travel with the checkpoint.
  std::vector<int64_t> order;
  std::vector<std::vector<int64_t>> shapes;
  std::vector<std::vector<float>> params;
  std::vector<std::vector<float>> adam_m;
  std::vector<std::vector<float>> adam_v;
};

/// Serialises `state` into the envelope payload format (for tests that
/// need byte-level access; SaveCheckpoint wraps this).
std::string EncodeTrainerState(const TrainerState& state);

/// Atomically writes `state` to `path` through `env`.
Status SaveCheckpoint(Env* env, const std::string& path,
                      const TrainerState& state);

/// Loads and validates a checkpoint. If `expected_fingerprint` is
/// non-empty and differs from the stored one, fails with
/// FailedPrecondition naming both.
Result<TrainerState> LoadCheckpoint(Env* env, const std::string& path,
                                    const std::string& expected_fingerprint);

/// Manages the rotating checkpoint directory `config.dir`: numbered files
/// `ckpt-<epoch>.bin`, newest-K retention, and newest-valid-first loading.
class CheckpointManager {
 public:
  /// `config.dir` must be non-empty. The directory is created lazily on
  /// the first Save.
  CheckpointManager(const CheckpointConfig& config, std::string fingerprint);

  /// Writes `state` as `ckpt-<epoch>.bin` (atomic replace), then rotates:
  /// older checkpoints beyond keep_last are deleted. On failure the
  /// previous checkpoints are untouched.
  Status Save(const TrainerState& state);

  /// Loads the newest checkpoint that validates (CRC + fingerprint).
  /// Invalid files are skipped — a corrupt newest checkpoint falls back to
  /// the next-older valid one. NotFound when none validates.
  Result<TrainerState> LoadLatest() const;

  /// Epochs of the checkpoints currently present (sorted ascending),
  /// whether or not they validate.
  std::vector<int64_t> ListEpochs() const;

  std::string PathForEpoch(int64_t epoch) const;

 private:
  CheckpointConfig config_;
  std::string fingerprint_;
  Env* env_;
};

}  // namespace stisan::train
