// Flag-based graceful-shutdown support for long training runs.
//
// A SIGINT/SIGTERM handler only sets an atomic flag (the only thing that is
// async-signal-safe to do); train::Trainer polls the flag between optimizer
// steps, finishes the step in flight, writes a checkpoint and returns with
// `interrupted = true`. Tests trigger the same path programmatically via
// RequestStop().

#pragma once

namespace stisan::train {

/// Installs SIGINT/SIGTERM handlers that set the stop flag. Idempotent.
void InstallStopSignalHandlers();

/// True once a stop has been requested (by signal or RequestStop).
bool StopRequested();

/// Programmatic stop request (tests, embedding applications).
void RequestStop();

/// Clears the stop flag (between independent training runs in one process).
void ClearStopRequest();

}  // namespace stisan::train
