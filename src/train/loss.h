// Training losses: weighted binary cross-entropy with importance-weighted
// negatives (paper eq. 12), plain BCE, and BPR.

#pragma once

#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace stisan::train {

/// Weighted BCE over valid steps (paper eq. 12, from GeoSAN [23]):
///
///   loss = -(1/m) sum_i [ log sigmoid(pos_i)
///                         + sum_l w_il log(1 - sigmoid(neg_il)) ]
///   w_il = softmax_l(neg_il / T)   (detached: weights carry no gradient)
///
/// pos_logits: [m], neg_logits: [m, L]. T -> infinity recovers uniform
/// weighting. The sum is averaged over steps for learning-rate stability.
Tensor WeightedBceLoss(const Tensor& pos_logits, const Tensor& neg_logits,
                       float temperature);

/// Plain BCE with one (or more, uniformly weighted) negatives per step:
///   loss = -(1/m) sum_i [ log sigmoid(pos_i) + mean_l log(1 - sigmoid(neg_il)) ]
Tensor BceLoss(const Tensor& pos_logits, const Tensor& neg_logits);

/// Bayesian personalized ranking loss:
///   loss = -(1/m) sum_i log sigmoid(pos_i - neg_i)
/// pos_logits and neg_logits must have the same shape.
Tensor BprLoss(const Tensor& pos_logits, const Tensor& neg_logits);

}  // namespace stisan::train
