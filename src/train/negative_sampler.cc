#include "train/negative_sampler.h"

#include "util/check.h"

namespace stisan::train {

std::vector<int64_t> UniformNegativeSampler::Sample(
    int64_t /*target_poi*/, int64_t count,
    const std::unordered_set<int64_t>& exclude, Rng& rng) const {
  STISAN_CHECK_GT(num_pois_, 0);
  std::vector<int64_t> out;
  out.reserve(static_cast<size_t>(count));
  int64_t attempts = 0;
  const int64_t max_attempts = count * 50 + 100;
  while (static_cast<int64_t>(out.size()) < count &&
         attempts++ < max_attempts) {
    const int64_t p =
        1 + static_cast<int64_t>(rng.UniformInt(
                static_cast<uint64_t>(num_pois_)));
    if (!exclude.contains(p)) out.push_back(p);
  }
  // Degenerate exclude sets (tiny POI universes): pad with whatever exists.
  while (static_cast<int64_t>(out.size()) < count && num_pois_ > 0) {
    out.push_back(1 + static_cast<int64_t>(rng.UniformInt(
                          static_cast<uint64_t>(num_pois_))));
  }
  return out;
}

KnnNegativeSampler::KnnNegativeSampler(const data::Dataset& dataset,
                                       int64_t neighborhood)
    : num_pois_(dataset.num_pois()), neighborhood_(neighborhood) {
  STISAN_CHECK_GT(neighborhood_, 0);
  std::vector<geo::GeoPoint> coords(dataset.poi_coords.begin() + 1,
                                    dataset.poi_coords.end());
  geo::SpatialGridIndex index(coords);
  neighbors_.resize(static_cast<size_t>(num_pois_) + 1);
  for (int64_t p = 1; p <= num_pois_; ++p) {
    auto ids = index.KNearest(
        dataset.poi_location(p), neighborhood_,
        [p](int64_t id) { return id + 1 != p; });
    auto& list = neighbors_[static_cast<size_t>(p)];
    list.reserve(ids.size());
    for (int64_t id : ids) list.push_back(id + 1);
  }
}

std::vector<int64_t> KnnNegativeSampler::Sample(
    int64_t target_poi, int64_t count,
    const std::unordered_set<int64_t>& exclude, Rng& rng) const {
  STISAN_CHECK_GE(target_poi, 1);
  STISAN_CHECK_LE(target_poi, num_pois_);
  const auto& pool = neighbors_[static_cast<size_t>(target_poi)];
  std::vector<int64_t> out;
  out.reserve(static_cast<size_t>(count));
  if (pool.empty()) {
    // No neighbours (single-POI degenerate dataset): fall back to uniform.
    UniformNegativeSampler fallback(num_pois_);
    return fallback.Sample(target_poi, count, exclude, rng);
  }
  int64_t attempts = 0;
  const int64_t max_attempts = count * 50 + 100;
  while (static_cast<int64_t>(out.size()) < count &&
         attempts++ < max_attempts) {
    const int64_t p = pool[rng.UniformInt(
        static_cast<uint64_t>(pool.size()))];
    if (!exclude.contains(p)) out.push_back(p);
  }
  while (static_cast<int64_t>(out.size()) < count) {
    out.push_back(pool[rng.UniformInt(static_cast<uint64_t>(pool.size()))]);
  }
  return out;
}

}  // namespace stisan::train
