// Shared training configuration for all neural recommenders.

#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace stisan {
class Env;
}

namespace stisan::train {

/// Per-epoch statistics passed to the optional training callback.
struct EpochStats {
  int64_t epoch = 0;  // 0-based
  float loss = 0.0f;  // mean loss of this epoch
};

/// Crash-safe checkpointing knobs consumed by train::Trainer. Disabled by
/// default (`dir` empty): the paper-scale runs in tests do not pay any
/// checkpoint IO unless they opt in.
struct CheckpointConfig {
  /// Directory for rotating trainer checkpoints; empty disables them.
  std::string dir;
  /// Write a checkpoint every N completed epochs (plus one at the end of
  /// training and one on graceful shutdown).
  int64_t every_epochs = 1;
  /// Keep the newest K checkpoints; older ones are deleted after a new one
  /// is written successfully. Keeping more than one means a checkpoint
  /// corrupted on disk still leaves a valid older one to resume from.
  int64_t keep_last = 3;
  /// Resume from the newest valid checkpoint in `dir` when one exists.
  bool resume = false;
  /// Filesystem to write through; nullptr = Env::Default(). Tests inject a
  /// FaultInjectionEnv here.
  Env* env = nullptr;
};

struct TrainConfig {
  int64_t epochs = 10;
  /// Windows per optimizer step (gradient accumulation). Larger batches
  /// reduce gradient noise markedly at this data scale.
  int64_t batch_size = 8;
  float lr = 0.001f;          // paper: 0.001
  float dropout = 0.2f;       // paper: 0.7 at paper scale; lower at CPU scale
  int64_t num_negatives = 15; // paper: L = 15
  float temperature = 1.0f;   // paper: T in {1, 100, 500} per dataset
  int64_t knn_neighborhood = 200;  // paper: 2000 nearest (scaled down)
  float grad_clip = 5.0f;
  /// Cosine-decay the learning rate to lr * 0.1 over the training run
  /// (with a short warmup). Default off: the paper trains with a constant
  /// Adam learning rate.
  bool cosine_decay = false;
  uint64_t seed = 7;
  bool verbose = false;
  /// Optional cap on the number of training windows per epoch (0 = all);
  /// lets benches bound wall-clock on the larger synthetic datasets.
  int64_t max_train_windows = 0;
  /// A step whose loss (or accumulated gradient norm) is NaN/Inf is
  /// skipped and counted instead of poisoning the weights; after this many
  /// consecutive non-finite steps training aborts with an error status.
  int64_t max_consecutive_nonfinite = 8;
  /// Checkpoint / resume behaviour (train::Trainer).
  CheckpointConfig checkpoint;
  /// Path the trainer writes obs-registry JSON snapshots to (atomically,
  /// via the io_env temp+rename path). Empty disables emission. Strictly
  /// passive: the snapshot never feeds back into training.
  std::string metrics_json;
  /// Snapshot every N completed epochs (requires metrics_json; 0 = only at
  /// the end of the run).
  int64_t metrics_every = 0;
  /// Optional per-epoch hook (validation evaluation, checkpointing, ...).
  /// Returning false stops training early; the optimizer state is
  /// preserved across epochs either way.
  std::function<bool(const EpochStats&)> on_epoch;
};

}  // namespace stisan::train
