#include "train/loss.h"

#include "util/check.h"

namespace stisan::train {

Tensor WeightedBceLoss(const Tensor& pos_logits, const Tensor& neg_logits,
                       float temperature) {
  STISAN_CHECK_EQ(pos_logits.dim(), 1);
  STISAN_CHECK_EQ(neg_logits.dim(), 2);
  STISAN_CHECK_EQ(pos_logits.size(0), neg_logits.size(0));
  STISAN_CHECK_GT(temperature, 0.0f);
  const float m = static_cast<float>(pos_logits.size(0));

  Tensor pos_term = ops::Sum(ops::LogSigmoid(pos_logits));
  // Importance weights from the *detached* negative scores.
  Tensor weights = ops::Softmax(
      ops::MulScalar(neg_logits.Detach(), 1.0f / temperature));
  // log(1 - sigmoid(y)) = log sigmoid(-y)
  Tensor neg_term = ops::Sum(weights * ops::LogSigmoid(ops::Neg(neg_logits)));
  return ops::MulScalar(pos_term + neg_term, -1.0f / m);
}

Tensor BceLoss(const Tensor& pos_logits, const Tensor& neg_logits) {
  STISAN_CHECK_EQ(pos_logits.dim(), 1);
  STISAN_CHECK_EQ(pos_logits.size(0), neg_logits.size(0));
  const float m = static_cast<float>(pos_logits.size(0));
  const float num_neg =
      neg_logits.dim() == 2 ? static_cast<float>(neg_logits.size(1)) : 1.0f;
  Tensor pos_term = ops::Sum(ops::LogSigmoid(pos_logits));
  Tensor neg_term = ops::MulScalar(
      ops::Sum(ops::LogSigmoid(ops::Neg(neg_logits))), 1.0f / num_neg);
  return ops::MulScalar(pos_term + neg_term, -1.0f / m);
}

Tensor BprLoss(const Tensor& pos_logits, const Tensor& neg_logits) {
  STISAN_CHECK(pos_logits.shape() == neg_logits.shape());
  const float m = static_cast<float>(pos_logits.numel());
  return ops::MulScalar(
      ops::Sum(ops::LogSigmoid(pos_logits - neg_logits)), -1.0f / m);
}

}  // namespace stisan::train
