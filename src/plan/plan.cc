#include "plan/plan.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>
#include <utility>

#include "obs/metrics.h"
#include "tensor/arena.h"
#include "util/check.h"
#include "util/stopwatch.h"

namespace stisan::plan {
namespace {

using internal::TensorImpl;
using internal::TensorImplPtr;

// -1 = follow STISAN_STATIC_PLAN (default on), 0/1 = forced.
std::atomic<int> g_plan_override{-1};
// -1 = follow Enabled(), 0/1 = forced (tests compare fused vs composed).
std::atomic<int> g_fusion_override{-1};

// Bounds the per-context plan cache: eval contexts that score many distinct
// candidate sets churn plans, and each cached plan pins its alloc record in
// the arena's exact-size pool.
constexpr size_t kMaxPlans = 32;

bool InstrMatches(const Instr& in, const char* kind, const Shape& shape,
                  const std::vector<int32_t>& inputs, bool is_view,
                  bool requires_grad) {
  return (in.kind == kind || std::strcmp(in.kind, kind) == 0) &&
         in.is_view == is_view && in.requires_grad == requires_grad &&
         in.shape == shape && in.inputs == inputs;
}

class Context {
 public:
  ~Context() {
    for (auto& p : plans_) arena::UnreserveExact(p->alloc_sizes);
  }

  void BeginStep() {
    ++step_seq_;
    mode_ = kPending;
    step_nodes_.clear();
    candidates_.clear();
    cursor_ = 0;
    recording_ = Plan{};
    chosen_ = nullptr;
    diverged_ = false;
    backward_done_ = false;
    arena::BeginAllocRecord();
    watch_.Reset();
  }

  void EndStep() {
    static obs::Counter& steps_c = obs::GetCounter("plan/steps");
    static obs::Counter& captures_c = obs::GetCounter("plan/captures");
    static obs::Counter& replays_c = obs::GetCounter("plan/replays");
    static obs::Counter& recaptures_c = obs::GetCounter("plan/recaptures");
    std::vector<size_t> allocs = arena::EndAllocRecord();
    ++stats_.steps;
    steps_c.Inc();
    switch (mode_) {
      case kReplay: {
        Plan* full = nullptr;
        for (Plan* p : candidates_) {
          if (p->instrs.size() == cursor_) {
            full = p;
            break;
          }
        }
        if (full != nullptr) {
          ++full->replays;
          ++stats_.replays;
          replays_c.Inc();
          MoveToFront(full);
          obs::GetHistogram("time/plan/replay_step")
              .Observe(watch_.ElapsedSeconds());
        } else {
          // The step ended short of every candidate: a genuinely shorter
          // variant of a known prefix. Record it as its own plan.
          ++stats_.recaptures;
          recaptures_c.Inc();
          Plan np;
          np.instrs.assign(candidates_[0]->instrs.begin(),
                           candidates_[0]->instrs.begin() +
                               static_cast<ptrdiff_t>(cursor_));
          np.backward_order = std::move(recording_.backward_order);
          np.backward_root = recording_.backward_root;
          np.backward_poisoned = recording_.backward_poisoned;
          np.alloc_sizes = std::move(allocs);
          Insert(std::move(np));
        }
        break;
      }
      case kCapture: {
        if (!recording_.instrs.empty()) {
          if (diverged_) {
            ++stats_.recaptures;
            recaptures_c.Inc();
          } else {
            ++stats_.captures;
            captures_c.Inc();
          }
          recording_.alloc_sizes = std::move(allocs);
          Insert(std::move(recording_));
        }
        break;
      }
      case kPending:  // empty step: no ops ran
      case kIdle:
        break;
    }
    mode_ = kIdle;
    step_nodes_.clear();
    candidates_.clear();
    recording_ = Plan{};
    chosen_ = nullptr;
  }

  bool step_open() const { return mode_ != kIdle; }

  void OnNode(TensorImpl* node, const char* kind,
              const TensorImplPtr* parents, size_t num_parents, bool is_view) {
    if (mode_ == kIdle) return;
    const int32_t pos = static_cast<int32_t>(step_nodes_.size());
    node->plan_step = step_seq_;
    node->plan_pos = pos;
    step_nodes_.push_back(node);

    inputs_scratch_.clear();
    for (size_t i = 0; i < num_parents; ++i) {
      const TensorImpl* p = parents[i].get();
      // Nodes born in earlier steps (params, cached masks/relations) are
      // external inputs; their stale plan_pos must not alias a slot.
      inputs_scratch_.push_back(
          p != nullptr && p->plan_step == step_seq_ ? p->plan_pos : -1);
    }
    const bool rg = node->requires_grad;

    if (mode_ == kPending) {
      for (auto& up : plans_) {
        if (!up->instrs.empty() &&
            InstrMatches(up->instrs[0], kind, node->shape, inputs_scratch_,
                         is_view, rg)) {
          candidates_.push_back(up.get());
        }
      }
      if (!candidates_.empty()) {
        mode_ = kReplay;
        cursor_ = 1;
        return;
      }
      mode_ = kCapture;
      Append(kind, node, is_view, rg);
      return;
    }

    if (mode_ == kReplay) {
      Plan* prefix_src = candidates_[0];
      size_t keep = 0;
      for (Plan* p : candidates_) {
        if (cursor_ < p->instrs.size() &&
            InstrMatches(p->instrs[cursor_], kind, node->shape,
                         inputs_scratch_, is_view, rg)) {
          candidates_[keep++] = p;
        }
      }
      if (keep > 0) {
        candidates_.resize(keep);
        ++cursor_;
        return;
      }
      // Divergence: the validated prefix carries over into a fresh capture.
      recording_ = Plan{};
      recording_.instrs.assign(
          prefix_src->instrs.begin(),
          prefix_src->instrs.begin() + static_cast<ptrdiff_t>(cursor_));
      if (backward_done_ && chosen_ != nullptr) {
        // The backward already replayed from the matched plan; its order
        // references prefix slots only, so it transfers to the new plan.
        recording_.backward_order = chosen_->backward_order;
        recording_.backward_root = chosen_->backward_root;
      }
      candidates_.clear();
      chosen_ = nullptr;
      mode_ = kCapture;
      diverged_ = true;
      Append(kind, node, is_view, rg);
      return;
    }

    Append(kind, node, is_view, rg);  // kCapture
  }

  bool CanReplayBackward(TensorImpl* root) {
    if (mode_ != kReplay || backward_done_) return false;
    if (root->plan_step != step_seq_) return false;
    for (Plan* p : candidates_) {
      if (p->instrs.size() == cursor_ && !p->backward_poisoned &&
          !p->backward_order.empty() && p->backward_root == root->plan_pos) {
        chosen_ = p;
        return true;
      }
    }
    return false;
  }

  void ReplayBackward() {
    STISAN_CHECK(chosen_ != nullptr);
    for (int32_t pos : chosen_->backward_order) {
      TensorImpl* node = step_nodes_[static_cast<size_t>(pos)];
      if (node->backward_fn && node->storage->has_grad()) {
        node->backward_fn(*node);
      }
    }
    backward_done_ = true;
  }

  bool WantsBackwardRecord() const {
    if (backward_done_) return false;
    if (mode_ == kCapture) {
      return !recording_.backward_poisoned;
    }
    if (mode_ == kReplay) {
      // A matched plan missing its order (e.g. captured from a step whose
      // loss was non-finite and skipped Backward), or a short step whose
      // order will ride on the prefix plan recorded at EndStep.
      return true;
    }
    return false;
  }

  void OnBackwardSwept(TensorImpl* root,
                       const std::vector<TensorImpl*>& invoked) {
    if (mode_ == kIdle) return;
    backward_done_ = true;
    Plan* target = nullptr;
    if (mode_ == kCapture) {
      target = &recording_;
    } else if (mode_ == kReplay) {
      for (Plan* p : candidates_) {
        if (p->instrs.size() == cursor_) {
          target = p;
          break;
        }
      }
      if (target == nullptr) target = &recording_;  // short-step stash
      if (target->backward_poisoned || !target->backward_order.empty()) return;
    }
    if (target == nullptr) return;
    if (target->backward_root != -1) {
      // Second Backward() in one step — the flat-list shortcut no longer
      // models the sweep; keep this plan forward-only.
      target->backward_order.clear();
      target->backward_poisoned = true;
      return;
    }
    if (root->plan_step != step_seq_) {
      target->backward_poisoned = true;
      return;
    }
    target->backward_root = root->plan_pos;
    target->backward_order.reserve(invoked.size());
    for (TensorImpl* node : invoked) {
      if (node->plan_step != step_seq_) {
        // An out-of-step node (persistent subgraph) participated: replaying
        // by slot position cannot reach it. Forward-only plan.
        target->backward_order.clear();
        target->backward_root = -1;
        target->backward_poisoned = true;
        return;
      }
      target->backward_order.push_back(node->plan_pos);
    }
  }

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats{}; }
  size_t plan_count() const { return plans_.size(); }

  std::string Dump() const {
    std::ostringstream os;
    os << "plan cache: " << plans_.size() << " plan(s)\n";
    for (size_t pi = 0; pi < plans_.size(); ++pi) {
      const Plan& p = *plans_[pi];
      size_t alloc_bytes = 0;
      for (size_t s : p.alloc_sizes) alloc_bytes += s * sizeof(float);
      os << "plan #" << pi << ": " << p.instrs.size() << " instrs, "
         << p.alloc_sizes.size() << " allocs (" << alloc_bytes
         << " bytes peak), backward "
         << (p.backward_poisoned
                 ? "poisoned"
                 : (p.backward_order.empty()
                        ? "none"
                        : std::to_string(p.backward_order.size()) +
                              " closures from slot " +
                              std::to_string(p.backward_root)))
         << ", replays " << p.replays << "\n";
      for (size_t i = 0; i < p.instrs.size(); ++i) {
        const Instr& in = p.instrs[i];
        os << "  %" << i << " = " << in.kind << "(";
        for (size_t j = 0; j < in.inputs.size(); ++j) {
          if (j) os << ", ";
          if (in.inputs[j] < 0) {
            os << "ext";
          } else {
            os << "%" << in.inputs[j];
          }
        }
        os << ") " << FormatShape(in.shape) << " elems=" << in.elems;
        if (in.is_view) os << " view";
        if (in.requires_grad) os << " grad";
        os << "\n";
      }
    }
    return os.str();
  }

 private:
  enum Mode { kIdle, kPending, kCapture, kReplay };

  static std::string FormatShape(const Shape& s) {
    std::ostringstream os;
    os << "[";
    for (size_t i = 0; i < s.size(); ++i) {
      if (i) os << ", ";
      os << s[i];
    }
    os << "]";
    return os.str();
  }

  void Append(const char* kind, const TensorImpl* node, bool is_view,
              bool rg) {
    Instr in;
    in.kind = kind;
    in.shape = node->shape;
    in.inputs = inputs_scratch_;
    int64_t elems = 1;
    for (int64_t d : node->shape) elems *= d;
    in.elems = elems;
    in.is_view = is_view;
    in.requires_grad = rg;
    recording_.instrs.push_back(std::move(in));
  }

  void Insert(Plan&& plan) {
    auto up = std::make_unique<Plan>(std::move(plan));
    arena::ReserveExact(up->alloc_sizes);
    plans_.insert(plans_.begin(), std::move(up));
    if (plans_.size() > kMaxPlans) {
      arena::UnreserveExact(plans_.back()->alloc_sizes);
      plans_.pop_back();
    }
  }

  void MoveToFront(Plan* p) {
    for (size_t i = 0; i < plans_.size(); ++i) {
      if (plans_[i].get() == p) {
        if (i > 0) {
          auto up = std::move(plans_[i]);
          plans_.erase(plans_.begin() + static_cast<ptrdiff_t>(i));
          plans_.insert(plans_.begin(), std::move(up));
        }
        return;
      }
    }
  }

  std::vector<std::unique_ptr<Plan>> plans_;  // MRU order
  uint64_t step_seq_ = 0;
  Mode mode_ = kIdle;
  std::vector<TensorImpl*> step_nodes_;
  std::vector<Plan*> candidates_;
  Plan recording_;
  size_t cursor_ = 0;
  Plan* chosen_ = nullptr;
  bool diverged_ = false;
  bool backward_done_ = false;
  std::vector<int32_t> inputs_scratch_;
  Stats stats_;
  Stopwatch watch_;
};

thread_local Context* g_ctx = nullptr;
thread_local int g_scope_depth = 0;
thread_local int g_step_depth = 0;

}  // namespace

bool Enabled() {
  const int ov = g_plan_override.load(std::memory_order_relaxed);
  if (ov >= 0) return ov != 0;
  static const bool env_on = [] {
    const char* v = std::getenv("STISAN_STATIC_PLAN");
    return !(v != nullptr && v[0] == '0' && v[1] == '\0');
  }();
  return env_on;
}

void SetEnabledForTesting(int value) {
  g_plan_override.store(value, std::memory_order_relaxed);
}

bool FusionEnabled() {
  const int ov = g_fusion_override.load(std::memory_order_relaxed);
  if (ov >= 0) return ov != 0;
  return Enabled();
}

void SetFusionEnabledForTesting(int value) {
  g_fusion_override.store(value, std::memory_order_relaxed);
}

Scope::Scope() {
  if (!Enabled()) return;
  ++g_scope_depth;
  if (g_ctx != nullptr) return;  // nested: share the outer context
  // The forced arena scope must outlive the context: the context destructor
  // unreserves every cached plan's exact-size buffers, which requires the
  // pool to still be active.
  forced_ = new arena::ForcedScope();
  g_ctx = new Context();
  owner_ = true;
}

Scope::~Scope() {
  if (forced_ == nullptr && !owner_ && g_scope_depth == 0) return;  // inert
  if (g_scope_depth > 0) --g_scope_depth;
  if (!owner_) return;
  delete g_ctx;
  g_ctx = nullptr;
  delete static_cast<arena::ForcedScope*>(forced_);
  forced_ = nullptr;
}

StepScope::StepScope() {
  if (g_ctx == nullptr) return;
  if (g_step_depth++ > 0) return;  // nested steps are inert
  g_ctx->BeginStep();
  engaged_ = true;
}

StepScope::~StepScope() {
  if (g_ctx == nullptr) return;
  if (g_step_depth > 0) --g_step_depth;
  if (engaged_) g_ctx->EndStep();
}

void OnNodeCreated(TensorImpl* node, const char* kind,
                   const TensorImplPtr* parents, size_t num_parents,
                   bool is_view) {
  Context* ctx = g_ctx;
  if (ctx == nullptr) return;
  ctx->OnNode(node, kind, parents, num_parents, is_view);
}

bool CanReplayBackward(TensorImpl* root) {
  Context* ctx = g_ctx;
  if (ctx == nullptr) return false;
  return ctx->CanReplayBackward(root);
}

void ReplayBackward() {
  STISAN_CHECK(g_ctx != nullptr);
  g_ctx->ReplayBackward();
}

bool WantsBackwardRecord() {
  Context* ctx = g_ctx;
  if (ctx == nullptr) return false;
  return ctx->WantsBackwardRecord();
}

void OnBackwardSwept(TensorImpl* root,
                     const std::vector<TensorImpl*>& invoked) {
  Context* ctx = g_ctx;
  if (ctx == nullptr) return;
  ctx->OnBackwardSwept(root, invoked);
}

Stats GetStats() {
  return g_ctx != nullptr ? g_ctx->stats() : Stats{};
}

void ResetStats() {
  if (g_ctx != nullptr) g_ctx->ResetStats();
}

size_t CachedPlanCount() {
  return g_ctx != nullptr ? g_ctx->plan_count() : 0;
}

std::string DumpActivePlans() {
  return g_ctx != nullptr ? g_ctx->Dump() : std::string("no active plan scope\n");
}

}  // namespace stisan::plan
