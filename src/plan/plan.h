// Static execution plans: capture the autograd tape once, replay it as an
// instruction list (DESIGN.md §13).
//
// Every training step and every eval batch rebuilds an *identical* tape —
// same ops, same shapes, same allocation sizes. A plan::Scope turns that
// repetition into a compiled artifact:
//
//  - Capture: the first step inside a StepScope records every node the ops
//    layer creates (op kind, output shape, input slot positions, buffer
//    size) into a static instruction list, plus the exact order in which
//    the eager backward sweep invoked backward closures and the full
//    allocation record of the step.
//  - Replay: subsequent steps whose op stream matches a cached plan skip
//    the per-step bookkeeping the structure makes redundant — the backward
//    topological sort (the recorded invocation order is replayed as a flat
//    list) and allocator traffic (the plan's alloc record feeds
//    arena::ReserveExact, so every buffer is served from an exact-size
//    pool: zero mallocs per replayed step).
//  - Recapture: any divergence from the cached instruction stream — a new
//    sequence length, an extra op, a changed requires_grad — falls back to
//    capture for that step, transparently. The validated prefix carries
//    over; the new plan joins the cache. Counted in plan/recaptures.
//
// Replay is *structural*: op bodies still execute eagerly (fresh inputs,
// fresh RNG draws), so results are bit-identical to the eager path by
// construction — the plan only removes work whose outcome is fully
// determined by graph structure. STISAN_STATIC_PLAN=0 disables the whole
// subsystem and restores the pre-plan eager path exactly.
//
// Layering: this library sits between the arena and the tensor library. It
// uses TensorImpl only through its header (inline members + the backward
// std::function), so stisan_tensor can link stisan_plan without a cycle.
//
// Threading: contexts are thread_local (one per Scope-owning thread); a
// step's nodes are created on one thread. The arena alloc record is global
// — one plan step at a time per process, which the single-threaded tape
// already guarantees.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace stisan::plan {

/// True when plan capture/replay is on: STISAN_STATIC_PLAN unset or =1
/// (default on), overridable for tests (1 on, 0 off, -1 restore env).
bool Enabled();
void SetEnabledForTesting(int value);

/// True when modules should lower elementwise chains through the fused ops
/// (ops::FusedBiasRelu, ops::FusedResidualLayerNorm). Follows Enabled()
/// unless overridden — the fused lowerings are bit-identical to the
/// composed chains, but STISAN_STATIC_PLAN=0 must restore the exact
/// pre-plan op stream.
bool FusionEnabled();
void SetFusionEnabledForTesting(int value);

/// One recorded tape event: the signature by which replay validates that
/// the current step still matches the captured structure.
struct Instr {
  const char* kind = nullptr;  // static string literal from the ops layer
  Shape shape;                 // output shape
  std::vector<int32_t> inputs;  // producer slot per parent; -1 = external
  int64_t elems = 0;            // output buffer size
  bool is_view = false;
  bool requires_grad = false;
};

/// A captured step: forward instruction list, backward invocation order
/// (slot positions, in eager sweep order), and the step's allocation sizes.
struct Plan {
  std::vector<Instr> instrs;
  std::vector<int32_t> backward_order;
  int32_t backward_root = -1;
  bool backward_poisoned = false;  // sweep touched out-of-step nodes
  std::vector<size_t> alloc_sizes;
  uint64_t replays = 0;
};

/// Installs a plan context on this thread (nested scopes share the
/// outermost context and its plan cache). Also forces the arena on
/// (arena::ForcedScope): exact-size reservations live in the pool. No-op
/// when Enabled() is false.
class Scope {
 public:
  Scope();
  ~Scope();
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  void* forced_ = nullptr;  // arena::ForcedScope, owner only
  bool owner_ = false;
};

/// Brackets one step (train window / eval batch). Nodes created inside are
/// routed to the active context; EndStep (the destructor) finalises a
/// capture or retires a replay. No-op without an enclosing Scope; nested
/// StepScopes are inert.
class StepScope {
 public:
  StepScope();
  ~StepScope();
  StepScope(const StepScope&) = delete;
  StepScope& operator=(const StepScope&) = delete;

 private:
  bool engaged_ = false;
};

// ---- Hooks from the tensor layer (cheap no-ops when no step is open) -------

/// Records/validates a freshly created node. Called by ops.cc MakeNode /
/// MakeView before parents are moved into the node.
void OnNodeCreated(internal::TensorImpl* node, const char* kind,
                   const internal::TensorImplPtr* parents, size_t num_parents,
                   bool is_view);

/// True when the active step fully matched a cached plan that recorded a
/// backward order rooted at `root` — Tensor::Backward may then seed the
/// root grad and call ReplayBackward instead of topo-sorting.
bool CanReplayBackward(internal::TensorImpl* root);

/// Replays the recorded backward invocation order (root grad must already
/// be seeded). Only valid immediately after CanReplayBackward returned true.
void ReplayBackward();

/// True when the eager sweep about to run should report its invocation
/// order via OnBackwardSwept (capturing, or a replayed plan missing one).
bool WantsBackwardRecord();

/// Stores the eager sweep's backward invocation order into the step's
/// recording (or attaches it to the matched plan).
void OnBackwardSwept(internal::TensorImpl* root,
                     const std::vector<internal::TensorImpl*>& invoked);

// ---- Introspection ---------------------------------------------------------

struct Stats {
  uint64_t steps = 0;
  uint64_t captures = 0;    // fresh captures (new first-op signature)
  uint64_t replays = 0;     // steps fully served by a cached plan
  uint64_t recaptures = 0;  // mid-step divergence or short step
};
/// Stats of this thread's active context (zeros when none).
Stats GetStats();
void ResetStats();

/// Number of plans cached in this thread's active context.
size_t CachedPlanCount();

/// Human-readable dump of every cached plan in this thread's active context
/// (op list with slots, fused kinds, backward order, alloc footprint) —
/// the tools/dump_plan CLI output.
std::string DumpActivePlans();

}  // namespace stisan::plan
