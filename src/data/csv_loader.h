// CSV check-in loader for real LBSN dumps.
//
// Expected line format (header optional, detected automatically):
//   user_id,poi_id,latitude,longitude,timestamp_seconds
//
// User and POI ids may be arbitrary strings; they are compacted to dense
// ids (POIs to 1..P, users to 0..U-1). Visits are sorted chronologically
// per user. If the same POI id appears with different coordinates, the
// first occurrence wins.

#pragma once

#include <string>

#include "data/types.h"
#include "util/status.h"

namespace stisan::data {

/// Loads a dataset from a CSV file. Returns IoError if the file cannot be
/// read and InvalidArgument on malformed rows.
Result<Dataset> LoadCsv(const std::string& path, const std::string& name);

/// Writes a dataset to CSV in the same format (useful for exporting
/// synthetic data and round-trip testing).
Status SaveCsv(const Dataset& dataset, const std::string& path);

}  // namespace stisan::data
