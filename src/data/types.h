// Core data types for sequential POI recommendation: check-ins, datasets,
// training windows and evaluation instances (paper §II).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geo/geo.h"

namespace stisan::data {

/// POI id 0 is reserved for the head-padding token everywhere.
inline constexpr int64_t kPaddingPoi = 0;

/// One visit in a user's chronological history (Definition 1, with the user
/// implicit in the containing sequence and the location stored per POI).
struct Visit {
  int64_t poi = kPaddingPoi;
  double timestamp = 0.0;  // seconds since epoch
};

/// Aggregate statistics matching the paper's Table II.
struct DatasetStats {
  int64_t num_users = 0;
  int64_t num_pois = 0;
  int64_t num_checkins = 0;
  double sparsity = 0.0;         // 1 - checkins / (users * pois)
  double avg_seq_length = 0.0;

  std::string ToString() const;
};

/// A check-in dataset: per-user chronological sequences plus POI locations.
struct Dataset {
  std::string name;
  /// Index = POI id; entry 0 is the padding POI (location unused).
  std::vector<geo::GeoPoint> poi_coords;
  /// Index = user id (0-based), chronologically sorted visits.
  std::vector<std::vector<Visit>> user_seqs;

  int64_t num_users() const { return static_cast<int64_t>(user_seqs.size()); }
  int64_t num_pois() const {
    return static_cast<int64_t>(poi_coords.size()) - 1;
  }
  int64_t num_checkins() const;
  const geo::GeoPoint& poi_location(int64_t poi) const {
    return poi_coords[static_cast<size_t>(poi)];
  }

  DatasetStats Stats() const;
};

/// A fixed-length training window of n+1 visits (head-padded with
/// kPaddingPoi): source = visits[0..n-1], target = visits[1..n]
/// (paper §III-A: predict the i+1-th POI at each step i).
struct TrainWindow {
  int64_t user = 0;
  std::vector<int64_t> poi;  // length n+1
  std::vector<double> t;     // length n+1; padding copies the first real time
  /// Index of the first non-padding entry in [0, n+1).
  int64_t first_real = 0;
};

/// A test instance: the user's most recent n visits as source and the held
/// out next POI as target (paper §IV-A).
struct EvalInstance {
  int64_t user = 0;
  std::vector<int64_t> poi;  // length n source (head-padded)
  std::vector<double> t;     // length n
  int64_t first_real = 0;
  int64_t target = 0;
  double target_time = 0.0;
  /// All POIs the user visited before the target (for "previously
  /// unvisited" candidate filtering).
  std::vector<int64_t> visited;
};

}  // namespace stisan::data
