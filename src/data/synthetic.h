// Synthetic LBSN check-in generator.
//
// The public dumps the paper uses (Gowalla, Brightkite, Weeplaces and the
// proprietary Changchun transportation log) are unavailable offline, so this
// generator produces check-in streams with the statistical structure those
// models exploit (see DESIGN.md §2):
//
//  * POIs clustered around activity centres (spatial clustering [24]-[26]);
//  * power-law POI popularity;
//  * each user anchored to a home region with a personal favourite set;
//  * movement coupled to time gaps: short gaps lead to spatially-near next
//    POIs, long (e.g. overnight) gaps lead back to the home region or to
//    globally popular POIs. This is exactly the Δt→Δd dependency that TAPE
//    and IAAB (and TiSASRec/STAN/GeoSAN) are designed to capture, so models
//    that use spatio-temporal intervals genuinely separate from order-only
//    baselines.
//
// Everything is driven by a seeded Rng: identical configs reproduce
// identical datasets bit-for-bit.

#pragma once

#include <cstdint>
#include <string>

#include "data/types.h"

namespace stisan::data {

struct SyntheticConfig {
  std::string name = "synthetic";
  uint64_t seed = 42;

  // ---- World ----
  int64_t num_users = 300;
  int64_t num_pois = 1500;
  int64_t num_clusters = 12;
  geo::GeoPoint city_center = {43.88, 125.35};
  double city_radius_km = 15.0;
  double cluster_radius_km = 1.2;
  double poi_zipf_alpha = 0.8;       // POI popularity skew
  double cluster_zipf_alpha = 1.1;   // cluster size skew
  /// Exponent applied to popularity inside movement choices; < 1 weakens
  /// the popularity shortcut so spatial signals carry real information.
  double popularity_weight = 0.5;

  // ---- Per-user behaviour ----
  int64_t min_checkins = 30;
  int64_t max_checkins = 120;
  int64_t favorites = 10;            // personal frequently-visited POIs
  /// Each user frequents this many anchor regions (home, work, leisure);
  /// after long gaps they re-appear near one of them. Recovering the anchor
  /// set requires attending spatially over the whole history — the signal
  /// behind the paper's Fig. 2 observation.
  int64_t anchors = 3;
  double anchor_radius_km = 2.5;     // POI pool radius around an anchor
  double nearby_radius_km = 4.0;     // "stay in the area" radius
  double p_nearby_after_short_gap = 0.85;
  double p_anchor_after_long_gap = 0.8;
  double p_favorite = 0.5;           // short-gap non-nearby: revisit habit
  /// Movement choices weight POIs by exp(-distance / distance_decay_km):
  /// sharply preferring closer POIs is the spatial-clustering signal
  /// geo-aware models exploit.
  double distance_decay_km = 0.4;
  double anchor_decay_km = 1.0;      // softer decay around anchors
  /// Direction persistence within a session: the next move is additionally
  /// weighted by exp(momentum * cos(angle to the previous move)). This is
  /// *second-order* structure — a first-order Markov model (FPMC) cannot
  /// represent it, sequence models can.
  double momentum = 1.5;
  /// After a long gap the user advances through their anchors in a fixed
  /// personal routine (home -> work -> leisure -> home ...) with this
  /// probability; otherwise an anchor is drawn by weight. The *session
  /// start* anchor is best inferred from the whole recent history.
  double p_cycle_anchor = 0.75;

  // ---- Temporal structure ----
  double p_long_gap = 0.3;           // overnight / multi-day break
  double short_gap_hours_mean = 2.5;
  double long_gap_hours_mean = 18.0;

  /// Approximate scale multiplier applied to num_users/num_pois (used by
  /// presets to shrink paper-scale datasets to CPU scale).
  double scale = 1.0;
};

/// Generates a dataset according to `config`.
Dataset GenerateSynthetic(const SyntheticConfig& config);

/// Presets that mirror the relative characteristics of the paper's four
/// datasets (Table II) at CPU scale: Gowalla (many users, many POIs, short
/// sequences), Brightkite (medium, longer sequences), Weeplaces (few users,
/// very long sequences), Changchun (huge user base, tiny POI set — a city
/// transportation network).
SyntheticConfig GowallaLikeConfig(double scale = 1.0);
SyntheticConfig BrightkiteLikeConfig(double scale = 1.0);
SyntheticConfig WeeplacesLikeConfig(double scale = 1.0);
SyntheticConfig ChangchunLikeConfig(double scale = 1.0);

/// Catalog-scale preset for the two-stage full-catalog ranker (DESIGN.md
/// §17): a metropolis-sized POI universe — 1e5 POIs at scale 1, 1e6 at
/// scale 10 — spread over many small clusters, with a deliberately modest
/// user sample (users grow as sqrt(scale)). The point is stressing
/// stage-one retrieval over a huge catalog, not training volume.
SyntheticConfig MetroScaleConfig(double scale = 1.0);

}  // namespace stisan::data
