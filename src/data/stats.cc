#include "data/stats.h"

#include <algorithm>
#include <cmath>

#include "geo/geo.h"
#include "util/string_util.h"

namespace stisan::data {

std::string Distribution::ToString() const {
  return StrFormat(
      "n=%lld mean=%.2f sd=%.2f min=%.2f p25=%.2f med=%.2f p75=%.2f "
      "p95=%.2f max=%.2f",
      static_cast<long long>(count), mean, stddev, min, p25, median, p75,
      p95, max);
}

Distribution Summarize(std::vector<double> samples) {
  Distribution d;
  if (samples.empty()) return d;
  std::sort(samples.begin(), samples.end());
  d.count = static_cast<int64_t>(samples.size());
  double sum = 0.0;
  for (double v : samples) sum += v;
  d.mean = sum / double(d.count);
  double var = 0.0;
  for (double v : samples) var += (v - d.mean) * (v - d.mean);
  d.stddev = std::sqrt(var / double(d.count));
  auto q = [&samples](double p) {
    const double idx = p * double(samples.size() - 1);
    const size_t lo = static_cast<size_t>(idx);
    const size_t hi = std::min(lo + 1, samples.size() - 1);
    const double frac = idx - double(lo);
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
  };
  d.min = samples.front();
  d.p25 = q(0.25);
  d.median = q(0.5);
  d.p75 = q(0.75);
  d.p95 = q(0.95);
  d.max = samples.back();
  return d;
}

Distribution IntervalHoursDistribution(const Dataset& dataset) {
  std::vector<double> samples;
  for (const auto& seq : dataset.user_seqs) {
    for (size_t i = 1; i < seq.size(); ++i) {
      samples.push_back((seq[i].timestamp - seq[i - 1].timestamp) / 3600.0);
    }
  }
  return Summarize(std::move(samples));
}

Distribution JumpKmDistribution(const Dataset& dataset) {
  std::vector<double> samples;
  for (const auto& seq : dataset.user_seqs) {
    for (size_t i = 1; i < seq.size(); ++i) {
      samples.push_back(
          geo::HaversineKm(dataset.poi_location(seq[i - 1].poi),
                           dataset.poi_location(seq[i].poi)));
    }
  }
  return Summarize(std::move(samples));
}

Distribution RadiusOfGyrationDistribution(const Dataset& dataset) {
  std::vector<double> samples;
  for (const auto& seq : dataset.user_seqs) {
    if (seq.empty()) continue;
    geo::GeoPoint centroid{0, 0};
    for (const auto& v : seq) {
      const auto& p = dataset.poi_location(v.poi);
      centroid.lat += p.lat;
      centroid.lon += p.lon;
    }
    centroid.lat /= double(seq.size());
    centroid.lon /= double(seq.size());
    double sq = 0.0;
    for (const auto& v : seq) {
      const double d =
          geo::HaversineKm(centroid, dataset.poi_location(v.poi));
      sq += d * d;
    }
    samples.push_back(std::sqrt(sq / double(seq.size())));
  }
  return Summarize(std::move(samples));
}

double PopularityGini(const Dataset& dataset) {
  std::vector<double> counts(static_cast<size_t>(dataset.num_pois()), 0.0);
  for (const auto& seq : dataset.user_seqs) {
    for (const auto& v : seq) counts[static_cast<size_t>(v.poi - 1)] += 1.0;
  }
  std::sort(counts.begin(), counts.end());
  double total = 0.0;
  double weighted = 0.0;
  const double n = double(counts.size());
  for (size_t i = 0; i < counts.size(); ++i) {
    total += counts[i];
    weighted += double(i + 1) * counts[i];
  }
  if (total <= 0.0 || counts.empty()) return 0.0;
  // Gini = (2 * sum(i * x_i) / (n * sum(x)) - (n + 1) / n)
  return 2.0 * weighted / (n * total) - (n + 1.0) / n;
}

double RevisitRate(const Dataset& dataset) {
  int64_t revisits = 0;
  int64_t total = 0;
  std::vector<char> seen;
  for (const auto& seq : dataset.user_seqs) {
    seen.assign(static_cast<size_t>(dataset.num_pois()) + 1, 0);
    for (const auto& v : seq) {
      if (seen[static_cast<size_t>(v.poi)]) ++revisits;
      seen[static_cast<size_t>(v.poi)] = 1;
      ++total;
    }
  }
  return total > 0 ? double(revisits) / double(total) : 0.0;
}

SessionStats ComputeSessionStats(const Dataset& dataset, double gap_hours) {
  SessionStats out;
  const double gap_seconds = gap_hours * 3600.0;
  int64_t sessions = 0;
  int64_t checkins = 0;
  double within_km = 0.0;
  int64_t within_n = 0;
  double between_km = 0.0;
  int64_t between_n = 0;
  int64_t users = 0;
  for (const auto& seq : dataset.user_seqs) {
    if (seq.empty()) continue;
    ++users;
    ++sessions;  // first session starts at the first check-in
    checkins += static_cast<int64_t>(seq.size());
    for (size_t i = 1; i < seq.size(); ++i) {
      const double gap = seq[i].timestamp - seq[i - 1].timestamp;
      const double km =
          geo::HaversineKm(dataset.poi_location(seq[i - 1].poi),
                           dataset.poi_location(seq[i].poi));
      if (gap >= gap_seconds) {
        ++sessions;
        between_km += km;
        ++between_n;
      } else {
        within_km += km;
        ++within_n;
      }
    }
  }
  if (sessions > 0) {
    out.mean_session_length = double(checkins) / double(sessions);
  }
  if (users > 0) out.mean_sessions_per_user = double(sessions) / double(users);
  if (within_n > 0) out.mean_within_session_km = within_km / double(within_n);
  if (between_n > 0) {
    out.mean_between_session_km = between_km / double(between_n);
  }
  return out;
}

}  // namespace stisan::data
