#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "geo/spatial_index.h"
#include "util/check.h"
#include "util/rng.h"

namespace stisan::data {
namespace {

constexpr double kHour = 3600.0;

struct World {
  std::vector<geo::GeoPoint> cluster_centers;
  std::vector<int64_t> poi_cluster;       // cluster of each POI (1-based ids)
  std::vector<double> poi_popularity;     // unnormalised weight per POI
  std::vector<std::vector<int64_t>> cluster_pois;
};

World BuildWorld(const SyntheticConfig& cfg, Rng& rng,
                 std::vector<geo::GeoPoint>* poi_coords) {
  World world;
  // Activity centres uniform in the city disk.
  for (int64_t c = 0; c < cfg.num_clusters; ++c) {
    const double r = cfg.city_radius_km * std::sqrt(rng.Uniform());
    const double theta = rng.Uniform() * 2.0 * M_PI;
    world.cluster_centers.push_back(geo::OffsetKm(
        cfg.city_center, r * std::sin(theta), r * std::cos(theta)));
  }
  // POIs: cluster chosen by a skewed distribution, position gaussian around
  // the centre, popularity Zipf over a random permutation (so popularity is
  // not correlated with id order).
  poi_coords->clear();
  poi_coords->push_back({});  // padding POI 0
  world.poi_cluster.assign(static_cast<size_t>(cfg.num_pois) + 1, 0);
  world.poi_popularity.assign(static_cast<size_t>(cfg.num_pois) + 1, 0.0);
  world.cluster_pois.resize(static_cast<size_t>(cfg.num_clusters));
  std::vector<int64_t> rank(static_cast<size_t>(cfg.num_pois));
  for (size_t i = 0; i < rank.size(); ++i) rank[i] = static_cast<int64_t>(i);
  rng.Shuffle(rank);
  for (int64_t p = 1; p <= cfg.num_pois; ++p) {
    const size_t cluster = rng.Zipf(
        static_cast<size_t>(cfg.num_clusters), cfg.cluster_zipf_alpha);
    const geo::GeoPoint center = world.cluster_centers[cluster];
    poi_coords->push_back(geo::OffsetKm(
        center, rng.Normal(0.0, cfg.cluster_radius_km),
        rng.Normal(0.0, cfg.cluster_radius_km)));
    world.poi_cluster[static_cast<size_t>(p)] = static_cast<int64_t>(cluster);
    world.cluster_pois[cluster].push_back(p);
    world.poi_popularity[static_cast<size_t>(p)] = std::pow(
        double(rank[static_cast<size_t>(p - 1)] + 1), -cfg.poi_zipf_alpha);
  }
  return world;
}

// Samples a POI id from `candidates` weighted by popularity^exponent.
int64_t SampleByPopularity(const std::vector<int64_t>& candidates,
                           const World& world, double exponent, Rng& rng) {
  STISAN_CHECK(!candidates.empty());
  std::vector<double> w(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i)
    w[i] = std::pow(world.poi_popularity[static_cast<size_t>(candidates[i])],
                    exponent);
  return candidates[rng.Categorical(w)];
}

// Samples weighted by popularity^exponent x exp(-distance / decay_km),
// optionally x exp(momentum * cos(angle between the previous move direction
// and the move to the candidate)).
int64_t SampleByPopularityAndDistance(const std::vector<int64_t>& candidates,
                                      const World& world,
                                      const std::vector<geo::GeoPoint>& coords,
                                      const geo::GeoPoint& origin,
                                      double decay_km, double exponent,
                                      Rng& rng,
                                      const geo::GeoPoint* previous = nullptr,
                                      double momentum = 0.0) {
  STISAN_CHECK(!candidates.empty());
  // Previous move direction (km offsets), if meaningful.
  double dir_x = 0.0, dir_y = 0.0, dir_norm = 0.0;
  if (previous != nullptr && momentum > 0.0) {
    dir_y = origin.lat - previous->lat;
    dir_x = (origin.lon - previous->lon) *
            std::cos(origin.lat * M_PI / 180.0);
    dir_norm = std::sqrt(dir_x * dir_x + dir_y * dir_y);
  }
  std::vector<double> w(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    const auto& c = coords[static_cast<size_t>(candidates[i])];
    const double dist = geo::HaversineKm(origin, c);
    double weight =
        std::pow(world.poi_popularity[static_cast<size_t>(candidates[i])],
                 exponent) *
        std::exp(-dist / decay_km);
    if (dir_norm > 1e-9) {
      double mx = (c.lon - origin.lon) * std::cos(origin.lat * M_PI / 180.0);
      double my = c.lat - origin.lat;
      const double mnorm = std::sqrt(mx * mx + my * my);
      if (mnorm > 1e-9) {
        const double cosine =
            (mx * dir_x + my * dir_y) / (mnorm * dir_norm);
        weight *= std::exp(momentum * cosine);
      }
    }
    w[i] = weight;
  }
  return candidates[rng.Categorical(w)];
}

}  // namespace

Dataset GenerateSynthetic(const SyntheticConfig& cfg) {
  STISAN_CHECK_GE(cfg.num_users, 1);
  STISAN_CHECK_GE(cfg.num_pois, 10);
  STISAN_CHECK_GE(cfg.num_clusters, 1);
  Rng rng(cfg.seed);

  Dataset ds;
  ds.name = cfg.name;
  World world = BuildWorld(cfg, rng, &ds.poi_coords);

  // Spatial index over real POIs (ids shifted by 1: index id = poi - 1).
  std::vector<geo::GeoPoint> real_coords(ds.poi_coords.begin() + 1,
                                         ds.poi_coords.end());
  geo::SpatialGridIndex index(real_coords, /*cell_km=*/2.0);

  std::vector<int64_t> all_pois(static_cast<size_t>(cfg.num_pois));
  for (int64_t p = 1; p <= cfg.num_pois; ++p)
    all_pois[static_cast<size_t>(p - 1)] = p;

  ds.user_seqs.resize(static_cast<size_t>(cfg.num_users));
  for (int64_t u = 0; u < cfg.num_users; ++u) {
    Rng user_rng = rng.Fork();
    // Anchor regions: a home cluster plus a few secondary clusters the user
    // frequents. Anchor weights decay geometrically (home dominates).
    const int64_t num_anchors =
        std::min<int64_t>(cfg.anchors, cfg.num_clusters);
    std::vector<geo::GeoPoint> anchor_centers;
    std::vector<std::vector<int64_t>> anchor_pools;
    std::vector<double> anchor_weights;
    for (int64_t a = 0; a < num_anchors; ++a) {
      const size_t cluster =
          user_rng.UniformInt(static_cast<uint64_t>(cfg.num_clusters));
      const geo::GeoPoint center = world.cluster_centers[cluster];
      auto pool_ids = index.WithinRadius(center, cfg.anchor_radius_km);
      std::vector<int64_t> pool;
      pool.reserve(pool_ids.size());
      for (int64_t id : pool_ids) pool.push_back(id + 1);
      if (pool.empty()) pool = all_pois;
      anchor_centers.push_back(center);
      anchor_pools.push_back(std::move(pool));
      anchor_weights.push_back(std::pow(0.45, double(a)));
    }
    // Personal favourites: habitual POIs near the home anchor.
    std::vector<int64_t> favorites;
    for (int64_t f = 0; f < cfg.favorites; ++f) {
      favorites.push_back(SampleByPopularityAndDistance(
          anchor_pools[0], world, ds.poi_coords, anchor_centers[0],
          cfg.anchor_decay_km, cfg.popularity_weight, user_rng));
    }

    const int64_t length = user_rng.UniformInt(cfg.min_checkins,
                                               cfg.max_checkins);
    auto& seq = ds.user_seqs[static_cast<size_t>(u)];
    seq.reserve(static_cast<size_t>(length));

    // Day-session structure: each session starts near one of the user's
    // anchors (after an overnight/multi-day gap) and continues with a run
    // of short-gap moves that sharply prefer POIs close to the current one.
    // Session progress is readable from the PAST inter-check-in intervals,
    // so interval-aware models can anticipate whether the next move stays
    // local (mid-session) or jumps to an anchor (session boundary).
    double t = double(user_rng.UniformInt(int64_t{0}, int64_t{365})) * 24.0 *
                   kHour +
               user_rng.Normal(9.0, 1.5) * kHour;
    int64_t current = favorites[user_rng.UniformInt(
        static_cast<uint64_t>(favorites.size()))];
    int64_t previous = 0;  // padding = no previous move yet
    size_t routine_position =
        user_rng.UniformInt(static_cast<uint64_t>(anchor_centers.size()));
    seq.push_back({current, t});

    while (static_cast<int64_t>(seq.size()) < length) {
      // ---- Continue the current session with short-gap local moves. ----
      const int64_t session_moves = user_rng.UniformInt(int64_t{1}, int64_t{5});
      for (int64_t sidx = 0;
           sidx < session_moves &&
           static_cast<int64_t>(seq.size()) < length;
           ++sidx) {
        t += std::max(0.05, user_rng.Exponential(
                                1.0 / cfg.short_gap_hours_mean)) *
             kHour;
        int64_t next;
        if (user_rng.Bernoulli(cfg.p_nearby_after_short_gap)) {
          const auto& origin = ds.poi_coords[static_cast<size_t>(current)];
          auto near_ids = index.WithinRadius(origin, cfg.nearby_radius_km);
          if (near_ids.empty()) {
            next = SampleByPopularity(all_pois, world, cfg.popularity_weight,
                                      user_rng);
          } else {
            std::vector<int64_t> near_pois(near_ids.size());
            for (size_t k = 0; k < near_ids.size(); ++k)
              near_pois[k] = near_ids[k] + 1;
            const geo::GeoPoint* prev_loc =
                previous != 0
                    ? &ds.poi_coords[static_cast<size_t>(previous)]
                    : nullptr;
            next = SampleByPopularityAndDistance(
                near_pois, world, ds.poi_coords, origin,
                cfg.distance_decay_km, cfg.popularity_weight, user_rng,
                prev_loc, cfg.momentum);
          }
        } else if (user_rng.Bernoulli(cfg.p_favorite)) {
          next = favorites[user_rng.UniformInt(
              static_cast<uint64_t>(favorites.size()))];
        } else {
          next = SampleByPopularity(all_pois, world, cfg.popularity_weight,
                                    user_rng);
        }
        seq.push_back({next, t});
        previous = current;
        current = next;
      }
      if (static_cast<int64_t>(seq.size()) >= length) break;

      // ---- Session boundary: overnight (or multi-day) gap, then the user
      // re-appears near one of their anchor regions. ----
      t += (10.0 + user_rng.Exponential(1.0 / cfg.long_gap_hours_mean) *
                       cfg.long_gap_hours_mean) *
           kHour;
      int64_t next;
      if (user_rng.Bernoulli(cfg.p_anchor_after_long_gap)) {
        // Personal routine: usually the next anchor in the cycle, sometimes
        // a weight-sampled one.
        if (user_rng.Bernoulli(cfg.p_cycle_anchor)) {
          routine_position = (routine_position + 1) % anchor_centers.size();
        } else {
          routine_position = user_rng.Categorical(anchor_weights);
        }
        const size_t a = routine_position;
        next = SampleByPopularityAndDistance(
            anchor_pools[a], world, ds.poi_coords, anchor_centers[a],
            cfg.anchor_decay_km, cfg.popularity_weight, user_rng);
      } else {
        next = SampleByPopularity(all_pois, world, cfg.popularity_weight,
                                  user_rng);
      }
      seq.push_back({next, t});
      previous = 0;  // a long gap resets the movement direction
      current = next;
    }
  }
  return ds;
}

namespace {
// Scales a base count, clamped below so the evaluation protocol keeps a
// usable number of test users and a non-degenerate POI universe at small
// bench scales.
int64_t Scaled(int64_t base, double scale, int64_t floor = 1) {
  return std::max<int64_t>(floor,
                           static_cast<int64_t>(double(base) * scale));
}
}  // namespace

SyntheticConfig GowallaLikeConfig(double scale) {
  // Gowalla: many users, very many POIs, short sequences (avg 53).
  SyntheticConfig cfg;
  cfg.name = "gowalla-like";
  cfg.seed = 1001;
  cfg.num_users = Scaled(400, scale, /*floor=*/120);
  cfg.num_pois = Scaled(2400, scale, /*floor=*/700);
  cfg.num_clusters = 16;
  cfg.city_radius_km = 25.0;
  cfg.min_checkins = 25;
  cfg.max_checkins = 80;  // avg ~53
  return cfg;
}

SyntheticConfig BrightkiteLikeConfig(double scale) {
  // Brightkite: medium size, longer sequences (avg 146).
  SyntheticConfig cfg;
  cfg.name = "brightkite-like";
  cfg.seed = 1002;
  cfg.num_users = Scaled(200, scale, /*floor=*/90);
  cfg.num_pois = Scaled(1600, scale, /*floor=*/500);
  cfg.num_clusters = 12;
  cfg.city_radius_km = 20.0;
  cfg.min_checkins = 90;
  cfg.max_checkins = 200;  // avg ~146
  return cfg;
}

SyntheticConfig WeeplacesLikeConfig(double scale) {
  // Weeplaces: few users, very long sequences (avg 325).
  SyntheticConfig cfg;
  cfg.name = "weeplaces-like";
  cfg.seed = 1003;
  cfg.num_users = Scaled(100, scale, /*floor=*/60);
  cfg.num_pois = Scaled(1200, scale, /*floor=*/400);
  cfg.num_clusters = 10;
  cfg.city_radius_km = 18.0;
  cfg.min_checkins = 250;
  cfg.max_checkins = 400;  // avg ~325
  return cfg;
}

SyntheticConfig ChangchunLikeConfig(double scale) {
  // Changchun: huge user base over a tiny POI set (city transport network),
  // short sequences (avg 43). We keep the POI set small and users numerous.
  SyntheticConfig cfg;
  cfg.name = "changchun-like";
  cfg.seed = 1004;
  cfg.num_users = Scaled(800, scale, /*floor=*/200);
  cfg.num_pois = Scaled(600, scale, /*floor=*/280);
  cfg.num_clusters = 8;
  cfg.city_radius_km = 12.0;
  cfg.cluster_radius_km = 0.8;
  cfg.min_checkins = 25;
  cfg.max_checkins = 60;  // avg ~43
  return cfg;
}

SyntheticConfig MetroScaleConfig(double scale) {
  // Metropolis catalog: 1e5 POIs at scale 1 across hundreds of small,
  // dense clusters. Movement radii shrink accordingly — with this POI
  // density a 1.5 km neighbourhood already holds hundreds of candidates,
  // which keeps generation cost bounded and makes geo pruning meaningful
  // (the true next POI is almost always spatially near the previous one).
  SyntheticConfig cfg;
  cfg.name = "metro-scale";
  cfg.seed = 1005;
  cfg.num_users = Scaled(240, std::sqrt(std::max(0.0, scale)),
                         /*floor=*/60);
  cfg.num_pois = Scaled(100000, scale, /*floor=*/20000);
  cfg.num_clusters = Scaled(400, scale, /*floor=*/120);
  cfg.city_radius_km = 40.0;
  cfg.cluster_radius_km = 0.5;
  cfg.anchor_radius_km = 1.5;
  cfg.nearby_radius_km = 1.5;
  cfg.distance_decay_km = 0.3;
  cfg.min_checkins = 30;
  cfg.max_checkins = 80;
  cfg.scale = scale;
  return cfg;
}

}  // namespace stisan::data
