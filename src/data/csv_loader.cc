#include "data/csv_loader.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <unordered_map>

#include "util/string_util.h"

namespace stisan::data {

Result<Dataset> LoadCsv(const std::string& path, const std::string& name) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IoError("cannot open " + path);

  Dataset ds;
  ds.name = name;
  ds.poi_coords.push_back({});  // padding POI

  std::unordered_map<std::string, int64_t> user_ids;
  std::unordered_map<std::string, int64_t> poi_ids;

  std::string line;
  int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    auto fields = Split(trimmed, ',');
    if (fields.size() != 5) {
      return Status::InvalidArgument(
          StrFormat("%s:%lld: expected 5 fields, got %zu", path.c_str(),
                    static_cast<long long>(line_no), fields.size()));
    }
    // Skip a header row.
    if (line_no == 1 && !ParseDouble(fields[2]).ok()) continue;

    if (Trim(fields[0]).empty() || Trim(fields[1]).empty()) {
      return Status::InvalidArgument(
          StrFormat("%s:%lld: empty user or poi id", path.c_str(),
                    static_cast<long long>(line_no)));
    }
    auto lat = ParseDouble(fields[2]);
    auto lon = ParseDouble(fields[3]);
    auto ts = ParseDouble(fields[4]);
    if (!lat.ok()) {
      return Status::InvalidArgument(
          StrFormat("%s:%lld: malformed latitude '%s'", path.c_str(),
                    static_cast<long long>(line_no), fields[2].c_str()));
    }
    if (!lon.ok()) {
      return Status::InvalidArgument(
          StrFormat("%s:%lld: malformed longitude '%s'", path.c_str(),
                    static_cast<long long>(line_no), fields[3].c_str()));
    }
    if (!ts.ok()) {
      return Status::InvalidArgument(
          StrFormat("%s:%lld: malformed timestamp '%s'", path.c_str(),
                    static_cast<long long>(line_no), fields[4].c_str()));
    }
    // isfinite also rejects nan, which slips through plain range compares.
    if (!std::isfinite(lat.value()) || !std::isfinite(lon.value()) ||
        lat.value() < -90.0 || lat.value() > 90.0 || lon.value() < -180.0 ||
        lon.value() > 180.0) {
      return Status::InvalidArgument(
          StrFormat("%s:%lld: coordinate out of range (lat %s, lon %s)",
                    path.c_str(), static_cast<long long>(line_no),
                    fields[2].c_str(), fields[3].c_str()));
    }
    if (!std::isfinite(ts.value())) {
      return Status::InvalidArgument(
          StrFormat("%s:%lld: non-finite timestamp '%s'", path.c_str(),
                    static_cast<long long>(line_no), fields[4].c_str()));
    }

    auto [uit, user_inserted] =
        user_ids.try_emplace(fields[0], static_cast<int64_t>(user_ids.size()));
    if (user_inserted) ds.user_seqs.emplace_back();

    auto [pit, poi_inserted] = poi_ids.try_emplace(
        fields[1], static_cast<int64_t>(ds.poi_coords.size()));
    if (poi_inserted) ds.poi_coords.push_back({lat.value(), lon.value()});

    ds.user_seqs[static_cast<size_t>(uit->second)].push_back(
        {pit->second, ts.value()});
  }

  for (auto& seq : ds.user_seqs) {
    std::stable_sort(seq.begin(), seq.end(),
                     [](const Visit& a, const Visit& b) {
                       return a.timestamp < b.timestamp;
                     });
  }
  return ds;
}

Status SaveCsv(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) return Status::IoError("cannot open " + path);
  out << "user,poi,lat,lon,timestamp\n";
  for (int64_t u = 0; u < dataset.num_users(); ++u) {
    for (const Visit& v : dataset.user_seqs[static_cast<size_t>(u)]) {
      const auto& g = dataset.poi_location(v.poi);
      out << u << "," << v.poi << "," << StrFormat("%.6f", g.lat) << ","
          << StrFormat("%.6f", g.lon) << "," << StrFormat("%.0f", v.timestamp)
          << "\n";
    }
  }
  if (!out.good()) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace stisan::data
