// Dataset preprocessing: cold user/POI filtering, id compaction, and the
// train/test split with fixed-length windowing and head padding (paper
// §III-B and §IV-A).

#pragma once

#include <vector>

#include "data/types.h"
#include "util/status.h"

namespace stisan::data {

struct FilterOptions {
  /// Remove users with fewer visits than this (paper default: 20).
  int64_t min_user_checkins = 20;
  /// Remove POIs with fewer interactions than this (paper default: 10).
  int64_t min_poi_checkins = 10;
};

/// Iteratively removes cold users and POIs until both constraints hold,
/// then compacts POI ids to 1..P and user ids to 0..U-1.
Dataset FilterCold(const Dataset& input, const FilterOptions& options);

struct SplitOptions {
  /// Maximum source sequence length n (paper default: 100).
  int64_t max_seq_len = 100;
};

struct Split {
  std::vector<TrainWindow> train;
  std::vector<EvalInstance> test;
};

/// Paper protocol: for each user, the target is the most recent previously
/// unvisited POI; the n visits before it form the eval source; everything
/// before the target is training data, divided into non-overlapping windows
/// of length n from the end (consecutive windows share one boundary visit so
/// every step has a next-POI label) and head-padded to full length.
Split TrainTestSplit(const Dataset& dataset, const SplitOptions& options);

/// Pads `visits` (<= n entries) at the head to exactly n entries. Padding
/// entries use kPaddingPoi and copy the first real timestamp so that the
/// time intervals inside the padding region are zero. Returns the index of
/// the first real entry.
int64_t PadHead(const std::vector<Visit>& visits, int64_t n,
                std::vector<int64_t>* poi, std::vector<double>* t);

}  // namespace stisan::data
