#include "data/preprocess.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/check.h"

namespace stisan::data {

Dataset FilterCold(const Dataset& input, const FilterOptions& options) {
  // Iterate removal until a fixed point: dropping users can cool POIs and
  // vice versa.
  const int64_t num_pois = input.num_pois();
  std::vector<bool> user_alive(input.user_seqs.size(), true);
  std::vector<bool> poi_alive(static_cast<size_t>(num_pois) + 1, true);

  bool changed = true;
  while (changed) {
    changed = false;
    // POI interaction counts over live users/POIs.
    std::vector<int64_t> poi_count(static_cast<size_t>(num_pois) + 1, 0);
    for (size_t u = 0; u < input.user_seqs.size(); ++u) {
      if (!user_alive[u]) continue;
      for (const Visit& v : input.user_seqs[u]) {
        if (poi_alive[static_cast<size_t>(v.poi)]) {
          poi_count[static_cast<size_t>(v.poi)]++;
        }
      }
    }
    for (int64_t p = 1; p <= num_pois; ++p) {
      if (poi_alive[static_cast<size_t>(p)] &&
          poi_count[static_cast<size_t>(p)] < options.min_poi_checkins) {
        poi_alive[static_cast<size_t>(p)] = false;
        changed = true;
      }
    }
    // User visit counts over live POIs.
    for (size_t u = 0; u < input.user_seqs.size(); ++u) {
      if (!user_alive[u]) continue;
      int64_t count = 0;
      for (const Visit& v : input.user_seqs[u]) {
        if (poi_alive[static_cast<size_t>(v.poi)]) ++count;
      }
      if (count < options.min_user_checkins) {
        user_alive[u] = false;
        changed = true;
      }
    }
  }

  // Compact ids.
  Dataset out;
  out.name = input.name;
  std::vector<int64_t> poi_remap(static_cast<size_t>(num_pois) + 1, -1);
  out.poi_coords.push_back({});  // padding POI
  for (int64_t p = 1; p <= num_pois; ++p) {
    if (poi_alive[static_cast<size_t>(p)]) {
      poi_remap[static_cast<size_t>(p)] =
          static_cast<int64_t>(out.poi_coords.size());
      out.poi_coords.push_back(input.poi_coords[static_cast<size_t>(p)]);
    }
  }
  for (size_t u = 0; u < input.user_seqs.size(); ++u) {
    if (!user_alive[u]) continue;
    std::vector<Visit> seq;
    for (const Visit& v : input.user_seqs[u]) {
      const int64_t np = poi_remap[static_cast<size_t>(v.poi)];
      if (np >= 0) seq.push_back({np, v.timestamp});
    }
    if (!seq.empty()) out.user_seqs.push_back(std::move(seq));
  }
  return out;
}

int64_t PadHead(const std::vector<Visit>& visits, int64_t n,
                std::vector<int64_t>* poi, std::vector<double>* t) {
  STISAN_CHECK_LE(static_cast<int64_t>(visits.size()), n);
  STISAN_CHECK(!visits.empty());
  const int64_t pad = n - static_cast<int64_t>(visits.size());
  poi->assign(static_cast<size_t>(n), kPaddingPoi);
  t->assign(static_cast<size_t>(n), visits.front().timestamp);
  for (size_t i = 0; i < visits.size(); ++i) {
    (*poi)[static_cast<size_t>(pad) + i] = visits[i].poi;
    (*t)[static_cast<size_t>(pad) + i] = visits[i].timestamp;
  }
  return pad;
}

namespace {

// Finds the index of the most recent visit whose POI does not occur earlier
// in the sequence; falls back to the last visit.
size_t FindTargetIndex(const std::vector<Visit>& seq) {
  std::unordered_map<int64_t, size_t> first_seen;
  for (size_t i = 0; i < seq.size(); ++i) {
    auto it = first_seen.find(seq[i].poi);
    if (it == first_seen.end()) first_seen[seq[i].poi] = i;
  }
  for (size_t i = seq.size(); i-- > 1;) {
    if (first_seen[seq[i].poi] == i) return i;
  }
  return seq.size() - 1;
}

}  // namespace

Split TrainTestSplit(const Dataset& dataset, const SplitOptions& options) {
  const int64_t n = options.max_seq_len;
  STISAN_CHECK_GE(n, 2);
  Split split;
  for (int64_t u = 0; u < dataset.num_users(); ++u) {
    const auto& seq = dataset.user_seqs[static_cast<size_t>(u)];
    if (seq.size() < 3) continue;
    const size_t target_idx = FindTargetIndex(seq);
    if (target_idx < 2) continue;

    // ---- Eval instance: n visits before the target as source. ----
    EvalInstance inst;
    inst.user = u;
    inst.target = seq[target_idx].poi;
    inst.target_time = seq[target_idx].timestamp;
    const size_t src_begin =
        target_idx > static_cast<size_t>(n) ? target_idx - n : 0;
    std::vector<Visit> source(seq.begin() + src_begin,
                              seq.begin() + target_idx);
    inst.first_real = PadHead(source, n, &inst.poi, &inst.t);
    inst.visited.reserve(target_idx);
    std::unordered_set<int64_t> seen;
    for (size_t i = 0; i < target_idx; ++i) {
      if (seen.insert(seq[i].poi).second) inst.visited.push_back(seq[i].poi);
    }
    split.test.push_back(std::move(inst));

    // ---- Training windows: everything before the target, length n+1
    // windows from the end; consecutive windows share one boundary visit. ----
    std::vector<Visit> train_part(seq.begin(), seq.begin() + target_idx);
    int64_t end = static_cast<int64_t>(train_part.size());
    while (end >= 2) {
      const int64_t begin = std::max<int64_t>(0, end - (n + 1));
      std::vector<Visit> window(train_part.begin() + begin,
                                train_part.begin() + end);
      TrainWindow w;
      w.user = u;
      w.first_real = PadHead(window, n + 1, &w.poi, &w.t);
      split.train.push_back(std::move(w));
      if (begin == 0) break;
      end = begin + 1;  // share the boundary visit so labels are continuous
    }
  }
  return split;
}

}  // namespace stisan::data
