// Dataset analysis: the descriptive statistics LBSN papers report when
// characterising check-in corpora — interval distributions, mobility
// ranges, popularity concentration, and session structure. Used by
// tools/dataset_report and the documentation of the synthetic presets.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/types.h"

namespace stisan::data {

/// Simple summary of a sample: quantiles and moments.
struct Distribution {
  int64_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
  double max = 0.0;

  std::string ToString() const;
};

/// Builds a Distribution from raw samples (empty input -> zeros).
Distribution Summarize(std::vector<double> samples);

/// Inter-check-in time intervals, in hours, pooled over all users.
Distribution IntervalHoursDistribution(const Dataset& dataset);

/// Consecutive-move geographic jumps, in km, pooled over all users.
Distribution JumpKmDistribution(const Dataset& dataset);

/// Radius of gyration per user (root-mean-square distance of a user's
/// visits from their centroid, km) — the standard mobility-range measure.
Distribution RadiusOfGyrationDistribution(const Dataset& dataset);

/// Gini coefficient of POI visit counts in [0, 1]; higher = more
/// concentrated popularity (LBSN corpora are typically > 0.5).
double PopularityGini(const Dataset& dataset);

/// Fraction of check-ins that revisit a POI the user has already visited.
double RevisitRate(const Dataset& dataset);

/// Session statistics under a gap threshold: a session is a maximal run of
/// check-ins whose consecutive gaps stay below `gap_hours`.
struct SessionStats {
  double mean_session_length = 0.0;   // check-ins per session
  double mean_sessions_per_user = 0.0;
  double mean_within_session_km = 0.0;  // consecutive jump inside sessions
  double mean_between_session_km = 0.0; // jump across session boundaries
};
SessionStats ComputeSessionStats(const Dataset& dataset,
                                 double gap_hours = 8.0);

}  // namespace stisan::data
