#include "data/types.h"

#include <unordered_set>

#include "util/string_util.h"

namespace stisan::data {

int64_t Dataset::num_checkins() const {
  int64_t n = 0;
  for (const auto& seq : user_seqs) n += static_cast<int64_t>(seq.size());
  return n;
}

DatasetStats Dataset::Stats() const {
  DatasetStats s;
  s.num_users = num_users();
  s.num_pois = num_pois();
  s.num_checkins = num_checkins();
  if (s.num_users > 0 && s.num_pois > 0) {
    // Sparsity over unique user-POI interactions (repeat visits would
    // otherwise push it negative on dense corpora).
    int64_t unique_pairs = 0;
    std::unordered_set<int64_t> seen;
    for (const auto& seq : user_seqs) {
      seen.clear();
      for (const auto& v : seq) seen.insert(v.poi);
      unique_pairs += static_cast<int64_t>(seen.size());
    }
    s.sparsity = 1.0 - double(unique_pairs) /
                           (double(s.num_users) * double(s.num_pois));
    s.avg_seq_length = double(s.num_checkins) / double(s.num_users);
  }
  return s;
}

std::string DatasetStats::ToString() const {
  return StrFormat(
      "#user=%lld #POI=%lld #check-in=%lld sparsity=%.2f%% avg.seq=%.1f",
      static_cast<long long>(num_users), static_cast<long long>(num_pois),
      static_cast<long long>(num_checkins), sparsity * 100.0,
      avg_seq_length);
}

}  // namespace stisan::data
