#include "tensor/tensor.h"

#include <cmath>
#include <sstream>
#include <unordered_set>

namespace stisan {

int64_t NumElements(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    STISAN_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << "]";
  return os.str();
}

namespace internal {

namespace {
thread_local bool g_grad_enabled = true;
}  // namespace

bool GradEnabled() { return g_grad_enabled; }

void TensorImpl::EnsureGrad() {
  if (grad.size() != data.size()) grad.assign(data.size(), 0.0f);
}

}  // namespace internal

NoGradGuard::NoGradGuard() : previous_(internal::GradEnabled()) {
  internal::g_grad_enabled = false;
}

NoGradGuard::~NoGradGuard() { internal::g_grad_enabled = previous_; }

namespace {

internal::TensorImplPtr MakeImpl(Shape shape, bool requires_grad) {
  auto impl = std::make_shared<internal::TensorImpl>();
  const int64_t n = NumElements(shape);
  impl->shape = std::move(shape);
  impl->data.assign(static_cast<size_t>(n), 0.0f);
  impl->requires_grad = requires_grad && internal::GradEnabled();
  return impl;
}

int64_t FlatIndex(const Shape& shape, std::initializer_list<int64_t> idx) {
  STISAN_CHECK_EQ(static_cast<int64_t>(idx.size()),
                  static_cast<int64_t>(shape.size()));
  int64_t flat = 0;
  size_t d = 0;
  for (int64_t i : idx) {
    STISAN_CHECK_GE(i, 0);
    STISAN_CHECK_LT(i, shape[d]);
    flat = flat * shape[d] + i;
    ++d;
  }
  return flat;
}

}  // namespace

Tensor Tensor::Zeros(Shape shape, bool requires_grad) {
  return Tensor(MakeImpl(std::move(shape), requires_grad));
}

Tensor Tensor::Ones(Shape shape, bool requires_grad) {
  return Full(std::move(shape), 1.0f, requires_grad);
}

Tensor Tensor::Full(Shape shape, float value, bool requires_grad) {
  auto impl = MakeImpl(std::move(shape), requires_grad);
  for (auto& v : impl->data) v = value;
  return Tensor(std::move(impl));
}

Tensor Tensor::FromVector(Shape shape, std::vector<float> values,
                          bool requires_grad) {
  STISAN_CHECK_EQ(NumElements(shape), static_cast<int64_t>(values.size()));
  auto impl = std::make_shared<internal::TensorImpl>();
  impl->shape = std::move(shape);
  impl->data = std::move(values);
  impl->requires_grad = requires_grad && internal::GradEnabled();
  return Tensor(std::move(impl));
}

Tensor Tensor::Randn(Shape shape, Rng& rng, float stddev, bool requires_grad) {
  auto impl = MakeImpl(std::move(shape), requires_grad);
  for (auto& v : impl->data)
    v = static_cast<float>(rng.Normal(0.0, stddev));
  return Tensor(std::move(impl));
}

Tensor Tensor::Rand(Shape shape, Rng& rng, float lo, float hi,
                    bool requires_grad) {
  auto impl = MakeImpl(std::move(shape), requires_grad);
  for (auto& v : impl->data) v = rng.UniformFloat(lo, hi);
  return Tensor(std::move(impl));
}

Tensor Tensor::XavierUniform(int64_t fan_in, int64_t fan_out, Rng& rng,
                             bool requires_grad) {
  const float bound =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Rand({fan_in, fan_out}, rng, -bound, bound, requires_grad);
}

Tensor Tensor::Identity(int64_t n, bool requires_grad) {
  Tensor t = Zeros({n, n}, requires_grad);
  for (int64_t i = 0; i < n; ++i) t.data()[i * n + i] = 1.0f;
  return t;
}

const Shape& Tensor::shape() const {
  STISAN_CHECK(impl_ != nullptr);
  return impl_->shape;
}

int64_t Tensor::size(int64_t d) const {
  const Shape& s = shape();
  if (d < 0) d += static_cast<int64_t>(s.size());
  STISAN_CHECK_GE(d, 0);
  STISAN_CHECK_LT(d, static_cast<int64_t>(s.size()));
  return s[static_cast<size_t>(d)];
}

int64_t Tensor::numel() const {
  STISAN_CHECK(impl_ != nullptr);
  return impl_->numel();
}

bool Tensor::requires_grad() const {
  STISAN_CHECK(impl_ != nullptr);
  return impl_->requires_grad;
}

float* Tensor::data() {
  STISAN_CHECK(impl_ != nullptr);
  return impl_->data.data();
}

const float* Tensor::data() const {
  STISAN_CHECK(impl_ != nullptr);
  return impl_->data.data();
}

float Tensor::at(std::initializer_list<int64_t> idx) const {
  return data()[FlatIndex(shape(), idx)];
}

void Tensor::set(std::initializer_list<int64_t> idx, float v) {
  data()[FlatIndex(shape(), idx)] = v;
}

std::vector<float> Tensor::ToVector() const {
  STISAN_CHECK(impl_ != nullptr);
  return impl_->data;
}

const float* Tensor::grad_data() const {
  STISAN_CHECK(impl_ != nullptr);
  STISAN_CHECK_MSG(has_grad(), "gradient not materialised; run Backward()");
  return impl_->grad.data();
}

float* Tensor::mutable_grad_data() {
  STISAN_CHECK(impl_ != nullptr);
  impl_->EnsureGrad();
  return impl_->grad.data();
}

bool Tensor::has_grad() const {
  STISAN_CHECK(impl_ != nullptr);
  return impl_->grad.size() == impl_->data.size();
}

void Tensor::ZeroGrad() {
  STISAN_CHECK(impl_ != nullptr);
  impl_->grad.assign(impl_->data.size(), 0.0f);
}

void Tensor::Backward() {
  STISAN_CHECK(impl_ != nullptr);
  STISAN_CHECK_MSG(numel() == 1, "Backward() requires a scalar loss");

  // Iterative post-order topological sort (child after parents), then walk
  // in reverse so each node's grad is complete before it propagates.
  std::vector<internal::TensorImpl*> order;
  std::unordered_set<internal::TensorImpl*> visited;
  struct Frame {
    internal::TensorImpl* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({impl_.get(), 0});
  visited.insert(impl_.get());
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_parent < f.node->parents.size()) {
      internal::TensorImpl* parent = f.node->parents[f.next_parent++].get();
      if (parent != nullptr && visited.insert(parent).second) {
        stack.push_back({parent, 0});
      }
    } else {
      order.push_back(f.node);
      stack.pop_back();
    }
  }

  impl_->EnsureGrad();
  impl_->grad[0] = 1.0f;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    internal::TensorImpl* node = *it;
    if (node->backward_fn && node->grad.size() == node->data.size()) {
      node->backward_fn(*node);
    }
  }
}

Tensor Tensor::Detach() const {
  STISAN_CHECK(impl_ != nullptr);
  auto impl = std::make_shared<internal::TensorImpl>();
  impl->shape = impl_->shape;
  impl->data = impl_->data;
  impl->requires_grad = false;
  return Tensor(std::move(impl));
}

Tensor& Tensor::SetRequiresGrad(bool value) {
  STISAN_CHECK(impl_ != nullptr);
  impl_->requires_grad = value;
  return *this;
}

std::string Tensor::ToString() const {
  if (!defined()) return "Tensor(null)";
  std::ostringstream os;
  os << "Tensor" << ShapeToString(shape());
  if (numel() <= 16) {
    os << " {";
    for (int64_t i = 0; i < numel(); ++i) {
      if (i) os << ", ";
      os << impl_->data[static_cast<size_t>(i)];
    }
    os << "}";
  }
  return os.str();
}

}  // namespace stisan
