#include "tensor/tensor.h"

#include <cmath>
#include <cstring>
#include <sstream>
#include <unordered_set>

#include "plan/plan.h"
#include "tensor/arena.h"

namespace stisan {

int64_t NumElements(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    STISAN_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << "]";
  return os.str();
}

std::vector<int64_t> ContiguousStrides(const Shape& shape) {
  std::vector<int64_t> strides(shape.size());
  int64_t stride = 1;
  for (size_t i = shape.size(); i-- > 0;) {
    strides[i] = stride;
    stride *= shape[i];
  }
  return strides;
}

namespace internal {

namespace {
thread_local bool g_grad_enabled = true;
}  // namespace

bool GradEnabled() { return g_grad_enabled; }

Storage::~Storage() {
  // Park both allocations in the arena pool (no-ops when inactive).
  arena::Release(std::move(data));
  arena::Release(std::move(grad));
}

void Storage::EnsureGrad() {
  if (grad.size() != data.size()) {
    arena::Release(std::move(grad));
    grad = arena::AcquireZeroed(data.size());
  }
}

bool TensorImpl::IsContiguous() const {
  int64_t expect = 1;
  for (size_t i = shape.size(); i-- > 0;) {
    if (shape[i] == 1) continue;  // stride of a size-1 dim is irrelevant
    if (strides[i] != expect) return false;
    expect *= shape[i];
  }
  return true;
}

}  // namespace internal

NoGradGuard::NoGradGuard() : previous_(internal::GradEnabled()) {
  internal::g_grad_enabled = false;
}

NoGradGuard::~NoGradGuard() { internal::g_grad_enabled = previous_; }

namespace {

using internal::TensorImpl;

internal::TensorImplPtr MakeImpl(Shape shape, bool requires_grad) {
  auto impl = std::make_shared<internal::TensorImpl>();
  const int64_t n = NumElements(shape);
  impl->strides = ContiguousStrides(shape);
  impl->shape = std::move(shape);
  impl->storage = std::make_shared<internal::Storage>();
  impl->storage->data = arena::AcquireZeroed(static_cast<size_t>(n));
  impl->requires_grad = requires_grad && internal::GradEnabled();
  return impl;
}

// Storage-relative flat index for a (bounds-checked) multi-index.
int64_t StridedIndex(const TensorImpl& t, std::initializer_list<int64_t> idx) {
  STISAN_CHECK_EQ(static_cast<int64_t>(idx.size()),
                  static_cast<int64_t>(t.shape.size()));
  int64_t flat = t.offset;
  size_t d = 0;
  for (int64_t i : idx) {
    STISAN_CHECK_GE(i, 0);
    STISAN_CHECK_LT(i, t.shape[d]);
    flat += i * t.strides[d];
    ++d;
  }
  return flat;
}

// Copies the view's elements in logical row-major order into `out`.
void GatherToDense(const TensorImpl& t, float* out) {
  const int64_t n = t.numel();
  if (n == 0) return;
  if (t.IsContiguous()) {
    std::memcpy(out, t.Data(), sizeof(float) * static_cast<size_t>(n));
    return;
  }
  const size_t rank = t.shape.size();
  const float* base = t.storage->data.data();
  std::vector<int64_t> idx(rank, 0);
  int64_t ofs = t.offset;
  for (int64_t flat = 0; flat < n; ++flat) {
    out[flat] = base[ofs];
    for (size_t d = rank; d-- > 0;) {
      idx[d]++;
      ofs += t.strides[d];
      if (idx[d] < t.shape[d]) break;
      ofs -= t.strides[d] * t.shape[d];
      idx[d] = 0;
    }
  }
}

}  // namespace

Tensor Tensor::Zeros(Shape shape, bool requires_grad) {
  return Tensor(MakeImpl(std::move(shape), requires_grad));
}

Tensor Tensor::Ones(Shape shape, bool requires_grad) {
  return Full(std::move(shape), 1.0f, requires_grad);
}

Tensor Tensor::Full(Shape shape, float value, bool requires_grad) {
  auto impl = MakeImpl(std::move(shape), requires_grad);
  for (auto& v : impl->storage->data) v = value;
  return Tensor(std::move(impl));
}

Tensor Tensor::FromVector(Shape shape, std::vector<float> values,
                          bool requires_grad) {
  STISAN_CHECK_EQ(NumElements(shape), static_cast<int64_t>(values.size()));
  auto impl = std::make_shared<internal::TensorImpl>();
  impl->strides = ContiguousStrides(shape);
  impl->shape = std::move(shape);
  impl->storage = std::make_shared<internal::Storage>();
  impl->storage->data = std::move(values);
  impl->requires_grad = requires_grad && internal::GradEnabled();
  return Tensor(std::move(impl));
}

Tensor Tensor::Randn(Shape shape, Rng& rng, float stddev, bool requires_grad) {
  auto impl = MakeImpl(std::move(shape), requires_grad);
  for (auto& v : impl->storage->data)
    v = static_cast<float>(rng.Normal(0.0, stddev));
  return Tensor(std::move(impl));
}

Tensor Tensor::Rand(Shape shape, Rng& rng, float lo, float hi,
                    bool requires_grad) {
  auto impl = MakeImpl(std::move(shape), requires_grad);
  for (auto& v : impl->storage->data) v = rng.UniformFloat(lo, hi);
  return Tensor(std::move(impl));
}

Tensor Tensor::XavierUniform(int64_t fan_in, int64_t fan_out, Rng& rng,
                             bool requires_grad) {
  const float bound =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Rand({fan_in, fan_out}, rng, -bound, bound, requires_grad);
}

Tensor Tensor::Identity(int64_t n, bool requires_grad) {
  Tensor t = Zeros({n, n}, requires_grad);
  for (int64_t i = 0; i < n; ++i) t.data()[i * n + i] = 1.0f;
  return t;
}

const Shape& Tensor::shape() const {
  STISAN_CHECK(impl_ != nullptr);
  return impl_->shape;
}

int64_t Tensor::size(int64_t d) const {
  const Shape& s = shape();
  if (d < 0) d += static_cast<int64_t>(s.size());
  STISAN_CHECK_GE(d, 0);
  STISAN_CHECK_LT(d, static_cast<int64_t>(s.size()));
  return s[static_cast<size_t>(d)];
}

int64_t Tensor::numel() const {
  STISAN_CHECK(impl_ != nullptr);
  return impl_->numel();
}

bool Tensor::requires_grad() const {
  STISAN_CHECK(impl_ != nullptr);
  return impl_->requires_grad;
}

const std::vector<int64_t>& Tensor::strides() const {
  STISAN_CHECK(impl_ != nullptr);
  return impl_->strides;
}

bool Tensor::IsContiguous() const {
  STISAN_CHECK(impl_ != nullptr);
  return impl_->IsContiguous();
}

float* Tensor::data() {
  STISAN_CHECK(impl_ != nullptr);
  STISAN_CHECK_MSG(impl_->IsContiguous(),
                   "data() requires a contiguous tensor; call Contiguous()");
  return impl_->Data();
}

const float* Tensor::data() const {
  STISAN_CHECK(impl_ != nullptr);
  STISAN_CHECK_MSG(impl_->IsContiguous(),
                   "data() requires a contiguous tensor; call Contiguous()");
  return impl_->Data();
}

const float* Tensor::storage_data() const {
  STISAN_CHECK(impl_ != nullptr);
  return impl_->storage->data.data();
}

float Tensor::at(std::initializer_list<int64_t> idx) const {
  STISAN_CHECK(impl_ != nullptr);
  return impl_->storage->data[static_cast<size_t>(StridedIndex(*impl_, idx))];
}

void Tensor::set(std::initializer_list<int64_t> idx, float v) {
  STISAN_CHECK(impl_ != nullptr);
  impl_->storage->data[static_cast<size_t>(StridedIndex(*impl_, idx))] = v;
}

std::vector<float> Tensor::ToVector() const {
  STISAN_CHECK(impl_ != nullptr);
  std::vector<float> out(static_cast<size_t>(numel()));
  GatherToDense(*impl_, out.data());
  return out;
}

const float* Tensor::grad_data() const {
  STISAN_CHECK(impl_ != nullptr);
  STISAN_CHECK_MSG(has_grad(), "gradient not materialised; run Backward()");
  STISAN_CHECK_MSG(impl_->IsContiguous(),
                   "grad_data() requires a contiguous tensor");
  return impl_->Grad();
}

float* Tensor::mutable_grad_data() {
  STISAN_CHECK(impl_ != nullptr);
  STISAN_CHECK_MSG(impl_->IsContiguous(),
                   "mutable_grad_data() requires a contiguous tensor");
  impl_->EnsureGrad();
  return impl_->Grad();
}

bool Tensor::has_grad() const {
  STISAN_CHECK(impl_ != nullptr);
  return impl_->storage->has_grad();
}

void Tensor::ZeroGrad() {
  STISAN_CHECK(impl_ != nullptr);
  impl_->storage->grad.assign(impl_->storage->data.size(), 0.0f);
}

void Tensor::Backward() {
  STISAN_CHECK(impl_ != nullptr);
  STISAN_CHECK_MSG(numel() == 1, "Backward() requires a scalar loss");

  // Static-plan shortcut: when the step so far matches a cached plan whose
  // recorded backward order is rooted here, skip the topological sort and
  // replay the recorded closure invocation order (bit-identical — it *is*
  // the order the sweep below produced during capture).
  if (plan::CanReplayBackward(impl_.get())) {
    impl_->EnsureGrad();
    impl_->storage->grad[static_cast<size_t>(impl_->offset)] = 1.0f;
    plan::ReplayBackward();
    return;
  }
  const bool record = plan::WantsBackwardRecord();
  std::vector<internal::TensorImpl*> invoked;

  // Iterative post-order topological sort (child after parents), then walk
  // in reverse so each node's grad is complete before it propagates.
  std::vector<internal::TensorImpl*> order;
  std::unordered_set<internal::TensorImpl*> visited;
  struct Frame {
    internal::TensorImpl* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({impl_.get(), 0});
  visited.insert(impl_.get());
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_parent < f.node->parents.size()) {
      internal::TensorImpl* parent = f.node->parents[f.next_parent++].get();
      if (parent != nullptr && visited.insert(parent).second) {
        stack.push_back({parent, 0});
      }
    } else {
      order.push_back(f.node);
      stack.pop_back();
    }
  }

  impl_->EnsureGrad();
  impl_->storage->grad[static_cast<size_t>(impl_->offset)] = 1.0f;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    internal::TensorImpl* node = *it;
    if (node->backward_fn && node->storage->has_grad()) {
      if (record) invoked.push_back(node);
      node->backward_fn(*node);
    }
  }
  if (record) plan::OnBackwardSwept(impl_.get(), invoked);
}

Tensor Tensor::Detach() const {
  STISAN_CHECK(impl_ != nullptr);
  auto impl = std::make_shared<internal::TensorImpl>();
  impl->strides = ContiguousStrides(impl_->shape);
  impl->shape = impl_->shape;
  impl->storage = std::make_shared<internal::Storage>();
  impl->storage->data = arena::AcquireZeroed(static_cast<size_t>(impl_->numel()));
  GatherToDense(*impl_, impl->storage->data.data());
  impl->requires_grad = false;
  return Tensor(std::move(impl));
}

Tensor& Tensor::SetRequiresGrad(bool value) {
  STISAN_CHECK(impl_ != nullptr);
  impl_->requires_grad = value;
  return *this;
}

std::string Tensor::ToString() const {
  if (!defined()) return "Tensor(null)";
  std::ostringstream os;
  os << "Tensor" << ShapeToString(shape());
  if (numel() <= 16) {
    const std::vector<float> values = ToVector();
    os << " {";
    for (size_t i = 0; i < values.size(); ++i) {
      if (i) os << ", ";
      os << values[i];
    }
    os << "}";
  }
  return os.str();
}

}  // namespace stisan
