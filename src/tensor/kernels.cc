#include "tensor/kernels.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/metrics.h"
#include "tensor/kernels_simd.h"

namespace stisan::kernels {

namespace {

int64_t EnvInt64(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  if (end == v) return fallback;
  return static_cast<int64_t>(parsed);
}

std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;

// True while the current thread is executing a ParallelRanges chunk; nested
// dispatches must run inline (a worker waiting on its own pool deadlocks).
thread_local bool tl_in_parallel_region = false;

}  // namespace

int64_t ParallelMinWork() {
  static const int64_t threshold =
      std::max<int64_t>(1, EnvInt64("STISAN_PARALLEL_WORK", int64_t{1} << 15));
  return threshold;
}

ThreadPool& GlobalPool() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (!g_pool) {
    g_pool = std::make_unique<ThreadPool>(EnvInt64("STISAN_NUM_THREADS", 0));
    // Snapshot-time gauges over the live pool (it can be swapped by
    // SetNumThreads, so read through g_pool under the mutex each time).
    static const bool registered = [] {
      obs::RegisterCallbackGauge("threadpool/tasks_submitted", [] {
        std::lock_guard<std::mutex> lk(g_pool_mutex);
        return g_pool ? double(g_pool->tasks_submitted()) : 0.0;
      });
      obs::RegisterCallbackGauge("threadpool/tasks_completed", [] {
        std::lock_guard<std::mutex> lk(g_pool_mutex);
        return g_pool ? double(g_pool->tasks_completed()) : 0.0;
      });
      obs::RegisterCallbackGauge("threadpool/num_threads", [] {
        std::lock_guard<std::mutex> lk(g_pool_mutex);
        return g_pool ? double(g_pool->num_threads()) : 0.0;
      });
      return true;
    }();
    (void)registered;
  }
  return *g_pool;
}

int64_t NumThreads() { return GlobalPool().num_threads(); }

void SetNumThreads(int64_t threads) {
  GlobalPool();  // ensure initialised so the swap below is the only writer
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  g_pool = std::make_unique<ThreadPool>(threads);
}

namespace {
// -1 = follow STISAN_SIMD (default on), 0/1 = forced by tests/tools.
std::atomic<int> g_simd_override{-1};
}  // namespace

bool SimdEnabled() {
  const int ov = g_simd_override.load(std::memory_order_relaxed);
  if (ov >= 0) return ov != 0 && simd::Available();
  static const bool env_on = [] {
    const char* v = std::getenv("STISAN_SIMD");
    return !(v != nullptr && v[0] == '0' && v[1] == '\0');
  }();
  return env_on && simd::Available();
}

const char* SimdBackendName() {
  return SimdEnabled() ? simd::Name() : "scalar";
}

void SetSimdEnabledForTesting(int enabled) {
  g_simd_override.store(enabled, std::memory_order_relaxed);
}

void ParallelRanges(int64_t n, int64_t cost_per_item,
                    const std::function<void(int64_t, int64_t)>& fn) {
  if (n <= 0) return;
  const int64_t work = n * std::max<int64_t>(1, cost_per_item);
  if (tl_in_parallel_region || work < ParallelMinWork()) {
    fn(0, n);
    return;
  }
  ThreadPool& pool = GlobalPool();
  const int64_t chunks = std::min<int64_t>(n, pool.num_threads());
  if (chunks <= 1) {
    fn(0, n);
    return;
  }
  static obs::Counter& dispatches = obs::GetCounter("kernels/dispatches");
  dispatches.Inc();
  const int64_t per_chunk = (n + chunks - 1) / chunks;
  for (int64_t c = 0; c < chunks; ++c) {
    const int64_t begin = c * per_chunk;
    const int64_t end = std::min(n, begin + per_chunk);
    if (begin >= end) break;
    pool.Submit([begin, end, &fn] {
      // RAII so a throwing fn cannot leave the flag stuck on this worker.
      struct RegionFlag {
        RegionFlag() { tl_in_parallel_region = true; }
        ~RegionFlag() { tl_in_parallel_region = false; }
      } flag;
      fn(begin, end);
    });
  }
  pool.Wait();
}

namespace {

// One row-range of the Gemm. Every variant iterates output rows i in
// [i0, i1) and uses the same per-element accumulation order as a full
// serial sweep, so threading never changes results.
void GemmRowRange(const float* a, const float* b, float* c, int64_t m,
                  int64_t k, int64_t n, bool ta, bool tb, bool accumulate,
                  int64_t i0, int64_t i1) {
  if (!accumulate) std::fill(c + i0 * n, c + i1 * n, 0.0f);
  if (!ta && !tb) {
    for (int64_t i = i0; i < i1; ++i) {
      float* crow = c + i * n;
      for (int64_t p = 0; p < k; ++p) {
        const float av = a[i * k + p];
        if (av == 0.0f) continue;
        const float* brow = b + p * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  } else if (!ta && tb) {  // B physically [n,k]
    for (int64_t i = i0; i < i1; ++i) {
      const float* arow = a + i * k;
      for (int64_t j = 0; j < n; ++j) {
        const float* brow = b + j * k;
        float acc = 0.0f;
        for (int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
        c[i * n + j] += acc;
      }
    }
  } else if (ta && !tb) {  // A physically [k,m]
    for (int64_t i = i0; i < i1; ++i) {
      float* crow = c + i * n;
      for (int64_t p = 0; p < k; ++p) {
        const float av = a[p * m + i];
        if (av == 0.0f) continue;
        const float* brow = b + p * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  } else {  // ta && tb: A [k,m], B [n,k]
    for (int64_t i = i0; i < i1; ++i)
      for (int64_t j = 0; j < n; ++j) {
        float acc = 0.0f;
        for (int64_t p = 0; p < k; ++p) acc += a[p * m + i] * b[j * k + p];
        c[i * n + j] += acc;
      }
  }
}

}  // namespace

void Gemm(const float* a, const float* b, float* c, int64_t m, int64_t k,
          int64_t n, bool ta, bool tb, bool accumulate) {
  const bool use_simd = SimdEnabled();
  ParallelRanges(m, k * n, [&](int64_t i0, int64_t i1) {
    if (use_simd) {
      simd::GemmRowRange(a, b, c, m, k, n, ta, tb, accumulate, i0, i1);
    } else {
      GemmRowRange(a, b, c, m, k, n, ta, tb, accumulate, i0, i1);
    }
  });
}

void BatchedGemm(const float* a, const float* b, float* c, int64_t batch,
                 int64_t m, int64_t k, int64_t n, bool ta, bool tb,
                 bool accumulate) {
  const int64_t sza = m * k, szb = k * n, szc = m * n;
  const bool use_simd = SimdEnabled();
  ParallelRanges(batch, m * k * n, [&](int64_t t0, int64_t t1) {
    for (int64_t t = t0; t < t1; ++t) {
      if (use_simd) {
        simd::GemmRowRange(a + t * sza, b + t * szb, c + t * szc, m, k, n, ta,
                           tb, accumulate, 0, m);
      } else {
        GemmRowRange(a + t * sza, b + t * szb, c + t * szc, m, k, n, ta, tb,
                     accumulate, 0, m);
      }
    }
  });
}

void SoftmaxRows(const float* x, float* y, int64_t rows, int64_t d) {
  const bool use_simd = SimdEnabled();
  ParallelRanges(rows, d, [&](int64_t r0, int64_t r1) {
    if (use_simd) {
      simd::SoftmaxRowRange(x, y, d, r0, r1);
      return;
    }
    for (int64_t r = r0; r < r1; ++r) {
      const float* xr = x + r * d;
      float* yr = y + r * d;
      float mx = xr[0];
      for (int64_t j = 1; j < d; ++j) mx = std::max(mx, xr[j]);
      float sum = 0.0f;
      for (int64_t j = 0; j < d; ++j) {
        yr[j] = std::exp(xr[j] - mx);
        sum += yr[j];
      }
      const float inv = 1.0f / sum;
      for (int64_t j = 0; j < d; ++j) yr[j] *= inv;
    }
  });
}

void SoftmaxBackwardRows(const float* y, const float* gy, float* gx,
                         int64_t rows, int64_t d) {
  ParallelRanges(rows, d, [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const float* yr = y + r * d;
      const float* gr = gy + r * d;
      float dot = 0.0f;
      for (int64_t j = 0; j < d; ++j) dot += yr[j] * gr[j];
      float* gxr = gx + r * d;
      for (int64_t j = 0; j < d; ++j) gxr[j] += yr[j] * (gr[j] - dot);
    }
  });
}

void LogSoftmaxRows(const float* x, float* y, int64_t rows, int64_t d) {
  const bool use_simd = SimdEnabled();
  ParallelRanges(rows, d, [&](int64_t r0, int64_t r1) {
    if (use_simd) {
      simd::LogSoftmaxRowRange(x, y, d, r0, r1);
      return;
    }
    for (int64_t r = r0; r < r1; ++r) {
      const float* xr = x + r * d;
      float* yr = y + r * d;
      float mx = xr[0];
      for (int64_t j = 1; j < d; ++j) mx = std::max(mx, xr[j]);
      float sum = 0.0f;
      for (int64_t j = 0; j < d; ++j) sum += std::exp(xr[j] - mx);
      const float lse = mx + std::log(sum);
      for (int64_t j = 0; j < d; ++j) yr[j] = xr[j] - lse;
    }
  });
}

void LogSoftmaxBackwardRows(const float* y, const float* gy, float* gx,
                            int64_t rows, int64_t d) {
  ParallelRanges(rows, d, [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const float* yr = y + r * d;
      const float* gr = gy + r * d;
      float gsum = 0.0f;
      for (int64_t j = 0; j < d; ++j) gsum += gr[j];
      float* gxr = gx + r * d;
      for (int64_t j = 0; j < d; ++j)
        gxr[j] += gr[j] - std::exp(yr[j]) * gsum;
    }
  });
}

void LayerNormRows(const float* x, const float* gamma, const float* beta,
                   float* y, float* mu, float* inv_sigma, int64_t rows,
                   int64_t d, float eps) {
  const bool use_simd = SimdEnabled();
  ParallelRanges(rows, d, [&](int64_t r0, int64_t r1) {
    if (use_simd) {
      simd::LayerNormRowRange(x, gamma, beta, y, mu, inv_sigma, d, eps, r0,
                              r1);
      return;
    }
    for (int64_t r = r0; r < r1; ++r) {
      const float* xr = x + r * d;
      float m = 0.0f;
      for (int64_t j = 0; j < d; ++j) m += xr[j];
      m /= static_cast<float>(d);
      float var = 0.0f;
      for (int64_t j = 0; j < d; ++j) {
        const float c = xr[j] - m;
        var += c * c;
      }
      var /= static_cast<float>(d);
      const float is = 1.0f / std::sqrt(var + eps);
      mu[r] = m;
      inv_sigma[r] = is;
      float* yr = y + r * d;
      for (int64_t j = 0; j < d; ++j)
        yr[j] = gamma[j] * (xr[j] - m) * is + beta[j];
    }
  });
}

void GatherRows(const float* w, const int64_t* ids, float* out, int64_t n,
                int64_t d, int64_t padding_idx) {
  ParallelRanges(n, d, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      const int64_t id = ids[i];
      if (id == padding_idx) {
        std::fill(out + i * d, out + (i + 1) * d, 0.0f);
      } else {
        std::copy(w + id * d, w + (id + 1) * d, out + i * d);
      }
    }
  });
}

void FusedAttentionForward(const float* q, const float* k, const float* v,
                           const float* bias, const float* drop_mask,
                           float* probs, float* out, int64_t batch, int64_t m,
                           int64_t n, int64_t d, bool causal, float scale,
                           bool bias_broadcast) {
  const int64_t rows = batch * m;
  const bool use_simd = SimdEnabled();
  ParallelRanges(rows, n * (2 * d + 4), [&](int64_t t0, int64_t t1) {
    // Inference reuses one scratch row per chunk instead of saving probs.
    std::vector<float> scratch;
    if (probs == nullptr) scratch.resize(static_cast<size_t>(n));
    for (int64_t t = t0; t < t1; ++t) {
      const int64_t b = t / m;
      const int64_t r = t % m;
      const int64_t bound = causal ? r + 1 : n;
      const float* qrow = q + t * d;
      const float* kblk = k + b * n * d;
      const float* vblk = v + b * n * d;
      const float* brow =
          bias == nullptr ? nullptr : bias + (bias_broadcast ? r * n : t * n);
      float* prow = probs != nullptr ? probs + t * n : scratch.data();
      const float* mrow = drop_mask == nullptr ? nullptr : drop_mask + t * n;
      if (use_simd) {
        simd::AttentionRow(qrow, kblk, vblk, brow, mrow, prow, out + t * d,
                           bound, d, scale);
        continue;
      }
      // Logits: per element the exact accumulation order of the transposed
      // GEMM (ascending inner dim), then · scale, then + bias.
      for (int64_t j = 0; j < bound; ++j) {
        const float* krow = kblk + j * d;
        float acc = 0.0f;
        for (int64_t c = 0; c < d; ++c) acc += qrow[c] * krow[c];
        float x = acc * scale;
        if (brow != nullptr) x += brow[j];
        prow[j] = x;
      }
      // Bounded row softmax. Column r itself is always in range, so the
      // bounded max/sum equal the full-row ones of the composed path (its
      // -1e9-masked entries exp-underflow to exactly 0).
      float mx = prow[0];
      for (int64_t j = 1; j < bound; ++j) mx = std::max(mx, prow[j]);
      float sum = 0.0f;
      for (int64_t j = 0; j < bound; ++j) {
        prow[j] = std::exp(prow[j] - mx);
        sum += prow[j];
      }
      const float inv = 1.0f / sum;
      for (int64_t j = 0; j < bound; ++j) prow[j] *= inv;
      // Stream into the value aggregation, skipping exact zeros like
      // GemmRowRange (so dropped columns cost nothing).
      float* orow = out + t * d;
      std::fill(orow, orow + d, 0.0f);
      for (int64_t j = 0; j < bound; ++j) {
        float av = prow[j];
        if (mrow != nullptr) av *= mrow[j];
        if (av == 0.0f) continue;
        const float* vrow = vblk + j * d;
        for (int64_t c = 0; c < d; ++c) orow[c] += av * vrow[c];
      }
    }
  });
}

void FusedAttentionBackward(const float* q, const float* k, const float* v,
                            const float* probs, const float* drop_mask,
                            const float* gout, float* dq, float* dk, float* dv,
                            float* dbias, float* ds, int64_t batch, int64_t m,
                            int64_t n, int64_t d, bool causal, float scale,
                            bool bias_broadcast) {
  const int64_t kv_rows = batch * n;
  const int64_t q_rows = batch * m;
  // Phase 1 — dV[i,:] += Σ_p attD[p,i] · G[p,:]. Runs first: when k or v
  // alias q (self-attention through one buffer) the composed tape also
  // applies the output-matmul backward before the logit chain.
  if (dv != nullptr) {
    ParallelRanges(kv_rows, m * d, [&](int64_t t0, int64_t t1) {
      for (int64_t t = t0; t < t1; ++t) {
        const int64_t b = t / n;
        const int64_t i = t % n;
        const float* pblk = probs + b * m * n;
        const float* mblk =
            drop_mask == nullptr ? nullptr : drop_mask + b * m * n;
        const float* gblk = gout + b * m * d;
        float* dvrow = dv + t * d;
        for (int64_t p = causal ? i : 0; p < m; ++p) {
          float av = pblk[p * n + i];
          if (mblk != nullptr) av *= mblk[p * n + i];
          if (av == 0.0f) continue;
          const float* grow = gblk + p * d;
          for (int64_t c = 0; c < d; ++c) dvrow[c] += av * grow[c];
        }
      }
    });
  }
  if (ds == nullptr) return;  // only dV was requested
  // Phase 2 — per query row: dP = G Vᵀ, dropout backward, the softmax
  // Jacobian row reduction, the same-shape bias gradient, and dQ. ds keeps
  // the *unscaled* logit gradients (what the composed Add backward sees);
  // dQ/dK fold the · scale in on the fly, reproducing the composed
  // MulScalar-materialised operand bit-for-bit.
  ParallelRanges(q_rows, n * (2 * d + 6), [&](int64_t t0, int64_t t1) {
    for (int64_t t = t0; t < t1; ++t) {
      const int64_t b = t / m;
      const int64_t r = t % m;
      const int64_t bound = causal ? r + 1 : n;
      const float* prow = probs + t * n;
      const float* mrow = drop_mask == nullptr ? nullptr : drop_mask + t * n;
      const float* grow = gout + t * d;
      const float* vblk = v + b * n * d;
      const float* kblk = k + b * n * d;
      float* dsrow = ds + t * n;
      for (int64_t j = 0; j < bound; ++j) {
        const float* vrow = vblk + j * d;
        float acc = 0.0f;
        for (int64_t c = 0; c < d; ++c) acc += grow[c] * vrow[c];
        if (mrow != nullptr) acc *= mrow[j];
        dsrow[j] = acc;
      }
      float dot = 0.0f;
      for (int64_t j = 0; j < bound; ++j) dot += prow[j] * dsrow[j];
      for (int64_t j = 0; j < bound; ++j)
        dsrow[j] = prow[j] * (dsrow[j] - dot);
      if (dbias != nullptr && !bias_broadcast) {
        float* dbrow = dbias + t * n;
        for (int64_t j = 0; j < bound; ++j) dbrow[j] += dsrow[j];
      }
      if (dq != nullptr) {
        float* dqrow = dq + t * d;
        for (int64_t j = 0; j < bound; ++j) {
          const float av = dsrow[j] * scale;
          if (av == 0.0f) continue;
          const float* krow = kblk + j * d;
          for (int64_t c = 0; c < d; ++c) dqrow[c] += av * krow[c];
        }
      }
    }
  });
  // Phase 2b — a shared [m,n] bias reduces over the batch: each output row
  // is owned by one thread and batches accumulate in ascending order, the
  // per-element order of the composed serial broadcast-Add backward.
  if (dbias != nullptr && bias_broadcast) {
    ParallelRanges(m, batch * n, [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        const int64_t bound = causal ? r + 1 : n;
        float* dbrow = dbias + r * n;
        for (int64_t b = 0; b < batch; ++b) {
          const float* dsrow = ds + (b * m + r) * n;
          for (int64_t j = 0; j < bound; ++j) dbrow[j] += dsrow[j];
        }
      }
    });
  }
  // Phase 3 — dK[i,:] += Σ_p (dS[p,i] · scale) · Q[p,:]. After dQ, matching
  // the composed dA-before-dB MatMul backward when q and k alias.
  if (dk != nullptr) {
    ParallelRanges(kv_rows, m * d, [&](int64_t t0, int64_t t1) {
      for (int64_t t = t0; t < t1; ++t) {
        const int64_t b = t / n;
        const int64_t i = t % n;
        const float* dsblk = ds + b * m * n;
        const float* qblk = q + b * m * d;
        float* dkrow = dk + t * d;
        for (int64_t p = causal ? i : 0; p < m; ++p) {
          const float av = dsblk[p * n + i] * scale;
          if (av == 0.0f) continue;
          const float* qrow = qblk + p * d;
          for (int64_t c = 0; c < d; ++c) dkrow[c] += av * qrow[c];
        }
      }
    });
  }
}

void TransposeMats(const float* in, float* out, int64_t mats, int64_t rows,
                   int64_t cols) {
  ParallelRanges(mats, rows * cols, [&](int64_t t0, int64_t t1) {
    for (int64_t t = t0; t < t1; ++t) {
      const float* src = in + t * rows * cols;
      float* dst = out + t * rows * cols;
      for (int64_t i = 0; i < rows; ++i)
        for (int64_t j = 0; j < cols; ++j)
          dst[j * rows + i] = src[i * cols + j];
    }
  });
}

}  // namespace stisan::kernels
