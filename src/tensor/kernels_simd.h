// Vectorized kernel backend (internal to src/tensor and benchmarks).
//
// Explicit SIMD implementations of the hot forward kernels: AVX2+FMA on
// x86-64 (selected by runtime CPU detection) and NEON on aarch64. The
// scalar loops in kernels.cc remain the bit-exactness reference; dispatch
// between the two lives in kernels.cc behind kernels::SimdEnabled()
// (STISAN_SIMD=0 kill switch).
//
// Determinism contract (same as the scalar backend): the reduction order of
// every output element depends only on the reduction length and absolute
// element positions — 8-lane partial sums over [0, 8*(k/8)) plus a scalar
// tail — never on how rows were partitioned across threads. So incremental
// vs full scoring, batched vs single eval, and any-thread-count runs stay
// bit-identical to each other under SIMD. What is NOT promised under SIMD:
// bit-identity to the scalar backend (FMA + lane-parallel partial sums round
// differently), and fused-vs-composed attention equivalence (the composed
// path's full-row softmax sums masked exp-underflow terms lane-wise).

#pragma once

#include <cstdint>

namespace stisan::kernels::simd {

/// True when a vector backend exists for this CPU (AVX2+FMA detected at
/// runtime on x86-64, or compiled for aarch64). Cached after the first call.
bool Available();

/// "avx2" or "neon". Meaningful only when Available().
const char* Name();

/// Row-range GEMM, same semantics as the scalar GemmRowRange in kernels.cc:
/// C[i0:i1, :] (+)= A x B, A [m,k] (or [k,m] when ta), B [k,n] ([n,k] when
/// tb). The doubly-transposed (ta && tb) variant stays scalar — nothing in
/// the model emits it on a hot path.
void GemmRowRange(const float* a, const float* b, float* c, int64_t m,
                  int64_t k, int64_t n, bool ta, bool tb, bool accumulate,
                  int64_t i0, int64_t i1);

/// y[r,:] = softmax(x[r,:]) for r in [r0, r1). x may alias y.
void SoftmaxRowRange(const float* x, float* y, int64_t d, int64_t r0,
                     int64_t r1);

/// y[r,:] = log-softmax(x[r,:]) for r in [r0, r1).
void LogSoftmaxRowRange(const float* x, float* y, int64_t d, int64_t r0,
                        int64_t r1);

/// Layer norm rows [r0, r1); writes y plus per-row mu / inv_sigma.
void LayerNormRowRange(const float* x, const float* gamma, const float* beta,
                       float* y, float* mu, float* inv_sigma, int64_t d,
                       float eps, int64_t r0, int64_t r1);

/// One query row of fused attention: logits = qrow · K[j,:] * scale (+
/// brow[j]) for j < bound, bounded softmax into prow, then orow =
/// probs (· mrow) @ V. prow must hold at least `bound` floats.
void AttentionRow(const float* qrow, const float* kblk, const float* vblk,
                  const float* brow, const float* mrow, float* prow,
                  float* orow, int64_t bound, int64_t d, float scale);

}  // namespace stisan::kernels::simd
