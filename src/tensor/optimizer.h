// Gradient-descent optimizers over flat parameter lists.

#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace stisan {

/// Base class: owns references to trainable tensors and updates them in
/// place from their .grad buffers.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Applies one update step using current gradients.
  virtual void Step() = 0;

  /// Overrides the learning rate (used by LR schedules).
  virtual void SetLr(float lr) = 0;
  virtual float lr() const = 0;

  /// Zero-fills every parameter gradient.
  void ZeroGrad();

  /// Rescales gradients so their global L2 norm is at most `max_norm`.
  /// Returns the pre-clip norm.
  float ClipGradNorm(float max_norm);

  const std::vector<Tensor>& params() const { return params_; }

 protected:
  std::vector<Tensor> params_;
};

/// Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  struct Options {
    float lr = 0.01f;
    float momentum = 0.0f;
    float weight_decay = 0.0f;
  };

  Sgd(std::vector<Tensor> params, Options options);
  void Step() override;
  void SetLr(float lr) override { options_.lr = lr; }
  float lr() const override { return options_.lr; }

 private:
  Options options_;
  std::vector<std::vector<float>> velocity_;
};

/// Adam (Kingma & Ba, 2015) with decoupled-free classic L2 weight decay,
/// matching torch.optim.Adam defaults used by the paper's PyTorch code.
class Adam : public Optimizer {
 public:
  struct Options {
    float lr = 0.001f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float eps = 1e-8f;
    float weight_decay = 0.0f;
  };

  Adam(std::vector<Tensor> params, Options options);
  void Step() override;
  void SetLr(float lr) override { options_.lr = lr; }
  float lr() const override { return options_.lr; }

  /// Optimizer state for checkpointing: step count and per-parameter
  /// first/second moments, in parameter registration order.
  int64_t step_count() const { return t_; }
  const std::vector<std::vector<float>>& first_moments() const { return m_; }
  const std::vector<std::vector<float>>& second_moments() const { return v_; }

  /// Restores state captured from an identically-shaped Adam instance.
  /// The moment vectors must match the parameter list element-for-element.
  void RestoreState(int64_t step_count, std::vector<std::vector<float>> m,
                    std::vector<std::vector<float>> v);

 private:
  Options options_;
  int64_t t_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

}  // namespace stisan
