#include "tensor/arena.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "obs/metrics.h"

namespace stisan::arena {
namespace {

// Buckets cover capacities 2^0 .. 2^(kNumBuckets-1) floats; anything larger
// is never pooled (a single huge buffer would evict the whole cap).
constexpr int kNumBuckets = 28;  // up to 2^27 floats = 512 MiB
constexpr size_t kMaxPooledBytes = size_t{256} << 20;

int FloorLog2(size_t n) {
  int b = 0;
  while (n >>= 1) ++b;
  return b;
}

// One exact-size bucket: `wanted` buffers of exactly this capacity are kept
// pooled (stocked by ReserveExact, restocked by Release at step teardown).
struct ExactBucket {
  size_t wanted = 0;
  std::vector<std::vector<float>> free;
};

struct State {
  std::mutex mutex;
  int scope_depth = 0;
  std::vector<std::vector<float>> buckets[kNumBuckets];
  size_t pooled_bytes = 0;
  std::unordered_map<size_t, ExactBucket> exact;  // keyed by capacity
  size_t exact_bytes = 0;
  bool recording = false;
  std::vector<size_t> record;
  Stats stats;

  void DrainLocked() {
    for (auto& bucket : buckets) bucket.clear();
    pooled_bytes = 0;
    // Exact buckets drain too (the outermost scope is gone), but the wanted
    // counts survive: a plan that outlives this drain restocks lazily from
    // the releases of its next step.
    for (auto& [cap, b] : exact) b.free.clear();
    exact_bytes = 0;
  }
};

// Leaked singleton: Release() runs from Storage destructors, which can fire
// during static destruction in other translation units — the state must
// outlive every Storage. Pool health is polled by obs snapshots through
// callback gauges; Acquire/Release pay no extra bookkeeping.
State& GetState() {
  static State* state = [] {
    auto* st = new State;
    obs::RegisterCallbackGauge("arena/hits",
                               [] { return double(GetStats().hits); });
    obs::RegisterCallbackGauge("arena/exact_hits",
                               [] { return double(GetStats().exact_hits); });
    obs::RegisterCallbackGauge("arena/misses",
                               [] { return double(GetStats().misses); });
    obs::RegisterCallbackGauge("arena/recycled",
                               [] { return double(GetStats().recycled); });
    obs::RegisterCallbackGauge("arena/dropped",
                               [] { return double(GetStats().dropped); });
    obs::RegisterCallbackGauge(
        "arena/pooled_bytes", [] { return double(GetStats().pooled_bytes); });
    obs::RegisterCallbackGauge(
        "arena/exact_bytes", [] { return double(GetStats().exact_bytes); });
    return st;
  }();
  return *state;
}

std::atomic<int> g_override{-1};
std::atomic<int> g_forced{0};

bool EnvEnabled() {
  static const bool on = [] {
    const char* v = std::getenv("STISAN_ARENA");
    return v != nullptr && v[0] == '1' && v[1] == '\0';
  }();
  return on;
}

}  // namespace

bool Enabled() {
  const int ov = g_override.load(std::memory_order_relaxed);
  if (ov >= 0) return ov != 0;
  if (g_forced.load(std::memory_order_relaxed) > 0) return true;
  return EnvEnabled();
}

void SetEnabledForTesting(int value) {
  g_override.store(value, std::memory_order_relaxed);
}

bool Active() {
  if (!Enabled()) return false;
  State& st = GetState();
  std::lock_guard<std::mutex> lock(st.mutex);
  return st.scope_depth > 0;
}

Scope::Scope() {
  State& st = GetState();
  std::lock_guard<std::mutex> lock(st.mutex);
  ++st.scope_depth;
}

Scope::~Scope() {
  State& st = GetState();
  std::lock_guard<std::mutex> lock(st.mutex);
  if (--st.scope_depth == 0) st.DrainLocked();
}

ForcedScope::ForcedScope() {
  g_forced.fetch_add(1, std::memory_order_relaxed);
  State& st = GetState();
  std::lock_guard<std::mutex> lock(st.mutex);
  ++st.scope_depth;
}

ForcedScope::~ForcedScope() {
  {
    State& st = GetState();
    std::lock_guard<std::mutex> lock(st.mutex);
    if (--st.scope_depth == 0) st.DrainLocked();
  }
  g_forced.fetch_sub(1, std::memory_order_relaxed);
}

std::vector<float> AcquireZeroed(size_t n) {
  if (n > 0 && Enabled()) {
    State& st = GetState();
    std::lock_guard<std::mutex> lock(st.mutex);
    if (st.scope_depth > 0) {
      if (st.recording) st.record.push_back(n);
      // Exact-size reservation first: a replayed plan step finds every one
      // of its buffers here.
      if (!st.exact.empty()) {
        auto it = st.exact.find(n);
        if (it != st.exact.end() && !it->second.free.empty()) {
          std::vector<float> buf = std::move(it->second.free.back());
          it->second.free.pop_back();
          st.exact_bytes -= buf.capacity() * sizeof(float);
          ++st.stats.exact_hits;
          buf.assign(n, 0.0f);  // capacity == n; no reallocation
          return buf;
        }
      }
      // Smallest bucket whose buffers are guaranteed to hold n floats.
      const int bucket = FloorLog2(n) + ((n & (n - 1)) != 0 ? 1 : 0);
      if (bucket < kNumBuckets && !st.buckets[bucket].empty()) {
        std::vector<float> buf = std::move(st.buckets[bucket].back());
        st.buckets[bucket].pop_back();
        st.pooled_bytes -= buf.capacity() * sizeof(float);
        ++st.stats.hits;
        buf.assign(n, 0.0f);  // capacity is preserved; no reallocation
        return buf;
      }
      ++st.stats.misses;
    }
  }
  return std::vector<float>(n, 0.0f);
}

std::shared_ptr<std::vector<float>> AcquireSharedZeroed(size_t n) {
  return std::shared_ptr<std::vector<float>>(
      new std::vector<float>(AcquireZeroed(n)), [](std::vector<float>* v) {
        Release(std::move(*v));
        delete v;
      });
}

void Release(std::vector<float>&& buffer) {
  const size_t cap = buffer.capacity();
  if (cap == 0 || !Enabled()) return;  // dtor frees
  State& st = GetState();
  std::lock_guard<std::mutex> lock(st.mutex);
  if (st.scope_depth == 0) return;
  const size_t bytes = cap * sizeof(float);
  // Restock an under-stocked exact reservation of this capacity (exempt
  // from the pow2 byte cap: the exact footprint is bounded by the plans'
  // recorded peaks).
  if (!st.exact.empty()) {
    auto it = st.exact.find(cap);
    if (it != st.exact.end() && it->second.free.size() < it->second.wanted) {
      it->second.free.push_back(std::move(buffer));
      st.exact_bytes += bytes;
      ++st.stats.recycled;
      return;
    }
  }
  // A buffer parked in bucket b must satisfy any request with ceil bucket b,
  // i.e. capacity >= 2^b, so file by floor(log2(capacity)).
  const int bucket = FloorLog2(cap);
  if (bucket >= kNumBuckets || st.pooled_bytes + bytes > kMaxPooledBytes) {
    ++st.stats.dropped;
    return;
  }
  st.buckets[bucket].push_back(std::move(buffer));
  st.pooled_bytes += bytes;
  ++st.stats.recycled;
}

void ReserveExact(const std::vector<size_t>& sizes) {
  if (sizes.empty() || !Enabled()) return;
  std::unordered_map<size_t, size_t> need;
  for (size_t n : sizes)
    if (n > 0) ++need[n];
  State& st = GetState();
  std::lock_guard<std::mutex> lock(st.mutex);
  if (st.scope_depth == 0) return;
  for (const auto& [n, count] : need) {
    ExactBucket& b = st.exact[n];
    b.wanted += count;
    // Scavenge capacity-exact buffers already parked in the pow2 bucket
    // (the capture step released its tape there before the plan finalised).
    const int bucket = FloorLog2(n);
    if (bucket < kNumBuckets) {
      auto& pb = st.buckets[bucket];
      for (size_t i = 0; i < pb.size() && b.free.size() < b.wanted;) {
        if (pb[i].capacity() == n) {
          st.pooled_bytes -= n * sizeof(float);
          st.exact_bytes += n * sizeof(float);
          b.free.push_back(std::move(pb[i]));
          pb[i] = std::move(pb.back());
          pb.pop_back();
        } else {
          ++i;
        }
      }
    }
    // Reserve the shortfall fresh (capacity only; zero-filled on acquire).
    while (b.free.size() < b.wanted) {
      std::vector<float> v;
      v.reserve(n);
      b.free.push_back(std::move(v));
      st.exact_bytes += n * sizeof(float);
    }
  }
}

void UnreserveExact(const std::vector<size_t>& sizes) {
  if (sizes.empty()) return;
  std::unordered_map<size_t, size_t> drop;
  for (size_t n : sizes)
    if (n > 0) ++drop[n];
  State& st = GetState();
  std::lock_guard<std::mutex> lock(st.mutex);
  for (const auto& [n, count] : drop) {
    auto it = st.exact.find(n);
    if (it == st.exact.end()) continue;
    ExactBucket& b = it->second;
    b.wanted -= count < b.wanted ? count : b.wanted;
    while (b.free.size() > b.wanted) {
      st.exact_bytes -= b.free.back().capacity() * sizeof(float);
      b.free.pop_back();  // dtor frees
    }
    if (b.wanted == 0 && b.free.empty()) st.exact.erase(it);
  }
}

void BeginAllocRecord() {
  State& st = GetState();
  std::lock_guard<std::mutex> lock(st.mutex);
  st.recording = true;
  st.record.clear();
}

std::vector<size_t> EndAllocRecord() {
  State& st = GetState();
  std::lock_guard<std::mutex> lock(st.mutex);
  st.recording = false;
  return std::move(st.record);
}

Stats GetStats() {
  State& st = GetState();
  std::lock_guard<std::mutex> lock(st.mutex);
  Stats out = st.stats;
  out.pooled_bytes = st.pooled_bytes;
  out.exact_bytes = st.exact_bytes;
  return out;
}

void ResetStats() {
  State& st = GetState();
  std::lock_guard<std::mutex> lock(st.mutex);
  st.stats = Stats{};
}

}  // namespace stisan::arena
