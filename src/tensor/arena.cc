#include "tensor/arena.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <utility>

#include "obs/metrics.h"

namespace stisan::arena {
namespace {

// Buckets cover capacities 2^0 .. 2^(kNumBuckets-1) floats; anything larger
// is never pooled (a single huge buffer would evict the whole cap).
constexpr int kNumBuckets = 28;  // up to 2^27 floats = 512 MiB
constexpr size_t kMaxPooledBytes = size_t{256} << 20;

int FloorLog2(size_t n) {
  int b = 0;
  while (n >>= 1) ++b;
  return b;
}

struct State {
  std::mutex mutex;
  int scope_depth = 0;
  std::vector<std::vector<float>> buckets[kNumBuckets];
  size_t pooled_bytes = 0;
  Stats stats;

  void DrainLocked() {
    for (auto& bucket : buckets) bucket.clear();
    pooled_bytes = 0;
  }
};

// Leaked singleton: Release() runs from Storage destructors, which can fire
// during static destruction in other translation units — the state must
// outlive every Storage. Pool health is polled by obs snapshots through
// callback gauges; Acquire/Release pay no extra bookkeeping.
State& GetState() {
  static State* state = [] {
    auto* st = new State;
    obs::RegisterCallbackGauge("arena/hits",
                               [] { return double(GetStats().hits); });
    obs::RegisterCallbackGauge("arena/misses",
                               [] { return double(GetStats().misses); });
    obs::RegisterCallbackGauge("arena/recycled",
                               [] { return double(GetStats().recycled); });
    obs::RegisterCallbackGauge("arena/dropped",
                               [] { return double(GetStats().dropped); });
    obs::RegisterCallbackGauge(
        "arena/pooled_bytes", [] { return double(GetStats().pooled_bytes); });
    return st;
  }();
  return *state;
}

std::atomic<int> g_override{-1};

bool EnvEnabled() {
  static const bool on = [] {
    const char* v = std::getenv("STISAN_ARENA");
    return v != nullptr && v[0] == '1' && v[1] == '\0';
  }();
  return on;
}

}  // namespace

bool Enabled() {
  const int ov = g_override.load(std::memory_order_relaxed);
  if (ov >= 0) return ov != 0;
  return EnvEnabled();
}

void SetEnabledForTesting(int value) {
  g_override.store(value, std::memory_order_relaxed);
}

bool Active() {
  if (!Enabled()) return false;
  State& st = GetState();
  std::lock_guard<std::mutex> lock(st.mutex);
  return st.scope_depth > 0;
}

Scope::Scope() {
  State& st = GetState();
  std::lock_guard<std::mutex> lock(st.mutex);
  ++st.scope_depth;
}

Scope::~Scope() {
  State& st = GetState();
  std::lock_guard<std::mutex> lock(st.mutex);
  if (--st.scope_depth == 0) st.DrainLocked();
}

std::vector<float> AcquireZeroed(size_t n) {
  if (n > 0 && Enabled()) {
    State& st = GetState();
    std::lock_guard<std::mutex> lock(st.mutex);
    if (st.scope_depth > 0) {
      // Smallest bucket whose buffers are guaranteed to hold n floats.
      const int bucket = FloorLog2(n) + ((n & (n - 1)) != 0 ? 1 : 0);
      if (bucket < kNumBuckets && !st.buckets[bucket].empty()) {
        std::vector<float> buf = std::move(st.buckets[bucket].back());
        st.buckets[bucket].pop_back();
        st.pooled_bytes -= buf.capacity() * sizeof(float);
        ++st.stats.hits;
        buf.assign(n, 0.0f);  // capacity is preserved; no reallocation
        return buf;
      }
      ++st.stats.misses;
    }
  }
  return std::vector<float>(n, 0.0f);
}

void Release(std::vector<float>&& buffer) {
  const size_t cap = buffer.capacity();
  if (cap == 0 || !Enabled()) return;  // dtor frees
  State& st = GetState();
  std::lock_guard<std::mutex> lock(st.mutex);
  if (st.scope_depth == 0) return;
  // A buffer parked in bucket b must satisfy any request with ceil bucket b,
  // i.e. capacity >= 2^b, so file by floor(log2(capacity)).
  const int bucket = FloorLog2(cap);
  const size_t bytes = cap * sizeof(float);
  if (bucket >= kNumBuckets || st.pooled_bytes + bytes > kMaxPooledBytes) {
    ++st.stats.dropped;
    return;
  }
  st.buckets[bucket].push_back(std::move(buffer));
  st.pooled_bytes += bytes;
  ++st.stats.recycled;
}

Stats GetStats() {
  State& st = GetState();
  std::lock_guard<std::mutex> lock(st.mutex);
  Stats out = st.stats;
  out.pooled_bytes = st.pooled_bytes;
  return out;
}

void ResetStats() {
  State& st = GetState();
  std::lock_guard<std::mutex> lock(st.mutex);
  st.stats = Stats{};
}

}  // namespace stisan::arena
