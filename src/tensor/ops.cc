#include "tensor/ops.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "plan/plan.h"
#include "tensor/arena.h"
#include "tensor/kernels.h"

namespace stisan {
namespace ops {
namespace {

using internal::TensorImpl;
using internal::TensorImplPtr;

// Int8 inference hooks, installed once by the quant subsystem (see ops.h).
std::atomic<Int8GemmHook> g_int8_gemm_hook{nullptr};
std::atomic<Int8GatherHook> g_int8_gather_hook{nullptr};

// Creates a result node wired to its parents. The backward function is only
// attached when grad recording is on and at least one parent needs grads.
// The node owns fresh dense storage.
Tensor MakeNode(const char* kind, Shape shape,
                std::vector<TensorImplPtr> parents,
                std::function<void(TensorImpl&)> backward) {
  auto impl = std::make_shared<TensorImpl>();
  const int64_t n = NumElements(shape);
  impl->strides = ContiguousStrides(shape);
  impl->shape = std::move(shape);
  impl->storage = std::make_shared<internal::Storage>();
  impl->storage->data = arena::AcquireZeroed(static_cast<size_t>(n));
  bool needs = false;
  if (internal::GradEnabled()) {
    for (const auto& p : parents)
      if (p && p->requires_grad) needs = true;
  }
  impl->requires_grad = needs;
  plan::OnNodeCreated(impl.get(), kind, parents.data(), parents.size(),
                      /*is_view=*/false);
  if (needs) {
    impl->parents = std::move(parents);
    impl->backward_fn = std::move(backward);
  }
  return Tensor(std::move(impl));
}

// Creates a zero-copy view sharing `base`'s storage. Views are
// grad-transparent: their grad region aliases the base's, so they carry a
// parent edge (to keep the base reachable in the topological sweep) but no
// backward function.
Tensor MakeView(const char* kind, const TensorImplPtr& base, Shape shape,
                std::vector<int64_t> strides, int64_t offset) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = std::move(shape);
  impl->strides = std::move(strides);
  impl->offset = offset;
  impl->storage = base->storage;
  impl->requires_grad = base->requires_grad && internal::GradEnabled();
  plan::OnNodeCreated(impl.get(), kind, &base, 1, /*is_view=*/true);
  if (impl->requires_grad) impl->parents = {base};
  return Tensor(std::move(impl));
}

// Iterates a strided index space in logical row-major order, calling
// fn(dense_flat, storage_flat).
template <typename Fn>
void ForEachStrided(const Shape& shape, const std::vector<int64_t>& strides,
                    int64_t offset, Fn&& fn) {
  const int64_t n = NumElements(shape);
  if (n == 0) return;
  const size_t rank = shape.size();
  std::vector<int64_t> idx(rank, 0);
  int64_t ofs = offset;
  for (int64_t flat = 0; flat < n; ++flat) {
    fn(flat, ofs);
    for (size_t d = rank; d-- > 0;) {
      idx[d]++;
      ofs += strides[d];
      if (idx[d] < shape[d]) break;
      ofs -= strides[d] * shape[d];
      idx[d] = 0;
    }
  }
}

// ---- Broadcasting machinery ------------------------------------------------

Shape BroadcastShape(const Shape& a, const Shape& b) {
  const size_t rank = std::max(a.size(), b.size());
  Shape out(rank, 1);
  for (size_t i = 0; i < rank; ++i) {
    const int64_t da = i < a.size() ? a[a.size() - 1 - i] : 1;
    const int64_t db = i < b.size() ? b[b.size() - 1 - i] : 1;
    STISAN_CHECK_MSG(da == db || da == 1 || db == 1,
                     "incompatible broadcast " << ShapeToString(a) << " vs "
                                               << ShapeToString(b));
    out[rank - 1 - i] = std::max(da, db);
  }
  return out;
}

// Row-major strides; broadcast (size-1) dims get stride 0 when aligned to a
// larger output shape.
std::vector<int64_t> BroadcastStrides(const Shape& in, const Shape& out) {
  std::vector<int64_t> strides(out.size(), 0);
  int64_t stride = 1;
  for (size_t i = 0; i < in.size(); ++i) {
    const size_t d = in.size() - 1 - i;
    const size_t od = out.size() - 1 - i;
    strides[od] = (in[d] == 1) ? 0 : stride;
    stride *= in[d];
  }
  return strides;
}

// Iterates the output index space of `out_shape` calling
// fn(out_flat, a_flat, b_flat). Offsets are dense (both operands must be
// contiguous; pointers already include the view offset).
template <typename Fn>
void ForEachBroadcast(const Shape& out_shape, const Shape& a_shape,
                      const Shape& b_shape, Fn&& fn) {
  const int64_t n = NumElements(out_shape);
  const size_t rank = out_shape.size();
  if (n == 0) return;
  const auto sa = BroadcastStrides(a_shape, out_shape);
  const auto sb = BroadcastStrides(b_shape, out_shape);
  std::vector<int64_t> idx(rank, 0);
  int64_t ofs_a = 0;
  int64_t ofs_b = 0;
  for (int64_t flat = 0; flat < n; ++flat) {
    fn(flat, ofs_a, ofs_b);
    // Increment the multi-index (row-major) and update offsets.
    for (size_t d = rank; d-- > 0;) {
      idx[d]++;
      ofs_a += sa[d];
      ofs_b += sb[d];
      if (idx[d] < out_shape[d]) break;
      ofs_a -= sa[d] * out_shape[d];
      ofs_b -= sb[d] * out_shape[d];
      idx[d] = 0;
    }
  }
}

bool SameShape(const Shape& a, const Shape& b) { return a == b; }

// True when b broadcasts as a trailing vector: a=[..., d], b=[d] (or
// [1,...,1,d]).
bool IsTrailingVector(const Shape& a, const Shape& b) {
  if (a.empty() || b.empty()) return false;
  if (b.back() != a.back()) return false;
  for (size_t i = 0; i + 1 < b.size(); ++i)
    if (b[i] != 1) return false;
  return true;
}

// Generic elementwise binary op with fwd(a_val, b_val) and backward partials
// dfa(g, a, b, out) / dfb(g, a, b, out) evaluated per element.
template <typename Fwd, typename DA, typename DB>
Tensor BinaryOp(const char* kind, const Tensor& a_in, const Tensor& b_in,
                Fwd fwd, DA dfa, DB dfb) {
  STISAN_CHECK(a_in.defined() && b_in.defined());
  const Tensor a = Contiguous(a_in);
  const Tensor b = Contiguous(b_in);
  const Shape out_shape = BroadcastShape(a.shape(), b.shape());
  auto ai = a.impl();
  auto bi = b.impl();
  Tensor out = MakeNode(
      kind, out_shape, {ai, bi},
      [ai, bi, dfa, dfb, out_shape](TensorImpl& self) {
        const bool need_a = ai->requires_grad;
        const bool need_b = bi->requires_grad;
        if (need_a) ai->EnsureGrad();
        if (need_b) bi->EnsureGrad();
        const float* sg = self.Grad();
        const float* sd = self.Data();
        const float* ad = ai->Data();
        const float* bd = bi->Data();
        float* ag = need_a ? ai->Grad() : nullptr;
        float* bg = need_b ? bi->Grad() : nullptr;
        if (SameShape(ai->shape, bi->shape)) {
          // Threading is safe only when the two grad regions cannot overlap
          // element-wise across chunk boundaries (views of one storage may).
          const bool disjoint =
              !(need_a && need_b) || ai->storage.get() != bi->storage.get();
          const auto chunk = [&](int64_t i0, int64_t i1) {
            for (int64_t i = i0; i < i1; ++i) {
              const float g = sg[i];
              if (ag != nullptr) ag[i] += dfa(g, ad[i], bd[i], sd[i]);
              if (bg != nullptr) bg[i] += dfb(g, ad[i], bd[i], sd[i]);
            }
          };
          if (disjoint) {
            kernels::ParallelRanges(self.numel(), 2, chunk);
          } else {
            chunk(0, self.numel());
          }
          return;
        }
        ForEachBroadcast(out_shape, ai->shape, bi->shape,
                         [&](int64_t o, int64_t ia, int64_t ib) {
                           const float g = sg[o];
                           if (ag != nullptr)
                             ag[ia] += dfa(g, ad[ia], bd[ib], sd[o]);
                           if (bg != nullptr)
                             bg[ib] += dfb(g, ad[ia], bd[ib], sd[o]);
                         });
      });
  float* od = out.data();
  const float* ad = a.data();
  const float* bd = b.data();
  if (SameShape(a.shape(), b.shape())) {
    kernels::ParallelRanges(out.numel(), 1, [&](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) od[i] = fwd(ad[i], bd[i]);
    });
  } else if (IsTrailingVector(a.shape(), b.shape())) {
    const int64_t d = a.shape().back();
    const int64_t rows = a.numel() / d;
    kernels::ParallelRanges(rows, d, [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r)
        for (int64_t c = 0; c < d; ++c)
          od[r * d + c] = fwd(ad[r * d + c], bd[c]);
    });
  } else {
    ForEachBroadcast(out_shape, a.shape(), b.shape(),
                     [&](int64_t o, int64_t ia, int64_t ib) {
                       od[o] = fwd(ad[ia], bd[ib]);
                     });
  }
  return out;
}

// Generic elementwise unary op.
template <typename Fwd, typename Bwd>
Tensor UnaryOp(const char* kind, const Tensor& a_in, Fwd fwd, Bwd bwd) {
  STISAN_CHECK(a_in.defined());
  const Tensor a = Contiguous(a_in);
  auto ai = a.impl();
  Tensor out = MakeNode(kind, a.shape(), {ai}, [ai, bwd](TensorImpl& self) {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    const float* sg = self.Grad();
    const float* sd = self.Data();
    const float* ad = ai->Data();
    float* ag = ai->Grad();
    kernels::ParallelRanges(self.numel(), 2, [&](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) ag[i] += bwd(sg[i], ad[i], sd[i]);
    });
  });
  const float* ad = a.data();
  float* od = out.data();
  kernels::ParallelRanges(a.numel(), 1, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) od[i] = fwd(ad[i]);
  });
  return out;
}

// True for a 2-D view that is TransposeLast2 of a dense [n,k] block: shape
// [k,n] with strides {1,k}. MatMul consumes these in place via Gemm's tb
// flag instead of materialising.
bool IsTransposed2DView(const TensorImpl& t) {
  return t.shape.size() == 2 && t.shape[0] > 1 && t.shape[1] > 1 &&
         t.strides[0] == 1 && t.strides[1] == t.shape[0];
}

// The batched analogue: TransposeLast2 of a dense [b,n,k] block, i.e. shape
// [b,k,n] with strides {k*n, 1, k}. BatchedGemm reads it via tb, with the
// same per-element accumulation order as the fused 2-D path.
bool IsTransposedBatchedView(const TensorImpl& t) {
  return t.shape.size() == 3 && t.shape[1] > 1 && t.shape[2] > 1 &&
         t.strides[0] == t.shape[1] * t.shape[2] && t.strides[1] == 1 &&
         t.strides[2] == t.shape[1];
}

}  // namespace

// ---- Contiguity -------------------------------------------------------------

Tensor Contiguous(const Tensor& a) {
  STISAN_CHECK(a.defined());
  if (a.IsContiguous()) return a;
  auto ai = a.impl();
  const Shape shape = ai->shape;
  const std::vector<int64_t> strides = ai->strides;
  const int64_t offset = ai->offset;
  Tensor out = MakeNode(
      "contiguous", shape, {ai}, [ai, shape, strides, offset](TensorImpl& self) {
        if (!ai->requires_grad) return;
        ai->EnsureGrad();
        // Scatter-accumulate the dense grad back through the view's strides
        // into the base storage. This is the single place view gradients are
        // routed; pure views alias the base grad region and need nothing.
        float* base_grad = ai->storage->grad.data();
        const float* sg = self.Grad();
        ForEachStrided(shape, strides, offset,
                       [&](int64_t dense, int64_t st) {
                         base_grad[st] += sg[dense];
                       });
      });
  float* od = out.data();
  const float* base = ai->storage->data.data();
  ForEachStrided(shape, strides, offset, [&](int64_t dense, int64_t st) {
    od[dense] = base[st];
  });
  return out;
}

// ---- Elementwise binary -------------------------------------------------------

Tensor Add(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      "add", a, b, [](float x, float y) { return x + y; },
      [](float g, float, float, float) { return g; },
      [](float g, float, float, float) { return g; });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      "sub", a, b, [](float x, float y) { return x - y; },
      [](float g, float, float, float) { return g; },
      [](float g, float, float, float) { return -g; });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      "mul", a, b, [](float x, float y) { return x * y; },
      [](float g, float, float y, float) { return g * y; },
      [](float g, float x, float, float) { return g * x; });
}

Tensor Div(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      "div", a, b, [](float x, float y) { return x / y; },
      [](float g, float, float y, float) { return g / y; },
      [](float g, float x, float y, float) { return -g * x / (y * y); });
}

// ---- Scalar ----------------------------------------------------------------------

Tensor AddScalar(const Tensor& a, float s) {
  return UnaryOp(
      "add_s", a, [s](float x) { return x + s; },
      [](float g, float, float) { return g; });
}

Tensor MulScalar(const Tensor& a, float s) {
  return UnaryOp(
      "mul_s", a, [s](float x) { return x * s; },
      [s](float g, float, float) { return g * s; });
}

// ---- Unary ------------------------------------------------------------------------

Tensor Neg(const Tensor& a) { return MulScalar(a, -1.0f); }

Tensor Relu(const Tensor& a) {
  return UnaryOp(
      "relu", a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float g, float x, float) { return x > 0.0f ? g : 0.0f; });
}

Tensor Sigmoid(const Tensor& a) {
  return UnaryOp(
      "sigmoid", a,
      [](float x) {
        return x >= 0.0f ? 1.0f / (1.0f + std::exp(-x))
                         : std::exp(x) / (1.0f + std::exp(x));
      },
      [](float g, float, float y) { return g * y * (1.0f - y); });
}

Tensor Tanh(const Tensor& a) {
  return UnaryOp(
      "tanh", a, [](float x) { return std::tanh(x); },
      [](float g, float, float y) { return g * (1.0f - y * y); });
}

Tensor Exp(const Tensor& a) {
  return UnaryOp(
      "exp", a, [](float x) { return std::exp(x); },
      [](float g, float, float y) { return g * y; });
}

Tensor Log(const Tensor& a) {
  return UnaryOp(
      "log", a, [](float x) { return std::log(std::max(x, 1e-12f)); },
      [](float g, float x, float) { return g / std::max(x, 1e-12f); });
}

Tensor Sqrt(const Tensor& a) {
  return UnaryOp(
      "sqrt", a, [](float x) { return std::sqrt(x); },
      [](float g, float, float y) { return 0.5f * g / std::max(y, 1e-12f); });
}

Tensor Square(const Tensor& a) {
  return UnaryOp(
      "square", a, [](float x) { return x * x; },
      [](float g, float x, float) { return 2.0f * g * x; });
}

Tensor Sin(const Tensor& a) {
  return UnaryOp(
      "sin", a, [](float x) { return std::sin(x); },
      [](float g, float x, float) { return g * std::cos(x); });
}

Tensor Cos(const Tensor& a) {
  return UnaryOp(
      "cos", a, [](float x) { return std::cos(x); },
      [](float g, float x, float) { return -g * std::sin(x); });
}

Tensor Softplus(const Tensor& a) {
  return UnaryOp(
      "softplus", a,
      [](float x) {
        // log(1 + e^x) = max(x, 0) + log1p(e^{-|x|})
        return std::max(x, 0.0f) + std::log1p(std::exp(-std::fabs(x)));
      },
      [](float g, float x, float) {
        const float s = x >= 0.0f ? 1.0f / (1.0f + std::exp(-x))
                                  : std::exp(x) / (1.0f + std::exp(x));
        return g * s;
      });
}

Tensor Abs(const Tensor& a) {
  return UnaryOp(
      "abs", a, [](float x) { return std::fabs(x); },
      [](float g, float x, float) {
        return x > 0.0f ? g : (x < 0.0f ? -g : 0.0f);
      });
}

Tensor Clamp(const Tensor& a, float lo, float hi) {
  STISAN_CHECK_LE(lo, hi);
  return UnaryOp(
      "clamp", a, [lo, hi](float x) { return std::min(hi, std::max(lo, x)); },
      [lo, hi](float g, float x, float) {
        return (x >= lo && x <= hi) ? g : 0.0f;
      });
}

Tensor PowScalar(const Tensor& a, float exponent) {
  return UnaryOp(
      "pow_s", a, [exponent](float x) { return std::pow(x, exponent); },
      [exponent](float g, float x, float) {
        return g * exponent * std::pow(x, exponent - 1.0f);
      });
}

Tensor LogSigmoid(const Tensor& a) {
  return UnaryOp(
      "logsigmoid", a,
      [](float x) {
        // log sigmoid(x) = -softplus(-x)
        return -(std::max(-x, 0.0f) + std::log1p(std::exp(-std::fabs(x))));
      },
      [](float g, float x, float) {
        const float s = x >= 0.0f ? std::exp(-x) / (1.0f + std::exp(-x))
                                  : 1.0f / (1.0f + std::exp(x));
        return g * s;  // sigmoid(-x)
      });
}

// ---- Matrix ------------------------------------------------------------------------

Tensor MatMul(const Tensor& a_in, const Tensor& b_in) {
  STISAN_CHECK(a_in.defined() && b_in.defined());
  const Shape sa = a_in.shape();
  const Shape sb = b_in.shape();

  if (sa.size() == 2 && sb.size() == 2) {
    const int64_t m = sa[0], k = sa[1], n = sb[1];
    STISAN_CHECK_EQ(k, sb[0]);
    const Tensor a = Contiguous(a_in);
    auto ai = a.impl();

    // Fast path: b is a TransposeLast2 view of a dense [n,k] block. Read the
    // block with Gemm's tb flag; the backward writes dB straight into the
    // base's [n,k] grad region (the view is grad-transparent).
    if (!b_in.IsContiguous() && IsTransposed2DView(*b_in.impl())) {
      auto bi = b_in.impl();
      Tensor out =
          MakeNode("matmul_tb", {m, n}, {ai, bi},
                   [ai, bi, m, k, n](TensorImpl& self) {
            if (ai->requires_grad) {
              ai->EnsureGrad();
              // dA = G x Base, with Base the dense [n,k] block.
              kernels::Gemm(self.Grad(), bi->Data(), ai->Grad(), m, n, k,
                            false, false, true);
            }
            if (bi->requires_grad) {
              bi->EnsureGrad();
              // dBase = G^T x A, a dense [n,k] result at the view's offset.
              kernels::Gemm(self.Grad(), ai->Data(), bi->Grad(), n, m, k,
                            true, false, true);
            }
          });
      kernels::Gemm(ai->Data(), bi->Data(), out.data(), m, k, n, false, true,
                    false);
      return out;
    }

    const Tensor b = Contiguous(b_in);
    auto bi = b.impl();
    Tensor out2d =
        MakeNode("matmul", {m, n}, {ai, bi},
                 [ai, bi, m, k, n](TensorImpl& self) {
          if (ai->requires_grad) {
            ai->EnsureGrad();
            kernels::Gemm(self.Grad(), bi->Data(), ai->Grad(), m, n, k, false,
                          true, true);  // dA = G x B^T
          }
          if (bi->requires_grad) {
            bi->EnsureGrad();
            kernels::Gemm(ai->Data(), self.Grad(), bi->Grad(), k, m, n, true,
                          false, true);  // dB = A^T x G
          }
        });
    // Int8 path: when the quant subsystem has registered b's storage as a
    // frozen weight and int8 scoring is active, the hook computes the
    // (dequantized) product itself and the fp32 GEMM is skipped.
    const Int8GemmHook gemm_hook =
        g_int8_gemm_hook.load(std::memory_order_acquire);
    if (gemm_hook == nullptr ||
        !gemm_hook(ai->Data(), bi->Data(), out2d.data(), m, k, n)) {
      kernels::Gemm(ai->Data(), bi->Data(), out2d.data(), m, k, n, false,
                    false, false);
    }
    return out2d;
  }

  if (sa.size() == 3 && sb.size() == 3) {
    const int64_t bsz = sa[0], m = sa[1], k = sa[2], n = sb[2];
    STISAN_CHECK_EQ(bsz, sb[0]);
    STISAN_CHECK_EQ(k, sb[1]);
    const Tensor a = Contiguous(a_in);

    // Fast path: b is a TransposeLast2 view of a dense [bsz,n,k] block.
    // Read it in place via BatchedGemm's tb flag (the batched mirror of the
    // 2-D fast path above); the backward writes dB straight into the base's
    // [bsz,n,k] grad region.
    if (!b_in.IsContiguous() && IsTransposedBatchedView(*b_in.impl())) {
      auto ai = a.impl();
      auto bi = b_in.impl();
      Tensor out = MakeNode(
          "bmm_tb", {bsz, m, n}, {ai, bi},
          [ai, bi, bsz, m, k, n](TensorImpl& self) {
            if (ai->requires_grad) {
              ai->EnsureGrad();
              // dA[t] = G[t] x Base[t], Base the dense [n,k] block.
              kernels::BatchedGemm(self.Grad(), bi->Data(), ai->Grad(), bsz,
                                   m, n, k, false, false, true);
            }
            if (bi->requires_grad) {
              bi->EnsureGrad();
              // dBase[t] = G[t]^T x A[t], a dense [n,k] result per slice.
              kernels::BatchedGemm(self.Grad(), ai->Data(), bi->Grad(), bsz,
                                   n, m, k, true, false, true);
            }
          });
      kernels::BatchedGemm(ai->Data(), bi->Data(), out.data(), bsz, m, k, n,
                           false, true, false);
      return out;
    }

    const Tensor b = Contiguous(b_in);
    auto ai = a.impl();
    auto bi = b.impl();
    Tensor out = MakeNode(
        "bmm", {bsz, m, n}, {ai, bi},
        [ai, bi, bsz, m, k, n](TensorImpl& self) {
          if (ai->requires_grad) {
            ai->EnsureGrad();
            kernels::BatchedGemm(self.Grad(), bi->Data(), ai->Grad(), bsz, m,
                                 n, k, false, true, true);
          }
          if (bi->requires_grad) {
            bi->EnsureGrad();
            kernels::BatchedGemm(ai->Data(), self.Grad(), bi->Grad(), bsz, k,
                                 m, n, true, false, true);
          }
        });
    kernels::BatchedGemm(ai->Data(), bi->Data(), out.data(), bsz, m, k, n,
                         false, false, false);
    return out;
  }

  if (sa.size() == 3 && sb.size() == 2) {
    // Shared right operand: flatten the batch (zero-copy for contiguous a).
    const int64_t bsz = sa[0], m = sa[1], k = sa[2];
    Tensor flat = Reshape(a_in, {bsz * m, k});
    Tensor out = MatMul(flat, b_in);
    return Reshape(out, {bsz, m, sb[1]});
  }

  STISAN_CHECK_MSG(false, "MatMul: unsupported ranks " << ShapeToString(sa)
                                                       << " x "
                                                       << ShapeToString(sb));
  return Tensor();
}

Tensor TransposeLast2(const Tensor& a) {
  STISAN_CHECK(a.defined());
  auto ai = a.impl();
  const size_t rank = ai->shape.size();
  STISAN_CHECK_GE(rank, 2u);
  Shape out_shape = ai->shape;
  std::vector<int64_t> out_strides = ai->strides;
  std::swap(out_shape[rank - 1], out_shape[rank - 2]);
  std::swap(out_strides[rank - 1], out_strides[rank - 2]);
  return MakeView("transpose2", ai, std::move(out_shape),
                  std::move(out_strides), ai->offset);
}

// ---- Shape ---------------------------------------------------------------------------

Tensor Reshape(const Tensor& a_in, Shape new_shape) {
  STISAN_CHECK(a_in.defined());
  STISAN_CHECK_EQ(NumElements(new_shape), a_in.numel());
  const Tensor a = Contiguous(a_in);
  auto ai = a.impl();
  std::vector<int64_t> strides = ContiguousStrides(new_shape);
  return MakeView("reshape", ai, std::move(new_shape), std::move(strides),
                  ai->offset);
}

Tensor Concat(const Tensor& a_in, const Tensor& b_in, int64_t dim) {
  STISAN_CHECK(a_in.defined() && b_in.defined());
  const Tensor a = Contiguous(a_in);
  const Tensor b = Contiguous(b_in);
  const Shape& sa = a.shape();
  const Shape& sb = b.shape();
  STISAN_CHECK_EQ(sa.size(), sb.size());
  if (dim < 0) dim += static_cast<int64_t>(sa.size());
  for (size_t i = 0; i < sa.size(); ++i) {
    if (static_cast<int64_t>(i) != dim) {
      STISAN_CHECK_EQ(sa[i], sb[i]);
    }
  }
  Shape out_shape = sa;
  out_shape[dim] += sb[dim];

  // View both tensors as [outer, mid, inner] with mid the concat axis.
  int64_t outer = 1, inner = 1;
  for (int64_t i = 0; i < dim; ++i) outer *= sa[i];
  for (size_t i = dim + 1; i < sa.size(); ++i) inner *= sa[i];
  const int64_t ma = sa[dim], mb = sb[dim];

  auto ai = a.impl();
  auto bi = b.impl();
  Tensor out = MakeNode(
      "concat", out_shape, {ai, bi},
      [ai, bi, outer, inner, ma, mb](TensorImpl& self) {
        const int64_t mo = ma + mb;
        if (ai->requires_grad) ai->EnsureGrad();
        if (bi->requires_grad) bi->EnsureGrad();
        for (int64_t o = 0; o < outer; ++o) {
          const float* g = self.Grad() + o * mo * inner;
          if (ai->requires_grad) {
            float* ga = ai->Grad() + o * ma * inner;
            for (int64_t i = 0; i < ma * inner; ++i) ga[i] += g[i];
          }
          if (bi->requires_grad) {
            float* gb = bi->Grad() + o * mb * inner;
            for (int64_t i = 0; i < mb * inner; ++i)
              gb[i] += g[ma * inner + i];
          }
        }
      });
  float* od = out.data();
  const float* ad = a.data();
  const float* bd = b.data();
  const int64_t mo = ma + mb;
  for (int64_t o = 0; o < outer; ++o) {
    std::memcpy(od + o * mo * inner, ad + o * ma * inner,
                sizeof(float) * ma * inner);
    std::memcpy(od + o * mo * inner + ma * inner, bd + o * mb * inner,
                sizeof(float) * mb * inner);
  }
  return out;
}

Tensor Slice(const Tensor& a, int64_t dim, int64_t start, int64_t end) {
  STISAN_CHECK(a.defined());
  auto ai = a.impl();
  const Shape& s = ai->shape;
  if (dim < 0) dim += static_cast<int64_t>(s.size());
  STISAN_CHECK_GE(dim, 0);
  STISAN_CHECK_LT(dim, static_cast<int64_t>(s.size()));
  STISAN_CHECK_GE(start, 0);
  STISAN_CHECK_LE(end, s[dim]);
  STISAN_CHECK_LT(start, end);
  Shape out_shape = s;
  out_shape[dim] = end - start;
  return MakeView("slice", ai, std::move(out_shape), ai->strides,
                  ai->offset + start * ai->strides[dim]);
}

Tensor Stack0(const std::vector<Tensor>& parts_in) {
  STISAN_CHECK(!parts_in.empty());
  std::vector<Tensor> parts;
  parts.reserve(parts_in.size());
  for (const auto& p : parts_in) parts.push_back(Contiguous(p));
  const Shape& s0 = parts[0].shape();
  for (const auto& p : parts) STISAN_CHECK(p.shape() == s0);
  Shape out_shape;
  out_shape.push_back(static_cast<int64_t>(parts.size()));
  out_shape.insert(out_shape.end(), s0.begin(), s0.end());

  std::vector<TensorImplPtr> parents;
  parents.reserve(parts.size());
  for (const auto& p : parts) parents.push_back(p.impl());
  const int64_t chunk = parts[0].numel();
  auto parents_copy = parents;
  Tensor out = MakeNode(
      "stack0", out_shape, std::move(parents),
      [parents_copy, chunk](TensorImpl& self) {
        for (size_t t = 0; t < parents_copy.size(); ++t) {
          auto& p = parents_copy[t];
          if (!p->requires_grad) continue;
          p->EnsureGrad();
          const float* g = self.Grad() + t * chunk;
          float* pg = p->Grad();
          for (int64_t i = 0; i < chunk; ++i) pg[i] += g[i];
        }
      });
  float* od = out.data();
  for (size_t t = 0; t < parts.size(); ++t)
    std::memcpy(od + t * chunk, parts[t].data(), sizeof(float) * chunk);
  return out;
}

Tensor Unfold1D(const Tensor& a_in, int64_t window) {
  STISAN_CHECK(a_in.defined());
  STISAN_CHECK_EQ(a_in.dim(), 2);
  const Tensor a = Contiguous(a_in);
  const int64_t n = a.size(0);
  const int64_t d = a.size(1);
  STISAN_CHECK_GE(n, window);
  STISAN_CHECK_GE(window, 1);
  const int64_t rows = n - window + 1;
  auto ai = a.impl();
  Tensor out = MakeNode(
      "unfold1d", {rows, window * d}, {ai},
      [ai, rows, window, d](TensorImpl& self) {
        if (!ai->requires_grad) return;
        ai->EnsureGrad();
        const float* sg = self.Grad();
        float* ag = ai->Grad();
        for (int64_t r = 0; r < rows; ++r)
          for (int64_t w = 0; w < window; ++w)
            for (int64_t c = 0; c < d; ++c)
              ag[(r + w) * d + c] += sg[r * window * d + w * d + c];
      });
  float* od = out.data();
  const float* ad = a.data();
  for (int64_t r = 0; r < rows; ++r)
    for (int64_t w = 0; w < window; ++w)
      std::memcpy(od + r * window * d + w * d, ad + (r + w) * d,
                  sizeof(float) * d);
  return out;
}

// ---- Reductions -----------------------------------------------------------------------

Tensor Sum(const Tensor& a_in) {
  STISAN_CHECK(a_in.defined());
  const Tensor a = Contiguous(a_in);
  auto ai = a.impl();
  const int64_t n = a.numel();
  Tensor out = MakeNode("sum", {1}, {ai}, [ai, n](TensorImpl& self) {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    const float g = self.Grad()[0];
    // Only this view's [numel] range — the storage may be larger (views).
    float* ag = ai->Grad();
    for (int64_t i = 0; i < n; ++i) ag[i] += g;
  });
  float acc = 0.0f;
  const float* ad = a.data();
  for (int64_t i = 0; i < n; ++i) acc += ad[i];
  out.data()[0] = acc;
  return out;
}

Tensor Mean(const Tensor& a) {
  return MulScalar(Sum(a), 1.0f / static_cast<float>(a.numel()));
}

Tensor SumDim(const Tensor& a_in, int64_t dim, bool keepdim) {
  STISAN_CHECK(a_in.defined());
  const Tensor a = Contiguous(a_in);
  const Shape& s = a.shape();
  if (dim < 0) dim += static_cast<int64_t>(s.size());
  STISAN_CHECK_GE(dim, 0);
  STISAN_CHECK_LT(dim, static_cast<int64_t>(s.size()));
  int64_t outer = 1, inner = 1;
  for (int64_t i = 0; i < dim; ++i) outer *= s[i];
  for (size_t i = dim + 1; i < s.size(); ++i) inner *= s[i];
  const int64_t mid = s[dim];

  Shape out_shape;
  for (size_t i = 0; i < s.size(); ++i) {
    if (static_cast<int64_t>(i) == dim) {
      if (keepdim) out_shape.push_back(1);
    } else {
      out_shape.push_back(s[i]);
    }
  }
  if (out_shape.empty()) out_shape.push_back(1);

  auto ai = a.impl();
  Tensor out = MakeNode(
      "sum_dim", out_shape, {ai}, [ai, outer, inner, mid](TensorImpl& self) {
        if (!ai->requires_grad) return;
        ai->EnsureGrad();
        const float* sg = self.Grad();
        float* ag = ai->Grad();
        for (int64_t o = 0; o < outer; ++o)
          for (int64_t m = 0; m < mid; ++m)
            for (int64_t i = 0; i < inner; ++i)
              ag[(o * mid + m) * inner + i] += sg[o * inner + i];
      });
  float* od = out.data();
  const float* ad = a.data();
  for (int64_t o = 0; o < outer; ++o)
    for (int64_t i = 0; i < inner; ++i) {
      float acc = 0.0f;
      for (int64_t m = 0; m < mid; ++m) acc += ad[(o * mid + m) * inner + i];
      od[o * inner + i] = acc;
    }
  return out;
}

Tensor MaxDim(const Tensor& a_in, int64_t dim, bool keepdim) {
  STISAN_CHECK(a_in.defined());
  const Tensor a = Contiguous(a_in);
  const Shape& s = a.shape();
  if (dim < 0) dim += static_cast<int64_t>(s.size());
  int64_t outer = 1, inner = 1;
  for (int64_t i = 0; i < dim; ++i) outer *= s[i];
  for (size_t i = dim + 1; i < s.size(); ++i) inner *= s[i];
  const int64_t mid = s[dim];
  STISAN_CHECK_GE(mid, 1);

  Shape out_shape;
  for (size_t i = 0; i < s.size(); ++i) {
    if (static_cast<int64_t>(i) == dim) {
      if (keepdim) out_shape.push_back(1);
    } else {
      out_shape.push_back(s[i]);
    }
  }
  if (out_shape.empty()) out_shape.push_back(1);

  auto argmax = std::make_shared<std::vector<int64_t>>(
      static_cast<size_t>(outer * inner));
  auto ai = a.impl();
  Tensor out = MakeNode(
      "max_dim", out_shape, {ai},
      [ai, outer, inner, mid, argmax](TensorImpl& self) {
        if (!ai->requires_grad) return;
        ai->EnsureGrad();
        const float* sg = self.Grad();
        float* ag = ai->Grad();
        for (int64_t o = 0; o < outer; ++o)
          for (int64_t i = 0; i < inner; ++i) {
            const int64_t m = (*argmax)[o * inner + i];
            ag[(o * mid + m) * inner + i] += sg[o * inner + i];
          }
      });
  float* od = out.data();
  const float* ad = a.data();
  for (int64_t o = 0; o < outer; ++o)
    for (int64_t i = 0; i < inner; ++i) {
      float best = ad[o * mid * inner + i];
      int64_t bm = 0;
      for (int64_t m = 1; m < mid; ++m) {
        const float v = ad[(o * mid + m) * inner + i];
        if (v > best) {
          best = v;
          bm = m;
        }
      }
      od[o * inner + i] = best;
      (*argmax)[o * inner + i] = bm;
    }
  return out;
}

Tensor MinDim(const Tensor& a, int64_t dim, bool keepdim) {
  // min(x) = -max(-x); reuse MaxDim's argmax routing.
  return Neg(MaxDim(Neg(a), dim, keepdim));
}

Tensor MeanDim(const Tensor& a, int64_t dim, bool keepdim) {
  const Shape& s = a.shape();
  int64_t d = dim < 0 ? dim + static_cast<int64_t>(s.size()) : dim;
  STISAN_CHECK_GE(d, 0);
  STISAN_CHECK_LT(d, static_cast<int64_t>(s.size()));
  return MulScalar(SumDim(a, dim, keepdim),
                   1.0f / static_cast<float>(s[static_cast<size_t>(d)]));
}

// ---- Neural-net specific ----------------------------------------------------------------

Tensor Softmax(const Tensor& a_in) {
  STISAN_CHECK(a_in.defined());
  const Tensor a = Contiguous(a_in);
  const int64_t d = a.shape().back();
  const int64_t rows = a.numel() / d;
  auto ai = a.impl();
  Tensor out = MakeNode(
      "softmax", a.shape(), {ai}, [ai, rows, d](TensorImpl& self) {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    kernels::SoftmaxBackwardRows(self.Data(), self.Grad(), ai->Grad(), rows,
                                 d);
  });
  kernels::SoftmaxRows(a.data(), out.data(), rows, d);
  return out;
}

Tensor LogSoftmax(const Tensor& a_in) {
  STISAN_CHECK(a_in.defined());
  const Tensor a = Contiguous(a_in);
  const int64_t d = a.shape().back();
  const int64_t rows = a.numel() / d;
  auto ai = a.impl();
  Tensor out = MakeNode(
      "log_softmax", a.shape(), {ai}, [ai, rows, d](TensorImpl& self) {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    kernels::LogSoftmaxBackwardRows(self.Data(), self.Grad(), ai->Grad(),
                                    rows, d);
  });
  kernels::LogSoftmaxRows(a.data(), out.data(), rows, d);
  return out;
}

Tensor LayerNorm(const Tensor& x_in, const Tensor& gamma_in,
                 const Tensor& beta_in, float eps) {
  STISAN_CHECK(x_in.defined() && gamma_in.defined() && beta_in.defined());
  const Tensor x = Contiguous(x_in);
  const Tensor gamma = Contiguous(gamma_in);
  const Tensor beta = Contiguous(beta_in);
  const int64_t d = x.shape().back();
  STISAN_CHECK_EQ(gamma.numel(), d);
  STISAN_CHECK_EQ(beta.numel(), d);
  const int64_t rows = x.numel() / d;
  auto xi = x.impl();
  auto gi = gamma.impl();
  auto bi = beta.impl();
  // Cache per-row mean and inverse stddev for the backward pass (pooled:
  // they live until graph teardown, every step, at the same sizes).
  auto mu = arena::AcquireSharedZeroed(static_cast<size_t>(rows));
  auto inv_sigma = arena::AcquireSharedZeroed(static_cast<size_t>(rows));

  // Backward stays serial: gamma/beta grads reduce across rows, and the
  // kernel determinism contract forbids cross-row parallel accumulation.
  Tensor out = MakeNode(
      "layer_norm", x.shape(), {xi, gi, bi},
      [xi, gi, bi, mu, inv_sigma, rows, d](TensorImpl& self) {
        const bool need_x = xi->requires_grad;
        const bool need_g = gi->requires_grad;
        const bool need_b = bi->requires_grad;
        if (need_x) xi->EnsureGrad();
        if (need_g) gi->EnsureGrad();
        if (need_b) bi->EnsureGrad();
        const float* gd = gi->Data();
        float* ggrad = need_g ? gi->Grad() : nullptr;
        float* bgrad = need_b ? bi->Grad() : nullptr;
        for (int64_t r = 0; r < rows; ++r) {
          const float* xr = xi->Data() + r * d;
          const float* g = self.Grad() + r * d;
          const float m = (*mu)[r];
          const float is = (*inv_sigma)[r];
          // xhat_j = (x_j - m) * is
          float sum_gg = 0.0f;   // sum_j gamma_j * g_j
          float sum_ggx = 0.0f;  // sum_j gamma_j * g_j * xhat_j
          for (int64_t j = 0; j < d; ++j) {
            const float xhat = (xr[j] - m) * is;
            const float gg = gd[j] * g[j];
            sum_gg += gg;
            sum_ggx += gg * xhat;
            if (need_g) ggrad[j] += g[j] * xhat;
            if (need_b) bgrad[j] += g[j];
          }
          if (need_x) {
            float* xg = xi->Grad() + r * d;
            const float inv_d = 1.0f / static_cast<float>(d);
            for (int64_t j = 0; j < d; ++j) {
              const float xhat = (xr[j] - m) * is;
              const float gg = gd[j] * g[j];
              xg[j] += is * (gg - inv_d * sum_gg - xhat * inv_d * sum_ggx);
            }
          }
        }
      });
  kernels::LayerNormRows(x.data(), gamma.data(), beta.data(), out.data(),
                         mu->data(), inv_sigma->data(), rows, d, eps);
  return out;
}

Tensor EmbeddingLookup(const Tensor& weight_in,
                       const std::vector<int64_t>& ids, int64_t padding_idx) {
  STISAN_CHECK(weight_in.defined());
  STISAN_CHECK_EQ(weight_in.dim(), 2);
  const Tensor weight = Contiguous(weight_in);
  const int64_t vocab = weight.size(0);
  const int64_t d = weight.size(1);
  const int64_t n = static_cast<int64_t>(ids.size());
  for (int64_t id : ids) {
    STISAN_CHECK_GE(id, 0);
    STISAN_CHECK_LT(id, vocab);
  }
  auto wi = weight.impl();
  auto ids_copy = std::make_shared<std::vector<int64_t>>(ids);
  // Backward is a scatter (duplicate ids collide) — stays serial.
  Tensor out = MakeNode(
      "embedding", {n, d}, {wi}, [wi, ids_copy, d, padding_idx](TensorImpl& self) {
        if (!wi->requires_grad) return;
        wi->EnsureGrad();
        const float* sg = self.Grad();
        float* wg = wi->Grad();
        for (size_t i = 0; i < ids_copy->size(); ++i) {
          const int64_t id = (*ids_copy)[i];
          if (id == padding_idx) continue;
          const float* g = sg + static_cast<int64_t>(i) * d;
          float* wrow = wg + id * d;
          for (int64_t j = 0; j < d; ++j) wrow[j] += g[j];
        }
      });
  const Int8GatherHook gather_hook =
      g_int8_gather_hook.load(std::memory_order_acquire);
  if (gather_hook == nullptr ||
      !gather_hook(wi->Data(), ids_copy->data(), out.data(), n, d,
                   padding_idx)) {
    kernels::GatherRows(weight.data(), ids_copy->data(), out.data(), n, d,
                        padding_idx);
  }
  return out;
}

Tensor Dropout(const Tensor& a_in, float p, Rng& rng, bool training) {
  STISAN_CHECK(a_in.defined());
  STISAN_CHECK_GE(p, 0.0f);
  STISAN_CHECK_LT(p, 1.0f);
  if (!training || p == 0.0f) return a_in;
  const Tensor a = Contiguous(a_in);
  const float scale = 1.0f / (1.0f - p);
  // Mask generation consumes the RNG stream sequentially — stays serial.
  auto mask = arena::AcquireSharedZeroed(static_cast<size_t>(a.numel()));
  for (auto& m : *mask) m = rng.Bernoulli(p) ? 0.0f : scale;
  auto ai = a.impl();
  Tensor out = MakeNode(
      "dropout", a.shape(), {ai}, [ai, mask](TensorImpl& self) {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    const float* sg = self.Grad();
    float* ag = ai->Grad();
    const float* md = mask->data();
    kernels::ParallelRanges(self.numel(), 1, [&](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) ag[i] += sg[i] * md[i];
    });
  });
  const float* ad = a.data();
  float* od = out.data();
  const float* md = mask->data();
  kernels::ParallelRanges(a.numel(), 1, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) od[i] = ad[i] * md[i];
  });
  return out;
}

// ---- Fused attention ----------------------------------------------------------

namespace {

// -1 = follow STISAN_FUSED_ATTENTION (default on), 0/1 = forced.
std::atomic<int> g_fused_attention_override{-1};

}  // namespace

bool FusedAttentionEnabled() {
  const int ov = g_fused_attention_override.load(std::memory_order_relaxed);
  if (ov >= 0) return ov != 0;
  static const bool env_on = [] {
    const char* v = std::getenv("STISAN_FUSED_ATTENTION");
    return !(v != nullptr && v[0] == '0' && v[1] == '\0');
  }();
  return env_on;
}

void SetFusedAttentionEnabled(int value) {
  g_fused_attention_override.store(value, std::memory_order_relaxed);
}

void SetInt8GemmHook(Int8GemmHook hook) {
  g_int8_gemm_hook.store(hook, std::memory_order_release);
}

void SetInt8GatherHook(Int8GatherHook hook) {
  g_int8_gather_hook.store(hook, std::memory_order_release);
}

Tensor FusedAttention(const Tensor& q_in, const Tensor& k_in,
                      const Tensor& v_in, const Tensor& bias_in,
                      const FusedAttentionOptions& options) {
  STISAN_CHECK(q_in.defined() && k_in.defined() && v_in.defined());
  const Tensor q = Contiguous(q_in);
  const Tensor k = Contiguous(k_in);
  const Tensor v = Contiguous(v_in);
  const int64_t rank = q.dim();
  STISAN_CHECK_MSG(rank == 2 || rank == 3,
                   "FusedAttention: rank must be 2 or 3, got "
                       << ShapeToString(q.shape()));
  STISAN_CHECK_EQ(k.dim(), rank);
  STISAN_CHECK(k.shape() == v.shape());
  const int64_t batch = rank == 3 ? q.size(0) : 1;
  const int64_t m = q.size(rank - 2);
  const int64_t n = k.size(rank - 2);
  const int64_t d = q.size(rank - 1);
  STISAN_CHECK_EQ(k.size(rank - 1), d);
  if (rank == 3) STISAN_CHECK_EQ(k.size(0), batch);
  if (options.causal) STISAN_CHECK_EQ(m, n);

  Tensor bias;
  bool bias_broadcast = false;
  if (bias_in.defined()) {
    bias = Contiguous(bias_in);
    if (rank == 3 && bias.dim() == 2) {
      STISAN_CHECK(bias.shape() == (Shape{m, n}));
      bias_broadcast = true;  // shared [m,n] bias over a batched q
    } else {
      const Shape want = rank == 3 ? Shape{batch, m, n} : Shape{m, n};
      STISAN_CHECK_MSG(bias.shape() == want,
                       "FusedAttention: bias shape "
                           << ShapeToString(bias.shape()) << " != "
                           << ShapeToString(want));
    }
  }

  const bool dropout = options.training && options.dropout_p > 0.0f;
  std::shared_ptr<std::vector<float>> drop_mask;
  if (dropout) {
    STISAN_CHECK(options.rng != nullptr);
    STISAN_CHECK_LT(options.dropout_p, 1.0f);
    // Same serial full-tensor draw order as ops::Dropout, so the RNG stream
    // (and therefore training) is identical to the composed path.
    const float keep = 1.0f / (1.0f - options.dropout_p);
    drop_mask = arena::AcquireSharedZeroed(static_cast<size_t>(batch * m * n));
    for (auto& mv : *drop_mask)
      mv = options.rng->Bernoulli(options.dropout_p) ? 0.0f : keep;
  }

  auto qi = q.impl();
  auto ki = k.impl();
  auto vi = v.impl();
  auto bi = bias.defined() ? bias.impl() : TensorImplPtr{};
  const bool needs_grad =
      internal::GradEnabled() &&
      (qi->requires_grad || ki->requires_grad || vi->requires_grad ||
       (bi != nullptr && bi->requires_grad));
  // The only saved activation: post-softmax probabilities (plus the dropout
  // mask above). Inference skips it and streams through row scratch.
  std::shared_ptr<std::vector<float>> probs;
  if (needs_grad) {
    // AcquireSharedZeroed (not a make_shared wrapper): the deleter releases
    // the buffer back to the pool instead of freeing it at graph teardown.
    probs = arena::AcquireSharedZeroed(static_cast<size_t>(batch * m * n));
  }

  const bool causal = options.causal;
  const float scale = options.scale;
  Shape out_shape = rank == 3 ? Shape{batch, m, d} : Shape{m, d};
  std::vector<TensorImplPtr> parents = {qi, ki, vi};
  if (bi != nullptr) parents.push_back(bi);
  Tensor out = MakeNode(
      "fused_attention", std::move(out_shape), std::move(parents),
      [qi, ki, vi, bi, probs, drop_mask, batch, m, n, d, causal, scale,
       bias_broadcast](TensorImpl& self) {
        const bool need_q = qi->requires_grad;
        const bool need_k = ki->requires_grad;
        const bool need_v = vi->requires_grad;
        const bool need_b = bi != nullptr && bi->requires_grad;
        if (need_q) qi->EnsureGrad();
        if (need_k) ki->EnsureGrad();
        if (need_v) vi->EnsureGrad();
        if (need_b) bi->EnsureGrad();
        std::vector<float> ds;
        if (need_q || need_k || need_b)
          ds = arena::AcquireZeroed(static_cast<size_t>(batch * m * n));
        kernels::FusedAttentionBackward(
            qi->Data(), ki->Data(), vi->Data(), probs->data(),
            drop_mask != nullptr ? drop_mask->data() : nullptr, self.Grad(),
            need_q ? qi->Grad() : nullptr, need_k ? ki->Grad() : nullptr,
            need_v ? vi->Grad() : nullptr, need_b ? bi->Grad() : nullptr,
            ds.empty() ? nullptr : ds.data(), batch, m, n, d, causal, scale,
            bias_broadcast);
        arena::Release(std::move(ds));
      });
  kernels::FusedAttentionForward(
      q.data(), k.data(), v.data(), bias.defined() ? bias.data() : nullptr,
      drop_mask != nullptr ? drop_mask->data() : nullptr,
      probs != nullptr ? probs->data() : nullptr, out.data(), batch, m, n, d,
      causal, scale, bias_broadcast);
  return out;
}

Tensor FusedAttention(const Tensor& q, const Tensor& k, const Tensor& v,
                      const Tensor& bias, bool causal, float scale) {
  FusedAttentionOptions options;
  options.causal = causal;
  options.scale = scale;
  return FusedAttention(q, k, v, bias, options);
}

// ---- Fused elementwise chains ----------------------------------------------

Tensor FusedBiasRelu(const Tensor& x_in, const Tensor& b_in) {
  STISAN_CHECK(x_in.defined() && b_in.defined());
  const Tensor x = Contiguous(x_in);
  const Tensor b = Contiguous(b_in);
  const int64_t d = x.shape().back();
  STISAN_CHECK_EQ(b.numel(), d);
  const int64_t rows = x.numel() / d;
  auto xi = x.impl();
  auto bi = b.impl();
  // Bit-identity with relu(x + b): the forward computes the identical float
  // expression per element, and the backward mirrors the composed pair —
  // the relu gate (out > 0 ⟺ pre-activation > 0, NaN gradients pass through
  // both paths identically) followed by the Add backward's serial row-major
  // bias reduction.
  Tensor out = MakeNode(
      "fused_bias_relu", x.shape(), {xi, bi},
      [xi, bi, rows, d](TensorImpl& self) {
        const bool need_x = xi->requires_grad;
        const bool need_b = bi->requires_grad;
        if (need_x) xi->EnsureGrad();
        if (need_b) bi->EnsureGrad();
        const float* sg = self.Grad();
        const float* sd = self.Data();
        float* xg = need_x ? xi->Grad() : nullptr;
        float* bg = need_b ? bi->Grad() : nullptr;
        for (int64_t r = 0; r < rows; ++r) {
          for (int64_t c = 0; c < d; ++c) {
            const int64_t i = r * d + c;
            const float g = sd[i] > 0.0f ? sg[i] : 0.0f;
            if (xg != nullptr) xg[i] += g;
            if (bg != nullptr) bg[c] += g;
          }
        }
      });
  float* od = out.data();
  const float* xd = x.data();
  const float* bd = b.data();
  kernels::ParallelRanges(rows, d, [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r)
      for (int64_t c = 0; c < d; ++c) {
        const float t = xd[r * d + c] + bd[c];
        od[r * d + c] = t > 0.0f ? t : 0.0f;
      }
  });
  return out;
}

Tensor FusedResidualLayerNorm(const Tensor& x_in, const Tensor& r_in,
                              const Tensor& gamma_in, const Tensor& beta_in,
                              float eps) {
  STISAN_CHECK(x_in.defined() && r_in.defined());
  STISAN_CHECK(gamma_in.defined() && beta_in.defined());
  const Tensor x = Contiguous(x_in);
  const Tensor r = Contiguous(r_in);
  const Tensor gamma = Contiguous(gamma_in);
  const Tensor beta = Contiguous(beta_in);
  STISAN_CHECK(x.shape() == r.shape());
  const int64_t d = x.shape().back();
  STISAN_CHECK_EQ(gamma.numel(), d);
  STISAN_CHECK_EQ(beta.numel(), d);
  const int64_t rows = x.numel() / d;
  const int64_t numel = x.numel();
  auto xi = x.impl();
  auto ri = r.impl();
  auto gi = gamma.impl();
  auto bi = beta.impl();
  // The residual sum is saved for backward in place of a graph node; the
  // same chunked elementwise add as the composed x + r keeps it bit-equal.
  auto sum = arena::AcquireSharedZeroed(static_cast<size_t>(numel));
  auto mu = arena::AcquireSharedZeroed(static_cast<size_t>(rows));
  auto inv_sigma = arena::AcquireSharedZeroed(static_cast<size_t>(rows));

  // Backward mirrors the composed LayerNorm(x + r) chain exactly: the same
  // serial per-row LayerNorm backward, with the input gradient v accumulated
  // into both residual operands (what the Add backward would have done with
  // the intermediate node's gradient, which is exactly v on a fresh buffer).
  Tensor out = MakeNode(
      "fused_residual_ln", x.shape(), {xi, ri, gi, bi},
      [xi, ri, gi, bi, sum, mu, inv_sigma, rows, d](TensorImpl& self) {
        const bool need_x = xi->requires_grad;
        const bool need_r = ri->requires_grad;
        const bool need_g = gi->requires_grad;
        const bool need_b = bi->requires_grad;
        if (need_x) xi->EnsureGrad();
        if (need_r) ri->EnsureGrad();
        if (need_g) gi->EnsureGrad();
        if (need_b) bi->EnsureGrad();
        const float* gd = gi->Data();
        float* ggrad = need_g ? gi->Grad() : nullptr;
        float* bgrad = need_b ? bi->Grad() : nullptr;
        const float* sd = sum->data();
        for (int64_t rr = 0; rr < rows; ++rr) {
          const float* xr = sd + rr * d;
          const float* g = self.Grad() + rr * d;
          const float m = (*mu)[rr];
          const float is = (*inv_sigma)[rr];
          float sum_gg = 0.0f;
          float sum_ggx = 0.0f;
          for (int64_t j = 0; j < d; ++j) {
            const float xhat = (xr[j] - m) * is;
            const float gg = gd[j] * g[j];
            sum_gg += gg;
            sum_ggx += gg * xhat;
            if (need_g) ggrad[j] += g[j] * xhat;
            if (need_b) bgrad[j] += g[j];
          }
          if (need_x || need_r) {
            float* xg = need_x ? xi->Grad() + rr * d : nullptr;
            float* rg = need_r ? ri->Grad() + rr * d : nullptr;
            const float inv_d = 1.0f / static_cast<float>(d);
            for (int64_t j = 0; j < d; ++j) {
              const float xhat = (xr[j] - m) * is;
              const float gg = gd[j] * g[j];
              const float v =
                  is * (gg - inv_d * sum_gg - xhat * inv_d * sum_ggx);
              if (xg != nullptr) xg[j] += v;
              if (rg != nullptr) rg[j] += v;
            }
          }
        }
      });
  const float* xd = x.data();
  const float* rd = r.data();
  float* sd = sum->data();
  kernels::ParallelRanges(numel, 1, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) sd[i] = xd[i] + rd[i];
  });
  kernels::LayerNormRows(sd, gamma.data(), beta.data(), out.data(),
                         mu->data(), inv_sigma->data(), rows, d, eps);
  return out;
}

}  // namespace ops

Tensor Tensor::Contiguous() const { return ops::Contiguous(*this); }

Tensor operator+(const Tensor& a, const Tensor& b) { return ops::Add(a, b); }
Tensor operator-(const Tensor& a, const Tensor& b) { return ops::Sub(a, b); }
Tensor operator*(const Tensor& a, const Tensor& b) { return ops::Mul(a, b); }
Tensor operator/(const Tensor& a, const Tensor& b) { return ops::Div(a, b); }
Tensor operator+(const Tensor& a, float s) { return ops::AddScalar(a, s); }
Tensor operator*(const Tensor& a, float s) { return ops::MulScalar(a, s); }
Tensor operator-(const Tensor& a) { return ops::Neg(a); }

}  // namespace stisan
