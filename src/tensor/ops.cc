#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace stisan {
namespace ops {
namespace {

using internal::TensorImpl;
using internal::TensorImplPtr;

// Creates a result node wired to its parents. The backward function is only
// attached when grad recording is on and at least one parent needs grads.
Tensor MakeNode(Shape shape, std::vector<TensorImplPtr> parents,
                std::function<void(TensorImpl&)> backward) {
  auto impl = std::make_shared<TensorImpl>();
  const int64_t n = NumElements(shape);
  impl->shape = std::move(shape);
  impl->data.assign(static_cast<size_t>(n), 0.0f);
  bool needs = false;
  if (internal::GradEnabled()) {
    for (const auto& p : parents)
      if (p && p->requires_grad) needs = true;
  }
  impl->requires_grad = needs;
  if (needs) {
    impl->parents = std::move(parents);
    impl->backward_fn = std::move(backward);
  }
  return Tensor(std::move(impl));
}

// ---- Broadcasting machinery ------------------------------------------------

Shape BroadcastShape(const Shape& a, const Shape& b) {
  const size_t rank = std::max(a.size(), b.size());
  Shape out(rank, 1);
  for (size_t i = 0; i < rank; ++i) {
    const int64_t da = i < a.size() ? a[a.size() - 1 - i] : 1;
    const int64_t db = i < b.size() ? b[b.size() - 1 - i] : 1;
    STISAN_CHECK_MSG(da == db || da == 1 || db == 1,
                     "incompatible broadcast " << ShapeToString(a) << " vs "
                                               << ShapeToString(b));
    out[rank - 1 - i] = std::max(da, db);
  }
  return out;
}

// Row-major strides; broadcast (size-1) dims get stride 0 when aligned to a
// larger output shape.
std::vector<int64_t> BroadcastStrides(const Shape& in, const Shape& out) {
  std::vector<int64_t> strides(out.size(), 0);
  int64_t stride = 1;
  for (size_t i = 0; i < in.size(); ++i) {
    const size_t d = in.size() - 1 - i;
    const size_t od = out.size() - 1 - i;
    strides[od] = (in[d] == 1) ? 0 : stride;
    stride *= in[d];
  }
  return strides;
}

// Iterates the output index space of `out_shape` calling
// fn(out_flat, a_flat, b_flat).
template <typename Fn>
void ForEachBroadcast(const Shape& out_shape, const Shape& a_shape,
                      const Shape& b_shape, Fn&& fn) {
  const int64_t n = NumElements(out_shape);
  const size_t rank = out_shape.size();
  if (n == 0) return;
  const auto sa = BroadcastStrides(a_shape, out_shape);
  const auto sb = BroadcastStrides(b_shape, out_shape);
  std::vector<int64_t> idx(rank, 0);
  int64_t ofs_a = 0;
  int64_t ofs_b = 0;
  for (int64_t flat = 0; flat < n; ++flat) {
    fn(flat, ofs_a, ofs_b);
    // Increment the multi-index (row-major) and update offsets.
    for (size_t d = rank; d-- > 0;) {
      idx[d]++;
      ofs_a += sa[d];
      ofs_b += sb[d];
      if (idx[d] < out_shape[d]) break;
      ofs_a -= sa[d] * out_shape[d];
      ofs_b -= sb[d] * out_shape[d];
      idx[d] = 0;
    }
  }
}

bool SameShape(const Shape& a, const Shape& b) { return a == b; }

// True when b broadcasts as a trailing vector: a=[..., d], b=[d] (or
// [1,...,1,d]).
bool IsTrailingVector(const Shape& a, const Shape& b) {
  if (a.empty() || b.empty()) return false;
  if (b.back() != a.back()) return false;
  for (size_t i = 0; i + 1 < b.size(); ++i)
    if (b[i] != 1) return false;
  return true;
}

// Generic elementwise binary op with fwd(a_val, b_val) and backward partials
// dfa(g, a, b, out) / dfb(g, a, b, out) evaluated per element.
template <typename Fwd, typename DA, typename DB>
Tensor BinaryOp(const Tensor& a, const Tensor& b, Fwd fwd, DA dfa, DB dfb) {
  STISAN_CHECK(a.defined() && b.defined());
  const Shape out_shape = BroadcastShape(a.shape(), b.shape());
  auto ai = a.impl();
  auto bi = b.impl();
  Tensor out = MakeNode(
      out_shape, {ai, bi},
      [ai, bi, dfa, dfb, out_shape](TensorImpl& self) {
        const bool need_a = ai->requires_grad;
        const bool need_b = bi->requires_grad;
        if (need_a) ai->EnsureGrad();
        if (need_b) bi->EnsureGrad();
        ForEachBroadcast(
            out_shape, ai->shape, bi->shape,
            [&](int64_t o, int64_t ia, int64_t ib) {
              const float g = self.grad[static_cast<size_t>(o)];
              const float av = ai->data[static_cast<size_t>(ia)];
              const float bv = bi->data[static_cast<size_t>(ib)];
              const float ov = self.data[static_cast<size_t>(o)];
              if (need_a) ai->grad[static_cast<size_t>(ia)] += dfa(g, av, bv, ov);
              if (need_b) bi->grad[static_cast<size_t>(ib)] += dfb(g, av, bv, ov);
            });
      });
  float* od = out.data();
  const float* ad = a.data();
  const float* bd = b.data();
  if (SameShape(a.shape(), b.shape())) {
    const int64_t n = out.numel();
    for (int64_t i = 0; i < n; ++i) od[i] = fwd(ad[i], bd[i]);
  } else if (IsTrailingVector(a.shape(), b.shape())) {
    const int64_t d = a.shape().back();
    const int64_t rows = a.numel() / d;
    for (int64_t r = 0; r < rows; ++r)
      for (int64_t c = 0; c < d; ++c)
        od[r * d + c] = fwd(ad[r * d + c], bd[c]);
  } else {
    ForEachBroadcast(out_shape, a.shape(), b.shape(),
                     [&](int64_t o, int64_t ia, int64_t ib) {
                       od[o] = fwd(ad[ia], bd[ib]);
                     });
  }
  return out;
}

// Generic elementwise unary op.
template <typename Fwd, typename Bwd>
Tensor UnaryOp(const Tensor& a, Fwd fwd, Bwd bwd) {
  STISAN_CHECK(a.defined());
  auto ai = a.impl();
  Tensor out = MakeNode(a.shape(), {ai}, [ai, bwd](TensorImpl& self) {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    const size_t n = self.data.size();
    for (size_t i = 0; i < n; ++i)
      ai->grad[i] += bwd(self.grad[i], ai->data[i], self.data[i]);
  });
  const float* ad = a.data();
  float* od = out.data();
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) od[i] = fwd(ad[i]);
  return out;
}

// ---- GEMM kernels ------------------------------------------------------------

// C[m,n] (+)= A x B with optional logical transposes.
// Physical layouts: A is [m,k] (or [k,m] when ta), B is [k,n] (or [n,k] when
// tb), C is always [m,n].
void Gemm(const float* a, const float* b, float* c, int64_t m, int64_t k,
          int64_t n, bool ta, bool tb, bool accumulate) {
  if (!accumulate) std::fill(c, c + m * n, 0.0f);
  if (!ta && !tb) {
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t p = 0; p < k; ++p) {
        const float av = a[i * k + p];
        if (av == 0.0f) continue;
        const float* brow = b + p * n;
        float* crow = c + i * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  } else if (!ta && tb) {  // B physically [n,k]
    for (int64_t i = 0; i < m; ++i) {
      const float* arow = a + i * k;
      for (int64_t j = 0; j < n; ++j) {
        const float* brow = b + j * k;
        float acc = 0.0f;
        for (int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
        c[i * n + j] += acc;
      }
    }
  } else if (ta && !tb) {  // A physically [k,m]
    for (int64_t p = 0; p < k; ++p) {
      const float* arow = a + p * m;
      const float* brow = b + p * n;
      for (int64_t i = 0; i < m; ++i) {
        const float av = arow[i];
        if (av == 0.0f) continue;
        float* crow = c + i * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  } else {  // ta && tb: A [k,m], B [n,k]
    for (int64_t i = 0; i < m; ++i)
      for (int64_t j = 0; j < n; ++j) {
        float acc = 0.0f;
        for (int64_t p = 0; p < k; ++p) acc += a[p * m + i] * b[j * k + p];
        c[i * n + j] += acc;
      }
  }
}

}  // namespace

// ---- Elementwise binary -------------------------------------------------------

Tensor Add(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      a, b, [](float x, float y) { return x + y; },
      [](float g, float, float, float) { return g; },
      [](float g, float, float, float) { return g; });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      a, b, [](float x, float y) { return x - y; },
      [](float g, float, float, float) { return g; },
      [](float g, float, float, float) { return -g; });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      a, b, [](float x, float y) { return x * y; },
      [](float g, float, float y, float) { return g * y; },
      [](float g, float x, float, float) { return g * x; });
}

Tensor Div(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      a, b, [](float x, float y) { return x / y; },
      [](float g, float, float y, float) { return g / y; },
      [](float g, float x, float y, float) { return -g * x / (y * y); });
}

// ---- Scalar ----------------------------------------------------------------------

Tensor AddScalar(const Tensor& a, float s) {
  return UnaryOp(
      a, [s](float x) { return x + s; },
      [](float g, float, float) { return g; });
}

Tensor MulScalar(const Tensor& a, float s) {
  return UnaryOp(
      a, [s](float x) { return x * s; },
      [s](float g, float, float) { return g * s; });
}

// ---- Unary ------------------------------------------------------------------------

Tensor Neg(const Tensor& a) { return MulScalar(a, -1.0f); }

Tensor Relu(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float g, float x, float) { return x > 0.0f ? g : 0.0f; });
}

Tensor Sigmoid(const Tensor& a) {
  return UnaryOp(
      a,
      [](float x) {
        return x >= 0.0f ? 1.0f / (1.0f + std::exp(-x))
                         : std::exp(x) / (1.0f + std::exp(x));
      },
      [](float g, float, float y) { return g * y * (1.0f - y); });
}

Tensor Tanh(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::tanh(x); },
      [](float g, float, float y) { return g * (1.0f - y * y); });
}

Tensor Exp(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::exp(x); },
      [](float g, float, float y) { return g * y; });
}

Tensor Log(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::log(std::max(x, 1e-12f)); },
      [](float g, float x, float) { return g / std::max(x, 1e-12f); });
}

Tensor Sqrt(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::sqrt(x); },
      [](float g, float, float y) { return 0.5f * g / std::max(y, 1e-12f); });
}

Tensor Square(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return x * x; },
      [](float g, float x, float) { return 2.0f * g * x; });
}

Tensor Sin(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::sin(x); },
      [](float g, float x, float) { return g * std::cos(x); });
}

Tensor Cos(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::cos(x); },
      [](float g, float x, float) { return -g * std::sin(x); });
}

Tensor Softplus(const Tensor& a) {
  return UnaryOp(
      a,
      [](float x) {
        // log(1 + e^x) = max(x, 0) + log1p(e^{-|x|})
        return std::max(x, 0.0f) + std::log1p(std::exp(-std::fabs(x)));
      },
      [](float g, float x, float) {
        const float s = x >= 0.0f ? 1.0f / (1.0f + std::exp(-x))
                                  : std::exp(x) / (1.0f + std::exp(x));
        return g * s;
      });
}

Tensor Abs(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::fabs(x); },
      [](float g, float x, float) {
        return x > 0.0f ? g : (x < 0.0f ? -g : 0.0f);
      });
}

Tensor Clamp(const Tensor& a, float lo, float hi) {
  STISAN_CHECK_LE(lo, hi);
  return UnaryOp(
      a, [lo, hi](float x) { return std::min(hi, std::max(lo, x)); },
      [lo, hi](float g, float x, float) {
        return (x >= lo && x <= hi) ? g : 0.0f;
      });
}

Tensor PowScalar(const Tensor& a, float exponent) {
  return UnaryOp(
      a, [exponent](float x) { return std::pow(x, exponent); },
      [exponent](float g, float x, float) {
        return g * exponent * std::pow(x, exponent - 1.0f);
      });
}

Tensor LogSigmoid(const Tensor& a) {
  return UnaryOp(
      a,
      [](float x) {
        // log sigmoid(x) = -softplus(-x)
        return -(std::max(-x, 0.0f) + std::log1p(std::exp(-std::fabs(x))));
      },
      [](float g, float x, float) {
        const float s = x >= 0.0f ? std::exp(-x) / (1.0f + std::exp(-x))
                                  : 1.0f / (1.0f + std::exp(x));
        return g * s;  // sigmoid(-x)
      });
}

// ---- Matrix ------------------------------------------------------------------------

Tensor MatMul(const Tensor& a, const Tensor& b) {
  STISAN_CHECK(a.defined() && b.defined());
  const Shape& sa = a.shape();
  const Shape& sb = b.shape();
  auto ai = a.impl();
  auto bi = b.impl();

  if (sa.size() == 2 && sb.size() == 2) {
    const int64_t m = sa[0], k = sa[1], n = sb[1];
    STISAN_CHECK_EQ(k, sb[0]);
    Tensor out = MakeNode({m, n}, {ai, bi}, [ai, bi, m, k, n](TensorImpl& self) {
      if (ai->requires_grad) {
        ai->EnsureGrad();
        Gemm(self.grad.data(), bi->data.data(), ai->grad.data(), m, n, k,
             false, true, true);  // dA = G x B^T
      }
      if (bi->requires_grad) {
        bi->EnsureGrad();
        Gemm(ai->data.data(), self.grad.data(), bi->grad.data(), k, m, n,
             true, false, true);  // dB = A^T x G
      }
    });
    Gemm(a.data(), b.data(), out.data(), m, k, n, false, false, false);
    return out;
  }

  if (sa.size() == 3 && sb.size() == 3) {
    const int64_t bsz = sa[0], m = sa[1], k = sa[2], n = sb[2];
    STISAN_CHECK_EQ(bsz, sb[0]);
    STISAN_CHECK_EQ(k, sb[1]);
    Tensor out = MakeNode(
        {bsz, m, n}, {ai, bi}, [ai, bi, bsz, m, k, n](TensorImpl& self) {
          const int64_t sza = m * k, szb = k * n, szc = m * n;
          if (ai->requires_grad) ai->EnsureGrad();
          if (bi->requires_grad) bi->EnsureGrad();
          for (int64_t t = 0; t < bsz; ++t) {
            if (ai->requires_grad)
              Gemm(self.grad.data() + t * szc, bi->data.data() + t * szb,
                   ai->grad.data() + t * sza, m, n, k, false, true, true);
            if (bi->requires_grad)
              Gemm(ai->data.data() + t * sza, self.grad.data() + t * szc,
                   bi->grad.data() + t * szb, k, m, n, true, false, true);
          }
        });
    const int64_t sza = m * k, szb = k * n, szc = m * n;
    for (int64_t t = 0; t < bsz; ++t)
      Gemm(a.data() + t * sza, b.data() + t * szb, out.data() + t * szc, m, k,
           n, false, false, false);
    return out;
  }

  if (sa.size() == 3 && sb.size() == 2) {
    // Shared right operand: flatten the batch.
    const int64_t bsz = sa[0], m = sa[1], k = sa[2];
    Tensor flat = Reshape(a, {bsz * m, k});
    Tensor out = MatMul(flat, b);
    return Reshape(out, {bsz, m, sb[1]});
  }

  STISAN_CHECK_MSG(false, "MatMul: unsupported ranks " << ShapeToString(sa)
                                                       << " x "
                                                       << ShapeToString(sb));
  return Tensor();
}

Tensor TransposeLast2(const Tensor& a) {
  STISAN_CHECK(a.defined());
  const Shape& s = a.shape();
  STISAN_CHECK_GE(s.size(), 2u);
  Shape out_shape = s;
  std::swap(out_shape[s.size() - 1], out_shape[s.size() - 2]);
  const int64_t rows = s[s.size() - 2];
  const int64_t cols = s[s.size() - 1];
  const int64_t mats = a.numel() / (rows * cols);
  auto ai = a.impl();
  Tensor out =
      MakeNode(out_shape, {ai}, [ai, rows, cols, mats](TensorImpl& self) {
        if (!ai->requires_grad) return;
        ai->EnsureGrad();
        for (int64_t t = 0; t < mats; ++t) {
          const float* g = self.grad.data() + t * rows * cols;
          float* ag = ai->grad.data() + t * rows * cols;
          for (int64_t i = 0; i < rows; ++i)
            for (int64_t j = 0; j < cols; ++j)
              ag[i * cols + j] += g[j * rows + i];
        }
      });
  const float* ad = a.data();
  float* od = out.data();
  for (int64_t t = 0; t < mats; ++t) {
    const float* src = ad + t * rows * cols;
    float* dst = od + t * rows * cols;
    for (int64_t i = 0; i < rows; ++i)
      for (int64_t j = 0; j < cols; ++j) dst[j * rows + i] = src[i * cols + j];
  }
  return out;
}

// ---- Shape ---------------------------------------------------------------------------

Tensor Reshape(const Tensor& a, Shape new_shape) {
  STISAN_CHECK(a.defined());
  STISAN_CHECK_EQ(NumElements(new_shape), a.numel());
  auto ai = a.impl();
  Tensor out = MakeNode(std::move(new_shape), {ai}, [ai](TensorImpl& self) {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    for (size_t i = 0; i < self.grad.size(); ++i) ai->grad[i] += self.grad[i];
  });
  std::memcpy(out.data(), a.data(), sizeof(float) * a.numel());
  return out;
}

Tensor Concat(const Tensor& a, const Tensor& b, int64_t dim) {
  STISAN_CHECK(a.defined() && b.defined());
  const Shape& sa = a.shape();
  const Shape& sb = b.shape();
  STISAN_CHECK_EQ(sa.size(), sb.size());
  if (dim < 0) dim += static_cast<int64_t>(sa.size());
  for (size_t i = 0; i < sa.size(); ++i) {
    if (static_cast<int64_t>(i) != dim) {
      STISAN_CHECK_EQ(sa[i], sb[i]);
    }
  }
  Shape out_shape = sa;
  out_shape[dim] += sb[dim];

  // View both tensors as [outer, mid, inner] with mid the concat axis.
  int64_t outer = 1, inner = 1;
  for (int64_t i = 0; i < dim; ++i) outer *= sa[i];
  for (size_t i = dim + 1; i < sa.size(); ++i) inner *= sa[i];
  const int64_t ma = sa[dim], mb = sb[dim];

  auto ai = a.impl();
  auto bi = b.impl();
  Tensor out = MakeNode(
      out_shape, {ai, bi}, [ai, bi, outer, inner, ma, mb](TensorImpl& self) {
        const int64_t mo = ma + mb;
        if (ai->requires_grad) ai->EnsureGrad();
        if (bi->requires_grad) bi->EnsureGrad();
        for (int64_t o = 0; o < outer; ++o) {
          const float* g = self.grad.data() + o * mo * inner;
          if (ai->requires_grad) {
            float* ga = ai->grad.data() + o * ma * inner;
            for (int64_t i = 0; i < ma * inner; ++i) ga[i] += g[i];
          }
          if (bi->requires_grad) {
            float* gb = bi->grad.data() + o * mb * inner;
            for (int64_t i = 0; i < mb * inner; ++i)
              gb[i] += g[ma * inner + i];
          }
        }
      });
  float* od = out.data();
  const float* ad = a.data();
  const float* bd = b.data();
  const int64_t mo = ma + mb;
  for (int64_t o = 0; o < outer; ++o) {
    std::memcpy(od + o * mo * inner, ad + o * ma * inner,
                sizeof(float) * ma * inner);
    std::memcpy(od + o * mo * inner + ma * inner, bd + o * mb * inner,
                sizeof(float) * mb * inner);
  }
  return out;
}

Tensor Slice(const Tensor& a, int64_t dim, int64_t start, int64_t end) {
  STISAN_CHECK(a.defined());
  const Shape& s = a.shape();
  if (dim < 0) dim += static_cast<int64_t>(s.size());
  STISAN_CHECK_GE(dim, 0);
  STISAN_CHECK_LT(dim, static_cast<int64_t>(s.size()));
  STISAN_CHECK_GE(start, 0);
  STISAN_CHECK_LE(end, s[dim]);
  STISAN_CHECK_LT(start, end);
  Shape out_shape = s;
  out_shape[dim] = end - start;

  int64_t outer = 1, inner = 1;
  for (int64_t i = 0; i < dim; ++i) outer *= s[i];
  for (size_t i = dim + 1; i < s.size(); ++i) inner *= s[i];
  const int64_t mid = s[dim];
  const int64_t len = end - start;

  auto ai = a.impl();
  Tensor out = MakeNode(
      out_shape, {ai},
      [ai, outer, inner, mid, start, len](TensorImpl& self) {
        if (!ai->requires_grad) return;
        ai->EnsureGrad();
        for (int64_t o = 0; o < outer; ++o) {
          const float* g = self.grad.data() + o * len * inner;
          float* ga = ai->grad.data() + (o * mid + start) * inner;
          for (int64_t i = 0; i < len * inner; ++i) ga[i] += g[i];
        }
      });
  float* od = out.data();
  const float* ad = a.data();
  for (int64_t o = 0; o < outer; ++o)
    std::memcpy(od + o * len * inner, ad + (o * mid + start) * inner,
                sizeof(float) * len * inner);
  return out;
}

Tensor Stack0(const std::vector<Tensor>& parts) {
  STISAN_CHECK(!parts.empty());
  const Shape& s0 = parts[0].shape();
  for (const auto& p : parts) STISAN_CHECK(p.shape() == s0);
  Shape out_shape;
  out_shape.push_back(static_cast<int64_t>(parts.size()));
  out_shape.insert(out_shape.end(), s0.begin(), s0.end());

  std::vector<TensorImplPtr> parents;
  parents.reserve(parts.size());
  for (const auto& p : parts) parents.push_back(p.impl());
  const int64_t chunk = parts[0].numel();
  auto parents_copy = parents;
  Tensor out =
      MakeNode(out_shape, std::move(parents), [parents_copy, chunk](TensorImpl& self) {
        for (size_t t = 0; t < parents_copy.size(); ++t) {
          auto& p = parents_copy[t];
          if (!p->requires_grad) continue;
          p->EnsureGrad();
          const float* g = self.grad.data() + t * chunk;
          for (int64_t i = 0; i < chunk; ++i) p->grad[i] += g[i];
        }
      });
  float* od = out.data();
  for (size_t t = 0; t < parts.size(); ++t)
    std::memcpy(od + t * chunk, parts[t].data(), sizeof(float) * chunk);
  return out;
}

Tensor Unfold1D(const Tensor& a, int64_t window) {
  STISAN_CHECK(a.defined());
  STISAN_CHECK_EQ(a.dim(), 2);
  const int64_t n = a.size(0);
  const int64_t d = a.size(1);
  STISAN_CHECK_GE(n, window);
  STISAN_CHECK_GE(window, 1);
  const int64_t rows = n - window + 1;
  auto ai = a.impl();
  Tensor out = MakeNode(
      {rows, window * d}, {ai}, [ai, rows, window, d](TensorImpl& self) {
        if (!ai->requires_grad) return;
        ai->EnsureGrad();
        for (int64_t r = 0; r < rows; ++r)
          for (int64_t w = 0; w < window; ++w)
            for (int64_t c = 0; c < d; ++c)
              ai->grad[(r + w) * d + c] +=
                  self.grad[r * window * d + w * d + c];
      });
  float* od = out.data();
  const float* ad = a.data();
  for (int64_t r = 0; r < rows; ++r)
    for (int64_t w = 0; w < window; ++w)
      std::memcpy(od + r * window * d + w * d, ad + (r + w) * d,
                  sizeof(float) * d);
  return out;
}

// ---- Reductions -----------------------------------------------------------------------

Tensor Sum(const Tensor& a) {
  STISAN_CHECK(a.defined());
  auto ai = a.impl();
  Tensor out = MakeNode({1}, {ai}, [ai](TensorImpl& self) {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    const float g = self.grad[0];
    for (auto& v : ai->grad) v += g;
  });
  float acc = 0.0f;
  const float* ad = a.data();
  for (int64_t i = 0; i < a.numel(); ++i) acc += ad[i];
  out.data()[0] = acc;
  return out;
}

Tensor Mean(const Tensor& a) {
  return MulScalar(Sum(a), 1.0f / static_cast<float>(a.numel()));
}

Tensor SumDim(const Tensor& a, int64_t dim, bool keepdim) {
  STISAN_CHECK(a.defined());
  const Shape& s = a.shape();
  if (dim < 0) dim += static_cast<int64_t>(s.size());
  STISAN_CHECK_GE(dim, 0);
  STISAN_CHECK_LT(dim, static_cast<int64_t>(s.size()));
  int64_t outer = 1, inner = 1;
  for (int64_t i = 0; i < dim; ++i) outer *= s[i];
  for (size_t i = dim + 1; i < s.size(); ++i) inner *= s[i];
  const int64_t mid = s[dim];

  Shape out_shape;
  for (size_t i = 0; i < s.size(); ++i) {
    if (static_cast<int64_t>(i) == dim) {
      if (keepdim) out_shape.push_back(1);
    } else {
      out_shape.push_back(s[i]);
    }
  }
  if (out_shape.empty()) out_shape.push_back(1);

  auto ai = a.impl();
  Tensor out =
      MakeNode(out_shape, {ai}, [ai, outer, inner, mid](TensorImpl& self) {
        if (!ai->requires_grad) return;
        ai->EnsureGrad();
        for (int64_t o = 0; o < outer; ++o)
          for (int64_t m = 0; m < mid; ++m)
            for (int64_t i = 0; i < inner; ++i)
              ai->grad[(o * mid + m) * inner + i] +=
                  self.grad[o * inner + i];
      });
  float* od = out.data();
  const float* ad = a.data();
  for (int64_t o = 0; o < outer; ++o)
    for (int64_t i = 0; i < inner; ++i) {
      float acc = 0.0f;
      for (int64_t m = 0; m < mid; ++m) acc += ad[(o * mid + m) * inner + i];
      od[o * inner + i] = acc;
    }
  return out;
}

Tensor MaxDim(const Tensor& a, int64_t dim, bool keepdim) {
  STISAN_CHECK(a.defined());
  const Shape& s = a.shape();
  if (dim < 0) dim += static_cast<int64_t>(s.size());
  int64_t outer = 1, inner = 1;
  for (int64_t i = 0; i < dim; ++i) outer *= s[i];
  for (size_t i = dim + 1; i < s.size(); ++i) inner *= s[i];
  const int64_t mid = s[dim];
  STISAN_CHECK_GE(mid, 1);

  Shape out_shape;
  for (size_t i = 0; i < s.size(); ++i) {
    if (static_cast<int64_t>(i) == dim) {
      if (keepdim) out_shape.push_back(1);
    } else {
      out_shape.push_back(s[i]);
    }
  }
  if (out_shape.empty()) out_shape.push_back(1);

  auto argmax = std::make_shared<std::vector<int64_t>>(
      static_cast<size_t>(outer * inner));
  auto ai = a.impl();
  Tensor out = MakeNode(
      out_shape, {ai}, [ai, outer, inner, mid, argmax](TensorImpl& self) {
        if (!ai->requires_grad) return;
        ai->EnsureGrad();
        for (int64_t o = 0; o < outer; ++o)
          for (int64_t i = 0; i < inner; ++i) {
            const int64_t m = (*argmax)[o * inner + i];
            ai->grad[(o * mid + m) * inner + i] += self.grad[o * inner + i];
          }
      });
  float* od = out.data();
  const float* ad = a.data();
  for (int64_t o = 0; o < outer; ++o)
    for (int64_t i = 0; i < inner; ++i) {
      float best = ad[o * mid * inner + i];
      int64_t bm = 0;
      for (int64_t m = 1; m < mid; ++m) {
        const float v = ad[(o * mid + m) * inner + i];
        if (v > best) {
          best = v;
          bm = m;
        }
      }
      od[o * inner + i] = best;
      (*argmax)[o * inner + i] = bm;
    }
  return out;
}

Tensor MinDim(const Tensor& a, int64_t dim, bool keepdim) {
  // min(x) = -max(-x); reuse MaxDim's argmax routing.
  return Neg(MaxDim(Neg(a), dim, keepdim));
}

Tensor MeanDim(const Tensor& a, int64_t dim, bool keepdim) {
  const Shape& s = a.shape();
  int64_t d = dim < 0 ? dim + static_cast<int64_t>(s.size()) : dim;
  STISAN_CHECK_GE(d, 0);
  STISAN_CHECK_LT(d, static_cast<int64_t>(s.size()));
  return MulScalar(SumDim(a, dim, keepdim),
                   1.0f / static_cast<float>(s[static_cast<size_t>(d)]));
}

// ---- Neural-net specific ----------------------------------------------------------------

Tensor Softmax(const Tensor& a) {
  STISAN_CHECK(a.defined());
  const int64_t d = a.shape().back();
  const int64_t rows = a.numel() / d;
  auto ai = a.impl();
  Tensor out = MakeNode(a.shape(), {ai}, [ai, rows, d](TensorImpl& self) {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    for (int64_t r = 0; r < rows; ++r) {
      const float* y = self.data.data() + r * d;
      const float* g = self.grad.data() + r * d;
      float dot = 0.0f;
      for (int64_t j = 0; j < d; ++j) dot += y[j] * g[j];
      float* ag = ai->grad.data() + r * d;
      for (int64_t j = 0; j < d; ++j) ag[j] += y[j] * (g[j] - dot);
    }
  });
  const float* ad = a.data();
  float* od = out.data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* x = ad + r * d;
    float* y = od + r * d;
    float mx = x[0];
    for (int64_t j = 1; j < d; ++j) mx = std::max(mx, x[j]);
    float sum = 0.0f;
    for (int64_t j = 0; j < d; ++j) {
      y[j] = std::exp(x[j] - mx);
      sum += y[j];
    }
    const float inv = 1.0f / sum;
    for (int64_t j = 0; j < d; ++j) y[j] *= inv;
  }
  return out;
}

Tensor LogSoftmax(const Tensor& a) {
  STISAN_CHECK(a.defined());
  const int64_t d = a.shape().back();
  const int64_t rows = a.numel() / d;
  auto ai = a.impl();
  Tensor out = MakeNode(a.shape(), {ai}, [ai, rows, d](TensorImpl& self) {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    for (int64_t r = 0; r < rows; ++r) {
      const float* y = self.data.data() + r * d;  // log-probs
      const float* g = self.grad.data() + r * d;
      float gsum = 0.0f;
      for (int64_t j = 0; j < d; ++j) gsum += g[j];
      float* ag = ai->grad.data() + r * d;
      for (int64_t j = 0; j < d; ++j) ag[j] += g[j] - std::exp(y[j]) * gsum;
    }
  });
  const float* ad = a.data();
  float* od = out.data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* x = ad + r * d;
    float* y = od + r * d;
    float mx = x[0];
    for (int64_t j = 1; j < d; ++j) mx = std::max(mx, x[j]);
    float sum = 0.0f;
    for (int64_t j = 0; j < d; ++j) sum += std::exp(x[j] - mx);
    const float lse = mx + std::log(sum);
    for (int64_t j = 0; j < d; ++j) y[j] = x[j] - lse;
  }
  return out;
}

Tensor LayerNorm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                 float eps) {
  STISAN_CHECK(x.defined() && gamma.defined() && beta.defined());
  const int64_t d = x.shape().back();
  STISAN_CHECK_EQ(gamma.numel(), d);
  STISAN_CHECK_EQ(beta.numel(), d);
  const int64_t rows = x.numel() / d;
  auto xi = x.impl();
  auto gi = gamma.impl();
  auto bi = beta.impl();
  // Cache per-row mean and inverse stddev for the backward pass.
  auto mu = std::make_shared<std::vector<float>>(rows);
  auto inv_sigma = std::make_shared<std::vector<float>>(rows);

  Tensor out = MakeNode(
      x.shape(), {xi, gi, bi},
      [xi, gi, bi, mu, inv_sigma, rows, d](TensorImpl& self) {
        const bool need_x = xi->requires_grad;
        const bool need_g = gi->requires_grad;
        const bool need_b = bi->requires_grad;
        if (need_x) xi->EnsureGrad();
        if (need_g) gi->EnsureGrad();
        if (need_b) bi->EnsureGrad();
        for (int64_t r = 0; r < rows; ++r) {
          const float* xr = xi->data.data() + r * d;
          const float* g = self.grad.data() + r * d;
          const float m = (*mu)[r];
          const float is = (*inv_sigma)[r];
          // xhat_j = (x_j - m) * is
          float sum_gg = 0.0f;   // sum_j gamma_j * g_j
          float sum_ggx = 0.0f;  // sum_j gamma_j * g_j * xhat_j
          for (int64_t j = 0; j < d; ++j) {
            const float xhat = (xr[j] - m) * is;
            const float gg = gi->data[j] * g[j];
            sum_gg += gg;
            sum_ggx += gg * xhat;
            if (need_g) gi->grad[j] += g[j] * xhat;
            if (need_b) bi->grad[j] += g[j];
          }
          if (need_x) {
            float* xg = xi->grad.data() + r * d;
            const float inv_d = 1.0f / static_cast<float>(d);
            for (int64_t j = 0; j < d; ++j) {
              const float xhat = (xr[j] - m) * is;
              const float gg = gi->data[j] * g[j];
              xg[j] += is * (gg - inv_d * sum_gg - xhat * inv_d * sum_ggx);
            }
          }
        }
      });
  const float* xd = x.data();
  const float* gd = gamma.data();
  const float* bd = beta.data();
  float* od = out.data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* xr = xd + r * d;
    float m = 0.0f;
    for (int64_t j = 0; j < d; ++j) m += xr[j];
    m /= static_cast<float>(d);
    float var = 0.0f;
    for (int64_t j = 0; j < d; ++j) {
      const float c = xr[j] - m;
      var += c * c;
    }
    var /= static_cast<float>(d);
    const float is = 1.0f / std::sqrt(var + eps);
    (*mu)[r] = m;
    (*inv_sigma)[r] = is;
    float* yr = od + r * d;
    for (int64_t j = 0; j < d; ++j)
      yr[j] = gd[j] * (xr[j] - m) * is + bd[j];
  }
  return out;
}

Tensor EmbeddingLookup(const Tensor& weight, const std::vector<int64_t>& ids,
                       int64_t padding_idx) {
  STISAN_CHECK(weight.defined());
  STISAN_CHECK_EQ(weight.dim(), 2);
  const int64_t vocab = weight.size(0);
  const int64_t d = weight.size(1);
  const int64_t n = static_cast<int64_t>(ids.size());
  for (int64_t id : ids) {
    STISAN_CHECK_GE(id, 0);
    STISAN_CHECK_LT(id, vocab);
  }
  auto wi = weight.impl();
  auto ids_copy = std::make_shared<std::vector<int64_t>>(ids);
  Tensor out = MakeNode(
      {n, d}, {wi}, [wi, ids_copy, d, padding_idx](TensorImpl& self) {
        if (!wi->requires_grad) return;
        wi->EnsureGrad();
        for (size_t i = 0; i < ids_copy->size(); ++i) {
          const int64_t id = (*ids_copy)[i];
          if (id == padding_idx) continue;
          const float* g = self.grad.data() + i * d;
          float* wg = wi->grad.data() + id * d;
          for (int64_t j = 0; j < d; ++j) wg[j] += g[j];
        }
      });
  float* od = out.data();
  const float* wd = weight.data();
  for (int64_t i = 0; i < n; ++i) {
    const int64_t id = ids[static_cast<size_t>(i)];
    if (id == padding_idx) {
      std::fill(od + i * d, od + (i + 1) * d, 0.0f);
    } else {
      std::memcpy(od + i * d, wd + id * d, sizeof(float) * d);
    }
  }
  return out;
}

Tensor Dropout(const Tensor& a, float p, Rng& rng, bool training) {
  STISAN_CHECK(a.defined());
  STISAN_CHECK_GE(p, 0.0f);
  STISAN_CHECK_LT(p, 1.0f);
  if (!training || p == 0.0f) return a;
  const float scale = 1.0f / (1.0f - p);
  auto mask = std::make_shared<std::vector<float>>(a.numel());
  for (auto& m : *mask) m = rng.Bernoulli(p) ? 0.0f : scale;
  auto ai = a.impl();
  Tensor out = MakeNode(a.shape(), {ai}, [ai, mask](TensorImpl& self) {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    for (size_t i = 0; i < self.grad.size(); ++i)
      ai->grad[i] += self.grad[i] * (*mask)[i];
  });
  const float* ad = a.data();
  float* od = out.data();
  for (int64_t i = 0; i < a.numel(); ++i) od[i] = ad[i] * (*mask)[i];
  return out;
}

}  // namespace ops

Tensor operator+(const Tensor& a, const Tensor& b) { return ops::Add(a, b); }
Tensor operator-(const Tensor& a, const Tensor& b) { return ops::Sub(a, b); }
Tensor operator*(const Tensor& a, const Tensor& b) { return ops::Mul(a, b); }
Tensor operator/(const Tensor& a, const Tensor& b) { return ops::Div(a, b); }
Tensor operator+(const Tensor& a, float s) { return ops::AddScalar(a, s); }
Tensor operator*(const Tensor& a, float s) { return ops::MulScalar(a, s); }
Tensor operator-(const Tensor& a) { return ops::Neg(a); }

}  // namespace stisan
