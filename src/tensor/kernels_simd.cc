#include "tensor/kernels_simd.h"

#include <algorithm>
#include <cmath>

#if defined(__x86_64__) || defined(__amd64__)
#define STISAN_SIMD_X86 1
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#define STISAN_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace stisan::kernels::simd {

namespace {

// ---- Scalar fallbacks ------------------------------------------------------
// Mirror the reference loops in kernels.cc. Dispatch never routes here when
// !Available(), but keeping real implementations (rather than aborts) means
// a dispatch bug degrades to correct-but-scalar instead of a crash.

void GemmRowRangeScalar(const float* a, const float* b, float* c, int64_t m,
                        int64_t k, int64_t n, bool ta, bool tb,
                        int64_t i0, int64_t i1) {
  if (!ta && !tb) {
    for (int64_t i = i0; i < i1; ++i) {
      float* crow = c + i * n;
      for (int64_t p = 0; p < k; ++p) {
        const float av = a[i * k + p];
        if (av == 0.0f) continue;
        const float* brow = b + p * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  } else if (!ta && tb) {
    for (int64_t i = i0; i < i1; ++i) {
      const float* arow = a + i * k;
      for (int64_t j = 0; j < n; ++j) {
        const float* brow = b + j * k;
        float acc = 0.0f;
        for (int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
        c[i * n + j] += acc;
      }
    }
  } else if (ta && !tb) {
    for (int64_t i = i0; i < i1; ++i) {
      float* crow = c + i * n;
      for (int64_t p = 0; p < k; ++p) {
        const float av = a[p * m + i];
        if (av == 0.0f) continue;
        const float* brow = b + p * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  } else {
    for (int64_t i = i0; i < i1; ++i)
      for (int64_t j = 0; j < n; ++j) {
        float acc = 0.0f;
        for (int64_t p = 0; p < k; ++p) acc += a[p * m + i] * b[j * k + p];
        c[i * n + j] += acc;
      }
  }
}

void RowSoftmaxScalar(const float* x, float* y, int64_t d) {
  float mx = x[0];
  for (int64_t j = 1; j < d; ++j) mx = std::max(mx, x[j]);
  float sum = 0.0f;
  for (int64_t j = 0; j < d; ++j) {
    y[j] = std::exp(x[j] - mx);
    sum += y[j];
  }
  const float inv = 1.0f / sum;
  for (int64_t j = 0; j < d; ++j) y[j] *= inv;
}

void LogSoftmaxRowScalar(const float* x, float* y, int64_t d) {
  float mx = x[0];
  for (int64_t j = 1; j < d; ++j) mx = std::max(mx, x[j]);
  float sum = 0.0f;
  for (int64_t j = 0; j < d; ++j) sum += std::exp(x[j] - mx);
  const float lse = mx + std::log(sum);
  for (int64_t j = 0; j < d; ++j) y[j] = x[j] - lse;
}

void LayerNormRowScalar(const float* xr, const float* gamma, const float* beta,
                        float* yr, float* mu, float* is_out, int64_t d,
                        float eps) {
  float m = 0.0f;
  for (int64_t j = 0; j < d; ++j) m += xr[j];
  m /= static_cast<float>(d);
  float var = 0.0f;
  for (int64_t j = 0; j < d; ++j) {
    const float c = xr[j] - m;
    var += c * c;
  }
  var /= static_cast<float>(d);
  const float is = 1.0f / std::sqrt(var + eps);
  *mu = m;
  *is_out = is;
  for (int64_t j = 0; j < d; ++j) yr[j] = gamma[j] * (xr[j] - m) * is + beta[j];
}

void AttentionRowScalar(const float* qrow, const float* kblk, const float* vblk,
                        const float* brow, const float* mrow, float* prow,
                        float* orow, int64_t bound, int64_t d, float scale) {
  for (int64_t j = 0; j < bound; ++j) {
    const float* krow = kblk + j * d;
    float acc = 0.0f;
    for (int64_t c = 0; c < d; ++c) acc += qrow[c] * krow[c];
    float x = acc * scale;
    if (brow != nullptr) x += brow[j];
    prow[j] = x;
  }
  RowSoftmaxScalar(prow, prow, bound);
  std::fill(orow, orow + d, 0.0f);
  for (int64_t j = 0; j < bound; ++j) {
    float av = prow[j];
    if (mrow != nullptr) av *= mrow[j];
    if (av == 0.0f) continue;
    const float* vrow = vblk + j * d;
    for (int64_t c = 0; c < d; ++c) orow[c] += av * vrow[c];
  }
}

#if STISAN_SIMD_X86

// ---- AVX2 + FMA ------------------------------------------------------------
// Every function carries the target attribute so the file builds with the
// project's baseline flags and the AVX2 code paths are gated purely by the
// runtime __builtin_cpu_supports check in Available().

#define STISAN_AVX2 __attribute__((target("avx2,fma")))

STISAN_AVX2 inline float ReduceAdd(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_add_ps(lo, _mm_movehl_ps(lo, lo));
  lo = _mm_add_ss(lo, _mm_movehdup_ps(lo));
  return _mm_cvtss_f32(lo);
}

STISAN_AVX2 inline float ReduceMax(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_max_ps(lo, hi);
  lo = _mm_max_ps(lo, _mm_movehl_ps(lo, lo));
  lo = _mm_max_ss(lo, _mm_movehdup_ps(lo));
  return _mm_cvtss_f32(lo);
}

STISAN_AVX2 inline float DotAvx2(const float* a, const float* b, int64_t k) {
  __m256 acc = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= k; i += 8)
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc);
  float s = ReduceAdd(acc);
  for (; i < k; ++i) s += a[i] * b[i];
  return s;
}

STISAN_AVX2 inline void AxpyAvx2(float av, const float* x, float* y,
                                 int64_t n) {
  const __m256 va = _mm256_set1_ps(av);
  int64_t j = 0;
  for (; j + 8 <= n; j += 8)
    _mm256_storeu_ps(
        y + j, _mm256_fmadd_ps(va, _mm256_loadu_ps(x + j),
                               _mm256_loadu_ps(y + j)));
  for (; j < n; ++j) y[j] += av * x[j];
}

// Vectorized e^x (cephes-style range reduction + degree-5 polynomial, the
// classic avx_mathfun formulation). Max relative error ~2 ulp over the
// clamped range — well inside the SIMD-vs-scalar tolerance this backend
// promises. Inputs are clamped so the 2^n scaling below never overflows the
// exponent field.
STISAN_AVX2 inline __m256 Exp256(__m256 x) {
  const __m256 one = _mm256_set1_ps(1.0f);
  x = _mm256_min_ps(x, _mm256_set1_ps(88.3762626647950f));
  x = _mm256_max_ps(x, _mm256_set1_ps(-88.3762626647949f));
  __m256 fx = _mm256_fmadd_ps(x, _mm256_set1_ps(1.44269504088896341f),
                              _mm256_set1_ps(0.5f));
  fx = _mm256_floor_ps(fx);
  x = _mm256_sub_ps(x, _mm256_mul_ps(fx, _mm256_set1_ps(0.693359375f)));
  x = _mm256_sub_ps(x, _mm256_mul_ps(fx, _mm256_set1_ps(-2.12194440e-4f)));
  const __m256 z = _mm256_mul_ps(x, x);
  __m256 y = _mm256_set1_ps(1.9875691500e-4f);
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.3981999507e-3f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(8.3334519073e-3f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(4.1665795894e-2f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.6666665459e-1f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(5.0000001201e-1f));
  y = _mm256_fmadd_ps(y, z, x);
  y = _mm256_add_ps(y, one);
  __m256i n = _mm256_cvttps_epi32(fx);
  n = _mm256_add_epi32(n, _mm256_set1_epi32(0x7f));
  n = _mm256_slli_epi32(n, 23);
  return _mm256_mul_ps(y, _mm256_castsi256_ps(n));
}

// One register-blocked strip of a C row: LANES 8-wide accumulators
// (LANES*8 consecutive columns) live in ymm registers across the whole
// k-reduction, so the C row is loaded and stored exactly once instead of
// per k-step. The per-element accumulation order (sequential over p at
// fixed absolute columns) is identical to the plain axpy formulation, so
// the determinism contract is unchanged. `a_stride` walks A's k axis: 1
// for row-major A[i,:], m for transposed-A columns.
template <int kLanes>
STISAN_AVX2 inline void GemmRowStripAvx2(const float* a_base,
                                         int64_t a_stride, const float* b,
                                         int64_t n, float* c_strip,
                                         int64_t k) {
  __m256 acc[kLanes];
  for (int l = 0; l < kLanes; ++l)
    acc[l] = _mm256_loadu_ps(c_strip + 8 * l);
  for (int64_t p = 0; p < k; ++p) {
    const float av = a_base[p * a_stride];
    if (av == 0.0f) continue;  // fmadd(0, b, c) == c, so skipping is exact
    const __m256 va = _mm256_set1_ps(av);
    const float* brow = b + p * n;
    for (int l = 0; l < kLanes; ++l)
      acc[l] = _mm256_fmadd_ps(va, _mm256_loadu_ps(brow + 8 * l), acc[l]);
  }
  for (int l = 0; l < kLanes; ++l)
    _mm256_storeu_ps(c_strip + 8 * l, acc[l]);
}

// c[i, j0..n) += Σ_p a_val(p) · b[p, j0..n) over column strips of up to 8
// lanes (64 columns) plus a scalar tail.
STISAN_AVX2 void GemmRowAccumAvx2(const float* a_base, int64_t a_stride,
                                  const float* b, float* crow, int64_t k,
                                  int64_t n) {
  int64_t j0 = 0;
  while (n - j0 >= 8) {
    const int64_t lanes = std::min<int64_t>((n - j0) / 8, 8);
    const float* bcol = b + j0;
    float* cstrip = crow + j0;
    switch (lanes) {
      case 8: GemmRowStripAvx2<8>(a_base, a_stride, bcol, n, cstrip, k); break;
      case 7: GemmRowStripAvx2<7>(a_base, a_stride, bcol, n, cstrip, k); break;
      case 6: GemmRowStripAvx2<6>(a_base, a_stride, bcol, n, cstrip, k); break;
      case 5: GemmRowStripAvx2<5>(a_base, a_stride, bcol, n, cstrip, k); break;
      case 4: GemmRowStripAvx2<4>(a_base, a_stride, bcol, n, cstrip, k); break;
      case 3: GemmRowStripAvx2<3>(a_base, a_stride, bcol, n, cstrip, k); break;
      case 2: GemmRowStripAvx2<2>(a_base, a_stride, bcol, n, cstrip, k); break;
      default: GemmRowStripAvx2<1>(a_base, a_stride, bcol, n, cstrip, k);
    }
    j0 += lanes * 8;
  }
  for (int64_t j = j0; j < n; ++j) {
    float s = crow[j];
    for (int64_t p = 0; p < k; ++p) {
      const float av = a_base[p * a_stride];
      if (av == 0.0f) continue;
      s += av * b[p * n + j];
    }
    crow[j] = s;
  }
}

STISAN_AVX2 void GemmRowRangeAvx2(const float* a, const float* b, float* c,
                                  int64_t m, int64_t k, int64_t n, bool ta,
                                  bool tb, int64_t i0, int64_t i1) {
  if (!ta && !tb) {
    for (int64_t i = i0; i < i1; ++i)
      GemmRowAccumAvx2(a + i * k, 1, b, c + i * n, k, n);
  } else if (!ta && tb) {  // B physically [n,k]
    for (int64_t i = i0; i < i1; ++i) {
      const float* arow = a + i * k;
      for (int64_t j = 0; j < n; ++j)
        c[i * n + j] += DotAvx2(arow, b + j * k, k);
    }
  } else {  // ta && !tb: A physically [k,m]
    for (int64_t i = i0; i < i1; ++i)
      GemmRowAccumAvx2(a + i, m, b, c + i * n, k, n);
  }
}

// y = softmax(x) over one row of length d. x may alias y: the max pass only
// reads x, the exp pass is elementwise, the scale pass only touches y.
STISAN_AVX2 void RowSoftmaxAvx2(const float* x, float* y, int64_t d) {
  if (d < 8) {
    RowSoftmaxScalar(x, y, d);
    return;
  }
  __m256 vmx = _mm256_loadu_ps(x);
  int64_t j = 8;
  for (; j + 8 <= d; j += 8) vmx = _mm256_max_ps(vmx, _mm256_loadu_ps(x + j));
  float mx = ReduceMax(vmx);
  for (; j < d; ++j) mx = std::max(mx, x[j]);
  const __m256 vm = _mm256_set1_ps(mx);
  __m256 vsum = _mm256_setzero_ps();
  for (j = 0; j + 8 <= d; j += 8) {
    const __m256 e = Exp256(_mm256_sub_ps(_mm256_loadu_ps(x + j), vm));
    _mm256_storeu_ps(y + j, e);
    vsum = _mm256_add_ps(vsum, e);
  }
  float sum = ReduceAdd(vsum);
  for (; j < d; ++j) {
    y[j] = std::exp(x[j] - mx);
    sum += y[j];
  }
  const __m256 vinv = _mm256_set1_ps(1.0f / sum);
  const float inv = 1.0f / sum;
  for (j = 0; j + 8 <= d; j += 8)
    _mm256_storeu_ps(y + j, _mm256_mul_ps(_mm256_loadu_ps(y + j), vinv));
  for (; j < d; ++j) y[j] *= inv;
}

STISAN_AVX2 void LogSoftmaxRowAvx2(const float* x, float* y, int64_t d) {
  if (d < 8) {
    LogSoftmaxRowScalar(x, y, d);
    return;
  }
  __m256 vmx = _mm256_loadu_ps(x);
  int64_t j = 8;
  for (; j + 8 <= d; j += 8) vmx = _mm256_max_ps(vmx, _mm256_loadu_ps(x + j));
  float mx = ReduceMax(vmx);
  for (; j < d; ++j) mx = std::max(mx, x[j]);
  const __m256 vm = _mm256_set1_ps(mx);
  __m256 vsum = _mm256_setzero_ps();
  for (j = 0; j + 8 <= d; j += 8)
    vsum = _mm256_add_ps(
        vsum, Exp256(_mm256_sub_ps(_mm256_loadu_ps(x + j), vm)));
  float sum = ReduceAdd(vsum);
  for (; j < d; ++j) sum += std::exp(x[j] - mx);
  const float lse = mx + std::log(sum);
  const __m256 vlse = _mm256_set1_ps(lse);
  for (j = 0; j + 8 <= d; j += 8)
    _mm256_storeu_ps(y + j, _mm256_sub_ps(_mm256_loadu_ps(x + j), vlse));
  for (; j < d; ++j) y[j] = x[j] - lse;
}

STISAN_AVX2 void LayerNormRowAvx2(const float* xr, const float* gamma,
                                  const float* beta, float* yr, float* mu,
                                  float* is_out, int64_t d, float eps) {
  if (d < 8) {
    LayerNormRowScalar(xr, gamma, beta, yr, mu, is_out, d, eps);
    return;
  }
  __m256 vsum = _mm256_setzero_ps();
  int64_t j = 0;
  for (; j + 8 <= d; j += 8)
    vsum = _mm256_add_ps(vsum, _mm256_loadu_ps(xr + j));
  float m = ReduceAdd(vsum);
  for (; j < d; ++j) m += xr[j];
  m /= static_cast<float>(d);
  const __m256 vmean = _mm256_set1_ps(m);
  __m256 vvar = _mm256_setzero_ps();
  for (j = 0; j + 8 <= d; j += 8) {
    const __m256 cdiff = _mm256_sub_ps(_mm256_loadu_ps(xr + j), vmean);
    vvar = _mm256_fmadd_ps(cdiff, cdiff, vvar);
  }
  float var = ReduceAdd(vvar);
  for (; j < d; ++j) {
    const float c = xr[j] - m;
    var += c * c;
  }
  var /= static_cast<float>(d);
  const float is = 1.0f / std::sqrt(var + eps);
  *mu = m;
  *is_out = is;
  const __m256 vis = _mm256_set1_ps(is);
  for (j = 0; j + 8 <= d; j += 8) {
    const __m256 centered = _mm256_sub_ps(_mm256_loadu_ps(xr + j), vmean);
    const __m256 scaled =
        _mm256_mul_ps(_mm256_loadu_ps(gamma + j), centered);
    _mm256_storeu_ps(
        yr + j, _mm256_fmadd_ps(scaled, vis, _mm256_loadu_ps(beta + j)));
  }
  for (; j < d; ++j) yr[j] = gamma[j] * (xr[j] - m) * is + beta[j];
}

STISAN_AVX2 void AttentionRowAvx2(const float* qrow, const float* kblk,
                                  const float* vblk, const float* brow,
                                  const float* mrow, float* prow, float* orow,
                                  int64_t bound, int64_t d, float scale) {
  for (int64_t j = 0; j < bound; ++j) {
    float x = DotAvx2(qrow, kblk + j * d, d) * scale;
    if (brow != nullptr) x += brow[j];
    prow[j] = x;
  }
  RowSoftmaxAvx2(prow, prow, bound);
  std::fill(orow, orow + d, 0.0f);
  for (int64_t j = 0; j < bound; ++j) {
    float av = prow[j];
    if (mrow != nullptr) av *= mrow[j];
    if (av == 0.0f) continue;
    AxpyAvx2(av, vblk + j * d, orow, d);
  }
}

bool HasAvx2() {
  static const bool has = [] {
    __builtin_cpu_init();
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma") != 0;
  }();
  return has;
}

#endif  // STISAN_SIMD_X86

#if STISAN_SIMD_NEON

// ---- NEON (aarch64 baseline, no runtime check needed) ----------------------

inline float32x4_t Exp128(float32x4_t x) {
  x = vminq_f32(x, vdupq_n_f32(88.3762626647950f));
  x = vmaxq_f32(x, vdupq_n_f32(-88.3762626647949f));
  float32x4_t fx = vfmaq_f32(vdupq_n_f32(0.5f), x,
                             vdupq_n_f32(1.44269504088896341f));
  fx = vrndmq_f32(fx);
  x = vsubq_f32(x, vmulq_f32(fx, vdupq_n_f32(0.693359375f)));
  x = vsubq_f32(x, vmulq_f32(fx, vdupq_n_f32(-2.12194440e-4f)));
  const float32x4_t z = vmulq_f32(x, x);
  float32x4_t y = vdupq_n_f32(1.9875691500e-4f);
  y = vfmaq_f32(vdupq_n_f32(1.3981999507e-3f), y, x);
  y = vfmaq_f32(vdupq_n_f32(8.3334519073e-3f), y, x);
  y = vfmaq_f32(vdupq_n_f32(4.1665795894e-2f), y, x);
  y = vfmaq_f32(vdupq_n_f32(1.6666665459e-1f), y, x);
  y = vfmaq_f32(vdupq_n_f32(5.0000001201e-1f), y, x);
  y = vfmaq_f32(x, y, z);
  y = vaddq_f32(y, vdupq_n_f32(1.0f));
  int32x4_t n = vcvtq_s32_f32(fx);
  n = vaddq_s32(n, vdupq_n_s32(0x7f));
  n = vshlq_n_s32(n, 23);
  return vmulq_f32(y, vreinterpretq_f32_s32(n));
}

inline float DotNeon(const float* a, const float* b, int64_t k) {
  float32x4_t acc = vdupq_n_f32(0.0f);
  int64_t i = 0;
  for (; i + 4 <= k; i += 4)
    acc = vfmaq_f32(acc, vld1q_f32(a + i), vld1q_f32(b + i));
  float s = vaddvq_f32(acc);
  for (; i < k; ++i) s += a[i] * b[i];
  return s;
}

inline void AxpyNeon(float av, const float* x, float* y, int64_t n) {
  const float32x4_t va = vdupq_n_f32(av);
  int64_t j = 0;
  for (; j + 4 <= n; j += 4)
    vst1q_f32(y + j, vfmaq_f32(vld1q_f32(y + j), va, vld1q_f32(x + j)));
  for (; j < n; ++j) y[j] += av * x[j];
}

void GemmRowRangeNeon(const float* a, const float* b, float* c, int64_t m,
                      int64_t k, int64_t n, bool ta, bool tb, int64_t i0,
                      int64_t i1) {
  if (!ta && !tb) {
    for (int64_t i = i0; i < i1; ++i) {
      float* crow = c + i * n;
      for (int64_t p = 0; p < k; ++p) {
        const float av = a[i * k + p];
        if (av == 0.0f) continue;
        AxpyNeon(av, b + p * n, crow, n);
      }
    }
  } else if (!ta && tb) {
    for (int64_t i = i0; i < i1; ++i) {
      const float* arow = a + i * k;
      for (int64_t j = 0; j < n; ++j)
        c[i * n + j] += DotNeon(arow, b + j * k, k);
    }
  } else {
    for (int64_t i = i0; i < i1; ++i) {
      float* crow = c + i * n;
      for (int64_t p = 0; p < k; ++p) {
        const float av = a[p * m + i];
        if (av == 0.0f) continue;
        AxpyNeon(av, b + p * n, crow, n);
      }
    }
  }
}

void RowSoftmaxNeon(const float* x, float* y, int64_t d) {
  if (d < 4) {
    RowSoftmaxScalar(x, y, d);
    return;
  }
  float32x4_t vmx = vld1q_f32(x);
  int64_t j = 4;
  for (; j + 4 <= d; j += 4) vmx = vmaxq_f32(vmx, vld1q_f32(x + j));
  float mx = vmaxvq_f32(vmx);
  for (; j < d; ++j) mx = std::max(mx, x[j]);
  const float32x4_t vm = vdupq_n_f32(mx);
  float32x4_t vsum = vdupq_n_f32(0.0f);
  for (j = 0; j + 4 <= d; j += 4) {
    const float32x4_t e = Exp128(vsubq_f32(vld1q_f32(x + j), vm));
    vst1q_f32(y + j, e);
    vsum = vaddq_f32(vsum, e);
  }
  float sum = vaddvq_f32(vsum);
  for (; j < d; ++j) {
    y[j] = std::exp(x[j] - mx);
    sum += y[j];
  }
  const float inv = 1.0f / sum;
  const float32x4_t vinv = vdupq_n_f32(inv);
  for (j = 0; j + 4 <= d; j += 4)
    vst1q_f32(y + j, vmulq_f32(vld1q_f32(y + j), vinv));
  for (; j < d; ++j) y[j] *= inv;
}

void LogSoftmaxRowNeon(const float* x, float* y, int64_t d) {
  if (d < 4) {
    LogSoftmaxRowScalar(x, y, d);
    return;
  }
  float32x4_t vmx = vld1q_f32(x);
  int64_t j = 4;
  for (; j + 4 <= d; j += 4) vmx = vmaxq_f32(vmx, vld1q_f32(x + j));
  float mx = vmaxvq_f32(vmx);
  for (; j < d; ++j) mx = std::max(mx, x[j]);
  const float32x4_t vm = vdupq_n_f32(mx);
  float32x4_t vsum = vdupq_n_f32(0.0f);
  for (j = 0; j + 4 <= d; j += 4)
    vsum = vaddq_f32(vsum, Exp128(vsubq_f32(vld1q_f32(x + j), vm)));
  float sum = vaddvq_f32(vsum);
  for (; j < d; ++j) sum += std::exp(x[j] - mx);
  const float lse = mx + std::log(sum);
  const float32x4_t vlse = vdupq_n_f32(lse);
  for (j = 0; j + 4 <= d; j += 4)
    vst1q_f32(y + j, vsubq_f32(vld1q_f32(x + j), vlse));
  for (; j < d; ++j) y[j] = x[j] - lse;
}

void LayerNormRowNeon(const float* xr, const float* gamma, const float* beta,
                      float* yr, float* mu, float* is_out, int64_t d,
                      float eps) {
  if (d < 4) {
    LayerNormRowScalar(xr, gamma, beta, yr, mu, is_out, d, eps);
    return;
  }
  float32x4_t vsum = vdupq_n_f32(0.0f);
  int64_t j = 0;
  for (; j + 4 <= d; j += 4) vsum = vaddq_f32(vsum, vld1q_f32(xr + j));
  float m = vaddvq_f32(vsum);
  for (; j < d; ++j) m += xr[j];
  m /= static_cast<float>(d);
  const float32x4_t vmean = vdupq_n_f32(m);
  float32x4_t vvar = vdupq_n_f32(0.0f);
  for (j = 0; j + 4 <= d; j += 4) {
    const float32x4_t cdiff = vsubq_f32(vld1q_f32(xr + j), vmean);
    vvar = vfmaq_f32(vvar, cdiff, cdiff);
  }
  float var = vaddvq_f32(vvar);
  for (; j < d; ++j) {
    const float c = xr[j] - m;
    var += c * c;
  }
  var /= static_cast<float>(d);
  const float is = 1.0f / std::sqrt(var + eps);
  *mu = m;
  *is_out = is;
  const float32x4_t vis = vdupq_n_f32(is);
  for (j = 0; j + 4 <= d; j += 4) {
    const float32x4_t centered = vsubq_f32(vld1q_f32(xr + j), vmean);
    const float32x4_t scaled = vmulq_f32(vld1q_f32(gamma + j), centered);
    vst1q_f32(yr + j, vfmaq_f32(vld1q_f32(beta + j), scaled, vis));
  }
  for (; j < d; ++j) yr[j] = gamma[j] * (xr[j] - m) * is + beta[j];
}

void AttentionRowNeon(const float* qrow, const float* kblk, const float* vblk,
                      const float* brow, const float* mrow, float* prow,
                      float* orow, int64_t bound, int64_t d, float scale) {
  for (int64_t j = 0; j < bound; ++j) {
    float x = DotNeon(qrow, kblk + j * d, d) * scale;
    if (brow != nullptr) x += brow[j];
    prow[j] = x;
  }
  RowSoftmaxNeon(prow, prow, bound);
  std::fill(orow, orow + d, 0.0f);
  for (int64_t j = 0; j < bound; ++j) {
    float av = prow[j];
    if (mrow != nullptr) av *= mrow[j];
    if (av == 0.0f) continue;
    AxpyNeon(av, vblk + j * d, orow, d);
  }
}

#endif  // STISAN_SIMD_NEON

}  // namespace

bool Available() {
#if STISAN_SIMD_X86
  return HasAvx2();
#elif STISAN_SIMD_NEON
  return true;
#else
  return false;
#endif
}

const char* Name() {
#if STISAN_SIMD_X86
  return "avx2";
#elif STISAN_SIMD_NEON
  return "neon";
#else
  return "scalar";
#endif
}

void GemmRowRange(const float* a, const float* b, float* c, int64_t m,
                  int64_t k, int64_t n, bool ta, bool tb, bool accumulate,
                  int64_t i0, int64_t i1) {
  if (!accumulate) std::fill(c + i0 * n, c + i1 * n, 0.0f);
  if (ta && tb) {  // cold path: keep the reference loop
    GemmRowRangeScalar(a, b, c, m, k, n, ta, tb, i0, i1);
    return;
  }
#if STISAN_SIMD_X86
  if (HasAvx2()) {
    GemmRowRangeAvx2(a, b, c, m, k, n, ta, tb, i0, i1);
    return;
  }
#elif STISAN_SIMD_NEON
  GemmRowRangeNeon(a, b, c, m, k, n, ta, tb, i0, i1);
  return;
#endif
  GemmRowRangeScalar(a, b, c, m, k, n, ta, tb, i0, i1);
}

void SoftmaxRowRange(const float* x, float* y, int64_t d, int64_t r0,
                     int64_t r1) {
  for (int64_t r = r0; r < r1; ++r) {
#if STISAN_SIMD_X86
    if (HasAvx2()) {
      RowSoftmaxAvx2(x + r * d, y + r * d, d);
      continue;
    }
#elif STISAN_SIMD_NEON
    RowSoftmaxNeon(x + r * d, y + r * d, d);
    continue;
#endif
    RowSoftmaxScalar(x + r * d, y + r * d, d);
  }
}

void LogSoftmaxRowRange(const float* x, float* y, int64_t d, int64_t r0,
                        int64_t r1) {
  for (int64_t r = r0; r < r1; ++r) {
#if STISAN_SIMD_X86
    if (HasAvx2()) {
      LogSoftmaxRowAvx2(x + r * d, y + r * d, d);
      continue;
    }
#elif STISAN_SIMD_NEON
    LogSoftmaxRowNeon(x + r * d, y + r * d, d);
    continue;
#endif
    LogSoftmaxRowScalar(x + r * d, y + r * d, d);
  }
}

void LayerNormRowRange(const float* x, const float* gamma, const float* beta,
                       float* y, float* mu, float* inv_sigma, int64_t d,
                       float eps, int64_t r0, int64_t r1) {
  for (int64_t r = r0; r < r1; ++r) {
#if STISAN_SIMD_X86
    if (HasAvx2()) {
      LayerNormRowAvx2(x + r * d, gamma, beta, y + r * d, mu + r,
                       inv_sigma + r, d, eps);
      continue;
    }
#elif STISAN_SIMD_NEON
    LayerNormRowNeon(x + r * d, gamma, beta, y + r * d, mu + r, inv_sigma + r,
                     d, eps);
    continue;
#endif
    LayerNormRowScalar(x + r * d, gamma, beta, y + r * d, mu + r,
                       inv_sigma + r, d, eps);
  }
}

void AttentionRow(const float* qrow, const float* kblk, const float* vblk,
                  const float* brow, const float* mrow, float* prow,
                  float* orow, int64_t bound, int64_t d, float scale) {
#if STISAN_SIMD_X86
  if (HasAvx2()) {
    AttentionRowAvx2(qrow, kblk, vblk, brow, mrow, prow, orow, bound, d,
                     scale);
    return;
  }
#elif STISAN_SIMD_NEON
  AttentionRowNeon(qrow, kblk, vblk, brow, mrow, prow, orow, bound, d, scale);
  return;
#endif
  AttentionRowScalar(qrow, kblk, vblk, brow, mrow, prow, orow, bound, d,
                     scale);
}

}  // namespace stisan::kernels::simd
