#include "tensor/gradcheck.h"

#include <cmath>

#include "util/string_util.h"

namespace stisan {

Status CheckGradients(const std::function<Tensor()>& fn,
                      std::vector<Tensor> inputs,
                      const GradCheckOptions& options) {
  // Analytic gradients.
  for (auto& t : inputs) t.ZeroGrad();
  Tensor loss = fn();
  if (loss.numel() != 1)
    return Status::InvalidArgument("gradcheck requires a scalar loss");
  loss.Backward();
  std::vector<std::vector<float>> analytic;
  analytic.reserve(inputs.size());
  for (auto& t : inputs) {
    if (!t.has_grad())
      return Status::InvalidArgument("input received no gradient");
    analytic.emplace_back(t.grad_data(), t.grad_data() + t.numel());
  }

  // Finite differences, one element at a time.
  for (size_t k = 0; k < inputs.size(); ++k) {
    Tensor& t = inputs[k];
    float* data = t.data();
    for (int64_t i = 0; i < t.numel(); ++i) {
      const float saved = data[i];
      data[i] = saved + options.epsilon;
      const float up = fn().data()[0];
      data[i] = saved - options.epsilon;
      const float down = fn().data()[0];
      data[i] = saved;
      const float numeric = (up - down) / (2.0f * options.epsilon);
      const float exact = analytic[k][static_cast<size_t>(i)];
      const float err = std::fabs(numeric - exact);
      const float tol =
          options.atol + options.rtol * std::max(std::fabs(numeric),
                                                 std::fabs(exact));
      if (err > tol || std::isnan(err)) {
        return Status::InvalidArgument(StrFormat(
            "grad mismatch input=%zu elem=%lld analytic=%g numeric=%g err=%g",
            k, static_cast<long long>(i), double(exact), double(numeric),
            double(err)));
      }
    }
  }
  return Status::OK();
}

}  // namespace stisan
