// Numerical gradient checking harness for unit tests.

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "util/status.h"

namespace stisan {

struct GradCheckOptions {
  float epsilon = 1e-3f;       // central-difference step
  float rtol = 5e-2f;          // relative tolerance
  float atol = 5e-3f;          // absolute tolerance
};

/// Verifies analytic gradients of `fn` (mapping inputs -> scalar loss)
/// against central finite differences for every element of every input.
///
/// `fn` must rebuild its graph from the *current contents* of the input
/// tensors on each call (inputs are perturbed in place between calls).
/// Returns OK, or InvalidArgument describing the first mismatch.
Status CheckGradients(const std::function<Tensor()>& fn,
                      std::vector<Tensor> inputs,
                      const GradCheckOptions& options = {});

}  // namespace stisan
