// A small dense float tensor with tape-based reverse-mode autograd.
//
// Design notes:
//  - Tensor is a value-semantic handle (shared_ptr) to a TensorImpl node.
//    Copies share storage and graph identity, like torch.Tensor.
//  - Every op (see ops.h) creates a fresh node holding its inputs as parents
//    and a backward closure; Backward() on a scalar runs a topological sweep.
//  - Parent edges only point child -> parent, so the graph is acyclic and
//    reference counting reclaims it once the last handle drops.
//  - Storage is row-major float32. Shapes are small vectors of int64_t.
//  - Graph recording can be suspended with NoGradGuard for inference.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace stisan {

using Shape = std::vector<int64_t>;

/// Returns the number of elements implied by a shape (product of dims).
int64_t NumElements(const Shape& shape);

/// Formats a shape as "[2, 3, 4]".
std::string ShapeToString(const Shape& shape);

namespace internal {

struct TensorImpl;
using TensorImplPtr = std::shared_ptr<TensorImpl>;

/// Graph node: storage + autograd metadata.
struct TensorImpl {
  Shape shape;
  std::vector<float> data;
  std::vector<float> grad;  // allocated lazily during backward
  bool requires_grad = false;

  // Autograd tape: inputs this node was computed from, and a closure that
  // propagates `grad` into the parents' grads.
  std::vector<TensorImplPtr> parents;
  std::function<void(TensorImpl&)> backward_fn;

  int64_t numel() const { return static_cast<int64_t>(data.size()); }
  void EnsureGrad();  // allocates + zero-fills grad if absent
};

/// Returns true while autograd graph recording is enabled (default).
bool GradEnabled();

}  // namespace internal

/// RAII guard that disables autograd recording in its scope (inference mode).
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

/// Dense float tensor handle with optional gradient tracking.
class Tensor {
 public:
  /// Constructs an empty (null) tensor. Most APIs require a non-null tensor.
  Tensor() = default;

  // ---- Factories ------------------------------------------------------

  /// Zero-filled tensor.
  static Tensor Zeros(Shape shape, bool requires_grad = false);

  /// One-filled tensor.
  static Tensor Ones(Shape shape, bool requires_grad = false);

  /// Constant-filled tensor.
  static Tensor Full(Shape shape, float value, bool requires_grad = false);

  /// Tensor wrapping a copy of `values`. Size must match the shape.
  static Tensor FromVector(Shape shape, std::vector<float> values,
                           bool requires_grad = false);

  /// i.i.d. normal(0, stddev) entries.
  static Tensor Randn(Shape shape, Rng& rng, float stddev = 1.0f,
                      bool requires_grad = false);

  /// i.i.d. uniform[lo, hi) entries.
  static Tensor Rand(Shape shape, Rng& rng, float lo, float hi,
                     bool requires_grad = false);

  /// Xavier/Glorot-uniform initialised matrix [fan_in, fan_out].
  static Tensor XavierUniform(int64_t fan_in, int64_t fan_out, Rng& rng,
                              bool requires_grad = true);

  /// Identity matrix [n, n].
  static Tensor Identity(int64_t n, bool requires_grad = false);

  // ---- Introspection ---------------------------------------------------

  bool defined() const { return impl_ != nullptr; }
  const Shape& shape() const;
  int64_t dim() const { return static_cast<int64_t>(shape().size()); }
  int64_t size(int64_t d) const;
  int64_t numel() const;
  bool requires_grad() const;

  /// Direct storage access (row-major).
  float* data();
  const float* data() const;

  /// Element access for low-dimensional tensors (bounds-checked).
  float at(std::initializer_list<int64_t> idx) const;
  void set(std::initializer_list<int64_t> idx, float v);

  /// Copies storage to a std::vector.
  std::vector<float> ToVector() const;

  /// Gradient storage; requires a completed Backward() pass (or EnsureGrad).
  const float* grad_data() const;
  float* mutable_grad_data();
  bool has_grad() const;

  /// Zero-fills the gradient buffer (allocating it if needed).
  void ZeroGrad();

  // ---- Autograd --------------------------------------------------------

  /// Runs reverse-mode autodiff from this scalar node (numel() == 1).
  /// Accumulates into .grad of every reachable node with requires_grad.
  void Backward();

  /// Returns a graph-detached copy sharing no autograd history.
  /// Storage is copied (the result is safe to mutate).
  Tensor Detach() const;

  /// Marks this tensor as a trainable leaf (requires_grad = true).
  Tensor& SetRequiresGrad(bool value);

  /// Formats shape and (for small tensors) values.
  std::string ToString() const;

  // Internal accessor for ops.
  internal::TensorImplPtr impl() const { return impl_; }
  explicit Tensor(internal::TensorImplPtr impl) : impl_(std::move(impl)) {}

 private:
  internal::TensorImplPtr impl_;
};

}  // namespace stisan
