// A small dense float tensor with tape-based reverse-mode autograd.
//
// Design notes:
//  - Tensor is a value-semantic handle (shared_ptr) to a TensorImpl node.
//    Copies share storage and graph identity, like torch.Tensor.
//  - Storage is split from the view: a refcounted Storage owns the flat
//    float buffer (plus a lazily-allocated gradient buffer of the same
//    size), while each TensorImpl carries shape/strides/offset into it.
//    Shape ops (Reshape/Slice/TransposeLast2) return zero-copy views that
//    share the Storage; IsContiguous() tells whether the view is a dense
//    row-major block and Contiguous() materialises a dense copy when not.
//  - Gradients live in the Storage, parallel to the data buffer. A view's
//    gradient region therefore *is* the base tensor's gradient region:
//    accumulating into a view scatter-accumulates into the base buffer by
//    construction, which keeps autograd correct across chained and
//    overlapping views without per-view bookkeeping.
//  - Every op (see ops.h) creates a fresh node holding its inputs as parents
//    and a backward closure; Backward() on a scalar runs a topological sweep.
//  - Parent edges only point child -> parent, so the graph is acyclic and
//    reference counting reclaims it once the last handle drops.
//  - Storage is row-major float32. Shapes are small vectors of int64_t.
//  - Graph recording can be suspended with NoGradGuard for inference.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace stisan {

using Shape = std::vector<int64_t>;

/// Returns the number of elements implied by a shape (product of dims).
int64_t NumElements(const Shape& shape);

/// Formats a shape as "[2, 3, 4]".
std::string ShapeToString(const Shape& shape);

/// Row-major (C-order) strides for a dense tensor of the given shape.
std::vector<int64_t> ContiguousStrides(const Shape& shape);

namespace internal {

struct TensorImpl;
using TensorImplPtr = std::shared_ptr<TensorImpl>;

/// Refcounted flat buffer shared by every view of a tensor. The gradient
/// buffer parallels the data buffer element-for-element and is allocated
/// lazily during backward. Both buffers are routed through the tape memory
/// arena (src/tensor/arena.h): the destructor parks them for reuse when the
/// arena is active. Defined in tensor.cc.
struct Storage {
  std::vector<float> data;
  std::vector<float> grad;

  Storage() = default;
  ~Storage();
  Storage(const Storage&) = delete;
  Storage& operator=(const Storage&) = delete;

  void EnsureGrad();
  bool has_grad() const { return grad.size() == data.size(); }
};

using StoragePtr = std::shared_ptr<Storage>;

/// Graph node: a strided view into a Storage + autograd metadata.
struct TensorImpl {
  Shape shape;
  std::vector<int64_t> strides;  // in elements, row-major for dense nodes
  int64_t offset = 0;            // start element inside the storage
  StoragePtr storage;
  bool requires_grad = false;

  // Static-plan slot identity (src/plan): position of this node in the
  // current plan step's instruction stream, valid only while plan_step
  // equals the active step sequence number (nodes cached across steps carry
  // a stale position that must not alias a slot).
  int32_t plan_pos = -1;
  uint64_t plan_step = 0;

  // Autograd tape: inputs this node was computed from, and a closure that
  // propagates this node's grad into the parents' grads. Pure views leave
  // backward_fn empty: their grad region aliases the parent's, so gradient
  // flow through them is the identity.
  std::vector<TensorImplPtr> parents;
  std::function<void(TensorImpl&)> backward_fn;

  int64_t numel() const { return NumElements(shape); }

  /// True when the view is a dense row-major block (size-1 dims ignored).
  bool IsContiguous() const;

  void EnsureGrad() { storage->EnsureGrad(); }

  // Raw pointers into the storage at this view's offset. Only meaningful as
  // dense [numel] ranges when IsContiguous(); strided access must go
  // through shape/strides.
  float* Data() { return storage->data.data() + offset; }
  const float* Data() const { return storage->data.data() + offset; }
  float* Grad() { return storage->grad.data() + offset; }
  const float* Grad() const { return storage->grad.data() + offset; }
};

/// Returns true while autograd graph recording is enabled (default).
bool GradEnabled();

}  // namespace internal

/// RAII guard that disables autograd recording in its scope (inference mode).
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

/// Dense float tensor handle with optional gradient tracking.
class Tensor {
 public:
  /// Constructs an empty (null) tensor. Most APIs require a non-null tensor.
  Tensor() = default;

  // ---- Factories ------------------------------------------------------

  /// Zero-filled tensor.
  static Tensor Zeros(Shape shape, bool requires_grad = false);

  /// One-filled tensor.
  static Tensor Ones(Shape shape, bool requires_grad = false);

  /// Constant-filled tensor.
  static Tensor Full(Shape shape, float value, bool requires_grad = false);

  /// Tensor wrapping a copy of `values`. Size must match the shape.
  static Tensor FromVector(Shape shape, std::vector<float> values,
                           bool requires_grad = false);

  /// i.i.d. normal(0, stddev) entries.
  static Tensor Randn(Shape shape, Rng& rng, float stddev = 1.0f,
                      bool requires_grad = false);

  /// i.i.d. uniform[lo, hi) entries.
  static Tensor Rand(Shape shape, Rng& rng, float lo, float hi,
                     bool requires_grad = false);

  /// Xavier/Glorot-uniform initialised matrix [fan_in, fan_out].
  static Tensor XavierUniform(int64_t fan_in, int64_t fan_out, Rng& rng,
                              bool requires_grad = true);

  /// Identity matrix [n, n].
  static Tensor Identity(int64_t n, bool requires_grad = false);

  // ---- Introspection ---------------------------------------------------

  bool defined() const { return impl_ != nullptr; }
  const Shape& shape() const;
  int64_t dim() const { return static_cast<int64_t>(shape().size()); }
  int64_t size(int64_t d) const;
  int64_t numel() const;
  bool requires_grad() const;

  /// Strides (in elements) of this view into its storage.
  const std::vector<int64_t>& strides() const;

  /// True when this view is a dense row-major block of its storage.
  bool IsContiguous() const;

  /// Returns a tensor with the same values that is guaranteed contiguous:
  /// `*this` when already contiguous (no copy, same node), otherwise a
  /// materialised dense copy whose backward pass scatter-accumulates into
  /// this view's storage. Defined in ops.cc (it builds an autograd node).
  Tensor Contiguous() const;

  /// Direct storage access (row-major). Requires IsContiguous(); call
  /// Contiguous() first for strided views.
  float* data();
  const float* data() const;

  /// Identity of the underlying storage buffer (for aliasing checks/tests).
  const float* storage_data() const;

  /// Element access for low-dimensional tensors (bounds-checked, stride
  /// aware — works on views).
  float at(std::initializer_list<int64_t> idx) const;
  void set(std::initializer_list<int64_t> idx, float v);

  /// Copies this view's elements (in logical row-major order) to a
  /// std::vector. Works on non-contiguous views.
  std::vector<float> ToVector() const;

  /// Gradient storage; requires a completed Backward() pass (or EnsureGrad)
  /// and a contiguous view.
  const float* grad_data() const;
  float* mutable_grad_data();
  bool has_grad() const;

  /// Zero-fills the gradient buffer (allocating it if needed). Note: views
  /// share their base tensor's gradient buffer, so zeroing a view zeroes
  /// the whole underlying storage gradient.
  void ZeroGrad();

  // ---- Autograd --------------------------------------------------------

  /// Runs reverse-mode autodiff from this scalar node (numel() == 1).
  /// Accumulates into .grad of every reachable node with requires_grad.
  void Backward();

  /// Returns a graph-detached copy sharing no autograd history or storage.
  /// Storage is copied (the result is safe to mutate, even for views).
  Tensor Detach() const;

  /// Marks this tensor as a trainable leaf (requires_grad = true).
  Tensor& SetRequiresGrad(bool value);

  /// Formats shape and (for small tensors) values.
  std::string ToString() const;

  // Internal accessor for ops.
  internal::TensorImplPtr impl() const { return impl_; }
  explicit Tensor(internal::TensorImplPtr impl) : impl_(std::move(impl)) {}

 private:
  internal::TensorImplPtr impl_;
};

}  // namespace stisan
