// Differentiable tensor operations.
//
// Every function here builds an autograd node unless recording is disabled
// via NoGradGuard. Shapes are validated with STISAN_CHECK; mismatches are
// programming errors.
//
// Broadcasting: binary elementwise ops broadcast numpy-style (align shapes
// from the right; size-1 dims stretch). Gradients are reduce-summed back to
// each operand's shape.

#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace stisan {
namespace ops {

// ---- Elementwise binary (broadcasting) ----------------------------------

Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);

// ---- Scalar --------------------------------------------------------------

Tensor AddScalar(const Tensor& a, float s);
Tensor MulScalar(const Tensor& a, float s);

// ---- Unary ----------------------------------------------------------------

Tensor Neg(const Tensor& a);
Tensor Relu(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Exp(const Tensor& a);
/// Natural log. Inputs are clamped to >= 1e-12 for stability.
Tensor Log(const Tensor& a);
Tensor Sqrt(const Tensor& a);
Tensor Square(const Tensor& a);
Tensor Sin(const Tensor& a);
Tensor Cos(const Tensor& a);
/// Numerically stable log(1 + exp(x)).
Tensor Softplus(const Tensor& a);

/// Absolute value. The gradient at 0 is taken as 0.
Tensor Abs(const Tensor& a);

/// Clamps values to [lo, hi]; gradient is 1 inside, 0 outside.
Tensor Clamp(const Tensor& a, float lo, float hi);

/// Elementwise power with a scalar exponent. For non-integer exponents the
/// inputs must be positive.
Tensor PowScalar(const Tensor& a, float exponent);

// ---- Matrix ---------------------------------------------------------------

/// Matrix product. Supports [m,k]x[k,n], batched [b,m,k]x[b,k,n], and
/// broadcast [b,m,k]x[k,n] (shared right operand). A 2-D right operand that
/// is a TransposeLast2 view is consumed in place (no materialisation): the
/// kernel reads the underlying dense block with swapped strides.
Tensor MatMul(const Tensor& a, const Tensor& b);

/// Swaps the last two dimensions. Zero-copy: returns a strided view sharing
/// the input's storage. Requires dim() >= 2.
Tensor TransposeLast2(const Tensor& a);

// ---- Shape ------------------------------------------------------------------

/// Returns a tensor with the same values guaranteed dense row-major. The
/// input itself when already contiguous (no copy); otherwise a materialised
/// copy whose backward scatter-accumulates into the view's base storage.
Tensor Contiguous(const Tensor& a);

/// Reshapes; numel must match. Zero-copy view when the input is contiguous
/// (the common case); otherwise materialises a dense copy first.
Tensor Reshape(const Tensor& a, Shape new_shape);

/// Concatenates two tensors along `dim` (other dims must match).
Tensor Concat(const Tensor& a, const Tensor& b, int64_t dim);

/// Slices along `dim`, keeping indices [start, end). Zero-copy: returns a
/// strided view sharing the input's storage (contiguous when dim == 0).
Tensor Slice(const Tensor& a, int64_t dim, int64_t start, int64_t end);

/// Stacks equally-shaped tensors along a new leading dimension.
Tensor Stack0(const std::vector<Tensor>& parts);

/// Extracts sliding windows from a 2D tensor [n, d]: returns
/// [n - window + 1, window * d] rows of flattened windows (for Caser's
/// horizontal convolutions).
Tensor Unfold1D(const Tensor& a, int64_t window);

// ---- Reductions --------------------------------------------------------------

/// Sum of all elements -> scalar [1].
Tensor Sum(const Tensor& a);

/// Mean of all elements -> scalar [1].
Tensor Mean(const Tensor& a);

/// Sum over one dimension. keepdim retains a size-1 dim.
Tensor SumDim(const Tensor& a, int64_t dim, bool keepdim = false);

/// Max over one dimension (gradient routes to the argmax).
Tensor MaxDim(const Tensor& a, int64_t dim, bool keepdim = false);

/// Min over one dimension (gradient routes to the argmin).
Tensor MinDim(const Tensor& a, int64_t dim, bool keepdim = false);

/// Mean over one dimension.
Tensor MeanDim(const Tensor& a, int64_t dim, bool keepdim = false);

// ---- Neural-net specific -------------------------------------------------------

/// Softmax over the last dimension.
Tensor Softmax(const Tensor& a);

/// Log-softmax over the last dimension (numerically stable).
Tensor LogSoftmax(const Tensor& a);

/// Fused layer normalisation over the last dimension:
///   y = gamma * (x - mu) / sqrt(var + eps) + beta
/// gamma/beta have shape [d] where d is the last dim of x.
Tensor LayerNorm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                 float eps = 1e-5f);

/// Row gather: out[i, :] = weight[ids[i], :]. `weight` is [V, d].
/// Rows equal to `padding_idx` (if >= 0) produce zeros and receive no
/// gradient (the paper zero-encodes padding check-ins).
Tensor EmbeddingLookup(const Tensor& weight, const std::vector<int64_t>& ids,
                       int64_t padding_idx = -1);

/// Inverted dropout: keeps elements with prob 1-p and scales by 1/(1-p).
/// Identity when `training` is false or p == 0.
Tensor Dropout(const Tensor& a, float p, Rng& rng, bool training);

// ---- Fused attention -------------------------------------------------------

/// Options for FusedAttention. Dropout (applied to the post-softmax
/// probabilities, matching ops::Dropout's RNG stream exactly) is active only
/// when `training` and `dropout_p` > 0, and then requires `rng`.
struct FusedAttentionOptions {
  bool causal = false;
  float scale = 1.0f;
  float dropout_p = 0.0f;
  Rng* rng = nullptr;
  bool training = false;
};

/// Fused scaled-masked-softmax attention
///
///   softmax(q kᵀ · scale + causal_mask [+ bias]) v
///
/// as a single autograd node backed by kernels::FusedAttention{Forward,
/// Backward}. q: [m,d] or [b,m,d]; k/v: [n,d] or [b,n,d] (k and v may alias,
/// as in TAAD's Attn(C,F,F)); bias: undefined, [m,n], [b,m,n], or a shared
/// [m,n] broadcast over a batched q. `causal` requires m == n and is applied
/// by loop bounds — no mask tensor, no -1e9 additions. Only the attention
/// probabilities (and dropout mask) are saved for the backward. Results and
/// gradients are bit-identical to the composed op chain and deterministic
/// across thread counts.
Tensor FusedAttention(const Tensor& q, const Tensor& k, const Tensor& v,
                      const Tensor& bias, const FusedAttentionOptions& options);

/// Convenience overload without dropout.
Tensor FusedAttention(const Tensor& q, const Tensor& k, const Tensor& v,
                      const Tensor& bias, bool causal, float scale);

/// True when attention layers should lower through FusedAttention (the
/// default). STISAN_FUSED_ATTENTION=0 selects the composed reference path;
/// SetFusedAttentionEnabled overrides the environment (1 on, 0 off, -1
/// restore) for tests and benchmarks.
bool FusedAttentionEnabled();
void SetFusedAttentionEnabled(int value);

/// Fused relu(x + b) for a trailing bias vector b ([d] against x [..., d]):
/// one autograd node instead of the Add + Relu pair. Forward values,
/// gradients, and accumulation order are bit-identical to the composed
/// chain. Modules lower through this when plan::FusionEnabled().
Tensor FusedBiasRelu(const Tensor& x, const Tensor& b);

/// Fused LayerNorm(x + r): the residual-add feeding a layer norm collapses
/// into one autograd node that saves the sum (plus the per-row stats)
/// instead of materialising an intermediate graph node. Bit-identical to
/// the composed chain, including the serial backward reduction order.
Tensor FusedResidualLayerNorm(const Tensor& x, const Tensor& r,
                              const Tensor& gamma, const Tensor& beta,
                              float eps);

// ---- Int8 inference hooks ---------------------------------------------------
//
// The post-training quantization subsystem (src/quant) installs these to
// intercept inference-time work on registered frozen weights. MatMul's plain
// 2-D path (which every Linear forward lowers to, including batched [B,n,d]
// forwards flattened to 2-D) offers the hook its weight operand's storage
// pointer; EmbeddingLookup does the same for gathers. A hook returns true
// when it recognised the pointer and wrote the output itself — the fp32
// kernel is skipped. Hooks must be deterministic, must not build autograd
// state, and are expected to decline (return false) while gradients are
// enabled. Keeping the indirection here (function pointers set at runtime)
// means the tensor core never depends on the quant library.

using Int8GemmHook = bool (*)(const float* a, const float* weight_key,
                              float* c, int64_t m, int64_t k, int64_t n);
using Int8GatherHook = bool (*)(const float* weight_key, const int64_t* ids,
                                float* out, int64_t n, int64_t d,
                                int64_t padding_idx);

/// Installs (or clears, with nullptr) the hooks. Not thread-safe against
/// concurrent forwards; install once at startup before serving.
void SetInt8GemmHook(Int8GemmHook hook);
void SetInt8GatherHook(Int8GatherHook hook);

// ---- Convenience -----------------------------------------------------------------

/// Scalar loss helpers used by training code.
/// Numerically stable log(sigmoid(x)).
Tensor LogSigmoid(const Tensor& a);

}  // namespace ops

// Operator sugar (elementwise, broadcasting).
Tensor operator+(const Tensor& a, const Tensor& b);
Tensor operator-(const Tensor& a, const Tensor& b);
Tensor operator*(const Tensor& a, const Tensor& b);
Tensor operator/(const Tensor& a, const Tensor& b);
Tensor operator+(const Tensor& a, float s);
Tensor operator*(const Tensor& a, float s);
Tensor operator-(const Tensor& a);

}  // namespace stisan
