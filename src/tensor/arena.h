// Tape memory arena: a size-bucketed free-list pool for the float buffers
// behind Storage.
//
// A training step (or eval batch) allocates hundreds of short-lived tape
// temporaries whose sizes repeat exactly from step to step; without a pool
// every one is a malloc/free round-trip. The arena recycles the underlying
// std::vector<float> allocations: Release() parks a dead buffer in a
// power-of-two capacity bucket, AcquireZeroed() hands it back zero-filled to
// the next node of a compatible size.
//
// Semantics:
//  - Opt-in: pooling only happens when STISAN_ARENA=1 (or a test override
//    or a ForcedScope forces it) AND at least one arena::Scope is alive.
//    Otherwise Acquire/Release degrade to plain allocation/deallocation.
//  - Scopes bound the recycling region. Trainer::Run and eval::Evaluate each
//    install one, so buffers released by step t are reused by step t+1 and
//    the pool drains back to the allocator when the outermost scope exits
//    (nested scopes — an eval callback inside training — share the pool).
//  - Recycled buffers are zero-filled before reuse, so arena on/off is
//    bit-invisible to every computation.
//  - Thread-safe (a mutex guards the buckets); the pooled byte total is
//    capped so pathological size churn cannot hoard memory.
//
// Exact-size reservations (fed by src/plan): a captured execution plan knows
// every buffer size a step acquires. ReserveExact() pre-stocks per-size
// buckets with capacity-exact buffers so replayed steps are served entirely
// from the pool — zero allocator traffic — where the pow2 buckets alone
// would still miss on first-touch sizes and on the ceil-bucket rounding.
// Exact buckets are exempt from the pow2 byte cap (their footprint equals
// the plan's recorded peak, by construction) and are torn down by
// UnreserveExact() when the plan is evicted.

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace stisan::arena {

/// True when STISAN_ARENA=1 (or a test override / ForcedScope forces
/// pooling on).
bool Enabled();

/// True when pooling is actually happening: Enabled() and >= 1 live Scope.
bool Active();

/// Test/bench override: 1 forces pooling on, 0 forces it off, -1 restores
/// the STISAN_ARENA environment gate.
void SetEnabledForTesting(int value);

/// RAII recycle region (see file comment). Cheap; safe to nest.
class Scope {
 public:
  Scope();
  ~Scope();
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;
};

/// A Scope that additionally forces Enabled() true while alive, regardless
/// of STISAN_ARENA. plan::Scope installs one: replaying a static plan
/// requires the pool (the exact-size reservations live in it), so the plan
/// subsystem must not silently degrade when the user forgot STISAN_ARENA=1.
/// The test override still wins: SetEnabledForTesting(0) disables pooling
/// even under a ForcedScope.
class ForcedScope {
 public:
  ForcedScope();
  ~ForcedScope();
  ForcedScope(const ForcedScope&) = delete;
  ForcedScope& operator=(const ForcedScope&) = delete;
};

/// Returns a zero-filled buffer of size n, reusing a pooled allocation with
/// sufficient capacity when the arena is active. Exact-size buckets (from
/// ReserveExact) are consulted before the pow2 buckets.
std::vector<float> AcquireZeroed(size_t n);

/// AcquireZeroed wrapped in a shared_ptr whose deleter Release()s the
/// payload. Ops use this for saved-for-backward activations (dropout masks,
/// layernorm row stats, attention probabilities): a plain
/// make_shared<vector> would free the allocation on graph teardown and
/// drain the pool one buffer per step.
std::shared_ptr<std::vector<float>> AcquireSharedZeroed(size_t n);

/// Parks `buffer`'s allocation for reuse (frees it when inactive or the
/// pool byte cap is reached). A buffer whose capacity matches an
/// under-stocked exact-size reservation is filed there (cap-exempt).
void Release(std::vector<float>&& buffer);

// ---- Exact-size reservations (plan-fed) ------------------------------------

/// Registers `sizes` (element counts, duplicates = multiplicity) as wanted
/// exact buckets and stocks them: capacity-exact buffers are first scavenged
/// from the pow2 buckets, then the shortfall is reserved fresh. Requires an
/// active arena (no-op otherwise). Callers pass the alloc record of one
/// captured step; calling again accumulates (two plans may want the same
/// size).
void ReserveExact(const std::vector<size_t>& sizes);

/// Reverses one ReserveExact call: decrements the wanted counts and frees
/// any now-surplus pooled buffers.
void UnreserveExact(const std::vector<size_t>& sizes);

/// Starts recording every AcquireZeroed size (elements) while the arena is
/// active. Plan capture brackets each step with this; not reentrant — one
/// recording at a time per process.
void BeginAllocRecord();

/// Stops recording and returns the sizes in acquisition order.
std::vector<size_t> EndAllocRecord();

/// Counters for tests and benchmarks. `hits` counts acquisitions served
/// from the pow2 pool, `exact_hits` those served from exact-size
/// reservations, `misses` fresh allocations while active, `recycled` the
/// buffers parked for reuse, `dropped` releases rejected by the byte cap.
struct Stats {
  uint64_t hits = 0;
  uint64_t exact_hits = 0;
  uint64_t misses = 0;
  uint64_t recycled = 0;
  uint64_t dropped = 0;
  size_t pooled_bytes = 0;
  size_t exact_bytes = 0;
};
Stats GetStats();
void ResetStats();

}  // namespace stisan::arena
