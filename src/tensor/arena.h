// Tape memory arena: a size-bucketed free-list pool for the float buffers
// behind Storage.
//
// A training step (or eval batch) allocates hundreds of short-lived tape
// temporaries whose sizes repeat exactly from step to step; without a pool
// every one is a malloc/free round-trip. The arena recycles the underlying
// std::vector<float> allocations: Release() parks a dead buffer in a
// power-of-two capacity bucket, AcquireZeroed() hands it back zero-filled to
// the next node of a compatible size.
//
// Semantics:
//  - Opt-in: pooling only happens when STISAN_ARENA=1 (or a test override)
//    AND at least one arena::Scope is alive. Otherwise Acquire/Release
//    degrade to plain allocation/deallocation.
//  - Scopes bound the recycling region. Trainer::Run and eval::Evaluate each
//    install one, so buffers released by step t are reused by step t+1 and
//    the pool drains back to the allocator when the outermost scope exits
//    (nested scopes — an eval callback inside training — share the pool).
//  - Recycled buffers are zero-filled before reuse, so arena on/off is
//    bit-invisible to every computation.
//  - Thread-safe (a mutex guards the buckets); the pooled byte total is
//    capped so pathological size churn cannot hoard memory.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace stisan::arena {

/// True when STISAN_ARENA=1 (or a test override forces pooling on).
bool Enabled();

/// True when pooling is actually happening: Enabled() and >= 1 live Scope.
bool Active();

/// Test/bench override: 1 forces pooling on, 0 forces it off, -1 restores
/// the STISAN_ARENA environment gate.
void SetEnabledForTesting(int value);

/// RAII recycle region (see file comment). Cheap; safe to nest.
class Scope {
 public:
  Scope();
  ~Scope();
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;
};

/// Returns a zero-filled buffer of size n, reusing a pooled allocation with
/// sufficient capacity when the arena is active.
std::vector<float> AcquireZeroed(size_t n);

/// Parks `buffer`'s allocation for reuse (frees it when inactive or the
/// pool byte cap is reached).
void Release(std::vector<float>&& buffer);

/// Counters for tests and benchmarks. `hits` counts acquisitions served
/// from the pool, `misses` fresh allocations while active, `recycled` the
/// buffers parked for reuse, `dropped` releases rejected by the byte cap.
struct Stats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t recycled = 0;
  uint64_t dropped = 0;
  size_t pooled_bytes = 0;
};
Stats GetStats();
void ResetStats();

}  // namespace stisan::arena
