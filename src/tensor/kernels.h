// Central compute-kernel backend for the tensor layer.
//
// Every dense loop the autograd ops execute (matmul, batched matmul,
// softmax, layernorm, elementwise maps, embedding gather) lives here, behind
// a process-wide lazily-initialised ThreadPool. Work is dispatched with
// ParallelRanges: a job is split across the pool only when its element-count
// cost crosses kParallelMinWork (so tiny test tensors stay serial) and the
// pool has more than one thread.
//
// Determinism: parallelism is only ever over *disjoint output rows/ranges* —
// each output element is produced by exactly one thread using the same
// inner-loop accumulation order as the serial path, so results are
// bit-identical for any thread count. Cross-row reductions (ops::Sum,
// layernorm's gamma/beta grads, embedding scatter) stay serial for the same
// reason.
//
// Env knobs:
//   STISAN_NUM_THREADS    - pool size (default: hardware concurrency)
//   STISAN_PARALLEL_WORK  - min element-work before threading (default 2^15)

#pragma once

#include <cstdint>
#include <functional>

#include "util/thread_pool.h"

namespace stisan::kernels {

/// Work threshold (in "element operations") below which ParallelRanges runs
/// serially. Overridable via STISAN_PARALLEL_WORK.
int64_t ParallelMinWork();

/// The process-wide pool. Constructed on first use with STISAN_NUM_THREADS
/// threads (default: hardware concurrency).
ThreadPool& GlobalPool();

/// Number of worker threads the next dispatch will use.
int64_t NumThreads();

/// Re-sizes the global pool (0 = hardware concurrency). Intended for
/// benchmarks and tests that compare serial vs threaded execution; not safe
/// to call while kernels are executing on other threads.
void SetNumThreads(int64_t threads);

// ---- SIMD backend selection ------------------------------------------------
//
// The forward hot kernels (Gemm, BatchedGemm, SoftmaxRows, LogSoftmaxRows,
// LayerNormRows, FusedAttentionForward) have explicitly vectorized
// implementations in kernels_simd.cc (AVX2+FMA via runtime CPU detection on
// x86-64, NEON on aarch64). They are ON by default when the CPU supports
// them; STISAN_SIMD=0 is the kill switch. Backward kernels always run the
// scalar reference — the scalar path stays the bit-exactness baseline for
// training and gradcheck, and the golden-metrics harness pins it explicitly.
//
// The vector kernels keep the determinism contract above (each output
// element's reduction order depends only on the reduction length, never on
// thread partitioning), so incremental-vs-full serving identity, batched-vs-
// single eval identity, and thread-count determinism all survive SIMD. They
// are NOT bit-identical to the scalar kernels, and fused-vs-composed
// attention equivalence holds only under the scalar backend.

/// True when the next kernel call will take the vector path.
bool SimdEnabled();

/// "avx2", "neon", or "scalar" — the backend the next kernel call uses.
const char* SimdBackendName();

/// Override for tests/tools: 1 forces the vector path (if the CPU has one),
/// 0 forces scalar, -1 restores the STISAN_SIMD env-var default.
void SetSimdEnabledForTesting(int enabled);

/// Runs fn(begin, end) over a partition of [0, n). Splits across the pool
/// when n * cost_per_item >= ParallelMinWork() and more than one worker is
/// available; otherwise calls fn(0, n) inline. Safe to call from inside a
/// worker (nested calls run serially).
void ParallelRanges(int64_t n, int64_t cost_per_item,
                    const std::function<void(int64_t, int64_t)>& fn);

// ---- Dense kernels ---------------------------------------------------------
// All pointers are dense row-major blocks (callers normalise views first).

/// C[m,n] (+)= A x B with optional logical transposes. Physical layouts:
/// A is [m,k] (or [k,m] when ta), B is [k,n] (or [n,k] when tb), C is always
/// [m,n]. Parallel over rows of C.
void Gemm(const float* a, const float* b, float* c, int64_t m, int64_t k,
          int64_t n, bool ta, bool tb, bool accumulate);

/// batch x independent Gemms on contiguous [b,m,k] x [b,k,n] blocks.
/// Parallel over the batch.
void BatchedGemm(const float* a, const float* b, float* c, int64_t batch,
                 int64_t m, int64_t k, int64_t n, bool ta, bool tb,
                 bool accumulate);

/// Row-wise numerically-stable softmax: y[r,:] = softmax(x[r,:]).
void SoftmaxRows(const float* x, float* y, int64_t rows, int64_t d);

/// Accumulates the softmax backward into gx: gx += dsoftmax(y, gy).
void SoftmaxBackwardRows(const float* y, const float* gy, float* gx,
                         int64_t rows, int64_t d);

/// Row-wise log-softmax.
void LogSoftmaxRows(const float* x, float* y, int64_t rows, int64_t d);

/// Accumulates the log-softmax backward into gx (y holds log-probs).
void LogSoftmaxBackwardRows(const float* y, const float* gy, float* gx,
                            int64_t rows, int64_t d);

/// Fused layer norm forward; also writes per-row mean and inverse stddev
/// (needed by the backward pass).
void LayerNormRows(const float* x, const float* gamma, const float* beta,
                   float* y, float* mu, float* inv_sigma, int64_t rows,
                   int64_t d, float eps);

/// Row gather: out[i,:] = w[ids[i],:], zero-filled where ids[i] ==
/// padding_idx (pass a negative padding_idx to disable).
void GatherRows(const float* w, const int64_t* ids, float* out, int64_t n,
                int64_t d, int64_t padding_idx);

/// out[t] = transpose of the t-th [rows, cols] matrix in `in`.
void TransposeMats(const float* in, float* out, int64_t mats, int64_t rows,
                   int64_t cols);

// ---- Fused attention -------------------------------------------------------
//
// One-pass scaled-masked-softmax attention over dense blocks:
//
//   out = softmax(q kᵀ · scale [+ bias]) v      (optionally · dropout mask)
//
// q is [batch,m,d], k/v are [batch,n,d] (batch == 1 for the 2-D case), bias
// is [batch,m,n] or a shared [m,n] (bias_broadcast). Causality is applied
// implicitly by bounding every inner loop at column <= row — no mask tensor
// is materialised and no -1e9 additions happen. The per-element accumulation
// orders replicate the composed MatMul → MulScalar → Add → Softmax →
// (Dropout) → MatMul chain exactly: masked logits there underflow to an
// exact 0 probability which GemmRowRange skips, so the bounded loops produce
// bit-identical results, and parallelism is over disjoint output rows only
// (same determinism contract as every kernel above).

/// Forward. probs (optional, [batch,m,n]) receives the post-softmax
/// attention probabilities — the only tensor saved for the backward; pass
/// nullptr in inference to use a per-row scratch instead. drop_mask
/// (optional, [batch,m,n]) holds 0 or 1/(1-p) inverted-dropout factors
/// applied after the softmax.
void FusedAttentionForward(const float* q, const float* k, const float* v,
                           const float* bias, const float* drop_mask,
                           float* probs, float* out, int64_t batch, int64_t m,
                           int64_t n, int64_t d, bool causal, float scale,
                           bool bias_broadcast);

/// Backward. Accumulates into dq/dk/dv/dbias (any may be nullptr). gout is
/// the output gradient [batch,m,d]; probs/drop_mask are the forward's saved
/// buffers; ds is caller-provided scratch [batch,m,n] (required unless only
/// dv is wanted) that receives the unscaled pre-softmax logit gradients.
/// Runs as row-partitioned phases in the composed path's topological order —
/// dV, then dS/dbias/dQ, then dK — so results stay bit-identical to the
/// composed backward even when q/k/v alias one buffer.
void FusedAttentionBackward(const float* q, const float* k, const float* v,
                            const float* probs, const float* drop_mask,
                            const float* gout, float* dq, float* dk, float* dv,
                            float* dbias, float* ds, int64_t batch, int64_t m,
                            int64_t n, int64_t d, bool causal, float scale,
                            bool bias_broadcast);

}  // namespace stisan::kernels
