#include "tensor/optimizer.h"

#include <cmath>

#include "util/check.h"

namespace stisan {

void Optimizer::ZeroGrad() {
  for (auto& p : params_) p.ZeroGrad();
}

float Optimizer::ClipGradNorm(float max_norm) {
  double total = 0.0;
  for (auto& p : params_) {
    if (!p.has_grad()) continue;
    const float* g = p.grad_data();
    for (int64_t i = 0; i < p.numel(); ++i) total += double(g[i]) * g[i];
  }
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (auto& p : params_) {
      if (!p.has_grad()) continue;
      float* g = p.mutable_grad_data();
      for (int64_t i = 0; i < p.numel(); ++i) g[i] *= scale;
    }
  }
  return norm;
}

Sgd::Sgd(std::vector<Tensor> params, Options options)
    : Optimizer(std::move(params)), options_(options) {
  if (options_.momentum != 0.0f) {
    velocity_.reserve(params_.size());
    for (auto& p : params_)
      velocity_.emplace_back(static_cast<size_t>(p.numel()), 0.0f);
  }
}

void Sgd::Step() {
  for (size_t k = 0; k < params_.size(); ++k) {
    Tensor& p = params_[k];
    if (!p.has_grad()) continue;
    float* w = p.data();
    const float* g = p.grad_data();
    for (int64_t i = 0; i < p.numel(); ++i) {
      float grad = g[i] + options_.weight_decay * w[i];
      if (options_.momentum != 0.0f) {
        float& vel = velocity_[k][static_cast<size_t>(i)];
        vel = options_.momentum * vel + grad;
        grad = vel;
      }
      w[i] -= options_.lr * grad;
    }
  }
}

Adam::Adam(std::vector<Tensor> params, Options options)
    : Optimizer(std::move(params)), options_(options) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (auto& p : params_) {
    m_.emplace_back(static_cast<size_t>(p.numel()), 0.0f);
    v_.emplace_back(static_cast<size_t>(p.numel()), 0.0f);
  }
}

void Adam::RestoreState(int64_t step_count, std::vector<std::vector<float>> m,
                        std::vector<std::vector<float>> v) {
  STISAN_CHECK_GE(step_count, 0);
  STISAN_CHECK_EQ(m.size(), params_.size());
  STISAN_CHECK_EQ(v.size(), params_.size());
  for (size_t k = 0; k < params_.size(); ++k) {
    STISAN_CHECK_EQ(static_cast<int64_t>(m[k].size()), params_[k].numel());
    STISAN_CHECK_EQ(static_cast<int64_t>(v[k].size()), params_[k].numel());
  }
  t_ = step_count;
  m_ = std::move(m);
  v_ = std::move(v);
}

void Adam::Step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(options_.beta1, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(options_.beta2, static_cast<float>(t_));
  for (size_t k = 0; k < params_.size(); ++k) {
    Tensor& p = params_[k];
    if (!p.has_grad()) continue;
    float* w = p.data();
    const float* g = p.grad_data();
    auto& m = m_[k];
    auto& v = v_[k];
    for (int64_t i = 0; i < p.numel(); ++i) {
      const float grad = g[i] + options_.weight_decay * w[i];
      m[i] = options_.beta1 * m[i] + (1.0f - options_.beta1) * grad;
      v[i] = options_.beta2 * v[i] + (1.0f - options_.beta2) * grad * grad;
      const float mhat = m[i] / bc1;
      const float vhat = v[i] / bc2;
      w[i] -= options_.lr * mhat / (std::sqrt(vhat) + options_.eps);
    }
  }
}

}  // namespace stisan
