// Process-wide observability layer: a metrics registry of named counters,
// gauges and fixed-bucket histograms, scoped wall-time trace spans, and a
// snapshot/export path that serialises everything to a stable sorted JSON
// document or a one-line STISAN_LOG(INFO) summary.
//
// Design constraints (DESIGN.md §12):
//  - Hot paths are lock-free: Counter::Inc / Gauge::Set / Histogram::Observe
//    touch only relaxed atomics. The registry mutex is taken on name lookup
//    and snapshot only; instrument sites cache the reference once:
//
//        static obs::Counter& hits = obs::GetCounter("relation/cache_hits");
//        hits.Inc();
//
//  - Instrumentation is strictly passive. Nothing read from the registry
//    feeds back into computation, timers never enter cache keys, and metric
//    values never influence control flow — golden metrics and checkpoint
//    bytes are bit-identical with observability on, at any thread count.
//  - Callback gauges let subsystems with their own internal counters
//    (arena::Stats, LruCache hit/miss, ThreadPool task counts) be polled
//    lazily at snapshot time instead of double-counting on the hot path.
//
// Trace spans: OBS_SCOPED_TIMER("train/epoch") records the enclosing
// scope's wall time into the histogram "time/train/epoch" (seconds,
// log-spaced latency buckets) when the scope exits.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/status.h"
#include "util/stopwatch.h"

namespace stisan {
class Env;
}

namespace stisan::obs {

/// Monotonic event counter. Inc is a relaxed atomic add; concurrent
/// increments from any number of threads sum exactly.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Get() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (loss, lr, pool bytes...).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double Get() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-boundary histogram. `bounds` are inclusive upper bounds of the
/// first k buckets, strictly increasing; an implicit +inf bucket catches the
/// rest. Observe is lock-free (relaxed bucket add + CAS sum add).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Count of observations in bucket i (i == bounds().size() is +inf).
  uint64_t BucketCount(size_t i) const;
  uint64_t TotalCount() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  const std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Log-spaced latency bounds in seconds (10us .. 60s), the default for
/// timer histograms.
std::vector<double> LatencyBounds();

/// Power-of-two count bounds (1, 2, 4, ... 4096) for small-integer
/// distributions: queue depths, batch sizes, resident-session counts.
std::vector<double> CountBounds();

// ---- Registry --------------------------------------------------------------
// Named lookup creates on first use and returns a reference that stays valid
// for the process lifetime (metrics are never unregistered). Re-requesting a
// histogram ignores the bounds argument once created.

Counter& GetCounter(const std::string& name);
Gauge& GetGauge(const std::string& name);
Histogram& GetHistogram(const std::string& name,
                        const std::vector<double>& bounds = LatencyBounds());

/// Registers a gauge whose value is computed by `fn` at snapshot time.
/// Re-registering a name replaces the callback. Used by subsystems that
/// already keep internal counters (caches, arena, thread pool).
void RegisterCallbackGauge(const std::string& name,
                           std::function<double()> fn);

// ---- Trace spans -----------------------------------------------------------

/// Records the wall time between construction and destruction into a
/// histogram (seconds). Purely additive: never read back on any compute
/// path and never part of a cache key.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& hist) : hist_(hist) {}
  ~ScopedTimer() { hist_.Observe(watch_.ElapsedSeconds()); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram& hist_;
  Stopwatch watch_;
};

/// The histogram a span named `name` records into ("time/" + name).
Histogram& TimerHistogram(const std::string& name);

#define OBS_INTERNAL_CONCAT2(a, b) a##b
#define OBS_INTERNAL_CONCAT(a, b) OBS_INTERNAL_CONCAT2(a, b)

/// Times the enclosing scope into the histogram "time/<name>".
#define OBS_SCOPED_TIMER(name)                                        \
  static ::stisan::obs::Histogram& OBS_INTERNAL_CONCAT(               \
      obs_span_hist_, __LINE__) = ::stisan::obs::TimerHistogram(name); \
  ::stisan::obs::ScopedTimer OBS_INTERNAL_CONCAT(obs_span_, __LINE__)( \
      OBS_INTERNAL_CONCAT(obs_span_hist_, __LINE__))

// ---- Snapshot / export -----------------------------------------------------

/// One consistent read of the registry, taken under the registry lock.
/// Entries are sorted by name; callback gauges are evaluated at capture.
struct Snapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  struct HistogramEntry {
    std::string name;
    std::vector<double> bounds;
    std::vector<uint64_t> bucket_counts;  // bounds.size() + 1 (last = +inf)
    uint64_t count = 0;
    double sum = 0.0;
  };
  std::vector<HistogramEntry> histograms;
};

Snapshot TakeSnapshot();

/// Serialises a snapshot to a stable JSON document: top-level objects
/// "counters", "gauges" and "histograms", keys sorted, doubles at %.17g
/// (lossless round-trip).
std::string ToJson(const Snapshot& snapshot);

/// TakeSnapshot + ToJson + crash-consistent write through the io_env
/// temp+rename path. Never throws; failures come back as a Status.
Status WriteJsonAtomic(Env* env, const std::string& path);

/// One human-readable line summarising the registry (counter totals plus
/// per-span mean latencies), for STISAN_LOG(INFO).
std::string SummaryLine(const Snapshot& snapshot);

/// Zeroes every counter, gauge and histogram. Registered names and callback
/// gauges survive (callbacks poll external state the registry does not own).
/// Tests use this to isolate assertions; production code never calls it.
void ResetAllForTesting();

}  // namespace stisan::obs
