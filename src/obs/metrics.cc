#include "obs/metrics.h"

#include <algorithm>
#include <map>
#include <mutex>

#include "util/check.h"
#include "util/io_env.h"
#include "util/string_util.h"

namespace stisan::obs {

namespace {

// Leaked singleton (see RelationCache()): instrument sites hold references
// from static initialisers and callback gauges fire during late shutdown
// paths, so the registry must outlive every other static.
struct RegistryState {
  std::mutex mutex;
  // node-based maps: references handed out stay valid across inserts.
  std::map<std::string, Counter> counters;
  std::map<std::string, Gauge> gauges;
  std::map<std::string, Histogram> histograms;
  std::map<std::string, std::function<double()>> callback_gauges;
};

RegistryState& State() {
  static auto* state = new RegistryState;
  return *state;
}

void AtomicAddDouble(std::atomic<double>& target, double delta) {
  double expected = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(expected, expected + delta,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  for (size_t i = 1; i < bounds_.size(); ++i) {
    STISAN_CHECK_MSG(bounds_[i - 1] < bounds_[i],
                     "histogram bounds must be strictly increasing");
  }
}

void Histogram::Observe(double v) {
  // First bucket whose (inclusive) upper bound admits v; everything above
  // the last bound lands in the implicit +inf bucket.
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(sum_, v);
}

uint64_t Histogram::BucketCount(size_t i) const {
  STISAN_CHECK_LT(i, buckets_.size());
  return buckets_[i].load(std::memory_order_relaxed);
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> LatencyBounds() {
  return {1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0};
}

std::vector<double> CountBounds() {
  std::vector<double> bounds;
  for (double b = 1.0; b <= 4096.0; b *= 2.0) bounds.push_back(b);
  return bounds;
}

Counter& GetCounter(const std::string& name) {
  RegistryState& st = State();
  std::lock_guard<std::mutex> lock(st.mutex);
  return st.counters[name];
}

Gauge& GetGauge(const std::string& name) {
  RegistryState& st = State();
  std::lock_guard<std::mutex> lock(st.mutex);
  return st.gauges[name];
}

Histogram& GetHistogram(const std::string& name,
                        const std::vector<double>& bounds) {
  RegistryState& st = State();
  std::lock_guard<std::mutex> lock(st.mutex);
  // try_emplace constructs the Histogram in place: atomics are not movable.
  return st.histograms.try_emplace(name, bounds).first->second;
}

void RegisterCallbackGauge(const std::string& name,
                           std::function<double()> fn) {
  RegistryState& st = State();
  std::lock_guard<std::mutex> lock(st.mutex);
  st.callback_gauges[name] = std::move(fn);
}

Histogram& TimerHistogram(const std::string& name) {
  return GetHistogram("time/" + name, LatencyBounds());
}

Snapshot TakeSnapshot() {
  RegistryState& st = State();
  Snapshot snap;
  // Callbacks run outside the registry lock: they read other subsystems'
  // state (caches, pools) whose accessors may take their own locks, and
  // must be free to call GetCounter etc. themselves.
  std::vector<std::pair<std::string, std::function<double()>>> callbacks;
  {
    std::lock_guard<std::mutex> lock(st.mutex);
    for (const auto& [name, counter] : st.counters) {
      snap.counters.emplace_back(name, counter.Get());
    }
    for (const auto& [name, gauge] : st.gauges) {
      snap.gauges.emplace_back(name, gauge.Get());
    }
    for (const auto& [name, hist] : st.histograms) {
      Snapshot::HistogramEntry entry;
      entry.name = name;
      entry.bounds = hist.bounds();
      entry.bucket_counts.reserve(entry.bounds.size() + 1);
      for (size_t i = 0; i <= entry.bounds.size(); ++i) {
        entry.bucket_counts.push_back(hist.BucketCount(i));
      }
      entry.count = hist.TotalCount();
      entry.sum = hist.Sum();
      snap.histograms.push_back(std::move(entry));
    }
    for (const auto& [name, fn] : st.callback_gauges) {
      callbacks.emplace_back(name, fn);
    }
  }
  for (const auto& [name, fn] : callbacks) {
    snap.gauges.emplace_back(name, fn());
  }
  std::sort(snap.gauges.begin(), snap.gauges.end());
  return snap;
}

namespace {

std::string JsonDouble(double v) {
  // %.17g round-trips doubles exactly, matching the golden-metrics
  // convention; non-finite values are not valid JSON numbers.
  if (v != v) return "\"nan\"";
  if (v > 1.7976931348623157e308) return "\"inf\"";
  if (v < -1.7976931348623157e308) return "\"-inf\"";
  return StrFormat("%.17g", v);
}

}  // namespace

std::string ToJson(const Snapshot& snapshot) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += StrFormat("    \"%s\": %llu", name.c_str(),
                     static_cast<unsigned long long>(value));
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += StrFormat("    \"%s\": %s", name.c_str(), JsonDouble(value).c_str());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& hist : snapshot.histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += StrFormat("    \"%s\": {\"count\": %llu, \"sum\": %s, ",
                     hist.name.c_str(),
                     static_cast<unsigned long long>(hist.count),
                     JsonDouble(hist.sum).c_str());
    out += "\"bounds\": [";
    for (size_t i = 0; i < hist.bounds.size(); ++i) {
      if (i > 0) out += ", ";
      out += JsonDouble(hist.bounds[i]);
    }
    out += "], \"buckets\": [";
    for (size_t i = 0; i < hist.bucket_counts.size(); ++i) {
      if (i > 0) out += ", ";
      out += StrFormat("%llu",
                       static_cast<unsigned long long>(hist.bucket_counts[i]));
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

Status WriteJsonAtomic(Env* env, const std::string& path) {
  if (env == nullptr) env = Env::Default();
  return WriteFileAtomic(env, path, ToJson(TakeSnapshot()));
}

std::string SummaryLine(const Snapshot& snapshot) {
  std::string out = StrFormat(
      "obs: %zu counters, %zu gauges, %zu histograms",
      snapshot.counters.size(), snapshot.gauges.size(),
      snapshot.histograms.size());
  for (const auto& [name, value] : snapshot.counters) {
    out += StrFormat(" | %s=%llu", name.c_str(),
                     static_cast<unsigned long long>(value));
  }
  for (const auto& hist : snapshot.histograms) {
    if (hist.count == 0) continue;
    out += StrFormat(" | %s: n=%llu mean=%.3gs", hist.name.c_str(),
                     static_cast<unsigned long long>(hist.count),
                     hist.sum / double(hist.count));
  }
  return out;
}

void ResetAllForTesting() {
  RegistryState& st = State();
  std::lock_guard<std::mutex> lock(st.mutex);
  for (auto& [name, counter] : st.counters) counter.Reset();
  for (auto& [name, gauge] : st.gauges) gauge.Reset();
  for (auto& [name, hist] : st.histograms) hist.Reset();
}

}  // namespace stisan::obs
