#include "nn/module.h"

#include <algorithm>

#include "util/serialize.h"
#include "util/string_util.h"

namespace stisan::nn {

namespace {
constexpr uint64_t kCheckpointMagic = 0x53544953414e4d31ull;  // "STISANM1"
}  // namespace

std::vector<Tensor> Module::Parameters() const {
  std::vector<Tensor> out = params_;
  for (const Module* child : children_) {
    auto sub = child->Parameters();
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

void Module::SetTraining(bool training) {
  training_ = training;
  for (Module* child : children_) child->SetTraining(training);
}

Tensor Module::RegisterParameter(Tensor t) {
  t.SetRequiresGrad(true);
  params_.push_back(t);
  return t;
}

void Module::RegisterModule(Module* child) { children_.push_back(child); }

Status Module::SaveParameters(const std::string& path) const {
  BinaryWriter writer(path);
  const auto params = Parameters();
  writer.WriteU64(kCheckpointMagic);
  writer.WriteU64(params.size());
  for (const Tensor& p : params) {
    writer.WriteInt64Vector(p.shape());
    writer.WriteFloatVector(p.ToVector());
  }
  return writer.Finish();
}

Status Module::LoadParameters(const std::string& path) {
  BinaryReader reader(path);
  STISAN_ASSIGN_OR_RETURN(uint64_t magic, reader.ReadU64());
  if (magic != kCheckpointMagic) {
    return Status::InvalidArgument("not a STiSAN checkpoint: " + path);
  }
  auto params = Parameters();
  STISAN_ASSIGN_OR_RETURN(uint64_t count, reader.ReadU64());
  if (count != params.size()) {
    return Status::InvalidArgument(StrFormat(
        "checkpoint has %llu parameters, module expects %zu",
        static_cast<unsigned long long>(count), params.size()));
  }
  for (Tensor& p : params) {
    STISAN_ASSIGN_OR_RETURN(std::vector<int64_t> shape,
                            reader.ReadInt64Vector());
    if (shape != p.shape()) {
      return Status::InvalidArgument(
          "checkpoint shape mismatch: expected " + ShapeToString(p.shape()) +
          " got " + ShapeToString(shape));
    }
    STISAN_ASSIGN_OR_RETURN(std::vector<float> values,
                            reader.ReadFloatVector());
    if (static_cast<int64_t>(values.size()) != p.numel()) {
      return Status::InvalidArgument("checkpoint value count mismatch");
    }
    std::copy(values.begin(), values.end(), p.data());
  }
  return Status::OK();
}

}  // namespace stisan::nn
