#include "nn/module.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/io_env.h"
#include "util/serialize.h"
#include "util/string_util.h"

namespace stisan::nn {

namespace {
// Legacy format: raw record stream, no fingerprint, no checksum.
constexpr uint64_t kLegacyCheckpointMagic = 0x53544953414e4d31ull;  // "STISANM1"
// Current format: CRC-protected envelope with a config fingerprint.
constexpr uint64_t kCheckpointMagic = 0x53544953414e4d32ull;  // "STISANM2"
constexpr uint64_t kCheckpointVersion = 1;
}  // namespace

std::vector<Tensor> Module::Parameters() const {
  std::vector<Tensor> out = params_;
  for (const Module* child : children_) {
    auto sub = child->Parameters();
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

void Module::SetTraining(bool training) {
  if (training_.load(std::memory_order_relaxed) != training) {
    training_.store(training, std::memory_order_relaxed);
  }
  for (Module* child : children_) child->SetTraining(training);
}

Tensor Module::RegisterParameter(Tensor t) {
  t.SetRequiresGrad(true);
  params_.push_back(t);
  return t;
}

void Module::RegisterModule(Module* child) { children_.push_back(child); }

Status Module::SaveParameters(const std::string& path,
                              const std::string& fingerprint,
                              Env* env) const {
  OBS_SCOPED_TIMER("checkpoint/model_save");
  if (env == nullptr) env = Env::Default();
  const auto params = Parameters();
  std::string payload;
  BinaryWriter writer(&payload);
  writer.WriteString(fingerprint);
  writer.WriteU64(params.size());
  for (const Tensor& p : params) {
    writer.WriteInt64Vector(p.shape());
    writer.WriteFloatVector(p.ToVector());
  }
  STISAN_RETURN_IF_ERROR(writer.Finish());
  static obs::Counter& saves = obs::GetCounter("checkpoint/model_saves");
  static obs::Counter& bytes =
      obs::GetCounter("checkpoint/model_save_bytes");
  saves.Inc();
  bytes.Inc(payload.size());
  return WriteEnvelopeFile(env, path, kCheckpointMagic, kCheckpointVersion,
                           payload);
}

namespace {

Status LoadInto(BinaryReader& reader, std::vector<Tensor>& params) {
  STISAN_ASSIGN_OR_RETURN(uint64_t count, reader.ReadU64());
  if (count != params.size()) {
    return Status::InvalidArgument(StrFormat(
        "checkpoint has %llu parameters, module expects %zu",
        static_cast<unsigned long long>(count), params.size()));
  }
  // Parse everything before touching the module so a corrupt record can
  // never leave the parameters half-loaded.
  std::vector<std::vector<float>> values(params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    Tensor& p = params[i];
    STISAN_ASSIGN_OR_RETURN(std::vector<int64_t> shape,
                            reader.ReadInt64Vector());
    if (shape != p.shape()) {
      return Status::InvalidArgument(
          "checkpoint shape mismatch: expected " + ShapeToString(p.shape()) +
          " got " + ShapeToString(shape));
    }
    STISAN_ASSIGN_OR_RETURN(values[i], reader.ReadFloatVector());
    if (static_cast<int64_t>(values[i].size()) != p.numel()) {
      return Status::InvalidArgument("checkpoint value count mismatch");
    }
  }
  for (size_t i = 0; i < params.size(); ++i) {
    std::copy(values[i].begin(), values[i].end(), params[i].data());
  }
  return Status::OK();
}

}  // namespace

Status Module::LoadParameters(const std::string& path,
                              const std::string& expected_fingerprint,
                              Env* env) {
  OBS_SCOPED_TIMER("checkpoint/model_load");
  static obs::Counter& loads = obs::GetCounter("checkpoint/model_loads");
  static obs::Counter& bytes =
      obs::GetCounter("checkpoint/model_load_bytes");
  loads.Inc();
  if (env == nullptr) env = Env::Default();
  auto params = Parameters();

  STISAN_ASSIGN_OR_RETURN(uint64_t magic, PeekFileMagic(env, path));
  if (magic == kLegacyCheckpointMagic) {
    // Legacy stream: no fingerprint or CRC to verify.
    BinaryReader reader(path, env);
    STISAN_RETURN_IF_ERROR(reader.status());
    STISAN_ASSIGN_OR_RETURN(uint64_t got, reader.ReadU64());
    (void)got;
    return LoadInto(reader, params);
  }
  if (magic != kCheckpointMagic) {
    return Status::InvalidArgument("not a STiSAN checkpoint: " + path);
  }

  STISAN_ASSIGN_OR_RETURN(
      std::string payload,
      ReadEnvelopeFile(env, path, kCheckpointMagic, kCheckpointVersion,
                       kCheckpointVersion));
  bytes.Inc(payload.size());
  BinaryReader reader = BinaryReader::FromBuffer(std::move(payload));
  STISAN_ASSIGN_OR_RETURN(std::string fingerprint, reader.ReadString());
  if (!expected_fingerprint.empty() && !fingerprint.empty() &&
      fingerprint != expected_fingerprint) {
    return Status::FailedPrecondition(
        "checkpoint config mismatch: checkpoint was saved with [" +
        fingerprint + "], this model is configured with [" +
        expected_fingerprint + "]");
  }
  return LoadInto(reader, params);
}

}  // namespace stisan::nn
