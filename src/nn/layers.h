// Core feed-forward layers: Linear, Embedding, LayerNorm, dropout wrapper,
// point-wise feed-forward network, and positional encodings.

#pragma once

#include <vector>

#include "nn/module.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace stisan::nn {

/// Fully-connected layer y = xW + b. Accepts [*, in] inputs.
class Linear : public Module {
 public:
  /// `zero_init` starts the weight at zero (ReZero/skip-init style) so a
  /// residual branch contributes nothing until training grows it.
  Linear(int64_t in_features, int64_t out_features, Rng& rng,
         bool bias = true, bool zero_init = false);

  Tensor Forward(const Tensor& x) const;

  /// relu(Forward(x)): lowers through ops::FusedBiasRelu (one node) when
  /// plan::FusionEnabled(), otherwise the composed MatMul + Add + Relu
  /// chain. Both paths are bit-identical.
  Tensor ForwardRelu(const Tensor& x) const;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  Tensor weight_;  // [in, out]
  Tensor bias_;    // [out] or undefined
};

/// Token embedding table with optional zero-encoded padding index.
class Embedding : public Module {
 public:
  Embedding(int64_t vocab_size, int64_t dim, Rng& rng,
            int64_t padding_idx = -1);

  /// Looks up rows: [ids.size(), dim].
  Tensor Forward(const std::vector<int64_t>& ids) const;

  const Tensor& weight() const { return weight_; }
  int64_t vocab_size() const { return weight_.size(0); }
  int64_t dim() const { return weight_.size(1); }

 private:
  Tensor weight_;
  int64_t padding_idx_;
};

/// Layer normalisation over the last dimension with learned affine (eq. 9).
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int64_t dim, float eps = 1e-5f);

  Tensor Forward(const Tensor& x) const;

  /// Forward(base + residual): lowers through ops::FusedResidualLayerNorm
  /// (one node) when plan::FusionEnabled(), otherwise the composed Add +
  /// LayerNorm chain. Both paths are bit-identical.
  Tensor ForwardResidual(const Tensor& base, const Tensor& residual) const;

 private:
  Tensor gamma_;
  Tensor beta_;
  float eps_;
};

/// Dropout respecting the module training flag.
class Dropout : public Module {
 public:
  explicit Dropout(float p) : p_(p) {}

  Tensor Forward(const Tensor& x, Rng& rng) const {
    return ops::Dropout(x, p_, rng, training());
  }

  float p() const { return p_; }

 private:
  float p_;
};

/// Two-layer point-wise feed-forward network (paper eq. 7):
///   F = max(0, A W1 + b1) W2 + b2,  with hidden dim d_h > d.
class PointwiseFeedForward : public Module {
 public:
  /// `zero_init_output` zeroes the second projection so the FFN residual
  /// branch starts inert.
  PointwiseFeedForward(int64_t dim, int64_t hidden_dim, float dropout,
                       Rng& rng, bool zero_init_output = false);

  Tensor Forward(const Tensor& x, Rng& rng) const;

 private:
  Linear fc1_;
  Linear fc2_;
  Dropout dropout_;
};

/// Fixed sinusoidal positional encoding (Vaswani et al.): builds the [n, d]
/// matrix for arbitrary (possibly fractional) positions. This is the shared
/// primitive behind both the vanilla PE and the paper's TAPE.
///
/// PE(pos, 2i)   = sin(pos / 10000^(2i/d))
/// PE(pos, 2i+1) = cos(pos / 10000^(2i/d))
Tensor SinusoidalEncoding(const std::vector<double>& positions, int64_t dim);

/// Vanilla positional encoding for integer positions 1..n.
Tensor VanillaPositionalEncoding(int64_t n, int64_t dim);

/// Learned absolute positional embedding (Bert4Rec-style).
class LearnedPositionalEmbedding : public Module {
 public:
  LearnedPositionalEmbedding(int64_t max_len, int64_t dim, Rng& rng);

  /// Returns the [n, dim] slice for positions 0..n-1.
  Tensor Forward(int64_t n) const;

 private:
  Tensor weight_;  // [max_len, dim]
};

}  // namespace stisan::nn
