// Analytic floating-point-operation counts for the complexity comparison in
// the paper's Table VI. Counts follow the usual convention of 2 FLOPs per
// multiply-accumulate.

#pragma once

#include <cstdint>

namespace stisan::nn {

/// FLOPs of a dense layer mapping [m, k] -> [m, n].
int64_t LinearFlops(int64_t m, int64_t k, int64_t n);

/// FLOPs of one single-head self-attention layer over an [n, d] sequence:
/// QKV projections, Q K^T, softmax, attention-weighted sum.
int64_t SelfAttentionFlops(int64_t n, int64_t d);

/// FLOPs of the two-layer point-wise feed-forward network (hidden d_h).
int64_t FeedForwardFlops(int64_t n, int64_t d, int64_t d_hidden);

/// FLOPs of one vanilla self-attention block (attention + FFN + 2 layernorm).
int64_t SaBlockFlops(int64_t n, int64_t d, int64_t d_hidden);

/// FLOPs of one Interval Aware Attention Block: the SA block plus the
/// point-wise addition of the softmax-scaled relation matrix. The paper's
/// point is that the increment is negligible.
int64_t IaabBlockFlops(int64_t n, int64_t d, int64_t d_hidden);

/// FLOPs of LayerNorm over [n, d].
int64_t LayerNormFlops(int64_t n, int64_t d);

}  // namespace stisan::nn
