// Caser-style convolution block (Tang & Wang, WSDM 2018): horizontal
// filters of several heights with max-over-time pooling, plus vertical
// filters aggregating over the time axis.

#pragma once

#include <memory>
#include <vector>

#include "nn/layers.h"
#include "nn/module.h"

namespace stisan::nn {

/// Convolutional sequence encoder over an [n, d] embedded sequence.
///
/// Horizontal: for each height h in `heights`, `filters_per_height` filters
/// of shape [h, d] slide over time; ReLU + max-over-time pooling yields
/// `filters_per_height` features per height.
/// Vertical: `vertical_filters` filters of shape [n, 1] compute weighted
/// sums over time per embedding dimension, yielding vertical_filters * d
/// features.
/// The concatenated feature vector is projected back to `out_dim`.
class CaserConv : public Module {
 public:
  CaserConv(int64_t seq_len, int64_t dim, std::vector<int64_t> heights,
            int64_t filters_per_height, int64_t vertical_filters,
            int64_t out_dim, float dropout, Rng& rng);

  /// x: [seq_len, dim] -> [1, out_dim].
  Tensor Forward(const Tensor& x, Rng& rng) const;

 private:
  int64_t seq_len_;
  int64_t dim_;
  std::vector<int64_t> heights_;
  std::vector<std::unique_ptr<Linear>> horizontal_;  // one per height
  Tensor vertical_;                                  // [vertical_filters, n]
  std::unique_ptr<Linear> out_;
  Dropout dropout_;
};

}  // namespace stisan::nn
