#include "nn/layers.h"

#include <cmath>

#include "plan/plan.h"

namespace stisan::nn {

Linear::Linear(int64_t in_features, int64_t out_features, Rng& rng, bool bias,
               bool zero_init)
    : in_features_(in_features), out_features_(out_features) {
  weight_ = RegisterParameter(
      zero_init ? Tensor::Zeros({in_features, out_features})
                : Tensor::XavierUniform(in_features, out_features, rng));
  if (bias) {
    bias_ = RegisterParameter(Tensor::Zeros({out_features}));
  }
}

Tensor Linear::Forward(const Tensor& x) const {
  STISAN_CHECK_EQ(x.shape().back(), in_features_);
  Tensor out = ops::MatMul(x, weight_);
  if (bias_.defined()) out = out + bias_;
  return out;
}

Tensor Linear::ForwardRelu(const Tensor& x) const {
  STISAN_CHECK_EQ(x.shape().back(), in_features_);
  Tensor out = ops::MatMul(x, weight_);
  if (bias_.defined()) {
    if (plan::FusionEnabled()) return ops::FusedBiasRelu(out, bias_);
    out = out + bias_;
  }
  return ops::Relu(out);
}

Embedding::Embedding(int64_t vocab_size, int64_t dim, Rng& rng,
                     int64_t padding_idx)
    : padding_idx_(padding_idx) {
  // Normal(0, 1/sqrt(d)) initialisation keeps dot products O(1).
  weight_ = RegisterParameter(
      Tensor::Randn({vocab_size, dim}, rng, 1.0f / std::sqrt(float(dim))));
  if (padding_idx_ >= 0) {
    // Zero the padding row so eval-time lookups of padding are exact zeros.
    float* w = weight_.data();
    for (int64_t j = 0; j < dim; ++j) w[padding_idx_ * dim + j] = 0.0f;
  }
}

Tensor Embedding::Forward(const std::vector<int64_t>& ids) const {
  return ops::EmbeddingLookup(weight_, ids, padding_idx_);
}

LayerNorm::LayerNorm(int64_t dim, float eps) : eps_(eps) {
  gamma_ = RegisterParameter(Tensor::Ones({dim}));
  beta_ = RegisterParameter(Tensor::Zeros({dim}));
}

Tensor LayerNorm::Forward(const Tensor& x) const {
  return ops::LayerNorm(x, gamma_, beta_, eps_);
}

Tensor LayerNorm::ForwardResidual(const Tensor& base,
                                  const Tensor& residual) const {
  if (plan::FusionEnabled()) {
    return ops::FusedResidualLayerNorm(base, residual, gamma_, beta_, eps_);
  }
  return Forward(base + residual);
}

PointwiseFeedForward::PointwiseFeedForward(int64_t dim, int64_t hidden_dim,
                                           float dropout, Rng& rng,
                                           bool zero_init_output)
    : fc1_(dim, hidden_dim, rng),
      fc2_(hidden_dim, dim, rng, /*bias=*/true, zero_init_output),
      dropout_(dropout) {
  STISAN_CHECK_GT(hidden_dim, dim);  // paper: d_h > d
  RegisterModule(&fc1_);
  RegisterModule(&fc2_);
  RegisterModule(&dropout_);
}

Tensor PointwiseFeedForward::Forward(const Tensor& x, Rng& rng) const {
  Tensor h = fc1_.ForwardRelu(x);
  h = dropout_.Forward(h, rng);
  return fc2_.Forward(h);
}

Tensor SinusoidalEncoding(const std::vector<double>& positions, int64_t dim) {
  STISAN_CHECK_GT(dim, 0);
  STISAN_CHECK_EQ(dim % 2, 0);
  const int64_t n = static_cast<int64_t>(positions.size());
  Tensor out = Tensor::Zeros({n, dim});
  float* od = out.data();
  // div_term[i] = exp(-log(10000) * 2i / d), matching Algorithm 1.
  for (int64_t k = 0; k < n; ++k) {
    const double pos = positions[static_cast<size_t>(k)];
    for (int64_t i = 0; i < dim / 2; ++i) {
      const double div =
          std::exp(-std::log(10000.0) * double(2 * i) / double(dim));
      od[k * dim + 2 * i] = static_cast<float>(std::sin(pos * div));
      od[k * dim + 2 * i + 1] = static_cast<float>(std::cos(pos * div));
    }
  }
  return out;
}

Tensor VanillaPositionalEncoding(int64_t n, int64_t dim) {
  std::vector<double> pos(static_cast<size_t>(n));
  for (int64_t k = 0; k < n; ++k) pos[static_cast<size_t>(k)] = double(k + 1);
  return SinusoidalEncoding(pos, dim);
}

LearnedPositionalEmbedding::LearnedPositionalEmbedding(int64_t max_len,
                                                       int64_t dim, Rng& rng) {
  weight_ = RegisterParameter(
      Tensor::Randn({max_len, dim}, rng, 1.0f / std::sqrt(float(dim))));
}

Tensor LearnedPositionalEmbedding::Forward(int64_t n) const {
  STISAN_CHECK_LE(n, weight_.size(0));
  // Zero-copy view of the parameter's first n rows; gradients accumulate
  // straight into the parameter's buffer (views share grad storage).
  return ops::Slice(weight_, 0, 0, n);
}

}  // namespace stisan::nn
