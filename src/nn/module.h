// Module base class: parameter registration and train/eval mode.

#pragma once

#include <atomic>
#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "util/status.h"

namespace stisan {
class Env;
}

namespace stisan::nn {

/// Base class for layers and models.
///
/// Subclasses register their trainable tensors with RegisterParameter and
/// their sub-layers with RegisterModule; Parameters() then yields the full
/// recursive list for the optimizer. Training mode propagates to children
/// (affects dropout).
class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All trainable parameters of this module and its children.
  std::vector<Tensor> Parameters() const;

  /// Switches between training (dropout active) and eval mode. Safe to
  /// call concurrently with forward passes on other threads: the flag is
  /// a relaxed atomic and the write is skipped when the mode already
  /// matches, so a frozen model's eval-mode Score calls never write
  /// shared state (the serving runtime relies on this).
  void SetTraining(bool training);
  bool training() const { return training_.load(std::memory_order_relaxed); }

  /// Writes all parameters (recursively, in registration order) to a
  /// versioned, CRC-protected checkpoint file, written atomically (temp
  /// file + fsync + rename). `fingerprint` is an opaque model-config
  /// string stored alongside the weights; LoadParameters refuses a
  /// checkpoint whose fingerprint differs from the one it expects.
  /// `env` defaults to Env::Default().
  Status SaveParameters(const std::string& path,
                        const std::string& fingerprint = "",
                        Env* env = nullptr) const;

  /// Restores parameters from a checkpoint produced by SaveParameters on a
  /// structurally identical module (same parameter count and shapes).
  /// If `expected_fingerprint` and the stored fingerprint are both
  /// non-empty and differ, fails with FailedPrecondition naming both.
  /// Also reads the legacy (pre-fingerprint, un-checksummed) format.
  Status LoadParameters(const std::string& path,
                        const std::string& expected_fingerprint = "",
                        Env* env = nullptr);

 protected:
  /// Registers and returns a trainable tensor.
  Tensor RegisterParameter(Tensor t);

  /// Registers a child module (non-owning; child must outlive this).
  void RegisterModule(Module* child);

 private:
  std::vector<Tensor> params_;
  std::vector<Module*> children_;
  std::atomic<bool> training_{true};
};

}  // namespace stisan::nn
