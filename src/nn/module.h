// Module base class: parameter registration and train/eval mode.

#pragma once

#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "util/status.h"

namespace stisan::nn {

/// Base class for layers and models.
///
/// Subclasses register their trainable tensors with RegisterParameter and
/// their sub-layers with RegisterModule; Parameters() then yields the full
/// recursive list for the optimizer. Training mode propagates to children
/// (affects dropout).
class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All trainable parameters of this module and its children.
  std::vector<Tensor> Parameters() const;

  /// Switches between training (dropout active) and eval mode.
  void SetTraining(bool training);
  bool training() const { return training_; }

  /// Writes all parameters (recursively, in registration order) to a
  /// binary checkpoint file.
  Status SaveParameters(const std::string& path) const;

  /// Restores parameters from a checkpoint produced by SaveParameters on a
  /// structurally identical module (same parameter count and shapes).
  Status LoadParameters(const std::string& path);

 protected:
  /// Registers and returns a trainable tensor.
  Tensor RegisterParameter(Tensor t);

  /// Registers a child module (non-owning; child must outlive this).
  void RegisterModule(Module* child);

 private:
  std::vector<Tensor> params_;
  std::vector<Module*> children_;
  bool training_ = true;
};

}  // namespace stisan::nn
