#include "nn/attention.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <unordered_map>

namespace stisan::nn {

Tensor BuildCausalMask(int64_t n) {
  // Memoised per length: the mask content depends only on n and is
  // gradient-free, so every forward of the composed path can share one
  // tensor instead of re-materialising O(n²) floats.
  static std::mutex mu;
  static auto* cache = new std::unordered_map<int64_t, Tensor>();
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache->find(n);
  if (it != cache->end()) return it->second;
  Tensor mask = Tensor::Zeros({n, n});
  float* m = mask.data();
  for (int64_t i = 0; i < n; ++i)
    for (int64_t j = i + 1; j < n; ++j) m[i * n + j] = -1e9f;
  cache->emplace(n, mask);
  return mask;
}

CausalSelfAttention::CausalSelfAttention(int64_t dim, float dropout, Rng& rng,
                                         bool causal,
                                         bool identity_init_values,
                                         int64_t num_heads)
    : dim_(dim),
      num_heads_(num_heads),
      causal_(causal),
      wq_(dim, dim, rng, /*bias=*/false),
      wk_(dim, dim, rng, /*bias=*/false),
      wv_(dim, dim, rng, /*bias=*/false),
      dropout_(dropout) {
  STISAN_CHECK_GE(num_heads, 1);
  STISAN_CHECK_EQ(dim % num_heads, 0);
  if (identity_init_values) {
    Tensor w = wv_.Parameters()[0];
    const Tensor id = Tensor::Identity(dim);
    std::copy(id.data(), id.data() + id.numel(), w.data());
  }
  RegisterModule(&wq_);
  RegisterModule(&wk_);
  RegisterModule(&wv_);
  RegisterModule(&dropout_);
}

Tensor CausalSelfAttention::HeadAttention(const Tensor& q, const Tensor& k,
                                          const Tensor& v, const Tensor& bias,
                                          int64_t n, Rng& rng,
                                          bool with_dropout) const {
  // The softmax scale uses the head width (last dim) for any rank.
  const int64_t dk = q.shape().back();
  const float scale = 1.0f / std::sqrt(float(dk));
  if (bias.defined()) {
    STISAN_CHECK(bias.shape() == (Shape{n, n}) ||
                 (bias.dim() == q.dim() && bias.size(-2) == n &&
                  bias.size(-1) == n));
  }
  if (ops::FusedAttentionEnabled()) {
    // Single node: causality via loop bounds, bias added inside the fused
    // logit pass, dropout drawn from the same RNG stream as ops::Dropout.
    ops::FusedAttentionOptions options;
    options.causal = causal_;
    options.scale = scale;
    if (with_dropout) {
      options.dropout_p = dropout_.p();
      options.rng = &rng;
      options.training = dropout_.training();
    }
    return ops::FusedAttention(q, k, v, bias, options);
  }
  // Composed reference path (STISAN_FUSED_ATTENTION=0): TransposeLast2
  // yields a zero-copy view; when k is a contiguous matrix MatMul consumes
  // it in place through the fused transposed-GEMM path.
  Tensor logits = ops::MulScalar(ops::MatMul(q, ops::TransposeLast2(k)),
                                 scale);
  if (causal_) logits = logits + BuildCausalMask(n);
  if (bias.defined()) {
    // [n, n] biases broadcast over the batch of [b, n, n] logits.
    logits = logits + bias;
  }
  Tensor att = ops::Softmax(logits);
  if (with_dropout) att = dropout_.Forward(att, rng);
  return ops::MatMul(att, v);
}

Tensor CausalSelfAttention::Forward(const Tensor& x, const Tensor& bias,
                                    Rng& rng) const {
  // Accepts [n, d] or a padded batch [b, n, d]; per-sequence rows go
  // through the exact same row-wise kernels, so a batched forward scores
  // each sequence identically to its single-sequence forward.
  STISAN_CHECK_GE(x.dim(), 2);
  const int64_t n = x.size(x.dim() - 2);
  STISAN_CHECK_EQ(x.shape().back(), dim_);
  Tensor q = wq_.Forward(x);
  Tensor k = wk_.Forward(x);
  Tensor v = wv_.Forward(x);
  if (num_heads_ == 1) {
    return HeadAttention(q, k, v, bias, n, rng, /*with_dropout=*/true);
  }
  // Multi-head: slice the last dim into head-sized columns (zero-copy
  // strided views over q/k/v), attend per head, concatenate. The additive
  // bias is shared across heads.
  const int64_t dk = dim_ / num_heads_;
  const int64_t last = x.dim() - 1;
  Tensor out;
  for (int64_t h = 0; h < num_heads_; ++h) {
    Tensor head = HeadAttention(
        ops::Slice(q, last, h * dk, (h + 1) * dk),
        ops::Slice(k, last, h * dk, (h + 1) * dk),
        ops::Slice(v, last, h * dk, (h + 1) * dk), bias, n, rng,
        /*with_dropout=*/true);
    out = out.defined() ? ops::Concat(out, head, last) : head;
  }
  return out;
}

Tensor CausalSelfAttention::AttentionMap(const Tensor& x,
                                         const Tensor& bias) const {
  // Probe uses the first head's map (identical to the full map when
  // single-head). Stays on the composed ops: the fused kernel deliberately
  // never materialises the probability matrix as a tensor.
  const int64_t n = x.size(0);
  const int64_t dk = dim_ / num_heads_;
  Tensor q = ops::Slice(wq_.Forward(x), 1, 0, dk);
  Tensor k = ops::Slice(wk_.Forward(x), 1, 0, dk);
  Tensor logits = ops::MulScalar(ops::MatMul(q, ops::TransposeLast2(k)),
                                 1.0f / std::sqrt(float(dk)));
  if (causal_) logits = logits + BuildCausalMask(n);
  if (bias.defined()) logits = logits + bias;
  return ops::Softmax(logits);
}

Tensor CrossAttention::Forward(const Tensor& queries,
                               const Tensor& keys_values,
                               const Tensor& mask) const {
  STISAN_CHECK_EQ(queries.size(1), dim_);
  STISAN_CHECK_EQ(keys_values.size(1), dim_);
  const float scale = 1.0f / std::sqrt(float(dim_));
  if (ops::FusedAttentionEnabled()) {
    // Attn(C, F, F): keys and values alias one buffer; the fused backward's
    // phase order (dV before dK) matches the composed tape.
    return ops::FusedAttention(queries, keys_values, keys_values, mask,
                               /*causal=*/false, scale);
  }
  Tensor logits = ops::MulScalar(
      ops::MatMul(queries, ops::TransposeLast2(keys_values)), scale);
  if (mask.defined()) {
    STISAN_CHECK(mask.shape() == logits.shape());
    logits = logits + mask;
  }
  Tensor att = ops::Softmax(logits);
  return ops::MatMul(att, keys_values);
}

}  // namespace stisan::nn
