#include "nn/recurrent.h"

namespace stisan::nn {

GruCell::GruCell(int64_t input_dim, int64_t hidden_dim, Rng& rng)
    : hidden_dim_(hidden_dim),
      xr_(input_dim, hidden_dim, rng), hr_(hidden_dim, hidden_dim, rng, false),
      xz_(input_dim, hidden_dim, rng), hz_(hidden_dim, hidden_dim, rng, false),
      xn_(input_dim, hidden_dim, rng), hn_(hidden_dim, hidden_dim, rng, false) {
  RegisterModule(&xr_);
  RegisterModule(&hr_);
  RegisterModule(&xz_);
  RegisterModule(&hz_);
  RegisterModule(&xn_);
  RegisterModule(&hn_);
}

Tensor GruCell::Forward(const Tensor& x, const Tensor& h) const {
  Tensor r = ops::Sigmoid(xr_.Forward(x) + hr_.Forward(h));
  Tensor z = ops::Sigmoid(xz_.Forward(x) + hz_.Forward(h));
  Tensor n = ops::Tanh(xn_.Forward(x) + r * hn_.Forward(h));
  Tensor one_minus_z = ops::AddScalar(ops::Neg(z), 1.0f);
  return one_minus_z * n + z * h;
}

LstmCell::LstmCell(int64_t input_dim, int64_t hidden_dim, Rng& rng)
    : hidden_dim_(hidden_dim),
      xi_(input_dim, hidden_dim, rng), hi_(hidden_dim, hidden_dim, rng, false),
      xf_(input_dim, hidden_dim, rng), hf_(hidden_dim, hidden_dim, rng, false),
      xo_(input_dim, hidden_dim, rng), ho_(hidden_dim, hidden_dim, rng, false),
      xc_(input_dim, hidden_dim, rng), hc_(hidden_dim, hidden_dim, rng, false) {
  RegisterModule(&xi_);
  RegisterModule(&hi_);
  RegisterModule(&xf_);
  RegisterModule(&hf_);
  RegisterModule(&xo_);
  RegisterModule(&ho_);
  RegisterModule(&xc_);
  RegisterModule(&hc_);
}

LstmCell::State LstmCell::Forward(const Tensor& x, const State& s) const {
  Tensor i = ops::Sigmoid(xi_.Forward(x) + hi_.Forward(s.h));
  Tensor f = ops::Sigmoid(xf_.Forward(x) + hf_.Forward(s.h));
  Tensor o = ops::Sigmoid(xo_.Forward(x) + ho_.Forward(s.h));
  Tensor g = ops::Tanh(xc_.Forward(x) + hc_.Forward(s.h));
  Tensor c = f * s.c + i * g;
  Tensor h = o * ops::Tanh(c);
  return {h, c};
}

StgnCell::StgnCell(int64_t input_dim, int64_t hidden_dim, Rng& rng)
    : hidden_dim_(hidden_dim),
      xi_(input_dim, hidden_dim, rng), hi_(hidden_dim, hidden_dim, rng, false),
      xf_(input_dim, hidden_dim, rng), hf_(hidden_dim, hidden_dim, rng, false),
      xo_(input_dim, hidden_dim, rng), ho_(hidden_dim, hidden_dim, rng, false),
      xg_(input_dim, hidden_dim, rng), hg_(hidden_dim, hidden_dim, rng, false),
      xt1_(input_dim, hidden_dim, rng), xt2_(input_dim, hidden_dim, rng),
      xd1_(input_dim, hidden_dim, rng), xd2_(input_dim, hidden_dim, rng) {
  RegisterModule(&xi_);
  RegisterModule(&hi_);
  RegisterModule(&xf_);
  RegisterModule(&hf_);
  RegisterModule(&xo_);
  RegisterModule(&ho_);
  RegisterModule(&xg_);
  RegisterModule(&hg_);
  RegisterModule(&xt1_);
  RegisterModule(&xt2_);
  RegisterModule(&xd1_);
  RegisterModule(&xd2_);
  wt1_ = RegisterParameter(Tensor::Randn({hidden_dim}, rng, 0.1f));
  wt2_ = RegisterParameter(Tensor::Randn({hidden_dim}, rng, 0.1f));
  wd1_ = RegisterParameter(Tensor::Randn({hidden_dim}, rng, 0.1f));
  wd2_ = RegisterParameter(Tensor::Randn({hidden_dim}, rng, 0.1f));
}

StgnCell::State StgnCell::Forward(const Tensor& x, const State& s, float dt,
                                  float dd) const {
  Tensor i = ops::Sigmoid(xi_.Forward(x) + hi_.Forward(s.h));
  Tensor f = ops::Sigmoid(xf_.Forward(x) + hf_.Forward(s.h));
  Tensor o = ops::Sigmoid(xo_.Forward(x) + ho_.Forward(s.h));
  Tensor g = ops::Tanh(xg_.Forward(x) + hg_.Forward(s.h));
  // Interval gates: scalar interval scaled through a learned vector.
  Tensor t1 = ops::Sigmoid(xt1_.Forward(x) +
                           ops::Sigmoid(ops::MulScalar(wt1_, dt)));
  Tensor t2 = ops::Sigmoid(xt2_.Forward(x) +
                           ops::Sigmoid(ops::MulScalar(wt2_, dt)));
  Tensor d1 = ops::Sigmoid(xd1_.Forward(x) +
                           ops::Sigmoid(ops::MulScalar(wd1_, dd)));
  Tensor d2 = ops::Sigmoid(xd2_.Forward(x) +
                           ops::Sigmoid(ops::MulScalar(wd2_, dd)));
  Tensor c = f * s.c + i * t1 * d1 * g;
  Tensor c_hat = f * s.c_hat + i * t2 * d2 * g;
  Tensor h = o * ops::Tanh(c_hat);
  return {h, c, c_hat};
}

}  // namespace stisan::nn
