// Attention primitives: causal self-attention (with optional additive
// relation bias — the hook IAAB uses) and cross-attention (used by TAAD).

#pragma once

#include "nn/layers.h"
#include "nn/module.h"

namespace stisan::nn {

/// Builds an [n, n] additive causal mask: 0 on/below the diagonal, -1e9
/// strictly above (prevents information leakage, paper §III-D). Memoised per
/// length behind a mutex — callers share one gradient-free tensor and must
/// not mutate it. Only the composed (STISAN_FUSED_ATTENTION=0) path needs
/// it; the fused kernel applies causality by loop bounds.
Tensor BuildCausalMask(int64_t n);

/// Single-head scaled dot-product self-attention with a causal mask
/// (paper eq. 5-6 with R = 0):
///   A = Softmax(Q K^T / sqrt(d) + mask [+ bias]) V
///
/// The optional `bias` is an [n, n] additive term applied inside the
/// softmax; passing the softmax-scaled spatial-temporal relation matrix here
/// turns this layer into the paper's Interval Aware Attention Layer. Biases
/// that require grad (e.g. TiSASRec's learned bucket bias) receive
/// gradients through either lowering.
///
/// Lowering: by default the whole softmax(qkᵀ·scale + mask + bias)v chain
/// runs as one ops::FusedAttention node; STISAN_FUSED_ATTENTION=0 selects
/// the composed per-op reference path. Both produce bit-identical outputs
/// and gradients.
class CausalSelfAttention : public Module {
 public:
  /// `causal` = false disables the built-in causal mask (bidirectional
  /// attention, e.g. Bert4Rec); any masking must then come via `bias`.
  /// `identity_init_values` initialises W_V to the identity so the
  /// attention output starts as a plain attention-weighted average of the
  /// (normed) inputs — content-meaningful from the first step, which lets
  /// additive biases like IAAB's relation matrix act immediately.
  /// `num_heads` > 1 splits queries/keys/values into independent heads
  /// (dim must be divisible); the paper's models are single-head.
  CausalSelfAttention(int64_t dim, float dropout, Rng& rng,
                      bool causal = true, bool identity_init_values = false,
                      int64_t num_heads = 1);

  /// x: [n, d] or a padded batch [b, n, d]. bias: [n, n], [b, n, n], or
  /// undefined. Returns the same rank as x. Batched rows run through the
  /// same row-wise kernels as the 2-D path, so per-sequence outputs match
  /// the single-sequence forward exactly.
  Tensor Forward(const Tensor& x, const Tensor& bias, Rng& rng) const;

  /// Returns the post-softmax attention map [n, n] (no dropout) for
  /// interpretability probes (paper Fig. 5 / Fig. 7).
  Tensor AttentionMap(const Tensor& x, const Tensor& bias) const;

  int64_t dim() const { return dim_; }
  int64_t num_heads() const { return num_heads_; }
  bool causal() const { return causal_; }

  // Projection accessors for incremental (row-at-a-time) inference: the
  // serving engine applies wq/wk/wv to a single new row and replays the
  // same fused-attention arithmetic against cached K/V rows (src/core/
  // incremental.{h,cc}). Read-only use.
  const Linear& wq() const { return wq_; }
  const Linear& wk() const { return wk_; }
  const Linear& wv() const { return wv_; }

 private:
  /// Softmax(Q K^T / sqrt(dk) + masks) V for one head's [n, dk] slices.
  Tensor HeadAttention(const Tensor& q, const Tensor& k, const Tensor& v,
                       const Tensor& bias, int64_t n, Rng& rng,
                       bool with_dropout) const;

  int64_t dim_;
  int64_t num_heads_;
  bool causal_;
  Linear wq_;
  Linear wk_;
  Linear wv_;
  Dropout dropout_;
};

/// Cross-attention Attn(C, F, F) = Softmax(C F^T / sqrt(d)) F used by the
/// Target Aware Attention Decoder (paper eq. 10).
///
/// The optional additive mask (e.g. to hide padded history steps) is an
/// [m, n] matrix added to the logits.
class CrossAttention : public Module {
 public:
  explicit CrossAttention(int64_t dim) : dim_(dim) {}

  /// queries: [m, d], keys_values: [n, d], mask: [m, n] or undefined.
  Tensor Forward(const Tensor& queries, const Tensor& keys_values,
                 const Tensor& mask) const;

 private:
  int64_t dim_;
};

}  // namespace stisan::nn
