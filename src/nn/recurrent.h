// Recurrent cells for the RNN-family baselines: GRU (GRU4Rec), LSTM, and
// the spatio-temporal gated STGN cell (Zhao et al., AAAI 2019).

#pragma once

#include "nn/layers.h"
#include "nn/module.h"

namespace stisan::nn {

/// Gated recurrent unit cell.
///   r = sigmoid(x Wxr + h Whr + br)
///   z = sigmoid(x Wxz + h Whz + bz)
///   n = tanh(x Wxn + r * (h Whn) + bn)
///   h' = (1 - z) * n + z * h
class GruCell : public Module {
 public:
  GruCell(int64_t input_dim, int64_t hidden_dim, Rng& rng);

  /// x: [1, input_dim], h: [1, hidden_dim] -> new hidden [1, hidden_dim].
  Tensor Forward(const Tensor& x, const Tensor& h) const;

  int64_t hidden_dim() const { return hidden_dim_; }

 private:
  int64_t hidden_dim_;
  Linear xr_, hr_, xz_, hz_, xn_, hn_;
};

/// Standard LSTM cell.
class LstmCell : public Module {
 public:
  LstmCell(int64_t input_dim, int64_t hidden_dim, Rng& rng);

  struct State {
    Tensor h;  // [1, hidden]
    Tensor c;  // [1, hidden]
  };

  State Forward(const Tensor& x, const State& state) const;

  int64_t hidden_dim() const { return hidden_dim_; }

 private:
  int64_t hidden_dim_;
  Linear xi_, hi_, xf_, hf_, xo_, ho_, xc_, hc_;
};

/// STGN cell: an LSTM augmented with two time gates and two distance gates
/// that modulate the input gate and the cell shortcut based on the
/// time interval dt and geographic interval dd to the previous check-in.
///
///   T1 = sigmoid(x Wxt1 + sigmoid(dt wt1) + bt1)
///   D1 = sigmoid(x Wxd1 + sigmoid(dd wd1) + bd1)
///   T2 = sigmoid(x Wxt2 + sigmoid(dt wt2) + bt2)
///   D2 = sigmoid(x Wxd2 + sigmoid(dd wd2) + bd2)
///   c_hat' = f * c_hat + i * T2 * D2 * g        (interval-aware shortcut)
///   c'     = f * c     + i * T1 * D1 * g
///   h'     = o * tanh(c_hat')
class StgnCell : public Module {
 public:
  StgnCell(int64_t input_dim, int64_t hidden_dim, Rng& rng);

  struct State {
    Tensor h;      // [1, hidden]
    Tensor c;      // [1, hidden]
    Tensor c_hat;  // [1, hidden]
  };

  /// dt and dd are normalised scalar intervals to the previous step.
  State Forward(const Tensor& x, const State& state, float dt,
                float dd) const;

  int64_t hidden_dim() const { return hidden_dim_; }

 private:
  int64_t hidden_dim_;
  Linear xi_, hi_, xf_, hf_, xo_, ho_, xg_, hg_;
  Linear xt1_, xt2_, xd1_, xd2_;
  Tensor wt1_, wt2_, wd1_, wd2_;  // [hidden] interval projections
};

}  // namespace stisan::nn
