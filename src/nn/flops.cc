#include "nn/flops.h"

namespace stisan::nn {

int64_t LinearFlops(int64_t m, int64_t k, int64_t n) { return 2 * m * k * n; }

int64_t SelfAttentionFlops(int64_t n, int64_t d) {
  int64_t flops = 0;
  flops += 3 * LinearFlops(n, d, d);  // Q, K, V projections
  flops += 2 * n * n * d;             // Q K^T
  flops += n * n;                     // scale by 1/sqrt(d)
  flops += 5 * n * n;                 // softmax (max, sub, exp, sum, div)
  flops += 2 * n * n * d;             // attention x V
  return flops;
}

int64_t FeedForwardFlops(int64_t n, int64_t d, int64_t d_hidden) {
  return LinearFlops(n, d, d_hidden) + n * d_hidden  // +bias, ReLU
         + LinearFlops(n, d_hidden, d) + n * d;
}

int64_t LayerNormFlops(int64_t n, int64_t d) {
  return 8 * n * d;  // mean, var, normalise, affine
}

int64_t SaBlockFlops(int64_t n, int64_t d, int64_t d_hidden) {
  return SelfAttentionFlops(n, d) + FeedForwardFlops(n, d, d_hidden) +
         2 * LayerNormFlops(n, d) + 2 * n * d;  // residual adds
}

int64_t IaabBlockFlops(int64_t n, int64_t d, int64_t d_hidden) {
  // Softmax-scaling of R plus point-wise addition to the attention map.
  return SaBlockFlops(n, d, d_hidden) + 5 * n * n + n * n;
}

}  // namespace stisan::nn
