#include "nn/conv.h"

namespace stisan::nn {

CaserConv::CaserConv(int64_t seq_len, int64_t dim,
                     std::vector<int64_t> heights,
                     int64_t filters_per_height, int64_t vertical_filters,
                     int64_t out_dim, float dropout, Rng& rng)
    : seq_len_(seq_len), dim_(dim), heights_(std::move(heights)),
      dropout_(dropout) {
  int64_t feature_dim = 0;
  for (int64_t h : heights_) {
    STISAN_CHECK_LE(h, seq_len);
    horizontal_.push_back(
        std::make_unique<Linear>(h * dim, filters_per_height, rng));
    RegisterModule(horizontal_.back().get());
    feature_dim += filters_per_height;
  }
  vertical_ = RegisterParameter(
      Tensor::Randn({vertical_filters, seq_len}, rng, 0.1f));
  feature_dim += vertical_filters * dim;
  out_ = std::make_unique<Linear>(feature_dim, out_dim, rng);
  RegisterModule(out_.get());
  RegisterModule(&dropout_);
}

Tensor CaserConv::Forward(const Tensor& x, Rng& rng) const {
  STISAN_CHECK(x.shape() == (Shape{seq_len_, dim_}));
  Tensor features;  // [1, feature_dim], built by concatenation
  for (size_t k = 0; k < heights_.size(); ++k) {
    // Unfold windows of height h, apply the filter bank, ReLU, max-over-time.
    Tensor windows = ops::Unfold1D(x, heights_[k]);       // [n-h+1, h*d]
    Tensor conv = horizontal_[k]->ForwardRelu(windows);
    Tensor pooled = ops::MaxDim(conv, 0, /*keepdim=*/true);  // [1, F]
    features = features.defined() ? ops::Concat(features, pooled, 1) : pooled;
  }
  // Vertical filters: [F_v, n] x [n, d] -> [F_v, d] -> flatten to [1, F_v*d].
  Tensor vert = ops::Reshape(ops::MatMul(vertical_, x),
                             {1, vertical_.size(0) * dim_});
  features = features.defined() ? ops::Concat(features, vert, 1) : vert;
  features = dropout_.Forward(features, rng);
  return out_->Forward(features);
}

}  // namespace stisan::nn
