#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "data/preprocess.h"
#include "util/rng.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "eval/metrics.h"

namespace stisan::eval {
namespace {

TEST(RankTest, TargetFirst) {
  EXPECT_EQ(RankOfTarget({5.0f, 1.0f, 2.0f}, 0), 0);
}

TEST(RankTest, TargetLast) {
  EXPECT_EQ(RankOfTarget({0.5f, 1.0f, 2.0f}, 0), 2);
}

TEST(RankTest, TiesArePessimistic) {
  // Everything equal: target ranks behind all others.
  EXPECT_EQ(RankOfTarget({1.0f, 1.0f, 1.0f}, 0), 2);
}

TEST(RankTest, TargetNotAtIndexZero) {
  EXPECT_EQ(RankOfTarget({1.0f, 9.0f, 2.0f}, 1), 0);
}

TEST(MetricTest, HitRate) {
  EXPECT_EQ(HitRateAtK(2, 5), 1.0);
  EXPECT_EQ(HitRateAtK(5, 5), 0.0);
  EXPECT_EQ(HitRateAtK(0, 1), 1.0);
}

TEST(MetricTest, NdcgValues) {
  EXPECT_DOUBLE_EQ(NdcgAtK(0, 5), 1.0);
  EXPECT_DOUBLE_EQ(NdcgAtK(1, 5), 1.0 / std::log2(3.0));
  EXPECT_DOUBLE_EQ(NdcgAtK(5, 5), 0.0);
}

TEST(MetricTest, NdcgNeverExceedsHr) {
  for (int64_t rank = 0; rank < 12; ++rank) {
    EXPECT_LE(NdcgAtK(rank, 10), HitRateAtK(rank, 10));
  }
}

TEST(AccumulatorTest, MeansOverInstances) {
  MetricAccumulator acc({5, 10});
  acc.Add(0);   // hit both
  acc.Add(7);   // hit @10 only
  acc.Add(20);  // miss both
  EXPECT_EQ(acc.count(), 3);
  EXPECT_NEAR(acc.HitRate(5), 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(acc.HitRate(10), 2.0 / 3.0, 1e-9);
  auto means = acc.Means();
  EXPECT_NEAR(means.at("HR@5"), 1.0 / 3.0, 1e-9);
  EXPECT_GT(means.at("NDCG@10"), 0.0);
  EXPECT_LT(means.at("NDCG@10"), means.at("HR@10"));
}

// ---- Candidate generation -----------------------------------------------------

class CandidateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = data::GenerateSynthetic(data::GowallaLikeConfig(0.1));
    split_ = data::TrainTestSplit(ds_, {.max_seq_len = 10});
    gen_ = std::make_unique<CandidateGenerator>(ds_);
  }
  data::Dataset ds_;
  data::Split split_;
  std::unique_ptr<CandidateGenerator> gen_;
};

TEST_F(CandidateTest, TargetFirstAndExcluded) {
  ASSERT_FALSE(split_.test.empty());
  for (size_t k = 0; k < std::min<size_t>(10, split_.test.size()); ++k) {
    const auto& inst = split_.test[k];
    auto cands = gen_->Candidates(inst, 100);
    ASSERT_FALSE(cands.empty());
    EXPECT_EQ(cands[0], inst.target);
    std::unordered_set<int64_t> visited(inst.visited.begin(),
                                        inst.visited.end());
    for (size_t i = 1; i < cands.size(); ++i) {
      EXPECT_NE(cands[i], inst.target);
      EXPECT_FALSE(visited.contains(cands[i]))
          << "candidate " << cands[i] << " was previously visited";
    }
  }
}

TEST_F(CandidateTest, NegativesAreNearTarget) {
  const auto& inst = split_.test[0];
  auto cands = gen_->Candidates(inst, 20);
  const auto& target_loc = ds_.poi_location(inst.target);
  // All negatives within the distance of the 300th nearest POI overall.
  double max_neg = 0;
  for (size_t i = 1; i < cands.size(); ++i) {
    max_neg = std::max(
        max_neg, geo::HaversineKm(target_loc, ds_.poi_location(cands[i])));
  }
  // Count how many POIs are closer than the farthest negative; should be
  // roughly the number of candidates (plus visited exclusions).
  int64_t closer = 0;
  for (int64_t p = 1; p <= ds_.num_pois(); ++p) {
    if (geo::HaversineKm(target_loc, ds_.poi_location(p)) < max_neg) ++closer;
  }
  EXPECT_LE(closer, 20 + static_cast<int64_t>(inst.visited.size()) + 1);
}

TEST_F(CandidateTest, EvaluatePerfectAndWorstScorers) {
  // A scorer that always puts the target on top -> HR@5 = 1.
  Scorer perfect = [](const data::EvalInstance&,
                      const std::vector<int64_t>& cands) {
    std::vector<float> s(cands.size(), 0.0f);
    s[0] = 1.0f;
    return s;
  };
  auto acc = Evaluate(perfect, split_.test, *gen_, {});
  EXPECT_EQ(acc.HitRate(5), 1.0);
  EXPECT_EQ(acc.Ndcg(10), 1.0);

  // A constant scorer: pessimistic tie-breaking ranks the target last.
  Scorer constant = [](const data::EvalInstance&,
                       const std::vector<int64_t>& cands) {
    return std::vector<float>(cands.size(), 0.5f);
  };
  auto worst = Evaluate(constant, split_.test, *gen_, {});
  EXPECT_EQ(worst.HitRate(10), 0.0);
}

TEST_F(CandidateTest, RandomScorerNearChance) {
  Rng rng(123);
  Scorer random = [&rng](const data::EvalInstance&,
                         const std::vector<int64_t>& cands) {
    std::vector<float> s(cands.size());
    for (auto& v : s) v = rng.UniformFloat(0, 1);
    return s;
  };
  auto acc = Evaluate(random, split_.test, *gen_, {});
  // With 101 candidates, HR@10 under chance is ~0.099.
  EXPECT_NEAR(acc.HitRate(10), 0.099, 0.08);
}

}  // namespace
}  // namespace stisan::eval
