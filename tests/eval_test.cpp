#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <unordered_set>

#include "data/preprocess.h"
#include "util/rng.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "eval/metrics.h"

namespace stisan::eval {
namespace {

TEST(RankTest, TargetFirst) {
  EXPECT_EQ(RankOfTarget({5.0f, 1.0f, 2.0f}, 0), 0);
}

TEST(RankTest, TargetLast) {
  EXPECT_EQ(RankOfTarget({0.5f, 1.0f, 2.0f}, 0), 2);
}

TEST(RankTest, TiesArePessimistic) {
  // Everything equal: target ranks behind all others.
  EXPECT_EQ(RankOfTarget({1.0f, 1.0f, 1.0f}, 0), 2);
}

TEST(RankTest, TargetNotAtIndexZero) {
  EXPECT_EQ(RankOfTarget({1.0f, 9.0f, 2.0f}, 1), 0);
}

TEST(RankTest, NanCandidatesRankAsNegativeInfinity) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  // A NaN candidate compares false against everything; pre-fix the `>=`
  // test silently skipped it, which happened to be right, but the contract
  // is now explicit: NaN candidates never outrank the target.
  EXPECT_EQ(RankOfTarget({1.0f, nan, nan}, 0), 0);
  EXPECT_EQ(RankOfTarget({nan, 2.0f, 1.0f, nan}, 1), 0);
  // Finite candidates around the NaN still count normally.
  EXPECT_EQ(RankOfTarget({1.0f, nan, 5.0f}, 0), 1);
}

TEST(RankDeathTest, NonFiniteTargetScoreAborts) {
  // A NaN target would compare false against every candidate and claim a
  // spurious perfect rank 0 — it must hard-fail instead.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_DEATH(RankOfTarget({nan, 1.0f}, 0), "target score must be finite");
  EXPECT_DEATH(RankOfTarget({1.0f, inf}, 1), "target score must be finite");
}

// ---- Bootstrap quantiles -------------------------------------------------------

TEST(QuantileTest, NearestRankRoundsInsteadOfTruncating) {
  // n=21, q=0.975: q*(n-1) = 19.5 — truncation picked 19 and dragged the
  // upper CI endpoint low; nearest-rank rounds to 20.
  EXPECT_EQ(QuantileNearestRankIndex(21, 0.975), 20u);
  EXPECT_EQ(QuantileNearestRankIndex(21, 0.025), 1u);  // 0.5 rounds up
  EXPECT_EQ(QuantileNearestRankIndex(1000, 0.975), 974u);
  EXPECT_EQ(QuantileNearestRankIndex(1000, 0.025), 25u);
}

TEST(QuantileTest, EndpointsClampToValidIndices) {
  EXPECT_EQ(QuantileNearestRankIndex(1, 0.5), 0u);
  EXPECT_EQ(QuantileNearestRankIndex(10, 0.0), 0u);
  EXPECT_EQ(QuantileNearestRankIndex(10, 1.0), 9u);
}

TEST(BootstrapTest, DegenerateRankVectorsPinCi) {
  // Every resample of an all-hit vector has HR = 1, so both nearest-rank
  // endpoints are exactly 1 (and symmetrically 0 for all-miss).
  Rng rng(123);
  auto all_hit =
      BootstrapHitRateCi(std::vector<int64_t>(50, 0), 10, 0.95, rng);
  EXPECT_EQ(all_hit.lo, 1.0);
  EXPECT_EQ(all_hit.hi, 1.0);
  auto all_miss =
      BootstrapHitRateCi(std::vector<int64_t>(50, 99), 10, 0.95, rng);
  EXPECT_EQ(all_miss.lo, 0.0);
  EXPECT_EQ(all_miss.hi, 0.0);
}

TEST(BootstrapTest, MixedRanksCiBracketsSampleMean) {
  // 30 hits, 10 misses at k=10: sample HR = 0.75. A 95% percentile CI over
  // 1000 resamples must straddle the point estimate strictly.
  std::vector<int64_t> ranks(30, 3);
  ranks.insert(ranks.end(), 10, 42);
  Rng rng(7);
  auto ci = BootstrapHitRateCi(ranks, 10, 0.95, rng);
  EXPECT_LT(ci.lo, 0.75);
  EXPECT_GT(ci.hi, 0.75);
  EXPECT_GE(ci.lo, 0.0);
  EXPECT_LE(ci.hi, 1.0);
  EXPECT_LT(ci.hi - ci.lo, 0.5);  // n=40 is small but not that small
}

TEST(MetricTest, HitRate) {
  EXPECT_EQ(HitRateAtK(2, 5), 1.0);
  EXPECT_EQ(HitRateAtK(5, 5), 0.0);
  EXPECT_EQ(HitRateAtK(0, 1), 1.0);
}

TEST(MetricTest, NdcgValues) {
  EXPECT_DOUBLE_EQ(NdcgAtK(0, 5), 1.0);
  EXPECT_DOUBLE_EQ(NdcgAtK(1, 5), 1.0 / std::log2(3.0));
  EXPECT_DOUBLE_EQ(NdcgAtK(5, 5), 0.0);
}

TEST(MetricTest, NdcgNeverExceedsHr) {
  for (int64_t rank = 0; rank < 12; ++rank) {
    EXPECT_LE(NdcgAtK(rank, 10), HitRateAtK(rank, 10));
  }
}

TEST(AccumulatorTest, MeansOverInstances) {
  MetricAccumulator acc({5, 10});
  acc.Add(0);   // hit both
  acc.Add(7);   // hit @10 only
  acc.Add(20);  // miss both
  EXPECT_EQ(acc.count(), 3);
  EXPECT_NEAR(acc.HitRate(5), 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(acc.HitRate(10), 2.0 / 3.0, 1e-9);
  auto means = acc.Means();
  EXPECT_NEAR(means.at("HR@5"), 1.0 / 3.0, 1e-9);
  EXPECT_GT(means.at("NDCG@10"), 0.0);
  EXPECT_LT(means.at("NDCG@10"), means.at("HR@10"));
}

// ---- Merge ---------------------------------------------------------------------

TEST(AccumulatorMergeTest, EmptyIntoEmpty) {
  MetricAccumulator a({5, 10});
  MetricAccumulator b({5, 10});
  a.Merge(b);
  EXPECT_EQ(a.count(), 0);
  EXPECT_TRUE(a.ranks().empty());
  EXPECT_EQ(a.HitRate(5), 0.0);
}

TEST(AccumulatorMergeTest, EmptyIsIdentityOnBothSides) {
  MetricAccumulator filled({5, 10});
  filled.Add(0);
  filled.Add(7);
  MetricAccumulator empty({5, 10});

  MetricAccumulator left = filled;
  left.Merge(empty);
  EXPECT_EQ(left.count(), 2);
  EXPECT_EQ(left.Means(), filled.Means());
  EXPECT_EQ(left.ranks(), filled.ranks());

  MetricAccumulator right({5, 10});
  right.Merge(filled);
  EXPECT_EQ(right.count(), 2);
  EXPECT_EQ(right.Means(), filled.Means());
  EXPECT_EQ(right.ranks(), filled.ranks());
}

TEST(AccumulatorMergeTest, DisjointShardsMatchSequentialBitwise) {
  // Merging per-shard accumulators in instance order must reproduce the
  // sequential accumulation exactly (same double sums, same rank order).
  const std::vector<int64_t> ranks = {0, 3, 7, 12, 1, 99, 4, 6, 2, 10, 5};
  MetricAccumulator sequential({5, 10});
  for (int64_t r : ranks) sequential.Add(r);

  for (size_t shard_size : {1u, 3u, 4u, 100u}) {
    MetricAccumulator merged({5, 10});
    for (size_t begin = 0; begin < ranks.size(); begin += shard_size) {
      MetricAccumulator shard({5, 10});
      for (size_t i = begin; i < std::min(begin + shard_size, ranks.size());
           ++i) {
        shard.Add(ranks[i]);
      }
      merged.Merge(shard);
    }
    EXPECT_EQ(merged.count(), sequential.count());
    EXPECT_EQ(merged.ranks(), sequential.ranks());
    // Bit-exact double comparison, not EXPECT_NEAR: the merge contract.
    const auto lhs = merged.Means();
    const auto rhs = sequential.Means();
    ASSERT_EQ(lhs.size(), rhs.size());
    for (const auto& [key, value] : lhs) EXPECT_EQ(value, rhs.at(key)) << key;
    EXPECT_EQ(merged.MeanReciprocalRank(), sequential.MeanReciprocalRank());
  }
}

TEST(AccumulatorMergeDeathTest, MismatchedCutoffsAbort) {
  MetricAccumulator a({5, 10});
  MetricAccumulator b({5, 20});  // overlaps at 5 but differs at the tail
  b.Add(1);
  EXPECT_DEATH(a.Merge(b), "cutoffs");
}

// ---- Candidate generation -----------------------------------------------------

class CandidateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = data::GenerateSynthetic(data::GowallaLikeConfig(0.1));
    split_ = data::TrainTestSplit(ds_, {.max_seq_len = 10});
    gen_ = std::make_unique<CandidateGenerator>(ds_);
  }
  data::Dataset ds_;
  data::Split split_;
  std::unique_ptr<CandidateGenerator> gen_;
};

TEST_F(CandidateTest, TargetFirstAndExcluded) {
  ASSERT_FALSE(split_.test.empty());
  for (size_t k = 0; k < std::min<size_t>(10, split_.test.size()); ++k) {
    const auto& inst = split_.test[k];
    auto cands = gen_->Candidates(inst, 100);
    ASSERT_FALSE(cands.empty());
    EXPECT_EQ(cands[0], inst.target);
    std::unordered_set<int64_t> visited(inst.visited.begin(),
                                        inst.visited.end());
    for (size_t i = 1; i < cands.size(); ++i) {
      EXPECT_NE(cands[i], inst.target);
      EXPECT_FALSE(visited.contains(cands[i]))
          << "candidate " << cands[i] << " was previously visited";
    }
  }
}

TEST_F(CandidateTest, NegativesAreNearTarget) {
  const auto& inst = split_.test[0];
  auto cands = gen_->Candidates(inst, 20);
  const auto& target_loc = ds_.poi_location(inst.target);
  // All negatives within the distance of the 300th nearest POI overall.
  double max_neg = 0;
  for (size_t i = 1; i < cands.size(); ++i) {
    max_neg = std::max(
        max_neg, geo::HaversineKm(target_loc, ds_.poi_location(cands[i])));
  }
  // Count how many POIs are closer than the farthest negative; should be
  // roughly the number of candidates (plus visited exclusions).
  int64_t closer = 0;
  for (int64_t p = 1; p <= ds_.num_pois(); ++p) {
    if (geo::HaversineKm(target_loc, ds_.poi_location(p)) < max_neg) ++closer;
  }
  EXPECT_LE(closer, 20 + static_cast<int64_t>(inst.visited.size()) + 1);
}

TEST_F(CandidateTest, NoDuplicatesAndRespectsBudget) {
  for (size_t k = 0; k < std::min<size_t>(20, split_.test.size()); ++k) {
    const auto& inst = split_.test[k];
    for (int64_t budget : {1, 7, 100}) {
      auto cands = gen_->Candidates(inst, budget);
      EXPECT_LE(static_cast<int64_t>(cands.size()), budget + 1);
      std::unordered_set<int64_t> seen(cands.begin(), cands.end());
      EXPECT_EQ(seen.size(), cands.size()) << "duplicate candidate";
      for (int64_t c : cands) {
        EXPECT_GE(c, 1);
        EXPECT_LE(c, ds_.num_pois());
      }
    }
  }
}

TEST(CandidateTinyPoiSetTest, FewerNegativesThanRequested) {
  // Five POIs, two of them visited: at most 2 negatives can exist
  // (5 - target - 2 visited), however many are requested.
  data::Dataset ds;
  ds.name = "tiny";
  ds.poi_coords.resize(6);  // entry 0 = padding
  for (int64_t p = 1; p <= 5; ++p) {
    ds.poi_coords[static_cast<size_t>(p)] = {40.0 + 0.01 * double(p), -74.0};
  }
  ds.user_seqs = {{{1, 0.0}, {2, 3600.0}}};

  data::EvalInstance inst;
  inst.user = 0;
  inst.poi = {1, 2};
  inst.t = {0.0, 3600.0};
  inst.target = 3;
  inst.visited = {1, 2};

  CandidateGenerator gen(ds);
  auto cands = gen.Candidates(inst, 100);
  ASSERT_FALSE(cands.empty());
  EXPECT_EQ(cands[0], inst.target);
  EXPECT_EQ(cands.size(), 3u);  // target + the 2 unvisited POIs {4, 5}
  std::unordered_set<int64_t> seen(cands.begin(), cands.end());
  EXPECT_EQ(seen, (std::unordered_set<int64_t>{3, 4, 5}));

  // A budget below the available pool is honoured exactly.
  auto one = gen.Candidates(inst, 1);
  EXPECT_EQ(one.size(), 2u);
  EXPECT_EQ(one[0], inst.target);
}

TEST_F(CandidateTest, EvaluatePerfectAndWorstScorers) {
  // A scorer that always puts the target on top -> HR@5 = 1.
  Scorer perfect = [](const data::EvalInstance&,
                      const std::vector<int64_t>& cands) {
    std::vector<float> s(cands.size(), 0.0f);
    s[0] = 1.0f;
    return s;
  };
  auto acc = Evaluate(perfect, split_.test, *gen_, {});
  EXPECT_EQ(acc.HitRate(5), 1.0);
  EXPECT_EQ(acc.Ndcg(10), 1.0);

  // A constant scorer: pessimistic tie-breaking ranks the target last.
  Scorer constant = [](const data::EvalInstance&,
                       const std::vector<int64_t>& cands) {
    return std::vector<float>(cands.size(), 0.5f);
  };
  auto worst = Evaluate(constant, split_.test, *gen_, {});
  EXPECT_EQ(worst.HitRate(10), 0.0);
}

TEST_F(CandidateTest, RandomScorerNearChance) {
  Rng rng(123);
  Scorer random = [&rng](const data::EvalInstance&,
                         const std::vector<int64_t>& cands) {
    std::vector<float> s(cands.size());
    for (auto& v : s) v = rng.UniformFloat(0, 1);
    return s;
  };
  auto acc = Evaluate(random, split_.test, *gen_, {});
  // With 101 candidates, HR@10 under chance is ~0.099.
  EXPECT_NEAR(acc.HitRate(10), 0.099, 0.08);
}

}  // namespace
}  // namespace stisan::eval
