#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <unordered_set>

#include "data/csv_loader.h"
#include "data/preprocess.h"
#include "data/synthetic.h"
#include "data/types.h"
#include "geo/geo.h"

namespace stisan::data {
namespace {

Dataset TinyDataset() {
  // 3 users, 4 POIs; user 2 has a single visit.
  Dataset ds;
  ds.name = "tiny";
  ds.poi_coords = {{}, {43.88, 125.35}, {43.89, 125.36}, {43.90, 125.37},
                   {43.95, 125.40}};
  ds.user_seqs = {
      {{1, 1000}, {2, 2000}, {3, 3000}, {1, 4000}, {2, 5000}},
      {{2, 1500}, {3, 2500}, {4, 3500}, {4, 4500}},
      {{1, 9000}},
  };
  return ds;
}

TEST(TypesTest, CountsAndStats) {
  Dataset ds = TinyDataset();
  EXPECT_EQ(ds.num_users(), 3);
  EXPECT_EQ(ds.num_pois(), 4);
  EXPECT_EQ(ds.num_checkins(), 10);
  auto stats = ds.Stats();
  EXPECT_EQ(stats.num_checkins, 10);
  EXPECT_NEAR(stats.avg_seq_length, 10.0 / 3.0, 1e-9);
  // Unique user-POI pairs: user 0 -> {1,2,3}, user 1 -> {2,3,4},
  // user 2 -> {1}: 7 of 3*4 cells.
  EXPECT_NEAR(stats.sparsity, 1.0 - 7.0 / 12.0, 1e-9);
  EXPECT_FALSE(stats.ToString().empty());
}

// ---- PadHead -----------------------------------------------------------------

TEST(PadHeadTest, PadsAtHeadWithFirstTimestamp) {
  std::vector<Visit> visits = {{5, 100.0}, {7, 200.0}};
  std::vector<int64_t> poi;
  std::vector<double> t;
  int64_t first_real = PadHead(visits, 5, &poi, &t);
  EXPECT_EQ(first_real, 3);
  EXPECT_EQ(poi, (std::vector<int64_t>{0, 0, 0, 5, 7}));
  EXPECT_EQ(t, (std::vector<double>{100, 100, 100, 100, 200}));
}

TEST(PadHeadTest, ExactLengthNoPadding) {
  std::vector<Visit> visits = {{1, 10.0}, {2, 20.0}};
  std::vector<int64_t> poi;
  std::vector<double> t;
  EXPECT_EQ(PadHead(visits, 2, &poi, &t), 0);
  EXPECT_EQ(poi, (std::vector<int64_t>{1, 2}));
}

// ---- FilterCold -----------------------------------------------------------------

TEST(FilterColdTest, RemovesColdUsersAndPois) {
  Dataset ds = TinyDataset();
  FilterOptions opts{.min_user_checkins = 4, .min_poi_checkins = 2};
  Dataset out = FilterCold(ds, opts);
  // User 2 (1 visit) goes; POI 4 visited twice but only by user 1 -> stays
  // iff count >= 2 among surviving users.
  EXPECT_EQ(out.num_users(), 2);
  for (const auto& seq : out.user_seqs) {
    EXPECT_GE(seq.size(), 4u);
  }
  // Ids are compacted to 1..P.
  for (const auto& seq : out.user_seqs) {
    for (const auto& v : seq) {
      EXPECT_GE(v.poi, 1);
      EXPECT_LE(v.poi, out.num_pois());
    }
  }
}

TEST(FilterColdTest, NoOpWhenThresholdsLow) {
  Dataset ds = TinyDataset();
  Dataset out = FilterCold(ds, {.min_user_checkins = 1, .min_poi_checkins = 1});
  EXPECT_EQ(out.num_checkins(), ds.num_checkins());
}

TEST(FilterColdTest, IteratesToFixedPoint) {
  // POI 4 is only visited by user 1; removing user 1 must cool POI 4 too.
  Dataset ds;
  ds.poi_coords = {{}, {1, 1}, {2, 2}, {3, 3}, {4, 4}};
  ds.user_seqs = {
      {{4, 1}, {4, 2}},                                // only user of POI 4
      {{1, 1}, {2, 2}, {3, 3}, {1, 4}, {2, 5}, {3, 6}},
      {{1, 1}, {2, 2}, {3, 3}, {1, 4}, {2, 5}, {3, 6}},
  };
  Dataset out = FilterCold(ds, {.min_user_checkins = 3, .min_poi_checkins = 3});
  EXPECT_EQ(out.num_users(), 2);
  EXPECT_EQ(out.num_pois(), 3);
}

// ---- Split ------------------------------------------------------------------------

TEST(SplitTest, TargetIsMostRecentUnvisited) {
  Dataset ds = TinyDataset();
  Split split = TrainTestSplit(ds, {.max_seq_len = 4});
  // User 0 sequence: 1,2,3,1,2 -> last previously-unvisited is POI 3 at
  // index 2.
  ASSERT_GE(split.test.size(), 1u);
  const auto& inst = split.test[0];
  EXPECT_EQ(inst.user, 0);
  EXPECT_EQ(inst.target, 3);
  // Source = the two visits before index 2, padded to length 4.
  EXPECT_EQ(inst.poi, (std::vector<int64_t>{0, 0, 1, 2}));
  EXPECT_EQ(inst.first_real, 2);
  // Visited set covers everything before the target.
  EXPECT_EQ(std::set<int64_t>(inst.visited.begin(), inst.visited.end()),
            (std::set<int64_t>{1, 2}));
}

TEST(SplitTest, TrainWindowsHaveLengthNPlusOne) {
  Dataset ds = TinyDataset();
  Split split = TrainTestSplit(ds, {.max_seq_len = 3});
  for (const auto& w : split.train) {
    EXPECT_EQ(w.poi.size(), 4u);
    EXPECT_EQ(w.t.size(), 4u);
    // At least two real entries so there is a (source, target) pair.
    EXPECT_LE(w.first_real, 2);
  }
}

TEST(SplitTest, WindowTimestampsMonotone) {
  auto ds = GenerateSynthetic(GowallaLikeConfig(0.1));
  Split split = TrainTestSplit(ds, {.max_seq_len = 10});
  for (const auto& w : split.train) {
    for (size_t i = 1; i < w.t.size(); ++i) {
      EXPECT_LE(w.t[i - 1], w.t[i]);
    }
  }
}

TEST(SplitTest, LongSequencesSplitFromEnd) {
  Dataset ds;
  ds.poi_coords.assign(12, geo::GeoPoint{});
  std::vector<Visit> seq;
  for (int i = 0; i < 23; ++i) seq.push_back({(i % 10) + 1, double(i * 100)});
  ds.user_seqs.push_back(seq);
  Split split = TrainTestSplit(ds, {.max_seq_len = 5});
  ASSERT_EQ(split.test.size(), 1u);
  // Train part is everything before the target; windows of length 6 sharing
  // one boundary visit cover it completely.
  int64_t real_total = 0;
  for (const auto& w : split.train) {
    for (int64_t p : w.poi) real_total += (p != kPaddingPoi) ? 1 : 0;
  }
  // Every real train visit is covered (boundary visits counted twice).
  EXPECT_GE(real_total, 10);
}

// ---- Synthetic ---------------------------------------------------------------------

TEST(SyntheticTest, DeterministicForSeed) {
  auto cfg = GowallaLikeConfig(0.05);
  auto a = GenerateSynthetic(cfg);
  auto b = GenerateSynthetic(cfg);
  ASSERT_EQ(a.num_users(), b.num_users());
  ASSERT_EQ(a.num_checkins(), b.num_checkins());
  EXPECT_EQ(a.user_seqs[0][0].poi, b.user_seqs[0][0].poi);
  EXPECT_EQ(a.user_seqs[0].back().timestamp, b.user_seqs[0].back().timestamp);
}

TEST(SyntheticTest, ChronologicalAndInRange) {
  auto ds = GenerateSynthetic(BrightkiteLikeConfig(0.1));
  for (const auto& seq : ds.user_seqs) {
    for (size_t i = 0; i < seq.size(); ++i) {
      EXPECT_GE(seq[i].poi, 1);
      EXPECT_LE(seq[i].poi, ds.num_pois());
      if (i > 0) {
        EXPECT_GE(seq[i].timestamp, seq[i - 1].timestamp);
      }
    }
  }
}

TEST(SyntheticTest, PresetsMatchPaperShape) {
  // Relative characteristics of Table II: Weeplaces has the longest
  // sequences, Changchun the smallest POI set and most users.
  auto gow = GenerateSynthetic(GowallaLikeConfig(0.2)).Stats();
  auto wee = GenerateSynthetic(WeeplacesLikeConfig(0.2)).Stats();
  auto cc = GenerateSynthetic(ChangchunLikeConfig(0.2)).Stats();
  EXPECT_GT(wee.avg_seq_length, 2.0 * gow.avg_seq_length);
  EXPECT_LT(cc.num_pois, gow.num_pois);
  EXPECT_GT(cc.num_users, gow.num_users);
}

TEST(SyntheticTest, ShortGapsMeanShortDistances) {
  // The planted spatio-temporal coupling: check-ins separated by < 1 h are
  // on average much closer than check-ins separated by > 24 h.
  auto ds = GenerateSynthetic(GowallaLikeConfig(0.25));
  double short_sum = 0, long_sum = 0;
  int64_t short_n = 0, long_n = 0;
  for (const auto& seq : ds.user_seqs) {
    for (size_t i = 1; i < seq.size(); ++i) {
      const double gap = seq[i].timestamp - seq[i - 1].timestamp;
      const double dist = geo::HaversineKm(ds.poi_location(seq[i].poi),
                                           ds.poi_location(seq[i - 1].poi));
      if (gap < 3600) {
        short_sum += dist;
        ++short_n;
      } else if (gap > 86400) {
        long_sum += dist;
        ++long_n;
      }
    }
  }
  ASSERT_GT(short_n, 50);
  ASSERT_GT(long_n, 50);
  EXPECT_LT(short_sum / short_n, 0.7 * (long_sum / long_n));
}

TEST(SyntheticTest, PopularitySkewed) {
  auto ds = GenerateSynthetic(GowallaLikeConfig(0.2));
  std::vector<int64_t> counts(static_cast<size_t>(ds.num_pois()) + 1, 0);
  for (const auto& seq : ds.user_seqs) {
    for (const auto& v : seq) counts[static_cast<size_t>(v.poi)]++;
  }
  std::sort(counts.rbegin(), counts.rend());
  const int64_t total = ds.num_checkins();
  int64_t top_decile = 0;
  for (size_t i = 0; i < counts.size() / 10; ++i) top_decile += counts[i];
  // Top 10% of POIs should hold well over 10% of the check-ins.
  EXPECT_GT(double(top_decile) / double(total), 0.3);
}

// ---- CSV round trip ------------------------------------------------------------------

TEST(CsvTest, RoundTrip) {
  auto ds = GenerateSynthetic(GowallaLikeConfig(0.03));
  const std::string path = "/tmp/stisan_csv_test.csv";
  ASSERT_TRUE(SaveCsv(ds, path).ok());
  auto loaded = LoadCsv(path, "reload");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_users(), ds.num_users());
  EXPECT_EQ(loaded->num_checkins(), ds.num_checkins());
  // Only POIs that appear in at least one check-in survive the round trip.
  std::unordered_set<int64_t> visited;
  for (const auto& seq : ds.user_seqs) {
    for (const auto& v : seq) visited.insert(v.poi);
  }
  EXPECT_EQ(loaded->num_pois(), static_cast<int64_t>(visited.size()));
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFile) {
  auto r = LoadCsv("/nonexistent/nope.csv", "x");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(CsvTest, MalformedRows) {
  const std::string path = "/tmp/stisan_csv_bad.csv";
  {
    FILE* f = fopen(path.c_str(), "w");
    fputs("u1,p1,43.8,125.3\n", f);  // 4 fields
    fclose(f);
  }
  EXPECT_FALSE(LoadCsv(path, "x").ok());
  {
    FILE* f = fopen(path.c_str(), "w");
    fputs("u1,p1,999.0,125.3,100\n", f);  // latitude out of range
    fclose(f);
  }
  EXPECT_FALSE(LoadCsv(path, "x").ok());
  std::remove(path.c_str());
}

// Each rejection must carry the offending line number and name the bad
// field, so a 10M-row ingest failure is actionable.
TEST(CsvTest, ErrorsNameFieldAndLineNumber) {
  const std::string path = "/tmp/stisan_csv_field.csv";
  auto write = [&](const char* contents) {
    FILE* f = fopen(path.c_str(), "w");
    fputs("u1,p1,43.8,125.3,100\n", f);  // valid line 1
    fputs(contents, f);                  // offending line 2
    fclose(f);
  };
  auto expect_rejected = [&](const char* needle) {
    auto r = LoadCsv(path, "x");
    ASSERT_FALSE(r.ok()) << "accepted row with " << needle;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(r.status().message().find(":2:"), std::string::npos)
        << "missing line number in: " << r.status().message();
    EXPECT_NE(r.status().message().find(needle), std::string::npos)
        << "missing '" << needle << "' in: " << r.status().message();
  };

  write("u1,p1,43.8,125.3\n");  // truncated row
  expect_rejected("expected 5 fields");
  write("u1,p1,43.8,125.3,abc\n");
  expect_rejected("timestamp");
  write("u1,p1,4x.8,125.3,100\n");
  expect_rejected("latitude");
  write("u1,p1,43.8,12x.3,100\n");
  expect_rejected("longitude");
  write("u1,p1,91.0,125.3,100\n");
  expect_rejected("out of range");
  write("u1,p1,43.8,181.0,100\n");
  expect_rejected("out of range");
  write("u1,,43.8,125.3,100\n");
  expect_rejected("empty user or poi");
  std::remove(path.c_str());
}

// NaN compares false against range bounds, so it needs an explicit
// isfinite check to be caught.
TEST(CsvTest, NonFiniteValuesRejected) {
  const std::string path = "/tmp/stisan_csv_nonfinite.csv";
  auto rejects = [&](const char* row) {
    FILE* f = fopen(path.c_str(), "w");
    fputs(row, f);
    fclose(f);
    auto r = LoadCsv(path, "x");
    ASSERT_FALSE(r.ok()) << "accepted: " << row;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  };
  rejects("u1,p1,nan,125.3,100\n");
  rejects("u1,p1,43.8,nan,100\n");
  rejects("u1,p1,inf,125.3,100\n");
  rejects("u1,p1,43.8,125.3,nan\n");
  rejects("u1,p1,43.8,125.3,inf\n");
  std::remove(path.c_str());
}

TEST(CsvTest, HeaderSkippedAndSorted) {
  const std::string path = "/tmp/stisan_csv_header.csv";
  {
    FILE* f = fopen(path.c_str(), "w");
    fputs("user,poi,lat,lon,timestamp\n", f);
    fputs("u1,p1,43.8,125.3,2000\n", f);
    fputs("u1,p2,43.9,125.4,1000\n", f);  // out of order
    fclose(f);
  }
  auto r = LoadCsv(path, "x");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->user_seqs.size(), 1u);
  EXPECT_EQ(r->user_seqs[0][0].timestamp, 1000.0);
  EXPECT_EQ(r->user_seqs[0][1].timestamp, 2000.0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace stisan::data
