#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace stisan {
namespace {

TEST(TensorTest, ZerosShapeAndValues) {
  Tensor t = Tensor::Zeros({2, 3});
  EXPECT_EQ(t.shape(), (Shape{2, 3}));
  EXPECT_EQ(t.numel(), 6);
  for (int64_t i = 0; i < 6; ++i) EXPECT_EQ(t.data()[i], 0.0f);
}

TEST(TensorTest, FullAndOnes) {
  Tensor t = Tensor::Full({4}, 2.5f);
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(t.data()[i], 2.5f);
  Tensor o = Tensor::Ones({2, 2});
  EXPECT_EQ(o.at({1, 1}), 1.0f);
}

TEST(TensorTest, FromVectorAndAt) {
  Tensor t = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at({0, 0}), 1.0f);
  EXPECT_EQ(t.at({0, 1}), 2.0f);
  EXPECT_EQ(t.at({1, 0}), 3.0f);
  t.set({1, 1}, 9.0f);
  EXPECT_EQ(t.at({1, 1}), 9.0f);
}

TEST(TensorTest, NegativeSizeIndexing) {
  Tensor t = Tensor::Zeros({2, 3, 4});
  EXPECT_EQ(t.size(-1), 4);
  EXPECT_EQ(t.size(-3), 2);
}

TEST(TensorTest, RandnStats) {
  Rng rng(1);
  Tensor t = Tensor::Randn({10000}, rng, 2.0f);
  double sum = 0, sq = 0;
  for (int64_t i = 0; i < t.numel(); ++i) {
    sum += t.data()[i];
    sq += double(t.data()[i]) * t.data()[i];
  }
  EXPECT_NEAR(sum / t.numel(), 0.0, 0.1);
  EXPECT_NEAR(sq / t.numel(), 4.0, 0.3);
}

TEST(TensorTest, XavierBounds) {
  Rng rng(2);
  Tensor t = Tensor::XavierUniform(64, 64, rng);
  const float bound = std::sqrt(6.0f / 128.0f);
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_GE(t.data()[i], -bound);
    EXPECT_LE(t.data()[i], bound);
  }
  EXPECT_TRUE(t.requires_grad());
}

TEST(TensorTest, DetachSharesNothing) {
  Tensor a = Tensor::Ones({2}, /*requires_grad=*/true);
  Tensor d = a.Detach();
  EXPECT_FALSE(d.requires_grad());
  d.data()[0] = 5.0f;
  EXPECT_EQ(a.data()[0], 1.0f);
}

TEST(TensorTest, CopyIsShallow) {
  Tensor a = Tensor::Ones({2});
  Tensor b = a;
  b.data()[0] = 3.0f;
  EXPECT_EQ(a.data()[0], 3.0f);
}

// ---- Zero-copy views -----------------------------------------------------------

TEST(TensorView, ReshapeSharesStorage) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = ops::Reshape(a, {3, 2});
  EXPECT_EQ(r.storage_data(), a.storage_data());
  EXPECT_TRUE(r.IsContiguous());
  EXPECT_EQ(r.at({2, 1}), 6.0f);
}

TEST(TensorView, SliceDim0IsContiguousOffsetView) {
  Tensor a = Tensor::FromVector({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor s = ops::Slice(a, 0, 1, 3);
  EXPECT_EQ(s.storage_data(), a.storage_data());
  EXPECT_TRUE(s.IsContiguous());
  EXPECT_EQ(s.data(), a.data() + 2);  // offset past the first row
  EXPECT_EQ(s.at({0, 0}), 3.0f);
}

TEST(TensorView, SliceInnerDimIsNonContiguousView) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor s = ops::Slice(a, 1, 1, 3);
  EXPECT_EQ(s.storage_data(), a.storage_data());
  EXPECT_FALSE(s.IsContiguous());
  EXPECT_EQ(s.ToVector(), (std::vector<float>{2, 3, 5, 6}));
}

TEST(TensorView, TransposeSharesStorageAndSwapsStrides) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = ops::TransposeLast2(a);
  EXPECT_EQ(t.storage_data(), a.storage_data());
  EXPECT_EQ(t.shape(), (Shape{3, 2}));
  EXPECT_EQ(t.strides(), (std::vector<int64_t>{1, 3}));
  EXPECT_FALSE(t.IsContiguous());
  EXPECT_EQ(t.ToVector(), (std::vector<float>{1, 4, 2, 5, 3, 6}));
}

TEST(TensorView, ContiguousOnContiguousIsIdentity) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor c = a.Contiguous();
  EXPECT_EQ(c.storage_data(), a.storage_data());
  // A non-contiguous view materialises into fresh storage.
  Tensor t = ops::TransposeLast2(a).Contiguous();
  EXPECT_NE(t.storage_data(), a.storage_data());
  EXPECT_TRUE(t.IsContiguous());
  EXPECT_EQ(t.ToVector(), (std::vector<float>{1, 3, 2, 4}));
}

TEST(TensorView, ViewReflectsBaseMutation) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor t = ops::TransposeLast2(a);
  a.set({0, 1}, 9.0f);
  EXPECT_EQ(t.at({1, 0}), 9.0f);
}

TEST(TensorView, ChainedViewsShareStorage) {
  Tensor a = Tensor::FromVector({2, 2, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor v = ops::Slice(ops::TransposeLast2(ops::Reshape(a, {2, 4})), 0, 1, 3);
  EXPECT_EQ(v.storage_data(), a.storage_data());
  EXPECT_EQ(v.shape(), (Shape{2, 2}));
  EXPECT_EQ(v.ToVector(), (std::vector<float>{2, 6, 3, 7}));
}

TEST(TensorView, OverlappingSliceGradsAccumulateInBase) {
  // loss = sum(a[0:3]) + sum(a[1:4]) -> da = {1, 2, 2, 1}: the two views
  // write into the same storage-wide grad buffer.
  Tensor a = Tensor::FromVector({4}, {1, 2, 3, 4}, /*requires_grad=*/true);
  Tensor loss = ops::Sum(ops::Slice(a, 0, 0, 3)) + ops::Sum(ops::Slice(a, 0, 1, 4));
  loss.Backward();
  const float* g = a.grad_data();
  EXPECT_EQ(g[0], 1.0f);
  EXPECT_EQ(g[1], 2.0f);
  EXPECT_EQ(g[2], 2.0f);
  EXPECT_EQ(g[3], 1.0f);
}

TEST(TensorView, DataOnNonContiguousViewIsRejected) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor t = ops::TransposeLast2(a);
  EXPECT_DEATH((void)t.data(), "contiguous");
}

// ---- Forward values ------------------------------------------------------------

TEST(OpsForward, AddSameShape) {
  Tensor a = Tensor::FromVector({3}, {1, 2, 3});
  Tensor b = Tensor::FromVector({3}, {10, 20, 30});
  Tensor c = a + b;
  EXPECT_EQ(c.ToVector(), (std::vector<float>{11, 22, 33}));
}

TEST(OpsForward, BroadcastRowVector) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({3}, {10, 20, 30});
  Tensor c = a + b;
  EXPECT_EQ(c.ToVector(), (std::vector<float>{11, 22, 33, 14, 25, 36}));
}

TEST(OpsForward, BroadcastColumn) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({2, 1}, {100, 200});
  Tensor c = a + b;
  EXPECT_EQ(c.ToVector(), (std::vector<float>{101, 102, 103, 204, 205, 206}));
}

TEST(OpsForward, MulDivSub) {
  Tensor a = Tensor::FromVector({2}, {6, 8});
  Tensor b = Tensor::FromVector({2}, {2, 4});
  EXPECT_EQ((a * b).ToVector(), (std::vector<float>{12, 32}));
  EXPECT_EQ((a / b).ToVector(), (std::vector<float>{3, 2}));
  EXPECT_EQ((a - b).ToVector(), (std::vector<float>{4, 4}));
}

TEST(OpsForward, ScalarOps) {
  Tensor a = Tensor::FromVector({2}, {1, -2});
  EXPECT_EQ((a + 1.0f).ToVector(), (std::vector<float>{2, -1}));
  EXPECT_EQ((a * 3.0f).ToVector(), (std::vector<float>{3, -6}));
  EXPECT_EQ((-a).ToVector(), (std::vector<float>{-1, 2}));
}

TEST(OpsForward, MatMul2D) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = ops::MatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 2}));
  EXPECT_EQ(c.ToVector(), (std::vector<float>{58, 64, 139, 154}));
}

TEST(OpsForward, MatMulBatched) {
  Tensor a = Tensor::FromVector({2, 1, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({2, 2, 1}, {5, 6, 7, 8});
  Tensor c = ops::MatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 1, 1}));
  EXPECT_EQ(c.ToVector(), (std::vector<float>{17, 53}));
}

TEST(OpsForward, MatMul3Dx2D) {
  Tensor a = Tensor::FromVector({2, 2, 2}, {1, 0, 0, 1, 2, 0, 0, 2});
  Tensor b = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor c = ops::MatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 2, 2}));
  EXPECT_EQ(c.ToVector(), (std::vector<float>{1, 2, 3, 4, 2, 4, 6, 8}));
}

TEST(OpsForward, TransposeLast2) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = ops::TransposeLast2(a);
  EXPECT_EQ(t.shape(), (Shape{3, 2}));
  EXPECT_EQ(t.ToVector(), (std::vector<float>{1, 4, 2, 5, 3, 6}));
}

TEST(OpsForward, TransposeBatched) {
  Tensor a = Tensor::FromVector({2, 2, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor t = ops::TransposeLast2(a);
  EXPECT_EQ(t.ToVector(), (std::vector<float>{1, 3, 2, 4, 5, 7, 6, 8}));
}

TEST(OpsForward, SoftmaxRowsSumToOne) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, -1, 0, 1});
  Tensor s = ops::Softmax(a);
  for (int r = 0; r < 2; ++r) {
    float sum = 0;
    for (int c = 0; c < 3; ++c) sum += s.at({r, c});
    EXPECT_NEAR(sum, 1.0f, 1e-6f);
  }
  // Monotone in logits.
  EXPECT_LT(s.at({0, 0}), s.at({0, 2}));
}

TEST(OpsForward, SoftmaxStableWithLargeLogits) {
  Tensor a = Tensor::FromVector({1, 2}, {1000.0f, 1000.0f});
  Tensor s = ops::Softmax(a);
  EXPECT_NEAR(s.at({0, 0}), 0.5f, 1e-6f);
}

TEST(OpsForward, SoftmaxWithNegInfMask) {
  Tensor a = Tensor::FromVector({1, 3}, {0.0f, -1e9f, 0.0f});
  Tensor s = ops::Softmax(a);
  EXPECT_NEAR(s.at({0, 0}), 0.5f, 1e-6f);
  EXPECT_NEAR(s.at({0, 1}), 0.0f, 1e-9f);
}

TEST(OpsForward, LogSoftmaxMatchesLogOfSoftmax) {
  Tensor a = Tensor::FromVector({1, 4}, {0.1f, -2.0f, 3.0f, 0.5f});
  Tensor ls = ops::LogSoftmax(a);
  Tensor s = ops::Softmax(a);
  for (int c = 0; c < 4; ++c)
    EXPECT_NEAR(ls.at({0, c}), std::log(s.at({0, c})), 1e-5f);
}

TEST(OpsForward, UnaryValues) {
  Tensor a = Tensor::FromVector({3}, {-1, 0, 2});
  EXPECT_EQ(ops::Relu(a).ToVector(), (std::vector<float>{0, 0, 2}));
  EXPECT_NEAR(ops::Sigmoid(a).ToVector()[2], 1.0f / (1.0f + std::exp(-2.0f)),
              1e-6f);
  EXPECT_NEAR(ops::Tanh(a).ToVector()[0], std::tanh(-1.0f), 1e-6f);
  EXPECT_NEAR(ops::Exp(a).ToVector()[2], std::exp(2.0f), 1e-4f);
}

TEST(OpsForward, TrigValues) {
  Tensor a = Tensor::FromVector({2}, {0.0f, float(M_PI / 2)});
  EXPECT_NEAR(ops::Sin(a).ToVector()[1], 1.0f, 1e-6f);
  EXPECT_NEAR(ops::Cos(a).ToVector()[0], 1.0f, 1e-6f);
}

TEST(OpsForward, SoftplusStable) {
  Tensor a = Tensor::FromVector({3}, {-100.0f, 0.0f, 100.0f});
  auto v = ops::Softplus(a).ToVector();
  EXPECT_NEAR(v[0], 0.0f, 1e-6f);
  EXPECT_NEAR(v[1], std::log(2.0f), 1e-6f);
  EXPECT_NEAR(v[2], 100.0f, 1e-4f);
}

TEST(OpsForward, LogSigmoidStable) {
  Tensor a = Tensor::FromVector({2}, {-100.0f, 100.0f});
  auto v = ops::LogSigmoid(a).ToVector();
  EXPECT_NEAR(v[0], -100.0f, 1e-4f);
  EXPECT_NEAR(v[1], 0.0f, 1e-6f);
}

TEST(OpsForward, SumMean) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(ops::Sum(a).ToVector()[0], 10.0f);
  EXPECT_EQ(ops::Mean(a).ToVector()[0], 2.5f);
}

TEST(OpsForward, SumDim) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor s0 = ops::SumDim(a, 0);
  EXPECT_EQ(s0.shape(), (Shape{3}));
  EXPECT_EQ(s0.ToVector(), (std::vector<float>{5, 7, 9}));
  Tensor s1 = ops::SumDim(a, 1, /*keepdim=*/true);
  EXPECT_EQ(s1.shape(), (Shape{2, 1}));
  EXPECT_EQ(s1.ToVector(), (std::vector<float>{6, 15}));
}

TEST(OpsForward, AbsClampPow) {
  Tensor a = Tensor::FromVector({3}, {-2, 0, 3});
  EXPECT_EQ(ops::Abs(a).ToVector(), (std::vector<float>{2, 0, 3}));
  EXPECT_EQ(ops::Clamp(a, -1.0f, 1.0f).ToVector(),
            (std::vector<float>{-1, 0, 1}));
  Tensor b = Tensor::FromVector({2}, {2, 3});
  auto p = ops::PowScalar(b, 2.0f).ToVector();
  EXPECT_NEAR(p[0], 4.0f, 1e-5f);
  EXPECT_NEAR(p[1], 9.0f, 1e-5f);
}

TEST(OpsForward, MinMeanDim) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 5, 3, 7, 2, 6});
  EXPECT_EQ(ops::MinDim(a, 1).ToVector(), (std::vector<float>{1, 2}));
  EXPECT_EQ(ops::MeanDim(a, 1).ToVector(), (std::vector<float>{3, 5}));
  EXPECT_EQ(ops::MeanDim(a, 0).ToVector(), (std::vector<float>{4, 3.5, 4.5}));
}

TEST(OpsForward, MaxDim) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 5, 3, 7, 2, 6});
  Tensor m = ops::MaxDim(a, 1);
  EXPECT_EQ(m.ToVector(), (std::vector<float>{5, 7}));
  Tensor m0 = ops::MaxDim(a, 0);
  EXPECT_EQ(m0.ToVector(), (std::vector<float>{7, 5, 6}));
}

TEST(OpsForward, Reshape) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = ops::Reshape(a, {3, 2});
  EXPECT_EQ(r.shape(), (Shape{3, 2}));
  EXPECT_EQ(r.ToVector(), a.ToVector());
}

TEST(OpsForward, ConcatLastDim) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({2, 1}, {9, 10});
  Tensor c = ops::Concat(a, b, 1);
  EXPECT_EQ(c.shape(), (Shape{2, 3}));
  EXPECT_EQ(c.ToVector(), (std::vector<float>{1, 2, 9, 3, 4, 10}));
}

TEST(OpsForward, ConcatDim0) {
  Tensor a = Tensor::FromVector({1, 2}, {1, 2});
  Tensor b = Tensor::FromVector({2, 2}, {3, 4, 5, 6});
  Tensor c = ops::Concat(a, b, 0);
  EXPECT_EQ(c.shape(), (Shape{3, 2}));
  EXPECT_EQ(c.ToVector(), (std::vector<float>{1, 2, 3, 4, 5, 6}));
}

TEST(OpsForward, Slice) {
  Tensor a = Tensor::FromVector({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor s = ops::Slice(a, 0, 1, 3);
  EXPECT_EQ(s.shape(), (Shape{2, 2}));
  EXPECT_EQ(s.ToVector(), (std::vector<float>{3, 4, 5, 6}));
  Tensor c = ops::Slice(a, 1, 0, 1);
  EXPECT_EQ(c.ToVector(), (std::vector<float>{1, 3, 5}));
}

TEST(OpsForward, Stack0) {
  Tensor a = Tensor::FromVector({2}, {1, 2});
  Tensor b = Tensor::FromVector({2}, {3, 4});
  Tensor s = ops::Stack0({a, b});
  EXPECT_EQ(s.shape(), (Shape{2, 2}));
  EXPECT_EQ(s.ToVector(), (std::vector<float>{1, 2, 3, 4}));
}

TEST(OpsForward, Unfold1D) {
  Tensor a = Tensor::FromVector({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor u = ops::Unfold1D(a, 2);
  EXPECT_EQ(u.shape(), (Shape{2, 4}));
  EXPECT_EQ(u.ToVector(), (std::vector<float>{1, 2, 3, 4, 3, 4, 5, 6}));
}

TEST(OpsForward, EmbeddingLookup) {
  Tensor w = Tensor::FromVector({3, 2}, {0, 1, 10, 11, 20, 21});
  Tensor e = ops::EmbeddingLookup(w, {2, 0, 2});
  EXPECT_EQ(e.shape(), (Shape{3, 2}));
  EXPECT_EQ(e.ToVector(), (std::vector<float>{20, 21, 0, 1, 20, 21}));
}

TEST(OpsForward, EmbeddingPaddingIsZero) {
  Tensor w = Tensor::FromVector({2, 2}, {5, 5, 7, 7});
  Tensor e = ops::EmbeddingLookup(w, {0, 1}, /*padding_idx=*/0);
  EXPECT_EQ(e.ToVector(), (std::vector<float>{0, 0, 7, 7}));
}

TEST(OpsForward, LayerNormNormalises) {
  Tensor x = Tensor::FromVector({2, 4}, {1, 2, 3, 4, 10, 10, 10, 10});
  Tensor gamma = Tensor::Ones({4});
  Tensor beta = Tensor::Zeros({4});
  Tensor y = ops::LayerNorm(x, gamma, beta);
  // Row 0: mean 2.5, normalized values sum to ~0.
  float sum = 0;
  for (int c = 0; c < 4; ++c) sum += y.at({0, c});
  EXPECT_NEAR(sum, 0.0f, 1e-5f);
  // Constant row maps to ~0 everywhere.
  for (int c = 0; c < 4; ++c) EXPECT_NEAR(y.at({1, c}), 0.0f, 1e-3f);
}

TEST(OpsForward, LayerNormAffine) {
  Tensor x = Tensor::FromVector({1, 2}, {0, 2});
  Tensor gamma = Tensor::FromVector({2}, {2, 2});
  Tensor beta = Tensor::FromVector({2}, {1, 1});
  Tensor y = ops::LayerNorm(x, gamma, beta);
  // Normalised row is {-1, +1}; affine -> {-1, 3}.
  EXPECT_NEAR(y.at({0, 0}), -1.0f, 1e-3f);
  EXPECT_NEAR(y.at({0, 1}), 3.0f, 1e-3f);
}

TEST(OpsForward, DropoutEvalIsIdentity) {
  Rng rng(3);
  Tensor a = Tensor::FromVector({4}, {1, 2, 3, 4});
  Tensor d = ops::Dropout(a, 0.5f, rng, /*training=*/false);
  EXPECT_EQ(d.ToVector(), a.ToVector());
}

TEST(OpsForward, DropoutTrainZeroesAndScales) {
  Rng rng(3);
  Tensor a = Tensor::Ones({10000});
  Tensor d = ops::Dropout(a, 0.5f, rng, /*training=*/true);
  int zeros = 0;
  double sum = 0;
  for (int64_t i = 0; i < d.numel(); ++i) {
    if (d.data()[i] == 0.0f)
      ++zeros;
    else
      EXPECT_NEAR(d.data()[i], 2.0f, 1e-6f);
    sum += d.data()[i];
  }
  EXPECT_NEAR(zeros / 10000.0, 0.5, 0.03);
  EXPECT_NEAR(sum / 10000.0, 1.0, 0.05);  // expectation preserved
}

// ---- Backward basics (exact analytic cases) ---------------------------------------

TEST(Backward, AddGradIsOne) {
  Tensor a = Tensor::FromVector({3}, {1, 2, 3}, /*requires_grad=*/true);
  Tensor loss = ops::Sum(a + a);
  loss.Backward();
  for (int i = 0; i < 3; ++i) EXPECT_EQ(a.grad_data()[i], 2.0f);
}

TEST(Backward, MulGradIsOtherOperand) {
  Tensor a = Tensor::FromVector({2}, {3, 4}, true);
  Tensor b = Tensor::FromVector({2}, {5, 6}, true);
  ops::Sum(a * b).Backward();
  EXPECT_EQ(a.grad_data()[0], 5.0f);
  EXPECT_EQ(a.grad_data()[1], 6.0f);
  EXPECT_EQ(b.grad_data()[0], 3.0f);
}

TEST(Backward, BroadcastGradReduces) {
  Tensor a = Tensor::Ones({2, 3}).SetRequiresGrad(true);
  Tensor b = Tensor::Ones({3}).SetRequiresGrad(true);
  ops::Sum(a + b).Backward();
  // b participates in 2 rows -> grad 2 per element.
  for (int i = 0; i < 3; ++i) EXPECT_EQ(b.grad_data()[i], 2.0f);
}

TEST(Backward, MatMulGrad) {
  Tensor a = Tensor::FromVector({1, 2}, {1, 2}, true);
  Tensor b = Tensor::FromVector({2, 1}, {3, 4}, true);
  ops::Sum(ops::MatMul(a, b)).Backward();
  EXPECT_EQ(a.grad_data()[0], 3.0f);
  EXPECT_EQ(a.grad_data()[1], 4.0f);
  EXPECT_EQ(b.grad_data()[0], 1.0f);
  EXPECT_EQ(b.grad_data()[1], 2.0f);
}

TEST(Backward, DiamondGraphAccumulates) {
  // loss = sum(a*a) + sum(a) -> grad = 2a + 1
  Tensor a = Tensor::FromVector({2}, {3, -1}, true);
  Tensor loss = ops::Sum(a * a) + ops::Sum(a);
  loss.Backward();
  EXPECT_EQ(a.grad_data()[0], 7.0f);
  EXPECT_EQ(a.grad_data()[1], -1.0f);
}

TEST(Backward, ReusedTensorAccumulates) {
  Tensor a = Tensor::FromVector({1}, {2}, true);
  Tensor loss = ops::Sum(a * a * a);  // a^3 -> 3 a^2 = 12
  loss.Backward();
  EXPECT_NEAR(a.grad_data()[0], 12.0f, 1e-5f);
}

TEST(Backward, EmbeddingScatterAdd) {
  Tensor w = Tensor::FromVector({3, 1}, {1, 2, 3}, true);
  Tensor e = ops::EmbeddingLookup(w, {1, 1, 2});
  ops::Sum(e).Backward();
  EXPECT_EQ(w.grad_data()[0], 0.0f);
  EXPECT_EQ(w.grad_data()[1], 2.0f);
  EXPECT_EQ(w.grad_data()[2], 1.0f);
}

TEST(Backward, PaddingIdxReceivesNoGrad) {
  Tensor w = Tensor::FromVector({2, 1}, {1, 2}, true);
  Tensor e = ops::EmbeddingLookup(w, {0, 1}, /*padding_idx=*/0);
  ops::Sum(e).Backward();
  EXPECT_EQ(w.grad_data()[0], 0.0f);
  EXPECT_EQ(w.grad_data()[1], 1.0f);
}

TEST(Backward, NoGradGuardStopsRecording) {
  Tensor a = Tensor::FromVector({1}, {2}, true);
  Tensor out;
  {
    NoGradGuard guard;
    out = a * a;
  }
  EXPECT_FALSE(out.requires_grad());
}

TEST(Backward, DetachBlocksFlow) {
  Tensor a = Tensor::FromVector({1}, {2}, true);
  Tensor b = a * 3.0f;
  Tensor loss = ops::Sum(b.Detach() * a);
  loss.Backward();
  // d/da [6 * a] = 6 (no flow through detached factor).
  EXPECT_NEAR(a.grad_data()[0], 6.0f, 1e-6f);
}

TEST(Backward, ScalarChainRule) {
  Tensor a = Tensor::FromVector({1}, {0.5f}, true);
  Tensor loss = ops::Sum(ops::Sigmoid(a * 2.0f));
  loss.Backward();
  const float s = 1.0f / (1.0f + std::exp(-1.0f));
  EXPECT_NEAR(a.grad_data()[0], 2.0f * s * (1 - s), 1e-5f);
}

}  // namespace
}  // namespace stisan
