#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.h"
#include "tensor/optimizer.h"

namespace stisan {
namespace {

// Minimises f(w) = sum((w - target)^2) and checks convergence.
float RunQuadratic(Optimizer& opt, Tensor& w, const Tensor& target,
                   int steps) {
  float loss_val = 0.0f;
  for (int s = 0; s < steps; ++s) {
    opt.ZeroGrad();
    Tensor loss = ops::Sum(ops::Square(w - target));
    loss.Backward();
    opt.Step();
    loss_val = loss.data()[0];
  }
  return loss_val;
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Tensor w = Tensor::Zeros({4}, true);
  Tensor target = Tensor::FromVector({4}, {1, -2, 3, 0.5f});
  Sgd opt({w}, {.lr = 0.1f});
  float loss = RunQuadratic(opt, w, target, 100);
  EXPECT_LT(loss, 1e-6f);
  EXPECT_NEAR(w.data()[1], -2.0f, 1e-3f);
}

TEST(SgdTest, MomentumAccelerates) {
  Tensor w1 = Tensor::Zeros({4}, true);
  Tensor w2 = Tensor::Zeros({4}, true);
  Tensor target = Tensor::FromVector({4}, {1, -2, 3, 0.5f});
  Sgd plain({w1}, {.lr = 0.01f});
  Sgd mom({w2}, {.lr = 0.01f, .momentum = 0.9f});
  float loss_plain = RunQuadratic(plain, w1, target, 30);
  float loss_mom = RunQuadratic(mom, w2, target, 30);
  EXPECT_LT(loss_mom, loss_plain);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Tensor w = Tensor::Zeros({4}, true);
  Tensor target = Tensor::FromVector({4}, {1, -2, 3, 0.5f});
  Adam opt({w}, {.lr = 0.1f});
  float loss = RunQuadratic(opt, w, target, 200);
  EXPECT_LT(loss, 1e-4f);
}

TEST(AdamTest, WeightDecayShrinksWeights) {
  // With a zero-gradient loss, weight decay alone should shrink weights.
  Tensor w = Tensor::Full({2}, 1.0f, true);
  Adam opt({w}, {.lr = 0.01f, .weight_decay = 1.0f});
  for (int i = 0; i < 50; ++i) {
    opt.ZeroGrad();
    opt.Step();
  }
  EXPECT_LT(std::fabs(w.data()[0]), 1.0f);
}

TEST(OptimizerTest, ZeroGradClears) {
  Tensor w = Tensor::Ones({2}, true);
  Sgd opt({w}, {.lr = 0.1f});
  Tensor loss = ops::Sum(w * w);
  loss.Backward();
  EXPECT_NE(w.grad_data()[0], 0.0f);
  opt.ZeroGrad();
  EXPECT_EQ(w.grad_data()[0], 0.0f);
}

TEST(OptimizerTest, ClipGradNorm) {
  Tensor w = Tensor::Ones({2}, true);
  Sgd opt({w}, {.lr = 0.1f});
  opt.ZeroGrad();
  w.mutable_grad_data()[0] = 3.0f;
  w.mutable_grad_data()[1] = 4.0f;  // norm 5
  float pre = opt.ClipGradNorm(1.0f);
  EXPECT_NEAR(pre, 5.0f, 1e-5f);
  EXPECT_NEAR(w.grad_data()[0], 0.6f, 1e-5f);
  EXPECT_NEAR(w.grad_data()[1], 0.8f, 1e-5f);
}

TEST(OptimizerTest, ClipNoOpBelowThreshold) {
  Tensor w = Tensor::Ones({1}, true);
  Sgd opt({w}, {.lr = 0.1f});
  opt.ZeroGrad();
  w.mutable_grad_data()[0] = 0.5f;
  opt.ClipGradNorm(1.0f);
  EXPECT_NEAR(w.grad_data()[0], 0.5f, 1e-6f);
}

TEST(AdamTest, BeatsNoisyScaleMismatch) {
  // Two params with wildly different gradient scales: Adam normalises.
  Tensor w = Tensor::FromVector({2}, {10.0f, 10.0f}, true);
  Adam opt({w}, {.lr = 0.5f});
  for (int s = 0; s < 300; ++s) {
    opt.ZeroGrad();
    Tensor scale = Tensor::FromVector({2}, {100.0f, 0.01f});
    Tensor loss = ops::Sum(ops::Square(w) * scale);
    loss.Backward();
    opt.Step();
  }
  EXPECT_NEAR(w.data()[0], 0.0f, 0.1f);
  EXPECT_NEAR(w.data()[1], 0.0f, 0.5f);
}

}  // namespace
}  // namespace stisan
