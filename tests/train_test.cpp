#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "data/synthetic.h"
#include "geo/geo.h"
#include "train/loss.h"
#include "train/negative_sampler.h"

namespace stisan::train {
namespace {

// ---- Losses ------------------------------------------------------------------

TEST(WeightedBceTest, PerfectScoresGiveLowLoss) {
  Tensor pos = Tensor::Full({4}, 10.0f);
  Tensor neg = Tensor::Full({4, 3}, -10.0f);
  Tensor loss = WeightedBceLoss(pos, neg, 1.0f);
  EXPECT_LT(loss.data()[0], 1e-3f);
}

TEST(WeightedBceTest, WrongScoresGiveHighLoss) {
  Tensor pos = Tensor::Full({4}, -10.0f);
  Tensor neg = Tensor::Full({4, 3}, 10.0f);
  EXPECT_GT(WeightedBceLoss(pos, neg, 1.0f).data()[0], 5.0f);
}

TEST(WeightedBceTest, HardNegativesDominateAtLowTemperature) {
  // One hard negative (high score) among easy ones. At T -> 0 the weight
  // concentrates on the hard negative; at huge T weights become uniform, so
  // the low-T loss must exceed the high-T loss.
  Tensor pos = Tensor::Full({1}, 2.0f);
  Tensor neg = Tensor::FromVector({1, 3}, {3.0f, -5.0f, -5.0f});
  const float low_t = WeightedBceLoss(pos, neg, 0.1f).data()[0];
  const float high_t = WeightedBceLoss(pos, neg, 1000.0f).data()[0];
  EXPECT_GT(low_t, high_t);
}

TEST(WeightedBceTest, GradientsFlowToLogitsNotWeights) {
  Tensor pos = Tensor::Zeros({2}, true);
  Tensor neg = Tensor::Zeros({2, 3}, true);
  Tensor loss = WeightedBceLoss(pos, neg, 1.0f);
  loss.Backward();
  EXPECT_TRUE(pos.has_grad());
  EXPECT_TRUE(neg.has_grad());
  // Positive logit gradient is -sigmoid(-y)/m = -0.5/2.
  EXPECT_NEAR(pos.grad_data()[0], -0.25f, 1e-5f);
}

TEST(BceTest, SymmetricAtZero) {
  Tensor pos = Tensor::Zeros({3});
  Tensor neg = Tensor::Zeros({3, 1});
  // -log(0.5) * 2 per step.
  EXPECT_NEAR(BceLoss(pos, neg).data()[0], 2.0f * std::log(2.0f), 1e-5f);
}

TEST(BprTest, OrderingDrivesLoss) {
  Tensor pos = Tensor::Full({4}, 2.0f);
  Tensor neg = Tensor::Full({4}, -2.0f);
  EXPECT_LT(BprLoss(pos, neg).data()[0], BprLoss(neg, pos).data()[0]);
}

// ---- Samplers ----------------------------------------------------------------

TEST(UniformSamplerTest, ProducesValidIdsAvoidingExcluded) {
  UniformNegativeSampler sampler(50);
  Rng rng(5);
  std::unordered_set<int64_t> exclude = {7, 8, 9};
  for (int trial = 0; trial < 20; ++trial) {
    auto ids = sampler.Sample(7, 10, exclude, rng);
    EXPECT_EQ(ids.size(), 10u);
    for (int64_t id : ids) {
      EXPECT_GE(id, 1);
      EXPECT_LE(id, 50);
      EXPECT_FALSE(exclude.contains(id));
    }
  }
}

TEST(UniformSamplerTest, CoversTheRange) {
  UniformNegativeSampler sampler(20);
  Rng rng(6);
  std::unordered_set<int64_t> seen;
  for (int i = 0; i < 100; ++i) {
    for (int64_t id : sampler.Sample(1, 5, {}, rng)) seen.insert(id);
  }
  EXPECT_GT(seen.size(), 15u);
}

TEST(KnnSamplerTest, NegativesComeFromNeighborhood) {
  auto ds = data::GenerateSynthetic(data::GowallaLikeConfig(0.1));
  const int64_t k_neighborhood = 30;
  KnnNegativeSampler sampler(ds, k_neighborhood);
  Rng rng(7);
  const int64_t target = 5;
  const auto& target_loc = ds.poi_location(target);

  // Radius of the 30-NN ball around the target (brute force).
  std::vector<double> dists;
  for (int64_t p = 1; p <= ds.num_pois(); ++p) {
    if (p != target) {
      dists.push_back(geo::HaversineKm(target_loc, ds.poi_location(p)));
    }
  }
  std::sort(dists.begin(), dists.end());
  const double radius = dists[k_neighborhood - 1] + 1e-9;

  for (int trial = 0; trial < 10; ++trial) {
    auto ids = sampler.Sample(target, 8, {target}, rng);
    EXPECT_EQ(ids.size(), 8u);
    for (int64_t id : ids) {
      EXPECT_NE(id, target);
      EXPECT_LE(geo::HaversineKm(target_loc, ds.poi_location(id)), radius);
    }
  }
}

TEST(KnnSamplerTest, DifferentTargetsDifferentPools) {
  auto ds = data::GenerateSynthetic(data::GowallaLikeConfig(0.1));
  KnnNegativeSampler sampler(ds, 10);
  Rng rng(8);
  // Two distant targets should yield disjoint-ish negative pools.
  int64_t a = 1;
  int64_t b = a;
  double best = 0;
  for (int64_t p = 2; p <= ds.num_pois(); ++p) {
    const double d =
        geo::HaversineKm(ds.poi_location(a), ds.poi_location(p));
    if (d > best) {
      best = d;
      b = p;
    }
  }
  std::unordered_set<int64_t> pool_a, pool_b;
  for (int i = 0; i < 30; ++i) {
    for (int64_t id : sampler.Sample(a, 5, {a}, rng)) pool_a.insert(id);
    for (int64_t id : sampler.Sample(b, 5, {b}, rng)) pool_b.insert(id);
  }
  int64_t overlap = 0;
  for (int64_t id : pool_a) {
    if (pool_b.contains(id)) ++overlap;
  }
  EXPECT_LT(overlap, 3);
}

}  // namespace
}  // namespace stisan::train
