// SIMD kernel backend suite (label: "quant", with the int8 tests).
//
// The vector kernels (kernels_simd.cc) promise tolerance-level agreement
// with the scalar reference, not bit-identity — FMA contraction and 8-lane
// partial sums round differently. This suite pins that contract:
//
//  1. SIMD == scalar within tight tolerance on every kernel, including the
//     edge shapes serving produces: non-multiple-of-vector-width inner
//     dimensions (d=50), k=1, n=1, and m=1 single-query rows.
//  2. A seeded fuzz sweep over random GEMM / softmax / layernorm /
//     attention shapes.
//  3. What IS still bit-exact under SIMD: thread-count determinism (the
//     per-element reduction order never depends on the row partition) and
//     repeat-call determinism.
//  4. Dispatch controls: SetSimdEnabledForTesting and SimdBackendName.
//
// When the host CPU has no vector backend (x86 without AVX2), the
// comparisons degenerate to scalar-vs-scalar and pass trivially; the
// dispatch tests assert the scalar name instead.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "tensor/kernels.h"
#include "util/rng.h"

namespace stisan {
namespace {

class ScopedSimd {
 public:
  explicit ScopedSimd(int mode) { kernels::SetSimdEnabledForTesting(mode); }
  ~ScopedSimd() { kernels::SetSimdEnabledForTesting(-1); }
};

std::vector<float> RandomVec(size_t n, uint64_t seed, float scale = 1.0f) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = scale * static_cast<float>(rng.Normal());
  return v;
}

// |a - b| <= atol + rtol * |b| elementwise.
void ExpectClose(const std::vector<float>& got, const std::vector<float>& want,
                 float atol, float rtol, const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t i = 0; i < got.size(); ++i) {
    const float tol = atol + rtol * std::fabs(want[i]);
    ASSERT_NEAR(got[i], want[i], tol) << what << " at index " << i;
  }
}

struct GemmShape {
  int64_t m, k, n;
  bool ta, tb;
};

std::vector<float> RunGemm(const GemmShape& s, const std::vector<float>& a,
                           const std::vector<float>& b, bool accumulate,
                           int simd_mode) {
  ScopedSimd guard(simd_mode);
  std::vector<float> c(static_cast<size_t>(s.m * s.n), accumulate ? 0.5f : -1.0f);
  kernels::Gemm(a.data(), b.data(), c.data(), s.m, s.k, s.n, s.ta, s.tb,
                accumulate);
  return c;
}

void CheckGemmShape(const GemmShape& s, uint64_t seed) {
  const auto a = RandomVec(static_cast<size_t>(s.m * s.k), seed, 0.5f);
  const auto b = RandomVec(static_cast<size_t>(s.k * s.n), seed + 1, 0.5f);
  for (bool accumulate : {false, true}) {
    const auto scalar = RunGemm(s, a, b, accumulate, 0);
    const auto simd = RunGemm(s, a, b, accumulate, 1);
    ExpectClose(simd, scalar, 1e-5f, 1e-4f,
                "gemm m=" + std::to_string(s.m) + " k=" + std::to_string(s.k) +
                    " n=" + std::to_string(s.n) + " ta=" + std::to_string(s.ta) +
                    " tb=" + std::to_string(s.tb) +
                    " acc=" + std::to_string(accumulate));
  }
}

TEST(SimdGemm, ServingShapesAllVariants) {
  // [100,64]x[64,64] is the benchmark acceptance shape; d=50 exercises the
  // non-multiple-of-8 tail; k=1 / n=1 / m=1 are the degenerate single-query
  // serving rows.
  const std::vector<GemmShape> shapes = {
      {100, 64, 64, false, false}, {100, 64, 64, false, true},
      {100, 64, 64, true, false},  {100, 64, 64, true, true},
      {32, 50, 50, false, false},  {32, 50, 50, false, true},
      {1, 64, 64, false, false},   {1, 50, 128, false, true},
      {7, 1, 9, false, false},     {7, 1, 9, false, true},
      {5, 13, 1, false, false},    {5, 13, 1, true, false},
      {1, 1, 1, false, false},     {1, 1, 1, true, true},
  };
  uint64_t seed = 1000;
  for (const auto& s : shapes) CheckGemmShape(s, seed += 2);
}

TEST(SimdGemm, SparseProbsRowsAgree) {
  // The !ta paths skip exact-zero multipliers (attention-prob sparsity);
  // fmadd(0, x, c) == c, so the skip must be value-invisible in both
  // backends.
  const GemmShape s{16, 24, 24, false, false};
  auto a = RandomVec(static_cast<size_t>(s.m * s.k), 77, 0.5f);
  for (size_t i = 0; i < a.size(); i += 3) a[i] = 0.0f;
  const auto b = RandomVec(static_cast<size_t>(s.k * s.n), 78, 0.5f);
  const auto scalar = RunGemm(s, a, b, false, 0);
  const auto simd = RunGemm(s, a, b, false, 1);
  ExpectClose(simd, scalar, 1e-5f, 1e-4f, "sparse gemm");
}

TEST(SimdGemm, BatchedMatchesPerMatrix) {
  const int64_t batch = 3, m = 9, k = 17, n = 21;
  const auto a = RandomVec(static_cast<size_t>(batch * m * k), 5, 0.5f);
  const auto b = RandomVec(static_cast<size_t>(batch * k * n), 6, 0.5f);
  ScopedSimd guard(1);
  std::vector<float> c(static_cast<size_t>(batch * m * n));
  kernels::BatchedGemm(a.data(), b.data(), c.data(), batch, m, k, n, false,
                       false, false);
  // Each slice must equal a standalone Gemm on the same block (the batch
  // loop may not perturb per-matrix results).
  for (int64_t t = 0; t < batch; ++t) {
    std::vector<float> ct(static_cast<size_t>(m * n));
    kernels::Gemm(a.data() + t * m * k, b.data() + t * k * n, ct.data(), m, k,
                  n, false, false, false);
    for (int64_t i = 0; i < m * n; ++i)
      ASSERT_EQ(c[static_cast<size_t>(t * m * n + i)],
                ct[static_cast<size_t>(i)])
          << "batch " << t << " element " << i;
  }
}

TEST(SimdSoftmax, RowsAgreeIncludingMaskedLogits) {
  for (int64_t d : {1, 3, 7, 8, 9, 50, 64, 100, 128}) {
    const int64_t rows = 6;
    auto x = RandomVec(static_cast<size_t>(rows * d), 40 + d, 2.0f);
    // A -1e9-masked tail like the composed attention path produces.
    if (d >= 4) {
      for (int64_t j = d - 2; j < d; ++j) x[static_cast<size_t>(j)] = -1e9f;
    }
    std::vector<float> ys(x.size()), yv(x.size());
    {
      ScopedSimd guard(0);
      kernels::SoftmaxRows(x.data(), ys.data(), rows, d);
    }
    {
      ScopedSimd guard(1);
      kernels::SoftmaxRows(x.data(), yv.data(), rows, d);
    }
    ExpectClose(yv, ys, 2e-6f, 1e-4f, "softmax d=" + std::to_string(d));
    // Probabilities must still sum to ~1 per row.
    for (int64_t r = 0; r < rows; ++r) {
      float sum = 0.0f;
      for (int64_t j = 0; j < d; ++j) sum += yv[static_cast<size_t>(r * d + j)];
      ASSERT_NEAR(sum, 1.0f, 1e-4f);
    }
  }
}

TEST(SimdLogSoftmax, RowsAgree) {
  for (int64_t d : {1, 5, 8, 50, 64, 100}) {
    const int64_t rows = 4;
    const auto x = RandomVec(static_cast<size_t>(rows * d), 60 + d, 2.0f);
    std::vector<float> ys(x.size()), yv(x.size());
    {
      ScopedSimd guard(0);
      kernels::LogSoftmaxRows(x.data(), ys.data(), rows, d);
    }
    {
      ScopedSimd guard(1);
      kernels::LogSoftmaxRows(x.data(), yv.data(), rows, d);
    }
    ExpectClose(yv, ys, 1e-5f, 1e-4f, "logsoftmax d=" + std::to_string(d));
  }
}

TEST(SimdLayerNorm, RowsAndStatsAgree) {
  for (int64_t d : {2, 8, 16, 50, 64}) {
    const int64_t rows = 5;
    const auto x = RandomVec(static_cast<size_t>(rows * d), 80 + d);
    const auto gamma = RandomVec(static_cast<size_t>(d), 81, 0.5f);
    const auto beta = RandomVec(static_cast<size_t>(d), 82, 0.5f);
    std::vector<float> ys(x.size()), yv(x.size());
    std::vector<float> mus(rows), muv(rows), iss(rows), isv(rows);
    {
      ScopedSimd guard(0);
      kernels::LayerNormRows(x.data(), gamma.data(), beta.data(), ys.data(),
                             mus.data(), iss.data(), rows, d, 1e-5f);
    }
    {
      ScopedSimd guard(1);
      kernels::LayerNormRows(x.data(), gamma.data(), beta.data(), yv.data(),
                             muv.data(), isv.data(), rows, d, 1e-5f);
    }
    ExpectClose(yv, ys, 1e-5f, 1e-4f, "layernorm y d=" + std::to_string(d));
    ExpectClose(muv, mus, 1e-6f, 1e-5f, "layernorm mu d=" + std::to_string(d));
    ExpectClose(isv, iss, 1e-4f, 1e-3f,
                "layernorm inv_sigma d=" + std::to_string(d));
  }
}

struct AttnShape {
  int64_t batch, m, n, d;
  bool causal, with_bias;
};

TEST(SimdAttention, ForwardAgreesOnServingShapes) {
  const std::vector<AttnShape> shapes = {
      {1, 6, 6, 8, true, true},    {1, 100, 100, 64, true, false},
      {2, 12, 12, 50, true, true}, {1, 1, 1, 50, false, true},
      {1, 1, 32, 64, false, true},  // single-query incremental row
      {1, 1, 100, 50, false, false},
      {3, 5, 9, 16, false, true},  // cross-attention m != n
  };
  uint64_t seed = 300;
  for (const auto& s : shapes) {
    seed += 10;
    const auto q = RandomVec(static_cast<size_t>(s.batch * s.m * s.d), seed,
                             0.5f);
    const auto k = RandomVec(static_cast<size_t>(s.batch * s.n * s.d),
                             seed + 1, 0.5f);
    const auto v = RandomVec(static_cast<size_t>(s.batch * s.n * s.d),
                             seed + 2, 0.5f);
    const auto bias = RandomVec(static_cast<size_t>(s.batch * s.m * s.n),
                                seed + 3, 0.1f);
    const float scale = 1.0f / std::sqrt(static_cast<float>(s.d));
    auto run = [&](int mode) {
      ScopedSimd guard(mode);
      std::vector<float> probs(static_cast<size_t>(s.batch * s.m * s.n));
      std::vector<float> out(static_cast<size_t>(s.batch * s.m * s.d));
      kernels::FusedAttentionForward(
          q.data(), k.data(), v.data(), s.with_bias ? bias.data() : nullptr,
          /*drop_mask=*/nullptr, probs.data(), out.data(), s.batch, s.m, s.n,
          s.d, s.causal, scale, /*bias_broadcast=*/false);
      return std::make_pair(out, probs);
    };
    const auto scalar = run(0);
    const auto simd = run(1);
    const std::string what = "attention m=" + std::to_string(s.m) +
                             " n=" + std::to_string(s.n) +
                             " d=" + std::to_string(s.d);
    ExpectClose(simd.first, scalar.first, 1e-5f, 1e-4f, what + " out");
    ExpectClose(simd.second, scalar.second, 2e-6f, 1e-4f, what + " probs");
  }
}

TEST(SimdFuzz, RandomShapesSweep) {
  Rng rng(20260808);
  for (int iter = 0; iter < 40; ++iter) {
    const int64_t m = 1 + static_cast<int64_t>(rng.UniformInt(40));
    const int64_t k = 1 + static_cast<int64_t>(rng.UniformInt(70));
    const int64_t n = 1 + static_cast<int64_t>(rng.UniformInt(70));
    const bool ta = rng.UniformInt(2) == 0;
    const bool tb = rng.UniformInt(2) == 0;
    CheckGemmShape({m, k, n, ta, tb}, 9000 + static_cast<uint64_t>(iter));

    const int64_t rows = 1 + static_cast<int64_t>(rng.UniformInt(6));
    const int64_t d = 1 + static_cast<int64_t>(rng.UniformInt(130));
    const auto x = RandomVec(static_cast<size_t>(rows * d),
                             7000 + static_cast<uint64_t>(iter), 3.0f);
    std::vector<float> ys(x.size()), yv(x.size());
    {
      ScopedSimd guard(0);
      kernels::SoftmaxRows(x.data(), ys.data(), rows, d);
    }
    {
      ScopedSimd guard(1);
      kernels::SoftmaxRows(x.data(), yv.data(), rows, d);
    }
    ExpectClose(yv, ys, 2e-6f, 1e-4f,
                "fuzz softmax iter=" + std::to_string(iter));
  }
}

TEST(SimdDeterminism, BitIdenticalAcrossThreadCountsAndRepeats) {
  // The SIMD backend keeps the scalar backend's determinism contract: the
  // row partition never changes per-element reduction order.
  ScopedSimd guard(1);
  const int64_t m = 96, k = 64, n = 64;
  const auto a = RandomVec(static_cast<size_t>(m * k), 501, 0.5f);
  const auto b = RandomVec(static_cast<size_t>(k * n), 502, 0.5f);
  auto run = [&] {
    std::vector<float> c(static_cast<size_t>(m * n));
    kernels::Gemm(a.data(), b.data(), c.data(), m, k, n, false, false, false);
    return c;
  };
  kernels::SetNumThreads(1);
  const auto serial = run();
  kernels::SetNumThreads(4);
  const auto threaded = run();
  const auto threaded_again = run();
  kernels::SetNumThreads(1);
  EXPECT_EQ(serial, threaded);
  EXPECT_EQ(threaded, threaded_again);
}

TEST(SimdDispatch, OverrideAndBackendName) {
  {
    ScopedSimd guard(0);
    EXPECT_FALSE(kernels::SimdEnabled());
    EXPECT_STREQ(kernels::SimdBackendName(), "scalar");
  }
  {
    ScopedSimd guard(1);
    if (kernels::SimdEnabled()) {
      EXPECT_STRNE(kernels::SimdBackendName(), "scalar");
    } else {
      // Forced on without hardware support: stays (honestly) scalar.
      EXPECT_STREQ(kernels::SimdBackendName(), "scalar");
    }
  }
}

}  // namespace
}  // namespace stisan
