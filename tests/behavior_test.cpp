// Behavioural tests for model semantics that the smoke tests don't pin
// down: causality vs bidirectionality, TAPE sensitivity end-to-end,
// synthetic-data structure, and contract violations.

#include <gtest/gtest.h>

#include <cmath>

#include "core/stisan.h"
#include "data/preprocess.h"
#include "data/synthetic.h"
#include "models/san_models.h"
#include "tensor/ops.h"

namespace stisan {
namespace {

TEST(TensorContracts, IdentityMatrix) {
  Tensor id = Tensor::Identity(3);
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 3; ++j) {
      EXPECT_EQ(id.at({i, j}), i == j ? 1.0f : 0.0f);
    }
  }
}

TEST(TensorContractsDeathTest, MatMulShapeMismatchAborts) {
  Tensor a = Tensor::Zeros({2, 3});
  Tensor b = Tensor::Zeros({4, 2});
  EXPECT_DEATH((void)ops::MatMul(a, b), "STISAN_CHECK");
}

TEST(TensorContractsDeathTest, BackwardOnNonScalarAborts) {
  Tensor a = Tensor::Zeros({2, 2}, true);
  EXPECT_DEATH(a.Backward(), "scalar");
}

TEST(TensorContractsDeathTest, EmbeddingOutOfRangeAborts) {
  Tensor w = Tensor::Zeros({3, 2});
  EXPECT_DEATH((void)ops::EmbeddingLookup(w, {5}), "STISAN_CHECK");
}

// ---- Causality ---------------------------------------------------------------

class CausalityTest : public ::testing::Test {
 protected:
  CausalityTest()
      : dataset_(data::GenerateSynthetic([] {
          auto cfg = data::GowallaLikeConfig(0.05);
          cfg.num_users = 40;
          return cfg;
        }())) {}

  // Two histories identical except for the FINAL visit.
  std::pair<data::EvalInstance, data::EvalInstance> DivergentTails() {
    data::Split split = data::TrainTestSplit(dataset_, {.max_seq_len = 8});
    data::EvalInstance a = split.test.front();
    data::EvalInstance b = a;
    // Swap the last real POI for a different valid one.
    int64_t other = a.poi.back() == 1 ? 2 : 1;
    b.poi.back() = other;
    return {a, b};
  }

  data::Dataset dataset_;
};

TEST_F(CausalityTest, LastVisitChangesStisanScores) {
  core::StisanOptions opts;
  opts.poi_dim = 8;
  opts.geo.dim = 8;
  opts.num_blocks = 1;
  opts.train.epochs = 0;
  core::StisanModel model(dataset_, opts);
  auto [a, b] = DivergentTails();
  std::vector<int64_t> cands = {3, 4, 5};
  auto sa = model.Score(a, cands);
  auto sb = model.Score(b, cands);
  float diff = 0;
  for (size_t i = 0; i < sa.size(); ++i) diff += std::fabs(sa[i] - sb[i]);
  EXPECT_GT(diff, 1e-6f);  // the most recent visit must matter
}

TEST_F(CausalityTest, TimestampsChangeStisanScoresViaTape) {
  core::StisanOptions opts;
  opts.poi_dim = 8;
  opts.geo.dim = 8;
  opts.num_blocks = 1;
  opts.train.epochs = 0;
  core::StisanModel with_tape(dataset_, opts);
  auto no_tape_opts = opts;
  no_tape_opts.use_tape = false;
  no_tape_opts.attention_mode = core::AttentionMode::kVanilla;
  core::StisanModel without_tape(dataset_, no_tape_opts);

  data::Split split = data::TrainTestSplit(dataset_, {.max_seq_len = 8});
  data::EvalInstance a = split.test.front();
  data::EvalInstance b = a;
  // Stretch one inner interval by a day; POIs unchanged.
  const size_t mid = a.t.size() / 2;
  for (size_t i = mid; i < b.t.size(); ++i) b.t[i] += 86400.0;
  b.target_time += 86400.0;

  std::vector<int64_t> cands = {3, 4, 5};
  // With TAPE the scores must move; with vanilla PE + vanilla attention
  // (no interval usage anywhere) they must not.
  auto ta = with_tape.Score(a, cands);
  auto tb = with_tape.Score(b, cands);
  float tape_diff = 0;
  for (size_t i = 0; i < ta.size(); ++i) tape_diff += std::fabs(ta[i] - tb[i]);
  EXPECT_GT(tape_diff, 1e-6f);

  auto va = without_tape.Score(a, cands);
  auto vb = without_tape.Score(b, cands);
  float vanilla_diff = 0;
  for (size_t i = 0; i < va.size(); ++i)
    vanilla_diff += std::fabs(va[i] - vb[i]);
  EXPECT_NEAR(vanilla_diff, 0.0f, 1e-6f);
}

TEST_F(CausalityTest, Bert4RecIsBidirectionalSasRecIsNot) {
  // Probe the encoders directly: perturb an EARLY visit and check whether
  // the score (driven by the final state) reacts. Untrained models suffice
  // — this is an architectural property.
  models::SanOptions san;
  san.base.dim = 16;
  san.base.train.epochs = 0;
  models::SasRecModel sasrec(dataset_, san);
  models::Bert4RecModel bert(dataset_, san);

  data::Split split = data::TrainTestSplit(dataset_, {.max_seq_len = 8});
  // Pick an instance with a full (unpadded) history.
  const data::EvalInstance* full = nullptr;
  for (const auto& inst : split.test) {
    if (inst.first_real == 0) {
      full = &inst;
      break;
    }
  }
  ASSERT_NE(full, nullptr);
  data::EvalInstance a = *full;
  data::EvalInstance b = a;
  // Change an early visit. (Index 1, not 0: Bert4Rec's next-POI inference
  // shifts the history left by one to append the [MASK] token, so the very
  // oldest visit is dropped by design.)
  b.poi[1] = a.poi[1] == 1 ? 2 : 1;

  std::vector<int64_t> cands = {3, 4, 5};
  // Both models may react (causal attention still sees old keys from the
  // last query). The real causality check is the reverse: changing a
  // *future* position. Emulate it by comparing encoder behaviour through
  // score of the SECOND-to-last step... not exposed; instead check both
  // react to the oldest visit (they see it) — a plumbing sanity check.
  auto sa = sasrec.Score(a, cands);
  auto sb = sasrec.Score(b, cands);
  float s_diff = 0;
  for (size_t i = 0; i < sa.size(); ++i) s_diff += std::fabs(sa[i] - sb[i]);
  EXPECT_GT(s_diff, 1e-7f);

  auto ba = bert.Score(a, cands);
  auto bb = bert.Score(b, cands);
  float b_diff = 0;
  for (size_t i = 0; i < ba.size(); ++i) b_diff += std::fabs(ba[i] - bb[i]);
  EXPECT_GT(b_diff, 1e-7f);
}

// ---- Synthetic structure --------------------------------------------------------

TEST(SyntheticStructure, SessionsHaveDirectionMomentum) {
  // Within short-gap runs, consecutive move directions correlate
  // positively (the second-order signal FPMC cannot express).
  auto cfg = data::GowallaLikeConfig(0.2);
  auto ds = data::GenerateSynthetic(cfg);
  double cos_sum = 0;
  int64_t count = 0;
  for (const auto& seq : ds.user_seqs) {
    for (size_t i = 2; i < seq.size(); ++i) {
      const double g1 = seq[i - 1].timestamp - seq[i - 2].timestamp;
      const double g2 = seq[i].timestamp - seq[i - 1].timestamp;
      if (g1 > 6 * 3600 || g2 > 6 * 3600) continue;  // within-session only
      const auto& p0 = ds.poi_location(seq[i - 2].poi);
      const auto& p1 = ds.poi_location(seq[i - 1].poi);
      const auto& p2 = ds.poi_location(seq[i].poi);
      const double ax = p1.lon - p0.lon, ay = p1.lat - p0.lat;
      const double bx = p2.lon - p1.lon, by = p2.lat - p1.lat;
      const double na = std::sqrt(ax * ax + ay * ay);
      const double nb = std::sqrt(bx * bx + by * by);
      if (na < 1e-9 || nb < 1e-9) continue;
      cos_sum += (ax * bx + ay * by) / (na * nb);
      ++count;
    }
  }
  ASSERT_GT(count, 200);
  EXPECT_GT(cos_sum / double(count), 0.05);  // positive autocorrelation
}

TEST(SyntheticStructure, LongGapsJumpFurther) {
  auto ds = data::GenerateSynthetic(data::BrightkiteLikeConfig(0.15));
  double short_d = 0, long_d = 0;
  int64_t short_n = 0, long_n = 0;
  for (const auto& seq : ds.user_seqs) {
    for (size_t i = 1; i < seq.size(); ++i) {
      const double gap = seq[i].timestamp - seq[i - 1].timestamp;
      const double d = geo::HaversineKm(ds.poi_location(seq[i].poi),
                                        ds.poi_location(seq[i - 1].poi));
      if (gap < 2 * 3600) {
        short_d += d;
        ++short_n;
      } else if (gap > 9 * 3600) {
        long_d += d;
        ++long_n;
      }
    }
  }
  ASSERT_GT(short_n, 100);
  ASSERT_GT(long_n, 100);
  EXPECT_LT(short_d / short_n, long_d / long_n);
}

}  // namespace
}  // namespace stisan
