// Golden-metrics regression test: the pinned fixed-seed train+eval pipeline
// must reproduce tests/golden/golden_metrics.json EXACTLY (bit-equal doubles
// after a lossless %.17g round-trip). Any mismatch is a real numerics change;
// acknowledge intentional ones by re-running tools/refresh_golden_metrics and
// committing the updated JSON.

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "tensor/ops.h"
#include "tools/golden_pipeline.h"

namespace stisan::golden {
namespace {

std::map<std::string, double> LoadGolden() {
  std::ifstream in(STISAN_GOLDEN_JSON);
  EXPECT_TRUE(in.good())
      << "missing " << STISAN_GOLDEN_JSON
      << "; regenerate it with tools/refresh_golden_metrics";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseFlatJson(buffer.str());
}

void ExpectMatchesGolden(const std::map<std::string, double>& computed) {
  const auto golden = LoadGolden();
  ASSERT_FALSE(golden.empty()) << "golden file parsed to nothing";
  EXPECT_EQ(golden.size(), computed.size());
  for (const auto& [key, value] : computed) {
    ASSERT_TRUE(golden.contains(key)) << "metric missing from golden: " << key;
    EXPECT_EQ(golden.at(key), value) << key;
  }
  for (const auto& [key, value] : golden) {
    EXPECT_TRUE(computed.contains(key)) << "stale golden metric: " << key;
  }
}

TEST(GoldenJsonTest, RoundTripsExactly) {
  const std::map<std::string, double> metrics = {
      {"HR@5", 0.12345678901234567},
      {"NDCG@10", 1.0 / 3.0},
      {"MRR", 0.09999999999999998},
      {"count", 144.0},
      {"zero", 0.0},
  };
  const auto parsed = ParseFlatJson(ToJson(metrics));
  ASSERT_EQ(parsed.size(), metrics.size());
  for (const auto& [key, value] : metrics) {
    ASSERT_TRUE(parsed.contains(key)) << key;
    EXPECT_EQ(parsed.at(key), value) << key;  // bit-exact round-trip
  }
}

TEST(GoldenMetricsTest, PipelineMatchesCheckedInGolden) {
  // Exact keys, exact values: the whole chain (synthetic data, training,
  // candidate sampling, batched evaluation) is pinned-deterministic. Runs
  // under the default lowering (fused attention on).
  ExpectMatchesGolden(ComputeGoldenMetrics());
}

TEST(GoldenMetricsTest, ComposedLoweringMatchesSameGolden) {
  // STISAN_FUSED_ATTENTION=0 swaps every attention layer to the composed
  // per-op reference path; the two lowerings are bit-identical, so both must
  // reproduce the one checked-in golden file exactly.
  ops::SetFusedAttentionEnabled(0);
  const auto computed = ComputeGoldenMetrics();
  ops::SetFusedAttentionEnabled(-1);
  ExpectMatchesGolden(computed);
}

}  // namespace
}  // namespace stisan::golden
