// End-to-end integration tests: full pipeline from synthetic generation
// through preprocessing, training, and the paper's evaluation protocol.
// These assert *learning quality*, not just plumbing: trained models must
// clear chance and weak baselines on data with planted structure.

#include <gtest/gtest.h>

#include <cmath>

#include "core/stisan.h"
#include "data/csv_loader.h"
#include "data/preprocess.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "models/geosan.h"
#include "models/shallow.h"

namespace stisan {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto cfg = data::GowallaLikeConfig(0.25);
    dataset_ = new data::Dataset(data::GenerateSynthetic(cfg));
    split_ = new data::Split(
        data::TrainTestSplit(*dataset_, {.max_seq_len = 32}));
    candidates_ = new eval::CandidateGenerator(*dataset_);
  }
  static void TearDownTestSuite() {
    delete candidates_;
    delete split_;
    delete dataset_;
    candidates_ = nullptr;
    split_ = nullptr;
    dataset_ = nullptr;
  }

  static eval::MetricAccumulator Run(models::SequentialRecommender& model) {
    model.Fit(*dataset_, split_->train);
    return eval::Evaluate(
        [&model](const data::EvalInstance& inst,
                 const std::vector<int64_t>& cands) {
          return model.Score(inst, cands);
        },
        split_->test, *candidates_, {});
  }

  static core::StisanOptions TunedOptions() {
    core::StisanOptions opts;
    opts.poi_dim = 16;
    opts.geo.dim = 16;
    opts.geo.fourier_dim = 8;
    opts.num_blocks = 2;
    opts.train.epochs = 10;
    opts.train.num_negatives = 15;
    opts.train.knn_neighborhood = 100;
    return opts;
  }

  static data::Dataset* dataset_;
  static data::Split* split_;
  static eval::CandidateGenerator* candidates_;
};

data::Dataset* IntegrationTest::dataset_ = nullptr;
data::Split* IntegrationTest::split_ = nullptr;
eval::CandidateGenerator* IntegrationTest::candidates_ = nullptr;

TEST_F(IntegrationTest, StisanBeatsChanceAndPop) {
  models::PopModel pop;
  auto pop_metrics = Run(pop);

  core::StisanModel stisan(*dataset_, TunedOptions());
  auto st_metrics = Run(stisan);

  // Chance HR@10 with 101 candidates is ~0.099: the trained model must
  // clear it decisively.
  EXPECT_GT(st_metrics.HitRate(10), 0.18);
  // And it must at least match popularity-only recommendation (exact
  // margins over POP vary with the dataset seed at this scale; the
  // bench suite measures them properly over the full presets).
  EXPECT_GT(st_metrics.HitRate(10), pop_metrics.HitRate(10) - 0.03);
}

TEST_F(IntegrationTest, TrainingReducesLoss) {
  auto opts = TunedOptions();
  opts.train.epochs = 1;
  core::StisanModel one_epoch(*dataset_, opts);
  one_epoch.Fit(*dataset_, split_->train);
  const float loss_after_1 = one_epoch.last_epoch_loss();

  opts.train.epochs = 6;
  core::StisanModel six_epochs(*dataset_, opts);
  six_epochs.Fit(*dataset_, split_->train);
  EXPECT_LT(six_epochs.last_epoch_loss(), loss_after_1);
}

TEST_F(IntegrationTest, GeographyPriorAndTraining) {
  core::StisanOptions opts = TunedOptions();
  // Even *untrained*, the geography pathway (fixed Fourier kernel flowing
  // through the identity-initialised encoder into TAAD matching) must beat
  // chance (~0.099 HR@10 with 101 candidates) by a wide margin.
  models::GeoSanModel untrained(*dataset_, opts);
  auto untrained_metrics = eval::Evaluate(
      [&untrained](const data::EvalInstance& inst,
                   const std::vector<int64_t>& cands) {
        return untrained.Score(inst, cands);
      },
      split_->test, *candidates_, {});
  EXPECT_GT(untrained_metrics.HitRate(10), 0.18);

  // Training must not destroy the prior.
  models::GeoSanModel trained(*dataset_, opts);
  auto trained_metrics = Run(trained);
  EXPECT_GT(trained_metrics.HitRate(10),
            untrained_metrics.HitRate(10) - 0.05);
}

TEST_F(IntegrationTest, CsvRoundTripPreservesMetrics) {
  // Exporting and re-importing the dataset must not change the evaluation
  // outcome for a deterministic (popularity) model.
  const std::string path = "/tmp/stisan_integration.csv";
  ASSERT_TRUE(data::SaveCsv(*dataset_, path).ok());
  auto reloaded = data::LoadCsv(path, "reloaded");
  ASSERT_TRUE(reloaded.ok());
  std::remove(path.c_str());

  auto split2 = data::TrainTestSplit(*reloaded, {.max_seq_len = 32});
  eval::CandidateGenerator cands2(*reloaded);
  models::PopModel pop1, pop2;
  pop1.Fit(*dataset_, split_->train);
  pop2.Fit(*reloaded, split2.train);
  auto m1 = eval::Evaluate(
      [&](const data::EvalInstance& i, const std::vector<int64_t>& c) {
        return pop1.Score(i, c);
      },
      split_->test, *candidates_, {});
  auto m2 = eval::Evaluate(
      [&](const data::EvalInstance& i, const std::vector<int64_t>& c) {
        return pop2.Score(i, c);
      },
      split2.test, cands2, {});
  // POI ids are renumbered and coordinates round to 6 decimals (~0.1 m),
  // which can flip distance ties in the candidate ring for a handful of
  // instances — allow a small tolerance.
  EXPECT_NEAR(m1.HitRate(10), m2.HitRate(10), 0.03);
}

TEST_F(IntegrationTest, DeterministicAcrossRuns) {
  auto opts = TunedOptions();
  opts.train.epochs = 2;
  opts.train.max_train_windows = 30;
  core::StisanModel a(*dataset_, opts);
  core::StisanModel b(*dataset_, opts);
  a.Fit(*dataset_, split_->train);
  b.Fit(*dataset_, split_->train);
  EXPECT_EQ(a.last_epoch_loss(), b.last_epoch_loss());
  const auto& inst = split_->test.front();
  auto cands = candidates_->Candidates(inst, 50);
  EXPECT_EQ(a.Score(inst, cands), b.Score(inst, cands));
}

}  // namespace
}  // namespace stisan
