// Post-training int8 quantization contracts (src/quant, label: "quant").
//
//  1. Kernel exactness: DotInt8 is bit-exact against a naive int32 loop on
//     every length (the AVX2 path accumulates integers, so lane order
//     cannot matter), and Int8GemmDequant matches a reference dequantized
//     GEMM elementwise.
//  2. QuantizeRowsSymmetric bounds: round-trip error <= scale/2, the row
//     max hits +/-127, all-zero rows get scale 1 and zero codes.
//  3. Hook gating at the ops layer: int8 fires only when (a) a
//     QuantizedModel has registered the weight, (b) ScopedInt8 is active on
//     the thread, and (c) gradients are off. Any leg missing -> the fp32
//     path runs bit-identically to a never-quantized process.
//  4. Model-level accuracy: int8 scoring of a trained golden-replica model
//     moves HR@10 / NDCG@10 by at most 0.005 absolute vs the checked-in
//     fp32 golden metrics (tests/golden/golden_metrics.json).
//  5. Serving: ServeOptions.use_int8 routes every service score through the
//     quantized path, bit-identical to a direct ScopedInt8 model->Score.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/stisan.h"
#include "data/preprocess.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "obs/metrics.h"
#include "quant/int8_gemm.h"
#include "quant/quant.h"
#include "serve/service.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace stisan {
namespace {

// ---------------------------------------------------------------------------
// Kernel exactness.
// ---------------------------------------------------------------------------

TEST(Int8Kernels, DotInt8BitExactVsNaive) {
  Rng rng(42);
  for (int64_t k : {1, 2, 7, 15, 16, 17, 31, 32, 33, 50, 64, 100, 333}) {
    std::vector<int8_t> a(static_cast<size_t>(k)), b(static_cast<size_t>(k));
    for (auto& x : a)
      x = static_cast<int8_t>(rng.UniformInt(int64_t{-127}, int64_t{127}));
    for (auto& x : b)
      x = static_cast<int8_t>(rng.UniformInt(int64_t{-127}, int64_t{127}));
    int32_t want = 0;
    for (int64_t i = 0; i < k; ++i)
      want += static_cast<int32_t>(a[static_cast<size_t>(i)]) *
              static_cast<int32_t>(b[static_cast<size_t>(i)]);
    EXPECT_EQ(quant::DotInt8(a.data(), b.data(), k), want) << "k=" << k;
  }
}

TEST(Int8Kernels, DotInt8SaturatedExtremes) {
  // k * 127 * 127 must accumulate without overflow at model-scale k.
  const int64_t k = 512;
  std::vector<int8_t> a(static_cast<size_t>(k), 127);
  std::vector<int8_t> b(static_cast<size_t>(k), 127);
  EXPECT_EQ(quant::DotInt8(a.data(), b.data(), k),
            static_cast<int32_t>(k) * 127 * 127);
  for (auto& x : b) x = -127;
  EXPECT_EQ(quant::DotInt8(a.data(), b.data(), k),
            -static_cast<int32_t>(k) * 127 * 127);
}

TEST(Int8Kernels, QuantizeRowsSymmetricBounds) {
  Rng rng(7);
  const int64_t rows = 6, k = 37;
  std::vector<float> x(static_cast<size_t>(rows * k));
  for (auto& v : x) v = static_cast<float>(rng.Normal()) * 2.0f;
  // Row 2 is all zeros; row 3 has a single large spike.
  for (int64_t j = 0; j < k; ++j) x[static_cast<size_t>(2 * k + j)] = 0.0f;
  x[static_cast<size_t>(3 * k + 5)] = 100.0f;

  std::vector<int8_t> q(x.size());
  std::vector<float> scales(static_cast<size_t>(rows));
  quant::QuantizeRowsSymmetric(x.data(), q.data(), scales.data(), rows, k);

  for (int64_t r = 0; r < rows; ++r) {
    float amax = 0.0f;
    for (int64_t j = 0; j < k; ++j)
      amax = std::max(amax, std::fabs(x[static_cast<size_t>(r * k + j)]));
    if (amax == 0.0f) {
      EXPECT_EQ(scales[static_cast<size_t>(r)], 1.0f) << "zero row scale";
      for (int64_t j = 0; j < k; ++j)
        EXPECT_EQ(q[static_cast<size_t>(r * k + j)], 0) << "zero row code";
      continue;
    }
    EXPECT_NEAR(scales[static_cast<size_t>(r)], amax / 127.0f,
                1e-6f * amax / 127.0f);
    int8_t qmax = 0;
    for (int64_t j = 0; j < k; ++j) {
      const int8_t code = q[static_cast<size_t>(r * k + j)];
      qmax = std::max<int8_t>(qmax, static_cast<int8_t>(std::abs(code)));
      // Round-trip error is at most half a quantization step.
      const float back = scales[static_cast<size_t>(r)] * code;
      EXPECT_LE(std::fabs(back - x[static_cast<size_t>(r * k + j)]),
                0.5f * scales[static_cast<size_t>(r)] + 1e-6f)
          << "row " << r << " col " << j;
    }
    EXPECT_EQ(qmax, 127) << "row max must map to the code extreme, row " << r;
  }
}

TEST(Int8Kernels, Int8GemmDequantMatchesReference) {
  Rng rng(11);
  const int64_t m = 9, k = 29, n = 13;
  std::vector<int8_t> aq(static_cast<size_t>(m * k)),
      bq(static_cast<size_t>(n * k));
  std::vector<float> as(static_cast<size_t>(m)), bs(static_cast<size_t>(n));
  for (auto& v : aq)
    v = static_cast<int8_t>(rng.UniformInt(int64_t{-127}, int64_t{127}));
  for (auto& v : bq)
    v = static_cast<int8_t>(rng.UniformInt(int64_t{-127}, int64_t{127}));
  for (auto& v : as) v = 0.01f + static_cast<float>(rng.Uniform()) * 0.1f;
  for (auto& v : bs) v = 0.01f + static_cast<float>(rng.Uniform()) * 0.1f;

  std::vector<float> c(static_cast<size_t>(m * n));
  quant::Int8GemmDequant(aq.data(), as.data(), bq.data(), bs.data(), c.data(),
                         m, k, n);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      int32_t acc = 0;
      for (int64_t p = 0; p < k; ++p)
        acc += static_cast<int32_t>(aq[static_cast<size_t>(i * k + p)]) *
               static_cast<int32_t>(bq[static_cast<size_t>(j * k + p)]);
      const float want = static_cast<float>(acc) *
                         (as[static_cast<size_t>(i)] *
                          bs[static_cast<size_t>(j)]);
      EXPECT_EQ(c[static_cast<size_t>(i * n + j)], want)
          << "i=" << i << " j=" << j;
    }
  }
}

TEST(Int8Kernels, Int8GemmDequantThreadCountInvariant) {
  Rng rng(13);
  const int64_t m = 64, k = 48, n = 32;
  std::vector<int8_t> aq(static_cast<size_t>(m * k)),
      bq(static_cast<size_t>(n * k));
  std::vector<float> as(static_cast<size_t>(m), 0.02f),
      bs(static_cast<size_t>(n), 0.03f);
  for (auto& v : aq)
    v = static_cast<int8_t>(rng.UniformInt(int64_t{-127}, int64_t{127}));
  for (auto& v : bq)
    v = static_cast<int8_t>(rng.UniformInt(int64_t{-127}, int64_t{127}));
  auto run = [&] {
    std::vector<float> c(static_cast<size_t>(m * n));
    quant::Int8GemmDequant(aq.data(), as.data(), bq.data(), bs.data(),
                           c.data(), m, k, n);
    return c;
  };
  kernels::SetNumThreads(1);
  const auto serial = run();
  kernels::SetNumThreads(4);
  const auto threaded = run();
  kernels::SetNumThreads(1);
  EXPECT_EQ(serial, threaded);
}

// ---------------------------------------------------------------------------
// ScopedInt8 flag semantics.
// ---------------------------------------------------------------------------

TEST(ScopedInt8, NestsAndRestores) {
  EXPECT_FALSE(quant::Int8Enabled());
  {
    quant::ScopedInt8 outer;
    EXPECT_TRUE(quant::Int8Enabled());
    {
      quant::ScopedInt8 inner;
      EXPECT_TRUE(quant::Int8Enabled());
    }
    EXPECT_TRUE(quant::Int8Enabled());
  }
  EXPECT_FALSE(quant::Int8Enabled());
}

// ---------------------------------------------------------------------------
// Hook gating at the ops layer, driven through a real model's parameters.
// ---------------------------------------------------------------------------

core::StisanOptions TinyStisanOptions() {
  core::StisanOptions opts;
  opts.poi_dim = 8;
  opts.geo.dim = 8;
  opts.geo.fourier_dim = 4;
  opts.num_blocks = 2;
  opts.train.seed = 7;
  opts.knn_negatives = false;
  return opts;
}

class QuantHookTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = data::GenerateSynthetic(data::GowallaLikeConfig(0.08));
    obs::ResetAllForTesting();
    kernels::SetNumThreads(1);
  }

  // First registered quantizable parameter of `model` (2-D, >= 64 elems).
  static Tensor FindQuantizableParam(const nn::Module& module) {
    for (const auto& p : module.Parameters()) {
      if (p.dim() == 2 && p.numel() >= 64 &&
          quant::QuantizedModel::Find(p.data()) != nullptr) {
        return p;
      }
    }
    return Tensor();
  }

  data::Dataset ds_;
};

TEST_F(QuantHookTest, MatMulHookFiresOnlyWhenArmed) {
  core::StisanModel model(ds_, TinyStisanOptions());
  Rng rng(99);

  quant::QuantizedModel qm(model);
  ASSERT_GT(qm.num_weights(), 0);
  const Tensor weight = FindQuantizableParam(model);
  ASSERT_TRUE(weight.defined());
  const int64_t k = weight.size(0), n = weight.size(1);
  Tensor a = Tensor::Randn({4, k}, rng);

  auto run_matmul = [&] {
    Tensor c = ops::MatMul(a, weight);
    const float* d = c.data();
    return std::vector<float>(d, d + c.numel());
  };

  auto& gemms = obs::GetCounter("quant/int8_gemms");
  const uint64_t before = gemms.Get();

  // (1) No ScopedInt8 -> fp32, hook declines.
  std::vector<float> fp32;
  {
    NoGradGuard no_grad;
    fp32 = run_matmul();
  }
  EXPECT_EQ(gemms.Get(), before);

  // (2) ScopedInt8 but gradients ENABLED -> hook declines, bit-identical
  // (training/gradcheck must never see int8, even inside a guard).
  std::vector<float> grad_on;
  {
    quant::ScopedInt8 on;
    grad_on = run_matmul();
  }
  EXPECT_EQ(grad_on, fp32);
  EXPECT_EQ(gemms.Get(), before);

  // (3) ScopedInt8 + no gradients -> int8 fires: counter moves and the
  // result agrees with fp32 within quantization tolerance.
  std::vector<float> int8;
  {
    NoGradGuard no_grad;
    quant::ScopedInt8 on;
    int8 = run_matmul();
  }
  EXPECT_GT(gemms.Get(), before);
  ASSERT_EQ(int8.size(), fp32.size());
  float max_ref = 0.0f, max_diff = 0.0f;
  for (size_t i = 0; i < fp32.size(); ++i) {
    max_ref = std::max(max_ref, std::fabs(fp32[i]));
    max_diff = std::max(max_diff, std::fabs(int8[i] - fp32[i]));
  }
  EXPECT_LE(max_diff, 0.05f * max_ref + 1e-4f)
      << "int8 result too far from fp32 (k=" << k << " n=" << n << ")";
}

TEST_F(QuantHookTest, DeregistrationRestoresFp32BitIdentical) {
  core::StisanModel model(ds_, TinyStisanOptions());
  Rng rng(123);

  const float* key = nullptr;
  std::vector<float> fp32_before, int8_scores, fp32_after;

  std::vector<float> probe_a;
  Tensor weight;
  {
    quant::QuantizedModel qm(model);
    weight = FindQuantizableParam(model);
    ASSERT_TRUE(weight.defined());
    key = weight.data();
    Tensor a = Tensor::Randn({3, weight.size(0)}, rng);
    const float* ad = a.data();
    probe_a.assign(ad, ad + a.numel());

    NoGradGuard no_grad;
    {
      Tensor c = ops::MatMul(a, weight);
      fp32_before.assign(c.data(), c.data() + c.numel());
    }
    {
      quant::ScopedInt8 on;
      Tensor c = ops::MatMul(a, weight);
      int8_scores.assign(c.data(), c.data() + c.numel());
    }
    EXPECT_NE(quant::QuantizedModel::Find(key), nullptr);
  }
  // QuantizedModel destroyed: registry entry gone, int8 opt-in is inert.
  EXPECT_EQ(quant::QuantizedModel::Find(key), nullptr);
  {
    NoGradGuard no_grad;
    quant::ScopedInt8 on;
    Tensor a = Tensor::FromVector({3, weight.size(0)}, probe_a);
    Tensor c = ops::MatMul(a, weight);
    fp32_after.assign(c.data(), c.data() + c.numel());
  }
  EXPECT_EQ(fp32_after, fp32_before);
}

TEST_F(QuantHookTest, EmbeddingGatherQuantizedWithPadding) {
  core::StisanModel model(ds_, TinyStisanOptions());
  quant::QuantizedModel qm(model);

  // The POI embedding table is the largest 2-D parameter; find a registered
  // one with enough rows to gather from.
  Tensor table;
  for (const auto& p : model.Parameters()) {
    if (p.dim() == 2 && p.size(0) >= 8 &&
        quant::QuantizedModel::Find(p.data()) != nullptr) {
      if (!table.defined() || p.numel() > table.numel()) table = p;
    }
  }
  ASSERT_TRUE(table.defined());

  const std::vector<int64_t> ids = {0, 1, 3, 0, 5, 2};
  const int64_t padding_idx = 0;
  auto& gathers = obs::GetCounter("quant/int8_gathers");
  const uint64_t before = gathers.Get();

  NoGradGuard no_grad;
  std::vector<float> fp32, int8;
  {
    Tensor out = ops::EmbeddingLookup(table, ids, padding_idx);
    fp32.assign(out.data(), out.data() + out.numel());
  }
  {
    quant::ScopedInt8 on;
    Tensor out = ops::EmbeddingLookup(table, ids, padding_idx);
    int8.assign(out.data(), out.data() + out.numel());
  }
  EXPECT_GT(gathers.Get(), before);

  const int64_t d = table.size(1);
  ASSERT_EQ(int8.size(), ids.size() * static_cast<size_t>(d));
  for (size_t i = 0; i < ids.size(); ++i) {
    for (int64_t j = 0; j < d; ++j) {
      const size_t idx = i * static_cast<size_t>(d) + static_cast<size_t>(j);
      if (ids[i] == padding_idx) {
        // Padding rows are exactly zero in both paths.
        EXPECT_EQ(int8[idx], 0.0f);
        EXPECT_EQ(fp32[idx], 0.0f);
      } else {
        // Dequantized row: within half a step of the fp32 row.
        const auto* qw = quant::QuantizedModel::Find(table.data());
        ASSERT_NE(qw, nullptr);
        const float step = qw->row_scale[static_cast<size_t>(ids[i])];
        EXPECT_NEAR(int8[idx], fp32[idx], 0.5f * step + 1e-6f)
            << "row " << ids[i] << " col " << j;
      }
    }
  }
}

TEST_F(QuantHookTest, QuantizedModelBookkeeping) {
  core::StisanModel model(ds_, TinyStisanOptions());
  quant::QuantizedModel qm(model);
  EXPECT_GT(qm.num_weights(), 0);
  // Two int8 layouts + scales still beat one fp32 copy.
  EXPECT_GT(qm.int8_bytes(), 0);
  EXPECT_LT(qm.int8_bytes(), qm.fp32_bytes());
  // Every registered weight is findable and shape-consistent.
  int64_t found = 0;
  for (const auto& p : model.Parameters()) {
    const auto* qw = quant::QuantizedModel::Find(p.data());
    if (qw == nullptr) continue;
    ++found;
    EXPECT_EQ(qw->rows, p.size(0));
    EXPECT_EQ(qw->cols, p.size(1));
    EXPECT_EQ(static_cast<int64_t>(qw->gemm_q.size()), p.numel());
    EXPECT_EQ(static_cast<int64_t>(qw->row_q.size()), p.numel());
    EXPECT_EQ(static_cast<int64_t>(qw->gemm_scale.size()), qw->cols);
    EXPECT_EQ(static_cast<int64_t>(qw->row_scale.size()), qw->rows);
  }
  EXPECT_EQ(found, qm.num_weights());
}

// ---------------------------------------------------------------------------
// Model-level accuracy: golden-replica fp32 vs int8 HR/NDCG deltas.
// ---------------------------------------------------------------------------

std::map<std::string, double> LoadGoldenJson() {
  std::ifstream in(STISAN_GOLDEN_JSON);
  EXPECT_TRUE(in.good()) << "cannot open " << STISAN_GOLDEN_JSON;
  std::stringstream ss;
  ss << in.rdbuf();
  // Flat {"key": value} parsing, mirroring tools/golden_pipeline.h.
  std::map<std::string, double> out;
  const std::string text = ss.str();
  size_t pos = 0;
  while ((pos = text.find('"', pos)) != std::string::npos) {
    const size_t key_end = text.find('"', pos + 1);
    if (key_end == std::string::npos) break;
    const std::string key = text.substr(pos + 1, key_end - pos - 1);
    size_t cursor = key_end + 1;
    while (cursor < text.size() &&
           (std::isspace(static_cast<unsigned char>(text[cursor])) ||
            text[cursor] == ':')) {
      ++cursor;
    }
    if (cursor < text.size() &&
        (text[cursor] == '-' || text[cursor] == '+' ||
         std::isdigit(static_cast<unsigned char>(text[cursor])))) {
      out[key] = std::strtod(text.c_str() + cursor, nullptr);
    }
    pos = key_end + 1;
  }
  return out;
}

class ScopedScalarBackend {
 public:
  ScopedScalarBackend() {
    kernels::SetNumThreads(1);
    kernels::SetSimdEnabledForTesting(0);
  }
  ~ScopedScalarBackend() { kernels::SetSimdEnabledForTesting(-1); }
};

TEST(QuantAccuracy, GoldenReplicaInt8MetricDeltasWithinBudget) {
  // Replicates tools/golden_pipeline.h exactly (constants, seeds, scalar
  // kernel pinning) so the fp32 leg lands on the checked-in golden metrics;
  // then re-evaluates the same trained model through Int8BatchScorer.
  ScopedScalarBackend scalar;

  auto dataset = data::GenerateSynthetic(data::GowallaLikeConfig(0.08));
  auto split = data::TrainTestSplit(dataset, {.max_seq_len = 12});

  core::StisanOptions options;
  options.poi_dim = 8;
  options.geo.dim = 8;
  options.geo.fourier_dim = 4;
  options.num_blocks = 1;
  options.train.epochs = 2;
  options.train.seed = 20220501;
  options.train.max_train_windows = 60;
  core::StisanModel model(dataset, options);
  model.Fit(dataset, split.train);

  eval::CandidateGenerator generator(dataset);
  eval::EvalOptions eval_options;
  eval_options.num_negatives = 50;
  eval_options.batch_size = 8;

  auto fp32_acc = eval::Evaluate(static_cast<eval::BatchScorer&>(model),
                                 split.test, generator, eval_options);
  const auto fp32 = fp32_acc.Means();

  // Anchor: the fp32 leg must reproduce the golden file exactly — otherwise
  // the int8 delta below measures the wrong thing.
  const auto golden = LoadGoldenJson();
  ASSERT_EQ(fp32.at("HR@10"), golden.at("HR@10"));
  ASSERT_EQ(fp32.at("NDCG@10"), golden.at("NDCG@10"));

  quant::QuantizedModel qm(model);
  ASSERT_GT(qm.num_weights(), 0);
  quant::Int8BatchScorer int8_scorer(&model);
  auto int8_acc =
      eval::Evaluate(int8_scorer, split.test, generator, eval_options);
  const auto int8 = int8_acc.Means();

  // Source of the EXPERIMENTS.md fp32-vs-int8 accuracy table.
  for (const char* key : {"HR@5", "HR@10", "NDCG@5", "NDCG@10"}) {
    std::printf("metric %-7s fp32 %.6f int8 %.6f delta %+.6f\n", key,
                fp32.at(key), int8.at(key), int8.at(key) - fp32.at(key));
  }

  // int8 must move HR@10 / NDCG@10 by <= 0.005 absolute.
  EXPECT_LE(std::fabs(int8.at("HR@10") - golden.at("HR@10")), 0.005)
      << "int8 HR@10 " << int8.at("HR@10") << " vs golden "
      << golden.at("HR@10");
  EXPECT_LE(std::fabs(int8.at("NDCG@10") - golden.at("NDCG@10")), 0.005)
      << "int8 NDCG@10 " << int8.at("NDCG@10") << " vs golden "
      << golden.at("NDCG@10");
}

// ---------------------------------------------------------------------------
// Serving integration: use_int8 quantizes every service scoring path.
// ---------------------------------------------------------------------------

TEST(QuantServe, ServiceInt8BitIdenticalToDirectScopedScore) {
  auto ds = data::GenerateSynthetic(data::GowallaLikeConfig(0.08));
  obs::ResetAllForTesting();
  kernels::SetNumThreads(1);

  core::StisanModel model(ds, TinyStisanOptions());

  // A user with enough history.
  int64_t user = -1;
  for (size_t u = 0; u < ds.user_seqs.size(); ++u) {
    if (ds.user_seqs[u].size() >= 8) {
      user = static_cast<int64_t>(u);
      break;
    }
  }
  ASSERT_GE(user, 0);
  const auto& seq = ds.user_seqs[static_cast<size_t>(user)];

  serve::ServeOptions so;
  so.max_seq_len = 32;
  so.start_worker = false;
  so.use_int8 = true;
  serve::RecommendService service(&model, so);
  ASSERT_TRUE(service.int8());
  ASSERT_TRUE(service.incremental());

  Rng rng(5);
  std::vector<int64_t> cands;
  while (cands.size() < 20) {
    const int64_t poi =
        1 + static_cast<int64_t>(
                rng.UniformInt(static_cast<uint64_t>(ds.num_pois())));
    if (std::find(cands.begin(), cands.end(), poi) == cands.end())
      cands.push_back(poi);
  }

  auto& gemms = obs::GetCounter("quant/int8_gemms");
  for (size_t k = 1; k <= 8; ++k) {
    service.Append(user, seq[k - 1].poi, seq[k - 1].timestamp);
    const uint64_t before = gemms.Get();
    const auto result = service.Score(user, cands);
    ASSERT_TRUE(result.ok()) << result.status.ToString();
    EXPECT_GT(gemms.Get(), before) << "service scoring must run int8";

    // Direct reference: same model, same registry, int8 opted in.
    data::EvalInstance inst;
    inst.first_real = 0;
    for (size_t i = 0; i < k; ++i) {
      inst.poi.push_back(seq[i].poi);
      inst.t.push_back(seq[i].timestamp);
    }
    std::vector<float> want;
    {
      quant::ScopedInt8 on;
      want = model.Score(inst, cands);
    }
    EXPECT_EQ(result.scores, want) << "prefix " << k;
  }
}

TEST(QuantServe, Int8OffByDefaultAndIgnoredGracefully) {
  auto ds = data::GenerateSynthetic(data::GowallaLikeConfig(0.08));
  core::StisanModel model(ds, TinyStisanOptions());
  serve::ServeOptions so;
  so.start_worker = false;
  serve::RecommendService service(&model, so);
  EXPECT_FALSE(service.int8());
}

}  // namespace
}  // namespace stisan
