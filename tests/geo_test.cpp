#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "geo/geo.h"
#include "geo/geohash.h"
#include "geo/quadkey.h"
#include "geo/spatial_index.h"
#include "util/rng.h"

namespace stisan::geo {
namespace {

TEST(HaversineTest, ZeroDistance) {
  GeoPoint p{43.88, 125.35};
  EXPECT_DOUBLE_EQ(HaversineKm(p, p), 0.0);
}

TEST(HaversineTest, KnownDistances) {
  // Beijing <-> Shanghai: ~1068 km.
  GeoPoint beijing{39.9042, 116.4074};
  GeoPoint shanghai{31.2304, 121.4737};
  EXPECT_NEAR(HaversineKm(beijing, shanghai), 1068.0, 15.0);
  // One degree of latitude: ~111.2 km.
  EXPECT_NEAR(HaversineKm({0, 0}, {1, 0}), 111.2, 1.0);
}

TEST(HaversineTest, Symmetric) {
  GeoPoint a{10.5, 20.5}, b{-33.0, 151.0};
  EXPECT_DOUBLE_EQ(HaversineKm(a, b), HaversineKm(b, a));
}

TEST(OffsetKmTest, RoundTripDistance) {
  GeoPoint origin{43.88, 125.35};
  GeoPoint north = OffsetKm(origin, 5.0, 0.0);
  EXPECT_NEAR(HaversineKm(origin, north), 5.0, 0.05);
  GeoPoint east = OffsetKm(origin, 0.0, 3.0);
  EXPECT_NEAR(HaversineKm(origin, east), 3.0, 0.05);
  GeoPoint diag = OffsetKm(origin, 3.0, 4.0);
  EXPECT_NEAR(HaversineKm(origin, diag), 5.0, 0.1);
}

TEST(BoundingBoxTest, ExtendAndContains) {
  BoundingBox box;
  EXPECT_TRUE(box.empty());
  box.Extend({10, 20});
  box.Extend({12, 18});
  EXPECT_FALSE(box.empty());
  EXPECT_TRUE(box.Contains({11, 19}));
  EXPECT_FALSE(box.Contains({13, 19}));
  EXPECT_FALSE(box.Contains({11, 21}));
}

// ---- Quadkey ----------------------------------------------------------------

TEST(QuadKeyTest, LengthEqualsLevel) {
  GeoPoint p{43.88, 125.35};
  for (int level : {1, 5, 12, 17}) {
    EXPECT_EQ(ToQuadKey(p, level).size(), static_cast<size_t>(level));
  }
}

TEST(QuadKeyTest, PrefixPropertyAcrossLevels) {
  GeoPoint p{43.88, 125.35};
  std::string deep = ToQuadKey(p, 17);
  std::string shallow = ToQuadKey(p, 10);
  EXPECT_EQ(deep.substr(0, 10), shallow);
}

TEST(QuadKeyTest, NearbyPointsShareLongPrefix) {
  GeoPoint a{43.88, 125.35};
  GeoPoint b = OffsetKm(a, 0.05, 0.05);  // 70 m away
  std::string ka = ToQuadKey(a, 17);
  std::string kb = ToQuadKey(b, 17);
  size_t common = 0;
  while (common < ka.size() && ka[common] == kb[common]) ++common;
  EXPECT_GE(common, 10u);
}

TEST(QuadKeyTest, FarPointsDiverge) {
  std::string ka = ToQuadKey({43.88, 125.35}, 17);
  std::string kb = ToQuadKey({-33.0, 151.0}, 17);
  EXPECT_NE(ka[0], kb[0]);
}

TEST(QuadKeyTest, QuadrantsOfLevelOne) {
  // NW hemisphere tile is '0', NE '1', SW '2', SE '3'.
  EXPECT_EQ(ToQuadKey({45.0, -90.0}, 1), "0");
  EXPECT_EQ(ToQuadKey({45.0, 90.0}, 1), "1");
  EXPECT_EQ(ToQuadKey({-45.0, -90.0}, 1), "2");
  EXPECT_EQ(ToQuadKey({-45.0, 90.0}, 1), "3");
}

TEST(QuadKeyTest, NgramTokens) {
  auto tokens = QuadKeyNgramTokens("0123", 2);
  // "01" = 1, "12" = 6, "23" = 11 in base 4.
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], 1);
  EXPECT_EQ(tokens[1], 6);
  EXPECT_EQ(tokens[2], 11);
}

TEST(QuadKeyTest, NgramTokensInVocabRange) {
  GeoPoint p{43.88, 125.35};
  auto tokens = QuadKeyNgramTokens(ToQuadKey(p, 17), 6);
  EXPECT_EQ(tokens.size(), 12u);
  for (int64_t t : tokens) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, QuadKeyNgramVocabSize(6));
  }
}

TEST(QuadKeyTest, VocabSize) {
  EXPECT_EQ(QuadKeyNgramVocabSize(1), 4);
  EXPECT_EQ(QuadKeyNgramVocabSize(6), 4096);
}

// ---- Geohash ------------------------------------------------------------------

TEST(GeohashTest, KnownValue) {
  // Classic reference: (57.64911, 10.40744) -> "u4pruydqqvj".
  EXPECT_EQ(GeohashEncode({57.64911, 10.40744}, 11), "u4pruydqqvj");
}

TEST(GeohashTest, EncodeDecodeRoundTrip) {
  GeoPoint p{43.88123, 125.35321};
  auto decoded = GeohashDecode(GeohashEncode(p, 9));
  ASSERT_TRUE(decoded.ok());
  EXPECT_NEAR(decoded->lat, p.lat, 1e-4);
  EXPECT_NEAR(decoded->lon, p.lon, 1e-4);
}

TEST(GeohashTest, PrefixProperty) {
  GeoPoint p{43.88, 125.35};
  EXPECT_EQ(GeohashEncode(p, 9).substr(0, 5), GeohashEncode(p, 5));
}

TEST(GeohashTest, NearbyPointsSharePrefix) {
  GeoPoint a{43.88, 125.35};
  GeoPoint b = OffsetKm(a, 0.05, 0.05);
  std::string ha = GeohashEncode(a, 9);
  std::string hb = GeohashEncode(b, 9);
  size_t common = 0;
  while (common < ha.size() && ha[common] == hb[common]) ++common;
  EXPECT_GE(common, 5u);
}

TEST(GeohashTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(GeohashDecode("").ok());
  EXPECT_FALSE(GeohashDecode("abc!").ok());
  EXPECT_FALSE(GeohashDecode("aiol").ok());  // i, l, o are not in base32
}

TEST(GeohashTest, CellDimensionsShrink) {
  auto c5 = GeohashCellDimensions(5);
  auto c7 = GeohashCellDimensions(7);
  EXPECT_GT(c5.height_km, c7.height_km);
  EXPECT_GT(c5.width_km, c7.width_km);
  // Precision 5 cells are ~4.9 x 4.9 km.
  EXPECT_NEAR(c5.height_km, 4.9, 0.5);
}

// ---- Spatial index -------------------------------------------------------------

class SpatialIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(99);
    GeoPoint center{43.88, 125.35};
    for (int i = 0; i < 500; ++i) {
      points_.push_back(OffsetKm(center, rng.Normal(0, 5), rng.Normal(0, 5)));
    }
    index_ = std::make_unique<SpatialGridIndex>(points_, 1.0);
    query_ = center;
  }

  std::vector<int64_t> BruteForceKnn(const GeoPoint& q, int64_t k) const {
    std::vector<std::pair<double, int64_t>> all;
    for (size_t i = 0; i < points_.size(); ++i) {
      all.emplace_back(HaversineKm(q, points_[i]), static_cast<int64_t>(i));
    }
    std::sort(all.begin(), all.end());
    std::vector<int64_t> out;
    for (int64_t i = 0; i < k && i < static_cast<int64_t>(all.size()); ++i) {
      out.push_back(all[static_cast<size_t>(i)].second);
    }
    return out;
  }

  std::vector<GeoPoint> points_;
  std::unique_ptr<SpatialGridIndex> index_;
  GeoPoint query_;
};

TEST_F(SpatialIndexTest, KnnMatchesBruteForce) {
  for (int64_t k : {1, 5, 20, 100}) {
    auto fast = index_->KNearest(query_, k);
    auto brute = BruteForceKnn(query_, k);
    ASSERT_EQ(fast.size(), brute.size()) << "k=" << k;
    // Compare by distance (ties may reorder ids).
    for (size_t i = 0; i < fast.size(); ++i) {
      EXPECT_NEAR(HaversineKm(query_, points_[size_t(fast[i])]),
                  HaversineKm(query_, points_[size_t(brute[i])]), 1e-9)
          << "k=" << k << " i=" << i;
    }
  }
}

TEST_F(SpatialIndexTest, KnnSortedAscending) {
  auto ids = index_->KNearest(query_, 50);
  for (size_t i = 1; i < ids.size(); ++i) {
    EXPECT_LE(HaversineKm(query_, points_[size_t(ids[i - 1])]),
              HaversineKm(query_, points_[size_t(ids[i])]));
  }
}

TEST_F(SpatialIndexTest, KnnRespectsFilter) {
  auto ids = index_->KNearest(query_, 10,
                              [](int64_t id) { return id % 2 == 0; });
  EXPECT_EQ(ids.size(), 10u);
  for (int64_t id : ids) EXPECT_EQ(id % 2, 0);
}

TEST_F(SpatialIndexTest, KnnMoreThanAvailable) {
  auto ids = index_->KNearest(query_, 10000);
  EXPECT_EQ(ids.size(), points_.size());
}

TEST_F(SpatialIndexTest, WithinRadiusMatchesBruteForce) {
  for (double r : {0.5, 2.0, 8.0}) {
    auto ids = index_->WithinRadius(query_, r);
    int64_t brute = 0;
    for (const auto& p : points_) {
      if (HaversineKm(query_, p) <= r) ++brute;
    }
    EXPECT_EQ(static_cast<int64_t>(ids.size()), brute) << "r=" << r;
    for (int64_t id : ids) {
      EXPECT_LE(HaversineKm(query_, points_[size_t(id)]), r);
    }
  }
}

TEST(SpatialIndexEdge, EmptyIndex) {
  SpatialGridIndex index({});
  EXPECT_TRUE(index.KNearest({0, 0}, 5).empty());
  EXPECT_TRUE(index.WithinRadius({0, 0}, 10).empty());
}

TEST(SpatialIndexEdge, SinglePoint) {
  SpatialGridIndex index({GeoPoint{10, 10}});
  auto ids = index.KNearest({10.01, 10.01}, 3);
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], 0);
}

}  // namespace
}  // namespace stisan::geo
