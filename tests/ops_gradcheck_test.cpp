// Numerical gradient verification for every differentiable op.
//
// Each test builds a scalar loss from randomly-initialised inputs and checks
// the analytic gradients against central finite differences.

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/gradcheck.h"
#include "tensor/ops.h"

namespace stisan {
namespace {

Tensor RandomInput(Shape shape, uint64_t seed, float scale = 1.0f) {
  Rng rng(seed);
  return Tensor::Randn(std::move(shape), rng, scale, /*requires_grad=*/true);
}

#define EXPECT_GRADCHECK_OK(fn, ...)                         \
  do {                                                       \
    Status st = CheckGradients(fn, {__VA_ARGS__});           \
    EXPECT_TRUE(st.ok()) << st.ToString();                   \
  } while (0)

TEST(GradCheck, Add) {
  Tensor a = RandomInput({2, 3}, 1);
  Tensor b = RandomInput({2, 3}, 2);
  EXPECT_GRADCHECK_OK([&] { return ops::Sum((a + b) * (a + b)); }, a, b);
}

TEST(GradCheck, SubBroadcast) {
  Tensor a = RandomInput({2, 3}, 3);
  Tensor b = RandomInput({3}, 4);
  EXPECT_GRADCHECK_OK([&] { return ops::Sum(ops::Square(a - b)); }, a, b);
}

TEST(GradCheck, MulBroadcastColumn) {
  Tensor a = RandomInput({2, 3}, 5);
  Tensor b = RandomInput({2, 1}, 6);
  EXPECT_GRADCHECK_OK([&] { return ops::Sum(a * b); }, a, b);
}

TEST(GradCheck, Div) {
  Rng rng(7);
  Tensor a = Tensor::Randn({2, 2}, rng, 1.0f, true);
  Tensor b = Tensor::Rand({2, 2}, rng, 1.0f, 2.0f, true);  // away from 0
  EXPECT_GRADCHECK_OK([&] { return ops::Sum(a / b); }, a, b);
}

TEST(GradCheck, MatMul2D) {
  Tensor a = RandomInput({3, 4}, 8);
  Tensor b = RandomInput({4, 2}, 9);
  EXPECT_GRADCHECK_OK([&] { return ops::Sum(ops::Square(ops::MatMul(a, b))); },
                      a, b);
}

TEST(GradCheck, MatMulBatched) {
  Tensor a = RandomInput({2, 3, 2}, 10);
  Tensor b = RandomInput({2, 2, 3}, 11);
  EXPECT_GRADCHECK_OK([&] { return ops::Sum(ops::Square(ops::MatMul(a, b))); },
                      a, b);
}

TEST(GradCheck, MatMul3Dx2D) {
  Tensor a = RandomInput({2, 3, 4}, 12);
  Tensor b = RandomInput({4, 2}, 13);
  EXPECT_GRADCHECK_OK([&] { return ops::Sum(ops::Square(ops::MatMul(a, b))); },
                      a, b);
}

TEST(GradCheck, TransposeLast2) {
  Tensor a = RandomInput({2, 3, 4}, 14);
  EXPECT_GRADCHECK_OK(
      [&] {
        Tensor t = ops::TransposeLast2(a);
        return ops::Sum(ops::Square(ops::MatMul(a, t)));
      },
      a);
}

TEST(GradCheck, UnaryActivations) {
  Tensor a = RandomInput({2, 4}, 15);
  EXPECT_GRADCHECK_OK([&] { return ops::Sum(ops::Sigmoid(a)); }, a);
  EXPECT_GRADCHECK_OK([&] { return ops::Sum(ops::Tanh(a)); }, a);
  EXPECT_GRADCHECK_OK([&] { return ops::Sum(ops::Softplus(a)); }, a);
  EXPECT_GRADCHECK_OK([&] { return ops::Sum(ops::LogSigmoid(a)); }, a);
}

TEST(GradCheck, ReluAwayFromKink) {
  // Shift inputs away from 0 where relu is non-differentiable.
  Rng rng(16);
  Tensor a = Tensor::Rand({8}, rng, 0.5f, 1.5f, true);
  Tensor b = Tensor::Rand({8}, rng, -1.5f, -0.5f, true);
  EXPECT_GRADCHECK_OK([&] { return ops::Sum(ops::Relu(a)); }, a);
  EXPECT_GRADCHECK_OK([&] { return ops::Sum(ops::Relu(b)); }, b);
}

TEST(GradCheck, ExpLogSqrt) {
  Rng rng(17);
  Tensor a = Tensor::Rand({6}, rng, 0.5f, 2.0f, true);
  EXPECT_GRADCHECK_OK([&] { return ops::Sum(ops::Exp(a)); }, a);
  EXPECT_GRADCHECK_OK([&] { return ops::Sum(ops::Log(a)); }, a);
  EXPECT_GRADCHECK_OK([&] { return ops::Sum(ops::Sqrt(a)); }, a);
}

TEST(GradCheck, SinCos) {
  Tensor a = RandomInput({5}, 18);
  EXPECT_GRADCHECK_OK([&] { return ops::Sum(ops::Square(ops::Sin(a))); }, a);
  EXPECT_GRADCHECK_OK([&] { return ops::Sum(ops::Square(ops::Cos(a))); }, a);
}

TEST(GradCheck, Softmax) {
  Tensor a = RandomInput({3, 4}, 19);
  Tensor w = RandomInput({3, 4}, 20).Detach();
  EXPECT_GRADCHECK_OK([&] { return ops::Sum(ops::Softmax(a) * w); }, a);
}

TEST(GradCheck, LogSoftmax) {
  Tensor a = RandomInput({2, 5}, 21);
  Tensor w = RandomInput({2, 5}, 22).Detach();
  EXPECT_GRADCHECK_OK([&] { return ops::Sum(ops::LogSoftmax(a) * w); }, a);
}

TEST(GradCheck, LayerNormAllInputs) {
  Tensor x = RandomInput({3, 4}, 23);
  Rng rng(24);
  Tensor gamma = Tensor::Rand({4}, rng, 0.5f, 1.5f, true);
  Tensor beta = Tensor::Randn({4}, rng, 0.5f, true);
  Tensor w = RandomInput({3, 4}, 25).Detach();
  EXPECT_GRADCHECK_OK(
      [&] { return ops::Sum(ops::LayerNorm(x, gamma, beta) * w); }, x, gamma,
      beta);
}

TEST(GradCheck, EmbeddingLookup) {
  Tensor w = RandomInput({5, 3}, 26);
  EXPECT_GRADCHECK_OK(
      [&] {
        Tensor e = ops::EmbeddingLookup(w, {0, 2, 2, 4});
        return ops::Sum(ops::Square(e));
      },
      w);
}

TEST(GradCheck, ReshapeSliceConcat) {
  Tensor a = RandomInput({2, 6}, 27);
  Tensor b = RandomInput({2, 2}, 28);
  EXPECT_GRADCHECK_OK(
      [&] {
        Tensor r = ops::Reshape(a, {4, 3});
        Tensor s = ops::Slice(r, 0, 1, 3);   // [2,3]
        Tensor c = ops::Concat(s, b, 1);     // [2,5]
        return ops::Sum(ops::Square(c));
      },
      a, b);
}

TEST(GradCheck, Stack0) {
  Tensor a = RandomInput({3}, 29);
  Tensor b = RandomInput({3}, 30);
  Tensor c = RandomInput({3}, 31);
  EXPECT_GRADCHECK_OK(
      [&] { return ops::Sum(ops::Square(ops::Stack0({a, b, c}))); }, a, b, c);
}

TEST(GradCheck, Unfold1D) {
  Tensor a = RandomInput({5, 2}, 32);
  EXPECT_GRADCHECK_OK(
      [&] { return ops::Sum(ops::Square(ops::Unfold1D(a, 3))); }, a);
}

TEST(GradCheck, AbsClampPow) {
  Rng rng(40);
  Tensor a = Tensor::Rand({6}, rng, 0.5f, 2.0f, true);   // positive for Pow
  Tensor b = Tensor::Rand({6}, rng, -2.0f, 2.0f, true);
  EXPECT_GRADCHECK_OK([&] { return ops::Sum(ops::PowScalar(a, 1.7f)); }, a);
  // Abs away from the kink at 0.
  Rng rng2(41);
  Tensor c = Tensor::Rand({6}, rng2, 0.5f, 1.5f, true);
  EXPECT_GRADCHECK_OK([&] { return ops::Sum(ops::Abs(c)); }, c);
  // Clamp strictly inside / strictly outside the window.
  Tensor inside = Tensor::Rand({5}, rng2, -0.5f, 0.5f, true);
  EXPECT_GRADCHECK_OK(
      [&] { return ops::Sum(ops::Square(ops::Clamp(inside, -1.0f, 1.0f))); },
      inside);
  (void)b;
}

TEST(GradCheck, MinAndMeanDim) {
  Tensor a = RandomInput({3, 4}, 42);
  EXPECT_GRADCHECK_OK(
      [&] { return ops::Sum(ops::Square(ops::MinDim(a, 1))); }, a);
  EXPECT_GRADCHECK_OK(
      [&] { return ops::Sum(ops::Square(ops::MeanDim(a, 0, true))); }, a);
}

TEST(GradCheck, SumDimAndMaxDim) {
  Tensor a = RandomInput({3, 4}, 33);
  EXPECT_GRADCHECK_OK(
      [&] { return ops::Sum(ops::Square(ops::SumDim(a, 0))); }, a);
  EXPECT_GRADCHECK_OK(
      [&] { return ops::Sum(ops::Square(ops::SumDim(a, 1, true))); }, a);
  // MaxDim: random gaussian entries are distinct w.p. 1, so argmax is stable
  // under the small FD perturbation.
  EXPECT_GRADCHECK_OK(
      [&] { return ops::Sum(ops::Square(ops::MaxDim(a, 1))); }, a);
}

TEST(GradCheck, AttentionShapedComposite) {
  // A miniature causal attention: checks the composed graph end-to-end.
  const int64_t n = 3, d = 4;
  Tensor x = RandomInput({n, d}, 34, 0.5f);
  Tensor wq = RandomInput({d, d}, 35, 0.5f);
  Tensor wk = RandomInput({d, d}, 36, 0.5f);
  Tensor wv = RandomInput({d, d}, 37, 0.5f);
  // Causal mask as additive constant.
  std::vector<float> mask(n * n, 0.0f);
  for (int64_t i = 0; i < n; ++i)
    for (int64_t j = i + 1; j < n; ++j) mask[i * n + j] = -1e9f;
  Tensor m = Tensor::FromVector({n, n}, mask);
  EXPECT_GRADCHECK_OK(
      [&] {
        Tensor q = ops::MatMul(x, wq);
        Tensor k = ops::MatMul(x, wk);
        Tensor v = ops::MatMul(x, wv);
        Tensor logits =
            ops::MulScalar(ops::MatMul(q, ops::TransposeLast2(k)),
                           1.0f / std::sqrt(float(d)));
        Tensor att = ops::Softmax(logits + m);
        return ops::Sum(ops::Square(ops::MatMul(att, v)));
      },
      x, wq, wk, wv);
}

// ---- Chained-view graphs ----------------------------------------------------
// Shape ops are zero-copy views; these check that gradients route correctly
// through view chains and through Contiguous()'s scatter-accumulate.

TEST(GradCheck, SliceOfReshape) {
  // Inner-dim slice of a reshape: the slice is non-contiguous, so downstream
  // ops materialise it and the backward scatters into the base buffer.
  Tensor a = RandomInput({2, 6}, 50);
  EXPECT_GRADCHECK_OK(
      [&] {
        Tensor r = ops::Reshape(a, {3, 4});
        Tensor s = ops::Slice(r, 1, 1, 3);
        return ops::Sum(ops::Square(s));
      },
      a);
}

TEST(GradCheck, TransposeThenMatMul) {
  // Exercises MatMul's fused transposed-right-operand path (the view is
  // consumed without materialisation).
  Tensor a = RandomInput({3, 4}, 51, 0.5f);
  Tensor b = RandomInput({5, 4}, 52, 0.5f);
  EXPECT_GRADCHECK_OK(
      [&] {
        return ops::Sum(ops::Square(ops::MatMul(a, ops::TransposeLast2(b))));
      },
      a, b);
}

TEST(GradCheck, TransposeOfViewThenMatMul) {
  // Transpose of a non-contiguous slice: falls off the fused path and goes
  // through Contiguous() instead.
  Tensor a = RandomInput({2, 3}, 53, 0.5f);
  Tensor b = RandomInput({4, 5}, 54, 0.5f);
  EXPECT_GRADCHECK_OK(
      [&] {
        Tensor bs = ops::Slice(b, 1, 1, 4);  // [4,3], non-contiguous
        return ops::Sum(ops::Square(ops::MatMul(a, ops::TransposeLast2(bs))));
      },
      a, b);
}

TEST(GradCheck, OverlappingSlicesAccumulate) {
  // Two overlapping views write grads into one base buffer.
  Tensor a = RandomInput({5, 3}, 55);
  EXPECT_GRADCHECK_OK(
      [&] {
        Tensor lo = ops::Slice(a, 0, 0, 3);
        Tensor hi = ops::Slice(a, 0, 2, 5);
        return ops::Sum(ops::Square(lo * hi));
      },
      a);
}

TEST(GradCheck, InnerSliceChain) {
  // slice(transpose(slice(x))): a deep chain of strided views.
  Tensor a = RandomInput({4, 6}, 56);
  EXPECT_GRADCHECK_OK(
      [&] {
        Tensor s1 = ops::Slice(a, 1, 1, 5);        // [4,4] strided
        Tensor t = ops::TransposeLast2(s1);        // [4,4] strided
        Tensor s2 = ops::Slice(t, 0, 1, 3);        // [2,4] strided
        return ops::Sum(ops::Square(s2));
      },
      a);
}

}  // namespace
}  // namespace stisan
