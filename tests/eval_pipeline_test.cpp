// Determinism contract of the batched evaluation pipeline: for every model,
// Evaluate through a BatchScorer must produce bit-identical metrics to the
// sequential per-instance path at any thread count and batch size.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/stisan.h"
#include "data/preprocess.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "models/san_models.h"
#include "models/stan.h"
#include "tensor/kernels.h"

namespace stisan {
namespace {

class EvalPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = data::GenerateSynthetic(data::GowallaLikeConfig(0.08));
    split_ = data::TrainTestSplit(ds_, {.max_seq_len = 12});
    ASSERT_GT(split_.test.size(), 8u);
    if (split_.test.size() > 32) split_.test.resize(32);
    gen_ = std::make_unique<eval::CandidateGenerator>(ds_);
  }

  void TearDown() override { kernels::SetNumThreads(1); }

  // Exact comparison — the pipeline's contract is bit-identity, so no
  // EXPECT_NEAR anywhere.
  static void ExpectBitIdentical(const eval::MetricAccumulator& a,
                                 const eval::MetricAccumulator& b) {
    EXPECT_EQ(a.count(), b.count());
    EXPECT_EQ(a.ranks(), b.ranks());
    const auto ma = a.Means();
    const auto mb = b.Means();
    ASSERT_EQ(ma.size(), mb.size());
    for (const auto& [key, value] : ma) EXPECT_EQ(value, mb.at(key)) << key;
    EXPECT_EQ(a.MeanReciprocalRank(), b.MeanReciprocalRank());
  }

  // Reference: single-threaded, per-instance Score through the function
  // scorer. Then every (threads, batch) combination of the batched path.
  void CheckDeterminism(models::SequentialRecommender& model) {
    eval::EvalOptions options;
    options.num_negatives = 30;

    kernels::SetNumThreads(1);
    options.batch_size = 1;
    const eval::Scorer scorer = [&model](const data::EvalInstance& inst,
                                         const std::vector<int64_t>& cands) {
      return model.Score(inst, cands);
    };
    const auto reference = eval::Evaluate(scorer, split_.test, *gen_, options);
    EXPECT_EQ(reference.count(), static_cast<int64_t>(split_.test.size()));

    for (int64_t threads : {1, 4}) {
      kernels::SetNumThreads(threads);
      for (int64_t batch_size : {1, 8, 32}) {
        options.batch_size = batch_size;
        const auto acc = eval::Evaluate(static_cast<eval::BatchScorer&>(model),
                                        split_.test, *gen_, options);
        SCOPED_TRACE(::testing::Message() << model.name() << " threads="
                                          << threads << " batch="
                                          << batch_size);
        ExpectBitIdentical(reference, acc);
      }
    }
  }

  data::Dataset ds_;
  data::Split split_;
  std::unique_ptr<eval::CandidateGenerator> gen_;
};

core::StisanOptions TinyStisanOptions() {
  core::StisanOptions opts;
  opts.poi_dim = 8;
  opts.geo.dim = 8;
  opts.geo.fourier_dim = 4;
  opts.num_blocks = 2;
  opts.train.seed = 7;
  return opts;
}

models::SanOptions TinySanOptions() {
  models::SanOptions opts;
  opts.base.dim = 16;
  opts.num_blocks = 2;
  opts.max_seq_len = 12;
  opts.base.train.seed = 11;
  return opts;
}

TEST_F(EvalPipelineTest, StisanBatchedMatchesSequential) {
  core::StisanModel model(ds_, TinyStisanOptions());
  CheckDeterminism(model);
}

TEST_F(EvalPipelineTest, StisanWithoutTaadBatchedMatchesSequential) {
  auto opts = TinyStisanOptions();
  opts.use_taad = false;  // exercises the final-step broadcast path
  core::StisanModel model(ds_, opts);
  CheckDeterminism(model);
}

TEST_F(EvalPipelineTest, SasRecWithExtensionsBatchedMatchesSequential) {
  // TAPE + relation bias covers the batched positional and IAAB paths.
  models::SasRecExtensions ext;
  ext.use_tape = true;
  ext.relation = core::RelationOptions{};
  models::SasRecModel model(ds_, TinySanOptions(), ext, "SASRec+ext");
  CheckDeterminism(model);
}

TEST_F(EvalPipelineTest, TiSasRecBatchedMatchesSequential) {
  models::TiSasRecModel model(ds_, TinySanOptions());
  CheckDeterminism(model);
}

TEST_F(EvalPipelineTest, Bert4RecBatchedMatchesSequential) {
  models::Bert4RecModel model(ds_, TinySanOptions());
  CheckDeterminism(model);
}

TEST_F(EvalPipelineTest, StanDefaultBatchPathMatchesSequential) {
  // STAN keeps the default per-instance encoder stacking and overrides
  // Preferences: covers the fallback batching path.
  models::StanOptions opts;
  opts.base.dim = 16;
  opts.max_seq_len = 12;
  opts.base.train.seed = 13;
  models::StanModel model(ds_, opts);
  CheckDeterminism(model);
}

TEST_F(EvalPipelineTest, TrainedStisanStaysBitIdentical) {
  // Determinism must survive training (non-symmetric weights, ReZero gates
  // open, relation bias active).
  auto opts = TinyStisanOptions();
  opts.train.epochs = 1;
  opts.train.max_train_windows = 24;
  core::StisanModel model(ds_, opts);
  model.Fit(ds_, split_.train);
  CheckDeterminism(model);
}

}  // namespace
}  // namespace stisan
