#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <stdexcept>
#include <thread>

#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace stisan {
namespace {

// ---- Status / Result ---------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad dim");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad dim");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad dim");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode c :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kFailedPrecondition,
        StatusCode::kIoError, StatusCode::kUnimplemented,
        StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(c), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseMacros(int x, int* out) {
  STISAN_ASSIGN_OR_RETURN(int half, HalveEven(x));
  *out = half;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseMacros(8, &out).ok());
  EXPECT_EQ(out, 4);
  EXPECT_FALSE(UseMacros(7, &out).ok());
}

// ---- Rng ---------------------------------------------------------------------

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.NextU64() == b.NextU64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(uint64_t{10}));
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 9u);
}

TEST(RngTest, SignedUniformIntBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(int64_t{-5}, int64_t{5});
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, NormalMoments) {
  Rng rng(11);
  const int n = 50000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(19);
  std::vector<double> w = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 20000; ++i) counts[rng.Categorical(w)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2] / 20000.0, 0.75, 0.02);
}

TEST(RngTest, ZipfIsSkewed) {
  Rng rng(23);
  int first = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i)
    if (rng.Zipf(100, 1.2) == 0) ++first;
  // Rank 0 must dominate a uniform draw (~1%).
  EXPECT_GT(first, n / 20);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkIndependent) {
  Rng a(31);
  Rng b = a.Fork();
  EXPECT_NE(a.NextU64(), b.NextU64());
}

// ---- Strings -----------------------------------------------------------------

TEST(StringTest, SplitBasic) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringTest, SplitEmpty) {
  auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StringTest, Trim) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringTest, ParseDouble) {
  auto r = ParseDouble(" 3.5 ");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value(), 3.5);
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("1.2x").ok());
}

TEST(StringTest, ParseInt64) {
  auto r = ParseInt64("-42");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), -42);
  EXPECT_FALSE(ParseInt64("12.5").ok());
}

TEST(StringTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
}

// ---- ParallelFor chunking ----------------------------------------------------

TEST(ParallelForTest, ZeroIterationsNeverTouchesPool) {
  ThreadPool pool(2);
  bool called = false;
  ParallelFor(pool, 0, [&called](int64_t) { called = true; });
  EXPECT_FALSE(called);
  ParallelFor(pool, -5, [&called](int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, SingleIterationRunsInline) {
  // n=1 collapses to one chunk; it must execute on the calling thread, not
  // through the queue (avoids wakeup latency and, for a one-thread pool
  // driven from a worker, deadlock).
  ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  ParallelFor(pool, 1, [&ran_on](int64_t) {
    ran_on = std::this_thread::get_id();
  });
  EXPECT_EQ(ran_on, caller);
}

TEST(ParallelForTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<int64_t> sum{0};
  bool off_thread = false;
  ParallelFor(pool, 100, [&](int64_t i) {
    if (std::this_thread::get_id() != caller) off_thread = true;
    sum += i;
  });
  EXPECT_FALSE(off_thread);
  EXPECT_EQ(sum.load(), 100 * 99 / 2);
}

TEST(ParallelForTest, CoversAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  // Sizes around chunk boundaries: chunks = min(n, threads*4) = min(n, 16).
  for (int64_t n : {1, 2, 15, 16, 17, 257}) {
    std::vector<std::atomic<int>> hits(static_cast<size_t>(n));
    for (auto& h : hits) h = 0;
    ParallelFor(pool, n, [&hits](int64_t i) { hits[i]++; });
    for (int64_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

// ---- Exception safety --------------------------------------------------------

TEST(ThreadPoolTest, WaitRethrowsTaskException) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("boom"); });
  try {
    pool.Wait();
    FAIL() << "expected Wait() to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  // The exception slot is cleared and in_flight_ drained back to zero: the
  // pool stays usable and a second Wait() neither deadlocks nor rethrows.
  pool.Wait();
  std::atomic<int> ran{0};
  pool.Submit([&ran] { ran++; });
  pool.Wait();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolTest, AllTasksRunEvenWhenEveryOneThrows) {
  ThreadPool pool(4);
  std::atomic<int> started{0};
  for (int i = 0; i < 32; ++i) {
    pool.Submit([&started] {
      started++;
      throw std::runtime_error("boom");
    });
  }
  // Only the first exception survives; the in-flight count must still reach
  // zero (pre-fix, the decrement was skipped on throw and Wait() hung).
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  EXPECT_EQ(started.load(), 32);
  pool.Wait();  // drained and cleared
}

TEST(ThreadPoolTest, TaskCountersTrackSubmissions) {
  ThreadPool pool(2);
  const uint64_t submitted0 = pool.tasks_submitted();
  const uint64_t completed0 = pool.tasks_completed();
  for (int i = 0; i < 8; ++i) pool.Submit([] {});
  pool.Wait();
  EXPECT_EQ(pool.tasks_submitted() - submitted0, 8u);
  EXPECT_EQ(pool.tasks_completed() - completed0, 8u);
}

TEST(ParallelForTest, BodyExceptionRethrownOnCallingThread) {
  ThreadPool pool(4);
  // Throw at the last index of the last chunk so every index still runs;
  // other chunks are never cancelled.
  std::atomic<int64_t> visited{0};
  try {
    ParallelFor(pool, 64, [&visited](int64_t i) {
      visited++;
      if (i == 63) throw std::invalid_argument("bad index");
    });
    FAIL() << "expected ParallelFor to rethrow";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "bad index");
  }
  EXPECT_EQ(visited.load(), 64);
  // Pool reusable afterwards.
  std::atomic<int64_t> sum{0};
  ParallelFor(pool, 10, [&sum](int64_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ParallelForTest, InlineChunkExceptionPropagatesDirectly) {
  // n=1 collapses to the inline path (no pool involvement): the exception
  // must still reach the caller.
  ThreadPool pool(2);
  EXPECT_THROW(
      ParallelFor(pool, 1, [](int64_t) { throw std::runtime_error("x"); }),
      std::runtime_error);
}

}  // namespace
}  // namespace stisan
