// Two-stage full-catalog ranking suite (DESIGN.md §17).
//
//  - Property tests: SpatialGridIndex KNearest / WithinRadius against
//    brute force over fuzzed point sets (clustered, collinear,
//    high-latitude, sparse-filter, k > accepted count).
//  - Regression: the KNearest early-exit lower bound must account for
//    longitudinal cell width. The former bound used only the latitude
//    cell height, which overestimates the distance to the next ring
//    wherever cells are longitudinally narrower than cell_km (latitudes
//    poleward of the grid's mid-latitude) — it broke off the ring search
//    before reaching a true nearest neighbour that sits to the east/west.
//  - Sparse cell storage: a continent-span extent must not materialise
//    rows x cols cells.
//  - geo::CandidateGenerator: batch = per-query results, thread-count
//    independent.
//  - eval: FullRankingEvaluate chunk_size = 1 (formerly rejected by an
//    off-by-one CHECK), BatchScorer/Scorer overload parity, and
//    FullRanking-vs-PrunedRanking rank parity when the pool provably
//    contains the target.
//  - serve: opt-in RankCatalog requests.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_set>
#include <vector>

#include "data/preprocess.h"
#include "data/synthetic.h"
#include "eval/full_ranking.h"
#include "eval/pruned_ranking.h"
#include "eval/ranking_core.h"
#include "geo/candidate_gen.h"
#include "geo/spatial_index.h"
#include "models/shallow.h"
#include "serve/service.h"
#include "tensor/kernels.h"
#include "util/rng.h"

namespace stisan {
namespace {

using geo::GeoPoint;
using geo::HaversineKm;
using geo::OffsetKm;
using geo::SpatialGridIndex;

// ---- Brute-force references ---------------------------------------------------

std::vector<int64_t> BruteKnn(const std::vector<GeoPoint>& points,
                              const GeoPoint& q, int64_t k,
                              const std::function<bool(int64_t)>& accept) {
  std::vector<std::pair<double, int64_t>> all;
  for (size_t i = 0; i < points.size(); ++i) {
    if (accept && !accept(static_cast<int64_t>(i))) continue;
    all.emplace_back(HaversineKm(q, points[i]), static_cast<int64_t>(i));
  }
  std::sort(all.begin(), all.end());
  std::vector<int64_t> out;
  for (int64_t i = 0; i < k && i < static_cast<int64_t>(all.size()); ++i) {
    out.push_back(all[static_cast<size_t>(i)].second);
  }
  return out;
}

std::set<int64_t> BruteRadius(const std::vector<GeoPoint>& points,
                              const GeoPoint& q, double radius_km) {
  std::set<int64_t> out;
  for (size_t i = 0; i < points.size(); ++i) {
    if (HaversineKm(q, points[i]) <= radius_km) {
      out.insert(static_cast<int64_t>(i));
    }
  }
  return out;
}

// Compares by distance (equidistant points may legitimately reorder).
void ExpectSameByDistance(const std::vector<GeoPoint>& points,
                          const GeoPoint& q,
                          const std::vector<int64_t>& fast,
                          const std::vector<int64_t>& brute,
                          const std::string& context) {
  ASSERT_EQ(fast.size(), brute.size()) << context;
  for (size_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(HaversineKm(q, points[static_cast<size_t>(fast[i])]),
                HaversineKm(q, points[static_cast<size_t>(brute[i])]), 1e-9)
        << context << " i=" << i;
  }
}

// Fuzzed point-set generators. Each stresses a different failure mode of
// the ring search: anisotropic cells (high latitude), degenerate extents
// (collinear), cluster/void structure, and near-empty accept sets.
std::vector<GeoPoint> MakePoints(int config, Rng& rng) {
  std::vector<GeoPoint> pts;
  switch (config) {
    case 0: {  // clustered around a mid-latitude city
      GeoPoint center{43.88, 125.35};
      for (int c = 0; c < 6; ++c) {
        GeoPoint cc = OffsetKm(center, rng.Normal(0, 12), rng.Normal(0, 12));
        for (int i = 0; i < 60; ++i) {
          pts.push_back(OffsetKm(cc, rng.Normal(0, 1.0), rng.Normal(0, 1.0)));
        }
      }
      break;
    }
    case 1: {  // collinear: all points on one parallel
      for (int i = 0; i < 250; ++i) {
        pts.push_back({51.5, -0.5 + 0.004 * i});
      }
      break;
    }
    case 2: {  // high latitude, tall latitude extent (anisotropic cells)
      for (int i = 0; i < 300; ++i) {
        pts.push_back({62.0 + 16.0 * rng.Uniform(),
                       10.0 + 2.0 * rng.Uniform()});
      }
      break;
    }
    default: {  // sparse uniform over a wide box
      for (int i = 0; i < 200; ++i) {
        pts.push_back({30.0 + 10.0 * rng.Uniform(),
                       100.0 + 10.0 * rng.Uniform()});
      }
      break;
    }
  }
  return pts;
}

TEST(KnnPropertyTest, MatchesBruteForceOverFuzzedSets) {
  for (int config = 0; config < 4; ++config) {
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      Rng rng(1000 * static_cast<uint64_t>(config) + seed);
      const auto pts = MakePoints(config, rng);
      for (double cell_km : {0.5, 2.0}) {
        SpatialGridIndex index(pts, cell_km);
        for (int qi = 0; qi < 5; ++qi) {
          const GeoPoint q =
              pts[rng.UniformInt(static_cast<uint64_t>(pts.size()))];
          for (int64_t k : {1, 7, 64}) {
            const auto fast = index.KNearest(q, k);
            const auto brute = BruteKnn(pts, q, k, nullptr);
            ExpectSameByDistance(pts, q, fast, brute,
                                 "config=" + std::to_string(config) +
                                     " seed=" + std::to_string(seed) +
                                     " cell=" + std::to_string(cell_km) +
                                     " k=" + std::to_string(k));
          }
        }
      }
    }
  }
}

TEST(KnnPropertyTest, AcceptFilterRejectingMostPoints) {
  Rng rng(7);
  const auto pts = MakePoints(2, rng);
  SpatialGridIndex index(pts, 1.0);
  // Accepts ~1/13 of the points; k = 64 exceeds the accepted count for
  // some queries, k = 1000 always does.
  const auto accept = [](int64_t id) { return id % 13 == 0; };
  for (int qi = 0; qi < 8; ++qi) {
    const GeoPoint q = pts[rng.UniformInt(static_cast<uint64_t>(pts.size()))];
    for (int64_t k : {1, 8, 64, 1000}) {
      const auto fast = index.KNearest(q, k, accept);
      const auto brute = BruteKnn(pts, q, k, accept);
      ExpectSameByDistance(pts, q, fast, brute, "k=" + std::to_string(k));
      for (int64_t id : fast) EXPECT_EQ(id % 13, 0);
    }
  }
}

TEST(KnnRegressionTest, HighLatitudeEarlyExitBound) {
  // Deterministic configuration on which the former latitude-only early
  // exit returned the wrong nearest neighbour. Grid latitude range
  // [40, ~78] puts the longitudinal cell width at the 59deg mid-latitude
  // (~0.0349deg ~ 0.81 km at 78deg); the query sits at 78deg with a decoy
  // 4.5 km north (column ring ~2) and the true nearest 4.0 km east
  // (column ring ~5). The old bound (ring-1) * cell_km reached 6.0 km at
  // ring 4 and broke off before ring 5; the corrected longitude bound at
  // ring 4 is ~2.4 km, so the search continues and finds the east point.
  const GeoPoint query{78.0, 20.0};
  std::vector<GeoPoint> pts;
  pts.push_back(OffsetKm(query, 4.5, 0.0));  // id 0: decoy (north)
  pts.push_back(OffsetKm(query, 0.0, 4.0));  // id 1: true nearest (east)
  // Far filler stretching the grid's latitude range down to 40deg.
  for (int i = 0; i < 5; ++i) pts.push_back({40.0, 20.0 + 0.01 * i});

  SpatialGridIndex index(pts, 2.0);
  const auto ids = index.KNearest(query, 1);
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], 1) << "early exit must not stop before the ring that "
                          "holds the true (eastern) nearest neighbour";

  // And the full neighbourhood comes back in brute-force order.
  const auto all = index.KNearest(query, static_cast<int64_t>(pts.size()));
  const auto brute = BruteKnn(pts, query, static_cast<int64_t>(pts.size()),
                              nullptr);
  ExpectSameByDistance(pts, query, all, brute, "full sweep");
}

TEST(RadiusPropertyTest, MatchesBruteForceOverFuzzedSets) {
  for (int config = 0; config < 4; ++config) {
    Rng rng(77 + static_cast<uint64_t>(config));
    const auto pts = MakePoints(config, rng);
    SpatialGridIndex index(pts, 1.5);
    for (int qi = 0; qi < 5; ++qi) {
      const GeoPoint q =
          pts[rng.UniformInt(static_cast<uint64_t>(pts.size()))];
      for (double r : {0.3, 2.0, 15.0}) {
        const auto fast = index.WithinRadius(q, r);
        const std::set<int64_t> got(fast.begin(), fast.end());
        EXPECT_EQ(got, BruteRadius(pts, q, r))
            << "config=" << config << " r=" << r;
      }
    }
  }
}

TEST(RadiusPropertyTest, PolarLatitudesDoNotUnderScan) {
  // Beyond ~87deg the former implementation clamped cos(lat) to 0.05 when
  // sizing the column scan, which under-scanned and could drop points.
  std::vector<GeoPoint> pts;
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    pts.push_back({88.0 + 1.5 * rng.Uniform(), 170.0 * rng.Uniform()});
  }
  SpatialGridIndex index(pts, 1.0);
  for (int qi = 0; qi < 6; ++qi) {
    const GeoPoint q = pts[rng.UniformInt(static_cast<uint64_t>(pts.size()))];
    for (double r : {1.0, 10.0, 80.0}) {
      const auto fast = index.WithinRadius(q, r);
      const std::set<int64_t> got(fast.begin(), fast.end());
      EXPECT_EQ(got, BruteRadius(pts, q, r)) << "r=" << r;
    }
  }
}

TEST(SparseIndexTest, ContinentSpanExtentStaysSparse) {
  // Two far-apart cities: a dense grid would address tens of millions of
  // cells; the sparse map must only materialise the occupied ones.
  std::vector<GeoPoint> pts;
  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    pts.push_back(OffsetKm({40.0, -120.0}, rng.Normal(0, 3), rng.Normal(0, 3)));
    pts.push_back(OffsetKm({60.0, 140.0}, rng.Normal(0, 3), rng.Normal(0, 3)));
  }
  SpatialGridIndex index(pts, 1.0);
  EXPECT_GT(index.addressable_cells(), int64_t{1000000});
  EXPECT_LE(index.occupied_cells(), static_cast<int64_t>(pts.size()));
  // Queries still work across the void between the two blobs.
  const auto near_a = index.KNearest({40.0, -120.0}, 10);
  EXPECT_EQ(near_a.size(), 10u);
  const auto brute = BruteKnn(pts, {40.0, -120.0}, 10, nullptr);
  ExpectSameByDistance(pts, {40.0, -120.0}, near_a, brute, "city A");
}

TEST(SparseIndexTest, ScratchReuseIsStable) {
  Rng rng(5);
  const auto pts = MakePoints(0, rng);
  SpatialGridIndex index(pts, 1.0);
  SpatialGridIndex::QueryScratch scratch;
  std::vector<int64_t> out;
  const GeoPoint q = pts[17];
  index.KNearestInto(q, 25, nullptr, &scratch, &out);
  const auto first = out;
  for (int rep = 0; rep < 3; ++rep) {
    index.KNearestInto(q, 25, nullptr, &scratch, &out);
    EXPECT_EQ(out, first) << "rep=" << rep;
  }
}

// ---- Candidate generator ------------------------------------------------------

TEST(CandidateGenTest, BatchMatchesPerQueryAndIsThreadCountIndependent) {
  Rng rng(21);
  const auto pts = MakePoints(0, rng);
  SpatialGridIndex index(pts, 1.0);
  geo::CandidatePoolOptions options;
  options.pool_size = 40;
  geo::CandidateGenerator gen(index, options);

  std::vector<GeoPoint> queries;
  for (int i = 0; i < 37; ++i) {
    queries.push_back(pts[rng.UniformInt(static_cast<uint64_t>(pts.size()))]);
  }
  const geo::CandidateGenerator::BatchAcceptFn accept =
      [](int64_t qi, int64_t id) { return (id + qi) % 3 != 0; };

  std::vector<std::vector<int64_t>> serial;
  gen.GenerateBatch(queries, accept, nullptr, &serial);
  std::vector<std::vector<int64_t>> pooled;
  gen.GenerateBatch(queries, accept, &kernels::GlobalPool(), &pooled);
  EXPECT_EQ(serial, pooled);

  // And each slot matches the single-query path.
  SpatialGridIndex::QueryScratch scratch;
  for (size_t i = 0; i < queries.size(); ++i) {
    std::vector<int64_t> one;
    const int64_t qi = static_cast<int64_t>(i);
    gen.Generate(queries[i],
                 [&accept, qi](int64_t id) { return accept(qi, id); },
                 &scratch, &one);
    EXPECT_EQ(serial[i], one) << "query " << i;
  }
}

TEST(CandidateGenTest, RadiusModeFiltersAndMatchesIndex) {
  Rng rng(23);
  const auto pts = MakePoints(3, rng);
  SpatialGridIndex index(pts, 1.5);
  geo::CandidatePoolOptions options;
  options.radius_km = 25.0;
  geo::CandidateGenerator gen(index, options);
  SpatialGridIndex::QueryScratch scratch;
  std::vector<int64_t> pool;
  const GeoPoint q = pts[3];
  gen.Generate(q, [](int64_t id) { return id % 2 == 0; }, &scratch, &pool);
  const auto reference = index.WithinRadius(q, 25.0);
  std::vector<int64_t> expected;
  for (int64_t id : reference) {
    if (id % 2 == 0) expected.push_back(id);
  }
  EXPECT_EQ(pool, expected);
}

// ---- Full / pruned ranking ----------------------------------------------------

class RankingEvalTest : public ::testing::Test {
 protected:
  RankingEvalTest()
      : ds_(data::GenerateSynthetic(data::GowallaLikeConfig(0.05))),
        split_(data::TrainTestSplit(ds_, {.max_seq_len = 8})) {
    pop_.Fit(ds_, split_.train);
    scorer_ = [this](const data::EvalInstance& inst,
                     const std::vector<int64_t>& cands) {
      return pop_.Score(inst, cands);
    };
  }

  data::Dataset ds_;
  data::Split split_;
  models::PopModel pop_;
  eval::Scorer scorer_;
};

TEST_F(RankingEvalTest, ChunkSizeOneIsValidAndEquivalent) {
  // chunk_size = 1 is documented-valid (one candidate per scorer call)
  // but was rejected by an off-by-one CHECK (> 1 instead of >= 1).
  auto a = eval::FullRankingEvaluate(scorer_, split_.test, ds_,
                                     {.max_instances = 6, .chunk_size = 1});
  auto b = eval::FullRankingEvaluate(
      scorer_, split_.test, ds_, {.max_instances = 6, .chunk_size = 512});
  EXPECT_EQ(a.ranks(), b.ranks());
}

TEST_F(RankingEvalTest, BatchScorerOverloadMatchesScorerOverload) {
  auto direct = eval::FullRankingEvaluate(
      pop_, split_.test, ds_, {.max_instances = 12, .batch_size = 5});
  auto adapted = eval::FullRankingEvaluate(
      scorer_, split_.test, ds_, {.max_instances = 12, .batch_size = 32});
  EXPECT_EQ(direct.ranks(), adapted.ranks());
}

TEST_F(RankingEvalTest, PrunedEqualsFullWhenPoolCoversCatalog) {
  // pool_size >= P makes stage one lossless (every unvisited POI is
  // retrieved), so the two-stage rank must equal the exact rank
  // bit-for-bit, per instance.
  const auto index = eval::BuildCatalogIndex(ds_);
  geo::CandidatePoolOptions pool_options;
  pool_options.pool_size = ds_.num_pois();
  geo::CandidateGenerator gen(index, pool_options);

  eval::FullRankingOptions full_options;
  full_options.max_instances = 15;
  const auto full =
      eval::FullRankingEvaluate(pop_, split_.test, ds_, full_options);

  eval::PrunedRankingOptions pruned_options;
  pruned_options.max_instances = 15;
  const auto pruned = eval::PrunedRankingEvaluate(pop_, split_.test, ds_,
                                                  gen, pruned_options);
  EXPECT_DOUBLE_EQ(pruned.TargetInPoolRate(), 1.0);
  EXPECT_EQ(pruned.metrics.ranks(), full.ranks());
}

TEST_F(RankingEvalTest, PrunedRankLowerBoundsExactWhenTargetInPool) {
  const auto index = eval::BuildCatalogIndex(ds_);
  geo::CandidatePoolOptions pool_options;
  pool_options.pool_size = 50;  // genuinely pruned
  geo::CandidateGenerator gen(index, pool_options);

  const int64_t n = 25;
  const auto full = eval::FullRankingEvaluate(pop_, split_.test, ds_,
                                              {.max_instances = n});
  eval::PrunedRankingOptions pruned_options;
  pruned_options.max_instances = n;
  const auto pruned = eval::PrunedRankingEvaluate(pop_, split_.test, ds_,
                                                  gen, pruned_options);
  ASSERT_EQ(pruned.metrics.ranks().size(), full.ranks().size());
  ASSERT_EQ(pruned.target_in_pool.size(), static_cast<size_t>(n));
  EXPECT_EQ(pruned.instances, n);
  EXPECT_GT(pruned.mean_pool_size, 0.0);
  for (size_t i = 0; i < pruned.target_in_pool.size(); ++i) {
    if (pruned.target_in_pool[i] != 0) {
      // Ranking over a subset can only improve the target's rank.
      EXPECT_LE(pruned.metrics.ranks()[i], full.ranks()[i]) << "i=" << i;
    } else {
      EXPECT_EQ(pruned.metrics.ranks()[i], ds_.num_pois()) << "i=" << i;
    }
  }
}

TEST_F(RankingEvalTest, PerfectScorerHitRateEqualsPoolRate) {
  const auto index = eval::BuildCatalogIndex(ds_);
  geo::CandidatePoolOptions pool_options;
  pool_options.pool_size = 30;
  geo::CandidateGenerator gen(index, pool_options);
  eval::Scorer perfect = [](const data::EvalInstance& inst,
                            const std::vector<int64_t>& cands) {
    std::vector<float> s(cands.size());
    for (size_t i = 0; i < cands.size(); ++i) {
      s[i] = cands[i] == inst.target ? 1.0f : 0.0f;
    }
    return s;
  };
  eval::internal::SingleScorerAdapter adapter(perfect);
  eval::PrunedRankingOptions options;
  options.max_instances = 30;
  const auto pruned =
      eval::PrunedRankingEvaluate(adapter, split_.test, ds_, gen, options);
  // A perfect scorer ranks the target first whenever stage one kept it,
  // so HR@k is exactly the pruning recall proxy.
  EXPECT_DOUBLE_EQ(pruned.metrics.HitRate(5), pruned.TargetInPoolRate());
}

TEST_F(RankingEvalTest, TopKTrackingRespectsPoolMisses) {
  const auto index = eval::BuildCatalogIndex(ds_);
  geo::CandidatePoolOptions pool_options;
  pool_options.pool_size = 20;
  geo::CandidateGenerator gen(index, pool_options);
  std::vector<std::vector<int64_t>> top_k;
  eval::PrunedRankingOptions options;
  options.max_instances = 30;
  options.track_top_k = 10;
  options.top_k_out = &top_k;
  const auto pruned =
      eval::PrunedRankingEvaluate(pop_, split_.test, ds_, gen, options);
  ASSERT_EQ(top_k.size(), static_cast<size_t>(pruned.instances));
  for (size_t i = 0; i < top_k.size(); ++i) {
    EXPECT_LE(top_k[i].size(), 10u);
    if (pruned.target_in_pool[i] == 0) {
      // The two-stage ranker cannot return a POI stage one dropped.
      const int64_t target = split_.test[i].target;
      EXPECT_EQ(std::count(top_k[i].begin(), top_k[i].end(), target), 0)
          << "i=" << i;
    }
  }
}

// ---- Serving ------------------------------------------------------------------

TEST(ServeCatalogTest, RankCatalogReturnsModelTopK) {
  auto ds = data::GenerateSynthetic(data::GowallaLikeConfig(0.05));
  auto split = data::TrainTestSplit(ds, {.max_seq_len = 8});
  models::PopModel pop;
  pop.Fit(ds, split.train);

  serve::ServeOptions options;
  options.start_worker = false;
  options.num_pois = ds.num_pois();
  options.poi_coords = &ds.poi_coords;
  options.catalog_pool_size = 40;
  serve::RecommendService service(&pop, options);

  const int64_t user = 1;
  std::vector<int64_t> history = {1, 2, 3};
  for (size_t i = 0; i < history.size(); ++i) {
    ASSERT_TRUE(service.Append(user, history[i], 1000.0 * (i + 1)).ok());
  }
  const auto result = service.RankCatalog(user, 10);
  ASSERT_TRUE(result.ok()) << result.status.ToString();
  ASSERT_EQ(result.pois.size(), result.scores.size());
  ASSERT_LE(result.pois.size(), 10u);
  ASSERT_GE(result.pois.size(), 1u);
  // Descending scores, ties by ascending id; nothing already visited.
  const std::unordered_set<int64_t> visited(history.begin(), history.end());
  for (size_t i = 0; i < result.pois.size(); ++i) {
    EXPECT_FALSE(visited.contains(result.pois[i]));
    if (i > 0) {
      EXPECT_TRUE(result.scores[i - 1] > result.scores[i] ||
                  (result.scores[i - 1] == result.scores[i] &&
                   result.pois[i - 1] < result.pois[i]))
          << "i=" << i;
    }
  }

  // Cross-check against running the two stages by hand (PopModel scores
  // are history-independent, so the expected stage-two scores are just
  // pop.Score over the pool).
  const auto index = eval::BuildCatalogIndex(ds);
  geo::CandidatePoolOptions pool_options;
  pool_options.pool_size = options.catalog_pool_size;
  geo::CandidateGenerator gen(index, pool_options);
  geo::SpatialGridIndex::QueryScratch scratch;
  std::vector<int64_t> pool_ids;
  gen.Generate(ds.poi_location(history.back()),
               [&visited](int64_t id) { return !visited.contains(id + 1); },
               &scratch, &pool_ids);
  std::vector<int64_t> pool;
  for (int64_t id : pool_ids) pool.push_back(id + 1);
  data::EvalInstance dummy;
  const auto scores = pop.Score(dummy, pool);
  std::vector<std::pair<float, int64_t>> ranked;
  for (size_t i = 0; i < pool.size(); ++i) {
    ranked.emplace_back(scores[i], pool[i]);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  ASSERT_LE(result.pois.size(), ranked.size());
  for (size_t i = 0; i < result.pois.size(); ++i) {
    EXPECT_EQ(result.pois[i], ranked[i].second) << "i=" << i;
    EXPECT_EQ(result.scores[i], ranked[i].first) << "i=" << i;
  }
}

TEST(ServeCatalogTest, TypedErrorsForDisabledColdAndInvalid) {
  auto ds = data::GenerateSynthetic(data::GowallaLikeConfig(0.05));
  models::PopModel pop;

  {  // Disabled: poi_coords not set.
    serve::ServeOptions options;
    options.start_worker = false;
    serve::RecommendService service(&pop, options);
    const auto r = service.RankCatalog(7, 5);
    EXPECT_EQ(r.status.code(), StatusCode::kFailedPrecondition);
  }
  {
    serve::ServeOptions options;
    options.start_worker = false;
    options.num_pois = ds.num_pois();
    options.poi_coords = &ds.poi_coords;
    serve::RecommendService service(&pop, options);
    // No history: no query location.
    const auto cold = service.RankCatalog(7, 5);
    EXPECT_EQ(cold.status.code(), StatusCode::kFailedPrecondition);
    // top_k must be >= 1.
    const auto bad = service.RankCatalog(7, 0);
    EXPECT_EQ(bad.status.code(), StatusCode::kInvalidArgument);
    // Plain scoring still works alongside.
    ASSERT_TRUE(service.Append(7, 1, 100.0).ok());
    const auto ok = service.RankCatalog(7, 5);
    EXPECT_TRUE(ok.ok()) << ok.status.ToString();
  }
}

}  // namespace
}  // namespace stisan
