// Tests for the supporting infrastructure added on top of the core
// reproduction: checkpoint serialization, thread pool, LR schedules,
// early stopping, and the extended evaluation metrics.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>

#include "eval/metrics.h"
#include "nn/layers.h"
#include "train/early_stopping.h"
#include "train/lr_schedule.h"
#include "util/serialize.h"
#include "util/thread_pool.h"

namespace stisan {
namespace {

// ---- Serialization ------------------------------------------------------------

TEST(SerializeTest, RoundTripPrimitives) {
  const std::string path = "/tmp/stisan_ser_test.bin";
  {
    BinaryWriter w(path);
    w.WriteU64(42);
    w.WriteI64(-7);
    w.WriteF32(3.25f);
    w.WriteString("hello");
    w.WriteFloatVector({1.5f, -2.5f});
    w.WriteInt64Vector({10, 20, 30});
    ASSERT_TRUE(w.Finish().ok());
  }
  BinaryReader r(path);
  EXPECT_EQ(r.ReadU64().value(), 42u);
  EXPECT_EQ(r.ReadI64().value(), -7);
  EXPECT_EQ(r.ReadF32().value(), 3.25f);
  EXPECT_EQ(r.ReadString().value(), "hello");
  EXPECT_EQ(r.ReadFloatVector().value(), (std::vector<float>{1.5f, -2.5f}));
  EXPECT_EQ(r.ReadInt64Vector().value(), (std::vector<int64_t>{10, 20, 30}));
  // Reading past the end fails cleanly.
  EXPECT_FALSE(r.ReadU64().ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileFails) {
  BinaryReader r("/nonexistent/never.bin");
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.ReadU64().ok());
}

TEST(SerializeTest, TruncatedVectorFails) {
  const std::string path = "/tmp/stisan_ser_trunc.bin";
  {
    BinaryWriter w(path);
    w.WriteU64(1000);  // claims 1000 floats but writes none
    ASSERT_TRUE(w.Finish().ok());
  }
  BinaryReader r(path);
  EXPECT_FALSE(r.ReadFloatVector().ok());
  std::remove(path.c_str());
}

TEST(ModuleCheckpointTest, SaveLoadRestoresParameters) {
  const std::string path = "/tmp/stisan_ckpt_test.bin";
  Rng rng(3);
  nn::Linear a(4, 6, rng);
  nn::Linear b(4, 6, rng);  // different random init
  ASSERT_TRUE(a.SaveParameters(path).ok());
  ASSERT_TRUE(b.LoadParameters(path).ok());
  auto pa = a.Parameters();
  auto pb = b.Parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].ToVector(), pb[i].ToVector());
  }
  std::remove(path.c_str());
}

TEST(ModuleCheckpointTest, ShapeMismatchRejected) {
  const std::string path = "/tmp/stisan_ckpt_mismatch.bin";
  Rng rng(4);
  nn::Linear a(4, 6, rng);
  nn::Linear b(6, 4, rng);
  ASSERT_TRUE(a.SaveParameters(path).ok());
  Status st = b.LoadParameters(path);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(ModuleCheckpointTest, GarbageFileRejected) {
  const std::string path = "/tmp/stisan_ckpt_garbage.bin";
  {
    FILE* f = fopen(path.c_str(), "w");
    fputs("not a checkpoint at all, sorry", f);
    fclose(f);
  }
  Rng rng(5);
  nn::Linear a(2, 2, rng);
  EXPECT_FALSE(a.LoadParameters(path).ok());
  std::remove(path.c_str());
}

// ---- Thread pool ----------------------------------------------------------------

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  ParallelFor(pool, 257, [&hits](int64_t i) {
    hits[static_cast<size_t>(i)].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  ParallelFor(pool, 0, [&called](int64_t) { called = true; });
  EXPECT_FALSE(called);
}

// ---- LR schedules -----------------------------------------------------------------

TEST(LrScheduleTest, ConstantIsConstant) {
  train::ConstantLr lr(0.01f);
  EXPECT_EQ(lr.Lr(0), 0.01f);
  EXPECT_EQ(lr.Lr(1000000), 0.01f);
}

TEST(LrScheduleTest, WarmupRampsLinearly) {
  train::WarmupLr lr(1.0f, 10);
  EXPECT_NEAR(lr.Lr(0), 0.1f, 1e-6f);
  EXPECT_NEAR(lr.Lr(4), 0.5f, 1e-6f);
  EXPECT_EQ(lr.Lr(10), 1.0f);
  EXPECT_EQ(lr.Lr(100), 1.0f);
}

TEST(LrScheduleTest, StepDecay) {
  train::StepDecayLr lr(1.0f, 10, 0.5f);
  EXPECT_EQ(lr.Lr(0), 1.0f);
  EXPECT_EQ(lr.Lr(9), 1.0f);
  EXPECT_EQ(lr.Lr(10), 0.5f);
  EXPECT_EQ(lr.Lr(25), 0.25f);
}

TEST(LrScheduleTest, CosineDecaysToMin) {
  train::CosineLr lr(1.0f, 100, 0.1f);
  EXPECT_NEAR(lr.Lr(0), 1.0f, 1e-5f);
  EXPECT_NEAR(lr.Lr(50), 0.55f, 1e-2f);  // halfway
  EXPECT_NEAR(lr.Lr(100), 0.1f, 1e-5f);
  // Monotone decreasing (no warmup).
  for (int s = 1; s <= 100; ++s) EXPECT_LE(lr.Lr(s), lr.Lr(s - 1) + 1e-7f);
}

TEST(LrScheduleTest, CosineWithWarmup) {
  train::CosineLr lr(1.0f, 100, 0.0f, 10);
  EXPECT_LT(lr.Lr(0), 0.2f);
  EXPECT_NEAR(lr.Lr(10), 1.0f, 1e-5f);
  EXPECT_LT(lr.Lr(99), 0.01f);
}

// ---- Early stopping ------------------------------------------------------------------

TEST(EarlyStoppingTest, StopsAfterPatience) {
  train::EarlyStopping es(2);
  EXPECT_FALSE(es.ShouldStop(0.5));   // best
  EXPECT_FALSE(es.ShouldStop(0.4));   // bad 1
  EXPECT_TRUE(es.ShouldStop(0.45));   // bad 2 -> stop
  EXPECT_EQ(es.best_epoch(), 0);
  EXPECT_DOUBLE_EQ(es.best_metric(), 0.5);
}

TEST(EarlyStoppingTest, ImprovementResetsPatience) {
  train::EarlyStopping es(2);
  EXPECT_FALSE(es.ShouldStop(0.5));
  EXPECT_FALSE(es.ShouldStop(0.4));
  EXPECT_FALSE(es.ShouldStop(0.6));  // new best
  EXPECT_FALSE(es.ShouldStop(0.5));
  EXPECT_TRUE(es.ShouldStop(0.5));
  EXPECT_EQ(es.best_epoch(), 2);
}

TEST(EarlyStoppingTest, MinDeltaIgnoresTinyGains) {
  train::EarlyStopping es(1, 0.1);
  EXPECT_FALSE(es.ShouldStop(0.5));
  EXPECT_TRUE(es.ShouldStop(0.55));  // +0.05 < min_delta -> bad epoch
}

TEST(ValidationSplitTest, PartitionsCompletely) {
  std::vector<data::TrainWindow> windows(20);
  for (size_t i = 0; i < windows.size(); ++i) windows[i].user = int64_t(i);
  Rng rng(6);
  auto split = train::SplitValidation(windows, 0.25, rng);
  EXPECT_EQ(split.train.size() + split.validation.size(), windows.size());
  EXPECT_EQ(split.validation.size(), 5u);
  // Every original window appears exactly once.
  std::vector<int64_t> seen;
  for (const auto& w : split.train) seen.push_back(w.user);
  for (const auto& w : split.validation) seen.push_back(w.user);
  std::sort(seen.begin(), seen.end());
  for (size_t i = 0; i < seen.size(); ++i)
    EXPECT_EQ(seen[i], static_cast<int64_t>(i));
}

TEST(ValidationSplitTest, TinyInputKeepsBothSidesNonEmpty) {
  std::vector<data::TrainWindow> windows(2);
  Rng rng(7);
  auto split = train::SplitValidation(windows, 0.01, rng);
  EXPECT_EQ(split.train.size(), 1u);
  EXPECT_EQ(split.validation.size(), 1u);
}

// ---- Metric extensions --------------------------------------------------------------

TEST(MetricExtensionsTest, MrrValues) {
  EXPECT_DOUBLE_EQ(eval::ReciprocalRank(0), 1.0);
  EXPECT_DOUBLE_EQ(eval::ReciprocalRank(3), 0.25);
  eval::MetricAccumulator acc;
  acc.Add(0);
  acc.Add(1);
  EXPECT_DOUBLE_EQ(acc.MeanReciprocalRank(), 0.75);
}

TEST(MetricExtensionsTest, MergeCombines) {
  eval::MetricAccumulator a({5, 10}), b({5, 10});
  a.Add(0);
  b.Add(20);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2);
  EXPECT_DOUBLE_EQ(a.HitRate(5), 0.5);
  EXPECT_EQ(a.ranks().size(), 2u);
}

TEST(MetricExtensionsTest, BootstrapCiBracketsPointEstimate) {
  Rng rng(8);
  std::vector<int64_t> ranks;
  for (int i = 0; i < 200; ++i) ranks.push_back(i % 2 == 0 ? 1 : 50);
  auto ci = eval::BootstrapHitRateCi(ranks, 5, 0.95, rng);
  EXPECT_LT(ci.lo, 0.5);
  EXPECT_GT(ci.hi, 0.5);
  EXPECT_GT(ci.lo, 0.35);
  EXPECT_LT(ci.hi, 0.65);
}

TEST(MetricExtensionsTest, PairedBootstrapDetectsDominance) {
  Rng rng(9);
  std::vector<int64_t> strong, weak;
  for (int i = 0; i < 150; ++i) {
    strong.push_back(i % 3 == 0 ? 1 : 3);   // always hits @5
    weak.push_back(i % 3 == 0 ? 8 : 30);    // rarely hits @5
  }
  EXPECT_LT(eval::PairedBootstrapPValue(strong, weak, 5, rng), 0.01);
  EXPECT_GT(eval::PairedBootstrapPValue(weak, strong, 5, rng), 0.99);
}

TEST(MetricExtensionsTest, PairedBootstrapNoDifference) {
  Rng rng(10);
  std::vector<int64_t> a, b;
  for (int i = 0; i < 100; ++i) {
    a.push_back(i % 2 == 0 ? 1 : 20);
    b.push_back(i % 2 == 1 ? 1 : 20);  // same marginal, different instances
  }
  const double p = eval::PairedBootstrapPValue(a, b, 5, rng);
  EXPECT_GT(p, 0.1);
  EXPECT_LT(p, 0.9);
}

}  // namespace
}  // namespace stisan
