#include <gtest/gtest.h>

#include <cmath>

#include "nn/attention.h"
#include "nn/conv.h"
#include "nn/flops.h"
#include "nn/layers.h"
#include "nn/recurrent.h"
#include "tensor/gradcheck.h"
#include "tensor/optimizer.h"

namespace stisan::nn {
namespace {

TEST(ModuleTest, CollectsParametersRecursively) {
  Rng rng(1);
  PointwiseFeedForward ffn(4, 8, 0.0f, rng);
  // fc1: W+b, fc2: W+b -> 4 parameters.
  EXPECT_EQ(ffn.Parameters().size(), 4u);
}

TEST(ModuleTest, TrainingFlagPropagates) {
  Rng rng(1);
  PointwiseFeedForward ffn(4, 8, 0.5f, rng);
  EXPECT_TRUE(ffn.training());
  ffn.SetTraining(false);
  EXPECT_FALSE(ffn.training());
}

TEST(LinearTest, ShapeAndBias) {
  Rng rng(2);
  Linear lin(3, 5, rng);
  Tensor x = Tensor::Ones({2, 3});
  Tensor y = lin.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 5}));
  EXPECT_EQ(lin.Parameters().size(), 2u);
  Linear no_bias(3, 5, rng, /*bias=*/false);
  EXPECT_EQ(no_bias.Parameters().size(), 1u);
}

TEST(LinearTest, BatchedInput) {
  Rng rng(3);
  Linear lin(3, 4, rng);
  Tensor x = Tensor::Ones({2, 5, 3});
  EXPECT_EQ(lin.Forward(x).shape(), (Shape{2, 5, 4}));
}

TEST(EmbeddingTest, PaddingRowIsZeroInitialised) {
  Rng rng(4);
  Embedding emb(10, 4, rng, /*padding_idx=*/0);
  Tensor out = emb.Forward({0, 3});
  for (int c = 0; c < 4; ++c) EXPECT_EQ(out.at({0, c}), 0.0f);
  // Non-padding rows are nonzero with overwhelming probability.
  float norm = 0;
  for (int c = 0; c < 4; ++c) norm += std::fabs(out.at({1, c}));
  EXPECT_GT(norm, 0.0f);
}

TEST(LayerNormLayerTest, NormalisesAndLearns) {
  Rng rng(5);
  LayerNorm ln(4);
  EXPECT_EQ(ln.Parameters().size(), 2u);
  Tensor x = Tensor::FromVector({1, 4}, {1, 2, 3, 4});
  Tensor y = ln.Forward(x);
  float sum = 0;
  for (int c = 0; c < 4; ++c) sum += y.at({0, c});
  EXPECT_NEAR(sum, 0.0f, 1e-5f);
}

TEST(SinusoidalTest, ValuesMatchFormula) {
  Tensor pe = SinusoidalEncoding({1.0, 2.5}, 4);
  EXPECT_EQ(pe.shape(), (Shape{2, 4}));
  EXPECT_NEAR(pe.at({0, 0}), std::sin(1.0), 1e-6);
  EXPECT_NEAR(pe.at({0, 1}), std::cos(1.0), 1e-6);
  const double div = std::exp(-std::log(10000.0) * 2.0 / 4.0);
  EXPECT_NEAR(pe.at({1, 2}), std::sin(2.5 * div), 1e-6);
  EXPECT_NEAR(pe.at({1, 3}), std::cos(2.5 * div), 1e-6);
}

TEST(SinusoidalTest, VanillaStartsAtOne) {
  Tensor pe = VanillaPositionalEncoding(3, 4);
  EXPECT_NEAR(pe.at({0, 0}), std::sin(1.0), 1e-6);
  EXPECT_NEAR(pe.at({2, 0}), std::sin(3.0), 1e-6);
}

TEST(SinusoidalTest, DistinctPositionsDistinctRows) {
  Tensor pe = VanillaPositionalEncoding(50, 16);
  // Row 10 and row 40 must differ substantially.
  float diff = 0;
  for (int c = 0; c < 16; ++c)
    diff += std::fabs(pe.at({10, c}) - pe.at({40, c}));
  EXPECT_GT(diff, 0.5f);
}

TEST(LearnedPositionalTest, SliceAndTrainable) {
  Rng rng(6);
  LearnedPositionalEmbedding pos(16, 4, rng);
  Tensor p = pos.Forward(5);
  EXPECT_EQ(p.shape(), (Shape{5, 4}));
  EXPECT_EQ(pos.Parameters().size(), 1u);
}

// ---- Attention ---------------------------------------------------------------

TEST(AttentionTest, CausalMaskValues) {
  Tensor m = BuildCausalMask(3);
  EXPECT_EQ(m.at({0, 0}), 0.0f);
  EXPECT_EQ(m.at({0, 1}), -1e9f);
  EXPECT_EQ(m.at({2, 1}), 0.0f);
}

TEST(AttentionTest, OutputShape) {
  Rng rng(7);
  CausalSelfAttention att(8, 0.0f, rng);
  Tensor x = Tensor::Randn({5, 8}, rng);
  EXPECT_EQ(att.Forward(x, Tensor(), rng).shape(), (Shape{5, 8}));
}

TEST(AttentionTest, MapRowsSumToOneAndCausal) {
  Rng rng(8);
  CausalSelfAttention att(8, 0.0f, rng);
  Tensor x = Tensor::Randn({4, 8}, rng);
  Tensor map = att.AttentionMap(x, Tensor());
  for (int i = 0; i < 4; ++i) {
    float sum = 0;
    for (int j = 0; j < 4; ++j) {
      sum += map.at({i, j});
      if (j > i) {
        EXPECT_NEAR(map.at({i, j}), 0.0f, 1e-9f);
      }
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(AttentionTest, BiasSteersAttention) {
  Rng rng(9);
  CausalSelfAttention att(8, 0.0f, rng);
  Tensor x = Tensor::Randn({4, 8}, rng);
  // A huge bias toward column 0 should dominate row 3.
  Tensor bias = Tensor::Zeros({4, 4});
  bias.set({3, 0}, 50.0f);
  Tensor map = att.AttentionMap(x, bias);
  EXPECT_GT(map.at({3, 0}), 0.99f);
}

TEST(AttentionTest, NonCausalAttendsForward) {
  Rng rng(10);
  CausalSelfAttention att(8, 0.0f, rng, /*causal=*/false);
  Tensor x = Tensor::Randn({4, 8}, rng);
  Tensor map = att.AttentionMap(x, Tensor());
  // Some strictly-upper entry must be nonzero.
  float upper = 0;
  for (int i = 0; i < 4; ++i)
    for (int j = i + 1; j < 4; ++j) upper += map.at({i, j});
  EXPECT_GT(upper, 1e-4f);
}

TEST(AttentionTest, GradientsFlowThroughAttention) {
  Rng rng(11);
  CausalSelfAttention att(4, 0.0f, rng);
  Tensor x = Tensor::Randn({3, 4}, rng, 1.0f, /*requires_grad=*/true);
  Tensor out = att.Forward(x, Tensor(), rng);
  ops::Sum(ops::Square(out)).Backward();
  EXPECT_TRUE(x.has_grad());
  float gnorm = 0;
  for (int64_t i = 0; i < x.numel(); ++i)
    gnorm += std::fabs(x.grad_data()[i]);
  EXPECT_GT(gnorm, 0.0f);
}

TEST(AttentionTest, MultiHeadShapesAndCausality) {
  Rng rng(31);
  CausalSelfAttention att(12, 0.0f, rng, /*causal=*/true,
                          /*identity_init_values=*/false, /*num_heads=*/3);
  Tensor x = Tensor::Randn({5, 12}, rng);
  Tensor out = att.Forward(x, Tensor(), rng);
  EXPECT_EQ(out.shape(), (Shape{5, 12}));
  // Causality: changing a future row must not affect an earlier output row.
  Tensor x2 = x.Detach();
  x2.set({4, 0}, x2.at({4, 0}) + 5.0f);
  Tensor out2 = att.Forward(x2, Tensor(), rng);
  for (int c = 0; c < 12; ++c) {
    EXPECT_NEAR(out.at({0, c}), out2.at({0, c}), 1e-6f);
  }
}

TEST(AttentionTest, MultiHeadGradientsFlow) {
  Rng rng(32);
  CausalSelfAttention att(8, 0.0f, rng, true, false, /*num_heads=*/2);
  Tensor x = Tensor::Randn({4, 8}, rng, 1.0f, true);
  Tensor out = att.Forward(x, Tensor(), rng);
  ops::Sum(ops::Square(out)).Backward();
  float gnorm = 0;
  for (int64_t i = 0; i < x.numel(); ++i) gnorm += std::fabs(x.grad_data()[i]);
  EXPECT_GT(gnorm, 0.0f);
}

TEST(AttentionTest, SingleHeadMatchesUnfactoredPath) {
  // num_heads = 1 must reproduce the original single-head computation.
  Rng rng_a(33), rng_b(33);
  CausalSelfAttention a(8, 0.0f, rng_a, true, false, 1);
  CausalSelfAttention b(8, 0.0f, rng_b, true, false, 1);
  Rng data_rng(34);
  Tensor x = Tensor::Randn({4, 8}, data_rng);
  Tensor oa = a.Forward(x, Tensor(), rng_a);
  Tensor ob = b.Forward(x, Tensor(), rng_b);
  for (int64_t i = 0; i < oa.numel(); ++i) {
    EXPECT_EQ(oa.data()[i], ob.data()[i]);  // identical init -> identical out
  }
}

TEST(CrossAttentionTest, ShapeAndMask) {
  Rng rng(12);
  CrossAttention att(8);
  Tensor q = Tensor::Randn({3, 8}, rng);
  Tensor kv = Tensor::Randn({5, 8}, rng);
  Tensor out = att.Forward(q, kv, Tensor());
  EXPECT_EQ(out.shape(), (Shape{3, 8}));
  // Mask away all but key 2: output rows must equal kv row 2.
  Tensor mask = Tensor::Full({3, 5}, -1e9f);
  for (int i = 0; i < 3; ++i) mask.set({i, 2}, 0.0f);
  Tensor masked = att.Forward(q, kv, mask);
  for (int i = 0; i < 3; ++i)
    for (int c = 0; c < 8; ++c)
      EXPECT_NEAR(masked.at({i, c}), kv.at({2, c}), 1e-5f);
}

// ---- Recurrent -----------------------------------------------------------------

TEST(GruCellTest, ShapesAndStateChange) {
  Rng rng(13);
  GruCell cell(4, 6, rng);
  Tensor x = Tensor::Randn({1, 4}, rng);
  Tensor h = Tensor::Zeros({1, 6});
  Tensor h2 = cell.Forward(x, h);
  EXPECT_EQ(h2.shape(), (Shape{1, 6}));
  float change = 0;
  for (int c = 0; c < 6; ++c) change += std::fabs(h2.at({0, c}));
  EXPECT_GT(change, 0.0f);
}

TEST(GruCellTest, CanLearnToRememberInput) {
  // Train a GRU to output the first input after 3 steps (memory task).
  Rng rng(14);
  GruCell cell(1, 4, rng);
  Linear readout(4, 1, rng);
  std::vector<Tensor> params = cell.Parameters();
  auto rp = readout.Parameters();
  params.insert(params.end(), rp.begin(), rp.end());
  Adam opt(params, {.lr = 0.02f});
  float final_loss = 1e9f;
  for (int step = 0; step < 300; ++step) {
    opt.ZeroGrad();
    const float target = rng.Bernoulli(0.5) ? 1.0f : -1.0f;
    Tensor h = Tensor::Zeros({1, 4});
    for (int t = 0; t < 3; ++t) {
      Tensor x = Tensor::FromVector({1, 1}, {t == 0 ? target : 0.0f});
      h = cell.Forward(x, h);
    }
    Tensor loss = ops::Sum(
        ops::Square(readout.Forward(h) -
                    Tensor::FromVector({1, 1}, {target})));
    loss.Backward();
    opt.Step();
    final_loss = loss.data()[0];
  }
  EXPECT_LT(final_loss, 0.1f);
}

TEST(LstmCellTest, Shapes) {
  Rng rng(15);
  LstmCell cell(4, 6, rng);
  LstmCell::State s{Tensor::Zeros({1, 6}), Tensor::Zeros({1, 6})};
  Tensor x = Tensor::Randn({1, 4}, rng);
  auto s2 = cell.Forward(x, s);
  EXPECT_EQ(s2.h.shape(), (Shape{1, 6}));
  EXPECT_EQ(s2.c.shape(), (Shape{1, 6}));
}

TEST(StgnCellTest, IntervalsAffectState) {
  Rng rng(16);
  StgnCell cell(4, 6, rng);
  StgnCell::State s{Tensor::Zeros({1, 6}), Tensor::Zeros({1, 6}),
                    Tensor::Zeros({1, 6})};
  Tensor x = Tensor::Randn({1, 4}, rng);
  auto near = cell.Forward(x, s, 0.1f, 0.1f);
  auto far = cell.Forward(x, s, 5.0f, 8.0f);
  float diff = 0;
  for (int c = 0; c < 6; ++c)
    diff += std::fabs(near.h.at({0, c}) - far.h.at({0, c}));
  EXPECT_GT(diff, 1e-4f);
}

// ---- Caser conv -----------------------------------------------------------------

TEST(CaserConvTest, OutputShape) {
  Rng rng(17);
  CaserConv conv(5, 8, {2, 3}, 4, 2, 8, 0.0f, rng);
  Tensor x = Tensor::Randn({5, 8}, rng);
  EXPECT_EQ(conv.Forward(x, rng).shape(), (Shape{1, 8}));
}

TEST(CaserConvTest, GradientsReachFilters) {
  Rng rng(18);
  CaserConv conv(4, 4, {2}, 3, 1, 4, 0.0f, rng);
  Tensor x = Tensor::Randn({4, 4}, rng, 1.0f, true);
  Tensor out = conv.Forward(x, rng);
  ops::Sum(ops::Square(out)).Backward();
  for (auto& p : conv.Parameters()) {
    EXPECT_TRUE(p.has_grad());
  }
}

// ---- FLOPs ------------------------------------------------------------------------

TEST(FlopsTest, LinearFormula) {
  EXPECT_EQ(LinearFlops(2, 3, 4), 48);
}

TEST(FlopsTest, IaabOverheadIsNegligible) {
  // The paper's claim (Table VI): IAAB adds a vanishing fraction.
  const int64_t n = 100, d = 256, dh = 512;
  const int64_t sa = SaBlockFlops(n, d, dh);
  const int64_t iaab = IaabBlockFlops(n, d, dh);
  EXPECT_GT(iaab, sa);
  EXPECT_LT(double(iaab - sa) / double(sa), 0.01);  // < 1% overhead
}

TEST(FlopsTest, MonotoneInSequenceLength) {
  EXPECT_LT(SaBlockFlops(32, 64, 128), SaBlockFlops(64, 64, 128));
  EXPECT_LT(SelfAttentionFlops(32, 64), SelfAttentionFlops(64, 64));
}

}  // namespace
}  // namespace stisan::nn
