// Tests for the paper's core components: TAPE (eq. 2-3), the relation
// matrix (eq. 4), IAAB (eq. 5-9), TAAD (eq. 10) and the geography encoder.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/geo_encoder.h"
#include "core/iaab.h"
#include "core/relation.h"
#include "core/stisan.h"
#include "core/taad.h"
#include "core/tape.h"
#include "data/synthetic.h"
#include "obs/metrics.h"
#include "tensor/gradcheck.h"
#include "tensor/ops.h"

namespace stisan::core {
namespace {

// ---- TAPE ------------------------------------------------------------------

TEST(TapeTest, PaperRunningExample) {
  // Fig. 1 / §III-C: intervals 0.5h, 3h, 3h, 4h (mean 2.625h)... verify the
  // recurrence directly with easy numbers: dt = {1, 3} hours, mean = 2.
  std::vector<double> t = {0, 3600, 4 * 3600.0};
  auto pos = TimeAwarePositions(t);
  EXPECT_DOUBLE_EQ(pos[0], 1.0);
  EXPECT_DOUBLE_EQ(pos[1], 1.0 + 0.5 + 1.0);   // dt/mean = 1/2
  EXPECT_DOUBLE_EQ(pos[2], 2.5 + 1.5 + 1.0);   // dt/mean = 3/2
}

TEST(TapeTest, UniformIntervalsReduceToIntegerSpacing) {
  std::vector<double> t = {0, 100, 200, 300};
  auto pos = TimeAwarePositions(t);
  for (size_t k = 1; k < pos.size(); ++k) {
    EXPECT_NEAR(pos[k] - pos[k - 1], 2.0, 1e-12);  // dt/mean + 1 = 2
  }
}

TEST(TapeTest, ConstantTimestampsDegradeToVanilla) {
  std::vector<double> t = {5, 5, 5, 5};
  auto pos = TimeAwarePositions(t);
  for (size_t k = 0; k < pos.size(); ++k) {
    EXPECT_DOUBLE_EQ(pos[k], double(k + 1));
  }
}

TEST(TapeTest, PositionsStrictlyIncreasing) {
  std::vector<double> t = {0, 10, 10, 500, 501, 10000};
  auto pos = TimeAwarePositions(t);
  for (size_t k = 1; k < pos.size(); ++k) {
    EXPECT_GT(pos[k], pos[k - 1]);  // the "+1" guarantees monotonicity
  }
}

TEST(TapeTest, NonMonotoneTimestampsClampInsteadOfAborting) {
  // Real check-in logs contain clock skew and out-of-order records; pre-fix
  // a single negative gap hard-aborted the whole run via CHECK_GE(dt, 0).
  obs::Counter& clamped = obs::GetCounter("tape/negative_gaps_clamped");
  const uint64_t before = clamped.Get();
  std::vector<double> t = {0, 100, 50, 150};  // t[2] < t[1]
  auto pos = TimeAwarePositions(t);
  EXPECT_EQ(clamped.Get() - before, 1u);  // counted exactly once
  ASSERT_EQ(pos.size(), 4u);
  for (size_t k = 1; k < pos.size(); ++k) {
    EXPECT_GT(pos[k], pos[k - 1]);  // monotone positions survive the clamp
  }
  // Clamping the gap to zero in both the mean and the recurrence makes the
  // result bit-identical to the sequence rebuilt from the clamped gaps
  // {100, 0, 100}.
  auto expect = TimeAwarePositions({0, 100, 100, 200});
  for (size_t k = 0; k < pos.size(); ++k) {
    EXPECT_DOUBLE_EQ(pos[k], expect[k]);
  }
}

TEST(TapeTest, PaddingPrefixAdvancesByOne) {
  std::vector<double> t = {100, 100, 100, 200, 300};  // first_real = 2
  auto pos = TimeAwarePositions(t, /*first_real=*/2);
  EXPECT_DOUBLE_EQ(pos[1] - pos[0], 1.0);
  EXPECT_DOUBLE_EQ(pos[2] - pos[1], 1.0);
  EXPECT_GT(pos[4], pos[3]);
}

TEST(TapeTest, DistinguishesSameSequenceDifferentRhythm) {
  // The paper's motivating claim: same POIs, different intervals => different
  // positional encodings (and thus distinguishable representations).
  Tensor x = Tensor::Zeros({3, 8});
  Tensor a = ApplyTape(x, {0, 1000, 8000});
  Tensor b = ApplyTape(x, {0, 7000, 8000});
  float diff = 0;
  for (int64_t i = 0; i < a.numel(); ++i)
    diff += std::fabs(a.data()[i] - b.data()[i]);
  EXPECT_GT(diff, 0.1f);
}

TEST(TapeTest, AddsNoParameters) {
  // TAPE is a pure function of timestamps: the claim "no extra parameters".
  Tensor x = Tensor::Zeros({4, 8}, /*requires_grad=*/true);
  Tensor out = ApplyTape(x, {0, 10, 20, 40});
  ops::Sum(out).Backward();
  // Gradient wrt x is exactly 1 (additive encoding only).
  for (int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_EQ(x.grad_data()[i], 1.0f);
  }
}

TEST(TapeTest, VanillaPeMatchesIntegerTape) {
  Tensor x = Tensor::Zeros({4, 8});
  Tensor vanilla = ApplyVanillaPe(x);
  Tensor tape = ApplyTape(x, {0, 100, 200, 300});  // uniform -> pos 1,3,5,7
  // Not equal (TAPE stretches by +1 each step) — but both are sinusoidal;
  // check the vanilla one equals SinusoidalEncoding(1..4).
  Tensor expect = nn::SinusoidalEncoding({1, 2, 3, 4}, 8);
  for (int64_t i = 0; i < vanilla.numel(); ++i) {
    EXPECT_NEAR(vanilla.data()[i], expect.data()[i], 1e-6f);
  }
  (void)tape;
}

// ---- Relation matrix ----------------------------------------------------------

class RelationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pois_ = {1, 2, 3};
    // 1 day apart each; 0 km, ~11 km apart.
    t_ = {0.0, 86400.0, 2 * 86400.0};
    coords_ = {{43.0, 125.0}, {43.0, 125.0}, {43.1, 125.0}};
  }
  std::vector<int64_t> pois_;
  std::vector<double> t_;
  std::vector<geo::GeoPoint> coords_;
};

TEST_F(RelationTest, LowerTriangular) {
  Tensor r = BuildRelationMatrix(pois_, t_, coords_, 0, {});
  EXPECT_EQ(r.shape(), (Shape{3, 3}));
  EXPECT_EQ(r.at({0, 1}), 0.0f);
  EXPECT_EQ(r.at({0, 2}), 0.0f);
  EXPECT_EQ(r.at({1, 2}), 0.0f);
}

TEST_F(RelationTest, CloserPairsGetHigherRelation) {
  Tensor r = BuildRelationMatrix(pois_, t_, coords_, 0, {});
  // (1,0): 1 day + 0 km. (2,0): 2 days + ~11 km. So r_10 > r_20.
  EXPECT_GT(r.at({1, 0}), r.at({2, 0}));
  // Diagonal has interval zero -> max relation.
  EXPECT_GE(r.at({0, 0}), r.at({1, 0}));
  EXPECT_EQ(r.at({0, 0}), r.at({1, 1}));
}

TEST_F(RelationTest, ClippingCapsIntervals) {
  RelationOptions tight{.kt_days = 0.5, .kd_km = 1.0};
  Tensor r = BuildRelationMatrix(pois_, t_, coords_, 0, tight);
  // Both (1,0) and (2,0) are clipped to (0.5 + clip_d): (1,0) has 0 km,
  // (2,0) has 1 km (clipped from 11). Max r_hat = 1.5.
  EXPECT_NEAR(r.at({1, 0}), 1.0f, 1e-5f);   // 1.5 - 0.5
  EXPECT_NEAR(r.at({2, 0}), 0.0f, 1e-5f);   // 1.5 - 1.5
}

TEST_F(RelationTest, ZeroThresholdsGiveAllZeros) {
  // Fig. 9's degenerate case: k_t = k_d = 0 disables IAAB (uniform rows
  // after softmax).
  RelationOptions zero{.kt_days = 0.0, .kd_km = 0.0};
  Tensor r = BuildRelationMatrix(pois_, t_, coords_, 0, zero);
  for (int64_t i = 0; i < r.numel(); ++i) EXPECT_EQ(r.data()[i], 0.0f);
  Tensor scaled = SoftmaxScaleRelation(r, 0);
  // Row 2: three equal entries -> 1/3 each.
  EXPECT_NEAR(scaled.at({2, 0}), 1.0f / 3.0f, 1e-5f);
}

TEST_F(RelationTest, SoftmaxRowsSumToOne) {
  Tensor r = BuildRelationMatrix(pois_, t_, coords_, 0, {});
  Tensor s = SoftmaxScaleRelation(r, 0);
  for (int64_t i = 0; i < 3; ++i) {
    float sum = 0;
    for (int64_t j = 0; j < 3; ++j) {
      sum += s.at({i, j});
      if (j > i) {
        EXPECT_EQ(s.at({i, j}), 0.0f);
      }
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST_F(RelationTest, PaddingPairsExcluded) {
  Tensor r = BuildRelationMatrix({0, 1, 2}, {0, 0, 86400},
                                 {{0, 0}, {43, 125}, {43, 125}}, 1, {});
  EXPECT_EQ(r.at({1, 0}), 0.0f);
  EXPECT_EQ(r.at({2, 0}), 0.0f);
  Tensor s = SoftmaxScaleRelation(r, 1);
  // Padding row 0 attends itself only.
  EXPECT_NEAR(s.at({0, 0}), 1.0f, 1e-6f);
  EXPECT_EQ(s.at({1, 0}), 0.0f);  // padding key gets 0 weight
}

TEST(PaddedMaskTest, Structure) {
  Tensor m = BuildPaddedCausalMask(4, 2);
  // Row 3 can see columns 2 and 3 only.
  EXPECT_EQ(m.at({3, 0}), -1e9f);
  EXPECT_EQ(m.at({3, 1}), -1e9f);
  EXPECT_EQ(m.at({3, 2}), 0.0f);
  EXPECT_EQ(m.at({3, 3}), 0.0f);
  // Causal: row 2 cannot see column 3.
  EXPECT_EQ(m.at({2, 3}), -1e9f);
  // Padding row 0 keeps self visible (avoids NaN softmax rows).
  EXPECT_EQ(m.at({0, 0}), 0.0f);
  EXPECT_EQ(m.at({1, 0}), -1e9f);
  EXPECT_EQ(m.at({1, 1}), 0.0f);
}

// ---- IAAB ------------------------------------------------------------------------

class IaabTest : public ::testing::Test {
 protected:
  IaabTest() : rng_(42) {}
  Rng rng_;
};

TEST_F(IaabTest, ForwardShapesAllModes) {
  for (auto mode : {AttentionMode::kIntervalAware, AttentionMode::kVanilla,
                    AttentionMode::kRelationOnly}) {
    IaabOptions opts{.dim = 8, .ffn_hidden = 16, .dropout = 0.0f,
                     .mode = mode};
    IntervalAwareAttentionBlock block(opts, rng_);
    Tensor x = Tensor::Randn({4, 8}, rng_);
    Tensor rel = SoftmaxScaleRelation(Tensor::Zeros({4, 4}), 0);
    Tensor mask = BuildPaddedCausalMask(4, 0);
    EXPECT_EQ(block.Forward(x, rel, mask, rng_).shape(), (Shape{4, 8}));
  }
}

TEST_F(IaabTest, RelationBiasChangesAttention) {
  IaabOptions opts{.dim = 8, .ffn_hidden = 16, .dropout = 0.0f,
                   .mode = AttentionMode::kIntervalAware};
  IntervalAwareAttentionBlock block(opts, rng_);
  Tensor x = Tensor::Randn({4, 8}, rng_);
  Tensor mask = BuildPaddedCausalMask(4, 0);
  Tensor uniform = SoftmaxScaleRelation(Tensor::Zeros({4, 4}), 0);
  // A relation strongly favouring column 0.
  Tensor strong_raw = Tensor::Zeros({4, 4});
  for (int64_t i = 0; i < 4; ++i) strong_raw.set({i, 0}, 30.0f);
  Tensor strong = SoftmaxScaleRelation(strong_raw, 0);
  Tensor map_u = block.AttentionMap(x, uniform, mask);
  Tensor map_s = block.AttentionMap(x, strong, mask);
  EXPECT_GT(map_s.at({3, 0}), map_u.at({3, 0}));
}

TEST_F(IaabTest, RelationOnlyIgnoresQueries) {
  // In kRelationOnly mode the attention map IS the scaled relation.
  IaabOptions opts{.dim = 8, .ffn_hidden = 16, .dropout = 0.0f,
                   .mode = AttentionMode::kRelationOnly};
  IntervalAwareAttentionBlock block(opts, rng_);
  Tensor x = Tensor::Randn({4, 8}, rng_);
  Tensor rel = SoftmaxScaleRelation(Tensor::Zeros({4, 4}), 0);
  Tensor mask = BuildPaddedCausalMask(4, 0);
  Tensor map = block.AttentionMap(x, rel, mask);
  for (int64_t i = 0; i < map.numel(); ++i) {
    EXPECT_EQ(map.data()[i], rel.data()[i]);
  }
}

TEST_F(IaabTest, EncoderStacksAndNormalises) {
  IaabOptions opts{.dim = 8, .ffn_hidden = 16, .dropout = 0.0f,
                   .mode = AttentionMode::kIntervalAware};
  IaabEncoder encoder(opts, 3, rng_);
  EXPECT_EQ(encoder.num_blocks(), 3);
  Tensor x = Tensor::Randn({4, 8}, rng_);
  Tensor rel = SoftmaxScaleRelation(Tensor::Zeros({4, 4}), 0);
  Tensor mask = BuildPaddedCausalMask(4, 0);
  Tensor out = encoder.Forward(x, rel, mask, rng_);
  EXPECT_EQ(out.shape(), (Shape{4, 8}));
  auto maps = encoder.AttentionMaps(x, rel, mask, rng_);
  EXPECT_EQ(maps.size(), 3u);
}

TEST_F(IaabTest, GradientsReachAllParameters) {
  IaabOptions opts{.dim = 8, .ffn_hidden = 16, .dropout = 0.0f,
                   .mode = AttentionMode::kIntervalAware};
  IaabEncoder encoder(opts, 2, rng_);
  Tensor x = Tensor::Randn({4, 8}, rng_);
  Tensor rel = SoftmaxScaleRelation(Tensor::Zeros({4, 4}), 0);
  Tensor mask = BuildPaddedCausalMask(4, 0);
  Tensor out = encoder.Forward(x, rel, mask, rng_);
  ops::Sum(ops::Square(out)).Backward();
  int64_t with_grad = 0;
  for (auto& p : encoder.Parameters()) {
    if (p.has_grad()) {
      float norm = 0;
      for (int64_t i = 0; i < p.numel(); ++i)
        norm += std::fabs(p.grad_data()[i]);
      if (norm > 0) ++with_grad;
    }
  }
  // With ReZero gates at 0 the FFN branches are inert at initialisation,
  // so some parameters legitimately see zero gradient on the first pass;
  // still, a healthy share (attention path, norms, gates) must train.
  EXPECT_GE(with_grad,
            static_cast<int64_t>(encoder.Parameters().size()) / 3);
}

// ---- TAAD ----------------------------------------------------------------------

TEST(TaadTest, OutputShapeAndMasking) {
  Rng rng(3);
  Tensor f = Tensor::Randn({5, 8}, rng);
  Tensor c = Tensor::Randn({6, 8}, rng);
  std::vector<int64_t> steps = {0, 0, 2, 2, 4, 4};
  Tensor s = TaadDecode(c, f, steps, 0);
  EXPECT_EQ(s.shape(), (Shape{6, 8}));
}

TEST(TaadTest, StepZeroSeesOnlyFirstState) {
  Rng rng(4);
  Tensor f = Tensor::Randn({4, 8}, rng);
  Tensor c = Tensor::Randn({1, 8}, rng);
  Tensor s = TaadDecode(c, f, {0}, 0);
  // With only one visible key the output equals that key's state.
  for (int64_t j = 0; j < 8; ++j) {
    EXPECT_NEAR(s.at({0, j}), f.at({0, j}), 1e-5f);
  }
}

TEST(TaadTest, DifferentCandidatesDifferentPreferences) {
  Rng rng(5);
  Tensor f = Tensor::Randn({4, 8}, rng);
  Tensor c = Tensor::Randn({2, 8}, rng);
  Tensor s = TaadDecode(c, f, {3, 3}, 0);
  float diff = 0;
  for (int64_t j = 0; j < 8; ++j)
    diff += std::fabs(s.at({0, j}) - s.at({1, j}));
  EXPECT_GT(diff, 1e-4f);  // target-aware: representation depends on target
}

TEST(TaadTest, MatchScoresAreRowDots) {
  Tensor s = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor c = Tensor::FromVector({2, 3}, {1, 0, 1, 0, 1, 0});
  Tensor y = MatchScores(s, c);
  EXPECT_EQ(y.shape(), (Shape{2}));
  EXPECT_EQ(y.ToVector(), (std::vector<float>{4, 5}));
}

// ---- Geography encoder ---------------------------------------------------------

class GeoEncoderTest : public ::testing::Test {
 protected:
  GeoEncoderTest()
      : ds_(data::GenerateSynthetic(data::GowallaLikeConfig(0.05))),
        rng_(9) {}
  data::Dataset ds_;
  Rng rng_;
};

TEST_F(GeoEncoderTest, ShapesAndPadding) {
  GeoEncoder enc(ds_, {.dim = 8, .quadkey_level = 17, .ngram = 6}, rng_);
  Tensor out = enc.Forward({data::kPaddingPoi, 1, 2});
  EXPECT_EQ(out.shape(), (Shape{3, 8}));
  for (int64_t j = 0; j < 8; ++j) EXPECT_EQ(out.at({0, j}), 0.0f);
}

TEST_F(GeoEncoderTest, NearbyPoisGetSimilarEncodings) {
  GeoEncoder enc(ds_, {.dim = 8, .quadkey_level = 17, .ngram = 6}, rng_);
  // Find the two nearest and two farthest POIs from POI 1.
  int64_t nearest = -1, farthest = -1;
  double dn = 1e18, df = -1;
  for (int64_t p = 2; p <= ds_.num_pois(); ++p) {
    const double d =
        geo::HaversineKm(ds_.poi_location(1), ds_.poi_location(p));
    if (d < dn) {
      dn = d;
      nearest = p;
    }
    if (d > df) {
      df = d;
      farthest = p;
    }
  }
  Tensor out = enc.Forward({1, nearest, farthest});
  float d_near = 0, d_far = 0;
  for (int64_t j = 0; j < 8; ++j) {
    d_near += std::fabs(out.at({0, j}) - out.at({1, j}));
    d_far += std::fabs(out.at({0, j}) - out.at({2, j}));
  }
  EXPECT_LT(d_near, d_far);  // shared n-grams -> similar encodings
}

TEST_F(GeoEncoderTest, GradientsReachTokenTable) {
  GeoEncoder enc(ds_, {.dim = 4, .quadkey_level = 12, .ngram = 4}, rng_);
  Tensor out = enc.Forward({1, 2, 3});
  ops::Sum(ops::Square(out)).Backward();
  auto params = enc.Parameters();
  ASSERT_EQ(params.size(), 1u);
  EXPECT_TRUE(params[0].has_grad());
}

// ---- Batched padded scoring: gradients -------------------------------------

// The batched eval path runs IAAB and TAAD on head-padded [B, n, d] inputs.
// These tests pin down its two gradient contracts: (a) analytic gradients of
// the whole encode->decode->match chain agree with finite differences, and
// (b) padded input rows receive *exactly* zero gradient — the -1e9 mask
// entries underflow to softmax weights of exactly 0, so padding must be
// invisible to optimisation, not merely attenuated.
class BatchedPaddingGradTest : public ::testing::Test {
 protected:
  static constexpr int64_t kBatch = 2;
  static constexpr int64_t kSeq = 4;
  static constexpr int64_t kDim = 8;
  static constexpr int64_t kCands = 3;

  void SetUp() override {
    IaabOptions opts;
    opts.dim = kDim;
    opts.ffn_hidden = 12;
    opts.dropout = 0.0f;
    encoder_ = std::make_unique<IaabEncoder>(opts, /*num_blocks=*/1, rng_);
    encoder_->SetTraining(false);  // dropout = identity, no rng draws
    first_real_ = {0, 2};          // sequence 1 is head-padded at rows 0..1
    std::vector<Tensor> masks, biases;
    for (int64_t fr : first_real_) {
      masks.push_back(BuildPaddedCausalMask(kSeq, fr));
      biases.push_back(Tensor::Randn({kSeq, kSeq}, rng_, 0.1f));
    }
    mask_ = ops::Stack0(masks);
    bias_ = ops::Stack0(biases);
  }

  Rng rng_{42};
  std::unique_ptr<IaabEncoder> encoder_;
  std::vector<int64_t> first_real_;
  Tensor mask_, bias_;
};

TEST_F(BatchedPaddingGradTest, BatchedScorePathPassesGradcheck) {
  Tensor x = Tensor::Randn({kBatch, kSeq, kDim}, rng_, 0.5f, true);
  Tensor c = Tensor::Randn({kBatch, kCands, kDim}, rng_, 0.5f, true);
  Status st = CheckGradients(
      [&] {
        Tensor f = encoder_->Forward(x, bias_, mask_, rng_);
        Tensor s = TaadDecodeBatch(c, f, first_real_);
        return ops::Sum(ops::Square(MatchScores(s, c)));
      },
      {x, c});
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST_F(BatchedPaddingGradTest, PaddingRowsContributeExactlyZeroGradient) {
  Tensor x = Tensor::Randn({kBatch, kSeq, kDim}, rng_, 0.5f, true);
  Tensor c = Tensor::Randn({kBatch, kCands, kDim}, rng_, 0.5f, true);
  Tensor f = encoder_->Forward(x, bias_, mask_, rng_);
  Tensor s = TaadDecodeBatch(c, f, first_real_);
  ops::Sum(ops::Square(MatchScores(s, c))).Backward();

  ASSERT_TRUE(x.has_grad());
  const float* g = x.grad_data();
  int64_t nonzero_real = 0;
  for (int64_t b = 0; b < kBatch; ++b) {
    for (int64_t i = 0; i < kSeq; ++i) {
      for (int64_t j = 0; j < kDim; ++j) {
        const float v = g[(b * kSeq + i) * kDim + j];
        if (i < first_real_[static_cast<size_t>(b)]) {
          EXPECT_EQ(v, 0.0f) << "b=" << b << " row=" << i << " col=" << j;
        } else if (v != 0.0f) {
          ++nonzero_real;
        }
      }
    }
  }
  EXPECT_GT(nonzero_real, 0);  // the loss is not degenerate on real rows
}

TEST_F(BatchedPaddingGradTest, PaddedCandidateRowsStayIndependent) {
  // Padded candidate slots (kPaddingPoi rows appended to ragged candidate
  // lists) must not affect the gradients of real candidate rows: TAAD is
  // per-row, so zeroing a candidate row only changes that row's score.
  Tensor c = Tensor::Randn({kBatch, kCands, kDim}, rng_, 0.5f, true);
  Tensor x = Tensor::Randn({kBatch, kSeq, kDim}, rng_, 0.5f);
  Tensor f = encoder_->Forward(x, bias_, mask_, rng_);

  auto real_row_grads = [&](const Tensor& cands) {
    Tensor s = TaadDecodeBatch(cands, f, first_real_);
    ops::Sum(ops::Square(MatchScores(s, cands))).Backward();
    std::vector<float> out;
    const float* g = cands.grad_data();
    for (int64_t b = 0; b < kBatch; ++b) {
      for (int64_t m = 0; m + 1 < kCands; ++m) {  // skip the last ("pad") row
        for (int64_t j = 0; j < kDim; ++j) {
          out.push_back(g[(b * kCands + m) * kDim + j]);
        }
      }
    }
    return out;
  };

  Tensor with_pad = c.Detach().SetRequiresGrad(true);
  // Zero the final candidate row of every batch entry, as candidate padding
  // does for lists shorter than the batch-wide maximum.
  for (int64_t b = 0; b < kBatch; ++b) {
    for (int64_t j = 0; j < kDim; ++j) {
      with_pad.set({b, kCands - 1, j}, 0.0f);
    }
  }
  Tensor base = c.Detach().SetRequiresGrad(true);
  const auto grads_padded = real_row_grads(with_pad);
  const auto grads_base = real_row_grads(base);
  ASSERT_EQ(grads_padded.size(), grads_base.size());
  for (size_t i = 0; i < grads_base.size(); ++i) {
    EXPECT_EQ(grads_padded[i], grads_base[i]) << "flat index " << i;
  }
}

}  // namespace
}  // namespace stisan::core
