// Smoke and learning-sanity tests for STiSAN and all twelve baselines: each
// model must fit a tiny synthetic dataset, produce well-formed scores, and
// the neural ones must reduce their training loss.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/stisan.h"
#include "data/preprocess.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "models/caser.h"
#include "models/geosan.h"
#include "models/gru4rec.h"
#include "models/san_models.h"
#include "models/shallow.h"
#include "models/stan.h"
#include "models/stgn.h"

namespace stisan::models {
namespace {

struct Fixture {
  Fixture() {
    auto cfg = data::GowallaLikeConfig(0.08);
    cfg.num_clusters = 6;
    dataset = data::GenerateSynthetic(cfg);
    split = data::TrainTestSplit(dataset, {.max_seq_len = 12});
    candidates = std::make_unique<eval::CandidateGenerator>(dataset);
  }
  data::Dataset dataset;
  data::Split split;
  std::unique_ptr<eval::CandidateGenerator> candidates;
};

Fixture& SharedFixture() {
  static Fixture* f = new Fixture();
  return *f;
}

train::TrainConfig TinyTrain() {
  train::TrainConfig cfg;
  cfg.epochs = 2;
  cfg.num_negatives = 4;
  cfg.max_train_windows = 40;
  cfg.knn_neighborhood = 30;
  return cfg;
}

NeuralOptions TinyNeural() {
  NeuralOptions opts;
  opts.dim = 16;
  opts.dropout = 0.1f;
  opts.train = TinyTrain();
  return opts;
}

// Fits the model, checks scores are well-formed, and returns HR@10 over a
// few instances (sanity only, not a quality bar).
void SmokeTest(SequentialRecommender& model, float* hr10 = nullptr) {
  auto& fx = SharedFixture();
  model.Fit(fx.dataset, fx.split.train);
  eval::MetricAccumulator acc({5, 10});
  const size_t count = std::min<size_t>(fx.split.test.size(), 15);
  for (size_t i = 0; i < count; ++i) {
    const auto& inst = fx.split.test[i];
    auto cands = fx.candidates->Candidates(inst, 50);
    auto scores = model.Score(inst, cands);
    ASSERT_EQ(scores.size(), cands.size());
    for (float s : scores) {
      EXPECT_TRUE(std::isfinite(s)) << model.name();
    }
    acc.Add(eval::RankOfTarget(scores, 0));
  }
  if (hr10 != nullptr) *hr10 = static_cast<float>(acc.HitRate(10));
}

TEST(PopTest, CountsAndScores) {
  auto& fx = SharedFixture();
  PopModel model;
  SmokeTest(model);
  // Counts reflect the training windows.
  int64_t total = 0;
  for (int64_t p = 1; p <= fx.dataset.num_pois(); ++p) total += model.count(p);
  EXPECT_GT(total, 0);
}

TEST(BprTest, SmokeAndBeatsNothing) {
  BprOptions opts;
  opts.epochs = 5;
  BprMfModel model(opts);
  SmokeTest(model);
}

TEST(FpmcLrTest, Smoke) {
  FpmcOptions opts;
  opts.epochs = 5;
  FpmcLrModel model(opts);
  SmokeTest(model);
}

TEST(PrmeGTest, Smoke) {
  PrmeOptions opts;
  opts.epochs = 5;
  PrmeGModel model(opts);
  SmokeTest(model);
}

TEST(TransitionsTest, SkipsPadding) {
  auto& fx = SharedFixture();
  auto transitions = ExtractTransitions(fx.split.train);
  EXPECT_FALSE(transitions.empty());
  for (const auto& tr : transitions) {
    EXPECT_NE(tr.prev, data::kPaddingPoi);
    EXPECT_NE(tr.next, data::kPaddingPoi);
  }
}

TEST(Gru4RecTest, SmokeAndLearns) {
  auto& fx = SharedFixture();
  Gru4RecModel model(fx.dataset, TinyNeural());
  const float before = [&] {
    Gru4RecModel probe(fx.dataset, TinyNeural());
    auto opts = TinyNeural();
    opts.train.epochs = 0;
    return 0.0f;
  }();
  (void)before;
  SmokeTest(model);
  // Two tiny epochs land near the untrained BCE plateau (2 ln 2 = 1.386);
  // assert the loss is sane and not diverging.
  EXPECT_LT(model.last_epoch_loss(), 1.5f);
}

TEST(StgnTest, Smoke) {
  auto& fx = SharedFixture();
  StgnModel model(fx.dataset, TinyNeural());
  SmokeTest(model);
  EXPECT_GT(model.last_epoch_loss(), 0.0f);
}

TEST(CaserTest, Smoke) {
  auto& fx = SharedFixture();
  CaserOptions opts;
  opts.base = TinyNeural();
  opts.base.train.max_train_windows = 15;  // conv per step is pricey
  CaserModel model(fx.dataset, opts);
  SmokeTest(model);
}

TEST(SasRecTest, SmokeAndLossDecreases) {
  auto& fx = SharedFixture();
  SanOptions opts;
  opts.base = TinyNeural();
  SasRecModel model(fx.dataset, opts);
  model.Fit(fx.dataset, fx.split.train);
  const float loss2 = model.last_epoch_loss();
  // Train more and confirm further decrease.
  model.Fit(fx.dataset, fx.split.train);
  EXPECT_LE(model.last_epoch_loss(), loss2 + 0.05f);
  SmokeTest(model);
}

TEST(SasRecTest, TapeExtensionRuns) {
  auto& fx = SharedFixture();
  SanOptions opts;
  opts.base = TinyNeural();
  SasRecExtensions ext;
  ext.use_tape = true;
  SasRecModel model(fx.dataset, opts, ext, "SASRec+TAPE");
  EXPECT_EQ(model.name(), "SASRec+TAPE");
  SmokeTest(model);
}

TEST(SasRecTest, IaabExtensionRuns) {
  auto& fx = SharedFixture();
  SanOptions opts;
  opts.base = TinyNeural();
  SasRecExtensions ext;
  ext.relation = core::RelationOptions{};
  SasRecModel model(fx.dataset, opts, ext, "SASRec+IAAB");
  SmokeTest(model);
}

TEST(TiSasRecTest, Smoke) {
  auto& fx = SharedFixture();
  SanOptions opts;
  opts.base = TinyNeural();
  TiSasRecModel model(fx.dataset, opts);
  SmokeTest(model);
}

TEST(Bert4RecTest, Smoke) {
  auto& fx = SharedFixture();
  SanOptions opts;
  opts.base = TinyNeural();
  Bert4RecModel model(fx.dataset, opts);
  SmokeTest(model);
  EXPECT_GT(model.last_epoch_loss(), 0.0f);
}

TEST(StanTest, Smoke) {
  auto& fx = SharedFixture();
  StanOptions opts;
  opts.base = TinyNeural();
  StanModel model(fx.dataset, opts);
  SmokeTest(model);
}

TEST(GeoSanTest, Smoke) {
  auto& fx = SharedFixture();
  core::StisanOptions opts;
  opts.poi_dim = 12;
  opts.geo.dim = 4;
  opts.num_blocks = 1;
  opts.train = TinyTrain();
  GeoSanModel model(fx.dataset, opts);
  EXPECT_EQ(model.name(), "GeoSAN");
  SmokeTest(model);
}

TEST(StisanTest, SmokeFullModel) {
  auto& fx = SharedFixture();
  core::StisanOptions opts;
  opts.poi_dim = 12;
  opts.geo.dim = 4;
  opts.num_blocks = 2;
  opts.train = TinyTrain();
  core::StisanModel model(fx.dataset, opts);
  EXPECT_EQ(model.name(), "STiSAN");
  EXPECT_EQ(model.model_dim(), 16);
  SmokeTest(model);
  EXPECT_GT(model.last_epoch_loss(), 0.0f);
}

TEST(StisanTest, AllAblationVariantsRun) {
  auto& fx = SharedFixture();
  auto base = [&] {
    core::StisanOptions opts;
    opts.poi_dim = 12;
    opts.geo.dim = 4;
    opts.num_blocks = 1;
    opts.train = TinyTrain();
    opts.train.epochs = 1;
    opts.train.max_train_windows = 15;
    return opts;
  };
  {
    auto o = base();
    o.use_geo_encoder = false;
    core::StisanModel m(fx.dataset, o);
    EXPECT_EQ(m.name(), "STiSAN-GE");
    SmokeTest(m);
  }
  {
    auto o = base();
    o.use_tape = false;
    core::StisanModel m(fx.dataset, o);
    EXPECT_EQ(m.name(), "STiSAN-TAPE");
    SmokeTest(m);
  }
  {
    auto o = base();
    o.attention_mode = core::AttentionMode::kVanilla;
    core::StisanModel m(fx.dataset, o);
    EXPECT_EQ(m.name(), "STiSAN-IAAB");
    SmokeTest(m);
  }
  {
    auto o = base();
    o.attention_mode = core::AttentionMode::kRelationOnly;
    core::StisanModel m(fx.dataset, o);
    EXPECT_EQ(m.name(), "STiSAN-SA");
    SmokeTest(m);
  }
  {
    auto o = base();
    o.use_taad = false;
    core::StisanModel m(fx.dataset, o);
    EXPECT_EQ(m.name(), "STiSAN-TAAD");
    SmokeTest(m);
  }
}

TEST(StisanTest, AttentionMapProbeWellFormed) {
  auto& fx = SharedFixture();
  core::StisanOptions opts;
  opts.poi_dim = 12;
  opts.geo.dim = 4;
  opts.num_blocks = 2;
  opts.train = TinyTrain();
  opts.train.epochs = 1;
  opts.train.max_train_windows = 10;
  core::StisanModel model(fx.dataset, opts);
  model.Fit(fx.dataset, fx.split.train);
  const auto& inst = fx.split.test[0];
  Tensor map = model.AverageAttentionMap(inst.poi, inst.t, inst.first_real);
  const int64_t n = static_cast<int64_t>(inst.poi.size());
  EXPECT_EQ(map.shape(), (Shape{n, n}));
  for (int64_t i = 0; i < n; ++i) {
    float sum = 0;
    for (int64_t j = 0; j < n; ++j) sum += map.at({i, j});
    EXPECT_NEAR(sum, 1.0f, 1e-4f);
  }
}

TEST(StisanTest, CheckpointRoundTripPreservesScores) {
  auto& fx = SharedFixture();
  core::StisanOptions opts;
  opts.poi_dim = 12;
  opts.geo.dim = 4;
  opts.num_blocks = 1;
  opts.train = TinyTrain();
  opts.train.epochs = 1;
  opts.train.max_train_windows = 10;
  core::StisanModel trained(fx.dataset, opts);
  trained.Fit(fx.dataset, fx.split.train);

  const std::string path = "/tmp/stisan_model_ckpt.bin";
  ASSERT_TRUE(trained.SaveParameters(path).ok());

  core::StisanModel restored(fx.dataset, opts);  // fresh random init
  ASSERT_TRUE(restored.LoadParameters(path).ok());
  std::remove(path.c_str());

  const auto& inst = fx.split.test[0];
  auto cands = fx.candidates->Candidates(inst, 30);
  EXPECT_EQ(trained.Score(inst, cands), restored.Score(inst, cands));
}

TEST(StisanTest, CheckpointRejectsDifferentArchitecture) {
  auto& fx = SharedFixture();
  core::StisanOptions small;
  small.poi_dim = 12;
  small.geo.dim = 4;
  small.num_blocks = 1;
  small.train = TinyTrain();
  core::StisanModel a(fx.dataset, small);
  const std::string path = "/tmp/stisan_model_ckpt2.bin";
  ASSERT_TRUE(a.SaveParameters(path).ok());

  auto big = small;
  big.poi_dim = 20;
  core::StisanModel b(fx.dataset, big);
  EXPECT_FALSE(b.LoadParameters(path).ok());
  std::remove(path.c_str());
}

TEST(StisanTest, EpochCallbackDrivesEarlyStop) {
  auto& fx = SharedFixture();
  core::StisanOptions opts;
  opts.poi_dim = 12;
  opts.geo.dim = 4;
  opts.num_blocks = 1;
  opts.train = TinyTrain();
  opts.train.epochs = 6;
  opts.train.max_train_windows = 10;
  std::vector<float> losses;
  opts.train.on_epoch = [&losses](const train::EpochStats& stats) {
    EXPECT_EQ(stats.epoch, static_cast<int64_t>(losses.size()));
    losses.push_back(stats.loss);
    return losses.size() < 3;  // stop after the 3rd epoch
  };
  core::StisanModel model(fx.dataset, opts);
  model.Fit(fx.dataset, fx.split.train);
  EXPECT_EQ(losses.size(), 3u);  // early-stopped, not 6 epochs
  EXPECT_EQ(model.last_epoch_loss(), losses.back());
}

TEST(StisanTest, ScoresAreDeterministicInEval) {
  auto& fx = SharedFixture();
  core::StisanOptions opts;
  opts.poi_dim = 12;
  opts.geo.dim = 4;
  opts.num_blocks = 1;
  opts.train = TinyTrain();
  opts.train.epochs = 1;
  opts.train.max_train_windows = 10;
  core::StisanModel model(fx.dataset, opts);
  model.Fit(fx.dataset, fx.split.train);
  const auto& inst = fx.split.test[0];
  auto cands = fx.candidates->Candidates(inst, 20);
  auto s1 = model.Score(inst, cands);
  auto s2 = model.Score(inst, cands);
  EXPECT_EQ(s1, s2);  // dropout off, no stochasticity at eval
}

}  // namespace
}  // namespace stisan::models
